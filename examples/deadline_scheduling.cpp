// Deadline-aware scheduling (§8.5): submit jobs with deadlines and watch
// Crius-DDL admit, place and early-drop them against its Cell estimates.
//
// Build & run:  ./build/examples/deadline_scheduling

#include <cstdio>

#include "src/crius.h"

int main() {
  using namespace crius;

  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 23);

  TraceConfig config = PhillySixHourConfig();
  config.name = "deadline-demo";
  config.num_jobs = 60;
  config.duration = 2.0 * kHour;
  config.load = 1.6;
  config.deadline_fraction = 1.0;
  config.deadline_slack_min = 1.2;
  config.deadline_slack_max = 4.0;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Workload: %zu jobs, all with deadlines (1.2-4x slack), load %.1fx\n",
              trace.size(), config.load);

  CriusScheduler crius_ddl(&oracle, CriusConfig{.deadline_aware = true});
  ElasticFlowScheduler ef(&oracle, ElasticFlowConfig{.loose_deadlines = false});
  Scheduler* schedulers[] = {&ef, &crius_ddl};

  Table table("Deadline-aware comparison");
  table.SetHeader({"scheduler", "deadline ratio", "met", "missed", "dropped", "avg JCT (min)"});
  for (Scheduler* sched : schedulers) {
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(*sched, oracle, trace);
    int met = 0;
    int missed = 0;
    for (const JobRecord& rec : r.jobs) {
      if (!rec.had_deadline || rec.dropped) {
        continue;
      }
      (rec.deadline_met ? met : missed)++;
    }
    table.AddRow({r.scheduler, Table::FmtPercent(r.deadline_ratio), Table::FmtInt(met),
                  Table::FmtInt(missed), Table::FmtInt(r.dropped_jobs),
                  Table::Fmt(r.avg_jct / 60.0, 1)});
  }
  table.Print();

  std::printf("\nCrius-DDL certifies deadlines against accurate Cell estimates and\n"
              "early-drops only jobs no Cell can save; ElasticFlow can only certify\n"
              "what its data-parallel profile models.\n");
  return 0;
}
