// Cluster-scale scenario: a bursty afternoon on the 64-GPU testbed.
//
// Generates an 80-job trace against the paper's physical-testbed shape and
// runs it under FCFS, ElasticFlow-LS and Crius, printing the per-scheduler
// metrics plus a throughput timeline -- a miniature of Figs. 14 and 16.
//
// Build & run:  ./build/examples/cluster_scheduling

#include <cstdio>

#include "src/crius.h"

int main() {
  using namespace crius;

  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 11);

  TraceConfig config = PhillySixHourConfig();
  config.num_jobs = 80;
  config.duration = 3.0 * kHour;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Workload: %zu jobs over 3 hours on %d GPUs (A40 + A10)\n", trace.size(),
              cluster.TotalGpus());

  FcfsScheduler fcfs(&oracle);
  ElasticFlowScheduler ef(&oracle, ElasticFlowConfig{});
  CriusScheduler crius(&oracle, CriusConfig{});
  Scheduler* schedulers[] = {&fcfs, &ef, &crius};

  std::vector<SimResult> results;
  for (Scheduler* sched : schedulers) {
    Simulator sim(cluster, SimConfig{});
    results.push_back(sim.Run(*sched, oracle, trace));
  }

  Table table("Scheduler comparison (miniature Fig. 14)");
  table.SetHeader({"scheduler", "avg JCT (min)", "avg queue (min)", "avg thr", "peak thr",
                   "restarts"});
  for (const SimResult& r : results) {
    table.AddRow({r.scheduler, Table::Fmt(r.avg_jct / 60.0, 1),
                  Table::Fmt(r.avg_queue_time / 60.0, 1), Table::Fmt(r.avg_throughput, 1),
                  Table::Fmt(r.peak_throughput, 1), Table::Fmt(r.avg_restarts, 2)});
  }
  table.Print();

  // Hourly throughput timeline (miniature Fig. 16).
  Table timeline("Normalized cluster throughput by hour");
  timeline.SetHeader({"hour", results[0].scheduler, results[1].scheduler,
                      results[2].scheduler});
  for (int hour = 0; hour < 8; ++hour) {
    std::vector<std::string> row = {Table::FmtInt(hour)};
    bool any = false;
    for (const SimResult& r : results) {
      double sum = 0.0;
      int n = 0;
      for (const ThroughputSample& s : r.timeline) {
        if (s.time >= hour * kHour && s.time < (hour + 1) * kHour) {
          sum += s.normalized_throughput;
          ++n;
        }
      }
      row.push_back(n > 0 ? Table::Fmt(sum / n, 1) : "-");
      any |= n > 0;
    }
    if (any) {
      timeline.AddRow(row);
    }
  }
  timeline.Print();

  std::printf("\nCrius vs FCFS: JCT %.1f%% lower, queuing %.1f%% lower.\n",
              (1.0 - results[2].avg_jct / results[0].avg_jct) * 100.0,
              (1.0 - results[2].avg_queue_time / results[0].avg_queue_time) * 100.0);
  return 0;
}
