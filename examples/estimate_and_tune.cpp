// Deep dive into the Cell estimator and Cell-guided tuner (§5).
//
// Walks a MoE-10B job through the full pipeline:
//   * FLOPs-balanced stage determination (Fig. 7),
//   * single-device profiling of the two grid plans per stage (Fig. 10),
//   * assembly of 2^Ns candidate plans and the per-stage parallelism favors,
//   * pruned tuning vs unpruned full-space search (Fig. 11 / Fig. 13),
// and prints the accuracy/cost bookkeeping at each step.
//
// Build & run:  ./build/examples/estimate_and_tune

#include <cmath>
#include <cstdio>

#include "src/crius.h"

int main() {
  using namespace crius;

  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 7);
  const ModelSpec spec{ModelFamily::kMoe, 10.0, 256};
  const Cell cell{GpuType::kA40, 16, 4};

  // --- Stage determination ---------------------------------------------------
  const OpGraph& graph = GetOpGraph(spec);
  const auto ranges = PartitionStages(graph, cell.ngpus, cell.nstages);
  Table stages("Stage determination for " + spec.Name() + " on " + cell.ToString());
  stages.SetHeader({"stage", "ops", "share of FLOPs", "GPUs"});
  for (size_t s = 0; s < ranges.size(); ++s) {
    stages.AddRow({Table::FmtInt(static_cast<int64_t>(s)),
                   graph.op(ranges[s].op_begin).name + " .. " +
                       graph.op(ranges[s].op_end - 1).name,
                   Table::FmtPercent(graph.FwdFlops(ranges[s].op_begin, ranges[s].op_end) /
                                     graph.TotalFwdFlops()),
                   Table::FmtInt(ranges[s].gpus)});
  }
  stages.Print();

  // --- Estimation --------------------------------------------------------------
  const CellEstimate& est = oracle.EstimateCell(spec, cell);
  std::printf("\nAssembled %d candidate plans from %zu stage profiles on ONE GPU\n",
              est.plans_assembled, 2 * ranges.size());
  std::printf("Best assembled plan: %s\n", est.plan.ToString().c_str());
  std::printf("Estimated iteration time: %.3f s; profiling cost %.0f GPU-seconds\n",
              est.iter_time, est.profile_gpu_seconds);
  std::printf("Per-stage parallelism favors:");
  for (size_t s = 0; s < est.stage_prefers_tp.size(); ++s) {
    std::printf(" S%zu=%s", s, est.stage_prefers_tp[s] ? "tensor" : "data");
  }
  std::printf("\n");

  const JobContext ctx = oracle.perf_model().MakeContext(spec, cell.gpu_type);
  const PlanEval measured = oracle.perf_model().Evaluate(ctx, est.plan);
  std::printf("Direct measurement of the same plan: %.3f s  (accuracy %.1f%%)\n",
              measured.iter_time,
              (1.0 - std::abs(est.iter_time - measured.iter_time) / measured.iter_time) * 100.0);
  std::printf("Direct profiling would have cost %.0f GPU-seconds (%.1fx more)\n",
              oracle.perf_model().DirectProfileGpuSeconds(ctx, est.plan),
              oracle.perf_model().DirectProfileGpuSeconds(ctx, est.plan) /
                  est.profile_gpu_seconds);

  // --- Tuning ---------------------------------------------------------------------
  const Explorer& explorer = oracle.explorer();
  CellTuner tuner(&explorer);
  const TuneResult pruned = tuner.Tune(ctx, cell, est);
  const TuneResult full = tuner.TuneUnpruned(ctx, cell);
  Table tune("Cell-guided tuning vs unpruned search");
  tune.SetHeader({"search", "plans evaluated", "GPU-seconds", "best plan", "iter (s)"});
  tune.AddRow({"pruned (Cell-guided)", Table::FmtInt(pruned.plans_evaluated),
               Table::Fmt(pruned.tune_gpu_seconds, 0), pruned.best->plan.ToString(),
               Table::Fmt(pruned.best->iter_time, 3)});
  tune.AddRow({"unpruned (full space)", Table::FmtInt(full.plans_evaluated),
               Table::Fmt(full.tune_gpu_seconds, 0), full.best->plan.ToString(),
               Table::Fmt(full.best->iter_time, 3)});
  tune.Print();
  std::printf("\nTuning accuracy %.1f%%, tuning-time reduction %.2fx\n",
              (1.0 - (pruned.best->iter_time - full.best->iter_time) / full.best->iter_time) *
                  100.0,
              full.tune_gpu_seconds / std::max(1.0, pruned.tune_gpu_seconds));

  // --- Pipeline schedule of the tuned plan ------------------------------------
  std::printf("\nPipeline schedule of the tuned plan (glyphs = microbatch indices):\n%s",
              RenderPipelineGantt(oracle.perf_model(), ctx, pruned.best->plan, 96).c_str());
  return 0;
}
