// Quickstart: submit one training job to a heterogeneous cluster and let
// Crius pick its Cell and parallelism plan.
//
//   1. describe the cluster,
//   2. describe the job (model + batch + requested GPUs),
//   3. generate the job's Cells (scheduling candidates),
//   4. estimate every Cell with the agile estimator,
//   5. pick the best Cell and tune the final parallelism plan inside it.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/crius.h"

int main() {
  using namespace crius;

  // 1. A small heterogeneous cluster: 2 NVLink A100 nodes + 4 PCIe A40 nodes.
  Cluster cluster;
  cluster.AddNodes(GpuType::kA100, /*num_nodes=*/2, /*gpus_per_node=*/4);
  cluster.AddNodes(GpuType::kA40, /*num_nodes=*/4, /*gpus_per_node=*/2);

  // The oracle bundles the performance model, offline communication profiles,
  // the estimator and the tuner (all seeded for reproducibility).
  PerformanceOracle oracle(cluster, /*seed=*/1);

  // 2. The job: BERT-2.6B, global batch 128, user asks for 4 GPUs.
  TrainingJob job;
  job.id = 0;
  job.spec = ModelSpec{ModelFamily::kBert, 2.6, 128};
  job.requested_gpus = 4;
  job.requested_type = GpuType::kA100;

  // 3 + 4. Generate and estimate Cells.
  Table table("Cell candidates for " + job.spec.Name());
  table.SetHeader({"cell", "feasible", "est. iter (s)", "est. thr (samples/s)",
                   "assembled plan", "profiling cost (GPU-s)"});
  Cell best_cell;
  double best_thr = 0.0;
  for (const Cell& cell : GenerateCells(job, cluster)) {
    const CellEstimate& est = oracle.EstimateCell(job.spec, cell);
    if (!est.feasible) {
      table.AddRow({cell.ToString(), "no (OOM)", "-", "-", "-",
                    Table::Fmt(est.profile_gpu_seconds, 1)});
      continue;
    }
    const double thr = job.spec.global_batch / est.iter_time;
    table.AddRow({cell.ToString(), "yes", Table::Fmt(est.iter_time, 3), Table::Fmt(thr, 1),
                  est.plan.ToString(), Table::Fmt(est.profile_gpu_seconds, 1)});
    if (thr > best_thr) {
      best_thr = thr;
      best_cell = cell;
    }
  }
  table.Print();

  // 5. Schedule the best Cell and tune the plan inside it.
  const TuneResult& tuned = oracle.TuneCell(job.spec, best_cell);
  std::printf("\nScheduled Cell: %s\n", best_cell.ToString().c_str());
  if (tuned.best.has_value()) {
    std::printf("Tuned plan:     %s\n", tuned.best->plan.ToString().c_str());
    std::printf("Iteration time: %.3f s  (%.1f samples/s)\n", tuned.best->iter_time,
                job.spec.global_batch / tuned.best->iter_time);
    std::printf("Tuning cost:    %.0f GPU-seconds over %d candidate plans\n",
                tuned.tune_gpu_seconds, tuned.plans_evaluated);
  }
  return 0;
}
