// Figure 3: throughput of different scheduling choices with adaptive
// parallelism.
//
//   (a) Homogeneous scaling -- four queuing jobs (WRes-2B, MoE-2.4B,
//       BERT-1.3B, MoE-1.3B) share 8 A100 GPUs; allocation plans like
//       (4,2,2,0) trade jobs against each other. The cluster throughput
//       varies significantly across schemes because equal resources buy very
//       unequal throughput (WRes-2B claims a lot, contributes little).
//   (b) Heterogeneous exchange -- two models on 4xA100 + 4xV100; swapping who
//       gets which hardware changes total throughput sharply because
//       BERT-2.6B collapses to tensor parallelism on the 32-GiB V100s.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/oracle.h"

namespace crius {
namespace {

struct JobSlot {
  ModelSpec spec;
  const char* label;
};

void RunScalingStudy(PerformanceOracle& oracle) {
  const JobSlot jobs[4] = {
      {{ModelFamily::kWideResNet, 2.0, 256}, "WRes-2B"},
      {{ModelFamily::kMoe, 2.4, 256}, "MoE-2.4B"},
      {{ModelFamily::kBert, 1.3, 128}, "BERT-1.3B"},
      {{ModelFamily::kMoe, 1.3, 256}, "MoE-1.3B"},
  };
  // Allocation schemes over 8 A100 GPUs, (g0, g1, g2, g3); 0 = queued.
  const int schemes[5][4] = {
      {8, 0, 0, 0}, {4, 4, 0, 0}, {4, 2, 2, 0}, {2, 2, 2, 2}, {0, 4, 2, 2},
  };

  Table table("Fig. 3(a) Scaling homogeneous resources (8x A100)");
  table.SetHeader({"scheme", "WRes-2B", "MoE-2.4B", "BERT-1.3B", "MoE-1.3B",
                   "total thr (samples/s)"});
  for (const auto& scheme : schemes) {
    std::vector<std::string> row;
    std::string name = "(";
    for (int j = 0; j < 4; ++j) {
      name += std::to_string(scheme[j]);
      name += j < 3 ? "," : ")";
    }
    row.push_back(name);
    double total = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (scheme[j] == 0) {
        row.push_back("queued");
        continue;
      }
      const auto& best = oracle.BestAdaptive(jobs[j].spec, GpuType::kA100, scheme[j]);
      if (!best.has_value()) {
        row.push_back("OOM");
        continue;
      }
      const double thr = jobs[j].spec.global_batch / best->iter_time;
      total += thr;
      row.push_back(Table::Fmt(thr, 1) + " (" + best->plan.ShortForm() + ")");
    }
    row.push_back(Table::Fmt(total, 1));
    table.AddRow(row);
  }
  table.Print();
}

void RunExchangeStudy(PerformanceOracle& oracle) {
  const ModelSpec wres{ModelFamily::kWideResNet, 2.0, 256};
  const ModelSpec bert{ModelFamily::kBert, 2.6, 128};

  Table table("Fig. 3(b) Exchanging heterogeneous resources (4x A100 + 4x V100)");
  table.SetHeader({"scheme", "WRes-2B", "BERT-2.6B", "total thr", "vs other"});

  auto eval = [&](const ModelSpec& spec, GpuType type) {
    const auto& best = oracle.BestAdaptive(spec, type, 4);
    struct R {
      double thr;
      std::string text;
    };
    if (!best.has_value()) {
      return R{0.0, "OOM"};
    }
    const double thr = spec.global_batch / best->iter_time;
    return R{thr, Table::Fmt(thr, 1) + " on " + GpuName(type) + " (" +
                      best->plan.ShortForm() + ")"};
  };

  const auto a_wres = eval(wres, GpuType::kV100);
  const auto a_bert = eval(bert, GpuType::kA100);
  const auto b_wres = eval(wres, GpuType::kA100);
  const auto b_bert = eval(bert, GpuType::kV100);
  const double total_a = a_wres.thr + a_bert.thr;
  const double total_b = b_wres.thr + b_bert.thr;
  table.AddRow({"A: WRes->V100, BERT->A100", a_wres.text, a_bert.text,
                Table::Fmt(total_a, 1), Ratio(total_a, total_b)});
  table.AddRow({"B: WRes->A100, BERT->V100", b_wres.text, b_bert.text,
                Table::Fmt(total_b, 1), Ratio(total_b, total_a)});
  table.Print();

  const double gap = (std::max(total_a, total_b) / std::min(total_a, total_b) - 1.0) * 100.0;
  std::printf("\nThroughput gap between schemes: %.1f%% (paper: 61.9%%)\n", gap);
}

}  // namespace
}  // namespace crius

int main() {
  // 2 NVLink A100 nodes (8 GPUs, for the scaling study) + 1 V100 node (for
  // the exchange study).
  crius::Cluster cluster;
  cluster.AddNodes(crius::GpuType::kA100, 2, 4);
  cluster.AddNodes(crius::GpuType::kV100, 1, 4);
  crius::PerformanceOracle oracle(cluster, 42);
  crius::RunScalingStudy(oracle);
  crius::RunExchangeStudy(oracle);
  return 0;
}
