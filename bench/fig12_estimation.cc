// Figure 12: accuracy and GPU-time reduction of the agile Cell estimator.
//
//   (a) estimation accuracy = 1 - |T_e - T_d| / T_d, where T_e is the Cell
//       estimate and T_d is direct measurement of the same generated plan
//       (paper: 93.4% average, 90.5% worst);
//   (b) GPU-time reduction of single-device distributed profiling vs directly
//       profiling the job on its allocated GPUs (paper: 18.1x average, 2.55x
//       minimum).
//
// Following the paper, the model size grows with the GPU count.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/oracle.h"
#include "src/util/stats.h"

namespace crius {
namespace {

struct Config {
  ModelSpec spec;
  int ngpus;
};

const Config kConfigs[] = {
    {{ModelFamily::kWideResNet, 1.0, 256}, 4},  {{ModelFamily::kBert, 1.3, 128}, 4},
    {{ModelFamily::kMoe, 1.3, 256}, 4},         {{ModelFamily::kWideResNet, 2.0, 256}, 8},
    {{ModelFamily::kBert, 2.6, 128}, 8},        {{ModelFamily::kMoe, 2.4, 256}, 8},
    {{ModelFamily::kWideResNet, 4.0, 256}, 16}, {{ModelFamily::kBert, 6.7, 128}, 16},
    {{ModelFamily::kMoe, 10.0, 256}, 16},
};

}  // namespace
}  // namespace crius

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);

  Table table("Fig. 12 Cell estimation: accuracy and GPU-time reduction");
  table.SetHeader({"config", "gpu type", "cell", "estimated (s)", "measured (s)", "accuracy",
                   "direct gpu-time", "estimator gpu-time", "reduction"});

  std::vector<double> accuracies;
  std::vector<double> reductions;
  std::vector<double> per_cell_seconds;

  for (const auto& config : kConfigs) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40, GpuType::kV100}) {
      for (int nstages : {1, 2, 4}) {
        const Cell cell{type, config.ngpus, nstages};
        const CellEstimate& est = oracle.EstimateCell(config.spec, cell);
        if (!est.feasible) {
          continue;
        }
        const JobContext ctx = oracle.perf_model().MakeContext(config.spec, type);
        const PlanEval measured = oracle.perf_model().Evaluate(ctx, est.plan);
        const double acc =
            1.0 - std::abs(est.iter_time - measured.iter_time) / measured.iter_time;
        const double direct = oracle.perf_model().DirectProfileGpuSeconds(ctx, est.plan);
        const double reduction = direct / est.profile_gpu_seconds;
        accuracies.push_back(acc);
        reductions.push_back(reduction);
        per_cell_seconds.push_back(est.profile_gpu_seconds);
        if (nstages == 2) {  // one representative row per (config, type)
          table.AddRow({config.spec.Name() + " x" + std::to_string(config.ngpus),
                        GpuName(type), cell.ToString(), Table::Fmt(est.iter_time, 3),
                        Table::Fmt(measured.iter_time, 3), Table::FmtPercent(acc),
                        Table::Fmt(direct, 0) + "s", Table::Fmt(est.profile_gpu_seconds, 0) + "s",
                        Table::FmtFactor(reduction)});
        }
      }
    }
  }
  table.Print();

  Table summary("Fig. 12 summary (paper: accuracy 93.4% avg / 90.5% worst; reduction 18.1x avg / 2.55x min)");
  summary.SetHeader({"metric", "average", "worst"});
  summary.AddRow({"estimation accuracy", Table::FmtPercent(Mean(accuracies)),
                  Table::FmtPercent(Min(accuracies))});
  summary.AddRow({"GPU-time reduction", Table::FmtFactor(Mean(reductions)),
                  Table::FmtFactor(Min(reductions))});
  summary.Print();

  // §8.2 profiling-budget claims.
  std::printf("\nPer-Cell single-GPU profiling time: avg %.0fs, max %.0fs (paper: ~1 minute)\n",
              Mean(per_cell_seconds), Max(per_cell_seconds));
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kMoe, 10.0, 256};
  job.requested_gpus = 16;
  job.requested_type = GpuType::kA100;
  CriusScheduler crius(&oracle, CriusConfig{});
  std::printf("Whole-job Cell-initialization profiling delay: %.0fs (paper bound: 30 min)\n",
              crius.ProfilingDelay(job, cluster));
  std::printf("Offline communication-profiling sweep: %.1f GPU-hours (amortized once)\n",
              oracle.comm_profile().offline_gpu_seconds() / 3600.0);
  return 0;
}
