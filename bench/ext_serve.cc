// Extension: closed-loop load generator for the crius_serve daemon path.
//
// Spins up the full serving stack in-process -- Controller, Unix-socket
// Server, session protocol -- and hammers it with N closed-loop client
// threads, each running connect -> submit -> await response in a loop over a
// real socket. Reports ingress throughput (submissions/sec), client-observed
// round-trip percentiles, and the controller's decision latency
// (enqueue -> applied-at-tick) p50/p95/p99.
//
// Modes:
//   default   8 clients x 120 submissions against a deep queue; measures the
//             saturated ingress path.
//   --smoke   4 clients against a deliberately tiny queue (capacity 4,
//             max-pending 2) so over-capacity submissions are rejected;
//             exits non-zero unless (a) some submissions were accepted,
//             (b) some were rejected with a machine-readable reason from the
//             admission policy, and (c) no transport errors occurred.
//             (CI regression gate for the admission-control path.)
//
// Flags: --smoke, --clients N, --requests N (per client), --threads N
// (dispatch pool shared with scheduling fan-out), --json F (write a
// BENCH_serve.json perf-trajectory report for crius_benchdiff).

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/client.h"
#include "src/serve/controller.h"
#include "src/serve/replay.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/util/stats.h"

namespace crius {
namespace {

// What each closed-loop client thread saw.
struct ClientResult {
  size_t accepted = 0;
  std::map<std::string, size_t> rejects;  // machine-readable reason -> count
  size_t transport_errors = 0;
  std::vector<double> rtt_ms;  // client-observed round-trip per submission
};

// A small rotation of feasible testbed jobs; the bench measures the ingress
// path, not the schedule, so the jobs are short.
TrainingJob MakeJob(size_t i) {
  TrainingJob job;
  switch (i % 3) {
    case 0:
      job.spec = ModelSpec{ModelFamily::kBert, 0.76, 256};
      job.requested_gpus = 4;
      break;
    case 1:
      job.spec = ModelSpec{ModelFamily::kWideResNet, 1.0, 256};
      job.requested_gpus = 2;
      break;
    default:
      job.spec = ModelSpec{ModelFamily::kMoe, 1.3, 512};
      job.requested_gpus = 8;
      break;
  }
  job.iterations = 5;
  job.requested_type = GpuType::kA40;
  return job;
}

ClientResult RunClient(const std::string& socket_path, size_t requests, size_t salt) {
  ClientResult result;
  serve::Client client;
  std::string error;
  if (!client.Connect(socket_path, &error)) {
    std::fprintf(stderr, "ext_serve: client connect: %s\n", error.c_str());
    ++result.transport_errors;
    return result;
  }
  for (size_t i = 0; i < requests; ++i) {
    serve::JsonObject response;
    const auto start = std::chrono::steady_clock::now();
    if (!client.Submit(MakeJob(salt + i), &response, &error)) {
      ++result.transport_errors;
      break;
    }
    const auto end = std::chrono::steady_clock::now();
    result.rtt_ms.push_back(std::chrono::duration<double, std::milli>(end - start).count());
    if (serve::GetBool(response, "ok", false)) {
      ++result.accepted;
    } else {
      ++result.rejects[serve::GetString(response, "reason", "<missing reason>")];
    }
  }
  return result;
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  using namespace crius;
  ConfigureBenchThreads(argc, argv);
  const bool smoke = BenchFlagPresent(argc, argv, "--smoke");
  size_t clients = static_cast<size_t>(BenchFlagInt(argc, argv, "--clients", 0));
  size_t requests = static_cast<size_t>(BenchFlagInt(argc, argv, "--requests", 0));
  if (clients == 0) {
    clients = smoke ? 4 : 8;
  }
  if (requests == 0) {
    requests = smoke ? 40 : 120;
  }

  // The same runtime crius_serve builds from its flags; testbed keeps the
  // accepted jobs cheap to place.
  SessionMeta meta;
  SessionRuntime runtime = MakeSessionRuntime(meta);

  Controller::Config config;
  config.tick_virtual_seconds = 60.0;
  config.tick_wall_seconds = smoke ? 0.02 : 0.005;
  if (smoke) {
    // Tiny queue + pending cap: clients outrun the controller tick, so the
    // admission policy must reject the overflow with a machine-readable
    // reason -- the property this gate asserts.
    config.queue.capacity = 4;
    config.queue.max_pending_jobs = 2;
  } else {
    config.queue.capacity = 4096;
  }
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        /*log=*/nullptr, config);

  const std::string socket_path =
      "/tmp/crius_ext_serve." + std::to_string(::getpid()) + ".sock";
  serve::Server server(socket_path, serve::MakeHandler(controller));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "ext_serve: %s\n", error.c_str());
    return 1;
  }
  controller.Start();

  const auto load_start = std::chrono::steady_clock::now();
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] { results[c] = RunClient(socket_path, requests, c * 7919); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - load_start).count();

  // Let the controller apply everything still queued before sampling stats,
  // then stop without draining -- the bench measures ingress, not the sim.
  serve::Client probe;
  serve::JsonObject response;
  bool stats_ok = false;
  Controller::Stats stats;
  if (probe.Connect(socket_path, &error)) {
    for (int spin = 0; spin < 200; ++spin) {
      stats = controller.GetStats();
      if (stats.decisions >= stats.accepted) {
        break;  // every ingress-accepted command has been applied
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stats_ok = probe.Stats(&response, &error);
    probe.Shutdown(/*drain=*/false, &response, &error);
  }
  controller.Join();
  server.Stop();
  stats = controller.GetStats();

  ClientResult total;
  for (const ClientResult& r : results) {
    total.accepted += r.accepted;
    total.transport_errors += r.transport_errors;
    for (const auto& [reason, count] : r.rejects) {
      total.rejects[reason] += count;
    }
    total.rtt_ms.insert(total.rtt_ms.end(), r.rtt_ms.begin(), r.rtt_ms.end());
  }
  const size_t submitted = total.rtt_ms.size();

  std::printf("ext_serve: %zu clients x %zu requests, queue capacity %zu%s\n", clients,
              requests, config.queue.capacity, smoke ? " (smoke)" : "");
  std::printf("  submissions        %zu in %.2f s  (%.0f submissions/sec)\n", submitted,
              elapsed, elapsed > 0.0 ? static_cast<double>(submitted) / elapsed : 0.0);
  std::printf("  accepted           %zu\n", total.accepted);
  for (const auto& [reason, count] : total.rejects) {
    std::printf("  rejected[%s]  %zu\n", reason.c_str(), count);
  }
  if (!total.rtt_ms.empty()) {
    std::printf("  client RTT ms      p50 %.3f  p95 %.3f  p99 %.3f\n",
                Percentile(total.rtt_ms, 50.0), Percentile(total.rtt_ms, 95.0),
                Percentile(total.rtt_ms, 99.0));
  }
  std::printf("  decision latency   p50 %.3f  p95 %.3f  p99 %.3f ms over %zu decisions\n",
              stats.latency_p50_ms, stats.latency_p95_ms, stats.latency_p99_ms,
              stats.decisions);
  std::printf("  controller         %zu ticks, %zu jobs accepted, %zu infeasible\n",
              stats.ticks, stats.accepted, stats.infeasible);

  const std::string report_path = BenchReportPathFromArgs(argc, argv);
  if (!report_path.empty()) {
    size_t rejected = 0;
    for (const auto& [reason, count] : total.rejects) {
      rejected += count;
    }
    BenchReport report;
    report.bench = "ext_serve";
    report.meta["mode"] = smoke ? "smoke" : "full";
    report.meta["clients"] = std::to_string(clients);
    report.meta["requests_per_client"] = std::to_string(requests);
    report.AddMetric("submissions_per_sec",
                     elapsed > 0.0 ? static_cast<double>(submitted) / elapsed : 0.0, "1/s",
                     "higher", 0.8);
    report.AddMetric("rtt_p50_ms", Percentile(total.rtt_ms, 50.0), "ms", "lower", 3.0);
    report.AddMetric("rtt_p95_ms", Percentile(total.rtt_ms, 95.0), "ms", "lower", 4.0);
    report.AddMetric("decision_p50_ms", stats.latency_p50_ms, "ms", "lower", 3.0);
    report.AddMetric("decision_p95_ms", stats.latency_p95_ms, "ms", "lower", 4.0);
    report.AddMetric("accepted", static_cast<double>(total.accepted), "", "none");
    report.AddMetric("rejected", static_cast<double>(rejected), "", "none");
    report.AddMetric("transport_errors", static_cast<double>(total.transport_errors), "",
                     "none");
    if (!EmitBenchReport(report, report_path)) {
      return 1;
    }
  }

  if (total.transport_errors > 0) {
    std::fprintf(stderr, "ext_serve: FAIL: %zu transport errors\n", total.transport_errors);
    return 1;
  }
  if (!stats_ok) {
    std::fprintf(stderr, "ext_serve: FAIL: stats request failed: %s\n", error.c_str());
    return 1;
  }
  if (smoke) {
    if (total.accepted == 0) {
      std::fprintf(stderr, "ext_serve: FAIL: no submission was accepted\n");
      return 1;
    }
    size_t over_capacity = 0;
    for (const auto& [reason, count] : total.rejects) {
      if (reason == "queue_full" || reason == "cluster_saturated") {
        over_capacity += count;
      } else {
        std::fprintf(stderr, "ext_serve: FAIL: unexpected reject reason '%s'\n",
                     reason.c_str());
        return 1;
      }
    }
    if (over_capacity == 0) {
      std::fprintf(stderr,
                   "ext_serve: FAIL: no over-capacity submission was rejected (queue "
                   "capacity %zu, %zu clients)\n",
                   config.queue.capacity, clients);
      return 1;
    }
    std::printf("ext_serve smoke OK: %zu accepted, %zu rejected over capacity\n",
                total.accepted, over_capacity);
  }
  return 0;
}
