// Figure 4: how the optimal parallelism plan and throughput change with
// (a) GPU number, (b) GPU type, and (c) GPU topology.
//
// The paper's observations to reproduce:
//   (a) MoE-1.3B scales up nearly linearly while others approach the
//       performance ceiling;
//   (b/c) BERT and MoE models swing hardest across type/topology because
//       their optimal plans change (memory walls force tensor parallelism,
//       PCIe punishes it).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/oracle.h"

namespace crius {
namespace {

const ModelSpec kModels[] = {
    {ModelFamily::kWideResNet, 1.0, 256},
    {ModelFamily::kBert, 1.3, 128},
    {ModelFamily::kBert, 2.6, 128},
    {ModelFamily::kMoe, 1.3, 256},
    {ModelFamily::kMoe, 2.4, 256},
};

std::string PlanCell(PerformanceOracle& oracle, const ModelSpec& spec, GpuType type, int n) {
  const auto& best = oracle.BestAdaptive(spec, type, n);
  if (!best.has_value()) {
    return "OOM";
  }
  const double thr = spec.global_batch / best->iter_time;
  return Table::Fmt(thr, 1) + " [" + best->plan.ShortForm() + "]";
}

void GpuNumberSweep(PerformanceOracle& oracle) {
  Table table("Fig. 4(a) Optimal plan / throughput vs GPU number (A100)");
  table.SetHeader({"model", "n=1", "n=2", "n=4", "n=8", "n=16", "speedup 1->16"});
  for (const ModelSpec& spec : kModels) {
    std::vector<std::string> row = {spec.Name()};
    double thr1 = 0.0;
    double thr16 = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
      row.push_back(PlanCell(oracle, spec, GpuType::kA100, n));
      const auto& best = oracle.BestAdaptive(spec, GpuType::kA100, n);
      if (best.has_value()) {
        const double thr = spec.global_batch / best->iter_time;
        if (n == 1) {
          thr1 = thr;
        }
        if (n == 16) {
          thr16 = thr;
        }
      }
    }
    row.push_back(thr1 > 0.0 ? Ratio(thr16, thr1) : "-");
    table.AddRow(row);
  }
  table.Print();
}

void GpuTypeSweep(PerformanceOracle& oracle) {
  Table table("Fig. 4(b) Optimal plan / throughput vs GPU type (4 GPUs)");
  table.SetHeader({"model", "A100", "A40", "A10", "V100", "max/min"});
  for (const ModelSpec& spec : kModels) {
    std::vector<std::string> row = {spec.Name()};
    double lo = 1e30;
    double hi = 0.0;
    for (GpuType type : AllGpuTypes()) {
      row.push_back(PlanCell(oracle, spec, type, 4));
      const auto& best = oracle.BestAdaptive(spec, type, 4);
      if (best.has_value()) {
        const double thr = spec.global_batch / best->iter_time;
        lo = std::min(lo, thr);
        hi = std::max(hi, thr);
      }
    }
    row.push_back(lo < 1e30 ? Ratio(hi, lo) : "-");
    table.AddRow(row);
  }
  table.Print();
}

void TopologySweep() {
  // Same 8 A100 GPUs, three topologies: 8-per-node (all NVLink), 4-per-node
  // (NVLink inside, InfiniBand across) and 1-per-node (everything crosses the
  // network).
  Table table("Fig. 4(c) Optimal plan / throughput vs GPU topology (8x A100)");
  table.SetHeader({"model", "8/node (NVLink)", "4/node", "1/node (network)", "max/min"});

  std::vector<std::unique_ptr<PerformanceOracle>> oracles;
  for (int per_node : {8, 4, 1}) {
    Cluster cluster;
    cluster.AddNodes(GpuType::kA100, 16 / per_node, per_node);
    oracles.push_back(std::make_unique<PerformanceOracle>(cluster, 42));
  }
  for (const ModelSpec& spec : kModels) {
    std::vector<std::string> row = {spec.Name()};
    double lo = 1e30;
    double hi = 0.0;
    for (auto& oracle : oracles) {
      row.push_back(PlanCell(*oracle, spec, GpuType::kA100, 8));
      const auto& best = oracle->BestAdaptive(spec, GpuType::kA100, 8);
      if (best.has_value()) {
        const double thr = spec.global_batch / best->iter_time;
        lo = std::min(lo, thr);
        hi = std::max(hi, thr);
      }
    }
    row.push_back(lo < 1e30 ? Ratio(hi, lo) : "-");
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nExpected shapes: MoE-1.3B scales near-linearly in (a); BERT/MoE have the\n"
      "largest variance in (b)/(c) because their optimal plans change.\n");
}

}  // namespace
}  // namespace crius

int main() {
  crius::Cluster cluster = crius::MakeSimulatedCluster();
  crius::PerformanceOracle oracle(cluster, 42);
  crius::GpuNumberSweep(oracle);
  crius::GpuTypeSweep(oracle);
  crius::TopologySweep();
  return 0;
}
