// Extension: alternative scheduling objectives (§6's generality claim beyond
// the §8.5 deadline policy).
//
// Crius's Cell estimates are objective-agnostic performance data; swapping the
// upscale policy from throughput-maximization to max-min water-filling trades
// a little aggregate throughput for much more even per-job service. Reported:
// mean/p99 slowdown (JCT over standalone ideal) and Jain's fairness index over
// service rates, plus the usual throughput numbers.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);

  TraceConfig config = HeliosModerateConfig();
  config.name = "helios-objective";
  config.seed = 7301;
  config.load = 1.1;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Objective study: %zu jobs on %d GPUs\n", trace.size(), cluster.TotalGpus());

  CriusScheduler throughput(&oracle, CriusConfig{});
  CriusScheduler fairness(&oracle,
                          CriusConfig{.objective = CriusObjective::kMaxMinFairness});
  Scheduler* schedulers[] = {&throughput, &fairness};

  Table table("Extension: throughput-max vs max-min-fairness objective");
  table.SetHeader({"objective", "avg thr", "peak thr", "avg JCT", "avg slowdown",
                   "p99 slowdown", "Jain fairness"});
  for (Scheduler* sched : schedulers) {
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(*sched, oracle, trace);
    table.AddRow({r.scheduler, Table::Fmt(r.avg_throughput, 0),
                  Table::Fmt(r.peak_throughput, 0), Hours(r.avg_jct),
                  Table::Fmt(r.avg_slowdown, 2), Table::Fmt(r.p99_slowdown, 2),
                  Table::Fmt(r.fairness_index, 3)});
  }
  table.Print();

  std::printf("\nExpected shape: the fairness objective improves the slowdown tail and\n"
              "Jain's index at a modest aggregate-throughput cost -- Cell estimates\n"
              "support either objective unchanged (§6).\n");
  return 0;
}
