// Extension: live reconfiguration vs frozen placements (src/reconfig).
//
// Runs the testbed trace under a burst-plus-failure regime twice per
// scheduler: once with placements frozen for a job's lifetime (the seed
// engine's behavior) and once with --reconfig, where the ReconfigPolicy may
// migrate a *running* job to a better Cell whenever the modeled
// remaining-time gain beats the checkpoint+restart+warm-up cost of the move.
// Node failures strand capacity that frozen FCFS placements can never pick
// back up (the head-of-line job waits at its requested shape while freed
// GPUs idle); the reconfig engine grows or re-splits running jobs into that
// capacity and shrinks them away from distressed hardware.
//
// Reported per node-MTBF rate: goodput (useful / total GPU-seconds), avg and
// p99 JCT, migrations applied, and the modeled pause cost the migrations
// charged. The headline is the goodput / tail-JCT delta at the harshest rate.
//
// Modes:
//   default   MTBF sweep {healthy, 8h, 2h} on the 244-job testbed trace,
//             fcfs and crius, frozen vs --reconfig (12 simulations).
//   --smoke   32-job trace at MTBF 2h, fcfs only; exits non-zero unless
//             (a) at least one migration was applied and (b) reconfig is not
//             worse than frozen on goodput and avg JCT (CI regression gate).
//   --jobs N  override the trace's job count (0 = keep the preset's default).
//   --json F  write a BENCH_reconfig.json perf-trajectory report to F
//             (compared against bench/baselines/ by crius_benchdiff in CI).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fault/failure_injector.h"

namespace crius {
namespace {

struct RunCell {
  SimResult frozen;
  SimResult reconfig;
};

SimResult RunOne(const Cluster& cluster, const std::vector<TrainingJob>& trace,
                 const std::string& scheduler_name, double mtbf_hours, double trace_end,
                 bool reconfig) {
  SimConfig config;
  config.checkpoint.interval = 30.0 * kMinute;
  if (mtbf_hours > 0.0) {
    FailureInjectorConfig faults;
    faults.node_mtbf_hours = mtbf_hours;
    faults.seed = 42;
    faults.horizon = std::max(trace_end, 1.0) * config.max_time_factor + 24.0 * kHour;
    config.failures = GenerateFailureSchedule(cluster, faults);
    config.node_mtbf = mtbf_hours * kHour;
  }
  config.reconfig.enabled = reconfig;
  // Each run gets a fresh oracle so neither mode benefits from the other's
  // warmed estimate caches; the frozen/reconfig pair therefore sees identical
  // profiling-noise draws and any delta is the policy's.
  PerformanceOracle oracle(cluster, 42);
  std::unique_ptr<Scheduler> scheduler;
  if (scheduler_name == "fcfs") {
    scheduler = std::make_unique<FcfsScheduler>(&oracle);
  } else {
    scheduler = std::make_unique<CriusScheduler>(&oracle, CriusConfig{});
  }
  Simulator sim(cluster, config);
  return sim.Run(*scheduler, oracle, trace);
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  using namespace crius;
  ConfigureBenchThreads(argc, argv);
  const bool smoke = BenchFlagPresent(argc, argv, "--smoke");
  const int jobs_override = static_cast<int>(BenchFlagInt(argc, argv, "--jobs", 0));

  Cluster cluster = MakePhysicalTestbed();
  TraceConfig trace_config = PhillySixHourConfig();
  trace_config.seed = 42;
  if (smoke) {
    trace_config.num_jobs = 32;
  }
  if (jobs_override > 0) {
    trace_config.num_jobs = jobs_override;
  }
  PerformanceOracle trace_oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, trace_oracle, trace_config);
  double trace_end = 0.0;
  for (const TrainingJob& job : trace) {
    trace_end = std::max(trace_end, job.submit_time);
  }

  const std::vector<double> mtbf_hours = smoke ? std::vector<double>{2.0}
                                               : std::vector<double>{0.0, 8.0, 2.0};
  const std::vector<std::string> schedulers =
      smoke ? std::vector<std::string>{"fcfs"} : std::vector<std::string>{"fcfs", "crius"};
  std::printf("trace %s: %zu jobs on testbed cluster (%s)\n", trace_config.name.c_str(),
              trace.size(), smoke ? "smoke" : "full sweep");

  // [scheduler][rate]
  std::vector<std::vector<RunCell>> results(schedulers.size());
  for (size_t sc = 0; sc < schedulers.size(); ++sc) {
    for (double mtbf : mtbf_hours) {
      RunCell cell;
      cell.frozen = RunOne(cluster, trace, schedulers[sc], mtbf, trace_end,
                           /*reconfig=*/false);
      cell.reconfig = RunOne(cluster, trace, schedulers[sc], mtbf, trace_end,
                             /*reconfig=*/true);
      results[sc].push_back(std::move(cell));
    }
  }

  auto rate_label = [](double mtbf) {
    return mtbf <= 0.0 ? std::string("healthy") : "MTBF " + Table::Fmt(mtbf, 0) + "h";
  };

  Table table("Frozen placements vs live reconfiguration (--reconfig)");
  table.SetHeader({"scheduler", "rate", "mode", "goodput", "avg JCT", "p99 JCT",
                   "migrations", "pause cost"});
  for (size_t sc = 0; sc < schedulers.size(); ++sc) {
    for (size_t ri = 0; ri < mtbf_hours.size(); ++ri) {
      const RunCell& cell = results[sc][ri];
      auto row = [&](const char* mode, const SimResult& r) {
        table.AddRow({schedulers[sc], rate_label(mtbf_hours[ri]), mode,
                      Table::FmtPercent(r.goodput), Minutes(r.avg_jct), Minutes(r.p99_jct),
                      Table::FmtInt(r.migrations),
                      r.migrations > 0 ? Minutes(r.migration_cost_seconds) : std::string("-")});
      };
      row("frozen", cell.frozen);
      row("reconfig", cell.reconfig);
    }
  }
  table.Print();

  // Headline: the harshest rate for the first (fcfs) scheduler — the frozen
  // baseline with head-of-line blocking is where stranded capacity hurts most.
  const RunCell& harsh = results[0].back();
  const double goodput_delta = harsh.reconfig.goodput - harsh.frozen.goodput;
  const double p99_delta = harsh.frozen.p99_jct - harsh.reconfig.p99_jct;
  std::printf("\nAt %s (fcfs): goodput %+.1f pts, p99 JCT %+.1f min, %d migrations\n",
              rate_label(mtbf_hours.back()).c_str(), 100.0 * goodput_delta,
              p99_delta / kMinute, harsh.reconfig.migrations);

  const std::string report_path = BenchReportPathFromArgs(argc, argv);
  if (!report_path.empty()) {
    BenchReport report;
    report.bench = "ext_reconfig";
    report.meta["mode"] = smoke ? "smoke" : "full";
    report.meta["trace"] = trace_config.name;
    report.meta["jobs"] = std::to_string(trace.size());
    report.meta["mtbf_hours"] = Table::Fmt(mtbf_hours.back(), 0);
    // Absolute JCTs of a deterministic simulation are stable, so the bounds
    // can sit tighter than wall-time metrics; goodput is a ratio already.
    report.AddMetric("frozen.goodput", harsh.frozen.goodput, "", "higher", 0.1);
    report.AddMetric("reconfig.goodput", harsh.reconfig.goodput, "", "higher", 0.1);
    report.AddMetric("frozen.avg_jct_min", harsh.frozen.avg_jct / kMinute, "min", "lower", 0.2);
    report.AddMetric("reconfig.avg_jct_min", harsh.reconfig.avg_jct / kMinute, "min", "lower",
                     0.2);
    report.AddMetric("frozen.p99_jct_min", harsh.frozen.p99_jct / kMinute, "min", "lower", 0.2);
    report.AddMetric("reconfig.p99_jct_min", harsh.reconfig.p99_jct / kMinute, "min", "lower",
                     0.2);
    report.AddMetric("migrations", static_cast<double>(harsh.reconfig.migrations), "", "none");
    report.AddMetric("migration_cost_min", harsh.reconfig.migration_cost_seconds / kMinute,
                     "min", "none");
    if (!EmitBenchReport(report, report_path)) {
      return 1;
    }
  }

  if (smoke) {
    if (harsh.reconfig.migrations == 0) {
      std::fprintf(stderr, "FAIL: reconfig applied no migration under burst+failure load\n");
      return 1;
    }
    if (harsh.reconfig.goodput < harsh.frozen.goodput - 0.01) {
      std::fprintf(stderr, "FAIL: reconfig goodput %.3f worse than frozen %.3f\n",
                   harsh.reconfig.goodput, harsh.frozen.goodput);
      return 1;
    }
    if (harsh.reconfig.avg_jct > harsh.frozen.avg_jct * 1.05) {
      std::fprintf(stderr, "FAIL: reconfig avg JCT %.0f s worse than frozen %.0f s\n",
                   harsh.reconfig.avg_jct, harsh.frozen.avg_jct);
      return 1;
    }
    std::printf("ext_reconfig smoke OK: %d migrations, goodput %+.1f pts, avg JCT %+.1f min\n",
                harsh.reconfig.migrations, 100.0 * goodput_delta,
                (harsh.frozen.avg_jct - harsh.reconfig.avg_jct) / kMinute);
  }
  return 0;
}
