// Extension: validating the §5.1 closed-form pipeline-latency formula against
// dependency-exact, event-driven execution (src/runtime/pipeline_engine).
//
// The engine executes the exact dependency recurrence
// start(s,m) = max(finish(s,m-1), finish(s-1,m) + boundary(s)); for constant
// per-microbatch stage times the closed form (sum of first-pass latencies plus
// (B-1) x the bottleneck stage) is an identity of that recurrence, so the two
// paths must agree EXACTLY -- any discrepancy is an implementation bug in one
// of them. The sweep is a consistency check guarding both against drift.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/pipeline_engine.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerfModel model(cluster);
  Explorer explorer(&model);
  PipelineEngine engine(&model);

  std::vector<double> errors;
  double worst = 0.0;
  std::string worst_config;

  Table table("Formula vs event-level execution (worst row per model/type)");
  table.SetHeader({"model", "gpu type", "worst config", "formula (s)", "engine (s)", "error"});

  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kWideResNet, 1.0, 256}, ModelSpec{ModelFamily::kWideResNet, 4.0, 256},
        ModelSpec{ModelFamily::kBert, 1.3, 128}, ModelSpec{ModelFamily::kBert, 6.7, 128},
        ModelSpec{ModelFamily::kMoe, 2.4, 256}, ModelSpec{ModelFamily::kMoe, 10.0, 256}}) {
    for (GpuType type : AllGpuTypes()) {
      const JobContext ctx = model.MakeContext(spec, type);
      double row_worst = -1.0;
      std::string row_config;
      double row_formula = 0.0;
      double row_engine = 0.0;
      for (int ngpus : {4, 8, 16, 32}) {
        for (int nstages : CandidateStageCounts(*ctx.graph, ngpus)) {
          const ExploreResult r = explorer.ExploreWithinStages(ctx, ngpus, nstages);
          if (!r.best.has_value()) {
            continue;
          }
          const IterationTrace trace = engine.Execute(ctx, r.best->plan);
          const double err =
              std::abs(trace.total_time - r.best->iter_time) / r.best->iter_time;
          errors.push_back(err);
          if (err > row_worst) {
            row_worst = err;
            row_config = "x" + std::to_string(ngpus) + "/P" + std::to_string(nstages);
            row_formula = r.best->iter_time;
            row_engine = trace.total_time;
          }
          if (err > worst) {
            worst = err;
            worst_config = spec.Name() + " " + GpuName(type) + " " + row_config;
          }
        }
      }
      if (row_worst >= 0.0) {
        table.AddRow({spec.Name(), GpuName(type), row_config, Table::Fmt(row_formula, 3),
                      Table::Fmt(row_engine, 3), Table::FmtPercent(row_worst)});
      }
    }
  }
  table.Print();

  std::vector<double> sorted = errors;
  std::printf("\n%zu configurations: mean error %.2f%%, p95 %.2f%%, max %.2f%% (%s)\n",
              errors.size(), Mean(errors) * 100.0, Percentile(sorted, 95.0) * 100.0,
              worst * 100.0, worst_config.c_str());
  std::printf("Zero error expected: the closed form is exact for constant stage times;\n"
              "a non-zero row means the formula and the engine have diverged.\n");
  return 0;
}
