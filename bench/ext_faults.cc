// Extension: scheduler behavior under hardware failures (src/fault).
//
// The paper evaluates Crius on healthy clusters; this study injects
// MTBF-driven node failures and straggler windows into the testbed workload
// and compares how much useful work each scheduler salvages. Failure-driven
// reconfiguration is where adaptive parallelism should shine: Crius re-derives
// a plan against the surviving hardware while the baselines requeue jobs at
// their fixed shapes. Reported per failure rate: goodput (useful / total
// GPU-seconds), avg JCT, lost GPU-hours, failure kills, and recovery latency.

#include <cstdio>
#include <limits>

#include "bench/bench_util.h"
#include "src/fault/failure_injector.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();
  constexpr uint64_t kSeed = 42;

  PerformanceOracle oracle(cluster, kSeed);
  TraceConfig trace_config = PhillySixHourConfig();
  trace_config.seed = kSeed;
  const auto trace = GenerateTrace(cluster, oracle, trace_config);
  double trace_end = 0.0;
  for (const TrainingJob& job : trace) {
    trace_end = std::max(trace_end, job.submit_time);
  }

  // Node-MTBF sweep, healthy -> harsh. 0 = no injection (the control).
  const double mtbf_hours[] = {0.0, 24.0, 8.0, 2.0};
  const int num_rates = static_cast<int>(std::size(mtbf_hours));
  constexpr double kStragglerRate = 0.01;  // windows per node per hour
  constexpr double kCheckpointIntervalS = 30.0 * kMinute;

  std::vector<std::string> names;
  // [rate][scheduler]
  std::vector<std::vector<SimResult>> results(static_cast<size_t>(num_rates));

  for (int ri = 0; ri < num_rates; ++ri) {
    SimConfig config;
    config.checkpoint.interval = kCheckpointIntervalS;
    if (mtbf_hours[ri] > 0.0) {
      FailureInjectorConfig faults;
      faults.node_mtbf_hours = mtbf_hours[ri];
      faults.straggler_rate = kStragglerRate;
      faults.seed = kSeed;
      faults.horizon = std::max(trace_end, 1.0) * config.max_time_factor + 24.0 * kHour;
      config.failures = GenerateFailureSchedule(cluster, faults);
      config.node_mtbf = mtbf_hours[ri] * kHour;
    }
    Simulator sim(cluster, config);
    auto schedulers = MakeAllSchedulers(&oracle);
    for (auto& scheduler : schedulers) {
      results[static_cast<size_t>(ri)].push_back(sim.Run(*scheduler, oracle, trace));
      if (ri == 0) {
        names.push_back(results[0].back().scheduler);
      }
    }
  }

  auto rate_label = [&](int ri) {
    return mtbf_hours[ri] <= 0.0 ? std::string("healthy")
                                 : "MTBF " + Table::Fmt(mtbf_hours[ri], 0) + "h";
  };

  Table goodput("Goodput (useful / total GPU-seconds) vs node failure rate, "
                "244-job testbed trace");
  Table jct("Avg JCT vs node failure rate");
  Table lost("Lost GPU-hours (work rolled back by failures)");
  Table kills("Failure kills / failure-initiated restarts per run");
  Table recovery("Avg recovery latency (failure kill -> job computing again)");
  {
    std::vector<std::string> header = {"scheduler"};
    for (int ri = 0; ri < num_rates; ++ri) {
      header.push_back(rate_label(ri));
    }
    goodput.SetHeader(header);
    jct.SetHeader(header);
    lost.SetHeader(header);
    kills.SetHeader(header);
    recovery.SetHeader(header);
  }
  for (size_t sc = 0; sc < names.size(); ++sc) {
    std::vector<std::string> g = {names[sc]}, j = {names[sc]}, l = {names[sc]},
                             k = {names[sc]}, rl = {names[sc]};
    for (int ri = 0; ri < num_rates; ++ri) {
      const SimResult& r = results[static_cast<size_t>(ri)][sc];
      g.push_back(Table::FmtPercent(r.goodput));
      j.push_back(Minutes(r.avg_jct));
      l.push_back(Table::Fmt(r.lost_gpu_seconds / kHour, 1));
      k.push_back(Table::FmtInt(r.failure_kills));
      rl.push_back(r.recovery_latencies.empty() ? "-" : Minutes(r.avg_recovery_latency));
    }
    goodput.AddRow(g);
    jct.AddRow(j);
    lost.AddRow(l);
    kills.AddRow(k);
    recovery.AddRow(rl);
  }
  goodput.Print();
  jct.Print();
  lost.Print();
  kills.Print();
  recovery.Print();

  // Headline: Crius's goodput margin at the harshest failure rate.
  const auto& harsh = results[static_cast<size_t>(num_rates - 1)];
  const SimResult& crius = harsh.back();
  double best_baseline = -std::numeric_limits<double>::infinity();
  for (size_t sc = 0; sc + 1 < harsh.size(); ++sc) {
    best_baseline = std::max(best_baseline, harsh[sc].goodput);
  }
  std::printf("\nAt MTBF %.0fh: Crius goodput %.1f%%, best baseline %.1f%% (%+.1f pts)\n",
              mtbf_hours[num_rates - 1], 100.0 * crius.goodput, 100.0 * best_baseline,
              100.0 * (crius.goodput - best_baseline));
  return 0;
}
