// Extension: solver-style placement ordering (§6's "techniques based on
// solvers could also be applied to enhance Crius; orthogonal to its focus").
//
// Algorithm 1 offers queued jobs placement in FIFO order. This study compares
// alternative orders -- estimated-throughput-density first, smallest-request
// first -- and the best-of-all meta policy that virtually evaluates every
// order each round and keeps the highest-scoring outcome. All variants use
// the identical Cell estimates; only the choice enumeration widens.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 42);
  TraceConfig config = PhillySixHourConfig();
  config.load = 2.0;  // ordering only matters under contention
  config.num_jobs = 300;
  config.name = "philly-6h-solver";
  config.seed = 7401;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Placement-order study: %zu jobs, offered load %.1fx\n", trace.size(),
              config.load);

  Table table("Extension: Crius placement orders");
  table.SetHeader({"order", "avg JCT", "median JCT", "avg queue", "avg thr", "restarts",
                   "sched calls note"});
  const struct {
    const char* label;
    CriusPlacementOrder order;
  } variants[] = {
      {"FIFO (Algorithm 1)", CriusPlacementOrder::kFifo},
      {"score density first", CriusPlacementOrder::kScoreDensity},
      {"smallest first", CriusPlacementOrder::kSmallestFirst},
      {"best-of-all (solver-lite)", CriusPlacementOrder::kBestOfAll},
  };
  for (const auto& variant : variants) {
    CriusConfig cc;
    cc.placement_order = variant.order;
    CriusScheduler crius(&oracle, cc);
    TimedScheduler timed(&crius);
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(timed, oracle, trace);
    table.AddRow({variant.label, Minutes(r.avg_jct), Minutes(r.median_jct),
                  Minutes(r.avg_queue_time), Table::Fmt(r.avg_throughput, 2),
                  Table::Fmt(r.avg_restarts, 2),
                  Table::Fmt(timed.total_seconds() / std::max(1, timed.calls()) * 1e3, 3) +
                      " ms/call"});
  }
  table.Print();
  std::printf("\nExpected shape: non-FIFO orders trade queuing fairness for throughput;\n"
              "best-of-all never scores below FIFO on estimated throughput and costs ~3x\n"
              "the (sub-millisecond) scheduling time -- consistent with the paper's view\n"
              "that solver-style choice enumeration is an orthogonal enhancement.\n");
  return 0;
}
