// Extension: microbatch-count sensitivity.
//
// The paper fixes the microbatch count at B = 4 x stages, "following GPipe"
// (Fig. 10). This study sweeps the factor: fewer microbatches mean larger
// per-kernel batches (better utilization) but a larger pipeline bubble
// ((B-1) amortization is weaker); more microbatches shrink the bubble but
// starve the kernels and inflate activation-memory pressure less (smaller
// in-flight microbatches). The sweep shows where 4x sits on that trade-off.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/pipeline_engine.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerfModel model(cluster);
  Explorer explorer(&model);
  PipelineEngine engine(&model);

  Table table("Extension: microbatch factor sweep (B = factor x stages)");
  table.SetHeader({"config", "stages", "factor", "iter (s)", "vs 4x", "bubble",
                   "max stage mem (GiB)"});

  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kBert, 2.6, 128}, ModelSpec{ModelFamily::kWideResNet, 2.0, 256},
        ModelSpec{ModelFamily::kMoe, 10.0, 256}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40}) {
      const JobContext ctx = model.MakeContext(spec, type);
      for (int nstages : {4, 8}) {
        // The §4.2 stages + the GPipe-default optimal split as the base plan.
        const ExploreResult r = explorer.ExploreWithinStages(ctx, 16, nstages);
        if (!r.best.has_value()) {
          continue;
        }
        double base_iter = 0.0;
        {
          ParallelPlan base = r.best->plan;
          base.microbatch_factor = 4;
          const PlanEval eval = model.Evaluate(ctx, base);
          base_iter = eval.feasible ? eval.iter_time : 0.0;
        }
        for (int factor : {1, 2, 4, 8, 16}) {
          ParallelPlan plan = r.best->plan;
          plan.microbatch_factor = factor;
          const PlanEval eval = model.Evaluate(ctx, plan);
          if (!eval.feasible) {
            table.AddRow({spec.Name() + " " + GpuName(type), "P" + std::to_string(nstages),
                          std::to_string(factor) + "x", "OOM", "-", "-",
                          Table::Fmt(eval.max_stage_mem / kGiB, 1)});
            continue;
          }
          const IterationTrace trace = engine.Execute(ctx, plan);
          table.AddRow({spec.Name() + " " + GpuName(type), "P" + std::to_string(nstages),
                        std::to_string(factor) + "x", Table::Fmt(eval.iter_time, 3),
                        base_iter > 0.0 ? Ratio(eval.iter_time, base_iter) : "-",
                        Table::FmtPercent(trace.BubbleFraction()),
                        Table::Fmt(eval.max_stage_mem / kGiB, 1)});
        }
      }
    }
  }
  table.Print();
  std::printf("\nExpected shape: 1x pays a huge bubble, 16x pays kernel-efficiency loss and\n"
              "wins nothing; the paper's 4x sits near the knee. ('vs 4x' < 1.00x for a\n"
              "factor means it beats the GPipe default there.)\n");
  return 0;
}
