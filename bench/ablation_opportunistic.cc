// Extension ablation: opportunistic execution (§6.1).
//
// When idle resources cannot fit the queue's head (a big job), Crius pends it
// and opportunistically launches later small jobs, suspending them once the
// pending job's requirement is satisfiable. Disabling the mechanism makes the
// scheduler hold capacity idle behind the blocked head. The workload is a
// repeating pattern of one capacity-sized job followed by a burst of small
// ones -- the worst case for head-of-line blocking.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  // Single GPU type: heterogeneity scaling cannot sidestep the blocked head,
  // so the opportunistic mechanism itself carries the load.
  Cluster cluster = ParseClusterSpec("A40:16x2");
  PerformanceOracle oracle(cluster, 42);

  // Hand-built adversarial trace, repeated waves of:
  //   t+0     4 medium jobs fill most of the pool,
  //   t+2min  a whole-pool job arrives (pends until the mediums drain),
  //   t+4min+ a burst of small jobs that only opportunistic execution can run.
  std::vector<TrainingJob> trace;
  int64_t id = 0;
  std::vector<bool> is_big;
  for (int wave = 0; wave < 3; ++wave) {
    const double t0 = wave * 100.0 * kMinute;
    for (int i = 0; i < 4; ++i) {
      TrainingJob medium;
      medium.id = id++;
      medium.spec = ModelSpec{ModelFamily::kBert, 1.3, 128};
      medium.requested_gpus = 4;
      medium.requested_type = GpuType::kA40;
      medium.submit_time = t0;
      medium.iterations = 700;
      trace.push_back(medium);
      is_big.push_back(false);
    }
    TrainingJob big;
    big.id = id++;
    big.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
    big.requested_gpus = 32;
    big.requested_type = GpuType::kA40;
    big.submit_time = t0 + 2.0 * kMinute;
    big.iterations = 150;
    trace.push_back(big);
    is_big.push_back(true);
    for (int i = 0; i < 10; ++i) {
      TrainingJob small;
      small.id = id++;
      small.spec = ModelSpec{ModelFamily::kBert, 0.76, 128};
      small.requested_gpus = 2;
      small.requested_type = GpuType::kA40;
      small.submit_time = t0 + (4.0 + i) * kMinute;
      small.iterations = 300;
      trace.push_back(small);
      is_big.push_back(false);
    }
  }
  std::printf("Adversarial head-of-line workload: %zu jobs\n", trace.size());

  Table table("Ablation: opportunistic execution (§6.1)");
  table.SetHeader({"variant", "avg JCT", "big-job avg JCT", "small-job avg JCT",
                   "gpu util", "avg thr"});
  for (bool opportunistic : {true, false}) {
    CriusConfig config;
    config.opportunistic = opportunistic;
    CriusScheduler sched(&oracle, config);
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(sched, oracle, trace);
    double big_jct = 0.0;
    int big_n = 0;
    double small_jct = 0.0;
    int small_n = 0;
    for (const JobRecord& rec : r.jobs) {
      if (!rec.finished) {
        continue;
      }
      const bool big_one = is_big[static_cast<size_t>(rec.id)];
      (big_one ? big_jct : small_jct) += rec.jct();
      (big_one ? big_n : small_n) += 1;
    }
    table.AddRow({opportunistic ? "opportunistic (default)" : "strict FIFO head",
                  Minutes(r.avg_jct), big_n ? Minutes(big_jct / big_n) : "-",
                  small_n ? Minutes(small_jct / small_n) : "-",
                  Table::FmtPercent(r.avg_gpu_utilization),
                  Table::Fmt(r.avg_throughput, 2)});
  }
  table.Print();
  std::printf("\nExpected shape: the pending whole-pool job finishes markedly sooner with\n"
              "opportunistic execution -- later jobs launched opportunistically are\n"
              "evictable the moment the pending job's requirement is satisfiable, whereas\n"
              "the strict head leaves it waiting on whatever normal completions happen to\n"
              "free (§6.1's starvation-avoidance guarantee).\n");
  return 0;
}
