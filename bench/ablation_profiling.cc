// Extension ablation: is Crius's online profiling budget (§8.2) actually
// affordable?
//
// Crius charges every new job a single-GPU Cell-profiling delay (bounded by
// 30 minutes) before it becomes schedulable. This experiment runs the testbed
// workload with the charge on and off, and also with an exaggerated 10x
// profiling cost, to show (a) the default budget costs little end to end and
// (b) Crius still beats the strongest baseline even with the charge inflated.

#include <cstdio>

#include "bench/bench_util.h"

namespace crius {
namespace {

// Wraps a scheduler and scales its profiling delay (failure-injection knob).
class ScaledProfilingScheduler : public Scheduler {
 public:
  ScaledProfilingScheduler(Scheduler* inner, double scale)
      : Scheduler(nullptr), inner_(inner), scale_(scale) {}
  std::string name() const override { return inner_->name(); }
  ScheduleDecision Schedule(const RoundContext& round) override {
    return inner_->Schedule(round);
  }
  double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) override {
    return scale_ * inner_->ProfilingDelay(job, cluster);
  }

 private:
  Scheduler* inner_;
  double scale_;
};

}  // namespace
}  // namespace crius

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, oracle, PhillySixHourConfig());

  Table table("Ablation: Cell-profiling cost (§8.2)");
  table.SetHeader({"configuration", "avg JCT", "avg queue", "avg thr"});

  struct Row {
    const char* label;
    double scale;
    bool charge;
  };
  const Row rows[] = {
      {"Crius, profiling free", 1.0, false},
      {"Crius, profiling charged (default)", 1.0, true},
      {"Crius, profiling cost x10", 10.0, true},
  };
  for (const Row& row : rows) {
    CriusScheduler crius(&oracle, CriusConfig{});
    ScaledProfilingScheduler scaled(&crius, row.scale);
    SimConfig config;
    config.charge_profiling = row.charge;
    Simulator sim(cluster, config);
    const SimResult r = sim.Run(scaled, oracle, trace);
    table.AddRow({row.label, Minutes(r.avg_jct), Minutes(r.avg_queue_time),
                  Table::Fmt(r.avg_throughput, 2)});
  }
  // Strongest baseline for context.
  {
    GavelScheduler gavel(&oracle);
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(gavel, oracle, trace);
    table.AddRow({"Gavel (best baseline, no profiling)", Minutes(r.avg_jct),
                  Minutes(r.avg_queue_time), Table::Fmt(r.avg_throughput, 2)});
  }
  table.Print();
  std::printf("\nExpected shape: the default charge costs a few minutes of JCT; even a 10x\n"
              "inflated profiling budget leaves Crius ahead of the best baseline.\n");
  return 0;
}
