// Table 2: model configurations, as realized by the operator-graph builders.
// Prints the nominal vs built parameter counts and the per-family batches so
// the substitution for the real Wide-ResNet / BERT / GShard-MoE checkpoints is
// auditable.

#include "bench/bench_util.h"
#include "src/model/models.h"
#include "src/util/units.h"

int main() {
  using namespace crius;

  Table table("Table 2: model configurations (built from architecture formulas)");
  table.SetHeader({"model", "nominal params", "built params", "operators",
                   "fwd GFLOPs/sample", "activation MB/sample", "global batches"});

  for (ModelFamily family :
       {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    for (double size : SupportedSizes(family)) {
      const ModelSpec spec{family, size, SupportedBatches(family)[0]};
      const OpGraph& g = GetOpGraph(spec);
      std::string batches;
      for (int64_t b : SupportedBatches(family)) {
        if (!batches.empty()) {
          batches += ",";
        }
        batches += std::to_string(b);
      }
      table.AddRow({spec.Name(), Table::Fmt(size, 2) + "B",
                    Table::Fmt(g.TotalParamBytes() / 2.0 / kBillion, 2) + "B",
                    Table::FmtInt(static_cast<int64_t>(g.size())),
                    Table::Fmt(g.TotalFwdFlops() / 1e9, 1),
                    Table::Fmt(g.ActBytes(0, g.size()) / 1e6, 1), batches});
    }
  }
  table.Print();
  return 0;
}
