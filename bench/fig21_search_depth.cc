// Figure 21: impact of the search-depth hyperparameter (§8.7).
//
//   (a) per-job scheduling overhead grows with depth (paper: 0.88s -> 5.98s;
//       absolute numbers differ on this substrate -- the simulator evaluates
//       cached analytical estimates instead of RPC-ing a real cluster -- but
//       the growth shape is the claim);
//   (b/c) deeper search lowers average JCT (paper: -14.6%) and nudges average
//       throughput up (paper: +1.03%).
//
// Following the paper, job-submission density is increased to stress the
// scheduler ("extremely heavy workloads").

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 42);

  TraceConfig config = PhillySixHourConfig();
  config.name = "philly-6h-dense";
  config.seed = 7201;
  config.num_jobs = 360;
  config.load = 2.2;  // extremely heavy
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Search-depth trace: %zu jobs, offered load %.1fx capacity\n", trace.size(),
              config.load);

  Table table("Fig. 21 Search-depth sweep");
  table.SetHeader({"depth", "sched time/call (ms)", "sched calls", "avg JCT", "JCT vs depth 0",
                   "avg thr", "thr vs depth 0"});

  double jct0 = 0.0;
  double thr0 = 0.0;
  for (int depth : {0, 1, 2, 3, 5, 8}) {
    CriusConfig cc;
    cc.search_depth = depth;
    CriusScheduler crius(&oracle, cc);
    TimedScheduler timed(&crius);
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(timed, oracle, trace);
    if (depth == 0) {
      jct0 = r.avg_jct;
      thr0 = r.avg_throughput;
    }
    table.AddRow({Table::FmtInt(depth),
                  Table::Fmt(timed.total_seconds() / std::max(1, timed.calls()) * 1e3, 3),
                  Table::FmtInt(timed.calls()), Minutes(r.avg_jct),
                  depth == 0 ? "-" : Table::FmtPercent(r.avg_jct / jct0 - 1.0),
                  Table::Fmt(r.avg_throughput, 2),
                  depth == 0 ? "-" : Table::FmtPercent(r.avg_throughput / thr0 - 1.0)});
  }
  table.Print();
  std::printf("\nExpected shape: overhead grows with depth; JCT improves (paper -14.6%% at the\n"
              "deepest setting) and throughput improves slightly (paper +1.03%%).\n");
  return 0;
}
