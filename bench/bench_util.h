// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/util/table.h"
#include "src/util/threadpool.h"

namespace crius {

// Strictly parses a --threads value; warns and returns `fallback` on anything
// that is not a positive decimal integer (atoi would silently turn garbage
// into 0 and mask the typo).
inline int ParseThreadsOrWarn(const char* value, int fallback) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 1 || parsed > 4096) {
    std::fprintf(stderr,
                 "warning: ignoring --threads value '%s' (expected a positive integer); "
                 "using %d\n",
                 value, fallback);
    return fallback;
  }
  return static_cast<int>(parsed);
}

// Parses the one flag the bench binaries share -- "--threads N" (or
// "--threads=N") -- and sizes the global pool accordingly. Per-seed and
// per-scheduler sweep runs fan out over the pool; results are bit-identical
// across thread counts.
inline void ConfigureBenchThreads(int argc, char** argv) {
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 < argc) {
        threads = ParseThreadsOrWarn(argv[i + 1], threads);
        ++i;
      } else {
        std::fprintf(stderr, "warning: --threads given without a value; using %d\n", threads);
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = ParseThreadsOrWarn(argv[i] + 10, threads);
    }
  }
  ThreadPool::SetGlobalThreads(threads);
}

// The five schedulers of §8.1, in the paper's presentation order.
inline std::vector<std::unique_ptr<Scheduler>> MakeAllSchedulers(PerformanceOracle* oracle) {
  std::vector<std::unique_ptr<Scheduler>> out;
  out.push_back(std::make_unique<FcfsScheduler>(oracle));
  out.push_back(std::make_unique<GandivaScheduler>(oracle));
  out.push_back(std::make_unique<GavelScheduler>(oracle));
  out.push_back(std::make_unique<ElasticFlowScheduler>(oracle, ElasticFlowConfig{}));
  out.push_back(std::make_unique<CriusScheduler>(oracle, CriusConfig{}));
  return out;
}

// Wraps a scheduler and accumulates wall-clock time of Schedule() calls
// (the §8.7 scheduling-overhead measurement).
class TimedScheduler : public Scheduler {
 public:
  explicit TimedScheduler(Scheduler* inner) : Scheduler(nullptr), inner_(inner) {}

  std::string name() const override { return inner_->name(); }

  ScheduleDecision Schedule(const RoundContext& round) override {
    const auto start = std::chrono::steady_clock::now();
    ScheduleDecision d = inner_->Schedule(round);
    const auto end = std::chrono::steady_clock::now();
    total_seconds_ += std::chrono::duration<double>(end - start).count();
    ++calls_;
    return d;
  }

  double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) override {
    return inner_->ProfilingDelay(job, cluster);
  }

  double total_seconds() const { return total_seconds_; }
  int calls() const { return calls_; }

 private:
  Scheduler* inner_;
  double total_seconds_ = 0.0;
  int calls_ = 0;
};

// Normalizes `value` against the row printed for a baseline.
inline std::string Ratio(double value, double baseline) {
  if (baseline <= 0.0) {
    return "-";
  }
  return Table::FmtFactor(value / baseline);
}

inline std::string Hours(double seconds) {
  return Table::Fmt(seconds / kHour, 2) + "h";
}

inline std::string Minutes(double seconds) {
  return Table::Fmt(seconds / kMinute, 1) + "m";
}

}  // namespace crius

#endif  // BENCH_BENCH_UTIL_H_
