// Shared helpers for the figure-reproduction benchmark binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/util/benchdiff.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/threadpool.h"

namespace crius {

// Parses the one flag the bench binaries share -- "--threads N" (or
// "--threads=N") -- and sizes the global pool accordingly. Routed through
// FlagSet::ParseKnown so a malformed value warns and keeps the default
// instead of silently turning garbage into 0, and so flags owned by the
// bench binary itself pass through untouched. Per-seed and per-scheduler
// sweep runs fan out over the pool; results are bit-identical across thread
// counts.
inline void ConfigureBenchThreads(int argc, char** argv) {
  int64_t threads = 1;
  FlagSet flags("bench", "shared benchmark flags");
  flags.Int("threads", &threads, "worker threads for sweep fan-out");
  flags.ParseKnown(argc, argv);
  if (threads < 1 || threads > 4096) {
    std::fprintf(stderr, "warning: ignoring --threads value %lld (expected 1..4096); using 1\n",
                 static_cast<long long>(threads));
    threads = 1;
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(threads));
}

// The five schedulers of §8.1, in the paper's presentation order.
inline std::vector<std::unique_ptr<Scheduler>> MakeAllSchedulers(PerformanceOracle* oracle) {
  std::vector<std::unique_ptr<Scheduler>> out;
  out.push_back(std::make_unique<FcfsScheduler>(oracle));
  out.push_back(std::make_unique<GandivaScheduler>(oracle));
  out.push_back(std::make_unique<GavelScheduler>(oracle));
  out.push_back(std::make_unique<ElasticFlowScheduler>(oracle, ElasticFlowConfig{}));
  out.push_back(std::make_unique<CriusScheduler>(oracle, CriusConfig{}));
  return out;
}

// Wraps a scheduler and accumulates wall-clock time of Schedule() calls
// (the §8.7 scheduling-overhead measurement).
class TimedScheduler : public Scheduler {
 public:
  explicit TimedScheduler(Scheduler* inner) : Scheduler(nullptr), inner_(inner) {}

  std::string name() const override { return inner_->name(); }

  ScheduleDecision Schedule(const RoundContext& round) override {
    const auto start = std::chrono::steady_clock::now();
    ScheduleDecision d = inner_->Schedule(round);
    const auto end = std::chrono::steady_clock::now();
    total_seconds_ += std::chrono::duration<double>(end - start).count();
    ++calls_;
    return d;
  }

  double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) override {
    return inner_->ProfilingDelay(job, cluster);
  }

  double total_seconds() const { return total_seconds_; }
  int calls() const { return calls_; }

 private:
  Scheduler* inner_;
  double total_seconds_ = 0.0;
  int calls_ = 0;
};

// The bench binaries deliberately scan argv by hand instead of declaring a
// FlagSet: every binary must ignore the driver-level flags it does not own
// (--threads for the pool, --json for the report) and FlagSet::Parse rejects
// unknown flags. These helpers keep that scanning in one place.

// True when `flag` (e.g. "--smoke") appears verbatim in argv.
inline bool BenchFlagPresent(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

// Value of "--name VALUE" / "--name=VALUE", or "" when absent.
inline std::string BenchFlagValue(int argc, char** argv, const char* flag) {
  const size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return "";
}

// Integer value of "--name N" / "--name=N", or `fallback` when the flag is
// absent or its value does not parse as an integer.
inline int64_t BenchFlagInt(int argc, char** argv, const char* flag, int64_t fallback) {
  const std::string value = BenchFlagValue(argc, argv, flag);
  if (value.empty()) {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "warning: ignoring non-integer value '%s' for %s\n", value.c_str(),
                 flag);
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

// Path of the shared "--json PATH" bench-report flag; empty = no report.
inline std::string BenchReportPathFromArgs(int argc, char** argv) {
  return BenchFlagValue(argc, argv, "--json");
}

// Writes `report` to `path` (no-op when the flag was absent). The emitted
// per-metric thresholds become the checked-in baseline's thresholds when a
// run is promoted to bench/baselines/, so benches stamp loose bounds on
// noisy wall-time metrics and tight ones on dimensionless ratios there.
inline bool EmitBenchReport(const BenchReport& report, const std::string& path) {
  if (path.empty()) {
    return true;
  }
  if (!report.WriteFile(path)) {
    std::fprintf(stderr, "error: cannot write bench report %s\n", path.c_str());
    return false;
  }
  std::printf("Bench report written to %s\n", path.c_str());
  return true;
}

// Normalizes `value` against the row printed for a baseline.
inline std::string Ratio(double value, double baseline) {
  if (baseline <= 0.0) {
    return "-";
  }
  return Table::FmtFactor(value / baseline);
}

inline std::string Hours(double seconds) {
  return Table::Fmt(seconds / kHour, 2) + "h";
}

inline std::string Minutes(double seconds) {
  return Table::Fmt(seconds / kMinute, 1) + "m";
}

}  // namespace crius

#endif  // BENCH_BENCH_UTIL_H_
