// Figure 13: Cell-guided parallelism tuning.
//
//   (a) tuning accuracy = 1 - (T_c - T_o)/T_o where T_c is the iteration time
//       of the plan found by Cell-guided (pruned) tuning and T_o is the
//       full-space optimum (paper: 96.2% average);
//   (b) tuning-time reduction: GPU time of the unpruned in-Cell search over
//       the pruned one (paper: 5.48x average, 10.88x maximum).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/oracle.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);
  const Explorer& explorer = oracle.explorer();
  CellTuner tuner(&explorer);

  struct Config {
    ModelSpec spec;
    int ngpus;
  };
  const Config configs[] = {
      {{ModelFamily::kWideResNet, 1.0, 256}, 4},  {{ModelFamily::kBert, 1.3, 128}, 4},
      {{ModelFamily::kMoe, 1.3, 256}, 4},         {{ModelFamily::kWideResNet, 2.0, 256}, 8},
      {{ModelFamily::kBert, 2.6, 128}, 8},        {{ModelFamily::kMoe, 2.4, 256}, 8},
      {{ModelFamily::kWideResNet, 4.0, 256}, 16}, {{ModelFamily::kBert, 6.7, 128}, 16},
      {{ModelFamily::kMoe, 10.0, 256}, 16},
  };

  Table table("Fig. 13 Cell-guided tuning: accuracy and time reduction");
  table.SetHeader({"config", "gpu type", "cell", "tuned (s)", "optimal (s)", "accuracy",
                   "unpruned gpu-time", "pruned gpu-time", "reduction"});

  std::vector<double> accuracies;
  std::vector<double> reductions;

  for (const auto& config : configs) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40, GpuType::kV100}) {
      for (int nstages : {1, 2, 4}) {
        const Cell cell{type, config.ngpus, nstages};
        const CellEstimate& est = oracle.EstimateCell(config.spec, cell);
        if (!est.feasible) {
          continue;
        }
        const JobContext ctx = oracle.perf_model().MakeContext(config.spec, type);
        const TuneResult tuned = tuner.Tune(ctx, cell, est);
        const TuneResult full = tuner.TuneUnpruned(ctx, cell);
        if (!tuned.best.has_value() || !full.best.has_value()) {
          continue;
        }
        const double acc =
            1.0 - (tuned.best->iter_time - full.best->iter_time) / full.best->iter_time;
        const double reduction =
            full.tune_gpu_seconds / std::max(1.0, tuned.tune_gpu_seconds);
        accuracies.push_back(acc);
        reductions.push_back(reduction);
        if (nstages == 2) {
          table.AddRow({config.spec.Name() + " x" + std::to_string(config.ngpus),
                        GpuName(type), cell.ToString(), Table::Fmt(tuned.best->iter_time, 3),
                        Table::Fmt(full.best->iter_time, 3), Table::FmtPercent(acc),
                        Table::Fmt(full.tune_gpu_seconds, 0) + "s",
                        Table::Fmt(tuned.tune_gpu_seconds, 0) + "s",
                        Table::FmtFactor(reduction)});
        }
      }
    }
  }
  table.Print();

  Table summary("Fig. 13 summary (paper: accuracy 96.2% avg; reduction 5.48x avg / 10.88x max)");
  summary.SetHeader({"metric", "average", "extreme"});
  summary.AddRow({"tuning accuracy", Table::FmtPercent(Mean(accuracies)),
                  Table::FmtPercent(Min(accuracies)) + " (worst)"});
  summary.AddRow({"tuning-time reduction", Table::FmtFactor(Mean(reductions)),
                  Table::FmtFactor(Max(reductions)) + " (max)"});
  summary.Print();
  return 0;
}
