// Extension: per-round scheduler latency of the event-driven incremental core.
//
// The RoundContext redesign lets CriusScheduler keep its per-job cell ranking
// across rounds and re-estimate only the jobs the round's event delta actually
// dirtied. This sweep measures what that buys: it runs the same trace twice --
// once with CriusConfig::incremental on, once re-ranking every job from
// scratch each round (the literal Algorithm 1) -- and reports per-round
// Schedule() wall latency. The headline number is the median over
// *steady-state* rounds (rounds whose event delta is empty), where the
// incremental path should serve the entire ranking from the memo.
//
// Each mode gets a fresh PerformanceOracle so neither run benefits from the
// other's warmed estimate caches; decisions are bit-identical either way
// (tests/incremental_equivalence_test enforces that), so both runs schedule
// the exact same rounds.
//
// Modes:
//   default   heavy week-long trace on the 1280-GPU simulated cluster -- the
//             measurement behind the ">= 2x steady-state median" claim.
//   --smoke   244-job testbed trace subset; exits non-zero if the incremental
//             path is *slower* than full recompute (CI regression gate).
//   --jobs N  override the trace's job count (0 = keep the preset's default).
//   --json F  write a BENCH_rounds.json perf-trajectory report to F
//             (compared against bench/baselines/ by crius_benchdiff in CI).

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/util/stats.h"

namespace crius {
namespace {

struct RoundSample {
  double seconds = 0.0;
  bool steady = false;   // the round's event delta was empty
  size_t jobs = 0;       // visible jobs handed to the scheduler
};

// Wraps CriusScheduler and records the wall latency of every Schedule() call
// together with whether the round was steady-state.
class RoundLatencyScheduler : public Scheduler {
 public:
  explicit RoundLatencyScheduler(Scheduler* inner) : Scheduler(nullptr), inner_(inner) {}

  std::string name() const override { return inner_->name(); }

  ScheduleDecision Schedule(const RoundContext& round) override {
    const bool steady = round.events().empty();
    const auto start = std::chrono::steady_clock::now();
    ScheduleDecision d = inner_->Schedule(round);
    const auto end = std::chrono::steady_clock::now();
    samples_.push_back(RoundSample{std::chrono::duration<double>(end - start).count(), steady,
                                   round.jobs().size()});
    return d;
  }

  double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) override {
    return inner_->ProfilingDelay(job, cluster);
  }

  const std::vector<RoundSample>& samples() const { return samples_; }

 private:
  Scheduler* inner_;
  std::vector<RoundSample> samples_;
};

struct ModeStats {
  size_t rounds = 0;
  size_t steady_rounds = 0;
  double median_all_ms = 0.0;
  double median_steady_ms = 0.0;
  double p95_steady_ms = 0.0;
  double mean_steady_ms = 0.0;
};

ModeStats Summarize(const std::vector<RoundSample>& samples) {
  ModeStats s;
  std::vector<double> all_ms, steady_ms;
  for (const RoundSample& sample : samples) {
    all_ms.push_back(sample.seconds * 1e3);
    if (sample.steady) {
      steady_ms.push_back(sample.seconds * 1e3);
    }
  }
  s.rounds = all_ms.size();
  s.steady_rounds = steady_ms.size();
  s.median_all_ms = Median(all_ms);
  if (!steady_ms.empty()) {
    s.median_steady_ms = Median(steady_ms);
    s.p95_steady_ms = Percentile(steady_ms, 95.0);
    s.mean_steady_ms = Mean(steady_ms);
  }
  return s;
}

// One full simulation with a fresh oracle and scheduler; returns the per-round
// latency samples.
std::vector<RoundSample> RunMode(const Cluster& cluster, const std::vector<TrainingJob>& trace,
                                 bool incremental) {
  PerformanceOracle oracle(cluster, 42);
  CriusConfig config;
  config.incremental = incremental;
  CriusScheduler sched(&oracle, config);
  RoundLatencyScheduler timed(&sched);
  Simulator sim(cluster, SimConfig{});
  sim.Run(timed, oracle, trace);
  return timed.samples();
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  using namespace crius;
  ConfigureBenchThreads(argc, argv);
  const bool smoke = BenchFlagPresent(argc, argv, "--smoke");
  const int jobs_override = static_cast<int>(BenchFlagInt(argc, argv, "--jobs", 0));

  Cluster cluster = smoke ? MakePhysicalTestbed() : MakeSimulatedCluster();
  TraceConfig trace_config = smoke ? PhillySixHourConfig() : PhillyWeekHeavyConfig();
  trace_config.seed = 42;
  if (smoke) {
    trace_config.num_jobs = 48;
  }
  if (jobs_override > 0) {
    trace_config.num_jobs = jobs_override;
  }
  PerformanceOracle trace_oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, trace_oracle, trace_config);
  std::printf("trace %s: %zu jobs on %s cluster (%s)\n", trace_config.name.c_str(), trace.size(),
              smoke ? "testbed" : "simulated", smoke ? "smoke" : "full sweep");

  // Incremental first: its oracle starts cold, so any cold-cache penalty lands
  // on the incremental side and the reported speedup is conservative.
  const std::vector<RoundSample> inc_samples = RunMode(cluster, trace, /*incremental=*/true);
  const std::vector<RoundSample> full_samples = RunMode(cluster, trace, /*incremental=*/false);
  const ModeStats inc = Summarize(inc_samples);
  const ModeStats full = Summarize(full_samples);

  Table table("Per-round Schedule() latency, incremental vs full recompute");
  table.SetHeader({"mode", "rounds", "steady", "med all (ms)", "med steady (ms)",
                   "p95 steady (ms)", "mean steady (ms)"});
  auto row = [&](const char* label, const ModeStats& s) {
    table.AddRow({label, Table::FmtInt(static_cast<int64_t>(s.rounds)),
                  Table::FmtInt(static_cast<int64_t>(s.steady_rounds)), Table::Fmt(s.median_all_ms, 3),
                  Table::Fmt(s.median_steady_ms, 3), Table::Fmt(s.p95_steady_ms, 3),
                  Table::Fmt(s.mean_steady_ms, 3)});
  };
  row("incremental", inc);
  row("full recompute", full);
  table.Print();

  if (inc.steady_rounds > 0 && full.steady_rounds > 0 && inc.median_steady_ms > 0.0) {
    std::printf("\nSteady-state median speedup: %.2fx (full %.3f ms -> incremental %.3f ms)\n",
                full.median_steady_ms / inc.median_steady_ms, full.median_steady_ms,
                inc.median_steady_ms);
  }
  if (inc.median_all_ms > 0.0) {
    std::printf("Overall median speedup: %.2fx (full %.3f ms -> incremental %.3f ms)\n",
                full.median_all_ms / inc.median_all_ms, full.median_all_ms, inc.median_all_ms);
  }

  const std::string report_path = BenchReportPathFromArgs(argc, argv);
  if (!report_path.empty()) {
    BenchReport report;
    report.bench = "ext_rounds";
    report.meta["mode"] = smoke ? "smoke" : "full";
    report.meta["trace"] = trace_config.name;
    report.meta["jobs"] = std::to_string(trace.size());
    // Wall-time metrics carry loose thresholds (CI machines are noisy);
    // the speedup ratio is dimensionless and gates tighter.
    report.AddMetric("incremental.median_all_ms", inc.median_all_ms, "ms", "lower", 3.0);
    report.AddMetric("incremental.median_steady_ms", inc.median_steady_ms, "ms", "lower", 3.0);
    report.AddMetric("incremental.p95_steady_ms", inc.p95_steady_ms, "ms", "lower", 4.0);
    report.AddMetric("full.median_all_ms", full.median_all_ms, "ms", "lower", 3.0);
    report.AddMetric("full.median_steady_ms", full.median_steady_ms, "ms", "lower", 3.0);
    const double steady_speedup =
        inc.median_steady_ms > 0.0 ? full.median_steady_ms / inc.median_steady_ms : 0.0;
    report.AddMetric("steady_speedup", steady_speedup, "x", "higher", 0.75);
    report.AddMetric("rounds", static_cast<double>(inc.rounds), "", "none");
    report.AddMetric("steady_rounds", static_cast<double>(inc.steady_rounds), "", "none");
    if (!EmitBenchReport(report, report_path)) {
      return 1;
    }
  }

  if (smoke && inc.median_all_ms > full.median_all_ms) {
    std::fprintf(stderr,
                 "FAIL: incremental median %.3f ms is slower than full recompute %.3f ms\n",
                 inc.median_all_ms, full.median_all_ms);
    return 1;
  }
  return 0;
}
