// Figure 18: JCT and throughput on the two other production-trace shapes --
// Helios Venus (one day, moderate load) and Alibaba PAI (one day, low load) --
// on the 1,280-GPU simulated cluster.
//
// Paper numbers to compare against: Crius reduces average JCT by 64.7%
// (Helios) / 66.3% (PAI) vs baselines, with up to 1.48x / 1.29x average and
// 1.92x / 2.63x peak throughput.

#include <cstdio>

#include "bench/bench_util.h"

namespace crius {
namespace {

void RunTrace(const Cluster& cluster, PerformanceOracle& oracle, const TraceConfig& config,
              const char* figure) {
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("\n%s: %zu jobs (%s)\n", figure, trace.size(), config.name.c_str());

  // Scheduler runs share only the (thread-safe) oracle; each simulates its own
  // cluster copy, so the five runs fan out over the pool into fixed slots.
  auto schedulers = MakeAllSchedulers(&oracle);
  std::vector<SimResult> results(schedulers.size());
  ThreadPool::Global().ParallelFor(schedulers.size(), [&](size_t i) {
    Simulator sim(cluster, SimConfig{});
    results[i] = sim.Run(*schedulers[i], oracle, trace);
  });
  const SimResult& crius = results.back();

  Table table(std::string(figure) + " (" + config.name + ")");
  table.SetHeader({"scheduler", "avg JCT", "median JCT", "max JCT", "avg thr", "peak thr",
                   "Crius thr ratio"});
  for (const SimResult& r : results) {
    table.AddRow({r.scheduler, Hours(r.avg_jct), Hours(r.median_jct), Hours(r.max_jct),
                  Table::Fmt(r.avg_throughput, 0), Table::Fmt(r.peak_throughput, 0),
                  &r == &crius ? "-" : Ratio(crius.avg_throughput, r.avg_throughput)});
  }
  table.Print();

  double worst_jct = 0.0;
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    worst_jct = std::max(worst_jct, results[i].avg_jct);
  }
  std::printf("Crius avg JCT reduction vs worst baseline: %.1f%%\n",
              (1.0 - crius.avg_jct / worst_jct) * 100.0);
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  using namespace crius;
  ConfigureBenchThreads(argc, argv);
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);
  RunTrace(cluster, oracle, HeliosModerateConfig(), "Fig. 18(a)(c) Helios Venus, moderate load");
  RunTrace(cluster, oracle, PaiLowConfig(), "Fig. 18(b)(d) PAI, low load");
  return 0;
}
