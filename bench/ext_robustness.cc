// Extension: seed robustness of the headline comparison.
//
// The paper evaluates one trace per setting; this study re-synthesizes the
// testbed workload under several seeds and checks that Crius's advantage is a
// property of the system, not of one lucky arrival pattern. Reported: per-seed
// average JCT for every scheduler, plus mean +/- stddev of Crius's relative
// JCT advantage over each baseline and the number of seeds Crius wins.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/stats.h"

int main(int argc, char** argv) {
  using namespace crius;
  ConfigureBenchThreads(argc, argv);
  Cluster cluster = MakePhysicalTestbed();

  const uint64_t seeds[] = {11, 23, 42, 77, 101};
  const int num_seeds = static_cast<int>(std::size(seeds));

  Table per_seed("Robustness: avg JCT (minutes) per seed, 244-job testbed trace");

  // Each seed builds its own oracle/trace/schedulers, so whole seed runs fan
  // out over the pool into independent slots; the table below is assembled
  // sequentially, making the output identical across thread counts.
  struct SeedRun {
    std::vector<std::string> names;
    std::vector<double> jcts;
  };
  std::vector<SeedRun> runs(static_cast<size_t>(num_seeds));
  ThreadPool::Global().ParallelFor(static_cast<size_t>(num_seeds), [&](size_t si) {
    PerformanceOracle oracle(cluster, seeds[si]);
    TraceConfig config = PhillySixHourConfig();
    config.seed = seeds[si];
    const auto trace = GenerateTrace(cluster, oracle, config);
    for (auto& sched : MakeAllSchedulers(&oracle)) {
      Simulator sim(cluster, SimConfig{});
      const SimResult r = sim.Run(*sched, oracle, trace);
      runs[si].names.push_back(r.scheduler);
      runs[si].jcts.push_back(r.avg_jct);
    }
  });

  const std::vector<std::string>& names = runs[0].names;
  // results[scheduler][seed] = avg JCT.
  std::vector<std::vector<double>> jcts(names.size());
  for (size_t sc = 0; sc < names.size(); ++sc) {
    for (int si = 0; si < num_seeds; ++si) {
      jcts[sc].push_back(runs[static_cast<size_t>(si)].jcts[sc]);
    }
  }

  {
    std::vector<std::string> header = {"scheduler"};
    for (int si = 0; si < num_seeds; ++si) {
      header.push_back("seed " + std::to_string(seeds[si]));
    }
    header.push_back("mean");
    per_seed.SetHeader(header);
    for (size_t sc = 0; sc < names.size(); ++sc) {
      std::vector<std::string> row = {names[sc]};
      for (double v : jcts[sc]) {
        row.push_back(Table::Fmt(v / kMinute, 0));
      }
      row.push_back(Table::Fmt(Mean(jcts[sc]) / kMinute, 0));
      per_seed.AddRow(row);
    }
    per_seed.Print();
  }

  Table summary("Crius's JCT advantage across seeds");
  summary.SetHeader({"baseline", "mean reduction", "stddev", "seeds won"});
  const std::vector<double>& crius = jcts.back();
  for (size_t sc = 0; sc + 1 < names.size(); ++sc) {
    std::vector<double> reductions;
    int wins = 0;
    for (int si = 0; si < num_seeds; ++si) {
      reductions.push_back(1.0 - crius[static_cast<size_t>(si)] /
                                     jcts[sc][static_cast<size_t>(si)]);
      wins += crius[static_cast<size_t>(si)] < jcts[sc][static_cast<size_t>(si)];
    }
    summary.AddRow({names[sc], Table::FmtPercent(Mean(reductions)),
                    Table::FmtPercent(StdDev(reductions)),
                    Table::FmtInt(wins) + "/" + Table::FmtInt(num_seeds)});
  }
  summary.Print();
  return 0;
}
