// Extension: seed robustness of the headline comparison.
//
// The paper evaluates one trace per setting; this study re-synthesizes the
// testbed workload under several seeds and checks that Crius's advantage is a
// property of the system, not of one lucky arrival pattern. Reported: per-seed
// average JCT for every scheduler, plus mean +/- stddev of Crius's relative
// JCT advantage over each baseline and the number of seeds Crius wins.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();

  const uint64_t seeds[] = {11, 23, 42, 77, 101};
  const int num_seeds = static_cast<int>(std::size(seeds));

  std::vector<std::string> names;
  // results[scheduler][seed] = avg JCT.
  std::vector<std::vector<double>> jcts;

  Table per_seed("Robustness: avg JCT (minutes) per seed, 244-job testbed trace");
  std::vector<std::vector<std::string>> rows;

  for (int si = 0; si < num_seeds; ++si) {
    PerformanceOracle oracle(cluster, seeds[si]);
    TraceConfig config = PhillySixHourConfig();
    config.seed = seeds[si];
    const auto trace = GenerateTrace(cluster, oracle, config);
    auto schedulers = MakeAllSchedulers(&oracle);
    for (size_t sc = 0; sc < schedulers.size(); ++sc) {
      Simulator sim(cluster, SimConfig{});
      const SimResult r = sim.Run(*schedulers[sc], oracle, trace);
      if (si == 0) {
        names.push_back(r.scheduler);
        jcts.emplace_back();
      }
      jcts[sc].push_back(r.avg_jct);
    }
  }

  {
    std::vector<std::string> header = {"scheduler"};
    for (int si = 0; si < num_seeds; ++si) {
      header.push_back("seed " + std::to_string(seeds[si]));
    }
    header.push_back("mean");
    per_seed.SetHeader(header);
    for (size_t sc = 0; sc < names.size(); ++sc) {
      std::vector<std::string> row = {names[sc]};
      for (double v : jcts[sc]) {
        row.push_back(Table::Fmt(v / kMinute, 0));
      }
      row.push_back(Table::Fmt(Mean(jcts[sc]) / kMinute, 0));
      per_seed.AddRow(row);
    }
    per_seed.Print();
  }

  Table summary("Crius's JCT advantage across seeds");
  summary.SetHeader({"baseline", "mean reduction", "stddev", "seeds won"});
  const std::vector<double>& crius = jcts.back();
  for (size_t sc = 0; sc + 1 < names.size(); ++sc) {
    std::vector<double> reductions;
    int wins = 0;
    for (int si = 0; si < num_seeds; ++si) {
      reductions.push_back(1.0 - crius[static_cast<size_t>(si)] /
                                     jcts[sc][static_cast<size_t>(si)]);
      wins += crius[static_cast<size_t>(si)] < jcts[sc][static_cast<size_t>(si)];
    }
    summary.AddRow({names[sc], Table::FmtPercent(Mean(reductions)),
                    Table::FmtPercent(StdDev(reductions)),
                    Table::FmtInt(wins) + "/" + Table::FmtInt(num_seeds)});
  }
  summary.Print();
  return 0;
}
