// Extension: the full scheduler zoo, including policies beyond the paper's
// comparison set -- Tiresias (least-attained-service, cited as [17]) and
// Crius-Fair (the max-min objective variant) -- on both evaluation clusters.

#include <cstdio>

#include "bench/bench_util.h"

namespace crius {
namespace {

void RunZoo(const char* label, Cluster cluster, const TraceConfig& config) {
  PerformanceOracle oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("\n%s: %zu jobs on %d GPUs\n", label, trace.size(), cluster.TotalGpus());

  std::vector<std::unique_ptr<Scheduler>> scheds = MakeAllSchedulers(&oracle);
  scheds.insert(scheds.begin() + 2, std::make_unique<TiresiasScheduler>(&oracle));
  scheds.push_back(std::make_unique<CriusScheduler>(
      &oracle, CriusConfig{.objective = CriusObjective::kMaxMinFairness}));

  Table table(std::string("Extended scheduler comparison -- ") + label);
  table.SetHeader({"scheduler", "avg JCT", "median JCT", "avg queue", "avg thr",
                   "gpu util", "p99 slowdown", "fairness"});
  for (auto& sched : scheds) {
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(*sched, oracle, trace);
    table.AddRow({r.scheduler, Minutes(r.avg_jct), Minutes(r.median_jct),
                  Minutes(r.avg_queue_time), Table::Fmt(r.avg_throughput, 1),
                  Table::FmtPercent(r.avg_gpu_utilization), Table::Fmt(r.p99_slowdown, 1),
                  Table::Fmt(r.fairness_index, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace crius

int main() {
  using namespace crius;
  RunZoo("64-GPU physical testbed", MakePhysicalTestbed(), PhillySixHourConfig());
  TraceConfig helios = HeliosModerateConfig();
  helios.num_jobs = 450;
  RunZoo("1,280-GPU simulated cluster", MakeSimulatedCluster(), helios);
  return 0;
}
