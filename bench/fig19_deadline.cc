// Figure 19: deadline-aware scheduling (§8.5).
//
// Crius-DDL gives strict per-job deadline guarantees (early-dropping hopeless
// jobs) while optimizing cluster performance; compared against ElasticFlow's
// primary deadline policy. Paper: 1.69x deadline satisfactory ratio, -33.1%
// JCT, 1.72x average / 1.96x peak throughput.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);

  TraceConfig config = HeliosModerateConfig();
  config.name = "helios-deadline";
  config.seed = 7105;
  config.load = 1.1;  // deadline pressure requires contention
  config.deadline_fraction = 1.0;
  config.deadline_slack_min = 1.3;
  config.deadline_slack_max = 5.0;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Deadline trace: %zu jobs, every job carries a deadline\n", trace.size());

  std::vector<std::unique_ptr<Scheduler>> scheds;
  scheds.push_back(
      std::make_unique<ElasticFlowScheduler>(&oracle, ElasticFlowConfig{.loose_deadlines = false}));
  scheds.push_back(
      std::make_unique<ElasticFlowScheduler>(&oracle, ElasticFlowConfig{.loose_deadlines = true}));
  scheds.push_back(std::make_unique<CriusScheduler>(&oracle, CriusConfig{.deadline_aware = true}));

  std::vector<SimResult> results;
  for (auto& sched : scheds) {
    Simulator sim(cluster, SimConfig{});
    results.push_back(sim.Run(*sched, oracle, trace));
  }
  const SimResult& crius = results.back();
  const SimResult& ef = results.front();

  Table table("Fig. 19 Deadline-aware comparison");
  table.SetHeader({"scheduler", "deadline ratio", "dropped", "avg JCT", "avg thr", "peak thr"});
  for (const SimResult& r : results) {
    table.AddRow({r.scheduler, Table::FmtPercent(r.deadline_ratio),
                  Table::FmtInt(r.dropped_jobs), Hours(r.avg_jct),
                  Table::Fmt(r.avg_throughput, 0), Table::Fmt(r.peak_throughput, 0)});
  }
  table.Print();

  std::printf("\nCrius-DDL vs ElasticFlow: deadline ratio %.2fx (paper 1.69x), "
              "JCT %+.1f%% (paper -33.1%%), avg thr %.2fx (paper 1.72x), peak thr %.2fx"
              " (paper 1.96x)\n",
              crius.deadline_ratio / std::max(1e-9, ef.deadline_ratio),
              (crius.avg_jct / ef.avg_jct - 1.0) * 100.0,
              crius.avg_throughput / ef.avg_throughput,
              crius.peak_throughput / ef.peak_throughput);
  return 0;
}
