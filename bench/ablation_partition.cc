// Extension ablation: does §4.2's stage-determination principle matter?
//
// Crius partitions pipeline stages by balancing per-stage FLOPs (so every
// stage finishes a microbatch in similar time) and cutting at low-traffic
// boundaries. This ablation replaces it with a naive uniform split (equal
// operator counts, equal GPUs) and compares the best achievable plan
// throughput per Cell -- the pipeline's bottleneck stage pays for imbalance
// through the (B-1) * max-stage term of the §5.1 latency formula.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/mathutil.h"
#include "src/util/stats.h"

namespace crius {
namespace {

// Best within-stages plan time for a fixed partition (mirrors the explorer's
// single-stage-count search but over an externally supplied partition).
double BestTimeForPartition(const PerfModel& model, const JobContext& ctx,
                            const std::vector<StageRange>& ranges) {
  // Reuse the explorer by evaluating every per-stage split combination with
  // a simple recursive enumeration (partitions here are small).
  struct Enumerator {
    const PerfModel& model;
    const JobContext& ctx;
    const std::vector<StageRange>& ranges;
    ParallelPlan plan;
    double best = std::numeric_limits<double>::infinity();

    void Recurse(size_t s) {
      if (s == ranges.size()) {
        const PlanEval eval = model.Evaluate(ctx, plan);
        if (eval.feasible) {
          best = std::min(best, eval.iter_time);
        }
        return;
      }
      for (const PowerOfTwoSplit& split : PowerOfTwoSplits(ranges[s].gpus)) {
        plan.stages.push_back(StagePlan{ranges[s].op_begin, ranges[s].op_end, ranges[s].gpus,
                                        static_cast<int>(split.d), static_cast<int>(split.t)});
        Recurse(s + 1);
        plan.stages.pop_back();
      }
    }
  };
  Enumerator e{model, ctx, ranges, ParallelPlan{}, std::numeric_limits<double>::infinity()};
  e.plan.gpu_type = ctx.gpu_type;
  e.Recurse(0);
  return e.best;
}

}  // namespace
}  // namespace crius

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerfModel model(cluster);

  Table table("Ablation: FLOPs-balanced (§4.2) vs uniform stage partitioning");
  table.SetHeader({"config", "gpu type", "stages", "balanced iter (s)", "uniform iter (s)",
                   "balanced advantage"});

  std::vector<double> advantages;
  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kWideResNet, 2.0, 256}, ModelSpec{ModelFamily::kBert, 2.6, 128},
        ModelSpec{ModelFamily::kMoe, 10.0, 256}, ModelSpec{ModelFamily::kBert, 6.7, 128}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40}) {
      const JobContext ctx = model.MakeContext(spec, type);
      for (int nstages : {2, 4, 8}) {
        const auto balanced = PartitionStages(*ctx.graph, 16, nstages);
        const auto uniform = PartitionStagesUniform(*ctx.graph, 16, nstages);
        const double tb = BestTimeForPartition(model, ctx, balanced);
        const double tu = BestTimeForPartition(model, ctx, uniform);
        if (!std::isfinite(tb) || !std::isfinite(tu)) {
          continue;
        }
        advantages.push_back(tu / tb);
        table.AddRow({spec.Name(), GpuName(type), "P" + std::to_string(nstages),
                      Table::Fmt(tb, 3), Table::Fmt(tu, 3), Table::FmtFactor(tu / tb)});
      }
    }
  }
  table.Print();
  std::printf("\nBalanced partitioning is %.2fx faster on average (max %.2fx): the naive\n"
              "split's bottleneck stage stalls the whole pipeline via the (B-1)*max term.\n",
              Mean(advantages), Max(advantages));
  return 0;
}
