// Figure 20: ablation of Crius's two resource-scaling dimensions (§8.6).
//
//   Crius-NA -- adaptivity scaling disabled (GPU counts pinned to the request)
//   Crius-NH -- heterogeneity scaling disabled (GPU types pinned)
//
// Paper: Crius-NA suffers 2.54x higher avg JCT, -8.69% finished jobs, -13.6%
// avg / -14.1% peak throughput; Crius-NH is worse still (3.53x JCT, 83.2%
// completion, -17.3% / -17.7% throughput) because the simulated cluster has
// four GPU types -- heterogeneity matters more than adaptivity there.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);

  TraceConfig config = PhillyWeekHeavyConfig();
  config.num_jobs = 1500;  // 4-day slice keeps the three runs brisk
  config.duration = 4.0 * kDay;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::printf("Ablation trace: %zu jobs on %d GPUs\n", trace.size(), cluster.TotalGpus());

  std::vector<std::unique_ptr<Scheduler>> scheds;
  scheds.push_back(std::make_unique<CriusScheduler>(&oracle, CriusConfig{}));
  scheds.push_back(
      std::make_unique<CriusScheduler>(&oracle, CriusConfig{.adaptivity_scaling = false}));
  scheds.push_back(
      std::make_unique<CriusScheduler>(&oracle, CriusConfig{.heterogeneity_scaling = false}));

  std::vector<SimResult> results;
  for (auto& sched : scheds) {
    Simulator sim(cluster, SimConfig{});
    results.push_back(sim.Run(*sched, oracle, trace));
    std::printf("  %-10s done\n", results.back().scheduler.c_str());
    std::fflush(stdout);
  }
  const SimResult& full = results.front();

  Table table("Fig. 20 Ablation: adaptivity vs heterogeneity scaling");
  table.SetHeader({"variant", "avg JCT", "JCT vs Crius", "finished", "finish share",
                   "avg thr", "thr delta", "peak thr", "peak delta"});
  for (const SimResult& r : results) {
    table.AddRow({r.scheduler, Hours(r.avg_jct), Ratio(r.avg_jct, full.avg_jct),
                  Table::FmtInt(r.finished_jobs),
                  Table::FmtPercent(static_cast<double>(r.finished_jobs) /
                                    std::max(1, full.finished_jobs)),
                  Table::Fmt(r.avg_throughput, 0),
                  Table::FmtPercent(r.avg_throughput / full.avg_throughput - 1.0),
                  Table::Fmt(r.peak_throughput, 0),
                  Table::FmtPercent(r.peak_throughput / full.peak_throughput - 1.0)});
  }
  table.Print();

  std::printf("\nExpected shape: both ablations hurt. On this 4-type cluster disabling\n"
              "heterogeneity scaling (Crius-NH) costs more JCT than disabling adaptivity\n"
              "scaling (Crius-NA) -- the same reason Gavel is the strongest baseline here\n"
              "but not on the 2-type physical testbed. (On throughput the substitution's\n"
              "over-requested jobs make NA the bigger loss; see EXPERIMENTS.md.)\n");
  return 0;
}
