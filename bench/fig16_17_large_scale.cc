// Figures 15-17: large-scale simulation on the 1,280-GPU heterogeneous
// cluster (Table 1) with the one-week heavy Philly-like trace.
//
//   Fig. 15 -- model-size distribution of the workload;
//   Fig. 16 -- cluster-throughput timeline (Crius scales up faster in bursts
//              and scales down earlier as load drains);
//   Fig. 17 -- (a) avg JCT reductions (paper: -81.3% FCFS, -75.8% EF-LS,
//              -80.1% Gandiva, -66.4% Gavel), (b) finished jobs (up to
//              1.29x), (c) avg/peak throughput (up to 1.54x / 1.57x).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/chart.h"

int main() {
  using namespace crius;
  Cluster cluster = MakeSimulatedCluster();
  PerformanceOracle oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, oracle, PhillyWeekHeavyConfig());

  // ---- Fig. 15: model-size distribution -----------------------------------
  Table hist("Fig. 15 Model-size distribution of the large-scale workload");
  hist.SetHeader({"model", "jobs", "share"});
  for (const auto& [name, count] : ModelSizeHistogram(trace)) {
    hist.AddRow({name, Table::FmtInt(count),
                 Table::FmtPercent(static_cast<double>(count) / trace.size())});
  }
  hist.Print();

  // ---- Run all schedulers ---------------------------------------------------
  std::printf("\nRunning %zu jobs / 1 week on %d GPUs under 5 schedulers...\n", trace.size(),
              cluster.TotalGpus());
  SimConfig config;
  std::vector<SimResult> results;
  for (auto& sched : MakeAllSchedulers(&oracle)) {
    Simulator sim(cluster, config);
    results.push_back(sim.Run(*sched, oracle, trace));
    std::printf("  %-15s done\n", results.back().scheduler.c_str());
    std::fflush(stdout);
  }
  const SimResult& crius = results.back();

  // ---- Fig. 16: throughput timeline -----------------------------------------
  {
    std::vector<ChartSeries> chart_series;
    for (const SimResult& r : results) {
      ChartSeries s;
      s.label = r.scheduler;
      // 2-hour buckets over the first 8 days.
      const double bucket = 2.0 * kHour;
      for (double t0 = 0.0; t0 < 8.0 * kDay; t0 += bucket) {
        double sum = 0.0;
        int n = 0;
        for (const ThroughputSample& sample : r.timeline) {
          if (sample.time >= t0 && sample.time < t0 + bucket) {
            sum += sample.normalized_throughput;
            ++n;
          }
        }
        s.values.push_back(n > 0 ? sum / n : 0.0);
      }
      chart_series.push_back(std::move(s));
    }
    ChartOptions opt;
    opt.width = 96;
    opt.height = 16;
    opt.x_label = "time (0 .. 192 h)";
    std::fputs(RenderLineChart("Fig. 16 Cluster-throughput timeline (normalized)",
                               chart_series, opt)
                   .c_str(),
               stdout);
  }

  Table timeline("Fig. 16 numeric timeline (6-hour buckets)");
  {
    std::vector<std::string> header = {"t (h)"};
    for (const SimResult& r : results) {
      header.push_back(r.scheduler);
    }
    timeline.SetHeader(header);
    const double bucket = 6.0 * kHour;
    const double end = 8.0 * kDay;
    for (double t0 = 0.0; t0 < end; t0 += bucket) {
      std::vector<std::string> row = {Table::Fmt(t0 / kHour, 0)};
      bool any = false;
      for (const SimResult& r : results) {
        double sum = 0.0;
        int n = 0;
        for (const ThroughputSample& s : r.timeline) {
          if (s.time >= t0 && s.time < t0 + bucket) {
            sum += s.normalized_throughput;
            ++n;
          }
        }
        row.push_back(n > 0 ? Table::Fmt(sum / n, 0) : "-");
        any |= n > 0;
      }
      if (any) {
        timeline.AddRow(row);
      }
    }
  }
  timeline.Print();

  // ---- Fig. 17: numeric comparison ------------------------------------------
  Table summary("Fig. 17 Large-scale comparison");
  summary.SetHeader({"scheduler", "avg JCT", "Crius JCT delta", "finished jobs",
                     "Crius finish ratio", "avg thr", "peak thr", "gpu util",
                     "avg restarts"});
  for (const SimResult& r : results) {
    const double jct_delta = (1.0 - crius.avg_jct / r.avg_jct) * 100.0;
    summary.AddRow({r.scheduler, Hours(r.avg_jct),
                    &r == &crius ? "-" : Table::Fmt(-jct_delta, 1) + "%",
                    Table::FmtInt(r.finished_jobs),
                    &r == &crius ? "-" : Ratio(crius.finished_jobs, r.finished_jobs),
                    Table::Fmt(r.avg_throughput, 0), Table::Fmt(r.peak_throughput, 0),
                    Table::FmtPercent(r.avg_gpu_utilization),
                    Table::Fmt(r.avg_restarts, 2)});
  }
  summary.Print();

  std::printf("\nCrius average restarts: %.2f (paper: 2.29, search depth 3)\n",
              crius.avg_restarts);
  return 0;
}
