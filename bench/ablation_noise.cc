// Extension ablation: does estimation accuracy actually buy scheduling
// quality?
//
// The paper's central thesis (§2.3) is that efficient scheduling requires
// *accurate* low-overhead performance data -- inaccurate estimates lead to
// inefficient scheduling. This experiment tests that causal link directly on
// our substrate: the estimator's two noise sources (single-device compute
// measurement scatter and offline communication-profile scatter) are swept
// from clean to badly degraded, and for each level we report
//   (a) the resulting Cell-estimation accuracy (Fig. 12a's metric), and
//   (b) Crius's end-to-end scheduling quality on the testbed trace.
// Crius's advantage should erode as its estimates blur toward the baselines'
// ignorance.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  // The 4-type simulated cluster: mis-ranked GPU types / sizes actually
  // cost something here, unlike on the near-homogeneous 2-type testbed.
  Cluster cluster = MakeSimulatedCluster();

  Table table("Ablation: estimator noise vs scheduling quality");
  table.SetHeader({"noise level", "compute/comm jitter", "estimation accuracy", "avg JCT",
                   "avg queue", "avg thr"});

  const struct {
    const char* label;
    double compute;
    double comm;
  } levels[] = {
      {"clean", 0.0, 0.0},          {"default", 0.05, 0.04},   {"noisy", 0.15, 0.12},
      {"very noisy", 0.30, 0.25},   {"garbage", 0.60, 0.50},
  };

  for (const auto& level : levels) {
    OracleConfig oc;
    oc.compute_jitter = level.compute;
    oc.comm_jitter = level.comm;
    PerformanceOracle oracle(cluster, 42, oc);

    // (a) Estimation accuracy over a fixed probe set.
    std::vector<double> accuracies;
    for (const ModelSpec spec :
         {ModelSpec{ModelFamily::kBert, 1.3, 128}, ModelSpec{ModelFamily::kBert, 2.6, 128},
          ModelSpec{ModelFamily::kWideResNet, 2.0, 256}, ModelSpec{ModelFamily::kMoe, 2.4, 256}}) {
      for (GpuType type : {GpuType::kA100, GpuType::kA40, GpuType::kV100}) {
        for (int nstages : {1, 2, 4}) {
          const Cell cell{type, 8, nstages};
          const CellEstimate& est = oracle.EstimateCell(spec, cell);
          if (!est.feasible) {
            continue;
          }
          const JobContext ctx = oracle.perf_model().MakeContext(spec, type);
          const PlanEval measured = oracle.perf_model().Evaluate(ctx, est.plan);
          accuracies.push_back(1.0 - std::abs(est.iter_time - measured.iter_time) /
                                         measured.iter_time);
        }
      }
    }

    // (b) End-to-end scheduling quality on the standard testbed trace.
    TraceConfig tc = HeliosModerateConfig();
    tc.load = 1.0;
    const auto trace = GenerateTrace(cluster, oracle, tc);
    CriusScheduler crius(&oracle, CriusConfig{});
    Simulator sim(cluster, SimConfig{});
    const SimResult r = sim.Run(crius, oracle, trace);

    table.AddRow({level.label,
                  Table::FmtPercent(level.compute, 0) + "/" + Table::FmtPercent(level.comm, 0),
                  Table::FmtPercent(Mean(accuracies)), Minutes(r.avg_jct),
                  Minutes(r.avg_queue_time), Table::Fmt(r.avg_throughput, 2)});
  }
  table.Print();

  std::printf("\nExpected shape: estimation accuracy decays with the injected noise and\n"
              "Crius's JCT / queuing / throughput degrade with it -- the §2.3 claim that\n"
              "inaccurate performance data produces inefficient scheduling.\n");
  return 0;
}
