// Figure 14: performance on the 64-GPU physical testbed (16x2 A40 + 16x2 A10)
// with the 244-job / 6-hour Philly-like trace.
//
//   (a) average JCT          (paper: Crius up to -48.9%)
//   (b) average queuing time (paper: up to -71.0%)
//   (c) cluster throughput   (paper: up to 1.49x avg / 1.36x peak)
//
// The "physical" runs carry execution jitter (real-testbed variance); the
// §8.3 fidelity paragraph is reproduced by re-running the identical
// configuration without jitter and reporting the relative error (paper:
// 3.16% on throughput, 7.31% on JCT).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/util/stats.h"

int main() {
  using namespace crius;
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 42);
  const auto trace = GenerateTrace(cluster, oracle, PhillySixHourConfig());
  std::printf("Trace: %zu jobs over 6 hours on %d GPUs\n", trace.size(), cluster.TotalGpus());

  SimConfig physical;
  physical.execution_jitter = 0.06;
  SimConfig simulation;  // jitter-free

  Table table("Fig. 14 Physical-testbed comparison (244-job Philly trace)");
  table.SetHeader({"scheduler", "avg JCT", "p95 JCT", "p99 JCT", "vs Crius", "avg queue",
                   "p99 queue", "vs Crius", "avg thr", "peak thr", "finished", "restarts"});

  struct Row {
    SimResult physical;
    SimResult simulated;
  };
  std::vector<Row> rows;
  auto schedulers = MakeAllSchedulers(&oracle);
  for (auto& sched : schedulers) {
    Simulator sim_phys(cluster, physical);
    Simulator sim_pure(cluster, simulation);
    Row row;
    row.physical = sim_phys.Run(*sched, oracle, trace);
    row.simulated = sim_pure.Run(*sched, oracle, trace);
    rows.push_back(std::move(row));
  }
  const SimResult& crius = rows.back().physical;
  for (const Row& row : rows) {
    const SimResult& r = row.physical;
    table.AddRow({r.scheduler, Minutes(r.avg_jct), Minutes(r.p95_jct), Minutes(r.p99_jct),
                  Ratio(r.avg_jct, crius.avg_jct), Minutes(r.avg_queue_time),
                  Minutes(r.p99_queue_time), Ratio(r.avg_queue_time, crius.avg_queue_time),
                  Table::Fmt(r.avg_throughput, 1), Table::Fmt(r.peak_throughput, 1),
                  Table::FmtInt(r.finished_jobs), Table::Fmt(r.avg_restarts, 2)});
  }
  table.Print();

  // Headline reductions vs the strongest / weakest baselines.
  double worst_jct = 0.0;
  double worst_queue = 0.0;
  double worst_thr = 1e30;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    worst_jct = std::max(worst_jct, rows[i].physical.avg_jct);
    worst_queue = std::max(worst_queue, rows[i].physical.avg_queue_time);
    worst_thr = std::min(worst_thr, rows[i].physical.avg_throughput);
  }
  std::printf("\nCrius vs baselines: JCT up to -%.1f%% (paper -48.9%%), queue up to -%.1f%%"
              " (paper -71.0%%), avg throughput up to %.2fx (paper 1.49x)\n",
              (1.0 - crius.avg_jct / worst_jct) * 100.0,
              (1.0 - crius.avg_queue_time / worst_queue) * 100.0,
              crius.avg_throughput / worst_thr);

  // §8.3 fidelity: simulation vs "physical".
  std::vector<double> thr_err;
  std::vector<double> jct_err;
  for (const Row& row : rows) {
    thr_err.push_back(std::abs(row.simulated.avg_throughput - row.physical.avg_throughput) /
                      row.physical.avg_throughput);
    jct_err.push_back(std::abs(row.simulated.avg_jct - row.physical.avg_jct) /
                      row.physical.avg_jct);
  }
  std::printf("Simulation fidelity: avg throughput error %.2f%% (paper 3.16%%), "
              "avg JCT error %.2f%% (paper 7.31%%)\n",
              Mean(thr_err) * 100.0, Mean(jct_err) * 100.0);
  return 0;
}
