// Component microbenchmarks (google-benchmark): how expensive the building
// blocks are on this substrate. These back the §8.7 overhead discussion --
// Cell estimation and scheduling must stay cheap enough to run every round.
//
// Extra flags (on top of google-benchmark's own):
//   --json F   write a BENCH_micro.json perf-trajectory report (per-benchmark
//              real time in ns) for crius_benchdiff
//   --smoke    cap --benchmark_min_time at 0.01s for a fast CI pass
//
// A custom main (instead of benchmark::benchmark_main) threads a capturing
// reporter through RunSpecifiedBenchmarks so the same run both prints the
// console table and feeds the JSON report.

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/oracle.h"
#include "src/parallel/explorer.h"
#include "src/sched/crius_sched.h"
#include "src/sim/trace.h"

namespace crius {
namespace {

const ModelSpec kBert13{ModelFamily::kBert, 1.3, 128};
const ModelSpec kMoe10{ModelFamily::kMoe, 10.0, 256};

void BM_StagePartition(benchmark::State& state) {
  const OpGraph& g = GetOpGraph(kMoe10);
  const int nstages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionStages(g, 64, nstages));
  }
}
BENCHMARK(BM_StagePartition)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PlanEvaluate(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  const JobContext ctx = model.MakeContext(kBert13, GpuType::kA100);
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  const auto ranges = PartitionStages(*ctx.graph, 8, 4);
  for (const StageRange& r : ranges) {
    plan.stages.push_back(StagePlan{r.op_begin, r.op_end, r.gpus, r.gpus, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(ctx, plan));
  }
}
BENCHMARK(BM_PlanEvaluate);

void BM_FullExplore(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  static Explorer explorer(&model);
  const JobContext ctx = model.MakeContext(kBert13, GpuType::kA40);
  const int ngpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.FullExplore(ctx, ngpus));
  }
}
BENCHMARK(BM_FullExplore)->Arg(4)->Arg(16)->Arg(64);

void BM_CellEstimate(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  static CommProfile comm(cluster, 42);
  static CellEstimator estimator(&model, &comm, 42);
  const JobContext ctx = model.MakeContext(kMoe10, GpuType::kA100);
  const Cell cell{GpuType::kA100, 16, static_cast<int>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(ctx, cell));
  }
}
BENCHMARK(BM_CellEstimate)->Arg(1)->Arg(4)->Arg(16);

void BM_CriusScheduleRound(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerformanceOracle oracle(cluster, 42);
  const int num_jobs = static_cast<int>(state.range(0));

  std::vector<JobState> states(static_cast<size_t>(num_jobs));
  std::vector<const JobState*> views;
  for (int i = 0; i < num_jobs; ++i) {
    JobState& js = states[static_cast<size_t>(i)];
    js.job.id = i;
    js.job.spec = (i % 2 == 0) ? kBert13 : kMoe10;
    js.job.requested_gpus = (i % 3 == 0) ? 16 : 4;
    js.job.requested_type = AllGpuTypes()[static_cast<size_t>(i) % AllGpuTypes().size()];
    js.job.iterations = 1000;
    js.job.submit_time = i;
    js.phase = JobPhase::kQueued;
    views.push_back(&js);
  }
  CriusScheduler sched(&oracle, CriusConfig{});
  // Warm the estimate caches so steady-state rounds are measured.
  sched.Schedule(RoundContext(0.0, views, cluster));
  for (auto _ : state) {
    CriusScheduler fresh(&oracle, CriusConfig{});
    benchmark::DoNotOptimize(fresh.Schedule(RoundContext(0.0, views, cluster)));
  }
}
BENCHMARK(BM_CriusScheduleRound)->Arg(16)->Arg(64)->Arg(256);

// ConsoleReporter subclass that also captures per-benchmark real time.
// Aggregate rows (mean/median/stddev of repetitions) are skipped -- each
// non-aggregate run contributes its adjusted real time (ns per iteration).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Aggregate rows only; the skipped/error field is not stable across
      // google-benchmark 1.7/1.8, so errored runs are filtered by their
      // zero iteration count instead.
      if (run.run_type == Run::RT_Aggregate || run.iterations == 0) {
        continue;
      }
      captured_[run.benchmark_name()] = run.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& captured() const { return captured_; }

 private:
  std::map<std::string, double> captured_;
};

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  using namespace crius;
  const std::string report_path = BenchReportPathFromArgs(argc, argv);
  bool smoke = false;
  // Strip our own flags before google-benchmark sees argv (it rejects
  // unknown --flags), and translate --smoke into a short min_time.
  std::vector<char*> bench_argv;
  std::string min_time_flag = "--benchmark_min_time=0.01";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  if (smoke) {
    bench_argv.push_back(min_time_flag.data());
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!report_path.empty()) {
    BenchReport report;
    report.bench = "microbench";
    report.meta["mode"] = smoke ? "smoke" : "full";
    for (const auto& [name, real_ns] : reporter.captured()) {
      // Loose threshold: single-iteration CI timings of cache-heavy code are
      // noisy; the gate is for order-of-magnitude regressions.
      report.AddMetric(name + ".real_ns", real_ns, "ns", "lower", 4.0);
    }
    if (!EmitBenchReport(report, report_path)) {
      return 1;
    }
  }
  return 0;
}
