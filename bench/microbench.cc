// Component microbenchmarks (google-benchmark): how expensive the building
// blocks are on this substrate. These back the §8.7 overhead discussion --
// Cell estimation and scheduling must stay cheap enough to run every round.

#include <benchmark/benchmark.h>

#include "src/core/oracle.h"
#include "src/parallel/explorer.h"
#include "src/sched/crius_sched.h"
#include "src/sim/trace.h"

namespace crius {
namespace {

const ModelSpec kBert13{ModelFamily::kBert, 1.3, 128};
const ModelSpec kMoe10{ModelFamily::kMoe, 10.0, 256};

void BM_StagePartition(benchmark::State& state) {
  const OpGraph& g = GetOpGraph(kMoe10);
  const int nstages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionStages(g, 64, nstages));
  }
}
BENCHMARK(BM_StagePartition)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PlanEvaluate(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  const JobContext ctx = model.MakeContext(kBert13, GpuType::kA100);
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  const auto ranges = PartitionStages(*ctx.graph, 8, 4);
  for (const StageRange& r : ranges) {
    plan.stages.push_back(StagePlan{r.op_begin, r.op_end, r.gpus, r.gpus, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(ctx, plan));
  }
}
BENCHMARK(BM_PlanEvaluate);

void BM_FullExplore(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  static Explorer explorer(&model);
  const JobContext ctx = model.MakeContext(kBert13, GpuType::kA40);
  const int ngpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.FullExplore(ctx, ngpus));
  }
}
BENCHMARK(BM_FullExplore)->Arg(4)->Arg(16)->Arg(64);

void BM_CellEstimate(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  static CommProfile comm(cluster, 42);
  static CellEstimator estimator(&model, &comm, 42);
  const JobContext ctx = model.MakeContext(kMoe10, GpuType::kA100);
  const Cell cell{GpuType::kA100, 16, static_cast<int>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Estimate(ctx, cell));
  }
}
BENCHMARK(BM_CellEstimate)->Arg(1)->Arg(4)->Arg(16);

void BM_CriusScheduleRound(benchmark::State& state) {
  static Cluster cluster = MakeSimulatedCluster();
  static PerformanceOracle oracle(cluster, 42);
  const int num_jobs = static_cast<int>(state.range(0));

  std::vector<JobState> states(static_cast<size_t>(num_jobs));
  std::vector<const JobState*> views;
  for (int i = 0; i < num_jobs; ++i) {
    JobState& js = states[static_cast<size_t>(i)];
    js.job.id = i;
    js.job.spec = (i % 2 == 0) ? kBert13 : kMoe10;
    js.job.requested_gpus = (i % 3 == 0) ? 16 : 4;
    js.job.requested_type = AllGpuTypes()[static_cast<size_t>(i) % AllGpuTypes().size()];
    js.job.iterations = 1000;
    js.job.submit_time = i;
    js.phase = JobPhase::kQueued;
    views.push_back(&js);
  }
  CriusScheduler sched(&oracle, CriusConfig{});
  // Warm the estimate caches so steady-state rounds are measured.
  sched.Schedule(RoundContext(0.0, views, cluster));
  for (auto _ : state) {
    CriusScheduler fresh(&oracle, CriusConfig{});
    benchmark::DoNotOptimize(fresh.Schedule(RoundContext(0.0, views, cluster)));
  }
}
BENCHMARK(BM_CriusScheduleRound)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace crius
