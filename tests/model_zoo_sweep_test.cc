// Conformance sweep over the ENTIRE Table-2 model zoo: every (family, size,
// batch) configuration must behave sanely end to end -- build, partition,
// explore, estimate -- on a representative GPU shape. This is the broadest
// net in the suite; it exists to catch regressions that only bite one model
// family or one size.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/estimator.h"
#include "src/parallel/explorer.h"

namespace crius {
namespace {

class ModelZooTest : public ::testing::TestWithParam<ModelSpec> {
 protected:
  static Cluster& cluster() {
    static Cluster c = MakeSimulatedCluster();
    return c;
  }
  static PerfModel& model() {
    static PerfModel m(cluster());
    return m;
  }
};

TEST_P(ModelZooTest, PartitionsAtEveryCandidateStageCount) {
  const ModelSpec spec = GetParam();
  const OpGraph& g = GetOpGraph(spec);
  for (int ngpus : {8, 64}) {
    for (int nstages : CandidateStageCounts(g, ngpus)) {
      const auto stages = PartitionStages(g, ngpus, nstages);
      ASSERT_EQ(stages.size(), static_cast<size_t>(nstages)) << spec.Key();
      int total = 0;
      for (const StageRange& s : stages) {
        total += s.gpus;
      }
      EXPECT_EQ(total, ngpus) << spec.Key();
    }
  }
}

TEST_P(ModelZooTest, SomeShapeIsAlwaysTrainable) {
  // Every Table-2 config must be trainable on at most 64 GPUs of SOME type
  // (otherwise the paper could not have scheduled it at all).
  const ModelSpec spec = GetParam();
  Explorer explorer(&model());
  bool trainable = false;
  for (GpuType type : AllGpuTypes()) {
    const JobContext ctx = model().MakeContext(spec, type);
    for (int n = 1; n <= 64 && !trainable; n *= 2) {
      trainable = explorer.FullExplore(ctx, n).best.has_value();
    }
    if (trainable) {
      break;
    }
  }
  EXPECT_TRUE(trainable) << spec.Key() << " untrainable everywhere";
}

TEST_P(ModelZooTest, EstimatorCoversTheZoo) {
  const ModelSpec spec = GetParam();
  static CommProfile comm(cluster(), 42);
  CellEstimator estimator(&model(), &comm, 42);
  Explorer explorer(&model());
  // The biggest models only fit on larger shapes; probe upward until a
  // feasible cell appears, then check estimate quality there.
  for (GpuType type : {GpuType::kA100, GpuType::kA40}) {
    const JobContext ctx = model().MakeContext(spec, type);
    for (int n : {8, 16, 32, 64}) {
      const Cell cell{type, n, 2};
      const CellEstimate est = estimator.Estimate(ctx, cell);
      if (!est.feasible) {
        continue;
      }
      const PlanEval measured = model().Evaluate(ctx, est.plan);
      ASSERT_TRUE(measured.feasible) << spec.Key() << " " << cell.ToString();
      EXPECT_LT(std::abs(est.iter_time - measured.iter_time) / measured.iter_time, 0.15)
          << spec.Key() << " " << cell.ToString();
      // Throughput scales with the batch: bigger global batches amortize
      // fixed costs, so samples/s must not drop when only the batch grows.
      return;  // one feasible check per config keeps the sweep fast
    }
  }
  // Large MoE/WRes configurations may not fit these probes on A100/A40 alone;
  // reaching here is acceptable for them, wrong for small models.
  EXPECT_GE(spec.params_billion, 4.0) << spec.Key() << " small model had no feasible probe";
}

TEST_P(ModelZooTest, BatchScalingIsMonotoneInThroughput) {
  const ModelSpec spec = GetParam();
  const std::vector<int64_t>& batches = SupportedBatches(spec.family);
  Explorer explorer(&model());
  const JobContext probe = model().MakeContext(spec, GpuType::kA100);
  const ExploreResult feasible = explorer.FullExplore(probe, 32);
  if (!feasible.best.has_value()) {
    GTEST_SKIP() << "needs more than 32 A100s";
  }
  double prev_thr = 0.0;
  for (int64_t batch : batches) {
    ModelSpec with_batch = spec;
    with_batch.global_batch = batch;
    const JobContext ctx = model().MakeContext(with_batch, GpuType::kA100);
    const ExploreResult r = explorer.FullExplore(ctx, 32);
    if (!r.best.has_value()) {
      continue;
    }
    const double thr = static_cast<double>(batch) / r.best->iter_time;
    EXPECT_GT(thr, prev_thr * 0.999) << spec.Name() << " batch " << batch;
    prev_thr = thr;
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, ModelZooTest, ::testing::ValuesIn(AllModelConfigs()),
                         [](const ::testing::TestParamInfo<ModelSpec>& info) {
                           std::string name = info.param.Key();
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace crius
