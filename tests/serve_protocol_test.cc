#include "src/serve/protocol.h"

#include <gtest/gtest.h>

namespace crius {
namespace serve {
namespace {

TEST(ProtocolParseTest, FlatObjectParses) {
  JsonObject obj;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(
      R"({"cmd":"submit","gpus":8,"params_billion":1.3,"flag":true,"off":false})", &obj,
      &error))
      << error;
  EXPECT_EQ(GetString(obj, "cmd"), "submit");
  EXPECT_DOUBLE_EQ(GetNumber(obj, "gpus"), 8.0);
  EXPECT_DOUBLE_EQ(GetNumber(obj, "params_billion"), 1.3);
  EXPECT_TRUE(GetBool(obj, "flag"));
  EXPECT_FALSE(GetBool(obj, "off", true));
}

TEST(ProtocolParseTest, WhitespaceAndEscapesHandled) {
  JsonObject obj;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(" { \"a\" : \"x\\\"y\\\\z\" , \"b\" : -2.5e1 } ", &obj, &error))
      << error;
  EXPECT_EQ(GetString(obj, "a"), "x\"y\\z");
  EXPECT_DOUBLE_EQ(GetNumber(obj, "b"), -25.0);
}

TEST(ProtocolParseTest, EmptyObjectParses) {
  JsonObject obj;
  std::string error;
  EXPECT_TRUE(ParseJsonObject("{}", &obj, &error)) << error;
  EXPECT_TRUE(obj.empty());
}

TEST(ProtocolParseTest, MalformedInputRejectedNotAborted) {
  JsonObject obj;
  std::string error;
  EXPECT_FALSE(ParseJsonObject("", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("not json", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":1", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":}", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":1} trailing", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":1,}", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{a:1}", &obj, &error));
}

TEST(ProtocolParseTest, NestingArraysAndNullRejected) {
  JsonObject obj;
  std::string error;
  EXPECT_FALSE(ParseJsonObject("{\"a\":{\"b\":1}}", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":[1,2]}", &obj, &error));
  EXPECT_FALSE(ParseJsonObject("{\"a\":null}", &obj, &error));
}

TEST(ProtocolSerializeTest, DeterministicSortedKeys) {
  JsonObject obj;
  obj["zeta"] = JsonValue::Number(1);
  obj["alpha"] = JsonValue::String("x");
  obj["mid"] = JsonValue::Bool(true);
  EXPECT_EQ(Serialize(obj), R"({"alpha":"x","mid":true,"zeta":1})");
}

TEST(ProtocolSerializeTest, NumbersIntegerFormattedWhenWhole) {
  JsonObject obj;
  obj["i"] = JsonValue::Number(42.0);
  obj["d"] = JsonValue::Number(1.5);
  const std::string line = Serialize(obj);
  EXPECT_NE(line.find("\"i\":42"), std::string::npos);
  EXPECT_EQ(line.find("42.0"), std::string::npos);
  EXPECT_NE(line.find("\"d\":1.5"), std::string::npos);
}

TEST(ProtocolSerializeTest, StringsEscaped) {
  JsonObject obj;
  obj["s"] = JsonValue::String("a\"b\\c\nd");
  JsonObject back;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Serialize(obj), &back, &error)) << error;
  EXPECT_EQ(GetString(back, "s"), "a\"b\\c\nd");
}

TEST(ProtocolResponseTest, OkAndErrorShapes) {
  EXPECT_EQ(OkResponse(), R"({"ok":true})");
  JsonObject extra;
  extra["job_id"] = JsonValue::Number(7);
  EXPECT_EQ(OkResponse(extra), R"({"job_id":7,"ok":true})");
  EXPECT_EQ(ErrorResponse(RejectReason::kQueueFull),
            R"({"ok":false,"reason":"queue_full"})");
  EXPECT_EQ(ErrorResponse(RejectReason::kBadRequest, "what"),
            R"({"message":"what","ok":false,"reason":"bad_request"})");
}

TEST(ProtocolSubmitTest, RoundTripThroughRequest) {
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kMoe, 2.4, 512};
  job.iterations = 77;
  job.requested_gpus = 16;
  job.requested_type = GpuType::kA40;
  job.deadline = 3600.0;

  TrainingJob parsed;
  std::string error;
  ASSERT_TRUE(ParseSubmitJob(SubmitRequest(job), &parsed, &error)) << error;
  EXPECT_TRUE(parsed.spec == job.spec);
  EXPECT_EQ(parsed.iterations, 77);
  EXPECT_EQ(parsed.requested_gpus, 16);
  EXPECT_EQ(parsed.requested_type, GpuType::kA40);
  ASSERT_TRUE(parsed.deadline.has_value());
  EXPECT_DOUBLE_EQ(*parsed.deadline, 3600.0);
}

JsonObject ValidSubmit() {
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kBert, 1.3, 256};
  job.iterations = 10;
  job.requested_gpus = 8;
  return SubmitRequest(job);
}

TEST(ProtocolSubmitTest, ValidationRejectsBadFields) {
  TrainingJob job;
  std::string error;

  JsonObject bad = ValidSubmit();
  bad["family"] = JsonValue::String("GPT");
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));
  EXPECT_NE(error.find("family"), std::string::npos);

  bad = ValidSubmit();
  bad["params_billion"] = JsonValue::Number(3.33);  // unsupported BERT size
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));

  bad = ValidSubmit();
  bad["gpus"] = JsonValue::Number(0);
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));

  bad = ValidSubmit();
  bad["iterations"] = JsonValue::Number(-1);
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));

  bad = ValidSubmit();
  bad["type"] = JsonValue::String("H100");
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));

  bad = ValidSubmit();
  bad["deadline"] = JsonValue::Number(-5);
  EXPECT_FALSE(ParseSubmitJob(bad, &job, &error));
}

TEST(ProtocolSubmitTest, SupportedSizeSnapsExactly) {
  // A client that sends 0.7600000001 means BERT-0.76B; the parsed job must
  // carry the exact supported size so the oracle's lookups hit.
  JsonObject request = ValidSubmit();
  request["family"] = JsonValue::String("BERT");
  request["params_billion"] = JsonValue::Number(0.76 + 1e-10);
  TrainingJob job;
  std::string error;
  ASSERT_TRUE(ParseSubmitJob(request, &job, &error)) << error;
  EXPECT_EQ(job.spec.params_billion, 0.76);
}

}  // namespace
}  // namespace serve
}  // namespace crius
