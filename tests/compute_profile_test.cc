#include "src/core/compute_profile.h"

#include <gtest/gtest.h>

#include "src/parallel/stage_partition.h"

namespace crius {
namespace {

class ComputeProfileTest : public ::testing::Test {
 protected:
  ComputeProfileTest()
      : cluster_(MakeSimulatedCluster()), model_(cluster_), profiler_(&model_, 42) {}

  JobContext Ctx(GpuType type = GpuType::kA100) {
    return model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128}, type);
  }

  Cluster cluster_;
  PerfModel model_;
  SingleDeviceProfiler profiler_;
};

TEST_F(ComputeProfileTest, MeasurementWithinJitterOfSingleDeviceTruth) {
  const JobContext ctx = Ctx();
  const StageRange range{0, ctx.graph->size(), 4};
  const StageEval exact = model_.EvalStage(ctx, range, 4, 1, 1);
  const StageProfile prof = profiler_.ProfileStage(ctx, range, 4, 1, 1);
  EXPECT_NEAR(prof.t_compute, exact.t_compute_single,
              exact.t_compute_single * SingleDeviceProfiler::kMeasureJitter * 1.001);
}

TEST_F(ComputeProfileTest, MeasuresSingleDeviceNotDistributedTime) {
  // The profiler cannot see the distributed straggler factor; on average its
  // readings sit below the true distributed compute time.
  const JobContext ctx = Ctx();
  const StageRange range{0, ctx.graph->size(), 8};
  const StageEval exact = model_.EvalStage(ctx, range, 1, 8, 1);
  const StageProfile prof = profiler_.ProfileStage(ctx, range, 1, 8, 1);
  EXPECT_LT(prof.t_compute, exact.t_compute);
}

TEST_F(ComputeProfileTest, MemoryIsExact) {
  const JobContext ctx = Ctx();
  const StageRange range{0, ctx.graph->size(), 2};
  const StageEval exact = model_.EvalStage(ctx, range, 1, 2, 1);
  const StageProfile prof = profiler_.ProfileStage(ctx, range, 1, 2, 1);
  EXPECT_DOUBLE_EQ(prof.mem_bytes, exact.mem_bytes);
  EXPECT_EQ(prof.fits, exact.fits);
}

TEST_F(ComputeProfileTest, DetectsOom) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 2.6, 128},
                                            GpuType::kA100);
  const StageRange range{0, ctx.graph->size(), 4};
  EXPECT_FALSE(profiler_.ProfileStage(ctx, range, 4, 1, 1).fits);   // dp-only OOM
  EXPECT_TRUE(profiler_.ProfileStage(ctx, range, 1, 4, 1).fits);    // tp-only fits
}

TEST_F(ComputeProfileTest, Deterministic) {
  const JobContext ctx = Ctx();
  const StageRange range{0, ctx.graph->size() / 2, 4};
  const StageProfile a = profiler_.ProfileStage(ctx, range, 2, 2, 2);
  const StageProfile b = profiler_.ProfileStage(ctx, range, 2, 2, 2);
  EXPECT_DOUBLE_EQ(a.t_compute, b.t_compute);
  const SingleDeviceProfiler other(&model_, 42);
  EXPECT_DOUBLE_EQ(a.t_compute, other.ProfileStage(ctx, range, 2, 2, 2).t_compute);
}

TEST_F(ComputeProfileTest, DifferentSplitsGetIndependentJitter) {
  const JobContext ctx = Ctx();
  const StageRange range{0, ctx.graph->size(), 4};
  const StageProfile dp = profiler_.ProfileStage(ctx, range, 4, 1, 1);
  const StageProfile tp = profiler_.ProfileStage(ctx, range, 1, 4, 1);
  // Not a fixed ratio of each other: jitters differ.
  EXPECT_NE(dp.t_compute, tp.t_compute);
}

TEST_F(ComputeProfileTest, CostIncludesCompilationPerOperator) {
  const JobContext ctx = Ctx();
  const StageRange full{0, ctx.graph->size(), 4};
  const StageRange half{0, ctx.graph->size() / 2, 4};
  const StageProfile pf = profiler_.ProfileStage(ctx, full, 4, 1, 1);
  const StageProfile ph = profiler_.ProfileStage(ctx, half, 4, 1, 2);
  EXPECT_GT(pf.gpu_seconds, ph.gpu_seconds);
  EXPECT_GE(pf.gpu_seconds,
            SingleDeviceProfiler::kCompileSecondsPerOp * static_cast<double>(ctx.graph->size()));
}

TEST_F(ComputeProfileTest, CostIsSingleGpuScale) {
  // Profiling cost must not scale with the stage's GPU count -- that is the
  // whole point of single-device distributed profiling (§5.1).
  const JobContext ctx = Ctx();
  const StageRange small{0, ctx.graph->size(), 2};
  const StageRange big{0, ctx.graph->size(), 16};
  const double cost2 = profiler_.ProfileStage(ctx, small, 2, 1, 1).gpu_seconds;
  const double cost16 = profiler_.ProfileStage(ctx, big, 16, 1, 1).gpu_seconds;
  EXPECT_NEAR(cost2, cost16, cost2 * 0.5);
}

}  // namespace
}  // namespace crius
