// Tests for the BENCH_*.json perf-trajectory format and the
// baseline-vs-fresh comparison behind tools/crius_benchdiff
// (src/util/benchdiff.h).

#include "src/util/benchdiff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace crius {
namespace {

BenchReport MakeBaseline() {
  BenchReport report;
  report.bench = "ext_demo";
  report.meta["mode"] = "smoke";
  report.AddMetric("latency_ms", 10.0, "ms", "lower", 0.5);
  report.AddMetric("throughput", 100.0, "1/s", "higher", 0.2);
  report.AddMetric("rounds", 48.0, "", "none");
  return report;
}

const BenchDiffEntry* FindEntry(const BenchDiffResult& result, const std::string& name) {
  for (const BenchDiffEntry& entry : result.entries) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

TEST(BenchReportTest, JsonRoundTrip) {
  const BenchReport original = MakeBaseline();
  BenchReport parsed;
  std::string error;
  ASSERT_TRUE(BenchReport::Parse(original.ToJson(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, "ext_demo");
  EXPECT_EQ(parsed.meta.at("mode"), "smoke");
  ASSERT_EQ(parsed.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.metrics.at("latency_ms").value, 10.0);
  EXPECT_EQ(parsed.metrics.at("latency_ms").unit, "ms");
  EXPECT_EQ(parsed.metrics.at("latency_ms").better, "lower");
  EXPECT_DOUBLE_EQ(parsed.metrics.at("latency_ms").threshold, 0.5);
  // Unset threshold is omitted from JSON and reads back as the -1 sentinel.
  EXPECT_DOUBLE_EQ(parsed.metrics.at("rounds").threshold, -1.0);
  // Serialization is deterministic: a second round-trip is byte-identical.
  EXPECT_EQ(parsed.ToJson(), original.ToJson());
}

TEST(BenchReportTest, ParseRejectsMalformedReports) {
  BenchReport out;
  std::string error;
  EXPECT_FALSE(BenchReport::Parse("nope", &out, &error));
  EXPECT_FALSE(BenchReport::Parse(R"({"bench":"x","schema":2,"metrics":{}})", &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(BenchReport::Parse(R"({"bench":"x","schema":1})", &out, &error));
  EXPECT_NE(error.find("metrics"), std::string::npos);
  // Bad `better` direction is rejected, not defaulted.
  EXPECT_FALSE(BenchReport::Parse(
      R"({"bench":"x","schema":1,"metrics":{"m":{"value":1,"better":"sideways"}}})", &out,
      &error));
  EXPECT_NE(error.find("sideways"), std::string::npos);
}

TEST(BenchReportTest, WriteAndReadFile) {
  const std::string path = ::testing::TempDir() + "/crius_benchdiff_test.json";
  std::remove(path.c_str());
  const BenchReport original = MakeBaseline();
  ASSERT_TRUE(original.WriteFile(path));
  BenchReport loaded;
  std::string error;
  ASSERT_TRUE(BenchReport::ReadFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.ToJson(), original.ToJson());
  EXPECT_FALSE(BenchReport::ReadFile(path + ".does_not_exist", &loaded, &error));
  std::remove(path.c_str());
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  const BenchReport baseline = MakeBaseline();
  const BenchDiffResult result = CompareBenchReports(baseline, baseline, 0.5);
  EXPECT_FALSE(result.regressed);
  const BenchDiffEntry* latency = FindEntry(result, "latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->status, BenchDiffEntry::Status::kOk);
  EXPECT_DOUBLE_EQ(latency->ratio, 1.0);
  // better == "none" never gates.
  const BenchDiffEntry* rounds = FindEntry(result, "rounds");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->status, BenchDiffEntry::Status::kNotComparable);
}

TEST(BenchDiffTest, RegressionsInEitherDirection) {
  const BenchReport baseline = MakeBaseline();
  BenchReport fresh = baseline;
  fresh.metrics["latency_ms"].value = 20.0;   // 2x slower, threshold 0.5 -> regressed
  fresh.metrics["throughput"].value = 70.0;   // -30%, threshold 0.2 -> regressed
  const BenchDiffResult result = CompareBenchReports(baseline, fresh, 0.5);
  EXPECT_TRUE(result.regressed);
  EXPECT_EQ(FindEntry(result, "latency_ms")->status, BenchDiffEntry::Status::kRegressed);
  EXPECT_EQ(FindEntry(result, "throughput")->status, BenchDiffEntry::Status::kRegressed);
  EXPECT_NE(result.Render().find("VERDICT: REGRESSED"), std::string::npos);
}

TEST(BenchDiffTest, ImprovementsPassTheGate) {
  const BenchReport baseline = MakeBaseline();
  BenchReport fresh = baseline;
  fresh.metrics["latency_ms"].value = 4.0;     // well under the 0.5 tolerance
  fresh.metrics["throughput"].value = 150.0;   // +50% over the 0.2 tolerance
  const BenchDiffResult result = CompareBenchReports(baseline, fresh, 0.5);
  EXPECT_FALSE(result.regressed);
  EXPECT_EQ(FindEntry(result, "latency_ms")->status, BenchDiffEntry::Status::kImproved);
  EXPECT_EQ(FindEntry(result, "throughput")->status, BenchDiffEntry::Status::kImproved);
}

TEST(BenchDiffTest, BaselineThresholdOverridesDefault) {
  BenchReport baseline;
  baseline.bench = "b";
  baseline.AddMetric("loose_ms", 10.0, "ms", "lower", 9.0);  // 10x tolerated
  baseline.AddMetric("tight_ms", 10.0, "ms", "lower");       // no threshold -> default
  BenchReport fresh = baseline;
  fresh.metrics["loose_ms"].value = 50.0;  // 5x: inside the loose per-metric bound
  fresh.metrics["tight_ms"].value = 50.0;  // 5x: outside the 0.5 default
  const BenchDiffResult result = CompareBenchReports(baseline, fresh, 0.5);
  EXPECT_TRUE(result.regressed);
  const BenchDiffEntry* loose = FindEntry(result, "loose_ms");
  ASSERT_NE(loose, nullptr);
  EXPECT_EQ(loose->status, BenchDiffEntry::Status::kOk);
  EXPECT_DOUBLE_EQ(loose->threshold, 9.0);
  const BenchDiffEntry* tight = FindEntry(result, "tight_ms");
  ASSERT_NE(tight, nullptr);
  EXPECT_EQ(tight->status, BenchDiffEntry::Status::kRegressed);
  EXPECT_DOUBLE_EQ(tight->threshold, 0.5);
}

TEST(BenchDiffTest, VanishedMetricFailsNewMetricPasses) {
  const BenchReport baseline = MakeBaseline();
  BenchReport fresh = baseline;
  fresh.metrics.erase("latency_ms");                       // vanished: fails
  fresh.AddMetric("extra_ms", 1.0, "ms", "lower", 0.5);    // new: informational
  const BenchDiffResult result = CompareBenchReports(baseline, fresh, 0.5);
  EXPECT_TRUE(result.regressed);
  EXPECT_EQ(FindEntry(result, "latency_ms")->status, BenchDiffEntry::Status::kMissingFresh);
  EXPECT_EQ(FindEntry(result, "extra_ms")->status, BenchDiffEntry::Status::kMissingBaseline);

  // A new metric alone must not fail the gate.
  BenchReport fresh_only_new = baseline;
  fresh_only_new.AddMetric("extra_ms", 1.0, "ms", "lower", 0.5);
  EXPECT_FALSE(CompareBenchReports(baseline, fresh_only_new, 0.5).regressed);
}

TEST(BenchDiffTest, NonPositiveBaselineIsNotComparable) {
  BenchReport baseline;
  baseline.bench = "b";
  baseline.AddMetric("zero", 0.0, "", "lower", 0.5);
  BenchReport fresh = baseline;
  fresh.metrics["zero"].value = 100.0;
  const BenchDiffResult result = CompareBenchReports(baseline, fresh, 0.5);
  EXPECT_FALSE(result.regressed);
  EXPECT_EQ(FindEntry(result, "zero")->status, BenchDiffEntry::Status::kNotComparable);
}

TEST(UpdateBaselineTest, FreshValuesWinButSurvivorsKeepTunedThresholds) {
  const BenchReport baseline = MakeBaseline();
  BenchReport fresh = baseline;
  fresh.meta["mode"] = "full";
  fresh.metrics["latency_ms"].value = 7.5;
  fresh.metrics["latency_ms"].threshold = 0.1;  // discarded: baseline's 0.5 wins
  fresh.metrics["throughput"].value = 140.0;
  const BenchReport updated = UpdateBaseline(baseline, fresh);
  EXPECT_EQ(updated.bench, "ext_demo");
  EXPECT_EQ(updated.meta.at("mode"), "full");
  EXPECT_DOUBLE_EQ(updated.metrics.at("latency_ms").value, 7.5);
  EXPECT_DOUBLE_EQ(updated.metrics.at("latency_ms").threshold, 0.5);
  EXPECT_DOUBLE_EQ(updated.metrics.at("throughput").value, 140.0);
  EXPECT_DOUBLE_EQ(updated.metrics.at("throughput").threshold, 0.2);
}

TEST(UpdateBaselineTest, MetricSetFollowsTheFreshRun) {
  const BenchReport baseline = MakeBaseline();
  BenchReport fresh = baseline;
  fresh.metrics.erase("rounds");                            // vanished: dropped
  fresh.AddMetric("p99_ms", 25.0, "ms", "lower", 1.0);      // new: enters as-is
  const BenchReport updated = UpdateBaseline(baseline, fresh);
  EXPECT_EQ(updated.metrics.count("rounds"), 0u);
  ASSERT_EQ(updated.metrics.count("p99_ms"), 1u);
  EXPECT_DOUBLE_EQ(updated.metrics.at("p99_ms").threshold, 1.0);
  // The refreshed baseline passes the gate against the run that produced it.
  EXPECT_FALSE(CompareBenchReports(updated, fresh, 0.5).regressed);
}

TEST(UpdateBaselineTest, UnsetBaselineThresholdDoesNotClobberFresh) {
  BenchReport baseline;
  baseline.bench = "b";
  baseline.AddMetric("m", 10.0, "ms", "lower");  // threshold -1 sentinel
  BenchReport fresh = baseline;
  fresh.metrics["m"].value = 12.0;
  fresh.metrics["m"].threshold = 0.3;
  const BenchReport updated = UpdateBaseline(baseline, fresh);
  // The baseline never carried a tuned bound, so fresh's own threshold stands.
  EXPECT_DOUBLE_EQ(updated.metrics.at("m").threshold, 0.3);

  // An empty baseline (first run of a new bench) adopts fresh wholesale.
  const BenchReport adopted = UpdateBaseline(BenchReport{}, fresh);
  EXPECT_EQ(adopted.ToJson(), fresh.ToJson());
}

TEST(BenchDiffTest, RenderMentionsEveryMetricAndVerdict) {
  const BenchReport baseline = MakeBaseline();
  const BenchDiffResult result = CompareBenchReports(baseline, baseline, 0.5);
  const std::string rendered = result.Render();
  EXPECT_NE(rendered.find("latency_ms"), std::string::npos);
  EXPECT_NE(rendered.find("throughput"), std::string::npos);
  EXPECT_NE(rendered.find("rounds"), std::string::npos);
  EXPECT_NE(rendered.find("VERDICT: ok"), std::string::npos);
}

}  // namespace
}  // namespace crius
