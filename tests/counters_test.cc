// Tests for the counter/histogram registry (src/util/counters.h).

#include "src/util/counters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/util/stats.h"

namespace crius {
namespace {

class CountersTest : public ::testing::Test {
 protected:
  void SetUp() override { CounterRegistry::Global().Reset(); }
  void TearDown() override { CounterRegistry::Global().Reset(); }
};

TEST_F(CountersTest, CounterMacrosAccumulate) {
  for (int i = 0; i < 5; ++i) {
    CRIUS_COUNTER_INC("test.inc");
  }
  CRIUS_COUNTER_ADD("test.add", 7);
  CRIUS_COUNTER_ADD("test.add", 3);
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.inc"), 5);
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.add"), 10);
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.never_touched"), 0);
}

TEST_F(CountersTest, ResetZeroesButKeepsEntriesValid) {
  Counter& c = CounterRegistry::Global().GetCounter("test.stable");
  c.Add(41);
  CounterRegistry::Global().Reset();
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.stable"), 0);
  // The cached reference (what the macros hold in a function-local static)
  // must still reach the live entry after Reset.
  c.Add(1);
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.stable"), 1);
}

TEST_F(CountersTest, HistogramSnapshotBasics) {
  Histogram& h = CounterRegistry::Global().GetHistogram("test.h");
  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  const HistogramSnapshot s = CounterRegistry::Global().HistogramValues("test.h");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST_F(CountersTest, SingleValuePercentilesCollapseToIt) {
  Histogram& h = CounterRegistry::Global().GetHistogram("test.single");
  h.Record(42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 42.0);
}

TEST_F(CountersTest, PercentilesTrackExactWithinBucketError) {
  // Compare the streaming estimate against the exact sorted-vector percentile
  // from stats.h on a wide-range sample; log bucketing bounds the relative
  // error by one bucket width (~7.5%).
  Histogram& h = CounterRegistry::Global().GetHistogram("test.p");
  std::vector<double> values;
  for (int i = 1; i <= 2000; ++i) {
    const double v = 0.001 * static_cast<double>(i) * static_cast<double>(i);
    values.push_back(v);
    h.Record(v);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = Percentile(values, p);
    const double approx = h.Percentile(p);
    EXPECT_NEAR(approx, exact, 0.10 * exact) << "p" << p;
  }
}

TEST_F(CountersTest, PercentilesClampToObservedRange) {
  Histogram& h = CounterRegistry::Global().GetHistogram("test.clamp");
  h.Record(3.0);
  h.Record(9.0);
  EXPECT_GE(h.Percentile(0.0), 3.0);
  EXPECT_LE(h.Percentile(100.0), 9.0);
}

TEST_F(CountersTest, NonPositiveValuesLandAtMin) {
  Histogram& h = CounterRegistry::Global().GetHistogram("test.nonpos");
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(0.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), -5.0);  // clamped to the exact min
}

TEST_F(CountersTest, EmptyHistogramReadsZero) {
  Histogram& h = CounterRegistry::Global().GetHistogram("test.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST_F(CountersTest, HistogramMacroRecords) {
  for (int i = 0; i < 10; ++i) {
    CRIUS_HISTOGRAM_RECORD("test.macro_h", static_cast<double>(i + 1));
  }
  EXPECT_EQ(CounterRegistry::Global().HistogramValues("test.macro_h").count, 10u);
}

TEST_F(CountersTest, ScopedTimerRecordsNonNegativeMs) {
  {
    CRIUS_SCOPED_TIMER_MS("test.timer_ms");
  }
  const HistogramSnapshot s = CounterRegistry::Global().HistogramValues("test.timer_ms");
  ASSERT_EQ(s.count, 1u);
  EXPECT_GE(s.max, 0.0);
}

TEST_F(CountersTest, DumpTableListsRecordedEntries) {
  EXPECT_TRUE(CounterRegistry::Global().Empty());
  CRIUS_COUNTER_ADD("test.dump_counter", 4);
  CRIUS_HISTOGRAM_RECORD("test.dump_hist", 1.5);
  EXPECT_FALSE(CounterRegistry::Global().Empty());
  const std::string table = CounterRegistry::Global().DumpTable();
  EXPECT_NE(table.find("test.dump_counter"), std::string::npos);
  EXPECT_NE(table.find("test.dump_hist"), std::string::npos);
}

TEST_F(CountersTest, NamesAreSorted) {
  // Entries registered by earlier tests persist (Reset zeroes, never erases),
  // so only check ordering and membership, not the exact set.
  CounterRegistry::Global().GetCounter("test.zz_b");
  CounterRegistry::Global().GetCounter("test.zz_a");
  const std::vector<std::string> names = CounterRegistry::Global().CounterNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "test.zz_a"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.zz_b"), names.end());
}

TEST_F(CountersTest, GaugeSetAddReset) {
  Gauge& g = CounterRegistry::Global().GetGauge("test.gauge");
  g.Set(4.5);
  EXPECT_DOUBLE_EQ(CounterRegistry::Global().GaugeValue("test.gauge"), 4.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  CRIUS_GAUGE_SET("test.gauge", 2.0);  // macro reaches the same entry
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  CounterRegistry::Global().Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(CounterRegistry::Global().GaugeValue("test.never_set"), 0.0);
}

TEST_F(CountersTest, CanonicalMetricNameSortsKeysAndEscapesValues) {
  EXPECT_EQ(CanonicalMetricName("m", {}), "m");
  EXPECT_EQ(CanonicalMetricName("m", {{"b", "2"}, {"a", "1"}}), R"(m{a="1",b="2"})");
  // Values with quotes/backslashes stay unambiguous in the canonical key.
  EXPECT_EQ(CanonicalMetricName("m", {{"k", "say \"hi\""}}), R"(m{k="say \"hi\""})");
}

TEST_F(CountersTest, LabeledEntriesAreDistinctFromUnlabeled) {
  CounterRegistry& registry = CounterRegistry::Global();
  registry.GetCounter("test.labeled").Add(1);
  registry.GetCounter("test.labeled", {{"shard", "0"}}).Add(10);
  registry.GetCounter("test.labeled", {{"shard", "1"}}).Add(20);
  EXPECT_EQ(registry.CounterValue("test.labeled"), 1);
  EXPECT_EQ(registry.CounterValue(CanonicalMetricName("test.labeled", {{"shard", "0"}})), 10);
  EXPECT_EQ(registry.CounterValue(CanonicalMetricName("test.labeled", {{"shard", "1"}})), 20);
}

TEST_F(CountersTest, SnapshotCarriesBaseNamesAndLabels) {
  CounterRegistry& registry = CounterRegistry::Global();
  registry.GetCounter("test.snap_counter", {{"scheduler", "crius"}, {"shard", "0"}}).Add(3);
  registry.GetGauge("test.snap_gauge").Set(1.5);
  registry.GetHistogram("test.snap_hist", {{"phase", "drain"}}).Record(2.0);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const MetricSample* counter = nullptr;
  for (const MetricSample& sample : snapshot.counters) {
    if (sample.name == "test.snap_counter") {
      counter = &sample;
    }
  }
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->labels, (MetricLabels{{"scheduler", "crius"}, {"shard", "0"}}));
  EXPECT_DOUBLE_EQ(counter->value, 3.0);

  bool found_gauge = false;
  for (const MetricSample& sample : snapshot.gauges) {
    if (sample.name == "test.snap_gauge") {
      found_gauge = true;
      EXPECT_TRUE(sample.labels.empty());
      EXPECT_DOUBLE_EQ(sample.value, 1.5);
    }
  }
  EXPECT_TRUE(found_gauge);

  const HistogramSample* hist = nullptr;
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name == "test.snap_hist") {
      hist = &sample;
    }
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->labels, (MetricLabels{{"phase", "drain"}}));
  EXPECT_EQ(hist->value.count, 1u);
  EXPECT_DOUBLE_EQ(hist->value.sum, 2.0);
}

TEST_F(CountersTest, DumpTableListsGauges) {
  CRIUS_GAUGE_SET("test.dump_gauge", 3.25);
  const std::string table = CounterRegistry::Global().DumpTable();
  EXPECT_NE(table.find("test.dump_gauge"), std::string::npos);
  EXPECT_NE(table.find("3.25"), std::string::npos);
}

TEST_F(CountersTest, HistogramResetDropsStaleExtrema) {
  // Regression test: percentile interpolation clamps to the observed
  // [min, max]; a Reset() that kept the old extrema would let a pre-Reset
  // outlier leak into the clamp range of post-Reset recordings.
  Histogram& h = CounterRegistry::Global().GetHistogram("test.reset_extrema");
  h.Record(1000.0);
  h.Record(0.001);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  h.Record(2.0);
  h.Record(3.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  // Every percentile must land inside the post-Reset range, not near the
  // stale 0.001 / 1000.0 extrema.
  for (double p : {0.0, 50.0, 95.0, 100.0}) {
    EXPECT_GE(h.Percentile(p), 2.0) << "p" << p;
    EXPECT_LE(h.Percentile(p), 3.0) << "p" << p;
  }
}

TEST_F(CountersTest, ConcurrentRecordingSmoke) {
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kOps; ++i) {
        CRIUS_COUNTER_INC("test.mt_counter");
        CRIUS_HISTOGRAM_RECORD("test.mt_hist", static_cast<double>(i + 1));
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(CounterRegistry::Global().CounterValue("test.mt_counter"),
            static_cast<int64_t>(kThreads) * kOps);
  EXPECT_EQ(CounterRegistry::Global().HistogramValues("test.mt_hist").count,
            static_cast<size_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace crius
