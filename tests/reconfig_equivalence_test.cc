// Acceptance tests for live reconfiguration (src/reconfig) in the engine:
//
//  * Off path: with reconfig disabled (the default), a run is bit-identical
//    to one whose SimConfig never mentions reconfig at all — the subsystem is
//    inert unless asked for — and applies zero migrations.
//  * On path: the same burst+failure scenario with --reconfig applies at
//    least one migration and stays bit-identical across thread counts and
//    across repeated runs (the determinism contract the serve replay and the
//    CI matrix rely on).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/fault/failure_injector.h"
#include "src/sched/baselines.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"
#include "src/util/threadpool.h"

namespace crius {
namespace {

struct RunOutput {
  std::string events;
  std::string timeline;
  std::string jobs;
  int migrations = 0;
  double migration_cost_seconds = 0.0;
};

class ReconfigEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }

  // A burst+failure scenario under FCFS (frozen placements unless the
  // reconfig engine moves something): a mid-trace node failure + recovery
  // supplies both triggers and stranded-then-freed capacity.
  static RunOutput Run(int threads, bool reconfig) {
    ThreadPool::SetGlobalThreads(threads);
    Cluster cluster = MakePhysicalTestbed();
    PerformanceOracle oracle(cluster, 42);

    TraceConfig trace_config = PhillySixHourConfig();
    trace_config.seed = 42;
    trace_config.num_jobs = 32;
    const auto trace = GenerateTrace(cluster, oracle, trace_config);

    SimConfig sim_config;
    sim_config.record_events = true;
    sim_config.checkpoint.interval = 30.0 * kMinute;
    sim_config.failures.push_back(FailureEvent{2.0 * kHour, FailureKind::kNodeFail, 0, 0, 1.0});
    sim_config.failures.push_back(
        FailureEvent{3.0 * kHour, FailureKind::kNodeRecover, 0, 0, 1.0});
    sim_config.reconfig.enabled = reconfig;

    Simulator sim(cluster, sim_config);
    FcfsScheduler sched(&oracle);
    const SimResult result = sim.Run(sched, oracle, trace);

    RunOutput out;
    std::ostringstream events, timeline, jobs;
    WriteEventsCsv(result, events);
    WriteTimelineCsv(result, timeline);
    WriteJobRecordsCsv(result, jobs);
    out.events = events.str();
    out.timeline = timeline.str();
    out.jobs = jobs.str();
    out.migrations = result.migrations;
    out.migration_cost_seconds = result.migration_cost_seconds;
    return out;
  }
};

TEST_F(ReconfigEquivalenceTest, DisabledPathIsInert) {
  const RunOutput off = Run(1, /*reconfig=*/false);
  EXPECT_EQ(off.migrations, 0);
  EXPECT_DOUBLE_EQ(off.migration_cost_seconds, 0.0);
  EXPECT_EQ(off.events.find("migrate"), std::string::npos);
  // Repeat run: the default path stays deterministic with the subsystem
  // linked in.
  const RunOutput again = Run(1, /*reconfig=*/false);
  EXPECT_EQ(again.events, off.events);
  EXPECT_EQ(again.timeline, off.timeline);
  EXPECT_EQ(again.jobs, off.jobs);
}

TEST_F(ReconfigEquivalenceTest, EnabledPathMigratesAndStaysDeterministic) {
  const RunOutput base = Run(1, /*reconfig=*/true);
  ASSERT_GT(base.migrations, 0) << "scenario produced no migration; the equivalence "
                                   "assertions below would be vacuous";
  EXPECT_NE(base.events.find("migrate"), std::string::npos);
  EXPECT_GT(base.migration_cost_seconds, 0.0);
  for (int threads : {2, 4}) {
    const RunOutput parallel = Run(threads, /*reconfig=*/true);
    EXPECT_EQ(parallel.events, base.events) << "events diverge at --threads " << threads;
    EXPECT_EQ(parallel.timeline, base.timeline)
        << "timeline diverges at --threads " << threads;
    EXPECT_EQ(parallel.jobs, base.jobs) << "job records diverge at --threads " << threads;
    EXPECT_EQ(parallel.migrations, base.migrations);
  }
}

TEST_F(ReconfigEquivalenceTest, EnabledAndDisabledRunsDivergeOnlyByMigrations) {
  // Sanity on the comparison itself: with migrations applied the timelines
  // genuinely differ (otherwise the equivalence tests compare constants).
  const RunOutput off = Run(1, /*reconfig=*/false);
  const RunOutput on = Run(1, /*reconfig=*/true);
  if (on.migrations > 0) {
    EXPECT_NE(on.events, off.events);
  }
}

}  // namespace
}  // namespace crius
