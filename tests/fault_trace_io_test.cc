// Tests for failure-trace CSV persistence (src/fault/fault_trace_io).

#include "src/fault/fault_trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/hw/cluster.h"
#include "src/util/units.h"

namespace crius {
namespace {

TEST(FaultTraceIoTest, RoundTripsAnInjectorSchedule) {
  const Cluster cluster = MakePhysicalTestbed();
  FailureInjectorConfig config;
  config.node_mtbf_hours = 4.0;
  config.gpu_mtbf_hours = 12.0;
  config.straggler_rate = 0.05;
  config.horizon = 24.0 * kHour;
  const auto events = GenerateFailureSchedule(cluster, config);
  ASSERT_FALSE(events.empty());

  std::stringstream ss;
  WriteFailureTraceCsv(events, ss);
  // max_digits10 serialization: the reload is bit-exact, so a replayed
  // simulation is identical to the generating run.
  EXPECT_EQ(ReadFailureTraceCsv(ss), events);
}

TEST(FaultTraceIoTest, ReaderSortsHandWrittenFiles) {
  std::stringstream ss(
      "time,kind,node_id,gpus,slowdown\n"
      "2400,node_recover,3,0,1\n"
      "600,node_fail,3,0,1\n"
      "60,straggler_start,1,0,1.8\n");
  const auto events = ReadFailureTraceCsv(ss);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FailureKind::kStragglerStart);
  EXPECT_DOUBLE_EQ(events[0].slowdown, 1.8);
  EXPECT_EQ(events[1].kind, FailureKind::kNodeFail);
  EXPECT_EQ(events[2].kind, FailureKind::kNodeRecover);
}

TEST(FaultTraceIoDeathTest, MissingHeaderAborts) {
  std::stringstream ss("600,node_fail,3,0,1\n");
  EXPECT_DEATH(ReadFailureTraceCsv(ss), "header");
}

TEST(FaultTraceIoDeathTest, WrongFieldCountAborts) {
  std::stringstream ss("time,kind,node_id,gpus,slowdown\n600,node_fail,3\n");
  EXPECT_DEATH(ReadFailureTraceCsv(ss), "5 fields");
}

TEST(FaultTraceIoDeathTest, UnknownKindAborts) {
  std::stringstream ss("time,kind,node_id,gpus,slowdown\n600,meteor_strike,3,0,1\n");
  EXPECT_DEATH(ReadFailureTraceCsv(ss), "unknown kind");
}

TEST(FaultTraceIoDeathTest, NegativeTimeAborts) {
  std::stringstream ss("time,kind,node_id,gpus,slowdown\n-5,node_fail,3,0,1\n");
  EXPECT_DEATH(ReadFailureTraceCsv(ss), "negative");
}

TEST(FaultTraceIoDeathTest, SubUnitStragglerSlowdownAborts) {
  std::stringstream ss("time,kind,node_id,gpus,slowdown\n600,straggler_start,3,0,0.5\n");
  EXPECT_DEATH(ReadFailureTraceCsv(ss), "slowdown");
}

}  // namespace
}  // namespace crius
