// Protocol dispatch (HandleRequest) and the full socket path
// (Server + Client) against a live Controller.

#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/serve/client.h"
#include "src/serve/replay.h"

namespace crius {
namespace serve {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : runtime_(MakeSessionRuntime(SessionMeta{})) {
    Controller::Config config;
    config.tick_virtual_seconds = 60.0;
    config.tick_wall_seconds = 0.001;
    controller_ = std::make_unique<Controller>(runtime_.cluster, runtime_.sim,
                                               *runtime_.scheduler, *runtime_.oracle,
                                               /*log=*/nullptr, config);
  }

  ~ServiceTest() override {
    if (started_ && !controller_->done()) {
      controller_->Shutdown(/*drain=*/false);
    }
    if (started_) {
      controller_->Join();
    }
  }

  void StartController() {
    controller_->Start();
    started_ = true;
  }

  std::string Handle(const std::string& line) { return HandleRequest(*controller_, line); }

  SessionRuntime runtime_;
  std::unique_ptr<Controller> controller_;
  bool started_ = false;
};

TEST_F(ServiceTest, MalformedJsonRejectedAsBadRequest) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle("not json"), &response, &error)) << error;
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");
  EXPECT_FALSE(GetString(response, "message").empty());
}

TEST_F(ServiceTest, UnknownCommandRejected) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"resize"})"), &response, &error)) << error;
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");
}

TEST_F(ServiceTest, SubmitQueryStatsShutdownOverDispatch) {
  StartController();
  JsonObject response;
  std::string error;

  ASSERT_TRUE(ParseJsonObject(
      Handle(R"({"cmd":"submit","family":"BERT","params_billion":0.76,)"
             R"("global_batch":256,"iterations":20,"gpus":8,"type":"A40"})"),
      &response, &error))
      << error;
  ASSERT_TRUE(GetBool(response, "ok"));
  const int64_t job_id = static_cast<int64_t>(GetNumber(response, "job_id", -1));
  EXPECT_GE(job_id, 1);
  EXPECT_EQ(GetString(response, "status"), "queued");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"query","job_id":999})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "unknown_job");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"stats"})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_TRUE(Has(response, "virtual_now"));
  EXPECT_TRUE(Has(response, "live_jobs"));
  EXPECT_TRUE(Has(response, "latency_p99_ms"));

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"shutdown","mode":"sideways"})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"shutdown","mode":"drain"})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  controller_->Join();
  EXPECT_TRUE(controller_->done());
}

TEST_F(ServiceTest, NodeCommandsValidateRange) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"fail-node","node_id":100000})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"fail-node"})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"fail-node","node_id":0})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"recover-node","node_id":0})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
}

TEST_F(ServiceTest, EndToEndOverUnixSocket) {
  StartController();
  const std::string socket_path = ::testing::TempDir() + "/crius_service_test.sock";
  Server server(socket_path, MakeHandler(*controller_));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;

  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kBert, 0.76, 256};
  job.iterations = 20;
  job.requested_gpus = 8;
  job.requested_type = GpuType::kA40;

  JsonObject response;
  ASSERT_TRUE(client.Submit(job, &response, &error)) << error;
  ASSERT_TRUE(GetBool(response, "ok"));
  const int64_t job_id = static_cast<int64_t>(GetNumber(response, "job_id", -1));

  ASSERT_TRUE(client.FailNode(0, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  ASSERT_TRUE(client.RecoverNode(0, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));

  ASSERT_TRUE(client.Query(job_id, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_FALSE(GetString(response, "status").empty());

  // A second concurrent connection is served too.
  Client other;
  ASSERT_TRUE(other.Connect(socket_path, &error)) << error;
  ASSERT_TRUE(other.Stats(&response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));

  ASSERT_TRUE(client.Shutdown(/*drain=*/true, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  controller_->Join();
  EXPECT_TRUE(controller_->done());
  EXPECT_FALSE(controller_->interrupted());
  server.Stop();

  const Controller::JobStatus status = controller_->Query(job_id);
  ASSERT_TRUE(status.known);
  EXPECT_EQ(status.state, "finished");
}

}  // namespace
}  // namespace serve
}  // namespace crius
