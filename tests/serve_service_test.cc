// Protocol dispatch (HandleRequest) and the full socket path
// (Server + Client) against a live Controller.

#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/serve/client.h"
#include "src/serve/replay.h"
#include "src/util/counters.h"
#include "src/util/metrics_export.h"

namespace crius {
namespace serve {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : runtime_(MakeSessionRuntime(SessionMeta{})) {
    Controller::Config config;
    config.tick_virtual_seconds = 60.0;
    config.tick_wall_seconds = 0.001;
    controller_ = std::make_unique<Controller>(runtime_.cluster, runtime_.sim,
                                               *runtime_.scheduler, *runtime_.oracle,
                                               /*log=*/nullptr, config);
  }

  ~ServiceTest() override {
    if (started_ && !controller_->done()) {
      controller_->Shutdown(/*drain=*/false);
    }
    if (started_) {
      controller_->Join();
    }
  }

  void StartController() {
    controller_->Start();
    started_ = true;
  }

  std::string Handle(const std::string& line) { return HandleRequest(*controller_, line); }

  SessionRuntime runtime_;
  std::unique_ptr<Controller> controller_;
  bool started_ = false;
};

TEST_F(ServiceTest, MalformedJsonRejectedAsBadRequest) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle("not json"), &response, &error)) << error;
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");
  EXPECT_FALSE(GetString(response, "message").empty());
}

TEST_F(ServiceTest, UnknownCommandRejected) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"resize"})"), &response, &error)) << error;
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");
}

TEST_F(ServiceTest, SubmitQueryStatsShutdownOverDispatch) {
  StartController();
  JsonObject response;
  std::string error;

  ASSERT_TRUE(ParseJsonObject(
      Handle(R"({"cmd":"submit","family":"BERT","params_billion":0.76,)"
             R"("global_batch":256,"iterations":20,"gpus":8,"type":"A40"})"),
      &response, &error))
      << error;
  ASSERT_TRUE(GetBool(response, "ok"));
  const int64_t job_id = static_cast<int64_t>(GetNumber(response, "job_id", -1));
  EXPECT_GE(job_id, 1);
  EXPECT_EQ(GetString(response, "status"), "queued");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"query","job_id":999})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "unknown_job");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"stats"})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_TRUE(Has(response, "virtual_now"));
  EXPECT_TRUE(Has(response, "live_jobs"));
  EXPECT_TRUE(Has(response, "latency_p99_ms"));

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"shutdown","mode":"sideways"})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"shutdown","mode":"drain"})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  controller_->Join();
  EXPECT_TRUE(controller_->done());
}

TEST_F(ServiceTest, NodeCommandsValidateRange) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"fail-node","node_id":100000})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");

  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"fail-node"})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"fail-node","node_id":0})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"recover-node","node_id":0})"), &response, &error));
  EXPECT_TRUE(GetBool(response, "ok"));
}

TEST_F(ServiceTest, StatsIncludeRegistryEnrichment) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"stats"})"), &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_TRUE(Has(response, "queue_depth"));
  EXPECT_GE(GetNumber(response, "queue_depth", -1.0), 0.0);
  EXPECT_TRUE(Has(response, "uptime_seconds"));
  EXPECT_GE(GetNumber(response, "uptime_seconds", -1.0), 0.0);
}

TEST_F(ServiceTest, MetricsVerbReturnsParseableSnapshot) {
  // The registry is process-global; start from a clean slate so this test
  // sees only what the live controller records.
  CounterRegistry::Global().Reset();
  StartController();
  // Wait until at least one full tick has recorded its phase breakdown.
  for (int spin = 0; spin < 500 && controller_->GetStats().ticks < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(controller_->GetStats().ticks, 2u);

  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"metrics"})"), &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_EQ(GetString(response, "format"), "json");

  // The snapshot rides inside the flat protocol as an escaped string field;
  // parse it back out into a MetricsSnapshot.
  MetricsSnapshot snapshot;
  ASSERT_TRUE(ParseMetricsJson(GetString(response, "metrics"), &snapshot, &error)) << error;

  bool saw_round = false;
  int phase_entries = 0;
  for (const HistogramSample& sample : snapshot.histograms) {
    if (sample.name == "serve.round_ms") {
      saw_round = true;
      EXPECT_GE(sample.value.count, 1u);
    }
    if (sample.name == "serve.phase_ms") {
      ++phase_entries;
      EXPECT_EQ(sample.labels.size(), 1u);
      EXPECT_TRUE(sample.labels.count("phase"));
    }
  }
  EXPECT_TRUE(saw_round);
  EXPECT_EQ(phase_entries, 4);  // drain / apply / schedule / log

  bool saw_depth_gauge = false;
  for (const MetricSample& sample : snapshot.gauges) {
    if (sample.name == "serve.queue_depth") {
      saw_depth_gauge = true;
    }
  }
  EXPECT_TRUE(saw_depth_gauge);
}

TEST_F(ServiceTest, MetricsVerbSpeaksPrometheus) {
  StartController();
  JsonObject response;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(Handle(R"({"cmd":"metrics","format":"prometheus"})"), &response,
                              &error))
      << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_EQ(GetString(response, "format"), "prometheus");
  EXPECT_NE(GetString(response, "metrics").find("# TYPE "), std::string::npos);

  ASSERT_TRUE(
      ParseJsonObject(Handle(R"({"cmd":"metrics","format":"xml"})"), &response, &error));
  EXPECT_FALSE(GetBool(response, "ok", true));
  EXPECT_EQ(GetString(response, "reason"), "bad_request");
}

TEST_F(ServiceTest, ClientMetricsHelperOverSocket) {
  StartController();
  const std::string socket_path = ::testing::TempDir() + "/crius_service_metrics_test.sock";
  Server server(socket_path, MakeHandler(*controller_));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;
  JsonObject response;
  ASSERT_TRUE(client.Metrics("json", &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  MetricsSnapshot snapshot;
  EXPECT_TRUE(ParseMetricsJson(GetString(response, "metrics"), &snapshot, &error)) << error;
  server.Stop();
}

TEST_F(ServiceTest, EndToEndOverUnixSocket) {
  StartController();
  const std::string socket_path = ::testing::TempDir() + "/crius_service_test.sock";
  Server server(socket_path, MakeHandler(*controller_));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(socket_path, &error)) << error;

  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kBert, 0.76, 256};
  job.iterations = 20;
  job.requested_gpus = 8;
  job.requested_type = GpuType::kA40;

  JsonObject response;
  ASSERT_TRUE(client.Submit(job, &response, &error)) << error;
  ASSERT_TRUE(GetBool(response, "ok"));
  const int64_t job_id = static_cast<int64_t>(GetNumber(response, "job_id", -1));

  ASSERT_TRUE(client.FailNode(0, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  ASSERT_TRUE(client.RecoverNode(0, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));

  ASSERT_TRUE(client.Query(job_id, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  EXPECT_FALSE(GetString(response, "status").empty());

  // A second concurrent connection is served too.
  Client other;
  ASSERT_TRUE(other.Connect(socket_path, &error)) << error;
  ASSERT_TRUE(other.Stats(&response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));

  ASSERT_TRUE(client.Shutdown(/*drain=*/true, &response, &error)) << error;
  EXPECT_TRUE(GetBool(response, "ok"));
  controller_->Join();
  EXPECT_TRUE(controller_->done());
  EXPECT_FALSE(controller_->interrupted());
  server.Stop();

  const Controller::JobStatus status = controller_->Query(job_id);
  ASSERT_TRUE(status.known);
  EXPECT_EQ(status.state, "finished");
}

}  // namespace
}  // namespace serve
}  // namespace crius
