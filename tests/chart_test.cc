#include "src/util/chart.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

TEST(ResampleTest, IdentityWhenSameSize) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const auto out = Resample(v, 3);
  EXPECT_EQ(out, v);
}

TEST(ResampleTest, PreservesEndpoints) {
  const std::vector<double> v = {5.0, 1.0, 9.0};
  const auto out = Resample(v, 7);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_DOUBLE_EQ(out.front(), 5.0);
  EXPECT_DOUBLE_EQ(out.back(), 9.0);
}

TEST(ResampleTest, InterpolatesLinearly) {
  const auto out = Resample({0.0, 10.0}, 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(ResampleTest, DownsamplesMonotoneSeries) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const auto out = Resample(v, 11);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i], out[i - 1]);
  }
}

TEST(ResampleTest, EdgeCases) {
  EXPECT_EQ(Resample({}, 4), (std::vector<double>{0, 0, 0, 0}));
  EXPECT_EQ(Resample({7.0}, 3), (std::vector<double>{7, 7, 7}));
  EXPECT_EQ(Resample({1.0, 2.0}, 1), (std::vector<double>{1.0}));
}

TEST(SparklineTest, EmptyInput) {
  EXPECT_EQ(Sparkline({}), "");
}

TEST(SparklineTest, FlatSeriesUsesLowestBlock) {
  const std::string s = Sparkline({3.0, 3.0, 3.0});
  EXPECT_EQ(s, "▁▁▁");
}

TEST(SparklineTest, MinAndMaxMapToExtremes) {
  const std::string s = Sparkline({0.0, 1.0});
  EXPECT_EQ(s, "▁█");
}

TEST(LineChartTest, ContainsTitleLegendAndAxis) {
  ChartSeries a{"alpha", {1.0, 2.0, 3.0}};
  ChartSeries b{"beta", {3.0, 2.0, 1.0}};
  ChartOptions opt;
  opt.width = 20;
  opt.height = 5;
  opt.x_label = "time";
  const std::string out = RenderLineChart("Demo", {a, b}, opt);
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);  // series glyphs
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(LineChartTest, RowCountMatchesHeight) {
  ChartSeries a{"s", {0.0, 1.0, 0.5}};
  ChartOptions opt;
  opt.width = 16;
  opt.height = 6;
  const std::string out = RenderLineChart("T", {a}, opt);
  int plot_rows = 0;
  size_t pos = 0;
  while ((pos = out.find('|', pos)) != std::string::npos) {
    ++plot_rows;
    ++pos;
  }
  EXPECT_EQ(plot_rows, 6);
}

TEST(LineChartTest, RespectsExplicitYRange) {
  ChartSeries a{"s", {5.0, 5.0}};
  ChartOptions opt;
  opt.width = 16;
  opt.height = 4;
  opt.y_min = 0.0;
  opt.y_max = 10.0;
  const std::string out = RenderLineChart("T", {a}, opt);
  EXPECT_NE(out.find("10.0"), std::string::npos);
  EXPECT_NE(out.find("0.0"), std::string::npos);
}

TEST(LineChartDeathTest, TooSmallCanvasAborts) {
  ChartSeries a{"s", {1.0}};
  ChartOptions opt;
  opt.width = 4;
  EXPECT_DEATH(RenderLineChart("T", {a}, opt), "");
}

}  // namespace
}  // namespace crius
