// Tests for leveled logging (src/util/logging.h).

#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, ParseAcceptsAllLevelNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("OFF"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseRejectsUnknownNames) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("warning "), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  // Only a smoke check that logging at kOff doesn't crash; output routing is
  // not captured here.
  SetLogLevel(LogLevel::kOff);
  LogMessage(LogLevel::kError, "must be dropped");
  CRIUS_LOG(kError) << "also dropped";
}

}  // namespace
}  // namespace crius
