#include "src/hw/gpu.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace crius {
namespace {

TEST(GpuSpecTest, AllTypesHaveSpecs) {
  for (GpuType type : AllGpuTypes()) {
    const GpuSpec& spec = GpuSpecOf(type);
    EXPECT_EQ(spec.type, type);
    EXPECT_GT(spec.peak_flops, 0.0);
    EXPECT_GT(spec.memory_bytes, 0.0);
    EXPECT_GT(spec.intra_bw, 0.0);
    EXPECT_GT(spec.inter_bw, 0.0);
    EXPECT_FALSE(spec.name.empty());
  }
  EXPECT_EQ(AllGpuTypes().size(), static_cast<size_t>(kNumGpuTypes));
}

TEST(GpuSpecTest, Table1Memory) {
  EXPECT_DOUBLE_EQ(GpuSpecOf(GpuType::kA100).memory_bytes, 40.0 * kGiB);
  EXPECT_DOUBLE_EQ(GpuSpecOf(GpuType::kA40).memory_bytes, 48.0 * kGiB);
  EXPECT_DOUBLE_EQ(GpuSpecOf(GpuType::kA10).memory_bytes, 24.0 * kGiB);
  EXPECT_DOUBLE_EQ(GpuSpecOf(GpuType::kV100).memory_bytes, 32.0 * kGiB);
}

TEST(GpuSpecTest, PerformanceOrdering) {
  // A100 is the fastest; V100 (Volta) the slowest peak among the four.
  EXPECT_GT(GpuSpecOf(GpuType::kA100).peak_flops, GpuSpecOf(GpuType::kA40).peak_flops);
  EXPECT_GT(GpuSpecOf(GpuType::kA40).peak_flops, GpuSpecOf(GpuType::kA10).peak_flops);
  EXPECT_GT(GpuSpecOf(GpuType::kA10).peak_flops, GpuSpecOf(GpuType::kV100).peak_flops);
}

TEST(GpuSpecTest, NvLinkFlags) {
  EXPECT_TRUE(HasNvLink(GpuType::kA100));
  EXPECT_TRUE(HasNvLink(GpuType::kV100));
  EXPECT_FALSE(HasNvLink(GpuType::kA40));
  EXPECT_FALSE(HasNvLink(GpuType::kA10));
}

TEST(GpuSpecTest, NvLinkFasterThanPcie) {
  EXPECT_GT(GpuSpecOf(GpuType::kA100).intra_bw, GpuSpecOf(GpuType::kA40).intra_bw);
}

TEST(GpuSpecTest, InterLinkBandwidth) {
  // ConnectX-6 (A10 nodes) is 2x ConnectX-5.
  EXPECT_DOUBLE_EQ(GpuSpecOf(GpuType::kA10).inter_bw,
                   2.0 * GpuSpecOf(GpuType::kA40).inter_bw);
}

TEST(ParseGpuTypeTest, CaseInsensitive) {
  EXPECT_EQ(ParseGpuType("A100"), GpuType::kA100);
  EXPECT_EQ(ParseGpuType("a100"), GpuType::kA100);
  EXPECT_EQ(ParseGpuType("v100"), GpuType::kV100);
  EXPECT_EQ(ParseGpuType("A40"), GpuType::kA40);
  EXPECT_EQ(ParseGpuType("a10"), GpuType::kA10);
}

TEST(ParseGpuTypeDeathTest, UnknownAborts) {
  EXPECT_DEATH(ParseGpuType("H100"), "unknown GPU type");
}

TEST(GpuNameTest, RoundTrip) {
  for (GpuType type : AllGpuTypes()) {
    EXPECT_EQ(ParseGpuType(GpuName(type)), type);
  }
}

}  // namespace
}  // namespace crius
