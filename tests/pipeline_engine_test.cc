// Tests for the event-driven pipeline execution engine, including the key
// validation: the §5.1 closed-form latency formula agrees with
// dependency-exact execution across the plan space.

#include "src/runtime/pipeline_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "src/parallel/explorer.h"
#include "src/parallel/stage_partition.h"

namespace crius {
namespace {

class PipelineEngineTest : public ::testing::Test {
 protected:
  PipelineEngineTest() : cluster_(MakeSimulatedCluster()), model_(cluster_), engine_(&model_) {}

  ParallelPlan DpPlan(const JobContext& ctx, int ngpus, int nstages) {
    ParallelPlan plan;
    plan.gpu_type = ctx.gpu_type;
    for (const StageRange& r : PartitionStages(*ctx.graph, ngpus, nstages)) {
      plan.stages.push_back(StagePlan{r.op_begin, r.op_end, r.gpus, r.gpus, 1});
    }
    return plan;
  }

  Cluster cluster_;
  PerfModel model_;
  PipelineEngine engine_;
};

TEST_F(PipelineEngineTest, IntervalsRespectDependencies) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = DpPlan(ctx, 8, 4);
  const IterationTrace trace = engine_.Execute(ctx, plan);
  ASSERT_EQ(trace.num_stages(), 4);
  ASSERT_EQ(trace.num_microbatches(), 16);
  for (int s = 0; s < trace.num_stages(); ++s) {
    for (int m = 0; m < trace.num_microbatches(); ++m) {
      const StageInterval& iv = trace.At(s, m);
      EXPECT_EQ(iv.stage, s);
      EXPECT_EQ(iv.microbatch, m);
      EXPECT_GT(iv.finish, iv.start);
      if (m > 0) {
        // A stage is sequential over microbatches.
        EXPECT_GE(iv.start, trace.At(s, m - 1).finish - 1e-12);
      }
      if (s > 0) {
        // A microbatch cannot start before the previous stage produced it
        // (plus the boundary transfer).
        EXPECT_GE(iv.start + 1e-12,
                  trace.At(s - 1, m).finish + trace.boundary_time[static_cast<size_t>(s)]);
      }
    }
  }
}

TEST_F(PipelineEngineTest, StageTimesMatchModel) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kMoe, 2.4, 256},
                                            GpuType::kA40);
  const ParallelPlan plan = DpPlan(ctx, 8, 2);
  const IterationTrace trace = engine_.Execute(ctx, plan);
  for (int s = 0; s < 2; ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    const StageEval ev = model_.EvalStage(ctx, StageRange{sp.op_begin, sp.op_end, sp.gpus},
                                          sp.dp, sp.tp, 2);
    EXPECT_DOUBLE_EQ(trace.stage_time[static_cast<size_t>(s)], ev.t_microbatch);
    const StageInterval& iv = trace.At(s, 0);
    EXPECT_NEAR(iv.finish - iv.start, ev.t_microbatch, 1e-12);
  }
}

// --- the headline validation: closed form vs event-level execution ----------

using ValidateParam = std::tuple<ModelSpec, GpuType, int, int>;  // spec, type, gpus, stages

class FormulaValidationTest : public ::testing::TestWithParam<ValidateParam> {};

TEST_P(FormulaValidationTest, ClosedFormTracksEventLevelExecution) {
  const auto& [spec, type, ngpus, nstages] = GetParam();
  static Cluster cluster = MakeSimulatedCluster();
  static PerfModel model(cluster);
  static Explorer explorer(&model);
  const JobContext ctx = model.MakeContext(spec, type);
  if (nstages > std::min<int>(ngpus, static_cast<int>(ctx.graph->size()))) {
    GTEST_SKIP();
  }
  const ExploreResult r = explorer.ExploreWithinStages(ctx, ngpus, nstages);
  if (!r.best.has_value()) {
    GTEST_SKIP() << "infeasible";
  }
  const PipelineEngine engine(&model);
  const IterationTrace trace = engine.Execute(ctx, r.best->plan);
  // For constant per-microbatch stage times the §5.1 closed form is an
  // identity of the dependency recurrence, so the two paths must agree to
  // numerical precision -- a mismatch means one implementation drifted.
  const double rel = std::abs(trace.total_time - r.best->iter_time) / r.best->iter_time;
  EXPECT_LT(rel, 1e-9) << spec.Name() << " " << GpuName(type) << " x" << ngpus << " P"
                       << nstages << ": engine " << trace.total_time << " vs formula "
                       << r.best->iter_time;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FormulaValidationTest,
    ::testing::Combine(::testing::Values(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                         ModelSpec{ModelFamily::kBert, 6.7, 128},
                                         ModelSpec{ModelFamily::kWideResNet, 2.0, 256},
                                         ModelSpec{ModelFamily::kMoe, 10.0, 256}),
                       ::testing::Values(GpuType::kA100, GpuType::kA40, GpuType::kV100),
                       ::testing::Values(4, 16), ::testing::Values(1, 2, 4, 8)));

// --- Chrome trace export -------------------------------------------------------

TEST_F(PipelineEngineTest, ChromeTraceIsWellFormedJson) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = DpPlan(ctx, 4, 2);
  const IterationTrace trace = engine_.Execute(ctx, plan);
  std::ostringstream oss;
  WriteChromeTrace(trace, plan, oss);
  const std::string json = oss.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // One complete event per (stage, microbatch) plus the sync span.
  size_t events = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++events;
    ++pos;
  }
  EXPECT_EQ(events, static_cast<size_t>(2 * 8) + 1);
  EXPECT_NE(json.find("grad all_reduce"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
}

TEST_F(PipelineEngineTest, BusyAccounting) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = DpPlan(ctx, 8, 4);
  const IterationTrace trace = engine_.Execute(ctx, plan);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(trace.StageBusySeconds(s),
                16.0 * trace.stage_time[static_cast<size_t>(s)], 1e-9);
  }
  EXPECT_GT(trace.BubbleFraction(), 0.0);
  EXPECT_LT(trace.BubbleFraction(), 0.5);
}

TEST_F(PipelineEngineTest, TotalIncludesSyncAndOverhead) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = DpPlan(ctx, 4, 1);  // dp-only: sync exposed
  const IterationTrace trace = engine_.Execute(ctx, plan);
  EXPECT_GT(trace.dp_sync, 0.0);
  EXPECT_NEAR(trace.total_time,
              trace.pipeline_makespan + trace.dp_sync + PerfModel::kIterOverhead, 1e-12);
}

TEST_F(PipelineEngineTest, RejectsInvalidPlan) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  ParallelPlan bad;
  bad.gpu_type = GpuType::kA100;
  bad.stages.push_back(StagePlan{0, 3, 4, 2, 1});  // dp*tp != gpus
  EXPECT_DEATH(engine_.Execute(ctx, bad), "dp\\*tp");
}

}  // namespace
}  // namespace crius
