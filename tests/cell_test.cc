#include "src/core/cell.h"

#include <gtest/gtest.h>

#include <set>

#include "src/util/mathutil.h"

namespace crius {
namespace {

TrainingJob MakeJob(int requested_gpus, GpuType type = GpuType::kA40) {
  TrainingJob job;
  job.id = 1;
  job.spec = ModelSpec{ModelFamily::kBert, 1.3, 128};
  job.requested_gpus = requested_gpus;
  job.requested_type = type;
  return job;
}

TEST(CellTest, ToStringAndKey) {
  const Cell cell{GpuType::kA100, 8, 4};
  EXPECT_EQ(cell.ToString(), "A100x8/P4");
  EXPECT_EQ(cell.Key(), (Cell{GpuType::kA100, 8, 4}).Key());
  EXPECT_NE(cell.Key(), (Cell{GpuType::kA100, 8, 2}).Key());
  EXPECT_NE(cell.Key(), (Cell{GpuType::kV100, 8, 4}).Key());
}

TEST(GenerateCellsTest, SizesAreHalfSameDouble) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto cells = GenerateCells(MakeJob(8), cluster);
  std::set<int> sizes;
  for (const Cell& c : cells) {
    sizes.insert(c.ngpus);
  }
  EXPECT_EQ(sizes, (std::set<int>{4, 8, 16}));
}

TEST(GenerateCellsTest, CapsCandidatesAtUsableCapacity) {
  Cluster cluster;
  cluster.AddNodes(GpuType::kA40, 8, 2);  // 16 GPUs
  auto sizes = [&](const TrainingJob& job) {
    std::set<int> out;
    for (const Cell& c : GenerateCells(job, cluster)) {
      out.insert(c.ngpus);
    }
    return out;
  };
  const TrainingJob job = MakeJob(8);
  EXPECT_EQ(sizes(job), (std::set<int>{4, 8, 16}));

  // One node (2 GPUs) fails: 14 usable, so the 16-GPU candidate -- which
  // degraded hardware can never host -- must disappear.
  cluster.MarkFailed(0, 0);
  EXPECT_EQ(sizes(job), (std::set<int>{4, 8}));

  // Every node failed: no candidates at all (and no abort on zero capacity).
  for (int node = 1; node < 8; ++node) {
    cluster.MarkFailed(node, 0);
  }
  EXPECT_TRUE(sizes(job).empty());

  // Full recovery restores the original candidate set.
  for (int node = 0; node < 8; ++node) {
    cluster.MarkRecovered(node, 0);
  }
  EXPECT_EQ(sizes(job), (std::set<int>{4, 8, 16}));
}

TEST(GenerateCellsTest, CoversAllClusterTypes) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto cells = GenerateCells(MakeJob(8), cluster);
  std::set<GpuType> types;
  for (const Cell& c : cells) {
    types.insert(c.gpu_type);
  }
  EXPECT_EQ(types, (std::set<GpuType>{GpuType::kA40, GpuType::kA10}));
}

TEST(GenerateCellsTest, StageCountsAreLogChoices) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto cells = GenerateCells(MakeJob(8), cluster);
  std::set<int> stages_for_8;
  for (const Cell& c : cells) {
    if (c.ngpus == 8 && c.gpu_type == GpuType::kA40) {
      stages_for_8.insert(c.nstages);
      EXPECT_TRUE(IsPowerOfTwo(c.nstages));
      EXPECT_LE(c.nstages, c.ngpus);
    }
  }
  EXPECT_EQ(stages_for_8, (std::set<int>{1, 2, 4, 8}));
}

TEST(GenerateCellsTest, RequestOfOneHasNoHalf) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto cells = GenerateCells(MakeJob(1), cluster);
  std::set<int> sizes;
  for (const Cell& c : cells) {
    sizes.insert(c.ngpus);
  }
  EXPECT_EQ(sizes, (std::set<int>{1, 2}));
}

TEST(GenerateCellsTest, ClampsToClusterCapacity) {
  const Cluster cluster = MakeMotivationCluster();  // 4 + 4 GPUs
  const auto cells = GenerateCells(MakeJob(4, GpuType::kA100), cluster);
  for (const Cell& c : cells) {
    EXPECT_LE(c.ngpus, 4);  // 2 * N_G == 8 exceeds both pools
  }
}

TEST(GenerateCellsTest, NoDuplicates) {
  const Cluster cluster = MakeSimulatedCluster();
  const auto cells = GenerateCells(MakeJob(8), cluster);
  std::set<std::string> seen;
  for (const Cell& c : cells) {
    EXPECT_TRUE(seen.insert(c.ToString()).second) << "duplicate " << c.ToString();
  }
}

TEST(GenerateCellsUpToTest, RespectsCap) {
  const Cluster cluster = MakeSimulatedCluster();
  const auto cells = GenerateCellsUpTo(MakeJob(8), cluster, 8);
  for (const Cell& c : cells) {
    EXPECT_LE(c.ngpus, 8);
  }
  EXPECT_FALSE(cells.empty());
}

TEST(GenerateCellsUpToTest, CapBelowSmallestCandidateYieldsEmptySet) {
  // A cap below even the half-size candidate (N_G/2 == 4) must produce a
  // valid empty set, not abort: callers downscaling under extreme resource
  // pressure probe caps the job can no longer fit.
  const Cluster cluster = MakeSimulatedCluster();
  EXPECT_TRUE(GenerateCellsUpTo(MakeJob(8), cluster, 3).empty());
  EXPECT_TRUE(GenerateCellsUpTo(MakeJob(8), cluster, 0).empty());
  // The half-size candidate alone survives a cap of exactly N_G/2.
  const auto cells = GenerateCellsUpTo(MakeJob(8), cluster, 4);
  EXPECT_FALSE(cells.empty());
  for (const Cell& c : cells) {
    EXPECT_EQ(c.ngpus, 4);
  }
}

TEST(GenerateCellsUpToTest, TypeWithZeroUsableGpusContributesNothing) {
  Cluster cluster;
  cluster.AddNodes(GpuType::kA40, 4, 2);  // 8 usable GPUs
  cluster.AddNodes(GpuType::kA10, 2, 2);  // 4 GPUs, all about to fail
  cluster.MarkFailed(4, 0);
  cluster.MarkFailed(5, 0);
  const auto cells = GenerateCellsUpTo(MakeJob(4), cluster, 8);
  EXPECT_FALSE(cells.empty());
  for (const Cell& c : cells) {
    EXPECT_EQ(c.gpu_type, GpuType::kA40) << "candidate on a zero-capacity type: "
                                         << c.ToString();
  }
  // Both types dead: the set is empty but still well-formed (no abort).
  cluster.MarkFailed(0, 0);
  cluster.MarkFailed(1, 0);
  cluster.MarkFailed(2, 0);
  cluster.MarkFailed(3, 0);
  EXPECT_TRUE(GenerateCellsUpTo(MakeJob(4), cluster, 8).empty());
}

TEST(GenerateCellsTest, CellCountIsModest) {
  // O(3 log N) sizes x types: the §6.1 complexity claim.
  const Cluster cluster = MakeSimulatedCluster();
  const auto cells = GenerateCells(MakeJob(16), cluster);
  EXPECT_LE(cells.size(), 4u * 3u * 6u);
  EXPECT_GE(cells.size(), 12u);
}

}  // namespace
}  // namespace crius
