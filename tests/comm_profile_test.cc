#include "src/core/comm_profile.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crius {
namespace {

class CommProfileTest : public ::testing::Test {
 protected:
  CommProfileTest() : cluster_(MakeSimulatedCluster()), profile_(cluster_, 42) {}

  Cluster cluster_;
  CommProfile profile_;
};

TEST_F(CommProfileTest, EstimatesTrackExactModel) {
  // Interpolated estimates stay within jitter + interpolation error of the
  // exact interconnect model across kinds, types, sizes and groups.
  for (GpuType type : AllGpuTypes()) {
    const GroupTopology topo = cluster_.TopologyFor(type);
    for (CollectiveKind kind : {CollectiveKind::kAllReduce, CollectiveKind::kAllGather,
                                CollectiveKind::kAllToAll}) {
      for (int n : {2, 4, 8}) {
        for (double bytes : {1e5, 3e6, 1e8, 2e9}) {
          const double exact = CollectiveTime(kind, topo, bytes, n);
          const double est = profile_.Estimate(kind, type, bytes, n);
          EXPECT_NEAR(est, exact, exact * 0.12)
              << GpuName(type) << " " << CollectiveName(kind) << " n=" << n << " b=" << bytes;
        }
      }
    }
  }
}

TEST_F(CommProfileTest, SendRecvTracksExact) {
  for (GpuType type : AllGpuTypes()) {
    const GroupTopology topo = cluster_.TopologyFor(type);
    for (bool cross : {false, true}) {
      for (double bytes : {1e5, 1e7, 1e9}) {
        const double exact = SendRecvTime(topo, bytes, cross);
        const double est = profile_.EstimateSendRecv(type, bytes, cross);
        EXPECT_NEAR(est, exact, exact * 0.12);
      }
    }
  }
}

TEST_F(CommProfileTest, MonotoneInBytes) {
  double prev = 0.0;
  for (double bytes = 1e4; bytes < 1e10; bytes *= 10.0) {
    const double t = profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, bytes, 4);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(CommProfileTest, ZeroAndSingletonCases) {
  EXPECT_DOUBLE_EQ(profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 0.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 1e6, 1), 0.0);
  EXPECT_DOUBLE_EQ(profile_.EstimateSendRecv(GpuType::kA40, 0.0, true), 0.0);
}

TEST_F(CommProfileTest, CrossNodeSendRecvSlower) {
  EXPECT_GT(profile_.EstimateSendRecv(GpuType::kA40, 1e8, true),
            profile_.EstimateSendRecv(GpuType::kA40, 1e8, false));
}

TEST_F(CommProfileTest, DeterministicForSameSeed) {
  const CommProfile other(cluster_, 42);
  EXPECT_DOUBLE_EQ(profile_.Estimate(CollectiveKind::kAllGather, GpuType::kV100, 5e7, 8),
                   other.Estimate(CollectiveKind::kAllGather, GpuType::kV100, 5e7, 8));
}

TEST_F(CommProfileTest, SeedChangesJitterOnly) {
  const CommProfile other(cluster_, 43);
  const double a = profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 7e7, 4);
  const double b = other.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 7e7, 4);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, b, a * 0.1);
}

TEST_F(CommProfileTest, GiantPayloadExtrapolates) {
  // Beyond the profiled grid the estimate scales linearly, never collapses.
  const double at_max = profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100,
                                          CommProfile::kMaxBytes, 4);
  const double beyond = profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100,
                                          4.0 * CommProfile::kMaxBytes, 4);
  EXPECT_NEAR(beyond, 4.0 * at_max, 0.2 * beyond);
}

TEST_F(CommProfileTest, OversizedGroupClampsToLargestProfiled) {
  // Group sizes beyond the profiled range reuse the largest curve.
  const double t = profile_.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 1e7, 1024);
  EXPECT_GT(t, 0.0);
}

TEST_F(CommProfileTest, OfflineCostAccounted) {
  EXPECT_GT(profile_.offline_gpu_seconds(), 0.0);
  // Offline profiling is amortizable: hours, not weeks, of GPU time.
  EXPECT_LT(profile_.offline_gpu_seconds(), 200.0 * 3600.0);
}

TEST(CommProfilePartialClusterTest, OnlyProfilesPresentTypes) {
  const Cluster testbed = MakePhysicalTestbed();
  const CommProfile profile(testbed, 1);
  EXPECT_GT(profile.Estimate(CollectiveKind::kAllReduce, GpuType::kA40, 1e7, 4), 0.0);
  EXPECT_DEATH(profile.Estimate(CollectiveKind::kAllReduce, GpuType::kA100, 1e7, 4),
               "no offline profile");
}

}  // namespace
}  // namespace crius
