#include "src/core/tuner.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

class TunerTest : public ::testing::Test {
 protected:
  TunerTest()
      : cluster_(MakeSimulatedCluster()),
        model_(cluster_),
        comm_(cluster_, 42),
        estimator_(&model_, &comm_, 42),
        explorer_(&model_),
        tuner_(&explorer_) {}

  JobContext Ctx(const ModelSpec& spec, GpuType type) {
    return model_.MakeContext(spec, type);
  }

  Cluster cluster_;
  PerfModel model_;
  CommProfile comm_;
  CellEstimator estimator_;
  Explorer explorer_;
  CellTuner tuner_;
};

TEST(HalfHybridTest, FloorAndCeil) {
  EXPECT_EQ(CellTuner::HalfHybridTpFloor(1), 1);
  EXPECT_EQ(CellTuner::HalfHybridTpCeil(1), 1);
  EXPECT_EQ(CellTuner::HalfHybridTpFloor(2), 1);
  EXPECT_EQ(CellTuner::HalfHybridTpCeil(2), 2);
  EXPECT_EQ(CellTuner::HalfHybridTpFloor(4), 2);
  EXPECT_EQ(CellTuner::HalfHybridTpCeil(4), 2);
  EXPECT_EQ(CellTuner::HalfHybridTpFloor(8), 2);
  EXPECT_EQ(CellTuner::HalfHybridTpCeil(8), 4);
  EXPECT_EQ(CellTuner::HalfHybridTpFloor(16), 4);
  EXPECT_EQ(CellTuner::HalfHybridTpCeil(16), 4);
}

TEST_F(TunerTest, TunedPlanStaysInFavoredRange) {
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA40);
  const Cell cell{GpuType::kA40, 16, 2};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  ASSERT_EQ(est.stage_tp_range.size(), est.plan.stages.size());
  const TuneResult tuned = tuner_.Tune(ctx, cell, est);
  ASSERT_TRUE(tuned.best.has_value());
  for (size_t s = 0; s < tuned.best->plan.stages.size(); ++s) {
    const StagePlan& sp = tuned.best->plan.stages[s];
    const auto& [lo, hi] = est.stage_tp_range[s];
    EXPECT_TRUE((sp.tp >= lo && sp.tp <= hi) || sp.tp == est.plan.stages[s].tp)
        << "stage " << s << " tp " << sp.tp << " outside [" << lo << "," << hi << "]";
  }
}

TEST_F(TunerTest, InformedFavorRangesMatchHalfHybridRule) {
  // When both grid probes fit, a dp favor tunes [1, half-floor] and a tp
  // favor tunes [half-ceil, N].
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  const Cell cell{GpuType::kA100, 8, 2};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  for (size_t s = 0; s < est.plan.stages.size(); ++s) {
    const int gpus = est.plan.stages[s].gpus;
    const auto& [lo, hi] = est.stage_tp_range[s];
    if (est.stage_prefers_tp[s]) {
      EXPECT_EQ(hi, gpus);
      EXPECT_LE(lo, gpus);
    } else {
      EXPECT_LE(lo, 2);
      EXPECT_LE(hi, CellTuner::HalfHybridTpCeil(gpus));
    }
  }
}

TEST_F(TunerTest, TunedAtLeastAsGoodAsAssembledPlan) {
  // The favored half-space always contains the assembled winner, so tuning
  // can only improve on it (in exact/measured time).
  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kBert, 1.3, 128}, ModelSpec{ModelFamily::kMoe, 2.4, 256},
        ModelSpec{ModelFamily::kWideResNet, 2.0, 256}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA10}) {
      for (int nstages : {1, 2, 4}) {
        const JobContext ctx = Ctx(spec, type);
        const Cell cell{type, 8, nstages};
        const CellEstimate est = estimator_.Estimate(ctx, cell);
        if (!est.feasible) {
          continue;
        }
        const TuneResult tuned = tuner_.Tune(ctx, cell, est);
        ASSERT_TRUE(tuned.best.has_value()) << spec.Name() << " " << cell.ToString();
        const PlanEval assembled_measured = model_.Evaluate(ctx, est.plan);
        ASSERT_TRUE(assembled_measured.feasible);
        EXPECT_LE(tuned.best->iter_time, assembled_measured.iter_time + 1e-9);
      }
    }
  }
}

TEST_F(TunerTest, HighTuningAccuracyVsFullSearch) {
  // Fig. 13a: tuned vs unpruned full-space optimum. Grid sampling has a known
  // worst case -- when memory forces the grid to tensor-only, the favor can
  // prune a cheaper low-tp hybrid -- so the check is on the average accuracy
  // (the paper reports 96.2% average), with a loose floor on the worst case.
  double worst = 1.0;
  double sum = 0.0;
  int count = 0;
  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kBert, 2.6, 128}, ModelSpec{ModelFamily::kMoe, 10.0, 256},
        ModelSpec{ModelFamily::kWideResNet, 4.0, 256}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40}) {
      for (int nstages : {1, 2, 4}) {
        const JobContext ctx = Ctx(spec, type);
        const Cell cell{type, 16, nstages};
        const CellEstimate est = estimator_.Estimate(ctx, cell);
        if (!est.feasible) {
          continue;
        }
        const TuneResult tuned = tuner_.Tune(ctx, cell, est);
        const TuneResult full = tuner_.TuneUnpruned(ctx, cell);
        ASSERT_TRUE(tuned.best.has_value());
        ASSERT_TRUE(full.best.has_value());
        const double acc =
            1.0 - (tuned.best->iter_time - full.best->iter_time) / full.best->iter_time;
        worst = std::min(worst, acc);
        sum += acc;
        ++count;
      }
    }
  }
  EXPECT_GE(count, 12);
  EXPECT_GE(sum / count, 0.90);
  EXPECT_GE(worst, -0.10);  // never catastrophically wrong
}

TEST_F(TunerTest, PruningReducesSearchCost) {
  const ModelSpec spec{ModelFamily::kMoe, 2.4, 256};
  const JobContext ctx = Ctx(spec, GpuType::kA40);
  const Cell cell{GpuType::kA40, 16, 4};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  const TuneResult tuned = tuner_.Tune(ctx, cell, est);
  const TuneResult full = tuner_.TuneUnpruned(ctx, cell);
  EXPECT_LT(tuned.plans_evaluated, full.plans_evaluated);
  EXPECT_LT(tuned.tune_gpu_seconds, full.tune_gpu_seconds);
}

TEST_F(TunerTest, InfeasibleEstimateYieldsEmptyResult) {
  const ModelSpec spec{ModelFamily::kMoe, 27.0, 256};
  const JobContext ctx = Ctx(spec, GpuType::kA10);
  const Cell cell{GpuType::kA10, 1, 1};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_FALSE(est.feasible);
  const TuneResult tuned = tuner_.Tune(ctx, cell, est);
  EXPECT_FALSE(tuned.best.has_value());
  EXPECT_EQ(tuned.plans_evaluated, 0);
}

TEST_F(TunerTest, Deterministic) {
  const ModelSpec spec{ModelFamily::kBert, 6.7, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA40);
  const Cell cell{GpuType::kA40, 16, 4};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  const TuneResult a = tuner_.Tune(ctx, cell, est);
  const TuneResult b = tuner_.Tune(ctx, cell, est);
  ASSERT_TRUE(a.best.has_value() && b.best.has_value());
  EXPECT_DOUBLE_EQ(a.best->iter_time, b.best->iter_time);
  EXPECT_EQ(a.best->plan.ToString(), b.best->plan.ToString());
}

}  // namespace
}  // namespace crius
