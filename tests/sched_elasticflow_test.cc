#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};
const ModelSpec kBert26{ModelFamily::kBert, 2.6, 128};

class ElasticFlowTest : public SchedTestBase {
 protected:
  ElasticFlowTest()
      : SchedTestBase(MakeSimulatedCluster()),
        ls_(&oracle_, ElasticFlowConfig{}),
        strict_(&oracle_, ElasticFlowConfig{.loose_deadlines = false}) {}

  ElasticFlowScheduler ls_;
  ElasticFlowScheduler strict_;
};

TEST_F(ElasticFlowTest, Names) {
  EXPECT_EQ(ls_.name(), "ElasticFlow-LS");
  EXPECT_EQ(strict_.name(), "ElasticFlow");
}

TEST_F(ElasticFlowTest, StaysOnRequestedType) {
  AddQueued(0, kSmall, 8, GpuType::kV100, 0.0);
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kV100);  // heterogeneity-blind
}

TEST_F(ElasticFlowTest, GrowsAllocationsWithSpareCapacity) {
  // A lone small job in an empty pool gets more than its 1-GPU min share.
  AddQueued(0, kSmall, 2, GpuType::kA100, 0.0);
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_GT(d.assignments.at(0).ngpus, 1);
}

TEST_F(ElasticFlowTest, ShrinksTowardMinSharesUnderLoad) {
  // Many jobs requesting 16 GPUs each in a 320-GPU pool: elastic shrinking
  // admits far more than 320/16 = 20 jobs.
  for (int i = 0; i < 60; ++i) {
    AddQueued(i, kSmall, 16, GpuType::kA40, static_cast<double>(i));
  }
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  CheckCapacity(d);
  EXPECT_GT(d.assignments.size(), 20u);
}

TEST_F(ElasticFlowTest, OverestimatesLargeModelMinShare) {
  // BERT-2.6B's dp-only plan fits no A100 count (weights x optimizer states
  // exceed 40 GiB per replica), so ElasticFlow treats it as inelastic at its
  // requested shape -- the §8.3 overestimation analysis.
  DpView view(&oracle_);
  EXPECT_FALSE(view.MinShare(kBert26, GpuType::kA100, 256).has_value());
  AddQueued(0, kBert26, 8, GpuType::kA100, 0.0);
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, 8);  // inelastic fallback
}

TEST_F(ElasticFlowTest, MinShareComesFromDpMemory) {
  // WRes-1.0B dp-only fits on a single A100 -> min share 1.
  DpView view(&oracle_);
  const auto min_share = view.MinShare(ModelSpec{ModelFamily::kWideResNet, 1.0, 256},
                                       GpuType::kA100, 256);
  ASSERT_TRUE(min_share.has_value());
  EXPECT_EQ(*min_share, 1);
}

TEST_F(ElasticFlowTest, PoolsAreIndependent) {
  for (int i = 0; i < 30; ++i) {
    AddQueued(i, kSmall, 16, GpuType::kA40, static_cast<double>(i));
  }
  AddQueued(100, kSmall, 4, GpuType::kA10, 0.0);
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(100));
  EXPECT_EQ(d.assignments.at(100).type, GpuType::kA10);
}

TEST_F(ElasticFlowTest, StrictModeDropsHopelessDeadlines) {
  JobState* hopeless = AddQueued(0, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/2000000);
  hopeless->job.deadline = 60.0;  // a minute for a multi-day job
  JobState* fine = AddQueued(1, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/100);
  fine->job.deadline = 7.0 * kDay;
  const ScheduleDecision d = strict_.Schedule(Round(0.0));
  EXPECT_EQ(d.dropped, std::vector<int64_t>{0});
  EXPECT_TRUE(d.assignments.count(1));
}

TEST_F(ElasticFlowTest, StrictModeRaisesShareToMeetDeadline) {
  // The deadline is feasible only with more GPUs than the 1-GPU min share.
  JobState* job = AddQueued(0, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/3000);
  const auto thr1 = oracle_.DpOnlyIterTime(kSmall, GpuType::kA100, 1);
  ASSERT_TRUE(thr1.has_value());
  job->job.deadline = 3000.0 * (*thr1) / 4.0;  // 1 GPU would take 4x too long
  const ScheduleDecision d = strict_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_GT(d.assignments.at(0).ngpus, 1);
}

TEST_F(ElasticFlowTest, LooseModeNeverDrops) {
  JobState* hopeless = AddQueued(0, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/2000000);
  hopeless->job.deadline = 60.0;
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  EXPECT_TRUE(d.dropped.empty());
}

TEST_F(ElasticFlowTest, HysteresisKeepsRunningAllocation) {
  // A lone running job in an otherwise idle pool is neither shrunk (the freed
  // GPUs would idle) nor regrown for gains below the threshold.
  ElasticFlowScheduler cautious(&oracle_, ElasticFlowConfig{.scale_gain_threshold = 0.30});
  JobState* running = AddRunning(0, kSmall, 64, GpuType::kA100);
  const ScheduleDecision d = cautious.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, running->ngpus);
}

TEST_F(ElasticFlowTest, ShrinksRunningJobOnlyUnderContention) {
  // The same running job IS shrunk when a crowd of arrivals needs the pool.
  AddRunning(0, kSmall, 64, GpuType::kA100, /*nstages=*/0, /*requested_gpus=*/64);
  for (int i = 1; i <= 40; ++i) {
    AddQueued(i, kSmall, 16, GpuType::kA100, static_cast<double>(i));
  }
  const ScheduleDecision d = ls_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_LT(d.assignments.at(0).ngpus, 64);
}

}  // namespace
}  // namespace crius
