#include "src/core/oracle.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : cluster_(MakeSimulatedCluster()), oracle_(cluster_, 42) {}

  Cluster cluster_;
  PerformanceOracle oracle_;
};

TEST_F(OracleTest, BestAdaptiveCachedReferenceIsStable) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const auto& a = oracle_.BestAdaptive(spec, GpuType::kA100, 4);
  const auto& b = oracle_.BestAdaptive(spec, GpuType::kA100, 4);
  EXPECT_EQ(&a, &b);  // same cache slot
  ASSERT_TRUE(a.has_value());
}

TEST_F(OracleTest, BestAdaptiveMatchesExplorer) {
  const ModelSpec spec{ModelFamily::kMoe, 2.4, 256};
  const JobContext ctx = oracle_.perf_model().MakeContext(spec, GpuType::kA40);
  const auto& cached = oracle_.BestAdaptive(spec, GpuType::kA40, 8);
  const ExploreResult direct = oracle_.explorer().FullExplore(ctx, 8);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(direct.best.has_value());
  EXPECT_DOUBLE_EQ(cached->iter_time, direct.best->iter_time);
}

TEST_F(OracleTest, DpOnlyMatchesManualPlan) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = oracle_.perf_model().MakeContext(spec, GpuType::kA100);
  const auto dp = oracle_.DpOnlyIterTime(spec, GpuType::kA100, 4);
  ASSERT_TRUE(dp.has_value());
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  plan.stages.push_back(StagePlan{0, ctx.graph->size(), 4, 4, 1});
  const PlanEval eval = oracle_.perf_model().Evaluate(ctx, plan);
  ASSERT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(*dp, eval.iter_time);
}

TEST_F(OracleTest, DpOnlyOomReturnsNullopt) {
  // BERT-2.6B data-parallel-only does not fit any GPU count on A10.
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  EXPECT_FALSE(oracle_.DpOnlyIterTime(spec, GpuType::kA10, 8).has_value());
  // ...while adaptive parallelism finds a plan.
  EXPECT_TRUE(oracle_.BestAdaptive(spec, GpuType::kA10, 8).has_value());
}

TEST_F(OracleTest, DpOnlyNeverBeatsAdaptive) {
  for (const ModelSpec spec : {ModelSpec{ModelFamily::kBert, 1.3, 128},
                               ModelSpec{ModelFamily::kWideResNet, 1.0, 256}}) {
    for (int n : {1, 2, 4, 8}) {
      const auto dp = oracle_.DpOnlyIterTime(spec, GpuType::kA100, n);
      const auto& best = oracle_.BestAdaptive(spec, GpuType::kA100, n);
      if (dp.has_value() && best.has_value()) {
        EXPECT_GE(*dp, best->iter_time - 1e-9);
      }
    }
  }
}

TEST_F(OracleTest, ThroughputsConsistent) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const auto& best = oracle_.BestAdaptive(spec, GpuType::kA100, 4);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(oracle_.AdaptiveThroughput(spec, GpuType::kA100, 4),
                   128.0 / best->iter_time);
  EXPECT_DOUBLE_EQ(oracle_.AdaptiveThroughput(ModelSpec{ModelFamily::kMoe, 27.0, 256},
                                              GpuType::kA10, 1),
                   0.0);  // infeasible shape
}

TEST_F(OracleTest, EstimateAndTuneCached) {
  const ModelSpec spec{ModelFamily::kMoe, 2.4, 256};
  const Cell cell{GpuType::kA40, 8, 2};
  const CellEstimate& a = oracle_.EstimateCell(spec, cell);
  const CellEstimate& b = oracle_.EstimateCell(spec, cell);
  EXPECT_EQ(&a, &b);
  const TuneResult& t1 = oracle_.TuneCell(spec, cell);
  const TuneResult& t2 = oracle_.TuneCell(spec, cell);
  EXPECT_EQ(&t1, &t2);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(t1.best.has_value());
}

TEST_F(OracleTest, EstimatedThroughputMatchesEstimate) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const Cell cell{GpuType::kA100, 4, 1};
  const CellEstimate& est = oracle_.EstimateCell(spec, cell);
  ASSERT_TRUE(est.feasible);
  EXPECT_DOUBLE_EQ(oracle_.EstimatedThroughput(spec, cell), 128.0 / est.iter_time);
}

TEST_F(OracleTest, BatchDistinguishesCacheEntries) {
  const ModelSpec b128{ModelFamily::kBert, 1.3, 128};
  const ModelSpec b512{ModelFamily::kBert, 1.3, 512};
  const auto& a = oracle_.BestAdaptive(b128, GpuType::kA100, 4);
  const auto& b = oracle_.BestAdaptive(b512, GpuType::kA100, 4);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_NE(a->iter_time, b->iter_time);
}

TEST_F(OracleTest, TunedCellNeverWorseThanGridEstimatePlan) {
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  const Cell cell{GpuType::kA100, 8, 2};
  const CellEstimate& est = oracle_.EstimateCell(spec, cell);
  ASSERT_TRUE(est.feasible);
  const TuneResult& tuned = oracle_.TuneCell(spec, cell);
  ASSERT_TRUE(tuned.best.has_value());
  const JobContext ctx = oracle_.perf_model().MakeContext(spec, GpuType::kA100);
  const PlanEval grid = oracle_.perf_model().Evaluate(ctx, est.plan);
  ASSERT_TRUE(grid.feasible);
  EXPECT_LE(tuned.best->iter_time, grid.iter_time + 1e-9);
}

TEST(OracleConfigTest, NoiseKnobsChangeEstimatesOnly) {
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle clean(cluster, 42, OracleConfig{.compute_jitter = 0.0, .comm_jitter = 0.0});
  PerformanceOracle noisy(cluster, 42, OracleConfig{.compute_jitter = 0.3, .comm_jitter = 0.2});
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const Cell cell{GpuType::kA40, 8, 2};
  const CellEstimate& a = clean.EstimateCell(spec, cell);
  const CellEstimate& b = noisy.EstimateCell(spec, cell);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NE(a.iter_time, b.iter_time);
  // Ground truth is independent of estimator noise.
  const auto& best_a = clean.BestAdaptive(spec, GpuType::kA40, 8);
  const auto& best_b = noisy.BestAdaptive(spec, GpuType::kA40, 8);
  ASSERT_TRUE(best_a.has_value() && best_b.has_value());
  EXPECT_DOUBLE_EQ(best_a->iter_time, best_b->iter_time);
}

TEST(OracleConfigTest, ZeroJitterStillHasStructuralError) {
  // Even noise-free, the estimator differs from ground truth: grid sampling
  // and the straggler factor are structural, not stochastic.
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle clean(cluster, 42, OracleConfig{.compute_jitter = 0.0, .comm_jitter = 0.0});
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  const Cell cell{GpuType::kA40, 8, 1};
  const CellEstimate& est = clean.EstimateCell(spec, cell);
  ASSERT_TRUE(est.feasible);
  const JobContext ctx = clean.perf_model().MakeContext(spec, GpuType::kA40);
  const PlanEval measured = clean.perf_model().Evaluate(ctx, est.plan);
  EXPECT_NE(est.iter_time, measured.iter_time);  // straggler gap remains
}

}  // namespace
}  // namespace crius
