// Acceptance test for event-driven incremental scheduling: a full simulation
// run with CriusConfig::incremental on must produce BIT-IDENTICAL event,
// timeline, and job-record CSVs to a run that re-ranks every job from scratch
// each round (incremental off). The trace includes a mid-run node failure,
// recovery, and a straggler window so the dirty-set path (per-type cap diff,
// restamp-vs-rerank, slowdown-only epochs) is exercised, not just the
// steady-state hit path. The harness mirrors tests/parallel_determinism_test.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/fault/failure_injector.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"
#include "src/util/threadpool.h"

namespace crius {
namespace {

struct RunCsvs {
  std::string events;
  std::string timeline;
  std::string jobs;
};

class IncrementalEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }

  // One complete simulation from fresh oracle/scheduler/sim state, serialized
  // to CSV. The fault schedule drives every incremental-path branch: node 0
  // fails at 2h (caps shrink -> dirty re-ranks), recovers at 4h (caps grow),
  // and node 1 straggles for a window (epoch moves with no cap change ->
  // restamp-only rounds).
  static RunCsvs Run(int threads, CriusConfig sched_config) {
    ThreadPool::SetGlobalThreads(threads);
    Cluster cluster = MakePhysicalTestbed();
    PerformanceOracle oracle(cluster, 42);

    TraceConfig trace_config = PhillySixHourConfig();
    trace_config.seed = 42;
    trace_config.num_jobs = 24;
    const auto trace = GenerateTrace(cluster, oracle, trace_config);

    SimConfig sim_config;
    sim_config.record_events = true;
    sim_config.failures.push_back(FailureEvent{2.0 * kHour, FailureKind::kNodeFail, 0, 0, 1.0});
    sim_config.failures.push_back(
        FailureEvent{2.5 * kHour, FailureKind::kStragglerStart, 1, 0, 1.8});
    sim_config.failures.push_back(
        FailureEvent{3.5 * kHour, FailureKind::kStragglerEnd, 1, 0, 1.0});
    sim_config.failures.push_back(
        FailureEvent{4.0 * kHour, FailureKind::kNodeRecover, 0, 0, 1.0});

    Simulator sim(cluster, sim_config);
    CriusScheduler sched(&oracle, sched_config);
    const SimResult result = sim.Run(sched, oracle, trace);

    RunCsvs csvs;
    std::ostringstream events, timeline, jobs;
    WriteEventsCsv(result, events);
    WriteTimelineCsv(result, timeline);
    WriteJobRecordsCsv(result, jobs);
    csvs.events = events.str();
    csvs.timeline = timeline.str();
    csvs.jobs = jobs.str();
    return csvs;
  }

  static void ExpectIdentical(const RunCsvs& a, const RunCsvs& b, const char* label) {
    EXPECT_EQ(a.events, b.events) << "events diverge: " << label;
    EXPECT_EQ(a.timeline, b.timeline) << "timeline diverges: " << label;
    EXPECT_EQ(a.jobs, b.jobs) << "job records diverge: " << label;
  }
};

TEST_F(IncrementalEquivalenceTest, IncrementalMatchesFullRecomputeWithFaults) {
  CriusConfig full;
  full.incremental = false;
  CriusConfig incremental;
  incremental.incremental = true;

  const RunCsvs base = Run(1, full);
  ASSERT_FALSE(base.events.empty());
  ASSERT_FALSE(base.timeline.empty());
  // The fault schedule actually fired (failure/recovery rounds are covered).
  EXPECT_NE(base.events.find("node_fail"), std::string::npos);
  EXPECT_NE(base.events.find("node_recover"), std::string::npos);

  ExpectIdentical(Run(1, incremental), base, "--incremental on vs off");
}

TEST_F(IncrementalEquivalenceTest, IncrementalMatchesFullAcrossThreadCounts) {
  // The cross product with the PR 3 determinism guarantee: incremental at 4
  // threads vs full recompute at 1 thread.
  CriusConfig full;
  full.incremental = false;
  CriusConfig incremental;
  incremental.incremental = true;

  const RunCsvs base = Run(1, full);
  ExpectIdentical(Run(4, incremental), base, "--incremental on --threads 4 vs off --threads 1");
}

TEST_F(IncrementalEquivalenceTest, SolverLiteIncrementalMatchesFull) {
  // kBestOfAll runs three concurrent placement passes against the shared
  // ranking memo; the memo's incremental maintenance must not change the
  // winning pass.
  CriusConfig full;
  full.incremental = false;
  full.placement_order = CriusPlacementOrder::kBestOfAll;
  CriusConfig incremental = full;
  incremental.incremental = true;

  ExpectIdentical(Run(4, incremental), Run(1, full), "solver-lite incremental vs full");
}

}  // namespace
}  // namespace crius
