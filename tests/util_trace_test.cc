// Tests for the process-wide trace recorder (src/util/trace.h).

#include "src/util/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "tests/trace_json_util.h"

namespace crius {
namespace {

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

std::string Json() {
  std::ostringstream out;
  TraceRecorder::Global().WriteJson(out);
  return out.str();
}

TEST_F(TraceRecorderTest, DisabledMacrosRecordNothing) {
  TraceRecorder::Global().SetEnabled(false);
  {
    CRIUS_TRACE_SPAN("test.span");
    CRIUS_TRACE_INSTANT("test.instant");
    CRIUS_TRACE_COUNTER("test.counter", 3.0);
  }
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
}

TEST_F(TraceRecorderTest, SpanNestingClosesInnerFirst) {
  {
    CRIUS_TRACE_SPAN("outer.root");
    {
      CRIUS_TRACE_SPAN("outer.child");
    }
  }
  EXPECT_EQ(TraceRecorder::Global().size(), 2u);
  const std::string json = Json();
  // Inner span completes (and is appended) before the outer one.
  EXPECT_LT(json.find("outer.child"), json.find("outer.root"));
  EXPECT_TRUE(test::IsValidJson(json)) << json;
}

TEST_F(TraceRecorderTest, SpanArgsAndInstantAndCounterAppearInJson) {
  {
    CRIUS_TRACE_SPAN_ARGS("sched.round", "{\"jobs\": 7}");
    CRIUS_TRACE_INSTANT("sched.drop");
    CRIUS_TRACE_COUNTER("sched.free_gpus", 12.0);
  }
  const std::string json = Json();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"jobs\": 7"), std::string::npos);
  EXPECT_NE(json.find("sched.drop"), std::string::npos);
  EXPECT_NE(json.find("sched.free_gpus"), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
}

TEST_F(TraceRecorderTest, NamesAreEscapedIntoValidJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  const int track = rec.Track(TraceRecorder::kSimPid, "weird \"track\"\n\t\\");
  rec.CompleteEvent(track, "name with \"quotes\" and \\backslash\\", 0.0, 1.0);
  EXPECT_TRUE(test::IsValidJson(Json())) << Json();
}

TEST_F(TraceRecorderTest, ExplicitEventsWorkWhileDisabled) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.SetEnabled(false);
  const int track = rec.Track(TraceRecorder::kSimPid, "job 0");
  rec.CompleteEvent(track, "run", 0.0, 1e6);
  rec.InstantEvent(track, "restart", 5e5);
  rec.CounterEvent(track, "busy_gpus", 0.0, 8.0);
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_TRUE(test::IsValidJson(Json()));
}

TEST_F(TraceRecorderTest, TrackIdsAreStablePerProcessAndName) {
  TraceRecorder& rec = TraceRecorder::Global();
  const int a = rec.Track(TraceRecorder::kSimPid, "job 1");
  const int b = rec.Track(TraceRecorder::kSimPid, "job 2");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, rec.Track(TraceRecorder::kSimPid, "job 1"));
  // The same name under the other process is a distinct track.
  EXPECT_NE(a, rec.Track(TraceRecorder::kRealtimePid, "job 1"));
}

TEST_F(TraceRecorderTest, ClearDropsEverything) {
  {
    CRIUS_TRACE_SPAN("x.y");
  }
  ASSERT_EQ(TraceRecorder::Global().size(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
  EXPECT_TRUE(test::IsValidJson(Json()));
}

TEST_F(TraceRecorderTest, UnbalancedEndSpanIsDropped) {
  TraceRecorder::Global().EndSpan();  // no matching BeginSpan
  EXPECT_EQ(TraceRecorder::Global().size(), 0u);
}

TEST_F(TraceRecorderTest, ThreadSafetySmoke) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        CRIUS_TRACE_SPAN("smoke.outer");
        CRIUS_TRACE_SPAN("smoke.inner");
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(TraceRecorder::Global().size(),
            static_cast<size_t>(kThreads) * kSpans * 2);
  EXPECT_TRUE(test::IsValidJson(Json()));
}

TEST(JsonCheckerTest, RejectsMalformedDocuments) {
  EXPECT_TRUE(test::IsValidJson("{\"a\": [1, 2.5, -3e-2, \"x\", true, null]}"));
  EXPECT_FALSE(test::IsValidJson(""));
  EXPECT_FALSE(test::IsValidJson("{"));
  EXPECT_FALSE(test::IsValidJson("{\"a\": }"));
  EXPECT_FALSE(test::IsValidJson("[1, 2,]"));
  EXPECT_FALSE(test::IsValidJson("\"unterminated"));
  EXPECT_FALSE(test::IsValidJson("{\"a\": 1} trailing"));
  EXPECT_FALSE(test::IsValidJson("{\"a\": 01x}"));
}

}  // namespace
}  // namespace crius
