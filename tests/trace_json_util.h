// Minimal JSON checker for trace-export tests.
//
// Not a general parser: it validates syntax (balanced structures, legal
// scalars, string escapes) via recursive descent and discards the values.
// Enough to prove the Chrome-trace writer emits well-formed JSON without
// pulling a JSON library into the build.

#ifndef TESTS_TRACE_JSON_UTIL_H_
#define TESTS_TRACE_JSON_UTIL_H_

#include <cctype>
#include <string>

namespace crius {
namespace test {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  // True when the whole input is exactly one valid JSON value.
  bool Valid() {
    pos_ = 0;
    ok_ = true;
    SkipWs();
    Value();
    SkipWs();
    return ok_ && pos_ == text_.size();
  }

 private:
  void Fail() { ok_ = false; }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Value() {
    if (!ok_) {
      return;
    }
    switch (Peek()) {
      case '{':
        Object();
        return;
      case '[':
        Array();
        return;
      case '"':
        String();
        return;
      case 't':
        Literal("true");
        return;
      case 'f':
        Literal("false");
        return;
      case 'n':
        Literal("null");
        return;
      default:
        Number();
        return;
    }
  }

  void Object() {
    Consume('{');
    SkipWs();
    if (Consume('}')) {
      return;
    }
    while (ok_) {
      SkipWs();
      String();
      SkipWs();
      if (!Consume(':')) {
        Fail();
        return;
      }
      SkipWs();
      Value();
      SkipWs();
      if (Consume('}')) {
        return;
      }
      if (!Consume(',')) {
        Fail();
        return;
      }
    }
  }

  void Array() {
    Consume('[');
    SkipWs();
    if (Consume(']')) {
      return;
    }
    while (ok_) {
      SkipWs();
      Value();
      SkipWs();
      if (Consume(']')) {
        return;
      }
      if (!Consume(',')) {
        Fail();
        return;
      }
    }
  }

  void String() {
    if (!Consume('"')) {
      Fail();
      return;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail();  // control characters must be escaped
        return;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              Fail();
              return;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          Fail();
          return;
        }
      }
    }
    Fail();  // unterminated string
  }

  void Number() {
    const size_t start = pos_;
    Consume('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      Fail();
      return;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail();
        return;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        Fail();
        return;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (pos_ == start) {
      Fail();
    }
  }

  void Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!Consume(*p)) {
        Fail();
        return;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace test
}  // namespace crius

#endif  // TESTS_TRACE_JSON_UTIL_H_
