#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

TrainingJob MakeJob(int64_t id, double submit, int64_t iterations, int gpus = 4,
                    GpuType type = GpuType::kA100) {
  TrainingJob job;
  job.id = id;
  job.spec = kSmall;
  job.submit_time = submit;
  job.iterations = iterations;
  job.requested_gpus = gpus;
  job.requested_type = type;
  return job;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : cluster_(MakeMotivationCluster()), oracle_(cluster_, 42) {}

  SimResult RunFcfs(const std::vector<TrainingJob>& trace, SimConfig config = SimConfig{}) {
    Simulator sim(cluster_, config);
    FcfsScheduler sched(&oracle_);
    return sim.Run(sched, oracle_, trace);
  }

  Cluster cluster_;
  PerformanceOracle oracle_;
};

TEST_F(SimulatorTest, SingleJobLifecycle) {
  const TrainingJob job = MakeJob(0, 0.0, 100);
  const SimResult r = RunFcfs({job});
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_TRUE(r.jobs[0].finished);
  EXPECT_EQ(r.finished_jobs, 1);

  // Finish time = first round (t=0) + restart overhead + 100 iterations.
  const auto& best = oracle_.BestAdaptive(kSmall, GpuType::kA100, 4);
  ASSERT_TRUE(best.has_value());
  const double expected = SimConfig{}.restart_overhead + 100.0 * best->iter_time;
  EXPECT_NEAR(r.jobs[0].finish, expected, 1e-6);
  EXPECT_DOUBLE_EQ(r.jobs[0].first_start, 0.0);
  EXPECT_EQ(r.jobs[0].restarts, 0);
}

TEST_F(SimulatorTest, ArrivalsWaitForNextRound) {
  // A job submitted mid-round starts at the next 5-minute boundary.
  const TrainingJob job = MakeJob(0, 100.0, 10);
  const SimResult r = RunFcfs({job});
  ASSERT_TRUE(r.jobs[0].finished);
  EXPECT_DOUBLE_EQ(r.jobs[0].first_start, 300.0);
}

TEST_F(SimulatorTest, QueuedJobStartsAfterFirstCompletes) {
  // Two jobs, each wanting the whole A100 node.
  std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 50), MakeJob(1, 0.0, 50)};
  const SimResult r = RunFcfs(trace);
  ASSERT_EQ(r.finished_jobs, 2);
  EXPECT_GE(r.jobs[1].first_start, r.jobs[0].finish - 1e-6);
  EXPECT_GT(r.jobs[1].queue_time(), 0.0);
}

TEST_F(SimulatorTest, DepartureTriggersImmediateScheduling) {
  // The second job starts exactly when the first finishes, not at the next
  // round boundary (SchedDeparture path).
  std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 40), MakeJob(1, 0.0, 40)};
  const SimResult r = RunFcfs(trace);
  const double finish0 = r.jobs[0].finish;
  EXPECT_NEAR(r.jobs[1].first_start, finish0, 1e-6);
  // And not a multiple of the round interval.
  EXPECT_GT(std::abs(std::fmod(finish0, 300.0)), 1e-3);
}

TEST_F(SimulatorTest, RestartOverheadDelaysProgress) {
  SimConfig slow;
  slow.restart_overhead = 500.0;
  const SimResult fast = RunFcfs({MakeJob(0, 0.0, 100)});
  const SimResult delayed = RunFcfs({MakeJob(0, 0.0, 100)}, slow);
  EXPECT_NEAR(delayed.jobs[0].finish - fast.jobs[0].finish, 440.0, 1e-6);
}

TEST_F(SimulatorTest, ThroughputTimelineSampled) {
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 2000)});
  EXPECT_GT(r.timeline.size(), 2u);
  bool saw_running = false;
  for (const ThroughputSample& s : r.timeline) {
    EXPECT_GE(s.normalized_throughput, 0.0);
    if (s.running_jobs > 0 && s.normalized_throughput > 0.0) {
      saw_running = true;
      // Running at the requested shape: normalized throughput ~ 1 per job.
      EXPECT_NEAR(s.normalized_throughput, 1.0, 0.05);
    }
  }
  EXPECT_TRUE(saw_running);
}

TEST_F(SimulatorTest, UnfinishedJobsReportedAtTimeCap) {
  SimConfig config;
  config.max_time_factor = 0.0;  // cap almost immediately after the trace end
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 100000000)}, config);
  EXPECT_EQ(r.finished_jobs, 0);
  EXPECT_EQ(r.unfinished_jobs, 1);
  EXPECT_FALSE(r.jobs[0].finished);
}

TEST_F(SimulatorTest, ProfilingDelayPostponesCriusStart) {
  SimConfig with;
  with.charge_profiling = true;
  SimConfig without;
  without.charge_profiling = false;

  CriusScheduler sched_a(&oracle_, CriusConfig{});
  CriusScheduler sched_b(&oracle_, CriusConfig{});
  Simulator sim_a(cluster_, with);
  Simulator sim_b(cluster_, without);
  const std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 50)};
  const SimResult a = sim_a.Run(sched_a, oracle_, trace);
  const SimResult b = sim_b.Run(sched_b, oracle_, trace);
  ASSERT_TRUE(a.jobs[0].finished && b.jobs[0].finished);
  EXPECT_GT(a.jobs[0].first_start, b.jobs[0].first_start);
}

TEST_F(SimulatorTest, ExecutionJitterChangesTimesDeterministically) {
  SimConfig jitter;
  jitter.execution_jitter = 0.06;
  const SimResult plain = RunFcfs({MakeJob(0, 0.0, 100)});
  const SimResult a = RunFcfs({MakeJob(0, 0.0, 100)}, jitter);
  const SimResult b = RunFcfs({MakeJob(0, 0.0, 100)}, jitter);
  EXPECT_NE(a.jobs[0].finish, plain.jobs[0].finish);
  EXPECT_DOUBLE_EQ(a.jobs[0].finish, b.jobs[0].finish);
  EXPECT_NEAR(a.jobs[0].finish, plain.jobs[0].finish, plain.jobs[0].finish * 0.1);
}

TEST_F(SimulatorTest, RestartsCountedOnReschedule) {
  // Crius on a small cluster with two competing jobs reschedules at least one
  // of them when the second arrives / the first departs.
  CriusScheduler sched(&oracle_, CriusConfig{});
  Simulator sim(cluster_, SimConfig{});
  std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 800, 4),
                                    MakeJob(1, 0.0, 800, 4, GpuType::kV100)};
  const SimResult r = sim.Run(sched, oracle_, trace);
  EXPECT_EQ(r.finished_jobs, 2);
  // Restart counting never goes negative and JCTs are positive.
  for (const JobRecord& rec : r.jobs) {
    EXPECT_GE(rec.restarts, 0);
    EXPECT_GT(rec.jct(), 0.0);
  }
}

TEST_F(SimulatorTest, ValidateCollectsAllConfigErrors) {
  SimConfig config;
  config.schedule_interval = 0.0;
  config.restart_overhead = -1.0;
  config.execution_jitter = -0.5;
  config.failures.push_back(FailureEvent{-1.0, FailureKind::kNodeFail, 999, 0, 1.0});
  const std::vector<std::string> errors = config.Validate(cluster_);
  // Every problem is reported at once: interval, overhead, jitter, and both
  // failure-event defects (negative time + unknown node).
  EXPECT_EQ(errors.size(), 5u);
  EXPECT_TRUE(SimConfig{}.Validate(cluster_).empty());
}

// A scheduler whose decision both assigns and drops the same job: the
// simulator must reject the contradiction instead of starting then tearing
// down the job.
class ContradictoryScheduler : public Scheduler {
 public:
  explicit ContradictoryScheduler(PerformanceOracle* oracle) : Scheduler(oracle) {}
  std::string name() const override { return "Contradictory"; }
  ScheduleDecision Schedule(const RoundContext& round) override {
    ScheduleDecision d;
    for (const JobState* js : round.jobs()) {
      d.assignments[js->job.id] =
          Assignment{js->job.requested_type, js->job.requested_gpus, 0, false};
      d.dropped.push_back(js->job.id);
    }
    return d;
  }
};

TEST_F(SimulatorTest, RejectsDecisionThatAssignsAndDropsSameJob) {
  const TrainingJob job = MakeJob(0, 0.0, 100);
  ContradictoryScheduler sched(&oracle_);
  Simulator sim(cluster_, SimConfig{});
  EXPECT_DEATH(sim.Run(sched, oracle_, {job}), "both assigns and drops job");
}

TEST_F(SimulatorTest, AllSchedulersCompleteAMixedTrace) {
  std::vector<TrainingJob> trace;
  for (int i = 0; i < 6; ++i) {
    trace.push_back(MakeJob(i, i * 60.0, 100, i % 2 == 0 ? 2 : 4,
                            i % 3 == 0 ? GpuType::kV100 : GpuType::kA100));
  }
  std::vector<std::unique_ptr<Scheduler>> scheds;
  scheds.push_back(std::make_unique<FcfsScheduler>(&oracle_));
  scheds.push_back(std::make_unique<GandivaScheduler>(&oracle_));
  scheds.push_back(std::make_unique<GavelScheduler>(&oracle_));
  scheds.push_back(std::make_unique<ElasticFlowScheduler>(&oracle_, ElasticFlowConfig{}));
  scheds.push_back(std::make_unique<CriusScheduler>(&oracle_, CriusConfig{}));
  for (auto& sched : scheds) {
    Simulator sim(cluster_, SimConfig{});
    const SimResult r = sim.Run(*sched, oracle_, trace);
    EXPECT_EQ(r.finished_jobs, 6) << sched->name();
    EXPECT_EQ(r.dropped_jobs, 0) << sched->name();
  }
}

}  // namespace
}  // namespace crius
