#include "src/sim/metrics.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

JobRecord Finished(int64_t id, double submit, double start, double finish, int restarts = 0) {
  JobRecord r;
  r.id = id;
  r.submit = submit;
  r.first_start = start;
  r.finish = finish;
  r.restarts = restarts;
  r.finished = true;
  return r;
}

TEST(JobRecordTest, DerivedTimes) {
  const JobRecord r = Finished(0, 10.0, 25.0, 110.0);
  EXPECT_DOUBLE_EQ(r.jct(), 100.0);
  EXPECT_DOUBLE_EQ(r.queue_time(), 15.0);
}

TEST(SimResultTest, AggregatesJctAndQueue) {
  SimResult result;
  result.jobs.push_back(Finished(0, 0.0, 10.0, 100.0, 1));
  result.jobs.push_back(Finished(1, 0.0, 0.0, 300.0, 3));
  result.Finalize();
  EXPECT_EQ(result.finished_jobs, 2);
  EXPECT_DOUBLE_EQ(result.avg_jct, 200.0);
  EXPECT_DOUBLE_EQ(result.median_jct, 200.0);
  EXPECT_DOUBLE_EQ(result.max_jct, 300.0);
  EXPECT_DOUBLE_EQ(result.avg_queue_time, 5.0);
  EXPECT_DOUBLE_EQ(result.avg_restarts, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan, 300.0);
}

TEST(SimResultTest, CountsUnfinishedAndDropped) {
  SimResult result;
  result.jobs.push_back(Finished(0, 0.0, 1.0, 50.0));
  JobRecord unfinished;
  unfinished.id = 1;
  result.jobs.push_back(unfinished);
  JobRecord dropped;
  dropped.id = 2;
  dropped.dropped = true;
  result.jobs.push_back(dropped);
  result.Finalize();
  EXPECT_EQ(result.finished_jobs, 1);
  EXPECT_EQ(result.unfinished_jobs, 1);
  EXPECT_EQ(result.dropped_jobs, 1);
}

TEST(SimResultTest, DeadlineRatioCountsDropsAsMisses) {
  SimResult result;
  JobRecord met = Finished(0, 0.0, 1.0, 10.0);
  met.had_deadline = true;
  met.deadline_met = true;
  result.jobs.push_back(met);
  JobRecord missed = Finished(1, 0.0, 1.0, 100.0);
  missed.had_deadline = true;
  result.jobs.push_back(missed);
  JobRecord dropped;
  dropped.id = 2;
  dropped.dropped = true;
  dropped.had_deadline = true;
  result.jobs.push_back(dropped);
  result.Finalize();
  EXPECT_NEAR(result.deadline_ratio, 1.0 / 3.0, 1e-12);
}

TEST(SimResultTest, DeadlineRatioZeroWithoutDeadlines) {
  SimResult result;
  result.jobs.push_back(Finished(0, 0.0, 1.0, 10.0));
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.deadline_ratio, 0.0);
}

TEST(SimResultTest, ThroughputAggregates) {
  SimResult result;
  result.timeline.push_back(ThroughputSample{0.0, 2.0, 1, 0});
  result.timeline.push_back(ThroughputSample{300.0, 6.0, 3, 1});
  result.timeline.push_back(ThroughputSample{600.0, 4.0, 2, 0});
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.avg_throughput, 4.0);
  EXPECT_DOUBLE_EQ(result.peak_throughput, 6.0);
}

TEST(SimResultTest, EmptyResultIsZeroed) {
  SimResult result;
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.avg_jct, 0.0);
  EXPECT_DOUBLE_EQ(result.avg_throughput, 0.0);
  EXPECT_EQ(result.finished_jobs, 0);
}

TEST(SimResultTest, MakespanCoversAllDroppedTrace) {
  // Regression: a run where every job is dropped used to report makespan 0
  // even though the cluster was active until the last drop.
  SimResult result;
  for (int i = 0; i < 3; ++i) {
    JobRecord r;
    r.id = i;
    r.submit = 10.0 * i;
    r.dropped = true;
    r.last_event = 100.0 + 50.0 * i;  // drop time
    result.jobs.push_back(r);
  }
  result.Finalize();
  EXPECT_EQ(result.finished_jobs, 0);
  EXPECT_EQ(result.dropped_jobs, 3);
  EXPECT_DOUBLE_EQ(result.makespan, 200.0);
  // Finished-only averages stay at their NaN-free sentinel.
  EXPECT_DOUBLE_EQ(result.avg_jct, 0.0);
  EXPECT_DOUBLE_EQ(result.avg_queue_time, 0.0);
  EXPECT_DOUBLE_EQ(result.avg_restarts, 0.0);
}

TEST(SimResultTest, MakespanFoldsUnfinishedJobs) {
  SimResult result;
  result.jobs.push_back(Finished(0, 0.0, 1.0, 50.0));
  JobRecord live;  // still running at the simulation horizon
  live.id = 1;
  live.first_start = 10.0;
  live.last_event = 500.0;
  result.jobs.push_back(live);
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.makespan, 500.0);
}

TEST(SimResultTest, MakespanIgnoresUnobservedRecords) {
  // Hand-built records default last_event to -1; they must not drag the
  // makespan below the finished jobs' horizon.
  SimResult result;
  result.jobs.push_back(Finished(0, 0.0, 1.0, 80.0));
  JobRecord unseen;
  unseen.id = 1;
  result.jobs.push_back(unseen);
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.makespan, 80.0);
}

TEST(SimResultTest, QueueTimeClampedNonNegative) {
  SimResult result;
  JobRecord r = Finished(0, 10.0, 5.0, 50.0);  // started "before" submit
  result.jobs.push_back(r);
  result.Finalize();
  EXPECT_GE(result.avg_queue_time, 0.0);
}

}  // namespace
}  // namespace crius
