// End-to-end integration: full pipeline from trace synthesis through
// scheduling, estimation, tuning and simulation, checking the paper's
// headline orderings on a scaled-down workload.

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace crius {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : cluster_(MakePhysicalTestbed()), oracle_(cluster_, 42) {
    TraceConfig config = PhillySixHourConfig();
    config.num_jobs = 60;
    config.duration = 2.0 * kHour;
    trace_ = GenerateTrace(cluster_, oracle_, config);
  }

  SimResult Run(Scheduler& sched) {
    Simulator sim(cluster_, SimConfig{});
    return sim.Run(sched, oracle_, trace_);
  }

  Cluster cluster_;
  PerformanceOracle oracle_;
  std::vector<TrainingJob> trace_;
};

TEST_F(IntegrationTest, EverySchedulerFinishesTheTrace) {
  std::vector<std::unique_ptr<Scheduler>> scheds;
  scheds.push_back(std::make_unique<FcfsScheduler>(&oracle_));
  scheds.push_back(std::make_unique<GandivaScheduler>(&oracle_));
  scheds.push_back(std::make_unique<GavelScheduler>(&oracle_));
  scheds.push_back(std::make_unique<ElasticFlowScheduler>(&oracle_, ElasticFlowConfig{}));
  scheds.push_back(std::make_unique<CriusScheduler>(&oracle_, CriusConfig{}));
  for (auto& sched : scheds) {
    const SimResult r = Run(*sched);
    EXPECT_EQ(r.finished_jobs + r.unfinished_jobs + r.dropped_jobs,
              static_cast<int>(trace_.size()))
        << sched->name();
    EXPECT_EQ(r.finished_jobs, static_cast<int>(trace_.size())) << sched->name();
    EXPECT_GT(r.avg_throughput, 0.0) << sched->name();
    // Sanity: every finished job has start <= finish and non-negative queue.
    for (const JobRecord& rec : r.jobs) {
      EXPECT_LE(rec.first_start, rec.finish) << sched->name();
      EXPECT_GE(rec.first_start, rec.submit) << sched->name();
    }
  }
}

TEST_F(IntegrationTest, CriusBeatsFcfsOnEveryHeadlineMetric) {
  FcfsScheduler fcfs(&oracle_);
  CriusScheduler crius(&oracle_, CriusConfig{});
  const SimResult rf = Run(fcfs);
  const SimResult rc = Run(crius);
  EXPECT_LT(rc.avg_jct, rf.avg_jct);
  EXPECT_LT(rc.avg_queue_time, rf.avg_queue_time);
  EXPECT_GT(rc.avg_throughput, rf.avg_throughput);
}

TEST_F(IntegrationTest, CriusBestOrTiedOnJct) {
  std::vector<std::unique_ptr<Scheduler>> baselines;
  baselines.push_back(std::make_unique<GandivaScheduler>(&oracle_));
  baselines.push_back(std::make_unique<GavelScheduler>(&oracle_));
  baselines.push_back(std::make_unique<ElasticFlowScheduler>(&oracle_, ElasticFlowConfig{}));
  CriusScheduler crius(&oracle_, CriusConfig{});
  const SimResult rc = Run(crius);
  for (auto& sched : baselines) {
    const SimResult rb = Run(*sched);
    EXPECT_LT(rc.avg_jct, rb.avg_jct * 1.05) << "vs " << sched->name();
  }
}

TEST_F(IntegrationTest, AblationsDegradeCrius) {
  // §8.6: removing adaptivity or heterogeneity scaling hurts.
  CriusScheduler full(&oracle_, CriusConfig{});
  CriusScheduler na(&oracle_, CriusConfig{.adaptivity_scaling = false});
  CriusScheduler nh(&oracle_, CriusConfig{.heterogeneity_scaling = false});
  const SimResult rf = Run(full);
  const SimResult rna = Run(na);
  const SimResult rnh = Run(nh);
  EXPECT_LE(rf.avg_jct, rna.avg_jct * 1.02);
  EXPECT_LE(rf.avg_jct, rnh.avg_jct * 1.02);
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  CriusScheduler a(&oracle_, CriusConfig{});
  const SimResult ra = Run(a);
  CriusScheduler b(&oracle_, CriusConfig{});
  const SimResult rb = Run(b);
  EXPECT_DOUBLE_EQ(ra.avg_jct, rb.avg_jct);
  EXPECT_DOUBLE_EQ(ra.avg_throughput, rb.avg_throughput);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.jobs[i].finish, rb.jobs[i].finish);
  }
}

TEST_F(IntegrationTest, DeadlineAwareCriusBeatsElasticFlowOnDeadlines) {
  // §8.5 on a small deadline-carrying trace.
  TraceConfig config = PhillySixHourConfig();
  config.num_jobs = 80;
  config.duration = 2.0 * kHour;
  config.load = 1.8;  // deadline pressure only bites under contention
  config.deadline_fraction = 1.0;
  config.deadline_slack_min = 1.2;
  config.deadline_slack_max = 3.0;
  const auto trace = GenerateTrace(cluster_, oracle_, config);

  CriusScheduler crius_ddl(&oracle_, CriusConfig{.deadline_aware = true});
  ElasticFlowScheduler ef(&oracle_, ElasticFlowConfig{.loose_deadlines = false});
  Simulator sim(cluster_, SimConfig{});
  const SimResult rc = sim.Run(crius_ddl, oracle_, trace);
  const SimResult re = sim.Run(ef, oracle_, trace);
  EXPECT_GE(rc.deadline_ratio, re.deadline_ratio);
  EXPECT_GT(rc.deadline_ratio, 0.5);
}

}  // namespace
}  // namespace crius
