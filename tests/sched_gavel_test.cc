#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

class GavelTest : public SchedTestBase {
 protected:
  GavelTest() : SchedTestBase(MakeSimulatedCluster()), sched_(&oracle_) {}
  GavelScheduler sched_;
};

TEST_F(GavelTest, PicksHighestDpThroughputType) {
  // With every pool free, the dp-profiled best type for a small BERT is A100.
  AddQueued(0, kSmall, 4, GpuType::kV100, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kA100);
}

TEST_F(GavelTest, NeverScalesGpuCounts) {
  AddQueued(0, kSmall, 16, GpuType::kA40, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, 16);
}

TEST_F(GavelTest, FallsBackWhenBestTypeFull) {
  AddRunning(100, kSmall, 256, GpuType::kA100);
  AddRunning(110, kSmall, 64, GpuType::kA100);  // A100 pool exhausted
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_NE(d.assignments.at(0).type, GpuType::kA100);
}

TEST_F(GavelTest, StickyForRunningJobs) {
  // A job already on A40 is not migrated to a marginally better type.
  const ModelSpec spec{ModelFamily::kWideResNet, 1.0, 256};
  AddRunning(0, spec, 8, GpuType::kA40);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  // A100 would be faster, but the stickiness bonus keeps it unless the win
  // exceeds kReassignGain -- which it does here (A100 >> A40 for this job),
  // so accept either, but the decision must be deterministic and capacity-ok.
  CheckCapacity(d);
  const ScheduleDecision d2 = sched_.Schedule(Round(0.0));
  EXPECT_EQ(d.assignments.at(0).type, d2.assignments.at(0).type);
}

TEST_F(GavelTest, DpBlindJobsStillScheduled) {
  // BERT-2.6B has no dp-only profile on A10 (OOM) -- Gavel still places it
  // via the neutral fallback.
  const ModelSpec bert26{ModelFamily::kBert, 2.6, 128};
  AddQueued(0, bert26, 8, GpuType::kA10, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_TRUE(d.assignments.count(0));
}

TEST_F(GavelTest, NoRoomAnywhereLeavesQueued) {
  AddRunning(100, kSmall, 256, GpuType::kA100);
  AddRunning(110, kSmall, 64, GpuType::kA100);
  AddRunning(101, kSmall, 256, GpuType::kA40);
  AddRunning(111, kSmall, 64, GpuType::kA40);
  AddRunning(102, kSmall, 256, GpuType::kA10);
  AddRunning(112, kSmall, 64, GpuType::kA10);
  AddRunning(103, kSmall, 256, GpuType::kV100);
  AddRunning(113, kSmall, 64, GpuType::kV100);
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  EXPECT_FALSE(d.assignments.count(0));
}

TEST_F(GavelTest, ProcessesAllQueuedWithoutHolBlocking) {
  AddQueued(0, kSmall, 512, GpuType::kA100, 0.0);  // impossible
  AddQueued(1, kSmall, 4, GpuType::kA100, 1.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_FALSE(d.assignments.count(0));
  EXPECT_TRUE(d.assignments.count(1));
}

}  // namespace
}  // namespace crius
