#include "src/hw/cluster.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

TEST(ClusterBuildersTest, PhysicalTestbedShape) {
  const Cluster c = MakePhysicalTestbed();
  EXPECT_EQ(c.TotalGpus(), 64);
  EXPECT_EQ(c.TotalGpus(GpuType::kA40), 32);
  EXPECT_EQ(c.TotalGpus(GpuType::kA10), 32);
  EXPECT_EQ(c.GpusPerNode(GpuType::kA40), 2);
  EXPECT_EQ(c.GpusPerNode(GpuType::kA10), 2);
  EXPECT_FALSE(c.HasType(GpuType::kA100));
  EXPECT_FALSE(c.HasType(GpuType::kV100));
}

TEST(ClusterBuildersTest, SimulatedClusterMatchesTable1) {
  const Cluster c = MakeSimulatedCluster();
  EXPECT_EQ(c.TotalGpus(), 1280);
  EXPECT_EQ(c.TotalGpus(GpuType::kA100), 320);
  EXPECT_EQ(c.TotalGpus(GpuType::kA40), 320);
  EXPECT_EQ(c.TotalGpus(GpuType::kA10), 320);
  EXPECT_EQ(c.TotalGpus(GpuType::kV100), 320);
  EXPECT_EQ(c.GpusPerNode(GpuType::kA100), 4);
  EXPECT_EQ(c.GpusPerNode(GpuType::kV100), 16);
}

TEST(ClusterBuildersTest, MotivationCluster) {
  const Cluster c = MakeMotivationCluster();
  EXPECT_EQ(c.TotalGpus(GpuType::kA100), 4);
  EXPECT_EQ(c.TotalGpus(GpuType::kV100), 4);
}

TEST(ClusterTest, AllocateReducesFree) {
  Cluster c = MakePhysicalTestbed();
  const auto alloc = c.Allocate(GpuType::kA40, 8);
  ASSERT_TRUE(alloc.has_value());
  EXPECT_EQ(alloc->total_gpus(), 8);
  EXPECT_EQ(alloc->type, GpuType::kA40);
  EXPECT_EQ(c.FreeGpus(GpuType::kA40), 24);
  EXPECT_EQ(c.FreeGpus(GpuType::kA10), 32);
}

TEST(ClusterTest, ReleaseRestoresFree) {
  Cluster c = MakePhysicalTestbed();
  const auto alloc = c.Allocate(GpuType::kA10, 6);
  ASSERT_TRUE(alloc.has_value());
  c.Release(*alloc);
  EXPECT_EQ(c.FreeGpus(GpuType::kA10), 32);
  EXPECT_EQ(c.FreeGpus(), 64);
}

TEST(ClusterTest, AllocateFailsWhenInsufficient) {
  Cluster c = MakePhysicalTestbed();
  EXPECT_FALSE(c.Allocate(GpuType::kA40, 33).has_value());
  EXPECT_EQ(c.FreeGpus(GpuType::kA40), 32);  // unchanged on failure
}

TEST(ClusterTest, AllocatePrefersWholeNodes) {
  Cluster c;
  c.AddNodes(GpuType::kA100, 3, 4);
  // Fragment node 0.
  const auto frag = c.Allocate(GpuType::kA100, 1);
  ASSERT_TRUE(frag.has_value());
  // An 8-GPU request should land on the two fully free nodes.
  const auto big = c.Allocate(GpuType::kA100, 8);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->num_nodes(), 2);
  for (const auto& [node, count] : big->node_gpus) {
    EXPECT_EQ(count, 4);
    EXPECT_NE(node, frag->node_gpus[0].first);
  }
}

TEST(ClusterTest, PartialNodesUsedWhenNecessary) {
  Cluster c;
  c.AddNodes(GpuType::kA100, 2, 4);
  auto a = c.Allocate(GpuType::kA100, 3);
  ASSERT_TRUE(a.has_value());
  auto b = c.Allocate(GpuType::kA100, 5);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(c.FreeGpus(GpuType::kA100), 0);
  EXPECT_EQ(b->total_gpus(), 5);
}

TEST(ClusterTest, ExhaustAndRefill) {
  Cluster c = MakeMotivationCluster();
  std::vector<Allocation> allocs;
  for (int i = 0; i < 4; ++i) {
    auto a = c.Allocate(GpuType::kA100, 1);
    ASSERT_TRUE(a.has_value());
    allocs.push_back(*a);
  }
  EXPECT_EQ(c.FreeGpus(GpuType::kA100), 0);
  EXPECT_FALSE(c.Allocate(GpuType::kA100, 1).has_value());
  for (const auto& a : allocs) {
    c.Release(a);
  }
  EXPECT_EQ(c.FreeGpus(GpuType::kA100), 4);
}

TEST(ClusterDeathTest, DoubleReleaseAborts) {
  Cluster c = MakeMotivationCluster();
  const auto a = c.Allocate(GpuType::kA100, 4);
  ASSERT_TRUE(a.has_value());
  c.Release(*a);
  EXPECT_DEATH(c.Release(*a), "double release");
}

TEST(ClusterDeathTest, MismatchedGpusPerNodeAborts) {
  Cluster c;
  c.AddNodes(GpuType::kA100, 1, 4);
  EXPECT_DEATH(c.AddNodes(GpuType::kA100, 1, 8), "same GPU count");
}

TEST(ClusterTest, FreeByTypeSnapshot) {
  Cluster c = MakeSimulatedCluster();
  auto free = c.FreeByType();
  EXPECT_EQ(free[static_cast<int>(GpuType::kA100)], 320);
  const auto a = c.Allocate(GpuType::kA100, 100);
  ASSERT_TRUE(a.has_value());
  free = c.FreeByType();
  EXPECT_EQ(free[static_cast<int>(GpuType::kA100)], 220);
}

TEST(ClusterTest, TopologyForMatchesNodes) {
  const Cluster c = MakeSimulatedCluster();
  EXPECT_EQ(c.TopologyFor(GpuType::kV100).gpus_per_node, 16);
  EXPECT_EQ(c.TopologyFor(GpuType::kA40).gpus_per_node, 2);
}

TEST(ClusterDeathTest, TopologyForMissingTypeAborts) {
  const Cluster c = MakePhysicalTestbed();
  EXPECT_DEATH(c.TopologyFor(GpuType::kA100), "no A100");
}

TEST(ClusterHealthTest, MarkFailedShrinksUsableCapacity) {
  Cluster c = MakeMotivationCluster();
  const int total = c.TotalGpus();
  EXPECT_EQ(c.UsableGpus(), total);
  const int node = c.nodes()[0].id;
  const int node_gpus = c.nodes()[0].total_gpus;
  EXPECT_EQ(c.MarkFailed(node, 0), node_gpus);  // 0 = all free devices
  EXPECT_EQ(c.UsableGpus(), total - node_gpus);
  EXPECT_EQ(c.FailedGpus(), node_gpus);
  EXPECT_EQ(c.TotalGpus(), total);  // physical capacity unchanged
  EXPECT_EQ(c.MarkRecovered(node, 0), node_gpus);
  EXPECT_EQ(c.UsableGpus(), total);
  EXPECT_EQ(c.FailedGpus(), 0);
}

TEST(ClusterHealthTest, MarkFailedOnlyEatsFreeDevices) {
  Cluster c = MakeMotivationCluster();
  const GpuType type = c.nodes()[0].type;
  const auto alloc = c.Allocate(type, c.TotalGpus(type));  // everything busy
  ASSERT_TRUE(alloc.has_value());
  for (const NodeInfo& node : c.nodes()) {
    if (node.type == type) {
      EXPECT_EQ(c.MarkFailed(node.id, 0), 0);  // nothing free to fail
    }
  }
  c.Release(*alloc);
}

TEST(ClusterHealthTest, FailedGpusAreNotAllocatable) {
  Cluster c = MakeMotivationCluster();
  const GpuType type = c.nodes()[0].type;
  const int usable_before = c.UsableGpus(type);
  c.MarkFailed(c.nodes()[0].id, 1);
  EXPECT_FALSE(c.Allocate(type, usable_before).has_value());
  EXPECT_TRUE(c.Allocate(type, usable_before - 1).has_value());
}

TEST(ClusterHealthTest, AllocatePrefersHealthyNodes) {
  Cluster c;
  c.AddNodes(GpuType::kA100, 2, 4);
  c.SetNodeSlowdown(0, 2.0);
  EXPECT_DOUBLE_EQ(c.NodeSlowdown(0), 2.0);
  const auto alloc = c.Allocate(GpuType::kA100, 4);
  ASSERT_TRUE(alloc.has_value());
  // The straggling node 0 is avoided while a healthy node can serve the ask.
  EXPECT_DOUBLE_EQ(c.MaxSlowdown(*alloc), 1.0);
  const auto rest = c.Allocate(GpuType::kA100, 4);
  ASSERT_TRUE(rest.has_value());
  EXPECT_DOUBLE_EQ(c.MaxSlowdown(*rest), 2.0);
}

TEST(ClusterHealthDeathTest, BadNodeIdAborts) {
  Cluster c = MakeMotivationCluster();
  EXPECT_DEATH(c.MarkFailed(9999, 1), "node_id");
  EXPECT_DEATH(c.SetNodeSlowdown(-1, 2.0), "node_id");
  EXPECT_DEATH(c.SetNodeSlowdown(0, 0.5), "below 1.0");
}

}  // namespace
}  // namespace crius
