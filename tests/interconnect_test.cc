#include "src/hw/interconnect.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace crius {
namespace {

GroupTopology NvLinkNode4() {
  return GroupTopology::For(GpuType::kA100, 4);
}

GroupTopology PcieNode2() {
  return GroupTopology::For(GpuType::kA40, 2);
}

TEST(GroupTopologyTest, InheritsGpuSpec) {
  const GroupTopology t = NvLinkNode4();
  EXPECT_DOUBLE_EQ(t.intra_bw, GpuSpecOf(GpuType::kA100).intra_bw);
  EXPECT_DOUBLE_EQ(t.inter_bw, GpuSpecOf(GpuType::kA100).inter_bw);
  EXPECT_EQ(t.gpus_per_node, 4);
}

TEST(AllReduceTest, ZeroCases) {
  const GroupTopology t = NvLinkNode4();
  EXPECT_DOUBLE_EQ(AllReduceTime(t, 0.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(AllReduceTime(t, 1e6, 1), 0.0);
}

TEST(AllReduceTest, MonotoneInBytes) {
  const GroupTopology t = NvLinkNode4();
  EXPECT_LT(AllReduceTime(t, 1e6, 4), AllReduceTime(t, 1e7, 4));
}

TEST(AllReduceTest, IntraNodeRingFormula) {
  const GroupTopology t = NvLinkNode4();
  const double bytes = 1e9;
  const double expected =
      2.0 * (3.0 / 4.0) * bytes / t.intra_bw + 2.0 * 3.0 * t.intra_latency;
  EXPECT_NEAR(AllReduceTime(t, bytes, 4), expected, 1e-12);
}

TEST(AllReduceTest, CrossNodeSlowerThanIntra) {
  const GroupTopology t = NvLinkNode4();
  // 8 GPUs span 2 nodes; the inter-node ring dominates.
  EXPECT_GT(AllReduceTime(t, 1e8, 8), AllReduceTime(t, 1e8, 4));
}

TEST(AllReduceTest, HierarchicalUsesBothLevels) {
  const GroupTopology t = NvLinkNode4();
  const double bytes = 1e9;
  const double intra_part = 2.0 * (3.0 / 4.0) * bytes / t.intra_bw;
  const double inter_part = 2.0 * (1.0 / 2.0) * bytes / t.inter_bw;
  const double got = AllReduceTime(t, bytes, 8);
  EXPECT_GT(got, intra_part);
  EXPECT_GT(got, inter_part);
  EXPECT_LT(got, intra_part + inter_part + 1e-3);
}

TEST(AllReduceDeathTest, NonPackingGroupAborts) {
  const GroupTopology t = NvLinkNode4();
  EXPECT_DEATH(AllReduceTime(t, 1e6, 6), "pack");
}

TEST(AllGatherTest, HalfOfAllReduceIntra) {
  const GroupTopology t = NvLinkNode4();
  const double bytes = 1e8;
  EXPECT_NEAR(AllGatherTime(t, bytes, 4) * 2.0, AllReduceTime(t, bytes, 4), 1e-9);
}

TEST(ReduceScatterTest, SymmetricToAllGather) {
  const GroupTopology t = PcieNode2();
  EXPECT_DOUBLE_EQ(ReduceScatterTime(t, 5e7, 2), AllGatherTime(t, 5e7, 2));
}

TEST(SendRecvTest, CrossNodeSlower) {
  const GroupTopology t = PcieNode2();
  EXPECT_GT(SendRecvTime(t, 1e8, /*cross_node=*/true),
            SendRecvTime(t, 1e8, /*cross_node=*/false));
}

TEST(SendRecvTest, LatencyFloor) {
  const GroupTopology t = PcieNode2();
  EXPECT_GE(SendRecvTime(t, 1.0, false), t.intra_latency);
  EXPECT_DOUBLE_EQ(SendRecvTime(t, 0.0, true), 0.0);
}

TEST(AllToAllTest, IntraNodeOnly) {
  const GroupTopology t = NvLinkNode4();
  const double got = AllToAllTime(t, 1e8, 4);
  EXPECT_GT(got, 0.0);
  // Intra-node all-to-all moves (k-1)/n of the payload over NVLink.
  EXPECT_LT(got, 1e8 / t.intra_bw);
}

TEST(AllToAllTest, CrossNodeDominatedByNic) {
  const GroupTopology t = PcieNode2();
  const double intra_only = AllToAllTime(t, 1e8, 2);
  const double cross = AllToAllTime(t, 1e8, 8);
  EXPECT_GT(cross, intra_only);
}

TEST(CollectiveTimeTest, DispatchMatchesDirectCalls) {
  const GroupTopology t = NvLinkNode4();
  EXPECT_DOUBLE_EQ(CollectiveTime(CollectiveKind::kAllReduce, t, 1e7, 4),
                   AllReduceTime(t, 1e7, 4));
  EXPECT_DOUBLE_EQ(CollectiveTime(CollectiveKind::kAllGather, t, 1e7, 4),
                   AllGatherTime(t, 1e7, 4));
  EXPECT_DOUBLE_EQ(CollectiveTime(CollectiveKind::kAllToAll, t, 1e7, 4),
                   AllToAllTime(t, 1e7, 4));
  // SendRecv: n > gpus_per_node selects the cross-node path.
  EXPECT_DOUBLE_EQ(CollectiveTime(CollectiveKind::kSendRecv, t, 1e7, 8),
                   SendRecvTime(t, 1e7, true));
  EXPECT_DOUBLE_EQ(CollectiveTime(CollectiveKind::kSendRecv, t, 1e7, 2),
                   SendRecvTime(t, 1e7, false));
}

TEST(CollectiveNameTest, AllNamed) {
  for (int k = 0; k < kNumCollectiveKinds; ++k) {
    EXPECT_STRNE(CollectiveName(static_cast<CollectiveKind>(k)), "?");
  }
}

}  // namespace
}  // namespace crius
