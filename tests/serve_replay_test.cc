// The serve subsystem's core guarantee: a recorded live session, replayed
// through the batch simulator, produces bit-identical decision CSVs. The live
// Controller and Simulator::Run share one SimEngine, so this holds for any
// interleaving of ingress commands and controller ticks -- the test sleeps
// between command groups to spread them across ticks, and whatever tick each
// command happens to land on, the log records the applied virtual time and
// the replay must reproduce the run exactly.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "src/serve/controller.h"
#include "src/serve/replay.h"
#include "src/sim/trace_io.h"

namespace crius {
namespace {

TrainingJob BertJob() {
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kBert, 0.76, 256};
  job.iterations = 40;
  job.requested_gpus = 8;
  job.requested_type = GpuType::kA40;
  return job;
}

TrainingJob WresJob() {
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kWideResNet, 1.0, 256};
  job.iterations = 30;
  job.requested_gpus = 4;
  job.requested_type = GpuType::kA10;
  return job;
}

TrainingJob LongMoeJob() {
  TrainingJob job;
  job.spec = ModelSpec{ModelFamily::kMoe, 1.3, 512};
  job.iterations = 100000;  // long-running: the cancel target
  job.requested_gpus = 8;
  job.requested_type = GpuType::kA40;
  return job;
}

void Pause() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }

TEST(ServeReplayTest, DrainedLiveSessionReplaysBitIdentically) {
  SessionMeta meta;  // testbed / crius defaults: what crius_serve ships with
  SessionRuntime runtime = MakeSessionRuntime(meta);

  std::stringstream log_stream;
  SessionLog log(log_stream, meta);

  Controller::Config config;
  config.tick_virtual_seconds = 60.0;
  config.tick_wall_seconds = 0.001;
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        &log, config);
  controller.Start();

  // Arrival burst.
  const auto a = controller.Submit(BertJob());
  const auto b = controller.Submit(WresJob());
  const auto c = controller.Submit(LongMoeJob());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_TRUE(c.ok);
  Pause();

  // One failure + recovery, then cancel the long job so the drain ends.
  ASSERT_FALSE(controller.FailNode(0).has_value());
  Pause();
  ASSERT_FALSE(controller.RecoverNode(0).has_value());
  Pause();
  ASSERT_FALSE(controller.Cancel(c.job_id).has_value());
  Pause();

  ASSERT_FALSE(controller.Shutdown(/*drain=*/true).has_value());
  controller.Join();
  EXPECT_FALSE(controller.interrupted());
  const SimResult live = controller.TakeResult();

  const Controller::Stats stats = controller.GetStats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.infeasible, 0u);
  EXPECT_GE(stats.decisions, 6u);  // 3 submits + fail + recover + cancel

  // The recorded session holds exactly what was injected, in order.
  const Session session = ReadSessionLog(log_stream);
  ASSERT_EQ(session.trace.size(), 3u);
  EXPECT_EQ(session.trace[0].id, a.job_id);
  EXPECT_EQ(session.trace[2].id, c.job_id);
  ASSERT_EQ(session.failures.size(), 2u);
  EXPECT_EQ(session.failures[0].kind, FailureKind::kNodeFail);
  EXPECT_EQ(session.failures[1].kind, FailureKind::kNodeRecover);
  ASSERT_EQ(session.cancels.size(), 1u);
  EXPECT_EQ(session.cancels[0].job_id, c.job_id);

  const SimResult replayed = ReplaySession(session);

  // The headline guarantee: decision CSVs are byte-identical.
  std::ostringstream live_jobs, replay_jobs;
  WriteJobRecordsCsv(live, live_jobs);
  WriteJobRecordsCsv(replayed, replay_jobs);
  EXPECT_EQ(live_jobs.str(), replay_jobs.str());

  std::ostringstream live_events, replay_events;
  WriteEventsCsv(live, live_events);
  WriteEventsCsv(replayed, replay_events);
  EXPECT_EQ(live_events.str(), replay_events.str());

  EXPECT_EQ(live.finished_jobs, replayed.finished_jobs);
  EXPECT_EQ(live.dropped_jobs, replayed.dropped_jobs);
  EXPECT_DOUBLE_EQ(live.makespan, replayed.makespan);
}

TEST(ServeReplayTest, ReconfigSessionReplaysBitIdentically) {
  // Same drained-session guarantee with live reconfiguration on: the meta row
  // records reconfig=1, SimConfigFromMeta re-enables it for the replay, and
  // the policy's decisions are deterministic -- so migrations land at the
  // same virtual times in both runs. FCFS keeps the frozen-placement contrast
  // (any placement change in the live run is the reconfig engine's).
  SessionMeta meta;
  meta.scheduler = "fcfs";
  meta.reconfig = true;
  SessionRuntime runtime = MakeSessionRuntime(meta);
  ASSERT_TRUE(runtime.sim.reconfig.enabled);

  std::stringstream log_stream;
  SessionLog log(log_stream, meta);

  Controller::Config config;
  config.tick_virtual_seconds = 60.0;
  config.tick_wall_seconds = 0.001;
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        &log, config);
  controller.Start();

  // A migration-prone mix (long enough to still be running when the node
  // recovers) plus a failure/recovery cycle: the recovery returns capacity a
  // running job can grow into. Whether a migration fires depends on which
  // tick each command lands on, so the test asserts identity, not count.
  TrainingJob long_bert = BertJob();
  long_bert.iterations = 2000;
  TrainingJob long_wres = WresJob();
  long_wres.iterations = 1500;
  const auto a = controller.Submit(long_bert);
  const auto b = controller.Submit(long_wres);
  const auto c = controller.Submit(LongMoeJob());
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  Pause();
  ASSERT_FALSE(controller.FailNode(0).has_value());
  Pause();
  ASSERT_FALSE(controller.RecoverNode(0).has_value());
  Pause();
  ASSERT_FALSE(controller.Cancel(c.job_id).has_value());
  Pause();

  ASSERT_FALSE(controller.Shutdown(/*drain=*/true).has_value());
  controller.Join();
  const SimResult live = controller.TakeResult();

  // The meta row round-trips the reconfig bit.
  const Session session = ReadSessionLog(log_stream);
  EXPECT_TRUE(session.meta.reconfig);

  const SimResult replayed = ReplaySession(session);
  EXPECT_EQ(replayed.migrations, live.migrations);

  std::ostringstream live_jobs, replay_jobs;
  WriteJobRecordsCsv(live, live_jobs);
  WriteJobRecordsCsv(replayed, replay_jobs);
  EXPECT_EQ(live_jobs.str(), replay_jobs.str());

  std::ostringstream live_events, replay_events;
  WriteEventsCsv(live, live_events);
  WriteEventsCsv(replayed, replay_events);
  EXPECT_EQ(live_events.str(), replay_events.str());

  EXPECT_EQ(live.finished_jobs, replayed.finished_jobs);
  EXPECT_DOUBLE_EQ(live.makespan, replayed.makespan);
}

TEST(ServeReplayTest, StatusesSettleAfterDrain) {
  SessionMeta meta;
  SessionRuntime runtime = MakeSessionRuntime(meta);

  Controller::Config config;
  config.tick_virtual_seconds = 60.0;
  config.tick_wall_seconds = 0.0;
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        /*log=*/nullptr, config);
  controller.Start();

  const auto a = controller.Submit(BertJob());
  ASSERT_TRUE(a.ok);
  ASSERT_FALSE(controller.Shutdown(true).has_value());
  controller.Join();
  (void)controller.TakeResult();

  const Controller::JobStatus status = controller.Query(a.job_id);
  ASSERT_TRUE(status.known);
  EXPECT_EQ(status.state, "finished");
  EXPECT_GE(status.first_start, 0.0);
  EXPECT_GT(status.finish_time, status.first_start);

  EXPECT_FALSE(controller.Query(9999).known);
}

TEST(ServeReplayTest, SubmitAfterShutdownRejectedWithReason) {
  SessionMeta meta;
  SessionRuntime runtime = MakeSessionRuntime(meta);

  Controller::Config config;
  config.tick_wall_seconds = 0.0;
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        nullptr, config);
  controller.Start();
  ASSERT_FALSE(controller.Shutdown(true).has_value());

  const auto rejected = controller.Submit(BertJob());
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.reason, RejectReason::kShuttingDown);
  EXPECT_STREQ(RejectReasonName(rejected.reason), "shutting_down");

  controller.Join();
  (void)controller.TakeResult();
}

}  // namespace
}  // namespace crius
