#include "src/model/opgraph.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

Operator MakeOp(double flops, double params, double act, double tp = 0.0, double a2a = 0.0) {
  Operator op;
  op.fwd_flops_per_sample = flops;
  op.param_bytes = params;
  op.act_bytes_per_sample = act;
  op.tp_comm_bytes_per_sample = tp;
  op.a2a_bytes_per_sample = a2a;
  return op;
}

OpGraph MakeGraph() {
  OpGraph g;
  g.Add(MakeOp(10.0, 100.0, 5.0, 1.0));
  g.Add(MakeOp(20.0, 200.0, 6.0, 2.0, 8.0));
  g.Add(MakeOp(30.0, 300.0, 7.0, 3.0));
  g.Finalize();
  return g;
}

TEST(OpGraphTest, SequentialIds) {
  const OpGraph g = MakeGraph();
  ASSERT_EQ(g.size(), 3u);
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.op(i).id, static_cast<int>(i));
  }
}

TEST(OpGraphTest, RangeAggregates) {
  const OpGraph g = MakeGraph();
  EXPECT_DOUBLE_EQ(g.FwdFlops(0, 3), 60.0);
  EXPECT_DOUBLE_EQ(g.FwdFlops(1, 2), 20.0);
  EXPECT_DOUBLE_EQ(g.FwdFlops(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.ParamBytes(0, 2), 300.0);
  EXPECT_DOUBLE_EQ(g.ActBytes(1, 3), 13.0);
  EXPECT_DOUBLE_EQ(g.TpCommBytes(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(g.A2aBytes(0, 3), 8.0);
  EXPECT_DOUBLE_EQ(g.A2aBytes(0, 1), 0.0);
}

TEST(OpGraphTest, TotalsMatchFullRange) {
  const OpGraph g = MakeGraph();
  EXPECT_DOUBLE_EQ(g.TotalFwdFlops(), g.FwdFlops(0, g.size()));
  EXPECT_DOUBLE_EQ(g.TotalParamBytes(), g.ParamBytes(0, g.size()));
}

TEST(OpGraphTest, BoundaryBytesIsProducerActivation) {
  const OpGraph g = MakeGraph();
  EXPECT_DOUBLE_EQ(g.BoundaryBytes(1), 5.0);
  EXPECT_DOUBLE_EQ(g.BoundaryBytes(2), 6.0);
}

TEST(OpGraphTest, ActMemDefaultsToActBytes) {
  OpGraph g;
  g.Add(MakeOp(1.0, 1.0, 9.0));
  Operator with_mem = MakeOp(1.0, 1.0, 4.0);
  with_mem.act_mem_bytes_per_sample = 10.0;
  g.Add(with_mem);
  g.Finalize();
  EXPECT_DOUBLE_EQ(g.ActMemBytes(0, 1), 9.0);   // defaulted
  EXPECT_DOUBLE_EQ(g.ActMemBytes(1, 2), 10.0);  // explicit
}

TEST(OpGraphDeathTest, QueriesRequireFinalize) {
  OpGraph g;
  g.Add(MakeOp(1.0, 1.0, 1.0));
  EXPECT_DEATH(g.FwdFlops(0, 1), "finalized");
}

TEST(OpGraphDeathTest, EmptyGraphCannotFinalize) {
  OpGraph g;
  EXPECT_DEATH(g.Finalize(), "at least one");
}

TEST(OpGraphDeathTest, DoubleFinalizeAborts) {
  OpGraph g;
  g.Add(MakeOp(1.0, 1.0, 1.0));
  g.Finalize();
  EXPECT_DEATH(g.Finalize(), "finalized");
}

TEST(OpGraphDeathTest, BoundaryBytesBounds) {
  const OpGraph g = MakeGraph();
  EXPECT_DEATH(g.BoundaryBytes(0), "");
  EXPECT_DEATH(g.BoundaryBytes(3), "");
}

}  // namespace
}  // namespace crius
