#include "src/util/mathutil.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

TEST(PowerOfTwoTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(-2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(PowerOfTwoTest, FloorCeil) {
  EXPECT_EQ(FloorPowerOfTwo(1), 1);
  EXPECT_EQ(FloorPowerOfTwo(5), 4);
  EXPECT_EQ(FloorPowerOfTwo(8), 8);
  EXPECT_EQ(FloorPowerOfTwo(1023), 512);
  EXPECT_EQ(CeilPowerOfTwo(1), 1);
  EXPECT_EQ(CeilPowerOfTwo(5), 8);
  EXPECT_EQ(CeilPowerOfTwo(8), 8);
}

TEST(PowerOfTwoTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(64), 6);
}

TEST(CeilDivTest, Basic) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
}

TEST(PowerOfTwoSplitsTest, EnumeratesAllFactorizations) {
  const auto splits = PowerOfTwoSplits(8);
  ASSERT_EQ(splits.size(), 4u);
  for (const auto& s : splits) {
    EXPECT_EQ(s.d * s.t, 8);
    EXPECT_TRUE(IsPowerOfTwo(s.d));
    EXPECT_TRUE(IsPowerOfTwo(s.t));
  }
  EXPECT_EQ(splits.front().t, 1);  // ordered by increasing tp
  EXPECT_EQ(splits.back().t, 8);
}

TEST(PowerOfTwoSplitsTest, One) {
  const auto splits = PowerOfTwoSplits(1);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].d, 1);
  EXPECT_EQ(splits[0].t, 1);
}

TEST(PowersOfTwoUpToTest, Basic) {
  EXPECT_EQ(PowersOfTwoUpTo(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(PowersOfTwoUpTo(10), (std::vector<int64_t>{1, 2, 4, 8}));
}

TEST(InterpolateLinearTest, ExactPoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {10.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 2.0), 40.0);
}

TEST(InterpolateLinearTest, Midpoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {10.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 1.5), 30.0);
}

TEST(InterpolateLinearTest, ExtrapolatesBoundarySlope) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> ys = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(InterpolateLinear(xs, ys, -1.0), -10.0);
}

}  // namespace
}  // namespace crius
