#include "src/parallel/explorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/mathutil.h"

namespace crius {
namespace {

class ExplorerTest : public ::testing::Test {
 protected:
  ExplorerTest() : cluster_(MakeSimulatedCluster()), model_(cluster_), explorer_(&model_) {}

  JobContext Ctx(ModelFamily family, double size, int64_t batch, GpuType type) {
    return model_.MakeContext(ModelSpec{family, size, batch}, type);
  }

  // Independent brute force over all (dp, tp) combos for fixed stages,
  // evaluating complete plans with the exact model.
  double BruteForceBest(const JobContext& ctx, int ngpus, int nstages) {
    const auto ranges = PartitionStages(*ctx.graph, ngpus, nstages);
    std::vector<std::vector<PowerOfTwoSplit>> opts;
    for (const auto& r : ranges) {
      opts.push_back(PowerOfTwoSplits(r.gpus));
    }
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> idx(ranges.size(), 0);
    for (;;) {
      ParallelPlan plan;
      plan.gpu_type = ctx.gpu_type;
      for (size_t s = 0; s < ranges.size(); ++s) {
        const auto& split = opts[s][idx[s]];
        plan.stages.push_back(StagePlan{ranges[s].op_begin, ranges[s].op_end, ranges[s].gpus,
                                        static_cast<int>(split.d), static_cast<int>(split.t)});
      }
      const PlanEval eval = model_.Evaluate(ctx, plan);
      if (eval.feasible) {
        best = std::min(best, eval.iter_time);
      }
      // Increment the mixed-radix counter.
      size_t s = 0;
      while (s < idx.size() && ++idx[s] == opts[s].size()) {
        idx[s] = 0;
        ++s;
      }
      if (s == idx.size()) {
        break;
      }
    }
    return best;
  }

  Cluster cluster_;
  PerfModel model_;
  Explorer explorer_;
};

TEST_F(ExplorerTest, MatchesBruteForceSingleStage) {
  for (GpuType type : {GpuType::kA100, GpuType::kA40, GpuType::kV100}) {
    const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, type);
    for (int n : {1, 2, 4, 8}) {
      const ExploreResult r = explorer_.ExploreWithinStages(ctx, n, 1);
      const double brute = BruteForceBest(ctx, n, 1);
      ASSERT_TRUE(r.best.has_value());
      EXPECT_NEAR(r.best->iter_time, brute, 1e-9) << GpuName(type) << " n=" << n;
    }
  }
}

TEST_F(ExplorerTest, MatchesBruteForceMultiStage) {
  const JobContext ctx = Ctx(ModelFamily::kMoe, 2.4, 256, GpuType::kA40);
  for (int nstages : {2, 4}) {
    const ExploreResult r = explorer_.ExploreWithinStages(ctx, 8, nstages);
    const double brute = BruteForceBest(ctx, 8, nstages);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_NEAR(r.best->iter_time, brute, 1e-9) << "P" << nstages;
  }
}

TEST_F(ExplorerTest, BestPlanIsValidAndFeasible) {
  const JobContext ctx = Ctx(ModelFamily::kWideResNet, 2.0, 256, GpuType::kA100);
  const ExploreResult r = explorer_.FullExplore(ctx, 8);
  ASSERT_TRUE(r.best.has_value());
  ValidatePlan(r.best->plan, *ctx.graph);
  EXPECT_EQ(r.best->plan.total_gpus(), 8);
  const PlanEval eval = model_.Evaluate(ctx, r.best->plan);
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.iter_time, r.best->iter_time);
}

TEST_F(ExplorerTest, FullExploreAtLeastAsGoodAsEveryStageCount) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 2.6, 128, GpuType::kA40);
  const ExploreResult full = explorer_.FullExplore(ctx, 8);
  ASSERT_TRUE(full.best.has_value());
  for (int nstages : CandidateStageCounts(*ctx.graph, 8)) {
    const ExploreResult r = explorer_.ExploreWithinStages(ctx, 8, nstages);
    if (r.best.has_value()) {
      EXPECT_LE(full.best->iter_time, r.best->iter_time + 1e-12);
    }
  }
}

TEST_F(ExplorerTest, InfeasibleEverywhereReturnsNull) {
  // MoE-27B on a single A10 (24 GiB) fits under no plan.
  const JobContext ctx = Ctx(ModelFamily::kMoe, 27.0, 256, GpuType::kA10);
  const ExploreResult r = explorer_.FullExplore(ctx, 1);
  EXPECT_FALSE(r.best.has_value());
}

TEST_F(ExplorerTest, FilterRestrictsChoices) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  // Force tensor-only stages.
  StageOptionFilter tp_only = [](int, int, int tp) { return tp > 1; };
  const ExploreResult r = explorer_.ExploreWithinStages(ctx, 4, 1, tp_only);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.best->plan.stages[0].tp, 1);  // dp-only (tp == 1) was filtered out

  StageOptionFilter dp_only = [](int, int dp, int) { return dp > 1; };
  const ExploreResult r2 = explorer_.ExploreWithinStages(ctx, 4, 1, dp_only);
  ASSERT_TRUE(r2.best.has_value());
  EXPECT_EQ(r2.best->plan.stages[0].tp, 1);
}

TEST_F(ExplorerTest, FilterCanMakeInfeasible) {
  // BERT-2.6B needs tensor parallelism on 40 GiB A100s; banning it OOMs.
  const JobContext ctx = Ctx(ModelFamily::kBert, 2.6, 128, GpuType::kA100);
  StageOptionFilter no_tp = [](int, int, int tp) { return tp == 1; };
  const ExploreResult r = explorer_.ExploreWithinStages(ctx, 2, 1, no_tp);
  EXPECT_FALSE(r.best.has_value());
}

TEST_F(ExplorerTest, AccountingPositiveAndBounded) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const ExploreResult r = explorer_.ExploreWithinStages(ctx, 8, 2);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_GT(r.plans_evaluated, 1);
  EXPECT_GT(r.profile_gpu_seconds, 0.0);
  // Cost cap: at most kPhysicalProfileCap plans charged.
  const double per_plan = (PerfModel::kProfileSetupSeconds +
                           PerfModel::kProfileIters * r.best->iter_time) *
                          8.0;
  EXPECT_LE(r.profile_gpu_seconds, Explorer::kPhysicalProfileCap * per_plan + 1e-6);
}

TEST_F(ExplorerTest, DeterministicAcrossCalls) {
  const JobContext ctx = Ctx(ModelFamily::kMoe, 10.0, 256, GpuType::kA40);
  const ExploreResult a = explorer_.FullExplore(ctx, 16);
  const ExploreResult b = explorer_.FullExplore(ctx, 16);
  ASSERT_TRUE(a.best.has_value());
  ASSERT_TRUE(b.best.has_value());
  EXPECT_DOUBLE_EQ(a.best->iter_time, b.best->iter_time);
  EXPECT_EQ(a.best->plan.ToString(), b.best->plan.ToString());
  EXPECT_EQ(a.plans_evaluated, b.plans_evaluated);
}

TEST_F(ExplorerTest, StageCountBeyondGraphSkipped) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  // nstages > ngpus: no valid partition.
  const ExploreResult r = explorer_.ExploreWithinStages(ctx, 2, 4);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_EQ(r.plans_evaluated, 0);
}

}  // namespace
}  // namespace crius
