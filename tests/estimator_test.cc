#include "src/core/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/parallel/explorer.h"

namespace crius {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest()
      : cluster_(MakeSimulatedCluster()),
        model_(cluster_),
        comm_(cluster_, 42),
        estimator_(&model_, &comm_, 42),
        explorer_(&model_) {}

  JobContext Ctx(const ModelSpec& spec, GpuType type) {
    return model_.MakeContext(spec, type);
  }

  Cluster cluster_;
  PerfModel model_;
  CommProfile comm_;
  CellEstimator estimator_;
  Explorer explorer_;
};

TEST_F(EstimatorTest, AssembledPlanIsValidGridPlan) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  const Cell cell{GpuType::kA100, 8, 2};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  ValidatePlan(est.plan, *ctx.graph);
  EXPECT_EQ(est.plan.total_gpus(), 8);
  EXPECT_EQ(est.plan.num_stages(), 2);
  for (size_t s = 0; s < est.plan.stages.size(); ++s) {
    const StagePlan& sp = est.plan.stages[s];
    // Grid plans are dp-only or tp-only per stage.
    EXPECT_TRUE(sp.dp == 1 || sp.tp == 1) << "stage " << s;
    EXPECT_EQ(est.stage_prefers_tp[s], sp.tp > 1);
  }
}

TEST_F(EstimatorTest, EstimateCloseToMeasuredSamePlan) {
  // Fig. 12a's definition: estimated vs directly-measured iteration time.
  double worst = 1.0;
  int count = 0;
  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kBert, 1.3, 128}, ModelSpec{ModelFamily::kWideResNet, 2.0, 256},
        ModelSpec{ModelFamily::kMoe, 2.4, 256}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA40, GpuType::kV100}) {
      for (int nstages : {1, 2, 4}) {
        const JobContext ctx = Ctx(spec, type);
        const Cell cell{type, 8, nstages};
        const CellEstimate est = estimator_.Estimate(ctx, cell);
        if (!est.feasible) {
          continue;
        }
        const PlanEval measured = model_.Evaluate(ctx, est.plan);
        ASSERT_TRUE(measured.feasible);
        const double acc = 1.0 - std::abs(est.iter_time - measured.iter_time) /
                                     measured.iter_time;
        worst = std::min(worst, acc);
        ++count;
      }
    }
  }
  EXPECT_GE(count, 20);
  EXPECT_GE(worst, 0.85);  // paper: 90.5% worst case
}

TEST_F(EstimatorTest, GridSamplingNeverBeatsTrueOptimumByMuch) {
  // The assembled best is an upper bound on the Cell's optimum up to noise.
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA40);
  const Cell cell{GpuType::kA40, 8, 2};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  const ExploreResult full = explorer_.ExploreWithinStages(ctx, cell.ngpus, cell.nstages);
  ASSERT_TRUE(full.best.has_value());
  EXPECT_GE(est.iter_time, full.best->iter_time * 0.85);
}

TEST_F(EstimatorTest, InfeasibleWhenNoGridPlanFits) {
  // MoE-27B on one A10 fits under neither dp-only nor tp-only.
  const ModelSpec spec{ModelFamily::kMoe, 27.0, 256};
  const JobContext ctx = Ctx(spec, GpuType::kA10);
  const CellEstimate est = estimator_.Estimate(ctx, Cell{GpuType::kA10, 1, 1});
  EXPECT_FALSE(est.feasible);
  EXPECT_TRUE(std::isinf(est.iter_time));
  // Profiling cost was still paid for the attempted compilation.
  EXPECT_GT(est.profile_gpu_seconds, 0.0);
}

TEST_F(EstimatorTest, FeasibilityConsistentWithGridGroundTruth) {
  // Cell-feasible <=> at least one full grid (dp/tp-only) plan fits exactly.
  for (const ModelSpec spec :
       {ModelSpec{ModelFamily::kBert, 2.6, 128}, ModelSpec{ModelFamily::kMoe, 10.0, 256}}) {
    for (GpuType type : {GpuType::kA100, GpuType::kA10}) {
      for (int n : {2, 4, 8}) {
        const JobContext ctx = Ctx(spec, type);
        const Cell cell{type, n, 1};
        const CellEstimate est = estimator_.Estimate(ctx, cell);
        // Single-stage grid options: (n,1) and (1,n).
        const StageRange range{0, ctx.graph->size(), n};
        const bool dp_fits = model_.EvalStage(ctx, range, n, 1, 1).fits;
        const bool tp_fits = n > 1 && model_.EvalStage(ctx, range, 1, n, 1).fits;
        EXPECT_EQ(est.feasible, dp_fits || tp_fits)
            << spec.Name() << " " << cell.ToString();
      }
    }
  }
}

TEST_F(EstimatorTest, PlansAssembledIsTwoToTheStages) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  for (int nstages : {1, 2, 4, 8}) {
    const CellEstimate est = estimator_.Estimate(ctx, Cell{GpuType::kA100, 8, nstages});
    if (!est.feasible) {
      continue;
    }
    // Single-GPU stages have one option; others two minus OOM-dropped ones.
    EXPECT_LE(est.plans_assembled, 1 << nstages);
    EXPECT_GE(est.plans_assembled, 1);
  }
}

TEST_F(EstimatorTest, ProfilingCostIsTwoSingleDevicePasses) {
  // ~2 plans x (compile + a few iterations) on ONE device: well under any
  // distributed profiling budget, and ~minutes at most (§8.2).
  const ModelSpec spec{ModelFamily::kBert, 6.7, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  const CellEstimate est = estimator_.Estimate(ctx, Cell{GpuType::kA100, 16, 4});
  ASSERT_TRUE(est.feasible);
  EXPECT_GT(est.profile_gpu_seconds, 1.0);
  EXPECT_LT(est.profile_gpu_seconds, 10.0 * 60.0);
}

TEST_F(EstimatorTest, CheaperThanDirectProfiling) {
  // Fig. 12b: estimator GPU time << direct plan profiling on all GPUs.
  const ModelSpec spec{ModelFamily::kMoe, 10.0, 256};
  const JobContext ctx = Ctx(spec, GpuType::kA40);
  const Cell cell{GpuType::kA40, 16, 4};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  const double direct = model_.DirectProfileGpuSeconds(ctx, est.plan);
  EXPECT_GT(direct / est.profile_gpu_seconds, 2.0);
}

TEST_F(EstimatorTest, Deterministic) {
  const ModelSpec spec{ModelFamily::kMoe, 2.4, 512};
  const JobContext ctx = Ctx(spec, GpuType::kV100);
  const Cell cell{GpuType::kV100, 16, 4};
  const CellEstimate a = estimator_.Estimate(ctx, cell);
  const CellEstimate b = estimator_.Estimate(ctx, cell);
  EXPECT_DOUBLE_EQ(a.iter_time, b.iter_time);
  EXPECT_EQ(a.plan.ToString(), b.plan.ToString());
}

TEST_F(EstimatorTest, StageCountBeyondLimitsInfeasible) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  const CellEstimate est = estimator_.Estimate(ctx, Cell{GpuType::kA100, 2, 4});
  EXPECT_FALSE(est.feasible);
}

TEST_F(EstimatorTest, TypeMismatchAborts) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  EXPECT_DEATH(estimator_.Estimate(ctx, Cell{GpuType::kA40, 4, 1}), "mismatch");
}

TEST_F(EstimatorTest, MemoryForcedTpStageGetsProbedRange) {
  // BERT-2.6B on A100s: dp-only OOMs, so the single-stage grid only has the
  // tensor-only option. The estimator must probe the half-hybrid point and
  // emit a tuning range that (a) excludes the known-OOM tp=1 and (b) still
  // contains the assembled winner via the tuner's winner-keep rule.
  const ModelSpec spec{ModelFamily::kBert, 2.6, 128};
  const JobContext ctx = Ctx(spec, GpuType::kA100);
  const Cell cell{GpuType::kA100, 8, 1};
  const CellEstimate est = estimator_.Estimate(ctx, cell);
  ASSERT_TRUE(est.feasible);
  ASSERT_EQ(est.stage_tp_range.size(), 1u);
  EXPECT_TRUE(est.stage_prefers_tp[0]);  // only the tensor side survived
  const auto& [lo, hi] = est.stage_tp_range[0];
  EXPECT_GE(lo, 2);  // tp == 1 is known-OOM
  EXPECT_LE(hi, 8);
  // The probe pays additional single-GPU time beyond the two grid profiles.
  const CellEstimate both_fit = estimator_.Estimate(
      Ctx(ModelSpec{ModelFamily::kBert, 1.3, 128}, GpuType::kA100), cell);
  ASSERT_TRUE(both_fit.feasible);
  EXPECT_EQ(both_fit.stage_tp_range.size(), 1u);
}

}  // namespace
}  // namespace crius
