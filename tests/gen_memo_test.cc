#include "src/util/gen_memo.h"

#include <gtest/gtest.h>

#include <string>

namespace crius {
namespace {

constexpr MemoStamp kGen1{1, 0};
constexpr MemoStamp kGen2{1, 1};
constexpr MemoStamp kOtherCluster{2, 0};

TEST(GenMemoTest, FindHitsOnlyMatchingStamp) {
  GenStampedMemo<int, std::string> memo;
  memo.PutIfAbsent(7, 7, kGen1, "v1");
  ASSERT_NE(memo.Find(7, 7, kGen1), nullptr);
  EXPECT_EQ(*memo.Find(7, 7, kGen1), "v1");
  EXPECT_EQ(memo.Find(7, 7, kGen2), nullptr);
  EXPECT_EQ(memo.Find(7, 7, kOtherCluster), nullptr);
  EXPECT_EQ(memo.Find(8, 8, kGen1), nullptr);
}

TEST(GenMemoTest, PutIfAbsentFirstWinsOnSameStamp) {
  GenStampedMemo<int, std::string> memo;
  const std::string& first = memo.PutIfAbsent(1, 1, kGen1, "first");
  const std::string& second = memo.PutIfAbsent(1, 1, kGen1, "second");
  EXPECT_EQ(first, "first");
  EXPECT_EQ(second, "first");
  EXPECT_EQ(&first, &second);  // same stable node
}

TEST(GenMemoTest, PutIfAbsentOverwritesStaleEntry) {
  GenStampedMemo<int, std::string> memo;
  memo.PutIfAbsent(1, 1, kGen1, "old");
  EXPECT_EQ(memo.PutIfAbsent(1, 1, kGen2, "new"), "new");
  EXPECT_EQ(memo.Find(1, 1, kGen1), nullptr);
  EXPECT_EQ(*memo.Find(1, 1, kGen2), "new");
  EXPECT_EQ(memo.size(), 1u);
}

TEST(GenMemoTest, RestampMovesEntryWithoutRecompute) {
  GenStampedMemo<int, std::string> memo;
  memo.PutIfAbsent(1, 1, kGen1, "kept");
  EXPECT_TRUE(memo.Restamp(1, 1, kGen2));
  EXPECT_EQ(memo.Find(1, 1, kGen1), nullptr);
  EXPECT_EQ(*memo.Find(1, 1, kGen2), "kept");
  EXPECT_FALSE(memo.Restamp(99, 99, kGen2));
}

TEST(GenMemoTest, EraseAndEvictIf) {
  GenStampedMemo<int, std::string> memo;
  for (int i = 0; i < 10; ++i) {
    memo.PutIfAbsent(i, static_cast<uint64_t>(i), i < 5 ? kGen1 : kGen2, "v");
  }
  EXPECT_TRUE(memo.Erase(0, 0));
  EXPECT_FALSE(memo.Erase(0, 0));
  EXPECT_EQ(memo.size(), 9u);
  // Evict everything still stamped kGen1.
  const size_t evicted =
      memo.EvictIf([](int, const MemoStamp& stamp) { return stamp == kGen1; });
  EXPECT_EQ(evicted, 4u);
  EXPECT_EQ(memo.size(), 5u);
  EXPECT_TRUE(memo.Contains(7, 7));
  EXPECT_FALSE(memo.Contains(3, 3));
}

TEST(GenMemoTest, ClearEmptiesAllShards) {
  GenStampedMemo<int, int> memo;
  for (int i = 0; i < 64; ++i) {
    memo.PutIfAbsent(i, static_cast<uint64_t>(i * 2654435761u), kGen1, int{i});
  }
  EXPECT_EQ(memo.size(), 64u);
  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_TRUE(memo.empty());
}

}  // namespace
}  // namespace crius
