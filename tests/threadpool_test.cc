#include "src/util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace crius {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;  // far more tasks than threads
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(17, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPoolTest, BackToBackBatchesStress) {
  // Regression test for the inter-batch race: a worker still scanning the
  // deques after finishing one batch must observe the next batch's
  // fn_/remaining_ before it can pop one of the new indices -- otherwise it
  // calls the previous (nulled) fn_ or underflows the counter and the caller
  // deadlocks. Tiny, immediately consecutive batches maximize the window
  // where a stale worker overlaps the next ParallelFor's setup.
  ThreadPool pool(4);
  for (int round = 0; round < 2000; ++round) {
    const size_t n = static_cast<size_t>(2 + round % 7);
    std::atomic<int> count{0};
    pool.ParallelFor(n, [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(count.load(), static_cast<int>(n)) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline execution, no concurrency
  });
  std::vector<size_t> expected(8);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SingleTaskRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(8, [&](size_t outer) {
    // A nested call from inside a pool task must run inline (not deadlock on
    // the pool's batch mutex).
    pool.ParallelFor(8, [&](size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SlotResultsMatchSequential) {
  // The determinism contract: fan-out into caller-owned slots produces exactly
  // what the sequential loop produces.
  auto compute = [](size_t i) { return static_cast<double>(i * i) + 0.5; };
  constexpr size_t kN = 257;
  std::vector<double> sequential(kN);
  for (size_t i = 0; i < kN; ++i) {
    sequential[i] = compute(i);
  }
  ThreadPool pool(5);
  std::vector<double> parallel(kN);
  pool.ParallelFor(kN, [&](size_t i) { parallel[i] = compute(i); });
  EXPECT_EQ(parallel, sequential);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.threads(), 1);
}

TEST(ThreadPoolTest, GlobalPoolConfigurable) {
  const int before = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  std::atomic<int> sum{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
  ThreadPool::SetGlobalThreads(before);
  EXPECT_EQ(ThreadPool::GlobalThreads(), before);
}

}  // namespace
}  // namespace crius
