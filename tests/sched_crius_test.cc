#include "src/sched/crius_sched.h"

#include <gtest/gtest.h>

#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};
const ModelSpec kMedium{ModelFamily::kBert, 1.3, 128};

class CriusSchedTest : public SchedTestBase {
 protected:
  CriusSchedTest() : SchedTestBase(MakeSimulatedCluster()) {}

  CriusScheduler Make(CriusConfig config = CriusConfig{}) {
    return CriusScheduler(&oracle_, config);
  }
};

TEST_F(CriusSchedTest, Names) {
  EXPECT_EQ(Make().name(), "Crius");
  EXPECT_EQ(Make(CriusConfig{.adaptivity_scaling = false}).name(), "Crius-NA");
  EXPECT_EQ(Make(CriusConfig{.heterogeneity_scaling = false}).name(), "Crius-NH");
  EXPECT_EQ(Make(CriusConfig{.deadline_aware = true}).name(), "Crius-DDL");
}

TEST_F(CriusSchedTest, AssignmentsCarryCells) {
  CriusScheduler sched = Make();
  AddQueued(0, kMedium, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  const Assignment& a = d.assignments.at(0);
  EXPECT_GT(a.nstages, 0);  // Crius schedules Cells, not bare shapes
  EXPECT_GT(a.ngpus, 0);
}

TEST_F(CriusSchedTest, UpscalesLoneJobWithFreeResources) {
  // With an empty 1,280-GPU cluster, the 2 x N_G Cell should win.
  CriusScheduler sched = Make();
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_GE(d.assignments.at(0).ngpus, 4);
}

TEST_F(CriusSchedTest, NaPinsGpuCount) {
  CriusScheduler sched = Make(CriusConfig{.adaptivity_scaling = false});
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  AddQueued(1, kMedium, 8, GpuType::kA40, 1.0);
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  ASSERT_TRUE(d.assignments.count(0));
  ASSERT_TRUE(d.assignments.count(1));
  EXPECT_EQ(d.assignments.at(0).ngpus, 4);
  EXPECT_EQ(d.assignments.at(1).ngpus, 8);
}

TEST_F(CriusSchedTest, NhPinsGpuType) {
  CriusScheduler sched = Make(CriusConfig{.heterogeneity_scaling = false});
  AddQueued(0, kSmall, 4, GpuType::kV100, 0.0);
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kV100);
}

TEST_F(CriusSchedTest, DownscalesRunningJobsToAdmitNewOne) {
  // Small testbed: one running job hogs the whole A40 pool; a new arrival
  // should trigger a scaling move that frees room.
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  // Local states against the testbed.
  std::vector<std::unique_ptr<JobState>> states;
  auto add = [&](int64_t id, JobPhase phase, int ngpus, int nstages, double submit) {
    auto s = std::make_unique<JobState>();
    s->job.id = id;
    s->job.spec = kSmall;
    s->job.requested_gpus = 16;
    s->job.requested_type = GpuType::kA40;
    s->job.submit_time = submit;
    s->job.iterations = 1000;
    s->phase = phase;
    if (phase == JobPhase::kRunning) {
      s->gpu_type = GpuType::kA40;
      s->ngpus = ngpus;
      s->nstages = nstages;
      s->iter_time = 1.0;
    }
    states.push_back(std::move(s));
  };
  add(0, JobPhase::kRunning, 32, 1, 0.0);
  add(1, JobPhase::kQueued, 0, 0, 1.0);
  // A10 pool is full too, to force a scaling move rather than an exchange.
  auto a10 = std::make_unique<JobState>();
  a10->job.id = 2;
  a10->job.spec = kSmall;
  a10->job.requested_gpus = 32;
  a10->job.requested_type = GpuType::kA10;
  a10->job.iterations = 1000;
  a10->phase = JobPhase::kRunning;
  a10->gpu_type = GpuType::kA10;
  a10->ngpus = 32;
  a10->nstages = 1;
  a10->iter_time = 1.0;
  states.push_back(std::move(a10));

  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(10.0, views, testbed);
  // The queued job got in...
  ASSERT_TRUE(d.assignments.count(1));
  // ...which is only possible if some running job shrank or moved.
  int used_a40 = 0;
  int used_a10 = 0;
  for (const auto& [id, a] : d.assignments) {
    if (a.type == GpuType::kA40) {
      used_a40 += a.ngpus;
    } else {
      used_a10 += a.ngpus;
    }
  }
  EXPECT_LE(used_a40, 32);
  EXPECT_LE(used_a10, 32);
}

TEST_F(CriusSchedTest, ZeroSearchDepthDisablesScaling) {
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  CriusScheduler sched(&oracle, CriusConfig{.search_depth = 0});
  std::vector<std::unique_ptr<JobState>> states;
  for (int pool = 0; pool < 2; ++pool) {
    auto s = std::make_unique<JobState>();
    s->job.id = pool;
    s->job.spec = kSmall;
    s->job.requested_gpus = 16;
    s->job.requested_type = pool == 0 ? GpuType::kA40 : GpuType::kA10;
    s->job.iterations = 1000;
    s->phase = JobPhase::kRunning;
    s->gpu_type = s->job.requested_type;
    s->ngpus = 32;
    s->nstages = 1;
    s->iter_time = 1.0;
    states.push_back(std::move(s));
  }
  auto q = std::make_unique<JobState>();
  q->job.id = 9;
  q->job.spec = kSmall;
  q->job.requested_gpus = 8;
  q->job.requested_type = GpuType::kA40;
  q->job.iterations = 100;
  q->phase = JobPhase::kQueued;
  states.push_back(std::move(q));
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(0.0, views, testbed);
  EXPECT_FALSE(d.assignments.count(9));  // no moves allowed, no room
}

TEST_F(CriusSchedTest, DeadlineAwareDropsImpossibleJobs) {
  CriusScheduler sched = Make(CriusConfig{.deadline_aware = true});
  JobState* hopeless = AddQueued(0, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/5000000);
  hopeless->job.deadline = 30.0;
  JobState* fine = AddQueued(1, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/50);
  fine->job.deadline = 30.0 * kDay;
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  EXPECT_EQ(d.dropped, std::vector<int64_t>{0});
  EXPECT_TRUE(d.assignments.count(1));
}

TEST_F(CriusSchedTest, OpportunisticJobsYieldToPendingLargeJob) {
  Cluster small;
  small.AddNodes(GpuType::kA100, 2, 4);  // 8 GPUs total
  PerformanceOracle oracle(small, 42);
  CriusScheduler sched(&oracle, CriusConfig{});

  std::vector<std::unique_ptr<JobState>> states;
  // Large job needs all 8 GPUs (requested 8, min cell 4); small jobs fill 2.
  auto big = std::make_unique<JobState>();
  big->job.id = 0;
  big->job.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
  big->job.requested_gpus = 8;
  big->job.requested_type = GpuType::kA100;
  big->job.iterations = 1000;
  big->job.submit_time = 0.0;
  big->phase = JobPhase::kQueued;
  states.push_back(std::move(big));
  for (int i = 1; i <= 2; ++i) {
    auto s = std::make_unique<JobState>();
    s->job.id = i;
    s->job.spec = kSmall;
    s->job.requested_gpus = 2;
    s->job.requested_type = GpuType::kA100;
    s->job.iterations = 1000;
    s->job.submit_time = static_cast<double>(i);
    s->phase = JobPhase::kQueued;
    states.push_back(std::move(s));
  }
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(0.0, views, small);
  // Either the big job runs (possibly after preempting) or, if it fits only
  // pending, the later jobs that DID start are marked opportunistic.
  if (!d.assignments.count(0)) {
    for (const auto& [id, a] : d.assignments) {
      EXPECT_TRUE(a.opportunistic) << "job " << id;
    }
  } else {
    SUCCEED();
  }
}

TEST_F(CriusSchedTest, ProfilingDelayBounded) {
  CriusScheduler sched = Make();
  TrainingJob job;
  job.id = 0;
  job.spec = ModelSpec{ModelFamily::kMoe, 10.0, 256};
  job.requested_gpus = 16;
  job.requested_type = GpuType::kA100;
  const double delay = sched.ProfilingDelay(job, cluster_);
  EXPECT_GT(delay, 0.0);
  EXPECT_LE(delay, 1800.0);  // §8.2: never above 30 minutes
}

TEST_F(CriusSchedTest, KeepsRunningJobWhenNothingBetter) {
  CriusScheduler sched = Make();
  AddRunning(0, kMedium, 8, GpuType::kA100, /*nstages=*/1);
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  ASSERT_TRUE(d.assignments.count(0));
  // With an empty cluster it may upscale, but never below the current shape.
  EXPECT_GE(d.assignments.at(0).ngpus, 4);
}

TEST_F(CriusSchedTest, CapacityRespectedUnderPressure) {
  CriusScheduler sched = Make();
  for (int i = 0; i < 80; ++i) {
    AddQueued(i, kMedium, 16, GpuType::kA100, static_cast<double>(i));
  }
  const ScheduleDecision d = sched.Schedule(0.0, Views(), cluster_);
  CheckCapacity(d);
  EXPECT_GT(d.assignments.size(), 10u);
}

TEST_F(CriusSchedTest, Deterministic) {
  CriusScheduler a = Make();
  CriusScheduler b = Make();
  for (int i = 0; i < 10; ++i) {
    AddQueued(i, kMedium, 8, GpuType::kA40, static_cast<double>(i));
  }
  const ScheduleDecision da = a.Schedule(0.0, Views(), cluster_);
  const ScheduleDecision db = b.Schedule(0.0, Views(), cluster_);
  ASSERT_EQ(da.assignments.size(), db.assignments.size());
  for (const auto& [id, assign] : da.assignments) {
    ASSERT_TRUE(db.assignments.count(id));
    EXPECT_EQ(db.assignments.at(id).type, assign.type);
    EXPECT_EQ(db.assignments.at(id).ngpus, assign.ngpus);
    EXPECT_EQ(db.assignments.at(id).nstages, assign.nstages);
  }
}

TEST_F(CriusSchedTest, MultiMoveSearchFreesRoomAcrossVictims) {
  // Single-type 32-GPU cluster fully held by two BERT-6.7B jobs running at a
  // *suboptimal* Cell (A100x16/P1 -- single-stage is slow for them), so
  // downscaling each to its better A100x8/P2 Cell both frees 8 GPUs and
  // raises total estimated throughput. The incoming MoE-27B only fits on a
  // 16-GPU Cell (its 456-GB optimizer state needs >= 16 x 40-GiB A100s), so
  // placement needs BOTH victims to move: depth 1 fails, depth 2 succeeds.
  Cluster small;
  small.AddNodes(GpuType::kA100, 8, 4);
  PerformanceOracle oracle(small, 42);

  auto make_states = [&]() {
    std::vector<std::unique_ptr<JobState>> states;
    for (int i = 0; i < 2; ++i) {
      auto s = std::make_unique<JobState>();
      s->job.id = i;
      s->job.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
      s->job.requested_gpus = 16;
      s->job.requested_type = GpuType::kA100;
      s->job.iterations = 1000;
      s->phase = JobPhase::kRunning;
      s->gpu_type = GpuType::kA100;
      s->ngpus = 16;
      s->nstages = 1;
      s->iter_time = 10.0;
      states.push_back(std::move(s));
    }
    auto q = std::make_unique<JobState>();
    q->job.id = 9;
    q->job.spec = ModelSpec{ModelFamily::kMoe, 27.0, 256};
    q->job.requested_gpus = 16;
    q->job.requested_type = GpuType::kA100;
    q->job.iterations = 100;
    q->phase = JobPhase::kQueued;
    states.push_back(std::move(q));
    return states;
  };

  // Sanity for the scenario premise: MoE-27B has no Cell under 16 GPUs here.
  {
    TrainingJob probe;
    probe.spec = ModelSpec{ModelFamily::kMoe, 27.0, 256};
    probe.requested_gpus = 16;
    probe.requested_type = GpuType::kA100;
    for (const Cell& cell : GenerateCells(probe, small)) {
      if (cell.ngpus < 16) {
        EXPECT_LE(oracle.EstimatedThroughput(probe.spec, cell), 0.0)
            << cell.ToString() << " unexpectedly feasible";
      }
    }
  }

  for (int depth : {1, 2, 3}) {
    auto states = make_states();
    std::vector<const JobState*> views;
    for (const auto& s : states) {
      views.push_back(s.get());
    }
    CriusConfig config;
    config.search_depth = depth;
    CriusScheduler sched(&oracle, config);
    const ScheduleDecision d = sched.Schedule(0.0, views, small);
    CheckCapacityFor(small, d);
    if (depth == 1) {
      EXPECT_FALSE(d.assignments.count(9)) << "depth 1 cannot free 16 GPUs";
    } else {
      EXPECT_TRUE(d.assignments.count(9)) << "depth " << depth << " should place the job";
    }
  }
}

TEST_F(CriusSchedTest, PlacementOrdersAreValidAndDeterministic) {
  for (CriusPlacementOrder order :
       {CriusPlacementOrder::kFifo, CriusPlacementOrder::kScoreDensity,
        CriusPlacementOrder::kSmallestFirst, CriusPlacementOrder::kBestOfAll}) {
    states_.clear();
    for (int i = 0; i < 30; ++i) {
      AddQueued(i, (i % 2) ? kMedium : kSmall, (i % 3) ? 16 : 4, GpuType::kA100,
                static_cast<double>(i));
    }
    CriusConfig config;
    config.placement_order = order;
    CriusScheduler a(&oracle_, config);
    CriusScheduler b(&oracle_, config);
    const ScheduleDecision da = a.Schedule(0.0, Views(), cluster_);
    const ScheduleDecision db = b.Schedule(0.0, Views(), cluster_);
    CheckCapacity(da);
    ASSERT_EQ(da.assignments.size(), db.assignments.size());
    for (const auto& [id, assign] : da.assignments) {
      ASSERT_TRUE(db.assignments.count(id));
      EXPECT_EQ(db.assignments.at(id).ngpus, assign.ngpus);
    }
  }
}

TEST_F(CriusSchedTest, SmallestFirstPlacesSmallJobsUnderPressure) {
  // One giant request ahead of many small ones on a full-contention pool:
  // smallest-first admits the small jobs that FIFO offers last.
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  std::vector<std::unique_ptr<JobState>> states;
  for (int i = 0; i < 12; ++i) {
    auto s = std::make_unique<JobState>();
    s->job.id = i;
    s->job.spec = kSmall;
    s->job.requested_gpus = i == 0 ? 16 : 2;
    s->job.requested_type = GpuType::kA40;
    s->job.submit_time = static_cast<double>(i);
    s->job.iterations = 100;
    s->phase = JobPhase::kQueued;
    states.push_back(std::move(s));
  }
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  CriusConfig config;
  config.placement_order = CriusPlacementOrder::kSmallestFirst;
  CriusScheduler sched(&oracle, config);
  const ScheduleDecision d = sched.Schedule(0.0, views, testbed);
  CheckCapacityFor(testbed, d);
  int small_placed = 0;
  for (int i = 1; i < 12; ++i) {
    small_placed += d.assignments.count(i);
  }
  EXPECT_EQ(small_placed, 11);
}

}  // namespace
}  // namespace crius
