#include "src/sched/crius_sched.h"

#include <gtest/gtest.h>

#include "src/util/counters.h"
#include "src/util/threadpool.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};
const ModelSpec kMedium{ModelFamily::kBert, 1.3, 128};

class CriusSchedTest : public SchedTestBase {
 protected:
  CriusSchedTest() : SchedTestBase(MakeSimulatedCluster()) {}

  CriusScheduler Make(CriusConfig config = CriusConfig{}) {
    return CriusScheduler(&oracle_, config);
  }
};

TEST_F(CriusSchedTest, Names) {
  EXPECT_EQ(Make().name(), "Crius");
  EXPECT_EQ(Make(CriusConfig{.adaptivity_scaling = false}).name(), "Crius-NA");
  EXPECT_EQ(Make(CriusConfig{.heterogeneity_scaling = false}).name(), "Crius-NH");
  EXPECT_EQ(Make(CriusConfig{.deadline_aware = true}).name(), "Crius-DDL");
}

TEST_F(CriusSchedTest, AssignmentsCarryCells) {
  CriusScheduler sched = Make();
  AddQueued(0, kMedium, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  const Assignment& a = d.assignments.at(0);
  EXPECT_GT(a.nstages, 0);  // Crius schedules Cells, not bare shapes
  EXPECT_GT(a.ngpus, 0);
}

TEST_F(CriusSchedTest, UpscalesLoneJobWithFreeResources) {
  // With an empty 1,280-GPU cluster, the 2 x N_G Cell should win.
  CriusScheduler sched = Make();
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_GE(d.assignments.at(0).ngpus, 4);
}

TEST_F(CriusSchedTest, NaPinsGpuCount) {
  CriusScheduler sched = Make(CriusConfig{.adaptivity_scaling = false});
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  AddQueued(1, kMedium, 8, GpuType::kA40, 1.0);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  ASSERT_TRUE(d.assignments.count(1));
  EXPECT_EQ(d.assignments.at(0).ngpus, 4);
  EXPECT_EQ(d.assignments.at(1).ngpus, 8);
}

TEST_F(CriusSchedTest, NhPinsGpuType) {
  CriusScheduler sched = Make(CriusConfig{.heterogeneity_scaling = false});
  AddQueued(0, kSmall, 4, GpuType::kV100, 0.0);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kV100);
}

TEST_F(CriusSchedTest, DownscalesRunningJobsToAdmitNewOne) {
  // Small testbed: one running job hogs the whole A40 pool; a new arrival
  // should trigger a scaling move that frees room.
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  // Local states against the testbed.
  std::vector<std::unique_ptr<JobState>> states;
  auto add = [&](int64_t id, JobPhase phase, int ngpus, int nstages, double submit) {
    auto s = std::make_unique<JobState>();
    s->job.id = id;
    s->job.spec = kSmall;
    s->job.requested_gpus = 16;
    s->job.requested_type = GpuType::kA40;
    s->job.submit_time = submit;
    s->job.iterations = 1000;
    s->phase = phase;
    if (phase == JobPhase::kRunning) {
      s->gpu_type = GpuType::kA40;
      s->ngpus = ngpus;
      s->nstages = nstages;
      s->iter_time = 1.0;
    }
    states.push_back(std::move(s));
  };
  add(0, JobPhase::kRunning, 32, 1, 0.0);
  add(1, JobPhase::kQueued, 0, 0, 1.0);
  // A10 pool is full too, to force a scaling move rather than an exchange.
  auto a10 = std::make_unique<JobState>();
  a10->job.id = 2;
  a10->job.spec = kSmall;
  a10->job.requested_gpus = 32;
  a10->job.requested_type = GpuType::kA10;
  a10->job.iterations = 1000;
  a10->phase = JobPhase::kRunning;
  a10->gpu_type = GpuType::kA10;
  a10->ngpus = 32;
  a10->nstages = 1;
  a10->iter_time = 1.0;
  states.push_back(std::move(a10));

  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(RoundFor(10.0, views, testbed));
  // The queued job got in...
  ASSERT_TRUE(d.assignments.count(1));
  // ...which is only possible if some running job shrank or moved.
  int used_a40 = 0;
  int used_a10 = 0;
  for (const auto& [id, a] : d.assignments) {
    if (a.type == GpuType::kA40) {
      used_a40 += a.ngpus;
    } else {
      used_a10 += a.ngpus;
    }
  }
  EXPECT_LE(used_a40, 32);
  EXPECT_LE(used_a10, 32);
}

TEST_F(CriusSchedTest, ZeroSearchDepthDisablesScaling) {
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  CriusScheduler sched(&oracle, CriusConfig{.search_depth = 0});
  std::vector<std::unique_ptr<JobState>> states;
  for (int pool = 0; pool < 2; ++pool) {
    auto s = std::make_unique<JobState>();
    s->job.id = pool;
    s->job.spec = kSmall;
    s->job.requested_gpus = 16;
    s->job.requested_type = pool == 0 ? GpuType::kA40 : GpuType::kA10;
    s->job.iterations = 1000;
    s->phase = JobPhase::kRunning;
    s->gpu_type = s->job.requested_type;
    s->ngpus = 32;
    s->nstages = 1;
    s->iter_time = 1.0;
    states.push_back(std::move(s));
  }
  auto q = std::make_unique<JobState>();
  q->job.id = 9;
  q->job.spec = kSmall;
  q->job.requested_gpus = 8;
  q->job.requested_type = GpuType::kA40;
  q->job.iterations = 100;
  q->phase = JobPhase::kQueued;
  states.push_back(std::move(q));
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(RoundFor(0.0, views, testbed));
  EXPECT_FALSE(d.assignments.count(9));  // no moves allowed, no room
}

TEST_F(CriusSchedTest, DeadlineAwareDropsImpossibleJobs) {
  CriusScheduler sched = Make(CriusConfig{.deadline_aware = true});
  JobState* hopeless = AddQueued(0, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/5000000);
  hopeless->job.deadline = 30.0;
  JobState* fine = AddQueued(1, kSmall, 4, GpuType::kA100, 0.0, /*iterations=*/50);
  fine->job.deadline = 30.0 * kDay;
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  EXPECT_EQ(d.dropped, std::vector<int64_t>{0});
  EXPECT_TRUE(d.assignments.count(1));
}

TEST_F(CriusSchedTest, OpportunisticJobsYieldToPendingLargeJob) {
  Cluster small;
  small.AddNodes(GpuType::kA100, 2, 4);  // 8 GPUs total
  PerformanceOracle oracle(small, 42);
  CriusScheduler sched(&oracle, CriusConfig{});

  std::vector<std::unique_ptr<JobState>> states;
  // Large job needs all 8 GPUs (requested 8, min cell 4); small jobs fill 2.
  auto big = std::make_unique<JobState>();
  big->job.id = 0;
  big->job.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
  big->job.requested_gpus = 8;
  big->job.requested_type = GpuType::kA100;
  big->job.iterations = 1000;
  big->job.submit_time = 0.0;
  big->phase = JobPhase::kQueued;
  states.push_back(std::move(big));
  for (int i = 1; i <= 2; ++i) {
    auto s = std::make_unique<JobState>();
    s->job.id = i;
    s->job.spec = kSmall;
    s->job.requested_gpus = 2;
    s->job.requested_type = GpuType::kA100;
    s->job.iterations = 1000;
    s->job.submit_time = static_cast<double>(i);
    s->phase = JobPhase::kQueued;
    states.push_back(std::move(s));
  }
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  const ScheduleDecision d = sched.Schedule(RoundFor(0.0, views, small));
  // Either the big job runs (possibly after preempting) or, if it fits only
  // pending, the later jobs that DID start are marked opportunistic.
  if (!d.assignments.count(0)) {
    for (const auto& [id, a] : d.assignments) {
      EXPECT_TRUE(a.opportunistic) << "job " << id;
    }
  } else {
    SUCCEED();
  }
}

TEST_F(CriusSchedTest, ProfilingDelayBounded) {
  CriusScheduler sched = Make();
  TrainingJob job;
  job.id = 0;
  job.spec = ModelSpec{ModelFamily::kMoe, 10.0, 256};
  job.requested_gpus = 16;
  job.requested_type = GpuType::kA100;
  const double delay = sched.ProfilingDelay(job, cluster_);
  EXPECT_GT(delay, 0.0);
  EXPECT_LE(delay, 1800.0);  // §8.2: never above 30 minutes
}

TEST_F(CriusSchedTest, KeepsRunningJobWhenNothingBetter) {
  CriusScheduler sched = Make();
  AddRunning(0, kMedium, 8, GpuType::kA100, /*nstages=*/1);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  // With an empty cluster it may upscale, but never below the current shape.
  EXPECT_GE(d.assignments.at(0).ngpus, 4);
}

TEST_F(CriusSchedTest, CapacityRespectedUnderPressure) {
  CriusScheduler sched = Make();
  for (int i = 0; i < 80; ++i) {
    AddQueued(i, kMedium, 16, GpuType::kA100, static_cast<double>(i));
  }
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  CheckCapacity(d);
  EXPECT_GT(d.assignments.size(), 10u);
}

TEST_F(CriusSchedTest, Deterministic) {
  CriusScheduler a = Make();
  CriusScheduler b = Make();
  for (int i = 0; i < 10; ++i) {
    AddQueued(i, kMedium, 8, GpuType::kA40, static_cast<double>(i));
  }
  const ScheduleDecision da = a.Schedule(Round(0.0));
  const ScheduleDecision db = b.Schedule(Round(0.0));
  ASSERT_EQ(da.assignments.size(), db.assignments.size());
  for (const auto& [id, assign] : da.assignments) {
    ASSERT_TRUE(db.assignments.count(id));
    EXPECT_EQ(db.assignments.at(id).type, assign.type);
    EXPECT_EQ(db.assignments.at(id).ngpus, assign.ngpus);
    EXPECT_EQ(db.assignments.at(id).nstages, assign.nstages);
  }
}

TEST_F(CriusSchedTest, MultiMoveSearchFreesRoomAcrossVictims) {
  // Single-type 32-GPU cluster fully held by two BERT-6.7B jobs running at a
  // *suboptimal* Cell (A100x16/P1 -- single-stage is slow for them), so
  // downscaling each to its better A100x8/P2 Cell both frees 8 GPUs and
  // raises total estimated throughput. The incoming MoE-27B only fits on a
  // 16-GPU Cell (its 456-GB optimizer state needs >= 16 x 40-GiB A100s), so
  // placement needs BOTH victims to move: depth 1 fails, depth 2 succeeds.
  Cluster small;
  small.AddNodes(GpuType::kA100, 8, 4);
  PerformanceOracle oracle(small, 42);

  auto make_states = [&]() {
    std::vector<std::unique_ptr<JobState>> states;
    for (int i = 0; i < 2; ++i) {
      auto s = std::make_unique<JobState>();
      s->job.id = i;
      s->job.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
      s->job.requested_gpus = 16;
      s->job.requested_type = GpuType::kA100;
      s->job.iterations = 1000;
      s->phase = JobPhase::kRunning;
      s->gpu_type = GpuType::kA100;
      s->ngpus = 16;
      s->nstages = 1;
      s->iter_time = 10.0;
      states.push_back(std::move(s));
    }
    auto q = std::make_unique<JobState>();
    q->job.id = 9;
    q->job.spec = ModelSpec{ModelFamily::kMoe, 27.0, 256};
    q->job.requested_gpus = 16;
    q->job.requested_type = GpuType::kA100;
    q->job.iterations = 100;
    q->phase = JobPhase::kQueued;
    states.push_back(std::move(q));
    return states;
  };

  // Sanity for the scenario premise: MoE-27B has no Cell under 16 GPUs here.
  {
    TrainingJob probe;
    probe.spec = ModelSpec{ModelFamily::kMoe, 27.0, 256};
    probe.requested_gpus = 16;
    probe.requested_type = GpuType::kA100;
    for (const Cell& cell : GenerateCells(probe, small)) {
      if (cell.ngpus < 16) {
        EXPECT_LE(oracle.EstimatedThroughput(probe.spec, cell), 0.0)
            << cell.ToString() << " unexpectedly feasible";
      }
    }
  }

  for (int depth : {1, 2, 3}) {
    auto states = make_states();
    std::vector<const JobState*> views;
    for (const auto& s : states) {
      views.push_back(s.get());
    }
    CriusConfig config;
    config.search_depth = depth;
    CriusScheduler sched(&oracle, config);
    const ScheduleDecision d = sched.Schedule(RoundFor(0.0, views, small));
    CheckCapacityFor(small, d);
    if (depth == 1) {
      EXPECT_FALSE(d.assignments.count(9)) << "depth 1 cannot free 16 GPUs";
    } else {
      EXPECT_TRUE(d.assignments.count(9)) << "depth " << depth << " should place the job";
    }
  }
}

TEST_F(CriusSchedTest, PlacementOrdersAreValidAndDeterministic) {
  for (CriusPlacementOrder order :
       {CriusPlacementOrder::kFifo, CriusPlacementOrder::kScoreDensity,
        CriusPlacementOrder::kSmallestFirst, CriusPlacementOrder::kBestOfAll}) {
    states_.clear();
    for (int i = 0; i < 30; ++i) {
      AddQueued(i, (i % 2) ? kMedium : kSmall, (i % 3) ? 16 : 4, GpuType::kA100,
                static_cast<double>(i));
    }
    CriusConfig config;
    config.placement_order = order;
    CriusScheduler a(&oracle_, config);
    CriusScheduler b(&oracle_, config);
    const ScheduleDecision da = a.Schedule(Round(0.0));
    const ScheduleDecision db = b.Schedule(Round(0.0));
    CheckCapacity(da);
    ASSERT_EQ(da.assignments.size(), db.assignments.size());
    for (const auto& [id, assign] : da.assignments) {
      ASSERT_TRUE(db.assignments.count(id));
      EXPECT_EQ(db.assignments.at(id).ngpus, assign.ngpus);
    }
  }
}

namespace {
// Exact equality of two decisions, field by field.
void ExpectSameDecision(const ScheduleDecision& a, const ScheduleDecision& b) {
  EXPECT_EQ(a.dropped, b.dropped);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (const auto& [id, assign] : a.assignments) {
    ASSERT_TRUE(b.assignments.count(id)) << "job " << id;
    const Assignment& other = b.assignments.at(id);
    EXPECT_EQ(other.type, assign.type) << "job " << id;
    EXPECT_EQ(other.ngpus, assign.ngpus) << "job " << id;
    EXPECT_EQ(other.nstages, assign.nstages) << "job " << id;
    EXPECT_EQ(other.opportunistic, assign.opportunistic) << "job " << id;
  }
}
}  // namespace

TEST_F(CriusSchedTest, FailedScalingSearchLeavesNoSideEffects) {
  // The MultiMoveSearch scenario at depth 1: the search makes one speculative
  // downscale move, cannot place the 16-GPU-minimum MoE-27B, and must roll
  // back. If the rollback restores victim cells and scores exactly, the
  // decision is indistinguishable from never having searched (depth 0).
  Cluster small;
  small.AddNodes(GpuType::kA100, 8, 4);
  PerformanceOracle oracle(small, 42);

  auto decide = [&](int depth) {
    std::vector<std::unique_ptr<JobState>> states;
    for (int i = 0; i < 2; ++i) {
      auto s = std::make_unique<JobState>();
      s->job.id = i;
      s->job.spec = ModelSpec{ModelFamily::kBert, 6.7, 128};
      s->job.requested_gpus = 16;
      s->job.requested_type = GpuType::kA100;
      s->job.iterations = 1000;
      s->phase = JobPhase::kRunning;
      s->gpu_type = GpuType::kA100;
      s->ngpus = 16;
      s->nstages = 1;
      s->iter_time = 10.0;
      states.push_back(std::move(s));
    }
    auto q = std::make_unique<JobState>();
    q->job.id = 9;
    q->job.spec = ModelSpec{ModelFamily::kMoe, 27.0, 256};
    q->job.requested_gpus = 16;
    q->job.requested_type = GpuType::kA100;
    q->job.iterations = 100;
    q->phase = JobPhase::kQueued;
    states.push_back(std::move(q));
    std::vector<const JobState*> views;
    for (const auto& s : states) {
      views.push_back(s.get());
    }
    CriusConfig config;
    config.search_depth = depth;
    CriusScheduler sched(&oracle, config);
    return sched.Schedule(RoundFor(0.0, views, small));
  };

  const ScheduleDecision with_failed_search = decide(1);
  const ScheduleDecision no_search = decide(0);
  EXPECT_FALSE(with_failed_search.assignments.count(9));
  ExpectSameDecision(with_failed_search, no_search);
}

TEST_F(CriusSchedTest, RepeatedScheduleIsIdempotent) {
  // Same scheduler, identical inputs: the second round runs entirely from the
  // warm Cell cache and must reproduce the first decision exactly.
  CriusScheduler sched = Make(CriusConfig{.placement_order = CriusPlacementOrder::kBestOfAll});
  for (int i = 0; i < 20; ++i) {
    AddQueued(i, (i % 2) ? kMedium : kSmall, (i % 3) ? 16 : 4, GpuType::kA100,
              static_cast<double>(i));
  }
  const ScheduleDecision first = sched.Schedule(Round(0.0));
  const ScheduleDecision second = sched.Schedule(Round(0.0));
  ExpectSameDecision(first, second);
}

TEST_F(CriusSchedTest, BestOfAllIdenticalAcrossThreadCounts) {
  // kBestOfAll fans the three placement passes out over the global pool; the
  // chosen decision must be bit-identical to the sequential build.
  for (int i = 0; i < 30; ++i) {
    AddQueued(i, (i % 2) ? kMedium : kSmall, (i % 3) ? 16 : 4, GpuType::kA100,
              static_cast<double>(i));
  }
  CriusConfig config;
  config.placement_order = CriusPlacementOrder::kBestOfAll;

  ThreadPool::SetGlobalThreads(1);
  CriusScheduler sequential(&oracle_, config);
  const ScheduleDecision d1 = sequential.Schedule(Round(0.0));

  ThreadPool::SetGlobalThreads(4);
  CriusScheduler parallel(&oracle_, config);
  const ScheduleDecision d4 = parallel.Schedule(Round(0.0));
  ThreadPool::SetGlobalThreads(1);

  ExpectSameDecision(d1, d4);
}

TEST_F(CriusSchedTest, ClusterHealthChangeInvalidatesCellCache) {
  // A scheduler that lived through a failure + recovery must re-rank from the
  // recovered capacity -- deciding exactly like a scheduler that never saw the
  // degraded cluster. A stale cells_cache_ (built when only 8 GPUs were
  // usable) would lack the larger candidates and diverge.
  Cluster c;
  c.AddNodes(GpuType::kA100, 4, 4);  // 16 GPUs
  PerformanceOracle oracle(c, 42);
  CriusScheduler survivor(&oracle, CriusConfig{});

  auto s = std::make_unique<JobState>();
  s->job.id = 0;
  s->job.spec = kSmall;
  s->job.requested_gpus = 8;
  s->job.requested_type = GpuType::kA100;
  s->job.iterations = 1000;
  s->phase = JobPhase::kQueued;
  std::vector<const JobState*> views = {s.get()};

  c.MarkFailed(2, 0);
  c.MarkFailed(3, 0);  // 8 usable
  const ScheduleDecision degraded = survivor.Schedule(RoundFor(0.0, views, c));
  ASSERT_TRUE(degraded.assignments.count(0));
  EXPECT_LE(degraded.assignments.at(0).ngpus, 8) << "placed beyond usable capacity";

  c.MarkRecovered(2, 0);
  c.MarkRecovered(3, 0);
  const int64_t invalidations_before =
      CounterRegistry::Global().CounterValue("sched.cells_cache_invalidations");
  const ScheduleDecision after_recovery = survivor.Schedule(RoundFor(300.0, views, c));
  EXPECT_EQ(CounterRegistry::Global().CounterValue("sched.cells_cache_invalidations"),
            invalidations_before + 1);

  CriusScheduler fresh(&oracle, CriusConfig{});
  const ScheduleDecision fresh_decision = fresh.Schedule(RoundFor(300.0, views, c));
  ExpectSameDecision(after_recovery, fresh_decision);
  // And the re-ranking actually uses the recovered capacity.
  ASSERT_TRUE(after_recovery.assignments.count(0));
  EXPECT_GE(after_recovery.assignments.at(0).ngpus, degraded.assignments.at(0).ngpus);
}

TEST_F(CriusSchedTest, CompletedJobsEvictedFromCellCache) {
  CriusScheduler sched = Make();
  for (int i = 0; i < 4; ++i) {
    AddQueued(i, kSmall, 4, GpuType::kA100, static_cast<double>(i));
  }
  sched.Schedule(Round(0.0));

  // Jobs 0 and 1 complete: their cache entries must go on the next round.
  states_.erase(states_.begin(), states_.begin() + 2);
  const int64_t evictions_before =
      CounterRegistry::Global().CounterValue("sched.cells_cache_evictions");
  sched.Schedule(Round(300.0));
  EXPECT_EQ(CounterRegistry::Global().CounterValue("sched.cells_cache_evictions"),
            evictions_before + 2);
}

TEST_F(CriusSchedTest, AblationPruningReducesProfilingDelay) {
  // Crius-NA/NH never rank the pruned Cells, so they must not be charged the
  // GPU-seconds to profile them either.
  TrainingJob job;
  job.id = 0;
  job.spec = kMedium;
  job.requested_gpus = 8;
  job.requested_type = GpuType::kA100;
  const double full = Make().ProfilingDelay(job, cluster_);
  const double na = Make(CriusConfig{.adaptivity_scaling = false}).ProfilingDelay(job, cluster_);
  const double nh =
      Make(CriusConfig{.heterogeneity_scaling = false}).ProfilingDelay(job, cluster_);
  ASSERT_LT(full, 1800.0) << "cap would mask the comparison";
  EXPECT_GT(na, 0.0);
  EXPECT_GT(nh, 0.0);
  EXPECT_LT(na, full) << "Crius-NA still pays for pruned sizes";
  // NH profiles exactly one GPU type; pruning the others can only help (LE:
  // the requested type may already dominate the per-type sum).
  EXPECT_LE(nh, full);
}

TEST_F(CriusSchedTest, SmallestFirstPlacesSmallJobsUnderPressure) {
  // One giant request ahead of many small ones on a full-contention pool:
  // smallest-first admits the small jobs that FIFO offers last.
  Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  std::vector<std::unique_ptr<JobState>> states;
  for (int i = 0; i < 12; ++i) {
    auto s = std::make_unique<JobState>();
    s->job.id = i;
    s->job.spec = kSmall;
    s->job.requested_gpus = i == 0 ? 16 : 2;
    s->job.requested_type = GpuType::kA40;
    s->job.submit_time = static_cast<double>(i);
    s->job.iterations = 100;
    s->phase = JobPhase::kQueued;
    states.push_back(std::move(s));
  }
  std::vector<const JobState*> views;
  for (const auto& s : states) {
    views.push_back(s.get());
  }
  CriusConfig config;
  config.placement_order = CriusPlacementOrder::kSmallestFirst;
  CriusScheduler sched(&oracle, config);
  const ScheduleDecision d = sched.Schedule(RoundFor(0.0, views, testbed));
  CheckCapacityFor(testbed, d);
  int small_placed = 0;
  for (int i = 1; i < 12; ++i) {
    small_placed += d.assignments.count(i);
  }
  EXPECT_EQ(small_placed, 11);
}

}  // namespace
}  // namespace crius
