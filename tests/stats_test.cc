#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5.0, 5.0}), 0.0);
}

TEST(GeoMeanTest, Basic) {
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeoMean({8.0}), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
}

TEST(StdDevTest, Basic) {
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({3.0, 3.0, 3.0}), 0.0);
}

TEST(PercentileTest, Interpolation) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 17.5);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 33.0), 7.0);
}

TEST(MedianTest, OddEven) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 9.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(MinMaxSumTest, Basic) {
  EXPECT_DOUBLE_EQ(Max({3.0, 1.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(Min({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(Sum({3.0, 1.0, 2.0}), 6.0);
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  RunningStats rs;
  const std::vector<double> v = {1.0, 5.0, 2.0, 8.0, 4.0};
  for (double x : v) {
    rs.Add(x);
  }
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 20.0);
}

TEST(RunningStatsTest, Empty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 42.0);
  EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

}  // namespace
}  // namespace crius
