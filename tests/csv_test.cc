#include "src/util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace crius {
namespace {

TEST(CsvSplitTest, PlainFields) {
  EXPECT_EQ(csv::SplitLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv::SplitLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(csv::SplitLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(csv::SplitLine(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvSplitTest, QuotedFieldsKeepCommas) {
  EXPECT_EQ(csv::SplitLine("\"a,b\",c"), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(csv::SplitLine("x,\"A100:8x4,A40:4x2\",y"),
            (std::vector<std::string>{"x", "A100:8x4,A40:4x2", "y"}));
}

TEST(CsvSplitTest, DoubledQuotesUnescape) {
  EXPECT_EQ(csv::SplitLine("\"say \"\"hi\"\"\",b"),
            (std::vector<std::string>{"say \"hi\"", "b"}));
}

TEST(CsvSplitTest, CarriageReturnStripped) {
  EXPECT_EQ(csv::SplitLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvEscapeTest, UnremarkableFieldsPassThrough) {
  EXPECT_EQ(csv::EscapeField("plain"), "plain");
  EXPECT_EQ(csv::EscapeField("12.5"), "12.5");
  EXPECT_EQ(csv::EscapeField(""), "");
}

TEST(CsvEscapeTest, SpecialFieldsQuoted) {
  EXPECT_EQ(csv::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(csv::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv::EscapeField("two\nlines"), "\"two\nlines\"");
}

TEST(CsvEscapeTest, RoundTripsThroughSplit) {
  const std::vector<std::string> fields = {"plain", "a,b", "q\"q", "", "multi\nline"};
  std::ostringstream out;
  csv::WriteRow(out, fields);
  // The multi-line field aside (line-oriented readers never see one), a
  // written row splits back into the original fields.
  const std::vector<std::string> simple = {"plain", "a,b", "q\"q", ""};
  std::ostringstream out2;
  csv::WriteRow(out2, simple);
  std::string line = out2.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  line.pop_back();
  EXPECT_EQ(csv::SplitLine(line), simple);
}

TEST(CsvParseTest, NumbersParse) {
  EXPECT_DOUBLE_EQ(csv::ParseDouble("2.5", "x", 1, "test CSV"), 2.5);
  EXPECT_EQ(csv::ParseInt("-7", "x", 1, "test CSV"), -7);
}

TEST(CsvParseDeathTest, BadNumbersAbortWithContext) {
  EXPECT_DEATH(csv::ParseDouble("abc", "params", 7, "test CSV"), "test CSV line 7.*params");
  EXPECT_DEATH(csv::ParseInt("1.5", "count", 3, "test CSV"), "test CSV line 3.*count");
  EXPECT_DEATH(csv::ParseInt("", "count", 4, "test CSV"), "test CSV line 4.*count");
}

TEST(CsvReaderTest, SkipsBlankLinesAndTracksLineNumbers) {
  std::istringstream in("time,kind\n\n1,a\n\n2,b\n");
  csv::Reader reader(in, "test CSV", "time,");
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.Field(0), "1");
  EXPECT_EQ(reader.line_no(), 3);
  ASSERT_TRUE(reader.Next());
  EXPECT_EQ(reader.Field(1), "b");
  EXPECT_EQ(reader.line_no(), 5);
  EXPECT_FALSE(reader.Next());
}

TEST(CsvReaderTest, TypedAccessors) {
  std::istringstream in("time,kind,n\n2.5,x,42\n");
  csv::Reader reader(in, "test CSV", "time,");
  ASSERT_TRUE(reader.Next());
  reader.ExpectFields(3);
  EXPECT_DOUBLE_EQ(reader.Double(0, "time"), 2.5);
  EXPECT_EQ(reader.Int(2, "n"), 42);
}

TEST(CsvReaderDeathTest, MissingHeaderAborts) {
  std::istringstream in("1,a\n");
  csv::Reader reader(in, "test CSV", "time,");
  EXPECT_DEATH(reader.Next(), "missing header");
}

TEST(CsvReaderDeathTest, WrongArityAborts) {
  std::istringstream in("time,kind\n1,a,extra\n");
  csv::Reader reader(in, "test CSV", "time,");
  ASSERT_TRUE(reader.Next());
  EXPECT_DEATH(reader.ExpectFields(2), "expected 2 fields");
}

}  // namespace
}  // namespace crius
