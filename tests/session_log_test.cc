#include "src/serve/session_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace crius {
namespace {

SessionMeta SampleMeta() {
  SessionMeta meta;
  meta.cluster_spec = "A100:8x4,A40:4x2";  // commas: exercises CSV quoting
  meta.scheduler = "gavel";
  meta.seed = 1234;
  meta.search_depth = 2;
  meta.deadline_aware = true;
  meta.incremental = false;
  meta.schedule_interval = 123.25;
  meta.restart_overhead = 45.5;
  meta.charge_profiling = false;
  return meta;
}

TrainingJob SampleJob() {
  TrainingJob job;
  job.id = 7;
  job.spec = ModelSpec{ModelFamily::kMoe, 2.4, 512};
  job.iterations = 321;
  job.submit_time = 60.0;
  job.requested_gpus = 16;
  job.requested_type = GpuType::kA40;
  return job;
}

TEST(SessionMetaTest, DetailRoundTrip) {
  const SessionMeta meta = SampleMeta();
  const SessionMeta parsed = ParseSessionMeta(SerializeSessionMeta(meta), 2);
  EXPECT_EQ(parsed.cluster_spec, meta.cluster_spec);
  EXPECT_EQ(parsed.scheduler, meta.scheduler);
  EXPECT_EQ(parsed.seed, meta.seed);
  EXPECT_EQ(parsed.search_depth, meta.search_depth);
  EXPECT_EQ(parsed.deadline_aware, meta.deadline_aware);
  EXPECT_EQ(parsed.incremental, meta.incremental);
  EXPECT_DOUBLE_EQ(parsed.schedule_interval, meta.schedule_interval);
  EXPECT_DOUBLE_EQ(parsed.restart_overhead, meta.restart_overhead);
  EXPECT_EQ(parsed.charge_profiling, meta.charge_profiling);
}

TEST(SessionLogTest, RoundTripPreservesEverything) {
  std::stringstream ss;
  {
    SessionLog log(ss, SampleMeta());
    TrainingJob a = SampleJob();
    log.AppendSubmit(60.0, a);
    TrainingJob b = SampleJob();
    b.id = 8;
    b.spec = ModelSpec{ModelFamily::kBert, 1.3, 256};
    b.submit_time = 120.0;
    b.deadline = 9999.5;
    log.AppendSubmit(120.0, b);
    log.AppendFailNode(180.0, 3);
    log.AppendRecoverNode(240.0, 3);
    log.AppendCancel(300.0, 8);
  }

  const Session session = ReadSessionLog(ss);

  EXPECT_EQ(session.meta.cluster_spec, "A100:8x4,A40:4x2");
  EXPECT_EQ(session.meta.scheduler, "gavel");

  ASSERT_EQ(session.trace.size(), 2u);
  const TrainingJob& a = session.trace[0];
  EXPECT_EQ(a.id, 7);
  EXPECT_TRUE(a.spec == (ModelSpec{ModelFamily::kMoe, 2.4, 512}));
  EXPECT_EQ(a.iterations, 321);
  EXPECT_DOUBLE_EQ(a.submit_time, 60.0);
  EXPECT_EQ(a.requested_gpus, 16);
  EXPECT_EQ(a.requested_type, GpuType::kA40);
  EXPECT_FALSE(a.deadline.has_value());
  const TrainingJob& b = session.trace[1];
  EXPECT_EQ(b.id, 8);
  ASSERT_TRUE(b.deadline.has_value());
  EXPECT_DOUBLE_EQ(*b.deadline, 9999.5);

  ASSERT_EQ(session.failures.size(), 2u);
  EXPECT_EQ(session.failures[0].kind, FailureKind::kNodeFail);
  EXPECT_EQ(session.failures[0].node_id, 3);
  EXPECT_DOUBLE_EQ(session.failures[0].time, 180.0);
  EXPECT_EQ(session.failures[1].kind, FailureKind::kNodeRecover);

  ASSERT_EQ(session.cancels.size(), 1u);
  EXPECT_EQ(session.cancels[0].job_id, 8);
  EXPECT_DOUBLE_EQ(session.cancels[0].time, 300.0);
}

TEST(SessionLogTest, DoublesRoundTripExactly) {
  std::stringstream ss;
  SessionMeta meta;
  meta.schedule_interval = 1.0 / 3.0;
  {
    SessionLog log(ss, meta);
    TrainingJob job = SampleJob();
    job.submit_time = 0.1 + 0.2;  // not representable: exercises max_digits10
    log.AppendSubmit(job.submit_time, job);
  }
  const Session session = ReadSessionLog(ss);
  EXPECT_EQ(session.meta.schedule_interval, 1.0 / 3.0);
  ASSERT_EQ(session.trace.size(), 1u);
  EXPECT_EQ(session.trace[0].submit_time, 0.1 + 0.2);
}

TEST(SessionLogTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/crius_session_log_test.csv";
  {
    SessionLog log(path, SampleMeta());
    log.AppendSubmit(60.0, SampleJob());
  }
  const Session session = ReadSessionLogFile(path);
  EXPECT_EQ(session.meta.seed, 1234u);
  ASSERT_EQ(session.trace.size(), 1u);
  EXPECT_EQ(session.trace[0].id, 7);
}

std::string Header() {
  return "time,kind,job_id,node_id,family,params_billion,global_batch,iterations,"
         "requested_gpus,requested_type,deadline,detail\n";
}

std::string MetaRow() {
  return "0,meta,-1,-1,,,,,,,," + SerializeSessionMeta(SessionMeta{}) + "\n";
}

TEST(SessionLogDeathTest, MissingHeaderAborts) {
  std::stringstream ss(MetaRow());
  EXPECT_DEATH(ReadSessionLog(ss), "missing header");
}

TEST(SessionLogDeathTest, MissingMetaRowAborts) {
  std::stringstream ss(Header() + "60,submit,1,-1,BERT,1.3,256,10,8,A100,,\n");
  EXPECT_DEATH(ReadSessionLog(ss), "meta");
}

TEST(SessionLogDeathTest, DuplicateMetaRowAborts) {
  std::stringstream ss(Header() + MetaRow() + MetaRow());
  EXPECT_DEATH(ReadSessionLog(ss), "meta");
}

TEST(SessionLogDeathTest, WrongArityAborts) {
  std::stringstream ss(Header() + MetaRow() + "60,submit,1\n");
  EXPECT_DEATH(ReadSessionLog(ss), "expected 12 fields");
}

TEST(SessionLogDeathTest, UnknownKindAborts) {
  std::stringstream ss(Header() + MetaRow() + "60,resize,1,-1,,,,,,,,\n");
  EXPECT_DEATH(ReadSessionLog(ss), "unknown kind");
}

TEST(SessionLogDeathTest, UnknownFamilyAborts) {
  std::stringstream ss(Header() + MetaRow() + "60,submit,1,-1,GPT,1.3,256,10,8,A100,,\n");
  EXPECT_DEATH(ReadSessionLog(ss), "family");
}

TEST(SessionLogDeathTest, BadNumberAborts) {
  std::stringstream ss(Header() + MetaRow() + "abc,cancel,1,-1,,,,,,,,\n");
  EXPECT_DEATH(ReadSessionLog(ss), "bad time");
}

}  // namespace
}  // namespace crius
