// Tests for the machine-readable metric exporters
// (src/util/metrics_export.h): JSON round-trip, Prometheus golden output,
// label-ordering determinism, and the periodic CSV writer.

#include "src/util/metrics_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/counters.h"

namespace crius {
namespace {

class MetricsExportTest : public ::testing::Test {
 protected:
  void SetUp() override { CounterRegistry::Global().Reset(); }
  void TearDown() override { CounterRegistry::Global().Reset(); }
};

// Hand-built snapshot with one of everything, labels included.
MetricsSnapshot MakeSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back(
      {"serve.ingress.rejected_by_reason", {{"reason", "queue_full"}}, 3.0});
  snapshot.counters.push_back({"serve.ticks", {}, 42.0});
  snapshot.gauges.push_back({"serve.queue_depth", {}, 7.0});
  HistogramSample hist;
  hist.name = "serve.phase_ms";
  hist.labels = {{"phase", "drain"}};
  hist.value = HistogramSnapshot{2, 3.0, 1.5, 1.0, 2.0, 1.5, 2.0, 2.0};
  snapshot.histograms.push_back(std::move(hist));
  return snapshot;
}

TEST_F(MetricsExportTest, JsonRoundTripPreservesEverything) {
  const MetricsSnapshot original = MakeSnapshot();
  const std::string text = MetricsToJson(original, /*indent=*/2);
  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsJson(text, &parsed, &error)) << error;

  ASSERT_EQ(parsed.counters.size(), 2u);
  EXPECT_EQ(parsed.counters[0].name, "serve.ingress.rejected_by_reason");
  EXPECT_EQ(parsed.counters[0].labels, (MetricLabels{{"reason", "queue_full"}}));
  EXPECT_DOUBLE_EQ(parsed.counters[0].value, 3.0);
  EXPECT_EQ(parsed.counters[1].name, "serve.ticks");
  EXPECT_TRUE(parsed.counters[1].labels.empty());
  EXPECT_DOUBLE_EQ(parsed.counters[1].value, 42.0);

  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.gauges[0].value, 7.0);

  ASSERT_EQ(parsed.histograms.size(), 1u);
  const HistogramSample& h = parsed.histograms[0];
  EXPECT_EQ(h.name, "serve.phase_ms");
  EXPECT_EQ(h.labels, (MetricLabels{{"phase", "drain"}}));
  EXPECT_EQ(h.value.count, 2u);
  EXPECT_DOUBLE_EQ(h.value.sum, 3.0);
  EXPECT_DOUBLE_EQ(h.value.mean, 1.5);
  EXPECT_DOUBLE_EQ(h.value.min, 1.0);
  EXPECT_DOUBLE_EQ(h.value.max, 2.0);
  EXPECT_DOUBLE_EQ(h.value.p50, 1.5);
  EXPECT_DOUBLE_EQ(h.value.p95, 2.0);
  EXPECT_DOUBLE_EQ(h.value.p99, 2.0);

  // Compact and pretty forms parse to the same snapshot.
  MetricsSnapshot compact;
  ASSERT_TRUE(ParseMetricsJson(MetricsToJson(original), &compact, &error)) << error;
  EXPECT_EQ(compact.counters.size(), parsed.counters.size());
}

TEST_F(MetricsExportTest, JsonRoundTripThroughLiveRegistry) {
  CounterRegistry& registry = CounterRegistry::Global();
  registry.GetCounter("test.export_counter").Add(5);
  registry.GetCounter("test.labeled", {{"shard", "0"}, {"scheduler", "crius"}}).Add(2);
  registry.GetGauge("test.export_gauge").Set(1.25);
  registry.GetHistogram("test.export_hist", {{"phase", "apply"}}).Record(4.0);

  const std::string text = MetricsToJson(registry.Snapshot());
  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsJson(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.counters.size(), 2u);
  // Snapshot order is canonical-name order: "test.export_counter" sorts
  // before "test.labeled{...}".
  EXPECT_EQ(parsed.counters[0].name, "test.export_counter");
  EXPECT_EQ(parsed.counters[1].name, "test.labeled");
  EXPECT_EQ(parsed.counters[1].labels,
            (MetricLabels{{"scheduler", "crius"}, {"shard", "0"}}));
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].value.count, 1u);
  EXPECT_DOUBLE_EQ(parsed.histograms[0].value.sum, 4.0);
}

TEST_F(MetricsExportTest, ParseRejectsMalformedDocuments) {
  MetricsSnapshot out;
  std::string error;
  EXPECT_FALSE(ParseMetricsJson("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  // Wrong schema version.
  EXPECT_FALSE(ParseMetricsJson(R"({"schema":99,"counters":[]})", &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Counters must be an array.
  EXPECT_FALSE(ParseMetricsJson(R"({"schema":1,"counters":{}})", &out, &error));
  // Entries need a name.
  EXPECT_FALSE(ParseMetricsJson(R"({"schema":1,"counters":[{"value":1}]})", &out, &error));
  // Label values must be strings.
  EXPECT_FALSE(ParseMetricsJson(
      R"({"schema":1,"counters":[{"name":"x","labels":{"k":1},"value":1}]})", &out, &error));
  // Top level must be an object.
  EXPECT_FALSE(ParseMetricsJson("[1,2]", &out, &error));
}

TEST_F(MetricsExportTest, PrometheusGolden) {
  const std::string expected =
      "# TYPE serve_ingress_rejected_by_reason counter\n"
      "serve_ingress_rejected_by_reason{reason=\"queue_full\"} 3\n"
      "# TYPE serve_ticks counter\n"
      "serve_ticks 42\n"
      "# TYPE serve_queue_depth gauge\n"
      "serve_queue_depth 7\n"
      "# TYPE serve_phase_ms summary\n"
      "serve_phase_ms{phase=\"drain\",quantile=\"0.5\"} 1.5\n"
      "serve_phase_ms{phase=\"drain\",quantile=\"0.95\"} 2\n"
      "serve_phase_ms{phase=\"drain\",quantile=\"0.99\"} 2\n"
      "serve_phase_ms_sum{phase=\"drain\"} 3\n"
      "serve_phase_ms_count{phase=\"drain\"} 2\n";
  EXPECT_EQ(MetricsToPrometheus(MakeSnapshot()), expected);
}

TEST_F(MetricsExportTest, PrometheusEscapesLabelValuesAndSanitizesNames) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"a.b-c", {{"msg", "say \"hi\"\nnow"}}, 1.0});
  const std::string text = MetricsToPrometheus(snapshot);
  EXPECT_NE(text.find("a_b_c{msg=\"say \\\"hi\\\"\\nnow\"} 1\n"), std::string::npos) << text;
}

TEST_F(MetricsExportTest, LabelOrderingIsDeterministic) {
  // The same label set written in two different orders canonicalizes to one
  // name and therefore one registry entry.
  const std::string a =
      CanonicalMetricName("m", MetricLabels{{"zeta", "1"}, {"alpha", "2"}});
  const std::string b =
      CanonicalMetricName("m", MetricLabels{{"alpha", "2"}, {"zeta", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, R"(m{alpha="2",zeta="1"})");

  CounterRegistry& registry = CounterRegistry::Global();
  registry.GetCounter("test.order", {{"b", "2"}, {"a", "1"}}).Add(1);
  registry.GetCounter("test.order", {{"a", "1"}, {"b", "2"}}).Add(1);
  EXPECT_EQ(registry.CounterValue(
                CanonicalMetricName("test.order", {{"a", "1"}, {"b", "2"}})),
            2);
  // Exporter output is byte-identical run to run given the same recordings.
  EXPECT_EQ(MetricsToJson(registry.Snapshot()), MetricsToJson(registry.Snapshot()));
}

TEST_F(MetricsExportTest, WriteMetricsJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/crius_metrics_export_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteMetricsJsonFile(path, MakeSnapshot()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  MetricsSnapshot parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsJson(buffer.str(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.counters.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(MetricsExportTest, CsvWriterLocksHeaderOnFirstAppend) {
  const std::string path = ::testing::TempDir() + "/crius_metrics_export_test.csv";
  std::remove(path.c_str());
  MetricsCsvWriter writer(path);

  MetricsSnapshot first;
  first.counters.push_back({"c.one", {}, 1.0});
  first.histograms.push_back(
      {"h.lat", {{"phase", "x"}}, HistogramSnapshot{1, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0}});
  ASSERT_TRUE(writer.Append(10.0, first));
  // Columns: scalar canonical name + histogram-derived p50/p95/count.
  const std::vector<std::string> expected_columns = {
      "c.one", R"(h.lat{phase="x"}.count)", R"(h.lat{phase="x"}.p50)",
      R"(h.lat{phase="x"}.p95)"};
  EXPECT_EQ(writer.columns(), expected_columns);

  // A metric born after the header is dropped; a vanished one reads 0.
  MetricsSnapshot second;
  second.counters.push_back({"c.one", {}, 2.0});
  second.counters.push_back({"c.late", {}, 99.0});
  ASSERT_TRUE(writer.Append(20.0, second));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);  // header + 2 rows
  // Canonical names containing commas (the label block) are CSV-quoted.
  EXPECT_EQ(lines[0],
            "time,c.one,\"h.lat{phase=\"\"x\"\"}.count\",\"h.lat{phase=\"\"x\"\"}.p50\","
            "\"h.lat{phase=\"\"x\"\"}.p95\"");
  EXPECT_EQ(lines[1], "10,1,1,5,5");
  EXPECT_EQ(lines[2], "20,2,0,0,0");  // c.late dropped, histogram vanished -> 0
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crius
