// Tests for the generic JSON tree (src/util/json.h): builders, parse /
// serialize round-trips, deterministic output, and error reporting.

#include "src/util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace crius {
namespace {

TEST(JsonTest, BuildersProduceExpectedKinds) {
  EXPECT_TRUE(Json::Null().is_null());
  EXPECT_TRUE(Json::Bool(true).is_bool());
  EXPECT_TRUE(Json::Number(3.5).is_number());
  EXPECT_TRUE(Json::Str("x").is_string());
  EXPECT_TRUE(Json::Array().is_array());
  EXPECT_TRUE(Json::Object().is_object());
  EXPECT_TRUE(Json().is_null());  // default-constructed is null
}

TEST(JsonTest, ObjectKeepsInsertionOrderAndReplacesInPlace) {
  Json obj = Json::Object();
  obj.Set("zulu", Json::Number(1));
  obj.Set("alpha", Json::Number(2));
  obj.Set("mike", Json::Number(3));
  obj.Set("zulu", Json::Number(9));  // replace keeps first-insertion slot
  ASSERT_EQ(obj.fields().size(), 3u);
  EXPECT_EQ(obj.fields()[0].first, "zulu");
  EXPECT_EQ(obj.fields()[0].second.number(), 9.0);
  EXPECT_EQ(obj.fields()[1].first, "alpha");
  EXPECT_EQ(obj.fields()[2].first, "mike");
  EXPECT_EQ(obj.Serialize(), R"({"zulu":9,"alpha":2,"mike":3})");
}

TEST(JsonTest, AccessorsFallBackOnMissingOrMismatchedKind) {
  Json obj = Json::Object();
  obj.Set("n", Json::Number(4.0));
  obj.Set("s", Json::Str("hi"));
  obj.Set("b", Json::Bool(true));
  EXPECT_DOUBLE_EQ(obj.NumberOr("n", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(obj.NumberOr("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(obj.NumberOr("s", -1.0), -1.0);  // kind mismatch
  EXPECT_EQ(obj.StringOr("s", "fb"), "hi");
  EXPECT_EQ(obj.StringOr("n", "fb"), "fb");
  EXPECT_TRUE(obj.BoolOr("b", false));
  EXPECT_TRUE(obj.BoolOr("missing", true));
  EXPECT_EQ(obj.Find("missing"), nullptr);
  ASSERT_NE(obj.Find("n"), nullptr);
}

TEST(JsonTest, SerializeCompactAndPretty) {
  Json obj = Json::Object();
  obj.Set("a", Json::Number(1));
  Json arr = Json::Array();
  arr.Push(Json::Bool(false));
  arr.Push(Json::Null());
  obj.Set("list", std::move(arr));
  EXPECT_EQ(obj.Serialize(), R"({"a":1,"list":[false,null]})");
  const std::string pretty = obj.Serialize(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1,"), std::string::npos);
  EXPECT_NE(pretty.find("\"list\": [\n"), std::string::npos);
}

TEST(JsonTest, ParseSerializeRoundTrip) {
  const std::string text =
      R"({"name":"crius","pi":3.14159,"neg":-0.5,"big":1e6,"flag":true,)"
      R"("nothing":null,"nested":{"inner":[1,2,3],"s":"a\"b\\c"}})";
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(text, &parsed, &error)) << error;
  // Serialize -> parse -> serialize must be a fixed point.
  const std::string once = parsed.Serialize();
  Json reparsed;
  ASSERT_TRUE(Json::Parse(once, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.Serialize(), once);
  EXPECT_EQ(parsed.StringOr("name", ""), "crius");
  EXPECT_DOUBLE_EQ(parsed.NumberOr("pi", 0.0), 3.14159);
  const Json* nested = parsed.Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->StringOr("s", ""), "a\"b\\c");
  const Json* inner = nested->Find("inner");
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(inner->items().size(), 3u);
  EXPECT_DOUBLE_EQ(inner->items()[2].number(), 3.0);
}

TEST(JsonTest, ParseHandlesEscapes) {
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(R"(["\n\t\r\b\f\/\u0041"])", &parsed, &error)) << error;
  ASSERT_EQ(parsed.items().size(), 1u);
  EXPECT_EQ(parsed.items()[0].str(), "\n\t\r\b\f/A");
}

TEST(JsonTest, EscapeStringQuotesAndControls) {
  EXPECT_EQ(Json::EscapeString("plain"), "\"plain\"");
  EXPECT_EQ(Json::EscapeString("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(Json::EscapeString("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(Json::EscapeString(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, ParseRejectsMalformedInputWithOffset) {
  struct Case {
    const char* text;
  };
  const Case cases[] = {
      {""},            // empty input
      {"{"},           // unterminated object
      {"[1,2,"},       // unterminated array
      {"{\"a\" 1}"},   // missing colon
      {"[1] trailing"},  // trailing garbage
      {"{'a':1}"},     // single quotes
      {"[01]"},        // leading zero is fine per strtod but "nan" is not:
      {"nan"},
      {"\"unterminated"},
  };
  for (const Case& c : cases) {
    // "[01]" parses under permissive number readers; only assert that a
    // failure, when reported, carries a message. The hard-malformed cases
    // must fail.
    Json out;
    std::string error;
    const bool ok = Json::Parse(c.text, &out, &error);
    if (std::string(c.text) == "[01]") {
      continue;  // implementation-defined; not part of the contract
    }
    EXPECT_FALSE(ok) << "input: " << c.text;
    EXPECT_FALSE(error.empty()) << "input: " << c.text;
  }
}

TEST(JsonTest, ParseReportsByteOffset) {
  Json out;
  std::string error;
  ASSERT_FALSE(Json::Parse(R"({"ok":true,broken})", &out, &error));
  // The offset of the first bad byte (the 'b' at index 11) should appear in
  // the message so operators can locate the problem in large files.
  EXPECT_NE(error.find("11"), std::string::npos) << error;
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  Json out;
  std::string error;
  EXPECT_FALSE(Json::Parse(deep, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, FormatJsonNumberShortestRoundTrip) {
  EXPECT_EQ(FormatJsonNumber(0.0), "0");
  EXPECT_EQ(FormatJsonNumber(-0.0), "0");
  EXPECT_EQ(FormatJsonNumber(1.0), "1");
  EXPECT_EQ(FormatJsonNumber(0.5), "0.5");
  EXPECT_EQ(FormatJsonNumber(3.0), "3");
  // Shortest form that round-trips, not a fixed precision.
  EXPECT_EQ(FormatJsonNumber(0.1), "0.1");
}

}  // namespace
}  // namespace crius
