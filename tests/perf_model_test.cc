#include "src/parallel/perf_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/util/units.h"

namespace crius {
namespace {

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest() : cluster_(MakeSimulatedCluster()), model_(cluster_) {}

  JobContext Ctx(ModelFamily family, double size, int64_t batch, GpuType type) {
    return model_.MakeContext(ModelSpec{family, size, batch}, type);
  }

  // Uniform-split plan helper: `nstages` FLOPs-balanced stages, all (dp, tp).
  ParallelPlan UniformPlan(const JobContext& ctx, int ngpus, int nstages, int dp, int tp) {
    ParallelPlan plan;
    plan.gpu_type = ctx.gpu_type;
    const auto ranges = PartitionStages(*ctx.graph, ngpus, nstages);
    for (const StageRange& r : ranges) {
      plan.stages.push_back(StagePlan{r.op_begin, r.op_end, r.gpus, dp, tp});
    }
    return plan;
  }

  Cluster cluster_;
  PerfModel model_;
};

TEST_F(PerfModelTest, BatchUtilizationMonotone) {
  for (ModelFamily f : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    EXPECT_LT(BatchUtilization(f, 1.0), BatchUtilization(f, 8.0));
    EXPECT_LT(BatchUtilization(f, 8.0), 1.0);
    EXPECT_GT(BatchUtilization(f, 0.5), 0.0);
  }
}

TEST_F(PerfModelTest, TpEfficiencyDecreases) {
  EXPECT_DOUBLE_EQ(TpEfficiency(1), 1.0);
  EXPECT_GT(TpEfficiency(2), TpEfficiency(4));
  EXPECT_GT(TpEfficiency(4), TpEfficiency(16));
  EXPECT_GT(TpEfficiency(16), 0.5);
}

TEST_F(PerfModelTest, ContextCarriesModelKey) {
  const JobContext a = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const JobContext b = Ctx(ModelFamily::kBert, 1.3, 256, GpuType::kA100);
  EXPECT_NE(a.model_key, 0u);
  EXPECT_NE(a.model_key, b.model_key);  // batch is part of the identity
}

TEST_F(PerfModelTest, StragglerMakesDistributedSlower) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const StageRange range{0, ctx.graph->size(), 4};
  const StageEval ev = model_.EvalStage(ctx, range, 4, 1, 1);
  EXPECT_GT(ev.t_compute, ev.t_compute_single);
  const StageEval single = model_.EvalStage(ctx, StageRange{0, ctx.graph->size(), 1}, 1, 1, 1);
  EXPECT_DOUBLE_EQ(single.t_compute, single.t_compute_single);
}

TEST_F(PerfModelTest, TensorParallelismShardsMemory) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 2.6, 128, GpuType::kA100);
  const StageRange range{0, ctx.graph->size(), 4};
  const StageEval dp = model_.EvalStage(ctx, range, 4, 1, 1);
  const StageEval tp = model_.EvalStage(ctx, range, 1, 4, 1);
  EXPECT_GT(dp.mem_bytes, 2.0 * tp.mem_bytes);
}

TEST_F(PerfModelTest, KnownOomCases) {
  // BERT-2.6B dp-only cannot fit in 40 GiB (5.2 GB weights x 8 state mult).
  const JobContext ctx = Ctx(ModelFamily::kBert, 2.6, 128, GpuType::kA100);
  const StageRange range{0, ctx.graph->size(), 4};
  EXPECT_FALSE(model_.EvalStage(ctx, range, 4, 1, 1).fits);
  EXPECT_TRUE(model_.EvalStage(ctx, range, 1, 4, 1).fits);
}

TEST_F(PerfModelTest, DpSyncOnlyWithReplicas) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const StageRange range{0, ctx.graph->size(), 4};
  EXPECT_DOUBLE_EQ(model_.EvalStage(ctx, range, 1, 4, 1).t_dp_sync, 0.0);
  EXPECT_GT(model_.EvalStage(ctx, range, 4, 1, 1).t_dp_sync, 0.0);
}

TEST_F(PerfModelTest, TpCommCheaperOnNvLink) {
  // The same tp-only stage pays more for activation all-reduces on PCIe A40
  // than on NVLink A100 (relative to its compute).
  const JobContext a100 = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const JobContext a40 = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA40);
  const StageRange range{0, a100.graph->size(), 2};
  const StageEval ev_a100 = model_.EvalStage(a100, range, 1, 2, 1);
  const StageEval ev_a40 = model_.EvalStage(a40, range, 1, 2, 1);
  const double overhead_a100 = ev_a100.t_microbatch / ev_a100.t_compute;
  const double overhead_a40 = ev_a40.t_microbatch / ev_a40.t_compute;
  EXPECT_GT(overhead_a40, overhead_a100);
}

TEST_F(PerfModelTest, MoePaysAllToAll) {
  const JobContext moe = Ctx(ModelFamily::kMoe, 1.3, 256, GpuType::kA100);
  const StageRange range{0, moe.graph->size(), 2};
  const StageEval tp = model_.EvalStage(moe, range, 1, 2, 1);
  // Stage time strictly exceeds compute + the pure tp all-reduce (a2a extra).
  EXPECT_GT(tp.t_microbatch, tp.t_compute);
}

TEST_F(PerfModelTest, EvaluateMatchesManualPipelineFormula) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const ParallelPlan plan = UniformPlan(ctx, 4, 2, 2, 1);
  const PlanEval eval = model_.Evaluate(ctx, plan);
  ASSERT_TRUE(eval.feasible);

  // Recompose by hand.
  const int b = plan.num_microbatches();
  double sum = 0.0;
  double max_stage = 0.0;
  double max_sync = 0.0;
  for (const StagePlan& sp : plan.stages) {
    const StageEval ev =
        model_.EvalStage(ctx, StageRange{sp.op_begin, sp.op_end, sp.gpus}, sp.dp, sp.tp, 2);
    sum += ev.t_microbatch;
    max_stage = std::max(max_stage, ev.t_microbatch);
    max_sync = std::max(max_sync, ev.t_dp_sync);
  }
  // The manual total omits boundary comm, so it must lower-bound the model.
  const double lower = sum + (b - 1) * max_stage +
                       PerfModel::kDpSyncExposedFraction * max_sync + PerfModel::kIterOverhead;
  EXPECT_GE(eval.iter_time, lower);
  EXPECT_LT(eval.iter_time, lower * 1.5);
}

TEST_F(PerfModelTest, InfeasiblePlanHasInfiniteTime) {
  const JobContext ctx = Ctx(ModelFamily::kMoe, 27.0, 256, GpuType::kA10);
  const ParallelPlan plan = UniformPlan(ctx, 2, 1, 2, 1);
  const PlanEval eval = model_.Evaluate(ctx, plan);
  EXPECT_FALSE(eval.feasible);
  EXPECT_TRUE(std::isinf(eval.iter_time));
  EXPECT_GT(eval.max_stage_mem, GpuSpecOf(GpuType::kA10).memory_bytes);
}

TEST_F(PerfModelTest, MoreGpusFasterUnderDp) {
  const JobContext ctx = Ctx(ModelFamily::kWideResNet, 1.0, 256, GpuType::kA100);
  double prev = 1e30;
  for (int n : {1, 2, 4, 8}) {
    const ParallelPlan plan = UniformPlan(ctx, n, 1, n, 1);
    const PlanEval eval = model_.Evaluate(ctx, plan);
    ASSERT_TRUE(eval.feasible);
    EXPECT_LT(eval.iter_time, prev);
    prev = eval.iter_time;
  }
}

TEST_F(PerfModelTest, ScalingEfficiencyBelowLinear) {
  // Doubling GPUs never more than doubles throughput (Fig. 4a's ceiling).
  const JobContext ctx = Ctx(ModelFamily::kBert, 0.76, 128, GpuType::kA100);
  const PlanEval e1 = model_.Evaluate(ctx, UniformPlan(ctx, 1, 1, 1, 1));
  const PlanEval e8 = model_.Evaluate(ctx, UniformPlan(ctx, 8, 1, 8, 1));
  ASSERT_TRUE(e1.feasible && e8.feasible);
  EXPECT_GT(e8.iter_time * 8.0, e1.iter_time);
}

TEST_F(PerfModelTest, SlowerGpuSlowerIteration) {
  const ModelSpec spec{ModelFamily::kBert, 1.3, 128};
  const JobContext a100 = model_.MakeContext(spec, GpuType::kA100);
  const JobContext v100 = model_.MakeContext(spec, GpuType::kV100);
  const PlanEval fast = model_.Evaluate(a100, UniformPlan(a100, 4, 1, 4, 1));
  const PlanEval slow = model_.Evaluate(v100, UniformPlan(v100, 4, 1, 4, 1));
  ASSERT_TRUE(fast.feasible && slow.feasible);
  EXPECT_LT(fast.iter_time, slow.iter_time);
}

TEST_F(PerfModelTest, DirectProfileCostScalesWithGpus) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 1.3, 128, GpuType::kA100);
  const ParallelPlan p4 = UniformPlan(ctx, 4, 1, 4, 1);
  const ParallelPlan p8 = UniformPlan(ctx, 8, 1, 8, 1);
  EXPECT_GT(model_.DirectProfileGpuSeconds(ctx, p8),
            model_.DirectProfileGpuSeconds(ctx, p4));
}

TEST_F(PerfModelTest, PipelineReducesPerStageMemory) {
  const JobContext ctx = Ctx(ModelFamily::kBert, 6.7, 128, GpuType::kA40);
  const PlanEval p1 = model_.Evaluate(ctx, UniformPlan(ctx, 4, 1, 4, 1));
  const PlanEval p4 = model_.Evaluate(ctx, UniformPlan(ctx, 4, 4, 1, 1));
  EXPECT_FALSE(p1.feasible);  // 13.4 GB weights x 8 does not fit in 48 GiB
  EXPECT_TRUE(p4.feasible);   // ~1/4 of the weights per stage does
}

TEST_F(PerfModelTest, MakeContextRejectsMissingType) {
  const Cluster testbed = MakePhysicalTestbed();
  const PerfModel pm(testbed);
  EXPECT_DEATH(pm.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128}, GpuType::kA100),
               "no A100");
}

}  // namespace
}  // namespace crius
