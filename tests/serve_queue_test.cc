#include "src/serve/event_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace crius {
namespace {

ServeCommand Submit() {
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kSubmit;
  return cmd;
}

ServeCommand Cancel(int64_t id) {
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kCancel;
  cmd.job_id = id;
  return cmd;
}

ServeCommand Shutdown() {
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kShutdown;
  return cmd;
}

TEST(RejectReasonTest, NamesAreMachineReadableTokens) {
  EXPECT_STREQ(RejectReasonName(RejectReason::kQueueFull), "queue_full");
  EXPECT_STREQ(RejectReasonName(RejectReason::kClusterSaturated), "cluster_saturated");
  EXPECT_STREQ(RejectReasonName(RejectReason::kStarvationGuard), "starvation_guard");
  EXPECT_STREQ(RejectReasonName(RejectReason::kShuttingDown), "shutting_down");
  EXPECT_STREQ(RejectReasonName(RejectReason::kInfeasible), "infeasible");
  EXPECT_STREQ(RejectReasonName(RejectReason::kUnknownJob), "unknown_job");
  EXPECT_STREQ(RejectReasonName(RejectReason::kBadRequest), "bad_request");
}

TEST(EventQueueTest, AcceptsAndDrainsInArrivalOrder) {
  EventQueue queue(EventQueueConfig{});
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
  EXPECT_FALSE(queue.TryPush(Cancel(1)).has_value());
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
  EXPECT_EQ(queue.size(), 3u);

  const auto cmds = queue.Drain();
  EXPECT_EQ(queue.size(), 0u);
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].kind, ServeCommand::Kind::kSubmit);
  EXPECT_EQ(cmds[1].kind, ServeCommand::Kind::kCancel);
  EXPECT_EQ(cmds[2].kind, ServeCommand::Kind::kSubmit);
  EXPECT_LT(cmds[0].seq, cmds[1].seq);
  EXPECT_LT(cmds[1].seq, cmds[2].seq);
}

TEST(EventQueueTest, CapacityRejectsEverythingButShutdown) {
  EventQueueConfig config;
  config.capacity = 2;
  EventQueue queue(config);
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());

  auto reject = queue.TryPush(Submit());
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kQueueFull);
  reject = queue.TryPush(Cancel(1));
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kQueueFull);

  // The shutdown command must always get through, or a full queue would make
  // the daemon unstoppable.
  EXPECT_FALSE(queue.TryPush(Shutdown()).has_value());
}

TEST(EventQueueTest, SaturationRejectsOnlySubmissions) {
  EventQueueConfig config;
  config.max_pending_jobs = 4;
  EventQueue queue(config);
  queue.UpdateClusterView(/*queued_jobs=*/4, /*oldest_wait=*/0.0, /*shutting_down=*/false);

  const auto reject = queue.TryPush(Submit());
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kClusterSaturated);
  // Cancels shrink load; they pass.
  EXPECT_FALSE(queue.TryPush(Cancel(1)).has_value());

  queue.UpdateClusterView(3, 0.0, false);
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
}

TEST(EventQueueTest, StarvationGuardRejectsWhileBacklogIsOld) {
  EventQueueConfig config;
  config.starvation_wait = 600.0;
  EventQueue queue(config);
  queue.UpdateClusterView(1, /*oldest_wait=*/601.0, false);

  const auto reject = queue.TryPush(Submit());
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kStarvationGuard);

  queue.UpdateClusterView(1, 599.0, false);
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
}

TEST(EventQueueTest, ShutdownLatchesAndOnlyShutdownPasses) {
  EventQueue queue(EventQueueConfig{});
  EXPECT_FALSE(queue.TryPush(Shutdown()).has_value());

  auto reject = queue.TryPush(Submit());
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kShuttingDown);
  reject = queue.TryPush(Cancel(1));
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kShuttingDown);

  // The latch survives cluster-view refreshes that say "not shutting down"
  // (the controller never un-requests a shutdown).
  queue.UpdateClusterView(0, 0.0, false);
  reject = queue.TryPush(Submit());
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kShuttingDown);

  // A second shutdown (e.g. drain then forced) still passes.
  EXPECT_FALSE(queue.TryPush(Shutdown()).has_value());
}

TEST(EventQueueTest, DrainClearsBackpressure) {
  EventQueueConfig config;
  config.capacity = 1;
  EventQueue queue(config);
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
  EXPECT_TRUE(queue.TryPush(Submit()).has_value());
  queue.Drain();
  EXPECT_FALSE(queue.TryPush(Submit()).has_value());
}

}  // namespace
}  // namespace crius
