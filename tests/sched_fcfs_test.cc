#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};
const ModelSpec kMedium{ModelFamily::kBert, 1.3, 128};

class FcfsTest : public SchedTestBase {
 protected:
  FcfsTest() : SchedTestBase(MakePhysicalTestbed()), sched_(&oracle_) {}
  FcfsScheduler sched_;
};

TEST_F(FcfsTest, SchedulesInArrivalOrder) {
  AddQueued(0, kSmall, 16, GpuType::kA40, /*submit=*/10.0);
  AddQueued(1, kSmall, 16, GpuType::kA40, /*submit=*/5.0);
  AddQueued(2, kSmall, 16, GpuType::kA40, /*submit=*/20.0);
  const ScheduleDecision d = sched_.Schedule(Round(100.0));
  CheckCapacity(d);
  // 32 A40 GPUs fit exactly the two earliest arrivals.
  EXPECT_EQ(d.assignments.size(), 2u);
  EXPECT_TRUE(d.assignments.count(1));
  EXPECT_TRUE(d.assignments.count(0));
  EXPECT_FALSE(d.assignments.count(2));
}

TEST_F(FcfsTest, HeadOfLineBlocking) {
  AddQueued(0, kSmall, 32, GpuType::kA40, 0.0);  // takes the whole pool
  AddQueued(1, kSmall, 32, GpuType::kA40, 1.0);  // blocked head
  AddQueued(2, kSmall, 2, GpuType::kA40, 2.0);   // would fit, but FIFO blocks it
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_EQ(d.assignments.size(), 1u);
  EXPECT_TRUE(d.assignments.count(0));
}

TEST_F(FcfsTest, UsesRequestedShapeVerbatim) {
  AddQueued(0, kMedium, 8, GpuType::kA10, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  const Assignment& a = d.assignments.at(0);
  EXPECT_EQ(a.type, GpuType::kA10);
  EXPECT_EQ(a.ngpus, 8);
  EXPECT_EQ(a.nstages, 0);  // framework picks the plan
}

TEST_F(FcfsTest, NeverTouchesRunningJobs) {
  JobState* running = AddRunning(0, kSmall, 16, GpuType::kA40);
  AddQueued(1, kSmall, 16, GpuType::kA40, 1.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, running->ngpus);
  EXPECT_EQ(d.assignments.at(0).type, running->gpu_type);
  EXPECT_TRUE(d.assignments.count(1));
}

TEST_F(FcfsTest, RespectsRunningCapacity) {
  AddRunning(0, kSmall, 32, GpuType::kA40);
  AddQueued(1, kSmall, 2, GpuType::kA40, 1.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_FALSE(d.assignments.count(1));  // pool exhausted by the running job
}

TEST_F(FcfsTest, NoDrops) {
  AddQueued(0, kSmall, 64, GpuType::kA40, 0.0);  // can never fit (pool is 32)
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_TRUE(d.dropped.empty());
  EXPECT_TRUE(d.assignments.empty());
}

TEST_F(FcfsTest, Name) {
  EXPECT_EQ(sched_.name(), "FCFS");
}

}  // namespace
}  // namespace crius
