#include <gtest/gtest.h>

#include "src/hw/cluster.h"

namespace crius {
namespace {

TEST(ClusterSpecTest, ParsesSinglePart) {
  const Cluster c = ParseClusterSpec("A100:8x4");
  EXPECT_EQ(c.TotalGpus(GpuType::kA100), 32);
  EXPECT_EQ(c.GpusPerNode(GpuType::kA100), 4);
  EXPECT_FALSE(c.HasType(GpuType::kA40));
}

TEST(ClusterSpecTest, ParsesMultipleParts) {
  const Cluster c = ParseClusterSpec("A100:80x4,A40:160x2,A10:160x2,V100:20x16");
  EXPECT_EQ(c.TotalGpus(), 1280);
  EXPECT_EQ(c.GpusPerNode(GpuType::kV100), 16);
}

TEST(ClusterSpecTest, CaseInsensitiveTypeNames) {
  const Cluster c = ParseClusterSpec("v100:2x8");
  EXPECT_EQ(c.TotalGpus(GpuType::kV100), 16);
}

TEST(ClusterSpecTest, RoundTripThroughSpecString) {
  const Cluster original = MakeSimulatedCluster();
  const Cluster parsed = ParseClusterSpec(ClusterSpecString(original));
  for (GpuType type : AllGpuTypes()) {
    EXPECT_EQ(parsed.TotalGpus(type), original.TotalGpus(type));
    EXPECT_EQ(parsed.GpusPerNode(type), original.GpusPerNode(type));
  }
}

TEST(ClusterSpecTest, SpecStringFormat) {
  EXPECT_EQ(ClusterSpecString(MakePhysicalTestbed()), "A40:16x2,A10:16x2");
}

TEST(ClusterSpecDeathTest, MalformedSpecsAbort) {
  EXPECT_DEATH(ParseClusterSpec("A100"), "bad cluster spec");
  EXPECT_DEATH(ParseClusterSpec("A100:x4"), "bad cluster spec|bad node count");
  EXPECT_DEATH(ParseClusterSpec("A100:8x"), "bad GPUs-per-node");
  EXPECT_DEATH(ParseClusterSpec("A100:0x4"), "bad node count");
  EXPECT_DEATH(ParseClusterSpec(""), "empty cluster spec");
  EXPECT_DEATH(ParseClusterSpec("H100:8x4"), "unknown GPU type");
}

}  // namespace
}  // namespace crius
