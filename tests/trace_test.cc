#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include "src/util/mathutil.h"

namespace crius {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : cluster_(MakeSimulatedCluster()), oracle_(cluster_, 42) {}

  Cluster cluster_;
  PerformanceOracle oracle_;
};

TEST_F(TraceTest, GeneratesRequestedJobCount) {
  TraceConfig config = HeliosModerateConfig();
  config.num_jobs = 100;
  const auto trace = GenerateTrace(cluster_, oracle_, config);
  EXPECT_EQ(trace.size(), 100u);
}

TEST_F(TraceTest, JobsSortedBySubmitTimeWithSequentialIds) {
  const auto trace = GenerateTrace(cluster_, oracle_, HeliosModerateConfig());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, static_cast<int64_t>(i));
    if (i > 0) {
      EXPECT_GE(trace[i].submit_time, trace[i - 1].submit_time);
    }
    EXPECT_GE(trace[i].submit_time, 0.0);
    EXPECT_LE(trace[i].submit_time, HeliosModerateConfig().duration);
  }
}

TEST_F(TraceTest, Deterministic) {
  const auto a = GenerateTrace(cluster_, oracle_, PaiLowConfig());
  const auto b = GenerateTrace(cluster_, oracle_, PaiLowConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.Key(), b[i].spec.Key());
    EXPECT_EQ(a[i].requested_gpus, b[i].requested_gpus);
    EXPECT_EQ(a[i].requested_type, b[i].requested_type);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].iterations, b[i].iterations);
  }
}

TEST_F(TraceTest, SeedChangesTrace) {
  TraceConfig config = PaiLowConfig();
  const auto a = GenerateTrace(cluster_, oracle_, config);
  config.seed += 1;
  const auto b = GenerateTrace(cluster_, oracle_, config);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing += a[i].spec.Key() != b[i].spec.Key();
  }
  EXPECT_GT(differing, static_cast<int>(a.size()) / 4);
}

TEST_F(TraceTest, EveryJobIsFeasibleAtItsRequestedShape) {
  const auto trace = GenerateTrace(cluster_, oracle_, HeliosModerateConfig());
  for (const TrainingJob& job : trace) {
    EXPECT_TRUE(IsPowerOfTwo(job.requested_gpus));
    EXPECT_GT(oracle_.AdaptiveThroughput(job.spec, job.requested_type, job.requested_gpus),
              0.0)
        << job.spec.Name() << " x" << job.requested_gpus << " on "
        << GpuName(job.requested_type);
    EXPECT_GE(job.iterations, 20);
  }
}

TEST_F(TraceTest, OfferedLoadMatchesTarget) {
  // Realized requested GPU-seconds / (cluster GPUs x duration) ~= config.load.
  TraceConfig config = HeliosModerateConfig();
  const auto trace = GenerateTrace(cluster_, oracle_, config);
  double gpu_seconds = 0.0;
  for (const TrainingJob& job : trace) {
    const double thr =
        oracle_.AdaptiveThroughput(job.spec, job.requested_type, job.requested_gpus);
    const double ideal =
        static_cast<double>(job.iterations) * job.spec.global_batch / thr;
    gpu_seconds += ideal * job.requested_gpus;
  }
  const double load = gpu_seconds / (cluster_.TotalGpus() * config.duration);
  EXPECT_NEAR(load, config.load, config.load * 0.25);
}

TEST_F(TraceTest, DeadlineFractionHonored) {
  TraceConfig config = PaiLowConfig();
  config.deadline_fraction = 0.5;
  const auto trace = GenerateTrace(cluster_, oracle_, config);
  int with_deadline = 0;
  for (const TrainingJob& job : trace) {
    if (job.deadline.has_value()) {
      ++with_deadline;
      EXPECT_GT(*job.deadline, job.submit_time);
    }
  }
  const double fraction = static_cast<double>(with_deadline) / trace.size();
  EXPECT_NEAR(fraction, 0.5, 0.12);
}

TEST_F(TraceTest, NoDeadlinesByDefault) {
  const auto trace = GenerateTrace(cluster_, oracle_, PhillySixHourConfig());
  for (const TrainingJob& job : trace) {
    EXPECT_FALSE(job.deadline.has_value());
  }
}

TEST_F(TraceTest, RequestCapRespected) {
  TraceConfig config = PhillyWeekHeavyConfig();
  config.num_jobs = 300;
  const auto trace = GenerateTrace(cluster_, oracle_, config);
  for (const TrainingJob& job : trace) {
    EXPECT_LE(job.requested_gpus, config.max_request_gpus);
  }
}

TEST_F(TraceTest, MixesAllFamiliesAndSmallSizesDominate) {
  TraceConfig config = PhillyWeekHeavyConfig();
  const auto trace = GenerateTrace(cluster_, oracle_, config);
  int families[kNumModelFamilies] = {0, 0, 0};
  int small = 0;
  int large = 0;
  for (const TrainingJob& job : trace) {
    families[static_cast<int>(job.spec.family)]++;
    if (job.spec.params_billion <= 1.3) {
      ++small;
    }
    if (job.spec.params_billion >= 6.7) {
      ++large;
    }
  }
  for (int f = 0; f < kNumModelFamilies; ++f) {
    EXPECT_GT(families[f], static_cast<int>(trace.size()) / 10);
  }
  EXPECT_GT(small, large);  // Fig. 15 shape
  EXPECT_GT(large, 0);      // ...but the tail exists
}

TEST_F(TraceTest, HistogramCountsEveryJob) {
  const auto trace = GenerateTrace(cluster_, oracle_, PaiLowConfig());
  const auto hist = ModelSizeHistogram(trace);
  int total = 0;
  for (const auto& [name, count] : hist) {
    EXPECT_GT(count, 0);
    total += count;
  }
  EXPECT_EQ(total, static_cast<int>(trace.size()));
}

TEST_F(TraceTest, TestbedTraceUsesTestbedTypes) {
  const Cluster testbed = MakePhysicalTestbed();
  PerformanceOracle oracle(testbed, 42);
  const auto trace = GenerateTrace(testbed, oracle, PhillySixHourConfig());
  for (const TrainingJob& job : trace) {
    EXPECT_TRUE(job.requested_type == GpuType::kA40 || job.requested_type == GpuType::kA10);
    EXPECT_LE(job.requested_gpus, 16);
  }
}

}  // namespace
}  // namespace crius
