#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

struct Parsed {
  std::string s = "default";
  int64_t i = 7;
  double d = 1.5;
  bool b = false;
};

bool ParseInto(Parsed& p, std::vector<const char*> args) {
  FlagSet flags("test", "test flags");
  flags.String("str", &p.s, "a string");
  flags.Int("int", &p.i, "an int");
  flags.Double("dbl", &p.d, "a double");
  flags.Bool("flag", &p.b, "a bool");
  args.insert(args.begin(), "test");
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsSurviveEmptyArgs) {
  Parsed p;
  EXPECT_TRUE(ParseInto(p, {}));
  EXPECT_EQ(p.s, "default");
  EXPECT_EQ(p.i, 7);
  EXPECT_DOUBLE_EQ(p.d, 1.5);
  EXPECT_FALSE(p.b);
}

TEST(FlagsTest, SpaceSeparatedValues) {
  Parsed p;
  EXPECT_TRUE(ParseInto(p, {"--str", "hello", "--int", "42", "--dbl", "2.25"}));
  EXPECT_EQ(p.s, "hello");
  EXPECT_EQ(p.i, 42);
  EXPECT_DOUBLE_EQ(p.d, 2.25);
}

TEST(FlagsTest, EqualsSeparatedValues) {
  Parsed p;
  EXPECT_TRUE(ParseInto(p, {"--str=x", "--int=-3", "--dbl=0.5", "--flag=true"}));
  EXPECT_EQ(p.s, "x");
  EXPECT_EQ(p.i, -3);
  EXPECT_DOUBLE_EQ(p.d, 0.5);
  EXPECT_TRUE(p.b);
}

TEST(FlagsTest, BareBoolEnables) {
  Parsed p;
  EXPECT_TRUE(ParseInto(p, {"--flag"}));
  EXPECT_TRUE(p.b);
}

TEST(FlagsTest, BoolFalseForms) {
  Parsed p;
  p.b = true;
  EXPECT_TRUE(ParseInto(p, {"--flag=false"}));
  EXPECT_FALSE(p.b);
  p.b = true;
  EXPECT_TRUE(ParseInto(p, {"--flag=0"}));
  EXPECT_FALSE(p.b);
}

TEST(FlagsTest, UnknownFlagFails) {
  Parsed p;
  EXPECT_FALSE(ParseInto(p, {"--nope", "1"}));
}

TEST(FlagsTest, BadValuesFail) {
  Parsed p;
  EXPECT_FALSE(ParseInto(p, {"--int", "abc"}));
  EXPECT_FALSE(ParseInto(p, {"--int", "1.5"}));
  EXPECT_FALSE(ParseInto(p, {"--dbl", "x"}));
  EXPECT_FALSE(ParseInto(p, {"--flag=maybe"}));
}

TEST(FlagsTest, MissingValueFails) {
  Parsed p;
  EXPECT_FALSE(ParseInto(p, {"--int"}));
}

TEST(FlagsTest, HelpReturnsFalse) {
  Parsed p;
  EXPECT_FALSE(ParseInto(p, {"--help"}));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags("test", "positional");
  std::string s;
  flags.String("str", &s, "a string");
  const char* args[] = {"test", "pos1", "--str", "v", "pos2"};
  EXPECT_TRUE(flags.Parse(5, args));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags("prog", "does things");
  int64_t v = 9;
  flags.Int("answer", &v, "the answer");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--answer"), std::string::npos);
  EXPECT_NE(usage.find("9"), std::string::npos);
  EXPECT_NE(usage.find("the answer"), std::string::npos);
}

bool ParseKnownInto(Parsed& p, std::vector<const char*> args) {
  FlagSet flags("test", "test flags");
  flags.String("str", &p.s, "a string");
  flags.Int("int", &p.i, "an int");
  flags.Double("dbl", &p.d, "a double");
  flags.Bool("flag", &p.b, "a bool");
  args.insert(args.begin(), "test");
  return flags.ParseKnown(static_cast<int>(args.size()), args.data());
}

TEST(FlagsParseKnownTest, KnownFlagsParse) {
  Parsed p;
  EXPECT_TRUE(ParseKnownInto(p, {"--str", "hello", "--int=42", "--flag"}));
  EXPECT_EQ(p.s, "hello");
  EXPECT_EQ(p.i, 42);
  EXPECT_TRUE(p.b);
}

TEST(FlagsParseKnownTest, UnknownFlagsSkippedWithoutEatingValues) {
  Parsed p;
  // --smoke is someone else's flag; its neighbor --int must still parse, and
  // an unknown flag must never consume the token after it.
  EXPECT_TRUE(ParseKnownInto(p, {"--smoke", "--int", "42", "--jobs", "7"}));
  EXPECT_EQ(p.i, 42);
  // "--jobs 7": the 7 belongs to --jobs and is left alone.
  EXPECT_EQ(p.s, "default");
}

TEST(FlagsParseKnownTest, MalformedValueKeepsDefault) {
  Parsed p;
  EXPECT_TRUE(ParseKnownInto(p, {"--int", "abc"}));
  EXPECT_EQ(p.i, 7);
  EXPECT_TRUE(ParseKnownInto(p, {"--int=1.5"}));
  EXPECT_EQ(p.i, 7);
}

TEST(FlagsParseKnownTest, MissingValueKeepsDefault) {
  Parsed p;
  EXPECT_TRUE(ParseKnownInto(p, {"--int"}));
  EXPECT_EQ(p.i, 7);
  EXPECT_TRUE(ParseKnownInto(p, {"--int", "--flag"}));
  EXPECT_EQ(p.i, 7);
  EXPECT_TRUE(p.b);
}

TEST(FlagsParseKnownTest, HelpReturnsFalse) {
  Parsed p;
  EXPECT_FALSE(ParseKnownInto(p, {"--help"}));
}

TEST(FlagsDeathTest, DuplicateFlagAborts) {
  FlagSet flags("test", "dup");
  std::string a;
  std::string b;
  flags.String("x", &a, "first");
  EXPECT_DEATH(flags.String("x", &b, "second"), "duplicate");
}

}  // namespace
}  // namespace crius
