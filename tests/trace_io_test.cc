#include "src/sim/trace_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/core/oracle.h"
#include "src/sim/trace.h"

namespace crius {
namespace {

std::vector<TrainingJob> SampleTrace() {
  std::vector<TrainingJob> trace;
  TrainingJob a;
  a.id = 0;
  a.spec = ModelSpec{ModelFamily::kBert, 2.6, 128};
  a.iterations = 500;
  a.submit_time = 12.5;
  a.requested_gpus = 8;
  a.requested_type = GpuType::kA40;
  trace.push_back(a);
  TrainingJob b;
  b.id = 1;
  b.spec = ModelSpec{ModelFamily::kMoe, 10.0, 256};
  b.iterations = 1000;
  b.submit_time = 90.0;
  b.requested_gpus = 16;
  b.requested_type = GpuType::kV100;
  b.deadline = 5000.0;
  trace.push_back(b);
  return trace;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const auto trace = SampleTrace();
  std::stringstream ss;
  WriteTraceCsv(trace, ss);
  const auto loaded = ReadTraceCsv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].id, trace[i].id);
    EXPECT_TRUE(loaded[i].spec == trace[i].spec);
    EXPECT_EQ(loaded[i].iterations, trace[i].iterations);
    EXPECT_DOUBLE_EQ(loaded[i].submit_time, trace[i].submit_time);
    EXPECT_EQ(loaded[i].requested_gpus, trace[i].requested_gpus);
    EXPECT_EQ(loaded[i].requested_type, trace[i].requested_type);
    EXPECT_EQ(loaded[i].deadline.has_value(), trace[i].deadline.has_value());
    if (trace[i].deadline.has_value()) {
      EXPECT_DOUBLE_EQ(*loaded[i].deadline, *trace[i].deadline);
    }
  }
}

TEST(TraceIoTest, SyntheticTraceRoundTrip) {
  Cluster cluster = MakePhysicalTestbed();
  PerformanceOracle oracle(cluster, 42);
  TraceConfig config = PhillySixHourConfig();
  config.num_jobs = 30;
  config.deadline_fraction = 0.3;
  const auto trace = GenerateTrace(cluster, oracle, config);
  std::stringstream ss;
  WriteTraceCsv(trace, ss);
  const auto loaded = ReadTraceCsv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].spec.Key(), trace[i].spec.Key());
    EXPECT_EQ(loaded[i].iterations, trace[i].iterations);
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/crius_trace_io_test.csv";
  ASSERT_TRUE(WriteTraceCsvFile(SampleTrace(), path));
  const auto loaded = ReadTraceCsvFile(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].requested_type, GpuType::kV100);
}

TEST(TraceIoTest, EmptyTraceJustHeader) {
  std::stringstream ss;
  WriteTraceCsv({}, ss);
  const auto loaded = ReadTraceCsv(ss);
  EXPECT_TRUE(loaded.empty());
}

TEST(TraceIoDeathTest, MissingHeaderAborts) {
  std::stringstream ss("0,BERT,1.3,128,10,0,4,A100,\n");
  EXPECT_DEATH(ReadTraceCsv(ss), "header");
}

TEST(TraceIoDeathTest, WrongArityAborts) {
  std::stringstream ss("id,family,x\n0,BERT,1.3\n");
  EXPECT_DEATH(ReadTraceCsv(ss), "expected 9 fields");
}

TEST(TraceIoDeathTest, BadNumbersAbort) {
  std::stringstream ss(
      "id,family,params_billion,global_batch,iterations,submit_time,requested_gpus,"
      "requested_type,deadline\n0,BERT,abc,128,10,0,4,A100,\n");
  EXPECT_DEATH(ReadTraceCsv(ss), "bad params_billion");
}

TEST(TraceIoDeathTest, UnknownFamilyAborts) {
  std::stringstream ss(
      "id,family,params_billion,global_batch,iterations,submit_time,requested_gpus,"
      "requested_type,deadline\n0,GPT,1.3,128,10,0,4,A100,\n");
  EXPECT_DEATH(ReadTraceCsv(ss), "unknown family");
}

TEST(TraceIoTest, JobRecordsCsvHasOneRowPerJob) {
  SimResult result;
  JobRecord r;
  r.id = 3;
  r.submit = 1.0;
  r.first_start = 2.0;
  r.finish = 10.0;
  r.finished = true;
  result.jobs.push_back(r);
  std::stringstream ss;
  WriteJobRecordsCsv(result, ss);
  std::string line;
  int rows = 0;
  while (std::getline(ss, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2);  // header + 1 job
  EXPECT_NE(ss.str().find("3,1,2,10,9,1,"), std::string::npos);
}

TEST(TraceIoTest, TimelineCsv) {
  SimResult result;
  result.timeline.push_back(ThroughputSample{300.0, 2.5, 3, 1, 24});
  std::stringstream ss;
  WriteTimelineCsv(result, ss);
  EXPECT_NE(ss.str().find("300,2.5,3,1,24"), std::string::npos);
}

TEST(TraceIoTest, EventsCsv) {
  SimResult result;
  result.events.push_back(SimEvent{120.0, SimEvent::Kind::kStart, 4, "A40x8/P2"});
  result.events.push_back(SimEvent{500.0, SimEvent::Kind::kFinish, 4, ""});
  std::stringstream ss;
  WriteEventsCsv(result, ss);
  EXPECT_NE(ss.str().find("time,kind,job_id,placement"), std::string::npos);
  EXPECT_NE(ss.str().find("120,start,4,A40x8/P2"), std::string::npos);
  EXPECT_NE(ss.str().find("500,finish,4,"), std::string::npos);
}

TEST(TraceIoTest, EventsCsvFileRoundTrip) {
  SimResult result;
  result.events.push_back(SimEvent{1.0, SimEvent::Kind::kDrop, 9, ""});
  const std::string path = ::testing::TempDir() + "/crius_events_test.csv";
  ASSERT_TRUE(WriteEventsCsvFile(result, path));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("1,drop,9,"), std::string::npos);
}

}  // namespace
}  // namespace crius
