// Tests for the simulator's event log (SimConfig::record_events), its CSV
// export, and the Chrome-trace conversion.

#include <gtest/gtest.h>

#include <sstream>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/chrome_export.h"
#include "src/sim/simulator.h"
#include "src/sim/trace_io.h"
#include "tests/trace_json_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

TrainingJob MakeJob(int64_t id, double submit, int64_t iterations, int gpus = 4,
                    GpuType type = GpuType::kA100) {
  TrainingJob job;
  job.id = id;
  job.spec = kSmall;
  job.submit_time = submit;
  job.iterations = iterations;
  job.requested_gpus = gpus;
  job.requested_type = type;
  return job;
}

int CountKind(const SimResult& r, SimEvent::Kind kind, int64_t job_id = -1) {
  int n = 0;
  for (const SimEvent& e : r.events) {
    if (e.kind == kind && (job_id < 0 || e.job_id == job_id)) {
      ++n;
    }
  }
  return n;
}

TEST(SimEventsTest, DisabledByDefault) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  FcfsScheduler sched(&oracle);
  Simulator sim(cluster, SimConfig{});
  const SimResult r = sim.Run(sched, oracle, {MakeJob(0, 0.0, 10)});
  EXPECT_TRUE(r.events.empty());
}

TEST(SimEventsTest, SingleJobStartAndFinish) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  FcfsScheduler sched(&oracle);
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  const SimResult r = sim.Run(sched, oracle, {MakeJob(0, 0.0, 10)});
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].kind, SimEvent::Kind::kStart);
  EXPECT_EQ(r.events[0].job_id, 0);
  EXPECT_NE(r.events[0].placement.find("A100x4"), std::string::npos);
  EXPECT_EQ(r.events[1].kind, SimEvent::Kind::kFinish);
  EXPECT_GE(r.events[1].time, r.events[0].time);
}

TEST(SimEventsTest, EventsAreChronological) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  std::vector<TrainingJob> trace;
  for (int i = 0; i < 5; ++i) {
    trace.push_back(MakeJob(i, i * 120.0, 200, 2, i % 2 ? GpuType::kV100 : GpuType::kA100));
  }
  const SimResult r = sim.Run(sched, oracle, trace);
  ASSERT_FALSE(r.events.empty());
  for (size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_GE(r.events[i].time, r.events[i - 1].time);
  }
  // Every job has exactly one start and one finish.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(CountKind(r, SimEvent::Kind::kStart, i), 1) << "job " << i;
    EXPECT_EQ(CountKind(r, SimEvent::Kind::kFinish, i), 1) << "job " << i;
  }
}

TEST(SimEventsTest, RestartsMatchJobRecords) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 600, 4),
                                    MakeJob(1, 0.0, 600, 4, GpuType::kV100)};
  const SimResult r = sim.Run(sched, oracle, trace);
  int total_restarts = 0;
  for (const JobRecord& rec : r.jobs) {
    total_restarts += rec.restarts;
  }
  EXPECT_EQ(CountKind(r, SimEvent::Kind::kRestart), total_restarts);
}

TEST(SimEventsTest, DropEventsForDeadlineRejects) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler sched(&oracle, CriusConfig{.deadline_aware = true});
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  // Submitted after t=0 so the drop lands at a positive round time.
  TrainingJob hopeless = MakeJob(0, 10.0, 100000000);
  hopeless.deadline = 30.0;
  const SimResult r = sim.Run(sched, oracle, {hopeless});
  EXPECT_EQ(r.dropped_jobs, 1);
  EXPECT_EQ(CountKind(r, SimEvent::Kind::kDrop, 0), 1);
  EXPECT_EQ(CountKind(r, SimEvent::Kind::kStart, 0), 0);
  // Even with nothing finished, the drop marks cluster activity (makespan
  // regression: it used to stay 0 for all-dropped traces).
  EXPECT_GT(r.makespan, 0.0);
}

TEST(SimEventsTest, EventsCsvRoundsTripAllRows) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  std::vector<TrainingJob> trace;
  for (int i = 0; i < 3; ++i) {
    trace.push_back(MakeJob(i, i * 60.0, 150, 2, i % 2 ? GpuType::kV100 : GpuType::kA100));
  }
  const SimResult r = sim.Run(sched, oracle, trace);
  ASSERT_FALSE(r.events.empty());

  std::ostringstream out;
  WriteEventsCsv(r, out);
  const std::string csv = out.str();
  // Header plus one line per event, each carrying the event's kind name.
  size_t lines = 0;
  for (char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, r.events.size() + 1);
  EXPECT_EQ(csv.compare(0, 5, "time,"), 0);
  for (const SimEvent& e : r.events) {
    EXPECT_NE(csv.find(SimEvent::KindName(e.kind)), std::string::npos);
  }
}

TEST(SimEventsTest, ChromeExportIsValidJsonWithJobTracks) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler sched(&oracle, CriusConfig{});
  SimConfig config;
  config.record_events = true;
  Simulator sim(cluster, config);
  std::vector<TrainingJob> trace;
  for (int i = 0; i < 3; ++i) {
    trace.push_back(MakeJob(i, i * 60.0, 150, 2, i % 2 ? GpuType::kV100 : GpuType::kA100));
  }
  const SimResult r = sim.Run(sched, oracle, trace);

  std::ostringstream out;
  WriteSimChromeTrace(r, out);
  const std::string json = out.str();
  EXPECT_TRUE(test::IsValidJson(json));
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(json.find("job " + std::to_string(i)), std::string::npos) << "job " << i;
  }
  EXPECT_NE(json.find("scheduler rounds"), std::string::npos);
  EXPECT_NE(json.find("busy_gpus"), std::string::npos);
}

TEST(SimEventsTest, ChromeExportWithoutEventsStillValid) {
  // With record_events off, only the round/counter tracks are emitted.
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  FcfsScheduler sched(&oracle);
  Simulator sim(cluster, SimConfig{});
  const SimResult r = sim.Run(sched, oracle, {MakeJob(0, 0.0, 10)});
  ASSERT_TRUE(r.events.empty());
  std::ostringstream out;
  WriteSimChromeTrace(r, out);
  EXPECT_TRUE(test::IsValidJson(out.str()));
  EXPECT_EQ(out.str().find("job 0"), std::string::npos);
}

TEST(SimEventsTest, KindNamesAreStable) {
  EXPECT_STREQ(SimEvent::KindName(SimEvent::Kind::kStart), "start");
  EXPECT_STREQ(SimEvent::KindName(SimEvent::Kind::kRestart), "restart");
  EXPECT_STREQ(SimEvent::KindName(SimEvent::Kind::kPreempt), "preempt");
  EXPECT_STREQ(SimEvent::KindName(SimEvent::Kind::kFinish), "finish");
  EXPECT_STREQ(SimEvent::KindName(SimEvent::Kind::kDrop), "drop");
}

}  // namespace
}  // namespace crius
