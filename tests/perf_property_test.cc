// Property sweeps over the performance model and estimator: invariants that
// must hold for EVERY (model, GPU type, GPU count) combination, checked with
// parameterized tests rather than hand-picked examples.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/core/estimator.h"
#include "src/util/mathutil.h"
#include "src/parallel/explorer.h"

namespace crius {
namespace {

using SweepParam = std::tuple<ModelSpec, GpuType, int>;  // spec, type, ngpus

std::vector<ModelSpec> SweepSpecs() {
  return {
      ModelSpec{ModelFamily::kWideResNet, 0.5, 256}, ModelSpec{ModelFamily::kWideResNet, 4.0, 512},
      ModelSpec{ModelFamily::kBert, 0.76, 128},      ModelSpec{ModelFamily::kBert, 2.6, 256},
      ModelSpec{ModelFamily::kMoe, 0.69, 256},       ModelSpec{ModelFamily::kMoe, 10.0, 512},
  };
}

class ModelSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  ModelSweepTest() : cluster_(MakeSimulatedCluster()), model_(cluster_) {}

  Cluster cluster_;
  PerfModel model_;
};

TEST_P(ModelSweepTest, TensorShardingMonotonicallyReducesMemory) {
  const auto& [spec, type, ngpus] = GetParam();
  const JobContext ctx = model_.MakeContext(spec, type);
  const StageRange range{0, ctx.graph->size(), ngpus};
  double prev = 1e30;
  for (int tp = 1; tp <= ngpus; tp *= 2) {
    const StageEval ev = model_.EvalStage(ctx, range, ngpus / tp, tp, 1);
    EXPECT_LT(ev.mem_bytes, prev + 1e-6)
        << spec.Name() << " " << GpuName(type) << " tp=" << tp;
    prev = ev.mem_bytes;
    EXPECT_GT(ev.mem_bytes, 0.0);
  }
}

TEST_P(ModelSweepTest, StageTimesArePositiveAndFinite) {
  const auto& [spec, type, ngpus] = GetParam();
  const JobContext ctx = model_.MakeContext(spec, type);
  const StageRange range{0, ctx.graph->size(), ngpus};
  for (const PowerOfTwoSplit& split : PowerOfTwoSplits(ngpus)) {
    const StageEval ev = model_.EvalStage(ctx, range, static_cast<int>(split.d),
                                          static_cast<int>(split.t), 1);
    EXPECT_GT(ev.t_microbatch, 0.0);
    EXPECT_TRUE(std::isfinite(ev.t_microbatch));
    EXPECT_GE(ev.t_microbatch, ev.t_compute);
    EXPECT_GE(ev.t_compute, ev.t_compute_single);
    EXPECT_GE(ev.t_dp_sync, 0.0);
  }
}

TEST_P(ModelSweepTest, GradientSyncGrowsWithReplication) {
  const auto& [spec, type, ngpus] = GetParam();
  if (ngpus < 4) {
    GTEST_SKIP();
  }
  const JobContext ctx = model_.MakeContext(spec, type);
  const StageRange range{0, ctx.graph->size(), ngpus};
  const StageEval d2 = model_.EvalStage(ctx, range, 2, ngpus / 2, 1);
  const StageEval dmax = model_.EvalStage(ctx, range, ngpus, 1, 1);
  EXPECT_GT(dmax.t_dp_sync, 0.0);
  // Full replication syncs whole gradients; hybrid syncs tp-sharded ones.
  EXPECT_GT(dmax.t_dp_sync, d2.t_dp_sync * 0.5);
}

TEST_P(ModelSweepTest, FullExploreBestIsConsistent) {
  const auto& [spec, type, ngpus] = GetParam();
  const JobContext ctx = model_.MakeContext(spec, type);
  Explorer explorer(&model_);
  const ExploreResult r = explorer.FullExplore(ctx, ngpus);
  if (!r.best.has_value()) {
    // Infeasible overall: dp-only on one GPU must also be infeasible.
    const StageEval dp = model_.EvalStage(ctx, StageRange{0, ctx.graph->size(), ngpus},
                                          ngpus, 1, 1);
    EXPECT_FALSE(dp.fits);
    return;
  }
  ValidatePlan(r.best->plan, *ctx.graph);
  EXPECT_EQ(r.best->plan.total_gpus(), ngpus);
  EXPECT_EQ(r.best->plan.gpu_type, type);
  const PlanEval eval = model_.Evaluate(ctx, r.best->plan);
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.iter_time, r.best->iter_time);
}

TEST_P(ModelSweepTest, EstimatorAgreesWithGroundTruthWithinBand) {
  const auto& [spec, type, ngpus] = GetParam();
  const JobContext ctx = model_.MakeContext(spec, type);
  CommProfile comm(cluster_, 42);
  CellEstimator estimator(&model_, &comm, 42);
  for (int nstages : CandidateStageCounts(*ctx.graph, ngpus)) {
    const Cell cell{type, ngpus, nstages};
    const CellEstimate est = estimator.Estimate(ctx, cell);
    if (!est.feasible) {
      continue;
    }
    ValidatePlan(est.plan, *ctx.graph);
    const PlanEval measured = model_.Evaluate(ctx, est.plan);
    ASSERT_TRUE(measured.feasible) << spec.Name() << " " << cell.ToString();
    const double err = std::abs(est.iter_time - measured.iter_time) / measured.iter_time;
    EXPECT_LT(err, 0.15) << spec.Name() << " " << cell.ToString();
    EXPECT_GT(est.profile_gpu_seconds, 0.0);
    EXPECT_EQ(est.stage_tp_range.size(), est.plan.stages.size());
    for (const auto& [lo, hi] : est.stage_tp_range) {
      EXPECT_GE(lo, 1);
      EXPECT_LE(lo, hi);
    }
  }
}

TEST_P(ModelSweepTest, ThroughputNeverDecreasesWithMoreGpus) {
  const auto& [spec, type, ngpus] = GetParam();
  if (ngpus < 2) {
    GTEST_SKIP();
  }
  const JobContext ctx = model_.MakeContext(spec, type);
  Explorer explorer(&model_);
  const ExploreResult small = explorer.FullExplore(ctx, ngpus / 2);
  const ExploreResult big = explorer.FullExplore(ctx, ngpus);
  if (small.best.has_value() && big.best.has_value()) {
    // Adaptive parallelism can always replicate the smaller plan's structure,
    // so more GPUs never hurt (up to pipeline-packing effects; allow 2%).
    EXPECT_LT(big.best->iter_time, small.best->iter_time * 1.02)
        << spec.Name() << " " << GpuName(type) << " " << ngpus;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelSweepTest,
    ::testing::Combine(::testing::ValuesIn(SweepSpecs()),
                       ::testing::Values(GpuType::kA100, GpuType::kA40, GpuType::kA10,
                                         GpuType::kV100),
                       ::testing::Values(2, 8, 32)));

}  // namespace
}  // namespace crius
