// Shared helpers for scheduler unit tests: builds JobState populations and
// validates capacity invariants of ScheduleDecisions.

#ifndef TESTS_SCHED_TEST_UTIL_H_
#define TESTS_SCHED_TEST_UTIL_H_

#include <array>
#include <memory>
#include <vector>

#include "src/sched/scheduler.h"

namespace crius {

class SchedTestBase : public ::testing::Test {
 protected:
  explicit SchedTestBase(Cluster cluster)
      : cluster_(std::move(cluster)), oracle_(cluster_, 42) {}

  JobState* AddQueued(int64_t id, const ModelSpec& spec, int requested_gpus,
                      GpuType requested_type, double submit = 0.0, int64_t iterations = 1000) {
    auto state = std::make_unique<JobState>();
    state->job.id = id;
    state->job.spec = spec;
    state->job.requested_gpus = requested_gpus;
    state->job.requested_type = requested_type;
    state->job.submit_time = submit;
    state->job.iterations = iterations;
    state->phase = JobPhase::kQueued;
    states_.push_back(std::move(state));
    return states_.back().get();
  }

  JobState* AddRunning(int64_t id, const ModelSpec& spec, int ngpus, GpuType type,
                       int nstages = 0, int requested_gpus = 0) {
    JobState* state = AddQueued(id, spec, requested_gpus > 0 ? requested_gpus : ngpus, type);
    state->phase = JobPhase::kRunning;
    state->gpu_type = type;
    state->ngpus = ngpus;
    state->nstages = nstages;
    state->iter_time = 1.0;
    return state;
  }

  std::vector<const JobState*> Views() const {
    std::vector<const JobState*> out;
    for (const auto& s : states_) {
      out.push_back(s.get());
    }
    return out;
  }

  // One scheduling round over the fixture's jobs and cluster. Tests pass no
  // events; per the RoundContext contract an incremental scheduler then falls
  // back to a full recompute whenever the cluster's health epoch moved.
  RoundContext Round(double now = 0.0) const { return RoundContext(now, Views(), cluster_); }

  // Same, against an explicit job set and cluster (standalone scenarios).
  static RoundContext RoundFor(double now, std::vector<const JobState*> jobs,
                               const Cluster& cluster) {
    return RoundContext(now, std::move(jobs), cluster);
  }

  // Asserts the decision never oversubscribes any GPU type of `cluster`.
  static void CheckCapacityFor(const Cluster& cluster, const ScheduleDecision& decision) {
    std::array<int, kNumGpuTypes> used{};
    for (const auto& [id, a] : decision.assignments) {
      ASSERT_GT(a.ngpus, 0) << "job " << id;
      used[static_cast<int>(a.type)] += a.ngpus;
    }
    for (GpuType type : AllGpuTypes()) {
      EXPECT_LE(used[static_cast<int>(type)], cluster.TotalGpus(type))
          << GpuName(type) << " oversubscribed";
    }
  }

  void CheckCapacity(const ScheduleDecision& decision) {
    CheckCapacityFor(cluster_, decision);
  }

  Cluster cluster_;
  PerformanceOracle oracle_;
  std::vector<std::unique_ptr<JobState>> states_;
};

}  // namespace crius

#endif  // TESTS_SCHED_TEST_UTIL_H_
