// Acceptance test for the parallel scheduling/estimation fan-out: a full
// simulation run must produce BIT-IDENTICAL event and timeline CSVs at any
// thread count. Every cached quantity is a pure function of its key and every
// fan-out writes into caller-owned slots, so the only way this test fails is a
// real determinism bug (ordering leak, shared-state race, or a cache whose
// value depends on population order).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/fault/failure_injector.h"
#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"
#include "src/util/threadpool.h"

namespace crius {
namespace {

struct RunCsvs {
  std::string events;
  std::string timeline;
  std::string jobs;
};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }

  // One complete simulation at `threads`, from fresh oracle/scheduler/sim
  // state, serialized to CSV. Includes a mid-trace node failure + recovery so
  // the degraded-mode path (epoch invalidation, re-ranking) is covered too.
  static RunCsvs Run(int threads, CriusConfig sched_config) {
    ThreadPool::SetGlobalThreads(threads);
    Cluster cluster = MakePhysicalTestbed();
    PerformanceOracle oracle(cluster, 42);

    TraceConfig trace_config = PhillySixHourConfig();
    trace_config.seed = 42;
    trace_config.num_jobs = 24;
    const auto trace = GenerateTrace(cluster, oracle, trace_config);

    SimConfig sim_config;
    sim_config.record_events = true;
    sim_config.failures.push_back(FailureEvent{2.0 * kHour, FailureKind::kNodeFail, 0, 0, 1.0});
    sim_config.failures.push_back(
        FailureEvent{4.0 * kHour, FailureKind::kNodeRecover, 0, 0, 1.0});

    Simulator sim(cluster, sim_config);
    CriusScheduler sched(&oracle, sched_config);
    const SimResult result = sim.Run(sched, oracle, trace);

    RunCsvs csvs;
    std::ostringstream events, timeline, jobs;
    WriteEventsCsv(result, events);
    WriteTimelineCsv(result, timeline);
    WriteJobRecordsCsv(result, jobs);
    csvs.events = events.str();
    csvs.timeline = timeline.str();
    csvs.jobs = jobs.str();
    return csvs;
  }
};

TEST_F(ParallelDeterminismTest, CriusRunIsBitIdenticalAcrossThreadCounts) {
  const RunCsvs base = Run(1, CriusConfig{});
  ASSERT_FALSE(base.events.empty());
  ASSERT_FALSE(base.timeline.empty());
  for (int threads : {2, 4}) {
    const RunCsvs parallel = Run(threads, CriusConfig{});
    EXPECT_EQ(parallel.events, base.events) << "events diverge at --threads " << threads;
    EXPECT_EQ(parallel.timeline, base.timeline)
        << "timeline diverges at --threads " << threads;
    EXPECT_EQ(parallel.jobs, base.jobs) << "job records diverge at --threads " << threads;
  }
}

TEST_F(ParallelDeterminismTest, SolverLiteRunIsBitIdenticalAcrossThreadCounts) {
  // kBestOfAll runs its three virtual placement passes concurrently; the
  // winning decision must not depend on which pass finishes first.
  CriusConfig config;
  config.placement_order = CriusPlacementOrder::kBestOfAll;
  const RunCsvs base = Run(1, config);
  const RunCsvs parallel = Run(4, config);
  EXPECT_EQ(parallel.events, base.events);
  EXPECT_EQ(parallel.timeline, base.timeline);
  EXPECT_EQ(parallel.jobs, base.jobs);
}

TEST_F(ParallelDeterminismTest, RepeatedRunsAtSameThreadCountAreIdentical) {
  // Guards against nondeterminism that two *parallel* runs could share but a
  // sequential baseline would expose (e.g. address-dependent ordering).
  const RunCsvs a = Run(4, CriusConfig{});
  const RunCsvs b = Run(4, CriusConfig{});
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.jobs, b.jobs);
}

}  // namespace
}  // namespace crius
