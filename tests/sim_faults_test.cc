// Tests for the simulator's fault model: scripted failures, checkpoint-aware
// rollback, straggler slowdown, the goodput ledger, and SimConfig validation.

#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "src/sim/simulator.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

TrainingJob MakeJob(int64_t id, double submit, int64_t iterations, int gpus = 4,
                    GpuType type = GpuType::kA100) {
  TrainingJob job;
  job.id = id;
  job.spec = kSmall;
  job.submit_time = submit;
  job.iterations = iterations;
  job.requested_gpus = gpus;
  job.requested_type = type;
  return job;
}

// Fails (then optionally recovers) every node in the cluster, so scripted
// failures hit a job's placement regardless of where it landed.
std::vector<FailureEvent> FailAllNodes(const Cluster& cluster, double fail_at,
                                       double recover_at) {
  std::vector<FailureEvent> events;
  for (const NodeInfo& node : cluster.nodes()) {
    events.push_back(FailureEvent{fail_at, FailureKind::kNodeFail, node.id, 0, 1.0});
    if (recover_at > fail_at) {
      events.push_back(
          FailureEvent{recover_at, FailureKind::kNodeRecover, node.id, 0, 1.0});
    }
  }
  return events;
}

SimResult RunFcfs(const std::vector<TrainingJob>& trace, SimConfig config) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  FcfsScheduler sched(&oracle);
  Simulator sim(cluster, std::move(config));
  return sim.Run(sched, oracle, trace);
}

TEST(SimFaultsTest, EmptyFaultConfigMatchesDefaultConfig) {
  // Explicitly-disabled fault settings must leave results bit-identical to a
  // default SimConfig run.
  SimConfig plain;
  plain.record_events = true;
  SimConfig disabled_faults;
  disabled_faults.record_events = true;
  disabled_faults.failures.clear();
  disabled_faults.checkpoint = CheckpointConfig{};
  disabled_faults.node_mtbf = 0.0;
  const std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 4000), MakeJob(1, 60.0, 4000)};
  const SimResult a = RunFcfs(trace, plain);
  const SimResult b = RunFcfs(trace, disabled_faults);
  EXPECT_EQ(a.avg_jct, b.avg_jct);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.finished_jobs, b.finished_jobs);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.total_gpu_seconds, b.total_gpu_seconds);
  EXPECT_EQ(a.failure_kills, 0);
  EXPECT_DOUBLE_EQ(b.lost_gpu_seconds, 0.0);
}

TEST(SimFaultsTest, NodeFailureKillsRestartsAndRecovers) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig config;
  config.record_events = true;
  // Fail everything 10 minutes in, recover 20 minutes later.
  config.failures = FailAllNodes(cluster, 600.0, 1800.0);
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 100000)}, config);

  ASSERT_EQ(r.finished_jobs, 1);
  EXPECT_EQ(r.failure_kills, 1);
  EXPECT_GT(r.failure_events, 0);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs[0].failure_restarts, 1);
  EXPECT_EQ(r.jobs[0].restarts, r.jobs[0].sched_restarts + r.jobs[0].failure_restarts);
  // No checkpointing: the whole first segment is rolled back.
  EXPECT_GT(r.lost_gpu_seconds, 0.0);
  EXPECT_LT(r.goodput, 1.0);
  // Recovery latency spans the outage (kill at 600, restart once hardware
  // returns at 1800, plus restart overhead).
  ASSERT_EQ(r.recovery_latencies.size(), 1u);
  EXPECT_GE(r.recovery_latencies[0], 1200.0);

  int kills = 0, node_fails = 0, node_recovers = 0;
  for (const SimEvent& e : r.events) {
    kills += e.kind == SimEvent::Kind::kFailureKill;
    node_fails += e.kind == SimEvent::Kind::kNodeFail;
    node_recovers += e.kind == SimEvent::Kind::kNodeRecover;
  }
  EXPECT_EQ(kills, 1);
  EXPECT_GT(node_fails, 0);
  EXPECT_EQ(node_fails, node_recovers);
}

TEST(SimFaultsTest, GoodputLedgerIsConsistent) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig config;
  config.failures = FailAllNodes(cluster, 600.0, 1800.0);
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 100000)}, config);
  EXPECT_GT(r.total_gpu_seconds, 0.0);
  // total = useful + lost + overhead (restart stalls), all non-negative.
  EXPECT_GE(r.total_gpu_seconds,
            r.useful_gpu_seconds + r.lost_gpu_seconds - 1e-6 * r.total_gpu_seconds);
  EXPECT_GE(r.useful_gpu_seconds, 0.0);
  EXPECT_GE(r.lost_gpu_seconds, 0.0);
  EXPECT_NEAR(r.goodput, r.useful_gpu_seconds / r.total_gpu_seconds, 1e-12);
}

TEST(SimFaultsTest, AvailabilityTimelineDipsDuringOutage) {
  Cluster cluster = MakeMotivationCluster();
  const int total = cluster.TotalGpus();
  SimConfig config;
  // Long outage covering several scheduling rounds.
  config.failures = FailAllNodes(cluster, 600.0, 3000.0);
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 100000)}, config);
  bool saw_degraded = false;
  bool saw_healthy = false;
  for (const ThroughputSample& s : r.timeline) {
    saw_degraded = saw_degraded || s.usable_gpus == 0;
    saw_healthy = saw_healthy || s.usable_gpus == total;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_healthy);
}

TEST(SimFaultsTest, CheckpointingBoundsLostWork) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig no_ckpt;
  no_ckpt.failures = FailAllNodes(cluster, 1200.0, 1500.0);
  SimConfig ckpt = no_ckpt;
  ckpt.checkpoint.interval = 60.0;
  ckpt.checkpoint.cost = 0.0;  // isolate the rollback effect
  const std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 100000)};
  const SimResult without = RunFcfs(trace, no_ckpt);
  const SimResult with = RunFcfs(trace, ckpt);
  ASSERT_EQ(without.failure_kills, 1);
  ASSERT_EQ(with.failure_kills, 1);
  // A 60 s checkpoint cadence preserves nearly the whole 20-minute segment.
  EXPECT_LT(with.lost_gpu_seconds, without.lost_gpu_seconds);
  EXPECT_GT(with.goodput, without.goodput);
  // Less work redone => the job finishes no later.
  EXPECT_LE(with.jobs[0].finish, without.jobs[0].finish);
}

TEST(SimFaultsTest, YoungDalyDerivesIntervalFromMtbf) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig config;
  config.failures = FailAllNodes(cluster, 1200.0, 1500.0);
  config.checkpoint.young_daly = true;
  config.checkpoint.cost = 30.0;
  config.node_mtbf = 8.0 * kHour;
  const SimResult r = RunFcfs({MakeJob(0, 0.0, 100000)}, config);
  ASSERT_EQ(r.failure_kills, 1);
  // Young/Daly at 8h MTBF / 30s cost gives a ~20 min interval: part of the
  // 20-minute first segment survives.
  EXPECT_GT(r.useful_gpu_seconds, 0.0);
  EXPECT_LT(r.lost_gpu_seconds, r.total_gpu_seconds);
}

TEST(SimFaultsTest, StragglerWindowSlowsTheJob) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig healthy;
  const std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 50000)};
  const SimResult fast = RunFcfs(trace, healthy);
  ASSERT_EQ(fast.finished_jobs, 1);

  SimConfig slow = healthy;
  slow.record_events = true;
  for (const NodeInfo& node : cluster.nodes()) {
    slow.failures.push_back(
        FailureEvent{0.0, FailureKind::kStragglerStart, node.id, 0, 2.0});
  }
  const SimResult degraded = RunFcfs(trace, slow);
  ASSERT_EQ(degraded.finished_jobs, 1);
  // Every node at 2x iteration time: completion takes measurably longer, with
  // no kills or lost work (stragglers degrade, they don't destroy).
  EXPECT_GT(degraded.jobs[0].finish, 1.5 * fast.jobs[0].finish);
  EXPECT_EQ(degraded.failure_kills, 0);
  EXPECT_DOUBLE_EQ(degraded.lost_gpu_seconds, 0.0);
  bool saw_straggler_event = false;
  for (const SimEvent& e : degraded.events) {
    saw_straggler_event = saw_straggler_event || e.kind == SimEvent::Kind::kStragglerStart;
  }
  EXPECT_TRUE(saw_straggler_event);
}

TEST(SimFaultsTest, MidRunStragglerEndRestoresFullSpeed) {
  Cluster cluster = MakeMotivationCluster();
  SimConfig forever;
  for (const NodeInfo& node : cluster.nodes()) {
    forever.failures.push_back(
        FailureEvent{0.0, FailureKind::kStragglerStart, node.id, 0, 2.0});
  }
  SimConfig brief = forever;
  for (const NodeInfo& node : cluster.nodes()) {
    brief.failures.push_back(
        FailureEvent{900.0, FailureKind::kStragglerEnd, node.id, 0, 1.0});
  }
  const std::vector<TrainingJob> trace = {MakeJob(0, 0.0, 50000)};
  const SimResult all_slow = RunFcfs(trace, forever);
  const SimResult recovers = RunFcfs(trace, brief);
  ASSERT_EQ(all_slow.finished_jobs, 1);
  ASSERT_EQ(recovers.finished_jobs, 1);
  EXPECT_LT(recovers.jobs[0].finish, all_slow.jobs[0].finish);
}

TEST(SimFaultsDeathTest, RejectsMalformedConfigs) {
  const Cluster cluster = MakeMotivationCluster();
  SimConfig zero_interval;
  zero_interval.schedule_interval = 0.0;
  EXPECT_DEATH(Simulator(cluster, zero_interval), "schedule_interval");

  SimConfig negative_restart;
  negative_restart.restart_overhead = -1.0;
  EXPECT_DEATH(Simulator(cluster, negative_restart), "restart_overhead");

  SimConfig negative_bandwidth;
  negative_bandwidth.checkpoint_bandwidth = -1.0;
  EXPECT_DEATH(Simulator(cluster, negative_bandwidth), "checkpoint_bandwidth");

  SimConfig negative_cap;
  negative_cap.max_time_factor = -1.0;
  EXPECT_DEATH(Simulator(cluster, negative_cap), "max_time_factor");

  SimConfig bad_node;
  bad_node.failures.push_back(FailureEvent{60.0, FailureKind::kNodeFail, 9999, 0, 1.0});
  EXPECT_DEATH(Simulator(cluster, bad_node), "unknown node");
}

}  // namespace
}  // namespace crius
