#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

class TiresiasTest : public SchedTestBase {
 protected:
  TiresiasTest() : SchedTestBase(MakePhysicalTestbed()), sched_(&oracle_) {}
  TiresiasScheduler sched_;
};

TEST_F(TiresiasTest, FreshJobsPreemptLongServedOnes) {
  // A long-served running job (level 2) loses its GPUs to a fresh arrival
  // when the pool is contended.
  JobState* old_job = AddRunning(0, kSmall, 32, GpuType::kA40);
  old_job->iters_done = 1.0e6;  // huge attained service
  old_job->iter_time = 1.0;
  AddQueued(1, kSmall, 32, GpuType::kA40, /*submit=*/100.0);
  const ScheduleDecision d = sched_.Schedule(Round(200.0));
  CheckCapacity(d);
  EXPECT_TRUE(d.assignments.count(1));
  EXPECT_FALSE(d.assignments.count(0));  // preempted
}

TEST_F(TiresiasTest, SameLevelIsFifo) {
  AddQueued(0, kSmall, 32, GpuType::kA40, /*submit=*/50.0);
  AddQueued(1, kSmall, 32, GpuType::kA40, /*submit=*/10.0);
  const ScheduleDecision d = sched_.Schedule(Round(60.0));
  EXPECT_TRUE(d.assignments.count(1));   // earlier submit wins
  EXPECT_FALSE(d.assignments.count(0));
}

TEST_F(TiresiasTest, NeverScalesOrMigrates) {
  AddQueued(0, kSmall, 8, GpuType::kA10, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kA10);
  EXPECT_EQ(d.assignments.at(0).ngpus, 8);
  EXPECT_EQ(d.assignments.at(0).nstages, 0);
}

TEST_F(TiresiasTest, RunningJobKeptWhenNoContention) {
  JobState* running = AddRunning(0, kSmall, 16, GpuType::kA40);
  running->iters_done = 1.0e6;
  running->iter_time = 1.0;
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, running->ngpus);
}

TEST_F(TiresiasTest, SkipsUnlaunchableShapes) {
  AddQueued(0, ModelSpec{ModelFamily::kMoe, 27.0, 256}, 2, GpuType::kA10, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_FALSE(d.assignments.count(0));
}

TEST_F(TiresiasTest, CapacityRespectedUnderPressure) {
  for (int i = 0; i < 20; ++i) {
    AddQueued(i, kSmall, 8, GpuType::kA40, static_cast<double>(i));
  }
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  EXPECT_EQ(d.assignments.size(), 4u);  // 32 GPUs / 8
}

}  // namespace
}  // namespace crius
