#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace crius {
namespace {

TEST(SplitMix64Test, DeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  // Nearby inputs should diverge in many bits.
  const uint64_t a = SplitMix64(42);
  const uint64_t b = SplitMix64(43);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

TEST(HashStringTest, DistinguishesStrings) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7, "x");
  Rng b(7, "x");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentStreamNamesDiverge) {
  Rng a(7, "x");
  Rng b(7, "y");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(4);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) {
    v.push_back(rng.LogNormal(std::log(10.0), 0.8));
  }
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 10.0, 1.0);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.0));
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Poisson(200.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(10);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex({1.0, 2.0, 1.0})]++;
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
}

TEST(RngTest, WeightedIndexSkipsZeroWeights) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashNoiseTest, BoundedAndDeterministic) {
  for (uint64_t k = 0; k < 1000; ++k) {
    const double x = HashNoise(99, k);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
    EXPECT_EQ(x, HashNoise(99, k));
  }
}

TEST(HashNoiseTest, ApproximatelyCentered) {
  double sum = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    sum += HashNoise(7, static_cast<uint64_t>(k));
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(HashJitterTest, WithinAmplitude) {
  for (uint64_t k = 0; k < 1000; ++k) {
    const double j = HashJitter(1, k, 0.05);
    EXPECT_GE(j, 0.95);
    EXPECT_LE(j, 1.05);
  }
}

}  // namespace
}  // namespace crius
