// Tests for the migration cost model (src/reconfig/migration_cost.h) and the
// degenerate-input guards of the checkpoint model it builds on
// (src/fault/checkpoint.h). Both run unconditionally inside the engine and
// the reconfig policy, so they must be total: bad knobs resolve to "free" or
// "disabled", never to an abort.

#include "src/reconfig/migration_cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/fault/checkpoint.h"
#include "src/model/models.h"

namespace crius {
namespace {

const ModelSpec kSpec{ModelFamily::kBert, 1.3, 128};

TEST(MigrationCostTest, FixedCostModelSumsAllLegs) {
  MigrationCostConfig config;
  config.restart_overhead = 60.0;
  config.checkpoint_bandwidth = 0.0;  // size-independent model
  config.checkpoint_cost = 30.0;
  config.warmup_base = 20.0;
  config.warmup_per_gpu = 1.0;
  const MigrationCostModel model(config);
  const Cell from{GpuType::kA40, 8, 2};
  const Cell to{GpuType::kA40, 16, 4};
  // write + restore (2 x 30) + relaunch (60) + warmup (20 + 16).
  EXPECT_DOUBLE_EQ(model.Cost(kSpec, from, to), 2.0 * 30.0 + 60.0 + 20.0 + 16.0);
}

TEST(MigrationCostTest, BandwidthModelScalesWithModelSize) {
  MigrationCostConfig config;
  config.checkpoint_bandwidth = 1e9;  // 1 GB/s
  const MigrationCostModel model(config);
  const Cell from{GpuType::kA40, 8, 2};
  const Cell to{GpuType::kA40, 8, 4};
  const double write = GetOpGraph(kSpec).TotalParamBytes() / 1e9;
  EXPECT_DOUBLE_EQ(model.Cost(kSpec, from, to),
                   2.0 * write + config.restart_overhead + config.warmup_base +
                       config.warmup_per_gpu * 8.0);
  // A bigger model pays a bigger write leg under the same bandwidth.
  const ModelSpec bigger{ModelFamily::kBert, 6.7, 256};
  EXPECT_GT(model.Cost(bigger, from, to), model.Cost(kSpec, from, to));
}

TEST(MigrationCostTest, GrowingTargetsCostMoreWarmup) {
  const MigrationCostModel model(MigrationCostConfig{});
  const Cell from{GpuType::kA40, 8, 2};
  EXPECT_LT(model.Cost(kSpec, from, Cell{GpuType::kA40, 4, 2}),
            model.Cost(kSpec, from, Cell{GpuType::kA40, 16, 2}));
}

TEST(MigrationCostTest, NegativeKnobsClampToFreeInsteadOfAborting) {
  MigrationCostConfig config;
  config.restart_overhead = -5.0;
  config.checkpoint_cost = -1.0;
  config.warmup_base = -3.0;
  config.warmup_per_gpu = -0.5;
  const MigrationCostModel model(config);
  EXPECT_DOUBLE_EQ(model.Cost(kSpec, Cell{GpuType::kA40, 8, 2}, Cell{GpuType::kA10, 8, 2}),
                   0.0);
}

TEST(CheckpointGuardTest, YoungDalyDegenerateInputsDisableCheckpointing) {
  EXPECT_DOUBLE_EQ(YoungDalyInterval(0.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(YoungDalyInterval(-3600.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(YoungDalyInterval(3600.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(YoungDalyInterval(3600.0, -1.0), 0.0);
  // The healthy case still matches the first-order optimum.
  EXPECT_DOUBLE_EQ(YoungDalyInterval(3600.0, 30.0), std::sqrt(2.0 * 3600.0 * 30.0));
}

TEST(CheckpointGuardTest, OverheadFactorIsOneForDisabledOrFreeCheckpoints) {
  EXPECT_DOUBLE_EQ(CheckpointOverheadFactor(0.0, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(CheckpointOverheadFactor(-10.0, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(CheckpointOverheadFactor(600.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(CheckpointOverheadFactor(600.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(CheckpointOverheadFactor(600.0, 60.0), 1.1);
}

TEST(CheckpointGuardTest, EffectiveIntervalIsTotalOverDegenerateConfigs) {
  CheckpointConfig config;
  config.interval = -100.0;  // negative interval clamps to disabled
  EXPECT_DOUBLE_EQ(EffectiveCheckpointInterval(config, 3600.0, 4), 0.0);

  config.interval = 600.0;
  config.young_daly = true;
  config.cost = 0.0;  // free writes: Young/Daly has no optimum, fixed interval
  EXPECT_DOUBLE_EQ(EffectiveCheckpointInterval(config, 3600.0, 4), 600.0);

  config.cost = 30.0;
  // Unknown MTBF falls back to the fixed interval too.
  EXPECT_DOUBLE_EQ(EffectiveCheckpointInterval(config, 0.0, 4), 600.0);
  // Zero node span clamps to one node instead of dividing by zero.
  EXPECT_DOUBLE_EQ(EffectiveCheckpointInterval(config, 3600.0, 0),
                   YoungDalyInterval(3600.0, 30.0));
}

}  // namespace
}  // namespace crius
