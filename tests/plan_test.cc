#include "src/parallel/plan.h"

#include <gtest/gtest.h>

#include "src/model/models.h"

namespace crius {
namespace {

ParallelPlan TwoStagePlan() {
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  plan.stages.push_back(StagePlan{0, 3, 4, 2, 2});
  plan.stages.push_back(StagePlan{3, 6, 4, 4, 1});
  return plan;
}

TEST(ParallelPlanTest, Totals) {
  const ParallelPlan plan = TwoStagePlan();
  EXPECT_EQ(plan.num_stages(), 2);
  EXPECT_EQ(plan.total_gpus(), 8);
  EXPECT_EQ(plan.num_microbatches(), 8);  // 4 x stages (GPipe)
}

TEST(ParallelPlanTest, ToStringShowsStages) {
  EXPECT_EQ(TwoStagePlan().ToString(), "A100 P2[D2T2|D4T1]");
}

TEST(ParallelPlanTest, ShortFormUniform) {
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA40;
  plan.stages.push_back(StagePlan{0, 2, 4, 4, 1});
  EXPECT_EQ(plan.ShortForm(), "4D");
  plan.stages[0].dp = 2;
  plan.stages[0].tp = 2;
  EXPECT_EQ(plan.ShortForm(), "2D2T");
  plan.stages.push_back(StagePlan{2, 4, 4, 2, 2});
  EXPECT_EQ(plan.ShortForm(), "2P2D2T");
}

TEST(ParallelPlanTest, ShortFormSingleGpu) {
  ParallelPlan plan;
  plan.stages.push_back(StagePlan{0, 1, 1, 1, 1});
  EXPECT_EQ(plan.ShortForm(), "1D");
}

TEST(ParallelPlanTest, ShortFormMixedFallsBack) {
  const ParallelPlan plan = TwoStagePlan();
  EXPECT_EQ(plan.ShortForm(), plan.ToString());
}

TEST(ValidatePlanTest, AcceptsWellFormed) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  plan.stages.push_back(StagePlan{0, g.size() / 2, 2, 2, 1});
  plan.stages.push_back(StagePlan{g.size() / 2, g.size(), 2, 1, 2});
  ValidatePlan(plan, g);  // must not abort
}

TEST(ValidatePlanDeathTest, RejectsGapsAndOverlaps) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  plan.gpu_type = GpuType::kA100;
  plan.stages.push_back(StagePlan{0, 2, 1, 1, 1});
  plan.stages.push_back(StagePlan{3, g.size(), 1, 1, 1});  // gap at op 2
  EXPECT_DEATH(ValidatePlan(plan, g), "contiguous");
}

TEST(ValidatePlanDeathTest, RejectsPartialCoverage) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  plan.stages.push_back(StagePlan{0, 2, 1, 1, 1});
  EXPECT_DEATH(ValidatePlan(plan, g), "cover");
}

TEST(ValidatePlanDeathTest, RejectsBadSplit) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  plan.stages.push_back(StagePlan{0, g.size(), 4, 2, 1});  // dp*tp != gpus
  EXPECT_DEATH(ValidatePlan(plan, g), "dp\\*tp");
}

TEST(ValidatePlanDeathTest, RejectsNonPowerOfTwoGpus) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  plan.stages.push_back(StagePlan{0, g.size(), 3, 3, 1});
  EXPECT_DEATH(ValidatePlan(plan, g), "power of two");
}

TEST(ValidatePlanDeathTest, RejectsEmptyPlan) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128});
  ParallelPlan plan;
  EXPECT_DEATH(ValidatePlan(plan, g), "no stages");
}

}  // namespace
}  // namespace crius
