// Tests for the scheduling-objective extension (max-min fairness), the
// size-dependent checkpoint cost model, and the slowdown/fairness metrics.

#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sim/simulator.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

TEST(CriusObjectiveTest, FairVariantName) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  CriusScheduler fair(&oracle, CriusConfig{.objective = CriusObjective::kMaxMinFairness});
  EXPECT_EQ(fair.name(), "Crius-Fair");
}

class FairnessSchedTest : public SchedTestBase {
 protected:
  FairnessSchedTest() : SchedTestBase(MakeSimulatedCluster()) {}
};

TEST_F(FairnessSchedTest, WaterFillingUpgradesWorstOffJob) {
  // Two placed jobs, one badly deprived (running at N/2 on a slow type) and
  // one already at a good score; with limited upscale budget, the fairness
  // objective must improve the deprived one first.
  CriusConfig config;
  config.objective = CriusObjective::kMaxMinFairness;
  config.max_upscale_moves = 1;
  CriusScheduler sched(&oracle_, config);

  JobState* deprived = AddRunning(0, kSmall, 2, GpuType::kV100, /*nstages=*/1,
                                  /*requested_gpus=*/16);
  JobState* healthy = AddRunning(1, kSmall, 16, GpuType::kA100, /*nstages=*/1,
                                 /*requested_gpus=*/16);
  const ScheduleDecision d = sched.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  ASSERT_TRUE(d.assignments.count(1));
  // The single allowed move went to the deprived job.
  const Assignment& a0 = d.assignments.at(0);
  EXPECT_TRUE(a0.ngpus > deprived->ngpus || a0.type != deprived->gpu_type);
  EXPECT_EQ(d.assignments.at(1).ngpus, healthy->ngpus);
  EXPECT_EQ(d.assignments.at(1).type, healthy->gpu_type);
}

TEST_F(FairnessSchedTest, BothObjectivesRespectCapacity) {
  for (CriusObjective objective :
       {CriusObjective::kMaxThroughput, CriusObjective::kMaxMinFairness}) {
    CriusScheduler sched(&oracle_, CriusConfig{.objective = objective});
    states_.clear();
    for (int i = 0; i < 50; ++i) {
      AddQueued(i, kSmall, 16, GpuType::kA100, static_cast<double>(i));
    }
    const ScheduleDecision d = sched.Schedule(Round(0.0));
    CheckCapacity(d);
    EXPECT_GT(d.assignments.size(), 5u);
  }
}

// ---------- checkpoint-bandwidth restart model --------------------------------

TEST(CheckpointCostTest, LargerModelsPayMoreOnRestart) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  SimConfig config;
  config.checkpoint_bandwidth = 2e9;  // 2 GB/s

  auto run_one = [&](const ModelSpec& spec) {
    TrainingJob job;
    job.id = 0;
    job.spec = spec;
    job.iterations = 10;
    job.requested_gpus = 4;
    job.requested_type = GpuType::kA100;
    FcfsScheduler sched(&oracle);
    Simulator sim(cluster, config);
    return sim.Run(sched, oracle, {job});
  };

  const SimResult small = run_one(ModelSpec{ModelFamily::kBert, 0.76, 128});
  const SimResult large = run_one(ModelSpec{ModelFamily::kBert, 1.3, 128});
  ASSERT_TRUE(small.jobs[0].finished && large.jobs[0].finished);
  // Start-up checkpoint-read gap must reflect the parameter-size difference.
  const double small_params = GetOpGraph(ModelSpec{ModelFamily::kBert, 0.76, 128}).TotalParamBytes();
  const double large_params = GetOpGraph(ModelSpec{ModelFamily::kBert, 1.3, 128}).TotalParamBytes();
  const double expected_gap = 2.0 * (large_params - small_params) / config.checkpoint_bandwidth;
  const double iter_gap = 10.0 * (oracle.BestAdaptive(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                                      GpuType::kA100, 4)
                                      ->iter_time -
                                  oracle.BestAdaptive(ModelSpec{ModelFamily::kBert, 0.76, 128},
                                                      GpuType::kA100, 4)
                                      ->iter_time);
  EXPECT_NEAR(large.jobs[0].finish - small.jobs[0].finish, expected_gap + iter_gap, 1e-6);
}

TEST(CheckpointCostTest, ZeroBandwidthKeepsFixedModel) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  TrainingJob job;
  job.id = 0;
  job.spec = kSmall;
  job.iterations = 10;
  job.requested_gpus = 4;
  job.requested_type = GpuType::kA100;
  FcfsScheduler sched(&oracle);
  Simulator sim(cluster, SimConfig{});
  const SimResult r = sim.Run(sched, oracle, {job});
  const double iter = oracle.BestAdaptive(kSmall, GpuType::kA100, 4)->iter_time;
  EXPECT_NEAR(r.jobs[0].finish, SimConfig{}.restart_overhead + 10.0 * iter, 1e-6);
}

// ---------- slowdown / fairness metrics ---------------------------------------

TEST(SlowdownMetricsTest, ComputedFromIdealDuration) {
  SimResult result;
  JobRecord a;
  a.id = 0;
  a.finished = true;
  a.submit = 0.0;
  a.first_start = 0.0;
  a.finish = 200.0;
  a.ideal_duration = 100.0;  // slowdown 2
  result.jobs.push_back(a);
  JobRecord b = a;
  b.id = 1;
  b.finish = 100.0;  // slowdown 1
  result.jobs.push_back(b);
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.avg_slowdown, 1.5);
  EXPECT_GT(result.p99_slowdown, 1.9);
  // Jain over rates {0.5, 1.0}: (1.5)^2 / (2 * 1.25) = 0.9.
  EXPECT_NEAR(result.fairness_index, 0.9, 1e-12);
}

TEST(SlowdownMetricsTest, PerfectServiceIsFair) {
  SimResult result;
  for (int i = 0; i < 4; ++i) {
    JobRecord r;
    r.id = i;
    r.finished = true;
    r.first_start = 0.0;
    r.finish = 50.0;
    r.ideal_duration = 50.0;
    result.jobs.push_back(r);
  }
  result.Finalize();
  EXPECT_DOUBLE_EQ(result.avg_slowdown, 1.0);
  EXPECT_DOUBLE_EQ(result.fairness_index, 1.0);
}

TEST(SlowdownMetricsTest, SimulatorFillsIdealDuration) {
  Cluster cluster = MakeMotivationCluster();
  PerformanceOracle oracle(cluster, 42);
  TrainingJob job;
  job.id = 0;
  job.spec = kSmall;
  job.iterations = 100;
  job.requested_gpus = 4;
  job.requested_type = GpuType::kA100;
  FcfsScheduler sched(&oracle);
  Simulator sim(cluster, SimConfig{});
  const SimResult r = sim.Run(sched, oracle, {job});
  const double iter = oracle.BestAdaptive(kSmall, GpuType::kA100, 4)->iter_time;
  EXPECT_NEAR(r.jobs[0].ideal_duration, 100.0 * iter, 1e-9);
  EXPECT_GE(r.avg_slowdown, 1.0);
}

}  // namespace
}  // namespace crius
