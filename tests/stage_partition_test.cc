#include "src/parallel/stage_partition.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/model/models.h"
#include "src/util/mathutil.h"

namespace crius {
namespace {

// ---------- Property sweep over (model, gpus, stages) -------------------------

using PartitionParam = std::tuple<ModelSpec, int, int>;  // spec, ngpus, nstages

class PartitionPropertyTest : public ::testing::TestWithParam<PartitionParam> {};

TEST_P(PartitionPropertyTest, Invariants) {
  const auto& [spec, ngpus, nstages] = GetParam();
  const OpGraph& g = GetOpGraph(spec);
  if (nstages > std::min<int>(ngpus, static_cast<int>(g.size()))) {
    GTEST_SKIP();
  }
  const std::vector<StageRange> stages = PartitionStages(g, ngpus, nstages);

  // Coverage: contiguous, non-empty, tiles the graph.
  ASSERT_EQ(stages.size(), static_cast<size_t>(nstages));
  size_t expect = 0;
  int total_gpus = 0;
  for (const StageRange& s : stages) {
    EXPECT_EQ(s.op_begin, expect);
    EXPECT_GT(s.op_end, s.op_begin);
    EXPECT_TRUE(IsPowerOfTwo(s.gpus)) << "stage gpus " << s.gpus;
    EXPECT_GE(s.gpus, 1);
    expect = s.op_end;
    total_gpus += s.gpus;
  }
  EXPECT_EQ(expect, g.size());
  EXPECT_EQ(total_gpus, ngpus);
}

TEST_P(PartitionPropertyTest, FlopsReasonablyBalanced) {
  const auto& [spec, ngpus, nstages] = GetParam();
  const OpGraph& g = GetOpGraph(spec);
  if (nstages > std::min<int>(ngpus, static_cast<int>(g.size())) || nstages == 1) {
    GTEST_SKIP();
  }
  const std::vector<StageRange> stages = PartitionStages(g, ngpus, nstages);
  // Per-GPU load of any stage should not exceed a few times the ideal share
  // (single operators bound how fine the split can get).
  const double ideal = g.TotalFwdFlops() / static_cast<double>(ngpus);
  for (const StageRange& s : stages) {
    const double per_gpu = g.FwdFlops(s.op_begin, s.op_end) / static_cast<double>(s.gpus);
    EXPECT_LT(per_gpu, 6.0 * ideal + 1e-6) << spec.Name() << " P" << nstages;
  }
}

TEST_P(PartitionPropertyTest, Deterministic) {
  const auto& [spec, ngpus, nstages] = GetParam();
  const OpGraph& g = GetOpGraph(spec);
  if (nstages > std::min<int>(ngpus, static_cast<int>(g.size()))) {
    GTEST_SKIP();
  }
  const auto a = PartitionStages(g, ngpus, nstages);
  const auto b = PartitionStages(g, ngpus, nstages);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op_begin, b[i].op_begin);
    EXPECT_EQ(a[i].op_end, b[i].op_end);
    EXPECT_EQ(a[i].gpus, b[i].gpus);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionPropertyTest,
    ::testing::Combine(
        ::testing::Values(ModelSpec{ModelFamily::kBert, 1.3, 128},
                          ModelSpec{ModelFamily::kBert, 6.7, 128},
                          ModelSpec{ModelFamily::kWideResNet, 2.0, 256},
                          ModelSpec{ModelFamily::kMoe, 2.4, 256},
                          ModelSpec{ModelFamily::kMoe, 27.0, 512}),
        ::testing::Values(1, 2, 4, 8, 16, 64),
        ::testing::Values(1, 2, 4, 8, 16)));

// ---------- Targeted behaviours -----------------------------------------------

TEST(PartitionStagesTest, SingleStageGetsEverything) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 1.3, 128});
  const auto stages = PartitionStages(g, 8, 1);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].op_begin, 0u);
  EXPECT_EQ(stages[0].op_end, g.size());
  EXPECT_EQ(stages[0].gpus, 8);
}

TEST(PartitionStagesTest, UniformModelSplitsEvenly) {
  // A uniform 8-op model over 8 GPUs in 4 stages: 2 ops / 2 GPUs each.
  OpGraph g;
  for (int i = 0; i < 8; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.fwd_flops_per_sample = 100.0;
    op.param_bytes = 10.0;
    op.act_bytes_per_sample = 1.0;
    g.Add(op);
  }
  g.Finalize();
  const auto stages = PartitionStages(g, 8, 4);
  for (const StageRange& s : stages) {
    EXPECT_EQ(s.op_end - s.op_begin, 2u);
    EXPECT_EQ(s.gpus, 2);
  }
}

TEST(PartitionStagesTest, BoundariesPreferSmallComm) {
  // Equal FLOPs everywhere, but one cheap boundary: the split must use it.
  OpGraph g;
  for (int i = 0; i < 4; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.fwd_flops_per_sample = 100.0;
    op.param_bytes = 10.0;
    op.act_bytes_per_sample = (i == 1) ? 1.0 : 1000.0;  // cheap boundary after op 1
    g.Add(op);
  }
  g.Finalize();
  const auto stages = PartitionStages(g, 2, 2);
  EXPECT_EQ(stages[0].op_end, 2u);
}

TEST(PartitionStagesTest, TwoStagesAlwaysSplitEvenly) {
  // A power of two is the sum of two powers of two only as half + half, so a
  // 2-stage split always assigns equal GPU counts regardless of imbalance.
  OpGraph g;
  for (int i = 0; i < 4; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.fwd_flops_per_sample = (i == 0) ? 700.0 : 100.0;
    op.param_bytes = 10.0;
    op.act_bytes_per_sample = 1.0;
    g.Add(op);
  }
  g.Finalize();
  const auto stages = PartitionStages(g, 8, 2);
  EXPECT_EQ(stages[0].gpus, 4);
  EXPECT_EQ(stages[1].gpus, 4);
}

TEST(PartitionStagesTest, GpusFollowFlops) {
  // One heavy op and three light ones over 3 stages: the heavy stage gets
  // the lion's share.
  OpGraph g;
  for (int i = 0; i < 4; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.fwd_flops_per_sample = (i == 0) ? 1500.0 : 100.0;
    op.param_bytes = 10.0;
    op.act_bytes_per_sample = 1.0;
    g.Add(op);
  }
  g.Finalize();
  const auto stages = PartitionStages(g, 8, 3);
  EXPECT_EQ(stages[0].op_end, 1u);  // the heavy op sits alone
  EXPECT_GT(stages[0].gpus, stages[1].gpus);
  EXPECT_GT(stages[0].gpus, stages[2].gpus);
}

TEST(PartitionStagesDeathTest, InvalidArguments) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 1.3, 128});
  EXPECT_DEATH(PartitionStages(g, 6, 2), "power of two");
  EXPECT_DEATH(PartitionStages(g, 4, 8), "invalid stage count");
  EXPECT_DEATH(PartitionStages(g, 4, 0), "invalid stage count");
}

TEST(CandidateStageCountsTest, LogChoices) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 1.3, 128});
  EXPECT_EQ(CandidateStageCounts(g, 8), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(CandidateStageCounts(g, 1), (std::vector<int>{1}));
}

TEST(CandidateStageCountsTest, CappedByMaxStages) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 6.7, 128});
  EXPECT_EQ(CandidateStageCounts(g, 64).back(), 16);  // default cap
  EXPECT_EQ(CandidateStageCounts(g, 64, 4).back(), 4);
}

TEST(CandidateStageCountsTest, CappedByGraphSize) {
  OpGraph g;
  for (int i = 0; i < 3; ++i) {
    Operator op;
    op.fwd_flops_per_sample = 1.0;
    op.act_bytes_per_sample = 1.0;
    g.Add(op);
  }
  g.Finalize();
  EXPECT_EQ(CandidateStageCounts(g, 16), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace crius
