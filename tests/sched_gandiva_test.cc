#include <gtest/gtest.h>

#include "src/sched/baselines.h"
#include "tests/sched_test_util.h"

namespace crius {
namespace {

const ModelSpec kSmall{ModelFamily::kBert, 0.76, 128};

class GandivaTest : public SchedTestBase {
 protected:
  GandivaTest() : SchedTestBase(MakeSimulatedCluster()), sched_(&oracle_) {}
  GandivaScheduler sched_;
};

TEST_F(GandivaTest, PlacesOnAnyTypeWithRoom) {
  AddQueued(0, kSmall, 4, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).ngpus, 4);  // never scales counts
}

TEST_F(GandivaTest, NeverScalesGpuCounts) {
  for (int i = 0; i < 10; ++i) {
    AddQueued(i, kSmall, 8, GpuType::kA40, static_cast<double>(i));
  }
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  for (const auto& [id, a] : d.assignments) {
    EXPECT_EQ(a.ngpus, 8) << "job " << id;
  }
}

TEST_F(GandivaTest, MigratesRunningJobToClearlyBetterType) {
  // BERT-2.6B on 4 V100s is far slower than on 4 A100s (Fig. 3b); Gandiva's
  // introspection observes the gap and migrates when A100s are free.
  const ModelSpec bert26{ModelFamily::kBert, 2.6, 128};
  AddRunning(0, bert26, 4, GpuType::kV100);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  CheckCapacity(d);
  ASSERT_TRUE(d.assignments.count(0));
  EXPECT_EQ(d.assignments.at(0).type, GpuType::kA100);
  EXPECT_EQ(d.assignments.at(0).ngpus, 4);
}

TEST_F(GandivaTest, MigrationLimitedPerRound) {
  const ModelSpec bert26{ModelFamily::kBert, 2.6, 128};
  AddRunning(0, bert26, 4, GpuType::kV100);
  AddRunning(1, bert26, 4, GpuType::kV100);
  AddRunning(2, bert26, 4, GpuType::kV100);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  int migrated = 0;
  for (const auto& [id, a] : d.assignments) {
    if (a.type != GpuType::kV100) {
      ++migrated;
    }
  }
  EXPECT_LE(migrated, GandivaScheduler::kMigrationsPerRound);
}

TEST_F(GandivaTest, LimitedBackfillStopsAfterManyBlocked) {
  // Fill A100/A40/A10 pools; then many blocked big jobs followed by a small
  // one far down the queue: bounded backfill must not reach it.
  AddRunning(100, kSmall, 256, GpuType::kA100);
  AddRunning(110, kSmall, 64, GpuType::kA100);
  AddRunning(101, kSmall, 256, GpuType::kA40);
  AddRunning(111, kSmall, 64, GpuType::kA40);
  AddRunning(102, kSmall, 256, GpuType::kA10);
  AddRunning(112, kSmall, 64, GpuType::kA10);
  AddRunning(103, kSmall, 256, GpuType::kV100);
  for (int i = 0; i < 6; ++i) {
    AddQueued(i, kSmall, 64, GpuType::kA100, static_cast<double>(i));  // all blocked
  }
  AddQueued(50, kSmall, 1, GpuType::kA100, 50.0);  // would fit on V100 leftovers
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_FALSE(d.assignments.count(50));
}

TEST_F(GandivaTest, SkipsShapesThatCannotLaunch) {
  // MoE-27B cannot start on 2 GPUs of any type; Gandiva leaves it queued.
  AddQueued(0, ModelSpec{ModelFamily::kMoe, 27.0, 256}, 2, GpuType::kA100, 0.0);
  const ScheduleDecision d = sched_.Schedule(Round(0.0));
  EXPECT_FALSE(d.assignments.count(0));
}

TEST_F(GandivaTest, DeterministicTypePick) {
  AddQueued(7, kSmall, 2, GpuType::kA40, 0.0);
  const ScheduleDecision a = sched_.Schedule(Round(0.0));
  GandivaScheduler fresh(&oracle_);
  const ScheduleDecision b = fresh.Schedule(Round(0.0));
  ASSERT_TRUE(a.assignments.count(7));
  ASSERT_TRUE(b.assignments.count(7));
  EXPECT_EQ(a.assignments.at(7).type, b.assignments.at(7).type);
}

}  // namespace
}  // namespace crius
