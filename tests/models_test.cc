#include "src/model/models.h"

#include <gtest/gtest.h>

#include "src/util/units.h"

namespace crius {
namespace {

// ---------- Parameterized over every Table-2 configuration -------------------

class AllModelsTest : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(AllModelsTest, BuildsFinalizedGraph) {
  const OpGraph g = BuildOpGraph(GetParam());
  EXPECT_TRUE(g.finalized());
  EXPECT_GE(g.size(), 3u);
}

TEST_P(AllModelsTest, ParameterCountNearNominal) {
  const ModelSpec spec = GetParam();
  const OpGraph& g = GetOpGraph(spec);
  const double params_b = g.TotalParamBytes() / 2.0 / kBillion;  // fp16 storage
  EXPECT_GT(params_b, spec.params_billion * 0.80)
      << spec.Name() << " built " << params_b << "B";
  EXPECT_LT(params_b, spec.params_billion * 1.25)
      << spec.Name() << " built " << params_b << "B";
}

TEST_P(AllModelsTest, AllOpsHaveNonNegativeQuantities) {
  const OpGraph& g = GetOpGraph(GetParam());
  for (const Operator& op : g.ops()) {
    EXPECT_GE(op.fwd_flops_per_sample, 0.0);
    EXPECT_GE(op.param_bytes, 0.0);
    EXPECT_GT(op.act_bytes_per_sample, 0.0);
    EXPECT_GE(op.act_mem_bytes_per_sample, op.act_bytes_per_sample);
    EXPECT_FALSE(op.name.empty());
  }
  EXPECT_GT(g.TotalFwdFlops(), 0.0);
}

TEST_P(AllModelsTest, CachedGraphIsStable) {
  const ModelSpec spec = GetParam();
  const OpGraph& a = GetOpGraph(spec);
  const OpGraph& b = GetOpGraph(spec);
  EXPECT_EQ(&a, &b);
}

INSTANTIATE_TEST_SUITE_P(Table2, AllModelsTest, ::testing::ValuesIn(AllModelConfigs()),
                         [](const ::testing::TestParamInfo<ModelSpec>& info) {
                           std::string name = info.param.Key();
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------- Family-specific structure ----------------------------------------

TEST(BertTest, LayerStructure) {
  const OpGraph g = BuildBert(2.6);
  // embedding + 32 x (attn, mlp) + head.
  EXPECT_EQ(g.size(), 1u + 2u * 32u + 1u);
  EXPECT_EQ(g.op(0).kind, OpKind::kEmbedding);
  EXPECT_EQ(g.op(1).kind, OpKind::kAttention);
  EXPECT_EQ(g.op(2).kind, OpKind::kMlp);
  EXPECT_EQ(g.op(g.size() - 1).kind, OpKind::kHead);
}

TEST(BertTest, MlpTwiceAttentionParams) {
  const OpGraph g = BuildBert(1.3);
  EXPECT_DOUBLE_EQ(g.op(2).param_bytes, 2.0 * g.op(1).param_bytes);
}

TEST(BertTest, NoAllToAllTraffic) {
  const OpGraph g = BuildBert(0.76);
  EXPECT_DOUBLE_EQ(g.A2aBytes(0, g.size()), 0.0);
}

TEST(MoeTest, AlternatingExpertLayers) {
  const OpGraph g = BuildMoe(2.4);
  int moe_layers = 0;
  int dense_layers = 0;
  for (const Operator& op : g.ops()) {
    if (op.kind == OpKind::kMoeLayer) {
      ++moe_layers;
      EXPECT_GT(op.a2a_bytes_per_sample, 0.0);
    } else if (op.kind == OpKind::kMlp) {
      ++dense_layers;
      EXPECT_DOUBLE_EQ(op.a2a_bytes_per_sample, 0.0);
    }
  }
  EXPECT_EQ(moe_layers, 8);
  EXPECT_EQ(dense_layers, 8);
}

TEST(MoeTest, ExpertParamsDominate) {
  const OpGraph g = BuildMoe(27.0);
  double moe_params = 0.0;
  for (const Operator& op : g.ops()) {
    if (op.kind == OpKind::kMoeLayer) {
      moe_params += op.param_bytes;
    }
  }
  EXPECT_GT(moe_params, 0.8 * g.TotalParamBytes());
}

TEST(MoeTest, HighParamsToFlopsRatioVsBert) {
  // MoE's signature: far more parameters per FLOP than a dense transformer.
  const OpGraph& moe = GetOpGraph(ModelSpec{ModelFamily::kMoe, 2.4, 256});
  const OpGraph& bert = GetOpGraph(ModelSpec{ModelFamily::kBert, 2.6, 256});
  const double moe_ratio = moe.TotalParamBytes() / moe.TotalFwdFlops();
  const double bert_ratio = bert.TotalParamBytes() / bert.TotalFwdFlops();
  EXPECT_GT(moe_ratio, 2.0 * bert_ratio);
}

TEST(WideResNetTest, BlockStructure) {
  const OpGraph g = BuildWideResNet(1.0);
  // stem + (3+4+6+3) blocks + head.
  EXPECT_EQ(g.size(), 1u + 16u + 1u);
  EXPECT_EQ(g.op(0).kind, OpKind::kConvBlock);
  EXPECT_EQ(g.op(g.size() - 1).kind, OpKind::kHead);
}

TEST(WideResNetTest, ActivationsShrinkThroughStages) {
  const OpGraph g = BuildWideResNet(2.0);
  // First conv block output is much larger than the last one's (spatial
  // shrinks 4x per group while channels only double).
  EXPECT_GT(g.op(1).act_bytes_per_sample, 4.0 * g.op(16).act_bytes_per_sample);
}

TEST(WideResNetTest, EarlyBlocksAreActivationHeavy) {
  const OpGraph g = BuildWideResNet(1.0);
  const Operator& early = g.op(1);
  EXPECT_GT(early.act_bytes_per_sample, early.param_bytes);
}

// ---------- Spec metadata -----------------------------------------------------

TEST(ModelSpecTest, Names) {
  EXPECT_EQ((ModelSpec{ModelFamily::kBert, 2.6, 128}).Name(), "BERT-2.6B");
  EXPECT_EQ((ModelSpec{ModelFamily::kBert, 0.76, 128}).Name(), "BERT-0.76B");
  EXPECT_EQ((ModelSpec{ModelFamily::kWideResNet, 6.8, 256}).Name(), "WRes-6.8B");
  EXPECT_EQ((ModelSpec{ModelFamily::kMoe, 27.0, 1024}).Name(), "MoE-27B");
  EXPECT_EQ((ModelSpec{ModelFamily::kMoe, 10.0, 256}).Name(), "MoE-10B");
}

TEST(ModelSpecTest, KeyIncludesBatch) {
  const ModelSpec a{ModelFamily::kBert, 1.3, 128};
  const ModelSpec b{ModelFamily::kBert, 1.3, 256};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_FALSE(a == b);
}

TEST(ModelSpecTest, AllConfigsCount) {
  // 5 WRes x 3 + 4 BERT x 3 + 5 MoE x 3 = 42 (Table 2).
  EXPECT_EQ(AllModelConfigs().size(), 42u);
}

TEST(ModelSpecTest, EfficiencyAndHalfPointPositive) {
  for (ModelFamily f :
       {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    EXPECT_GT(ComputeEfficiency(f), 0.0);
    EXPECT_LT(ComputeEfficiency(f), 1.0);
    EXPECT_GT(BatchHalfPoint(f), 0.0);
  }
}

TEST(ModelSpecDeathTest, UnsupportedSizeAborts) {
  EXPECT_DEATH(BuildBert(3.14), "unsupported");
  EXPECT_DEATH(BuildMoe(1.0), "unsupported");
  EXPECT_DEATH(BuildWideResNet(3.0), "unsupported");
}

}  // namespace
}  // namespace crius
