// Tests for the deterministic failure injector (src/fault/failure_injector).

#include "src/fault/failure_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/hw/cluster.h"
#include "src/util/units.h"

namespace crius {
namespace {

FailureInjectorConfig BaseConfig() {
  FailureInjectorConfig c;
  c.node_mtbf_hours = 4.0;
  c.gpu_mtbf_hours = 8.0;
  c.straggler_rate = 0.05;
  c.horizon = 48.0 * kHour;
  c.seed = 42;
  return c;
}

TEST(FailureInjectorTest, DisabledConfigYieldsNoEvents) {
  const Cluster cluster = MakePhysicalTestbed();
  FailureInjectorConfig c;  // all rates zero
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(GenerateFailureSchedule(cluster, c).empty());
}

TEST(FailureInjectorTest, SameSeedGivesByteIdenticalSchedule) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto a = GenerateFailureSchedule(cluster, BaseConfig());
  const auto b = GenerateFailureSchedule(cluster, BaseConfig());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FailureInjectorTest, DifferentSeedsDiffer) {
  const Cluster cluster = MakePhysicalTestbed();
  FailureInjectorConfig other = BaseConfig();
  other.seed = 43;
  EXPECT_NE(GenerateFailureSchedule(cluster, BaseConfig()),
            GenerateFailureSchedule(cluster, other));
}

TEST(FailureInjectorTest, ScheduleIsInCanonicalOrder) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto events = GenerateFailureSchedule(cluster, BaseConfig());
  ASSERT_GT(events.size(), 1u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(FailureInjectorTest, FailureAndStragglerStartsStayWithinHorizon) {
  const Cluster cluster = MakePhysicalTestbed();
  const FailureInjectorConfig c = BaseConfig();
  for (const FailureEvent& e : GenerateFailureSchedule(cluster, c)) {
    EXPECT_GE(e.time, 0.0);
    if (e.kind == FailureKind::kNodeFail || e.kind == FailureKind::kGpuFail ||
        e.kind == FailureKind::kStragglerStart) {
      EXPECT_LT(e.time, c.horizon);
    }
  }
}

TEST(FailureInjectorTest, EveryFailureIsPairedWithALaterRecovery) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto events = GenerateFailureSchedule(cluster, BaseConfig());
  int node_fails = 0, node_recovers = 0, gpu_fails = 0, gpu_recovers = 0;
  int straggler_starts = 0, straggler_ends = 0;
  for (const FailureEvent& e : events) {
    switch (e.kind) {
      case FailureKind::kNodeFail:
        ++node_fails;
        break;
      case FailureKind::kNodeRecover:
        ++node_recovers;
        break;
      case FailureKind::kGpuFail:
        ++gpu_fails;
        EXPECT_GE(e.gpus, 1);
        break;
      case FailureKind::kGpuRecover:
        ++gpu_recovers;
        break;
      case FailureKind::kStragglerStart:
        ++straggler_starts;
        EXPECT_GT(e.slowdown, 1.0);
        break;
      case FailureKind::kStragglerEnd:
        ++straggler_ends;
        break;
    }
  }
  EXPECT_GT(node_fails, 0);
  EXPECT_GT(gpu_fails, 0);
  EXPECT_GT(straggler_starts, 0);
  EXPECT_EQ(node_fails, node_recovers);
  EXPECT_EQ(gpu_fails, gpu_recovers);
  EXPECT_EQ(straggler_starts, straggler_ends);
}

TEST(FailureInjectorTest, PerNodeNodeFailuresNeverOverlap) {
  const Cluster cluster = MakePhysicalTestbed();
  const auto events = GenerateFailureSchedule(cluster, BaseConfig());
  // Per node: node_fail and node_recover strictly alternate in time order.
  std::map<int, bool> down;
  for (const FailureEvent& e : events) {
    if (e.kind == FailureKind::kNodeFail) {
      EXPECT_FALSE(down[e.node_id]) << "node " << e.node_id << " failed while down";
      down[e.node_id] = true;
    } else if (e.kind == FailureKind::kNodeRecover) {
      EXPECT_TRUE(down[e.node_id]);
      down[e.node_id] = false;
    }
  }
}

// The determinism contract: each fault class draws from its own named stream,
// so enabling stragglers must not reshuffle the node-failure schedule.
TEST(FailureInjectorTest, StreamsAreDisjointAcrossFaultClasses) {
  const Cluster cluster = MakePhysicalTestbed();
  FailureInjectorConfig only_nodes;
  only_nodes.node_mtbf_hours = 4.0;
  only_nodes.horizon = 48.0 * kHour;
  FailureInjectorConfig everything = BaseConfig();

  auto node_only_events = GenerateFailureSchedule(cluster, only_nodes);
  auto all_events = GenerateFailureSchedule(cluster, everything);
  auto is_node_kind = [](const FailureEvent& e) {
    return e.kind == FailureKind::kNodeFail || e.kind == FailureKind::kNodeRecover;
  };
  all_events.erase(std::remove_if(all_events.begin(), all_events.end(),
                                  [&](const FailureEvent& e) { return !is_node_kind(e); }),
                   all_events.end());
  EXPECT_EQ(node_only_events, all_events);
}

TEST(FailureInjectorTest, SortHandlesArbitraryInputOrder) {
  std::vector<FailureEvent> events = {
      {20.0, FailureKind::kNodeRecover, 1, 0, 1.0},
      {10.0, FailureKind::kNodeFail, 2, 0, 1.0},
      {10.0, FailureKind::kNodeFail, 1, 0, 1.0},
  };
  SortFailureSchedule(events);
  EXPECT_EQ(events[0].node_id, 1);
  EXPECT_EQ(events[1].node_id, 2);
  EXPECT_EQ(events[2].kind, FailureKind::kNodeRecover);
}

TEST(FailureInjectorDeathTest, RejectsMalformedConfigs) {
  const Cluster cluster = MakePhysicalTestbed();
  FailureInjectorConfig no_horizon;
  no_horizon.node_mtbf_hours = 4.0;
  EXPECT_DEATH(GenerateFailureSchedule(cluster, no_horizon), "no horizon");

  FailureInjectorConfig negative = BaseConfig();
  negative.node_mtbf_hours = -1.0;
  EXPECT_DEATH(GenerateFailureSchedule(cluster, negative), "negative node MTBF");

  FailureInjectorConfig weak_straggler = BaseConfig();
  weak_straggler.straggler_slowdown = 1.0;
  EXPECT_DEATH(GenerateFailureSchedule(cluster, weak_straggler), "must exceed 1.0");
}

}  // namespace
}  // namespace crius
