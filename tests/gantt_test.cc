#include "src/runtime/gantt.h"

#include <gtest/gtest.h>

#include "src/parallel/stage_partition.h"

namespace crius {
namespace {

class GanttTest : public ::testing::Test {
 protected:
  GanttTest() : cluster_(MakeSimulatedCluster()), model_(cluster_) {}

  ParallelPlan MakePlan(const JobContext& ctx, int ngpus, int nstages) {
    ParallelPlan plan;
    plan.gpu_type = ctx.gpu_type;
    for (const StageRange& r : PartitionStages(*ctx.graph, ngpus, nstages)) {
      plan.stages.push_back(StagePlan{r.op_begin, r.op_end, r.gpus, r.gpus, 1});
    }
    return plan;
  }

  Cluster cluster_;
  PerfModel model_;
};

TEST_F(GanttTest, RendersOneRowPerStage) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = MakePlan(ctx, 8, 4);
  const std::string out = RenderPipelineGantt(model_, ctx, plan, 64);
  int rows = 0;
  for (char c : out) {
    rows += c == '\n';
  }
  EXPECT_EQ(rows, 1 + 4);  // header + stages
  EXPECT_NE(out.find("S0"), std::string::npos);
  EXPECT_NE(out.find("S3"), std::string::npos);
  EXPECT_NE(out.find("bubble="), std::string::npos);
}

TEST_F(GanttTest, EveryMicrobatchAppears) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = MakePlan(ctx, 4, 2);  // 8 microbatches, glyphs 0-7
  const std::string out = RenderPipelineGantt(model_, ctx, plan, 128);
  for (char glyph : {'0', '3', '7'}) {
    EXPECT_NE(out.find(glyph), std::string::npos) << "missing microbatch " << glyph;
  }
}

TEST_F(GanttTest, SingleStageHasNoBubble) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 1.3, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = MakePlan(ctx, 4, 1);
  EXPECT_NEAR(PipelineBubbleFraction(model_, ctx, plan), 0.0, 1e-9);
}

TEST_F(GanttTest, DeeperPipelinesHaveBubbles) {
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 2.6, 128},
                                            GpuType::kA40);
  const double b2 = PipelineBubbleFraction(model_, ctx, MakePlan(ctx, 8, 2));
  const double b8 = PipelineBubbleFraction(model_, ctx, MakePlan(ctx, 8, 8));
  EXPECT_GT(b2, 0.0);
  EXPECT_LT(b2, 1.0);
  EXPECT_GT(b8, 0.0);
}

TEST_F(GanttTest, BubbleNearGpipeFormula) {
  // For balanced stages with negligible comm, bubble ~ (S-1)/(B+S-1).
  const JobContext ctx = model_.MakeContext(ModelSpec{ModelFamily::kBert, 6.7, 128},
                                            GpuType::kA100);
  const ParallelPlan plan = MakePlan(ctx, 4, 4);
  const double bubble = PipelineBubbleFraction(model_, ctx, plan);
  const double ideal = 3.0 / (16.0 + 3.0);
  EXPECT_NEAR(bubble, ideal, 0.08);
}

TEST(UniformPartitionTest, SplitsOpsAndGpusEvenly) {
  const OpGraph& g = GetOpGraph(ModelSpec{ModelFamily::kBert, 1.3, 128});  // 50 ops
  const auto stages = PartitionStagesUniform(g, 8, 4);
  ASSERT_EQ(stages.size(), 4u);
  size_t expect = 0;
  for (const StageRange& s : stages) {
    EXPECT_EQ(s.op_begin, expect);
    EXPECT_EQ(s.gpus, 2);
    const size_t count = s.op_end - s.op_begin;
    EXPECT_TRUE(count == 12 || count == 13);
    expect = s.op_end;
  }
  EXPECT_EQ(expect, g.size());
}

TEST(UniformPartitionTest, IgnoresFlopsBalance) {
  // One giant op at the front: uniform splitting leaves it grouped with an
  // equal share of ops, unlike the balanced partitioner.
  OpGraph g;
  for (int i = 0; i < 8; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.fwd_flops_per_sample = (i == 0) ? 1e12 : 1.0;
    op.act_bytes_per_sample = 1.0;
    g.Add(op);
  }
  g.Finalize();
  const auto uniform = PartitionStagesUniform(g, 4, 4);
  EXPECT_EQ(uniform[0].op_end - uniform[0].op_begin, 2u);
  EXPECT_EQ(uniform[0].gpus, 1);
  const auto balanced = PartitionStages(g, 4, 4);
  EXPECT_EQ(balanced[0].op_end - balanced[0].op_begin, 1u);  // isolates the giant
  EXPECT_EQ(balanced[0].gpus, 1);
}

}  // namespace
}  // namespace crius
