// Tests for ReconfigPolicy (src/reconfig/policy.h): trigger gating, the
// gain-vs-cost accept rule, churn dampers (hysteresis, cooldown, per-round
// cap), and capacity accounting against the round's decision.

#include "src/reconfig/policy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace crius {
namespace {

class ReconfigPolicyTest : public ::testing::Test {
 protected:
  ReconfigPolicyTest() : cluster_(MakePhysicalTestbed()), oracle_(cluster_, 42) {}

  // A running job granted `ngpus` A40s (nstages 0 = full adaptive plan), with
  // a long remaining runtime so modeled gains dwarf migration costs.
  JobState MakeRunning(int64_t id, int requested, int granted) {
    JobState js;
    js.job.id = id;
    js.job.spec = ModelSpec{ModelFamily::kBert, 1.3, 128};
    js.job.requested_gpus = requested;
    js.job.requested_type = GpuType::kA40;
    js.job.iterations = 200000;
    js.phase = JobPhase::kRunning;
    js.gpu_type = GpuType::kA40;
    js.ngpus = granted;
    js.nstages = 0;
    js.iter_time = BestEstimatedIter(js.job.spec, GpuType::kA40, granted);
    return js;
  }

  // The estimator's best iteration time at (type, ngpus) — what the policy
  // computes as est_cur with the default (disabled) checkpoint model.
  double BestEstimatedIter(const ModelSpec& spec, GpuType type, int ngpus) {
    TrainingJob job;
    job.spec = spec;
    job.requested_gpus = ngpus;
    double best = 0.0;
    for (const Cell& cell : GenerateCells(job, cluster_)) {
      if (cell.gpu_type != type || cell.ngpus != ngpus) {
        continue;
      }
      best = std::max(best, oracle_.EstimatedThroughput(spec, cell));
    }
    EXPECT_GT(best, 0.0);
    return static_cast<double>(spec.global_batch) / best;
  }

  static ScheduleDecision KeepDecision(const std::vector<JobState>& jobs) {
    ScheduleDecision decision;
    for (const JobState& js : jobs) {
      decision.assignments[js.job.id] = Assignment{js.gpu_type, js.ngpus, js.nstages, false};
    }
    return decision;
  }

  ReconfigConfig EnabledConfig() {
    ReconfigConfig config;
    config.enabled = true;
    return config;
  }

  Cluster cluster_;
  PerformanceOracle oracle_;
};

TEST_F(ReconfigPolicyTest, DisabledPolicyProposesNothing) {
  ReconfigConfig config;  // enabled = false
  ReconfigPolicy policy(&oracle_, config);
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const RoundContext round(0.0, {&jobs[0]}, cluster_,
                           {RoundEvent::NodeRecover(0, GpuType::kA40)});
  EXPECT_TRUE(policy.Propose(round, KeepDecision(jobs)).empty());
}

TEST_F(ReconfigPolicyTest, QuietRoundsDoNotTrigger) {
  ReconfigPolicy policy(&oracle_, EnabledConfig());
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const ScheduleDecision decision = KeepDecision(jobs);
  // No events at all, and a single arrival below the burst threshold: the
  // shrunken job stays put even though growing it would clearly pay.
  EXPECT_TRUE(policy.Propose(RoundContext(0.0, {&jobs[0]}, cluster_), decision).empty());
  EXPECT_TRUE(policy
                  .Propose(RoundContext(0.0, {&jobs[0]}, cluster_,
                                        {RoundEvent::JobArrival(7)}),
                           decision)
                  .empty());
}

TEST_F(ReconfigPolicyTest, GrowsAShrunkenJobWhenTheGainBeatsTheCost) {
  ReconfigPolicy policy(&oracle_, EnabledConfig());
  // Requested 8, running on 4: the 8- and 16-GPU candidates are strictly
  // faster per iteration and the testbed has plenty of free A40s.
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const RoundContext round(0.0, {&jobs[0]}, cluster_,
                           {RoundEvent::JobDeparture(99)});
  const auto actions = policy.Propose(round, KeepDecision(jobs));
  ASSERT_EQ(actions.size(), 1u);
  const MigrationAction& action = actions[0];
  EXPECT_EQ(action.job_id, 1);
  EXPECT_GT(action.target.ngpus, 4);
  EXPECT_GT(action.target.nstages, 0);  // migration targets are concrete Cells
  EXPECT_GT(action.gain_seconds, action.cost_seconds);
  if (action.target.type == GpuType::kA40) {
    EXPECT_EQ(action.kind, MigrationKind::kGrow);
  } else {
    EXPECT_EQ(action.kind, MigrationKind::kTypeSwap);
  }
}

TEST_F(ReconfigPolicyTest, HealthEventsAndArrivalBurstsTrigger) {
  ReconfigPolicy policy(&oracle_, EnabledConfig());
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const ScheduleDecision decision = KeepDecision(jobs);
  EXPECT_FALSE(policy
                   .Propose(RoundContext(0.0, {&jobs[0]}, cluster_,
                                         {RoundEvent::NodeRecover(3, GpuType::kA40)}),
                            decision)
                   .empty());
  // Fresh policy (no cooldown state): a two-arrival burst triggers too.
  ReconfigPolicy burst_policy(&oracle_, EnabledConfig());
  EXPECT_FALSE(burst_policy
                   .Propose(RoundContext(0.0, {&jobs[0]}, cluster_,
                                         {RoundEvent::JobArrival(7),
                                          RoundEvent::JobArrival(8)}),
                            decision)
                   .empty());
}

TEST_F(ReconfigPolicyTest, CooldownBlocksBackToBackMigrationsOfOneJob) {
  ReconfigConfig config = EnabledConfig();
  config.cooldown = 900.0;
  ReconfigPolicy policy(&oracle_, config);
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const ScheduleDecision decision = KeepDecision(jobs);
  const std::vector<RoundEvent> trigger = {RoundEvent::JobDeparture(99)};
  EXPECT_EQ(policy.Propose(RoundContext(0.0, {&jobs[0]}, cluster_, trigger), decision).size(),
            1u);
  // Same (unapplied) state inside the cooldown window: damped.
  EXPECT_TRUE(
      policy.Propose(RoundContext(450.0, {&jobs[0]}, cluster_, trigger), decision).empty());
  // Past the window the proposal returns.
  EXPECT_EQ(
      policy.Propose(RoundContext(901.0, {&jobs[0]}, cluster_, trigger), decision).size(), 1u);
}

TEST_F(ReconfigPolicyTest, HysteresisAndRelativeGainDampMarginalMoves) {
  // min_relative_gain = 1.0 makes the accept rule unsatisfiable: the
  // performance motive's gain is strictly less than the remaining time.
  ReconfigConfig config = EnabledConfig();
  config.min_relative_gain = 1.0;
  ReconfigPolicy policy(&oracle_, config);
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  const RoundContext round(0.0, {&jobs[0]}, cluster_, {RoundEvent::JobDeparture(99)});
  EXPECT_TRUE(policy.Propose(round, KeepDecision(jobs)).empty());

  // A nearly-done job: the absolute gain cannot clear cost + margin.
  ReconfigPolicy fresh_policy(&oracle_, EnabledConfig());
  jobs[0].iters_done = static_cast<double>(jobs[0].job.iterations) - 1.0;
  EXPECT_TRUE(fresh_policy.Propose(round, KeepDecision(jobs)).empty());
}

TEST_F(ReconfigPolicyTest, RespectsCapacityLeftByTheDecision) {
  ReconfigPolicy policy(&oracle_, EnabledConfig());
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  ScheduleDecision decision = KeepDecision(jobs);
  // A phantom assignment soaks up every other GPU of both types: no candidate
  // larger than the job's own grant is reachable, and the same-size type swap
  // has no capacity either.
  decision.assignments[99] =
      Assignment{GpuType::kA40, cluster_.UsableGpus(GpuType::kA40) - 4, 0, false};
  decision.assignments[98] =
      Assignment{GpuType::kA10, cluster_.UsableGpus(GpuType::kA10), 0, false};
  const RoundContext round(0.0, {&jobs[0]}, cluster_, {RoundEvent::JobDeparture(97)});
  // Sanity: without the phantom grants the same round does migrate the job.
  ReconfigPolicy unconstrained(&oracle_, EnabledConfig());
  ASSERT_FALSE(unconstrained.Propose(round, KeepDecision(jobs)).empty());
  EXPECT_TRUE(policy.Propose(round, decision).empty());
}

TEST_F(ReconfigPolicyTest, PerRoundCapKeepsLowestJobIdsFirst) {
  ReconfigConfig config = EnabledConfig();
  config.max_migrations_per_round = 1;
  ReconfigPolicy policy(&oracle_, config);
  std::vector<JobState> jobs = {MakeRunning(5, 8, 4), MakeRunning(2, 8, 4)};
  const RoundContext round(0.0, {&jobs[0], &jobs[1]}, cluster_,
                           {RoundEvent::JobDeparture(99)});
  const auto actions = policy.Propose(round, KeepDecision(jobs));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].job_id, 2);  // ascending-id scan: job 2 wins the slot
}

TEST_F(ReconfigPolicyTest, SkipsJobsStillInsideARestartWindow) {
  ReconfigPolicy policy(&oracle_, EnabledConfig());
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4)};
  jobs[0].blocked_until = 100.0;  // mid-restore at now == 0
  const RoundContext round(0.0, {&jobs[0]}, cluster_, {RoundEvent::JobDeparture(99)});
  EXPECT_TRUE(policy.Propose(round, KeepDecision(jobs)).empty());
}

TEST_F(ReconfigPolicyTest, ProposalsAreDeterministic) {
  std::vector<JobState> jobs = {MakeRunning(1, 8, 4), MakeRunning(3, 4, 2)};
  const RoundContext round(0.0, {&jobs[0], &jobs[1]}, cluster_,
                           {RoundEvent::JobDeparture(99)});
  ReconfigPolicy a(&oracle_, EnabledConfig());
  ReconfigPolicy b(&oracle_, EnabledConfig());
  const auto actions_a = a.Propose(round, KeepDecision(jobs));
  const auto actions_b = b.Propose(round, KeepDecision(jobs));
  ASSERT_EQ(actions_a.size(), actions_b.size());
  for (size_t i = 0; i < actions_a.size(); ++i) {
    EXPECT_EQ(actions_a[i].job_id, actions_b[i].job_id);
    EXPECT_EQ(actions_a[i].kind, actions_b[i].kind);
    EXPECT_EQ(actions_a[i].target.ngpus, actions_b[i].target.ngpus);
    EXPECT_EQ(actions_a[i].target.nstages, actions_b[i].target.nstages);
    EXPECT_DOUBLE_EQ(actions_a[i].cost_seconds, actions_b[i].cost_seconds);
    EXPECT_DOUBLE_EQ(actions_a[i].gain_seconds, actions_b[i].gain_seconds);
  }
}

}  // namespace
}  // namespace crius
