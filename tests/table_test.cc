#include "src/util/table.h"

#include <gtest/gtest.h>

namespace crius {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"bb", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table t("Align");
  t.SetHeader({"x", "y"});
  t.AddRow({"longvalue", "1"});
  const std::string out = t.Render();
  // Every data line has the same length.
  size_t first_len = 0;
  size_t lines_checked = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t end = out.find('\n', pos);
    const std::string line = out.substr(pos, end - pos);
    if (!line.empty() && line[0] == '|') {
      if (first_len == 0) {
        first_len = line.size();
      }
      EXPECT_EQ(line.size(), first_len);
      ++lines_checked;
    }
    pos = end + 1;
  }
  EXPECT_EQ(lines_checked, 2u);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fmt(3.0, 0), "3");
  EXPECT_EQ(Table::FmtInt(-42), "-42");
  EXPECT_EQ(Table::FmtPercent(0.489), "48.9%");
  EXPECT_EQ(Table::FmtPercent(1.0, 0), "100%");
  EXPECT_EQ(Table::FmtFactor(1.49), "1.49x");
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t("Bad");
  t.SetHeader({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

}  // namespace
}  // namespace crius
