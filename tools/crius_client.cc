// crius_client: scripted client for a running crius_serve daemon.
//
// Reads commands from a script file (or stdin), one per line, translates them
// into protocol requests, and prints each response. Blank lines and '#'
// comments are skipped.
//
// Commands:
//   submit FAMILY PARAMS_B BATCH ITERS GPUS TYPE [DEADLINE]
//   cancel JOB_ID
//   fail-node NODE_ID
//   recover-node NODE_ID
//   query JOB_ID
//   stats
//   metrics [json|prometheus]       print the raw registry snapshot payload
//   wait-idle [TIMEOUT_SECONDS]     poll stats until no job is live
//   shutdown [drain|now]
//   sleep SECONDS                   wall-clock pause between commands
//
// Example session:
//   crius_client --socket /tmp/crius.sock --script - <<'EOF'
//   submit BERT 1.3 256 50 8 A100
//   fail-node 0
//   recover-node 0
//   wait-idle 60
//   shutdown drain
//   EOF
//
// Exit code: 0 when every command got a response (including ok:false
// rejections, which are protocol-level answers), 1 on transport or script
// errors.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/crius.h"

namespace crius {
namespace {

bool PrintResponse(const std::string& command, const serve::JsonObject& response) {
  std::printf("%s -> %s\n", command.c_str(), serve::Serialize(response).c_str());
  std::fflush(stdout);
  return true;
}

int RunScript(serve::Client& client, std::istream& script) {
  std::string line;
  int line_no = 0;
  while (std::getline(script, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string cmd;
    tokens >> cmd;
    if (cmd.empty() || cmd[0] == '#') {
      continue;
    }
    std::string error;
    serve::JsonObject response;
    bool ok = true;
    if (cmd == "submit") {
      std::string family;
      std::string type;
      double params = 0.0;
      double deadline = 0.0;
      int64_t batch = 0;
      int64_t iters = 0;
      int gpus = 0;
      tokens >> family >> params >> batch >> iters >> gpus >> type;
      if (tokens.fail()) {
        std::fprintf(stderr, "crius_client: line %d: bad submit syntax\n", line_no);
        return 1;
      }
      tokens >> deadline;  // optional
      serve::JsonObject request;
      request["cmd"] = serve::JsonValue::String("submit");
      request["family"] = serve::JsonValue::String(family);
      request["params_billion"] = serve::JsonValue::Number(params);
      request["global_batch"] = serve::JsonValue::Number(static_cast<double>(batch));
      request["iterations"] = serve::JsonValue::Number(static_cast<double>(iters));
      request["gpus"] = serve::JsonValue::Number(gpus);
      request["type"] = serve::JsonValue::String(type);
      if (deadline > 0.0) {
        request["deadline"] = serve::JsonValue::Number(deadline);
      }
      ok = client.CallJson(request, &response, &error);
    } else if (cmd == "cancel" || cmd == "query") {
      int64_t job_id = -1;
      tokens >> job_id;
      if (tokens.fail()) {
        std::fprintf(stderr, "crius_client: line %d: %s needs a job id\n", line_no,
                     cmd.c_str());
        return 1;
      }
      ok = cmd == "cancel" ? client.Cancel(job_id, &response, &error)
                           : client.Query(job_id, &response, &error);
    } else if (cmd == "fail-node" || cmd == "recover-node") {
      int node_id = -1;
      tokens >> node_id;
      if (tokens.fail()) {
        std::fprintf(stderr, "crius_client: line %d: %s needs a node id\n", line_no,
                     cmd.c_str());
        return 1;
      }
      ok = cmd == "fail-node" ? client.FailNode(node_id, &response, &error)
                              : client.RecoverNode(node_id, &response, &error);
    } else if (cmd == "stats") {
      ok = client.Stats(&response, &error);
    } else if (cmd == "metrics") {
      std::string format = "json";
      tokens >> format;  // optional
      if (format != "json" && format != "prometheus") {
        std::fprintf(stderr, "crius_client: line %d: metrics format must be json|prometheus\n",
                     line_no);
        return 1;
      }
      if (!client.Metrics(format, &response, &error)) {
        std::fprintf(stderr, "crius_client: line %d: %s\n", line_no, error.c_str());
        return 1;
      }
      // Print the payload itself (not the envelope): `metrics json` gives one
      // parseable snapshot document, `metrics prometheus` a scrapable page.
      std::printf("%s\n", serve::GetString(response, "metrics").c_str());
      std::fflush(stdout);
      continue;
    } else if (cmd == "wait-idle") {
      double timeout = 120.0;
      tokens >> timeout;  // optional
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout);
      while (true) {
        if (!client.Stats(&response, &error)) {
          ok = false;
          break;
        }
        if (serve::GetNumber(response, "live_jobs", 1.0) <= 0.0) {
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          std::fprintf(stderr, "crius_client: line %d: wait-idle timed out after %.0f s\n",
                       line_no, timeout);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    } else if (cmd == "shutdown") {
      std::string mode = "drain";
      tokens >> mode;  // optional
      if (mode != "drain" && mode != "now") {
        std::fprintf(stderr, "crius_client: line %d: shutdown mode must be drain|now\n",
                     line_no);
        return 1;
      }
      ok = client.Shutdown(mode == "drain", &response, &error);
    } else if (cmd == "sleep") {
      double seconds = 0.0;
      tokens >> seconds;
      if (tokens.fail() || seconds < 0.0) {
        std::fprintf(stderr, "crius_client: line %d: sleep needs a duration\n", line_no);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      continue;
    } else {
      std::fprintf(stderr, "crius_client: line %d: unknown command '%s'\n", line_no,
                   cmd.c_str());
      return 1;
    }
    if (!ok) {
      std::fprintf(stderr, "crius_client: line %d: %s\n", line_no, error.c_str());
      return 1;
    }
    PrintResponse(cmd, response);
  }
  return 0;
}

int Run(int argc, const char* const* argv) {
  std::string socket_path = "/tmp/crius_serve.sock";
  std::string script_path = "-";

  FlagSet flags("crius_client", "Scripted client for a crius_serve daemon");
  flags.String("socket", &socket_path, "daemon socket to connect to");
  flags.String("script", &script_path, "command script ('-' = stdin)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  serve::Client client;
  std::string error;
  if (!client.Connect(socket_path, &error)) {
    std::fprintf(stderr, "crius_client: %s\n", error.c_str());
    return 1;
  }

  if (script_path == "-") {
    return RunScript(client, std::cin);
  }
  std::ifstream script(script_path);
  if (!script.is_open()) {
    std::fprintf(stderr, "crius_client: cannot open script %s\n", script_path.c_str());
    return 1;
  }
  return RunScript(client, script);
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  return crius::Run(argc, argv);
}
