// crius_plan: inspect the parallelization of one job on one GPU shape.
//
// Shows what the whole pipeline produces for a single (model, GPU type, GPU
// count): the adaptive-parallelism optimum, the per-stage-count alternatives,
// the Cell estimates, the pipeline Gantt of the best plan, and optionally a
// Chrome-trace JSON of one iteration.
//
// Examples:
//   crius_plan --model BERT-2.6B --gpus 8 --type A40
//   crius_plan --model MoE-10B --gpus 16 --type A100 --batch 512 --chrome-trace iter.json

#include <cstdio>
#include <fstream>

#include "src/crius.h"

namespace crius {
namespace {

ModelSpec ParseModelName(const std::string& name, int64_t batch) {
  for (ModelFamily family :
       {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    for (double size : SupportedSizes(family)) {
      ModelSpec spec{family, size, batch > 0 ? batch : SupportedBatches(family)[0]};
      if (spec.Name() == name) {
        return spec;
      }
    }
  }
  std::string known;
  for (ModelFamily family :
       {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    for (double size : SupportedSizes(family)) {
      known += " " + ModelSpec{family, size, 1}.Name();
    }
  }
  CRIUS_UNREACHABLE("unknown model '" + name + "'; known:" + known);
}

int Run(int argc, const char* const* argv) {
  std::string model_name = "BERT-2.6B";
  std::string type_name = "A100";
  std::string cluster_spec;
  int64_t gpus = 8;
  int64_t batch = 0;
  int64_t seed = 42;
  std::string chrome_trace;
  std::string trace_json;
  std::string log_level;
  bool counters = false;
  int64_t threads = 1;

  FlagSet flags("crius_plan", "Inspect adaptive parallelization of one job");
  flags.String("model", &model_name, "model name, e.g. BERT-2.6B, WRes-4.0B, MoE-10B");
  flags.String("type", &type_name, "GPU type: A100 | A40 | A10 | V100");
  flags.String("cluster", &cluster_spec,
               "optional cluster spec (defaults to 16 nodes of the chosen type)");
  flags.Int("gpus", &gpus, "GPU count (power of two)");
  flags.Int("batch", &batch, "global batch size (0 = family default)");
  flags.Int("seed", &seed, "profiling-noise seed");
  flags.String("chrome-trace", &chrome_trace,
               "write one iteration of the best plan as Chrome-trace JSON");
  flags.String("trace-json", &trace_json,
               "write a Chrome trace of the planning pipeline itself to this file");
  flags.Bool("counters", &counters, "print the process-wide counter/histogram table");
  flags.String("log-level", &log_level,
               "debug|info|warning|error|off; overrides CRIUS_LOG_LEVEL "
               "(precedence: flag > env > default warning)");
  flags.Int("threads", &threads,
            "worker threads for estimation fan-out (results are bit-identical "
            "to --threads 1)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (!log_level.empty()) {
    const std::optional<LogLevel> parsed = ParseLogLevel(log_level);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "crius_plan: bad --log-level '%s' (want debug|info|warning|error|off)\n",
                   log_level.c_str());
      return 1;
    }
    SetLogLevel(*parsed);
  }

  if (!trace_json.empty()) {
    TraceRecorder::Global().SetEnabled(true);
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(threads));

  const GpuType type = ParseGpuType(type_name);
  Cluster cluster;
  if (cluster_spec.empty()) {
    const int per_node = type == GpuType::kA100 ? 4 : (type == GpuType::kV100 ? 16 : 2);
    const int nodes = std::max(1, static_cast<int>(gpus) * 2 / per_node);
    cluster.AddNodes(type, nodes, per_node);
  } else {
    cluster = ParseClusterSpec(cluster_spec);
  }
  PerformanceOracle oracle(cluster, static_cast<uint64_t>(seed));
  const ModelSpec spec = ParseModelName(model_name, batch);
  const JobContext ctx = oracle.perf_model().MakeContext(spec, type);

  std::printf("%s, global batch %lld, on %lldx %s (%d GPUs/node)\n", spec.Name().c_str(),
              static_cast<long long>(spec.global_batch), static_cast<long long>(gpus),
              GpuName(type).c_str(), cluster.GpusPerNode(type));

  // Per-stage-count alternatives and the Cell estimates.
  Table table("Plans by pipeline-stage count");
  table.SetHeader({"stages", "optimal plan", "measured iter (s)", "thr (samples/s)",
                   "Cell estimate (s)", "est. accuracy"});
  for (int nstages : CandidateStageCounts(*ctx.graph, static_cast<int>(gpus))) {
    const ExploreResult r =
        oracle.explorer().ExploreWithinStages(ctx, static_cast<int>(gpus), nstages);
    const Cell cell{type, static_cast<int>(gpus), nstages};
    const CellEstimate& est = oracle.EstimateCell(spec, cell);
    if (!r.best.has_value()) {
      table.AddRow({"P" + std::to_string(nstages), "OOM", "-", "-",
                    est.feasible ? Table::Fmt(est.iter_time, 3) : "OOM", "-"});
      continue;
    }
    std::string acc = "-";
    if (est.feasible) {
      const PlanEval measured = oracle.perf_model().Evaluate(ctx, est.plan);
      acc = Table::FmtPercent(
          1.0 - std::abs(est.iter_time - measured.iter_time) / measured.iter_time);
    }
    table.AddRow({"P" + std::to_string(nstages), r.best->plan.ShortForm(),
                  Table::Fmt(r.best->iter_time, 3),
                  Table::Fmt(spec.global_batch / r.best->iter_time, 1),
                  est.feasible ? Table::Fmt(est.iter_time, 3) : "OOM", acc});
  }
  table.Print();

  const auto& best = oracle.BestAdaptive(spec, type, static_cast<int>(gpus));
  if (!best.has_value()) {
    std::printf("\nNo feasible plan on this shape.\n");
    return 2;
  }
  std::printf("\nAdaptive-parallelism optimum: %s (%.3f s/iter)\n\n%s",
              best->plan.ToString().c_str(), best->iter_time,
              RenderPipelineGantt(oracle.perf_model(), ctx, best->plan, 96).c_str());

  if (!chrome_trace.empty()) {
    const PipelineEngine engine(&oracle.perf_model());
    const IterationTrace trace = engine.Execute(ctx, best->plan);
    std::ofstream out(chrome_trace);
    CRIUS_CHECK_MSG(out.is_open(), "cannot write " << chrome_trace);
    WriteChromeTrace(trace, best->plan, out);
    std::printf("\nChrome trace written to %s (open in chrome://tracing)\n",
                chrome_trace.c_str());
  }
  if (!trace_json.empty()) {
    CRIUS_CHECK_MSG(TraceRecorder::Global().WriteJsonFile(trace_json),
                    "cannot write " << trace_json);
    std::printf("Planning trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace_json.c_str());
  }
  if (counters) {
    CounterRegistry::Global().PrintTable();
  }
  return 0;
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  return crius::Run(argc, argv);
}
