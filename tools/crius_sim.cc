// crius_sim: command-line cluster-scheduling simulator.
//
// Runs one trace (synthetic or loaded from CSV) on a cluster under one
// scheduler and prints the metric summary; optionally exports the trace,
// per-job records and the throughput timeline as CSV for plotting.
//
// Examples:
//   crius_sim --cluster testbed --trace philly6h --scheduler crius
//   crius_sim --cluster "A100:8x4,V100:2x16" --trace helios --scheduler gavel
//   crius_sim --trace-file workload.csv --scheduler elasticflow --jobs-csv out.csv
//   crius_sim --trace philly-week --scheduler crius --search-depth 5 --seed 9

#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/crius.h"

namespace crius {
namespace {

TraceConfig MakeTraceConfig(const std::string& name) {
  if (name == "philly6h") {
    return PhillySixHourConfig();
  }
  if (name == "philly-week") {
    return PhillyWeekHeavyConfig();
  }
  if (name == "helios") {
    return HeliosModerateConfig();
  }
  if (name == "pai") {
    return PaiLowConfig();
  }
  CRIUS_UNREACHABLE("unknown trace style '" + name +
                    "' (want philly6h|philly-week|helios|pai)");
}

int Run(int argc, const char* const* argv) {
  std::string cluster_spec = "testbed";
  std::string trace_style = "philly6h";
  std::string trace_file;
  std::string scheduler_name = "crius";
  int64_t seed = 42;
  int64_t num_jobs = 0;
  int64_t search_depth = 3;
  double load = 0.0;
  double deadline_fraction = 0.0;
  bool deadline_aware = false;
  bool no_profiling_cost = false;
  double execution_jitter = 0.0;
  double mtbf_hours = 0.0;
  double gpu_mtbf_hours = 0.0;
  double mttr_hours = 0.5;
  double straggler_rate = 0.0;
  double straggler_slowdown = 1.5;
  double straggler_duration_hours = 0.5;
  std::string failure_trace;
  std::string save_failure_trace;
  double checkpoint_interval = 0.0;
  double checkpoint_cost = 30.0;
  bool checkpoint_young_daly = false;
  bool reconfig = false;
  double reconfig_margin = -1.0;
  double reconfig_cooldown = -1.0;
  int64_t reconfig_max_per_round = -1;
  std::string trace_out;
  std::string jobs_csv;
  std::string timeline_csv;
  std::string events_csv;
  std::string trace_json;
  std::string log_level;
  bool counters = false;
  int64_t threads = 1;
  bool incremental = true;

  FlagSet flags("crius_sim", "Run a Crius cluster-scheduling simulation");
  flags.String("cluster", &cluster_spec,
               "testbed | simulated | motivation | spec like 'A100:8x4,A40:4x2'");
  flags.String("trace", &trace_style, "philly6h | philly-week | helios | pai");
  flags.String("trace-file", &trace_file, "load the workload from a trace CSV instead");
  flags.String("scheduler", &scheduler_name,
               "crius | crius-na | crius-nh | crius-fair | crius-solver | fcfs | gandiva | "
               "gavel | tiresias | elasticflow | elasticflow-strict");
  flags.Int("seed", &seed, "random seed for trace synthesis and profiling noise");
  flags.Int("jobs", &num_jobs, "override the trace's job count (0 = keep default)");
  flags.Int("search-depth", &search_depth, "Crius scaling-search depth (Fig. 21)");
  flags.Double("load", &load, "override the trace's offered load (0 = keep default)");
  flags.Double("deadline-fraction", &deadline_fraction,
               "fraction of jobs carrying deadlines (§8.5)");
  flags.Bool("deadline-aware", &deadline_aware, "run Crius in deadline-aware mode");
  flags.Bool("incremental", &incremental,
             "event-driven incremental Crius rounds (--incremental=false re-ranks every "
             "job from scratch each round; decisions are bit-identical)");
  flags.Bool("no-profiling-cost", &no_profiling_cost,
             "skip charging Crius's Cell-profiling delay");
  flags.Double("execution-jitter", &execution_jitter,
               "per-placement iteration-time jitter (0 = pure simulation)");
  flags.Double("mtbf-hours", &mtbf_hours,
               "per-node mean time between failures (0 = no node failures)");
  flags.Double("gpu-mtbf-hours", &gpu_mtbf_hours,
               "per-GPU mean time between failures (0 = no GPU failures)");
  flags.Double("mttr-hours", &mttr_hours, "mean time to repair a failure");
  flags.Double("straggler-rate", &straggler_rate,
               "expected straggler windows per node per hour (0 = none)");
  flags.Double("straggler-slowdown", &straggler_slowdown,
               "nominal straggler iteration-time factor (> 1)");
  flags.Double("straggler-duration-hours", &straggler_duration_hours,
               "mean straggler-window length");
  flags.String("failure-trace", &failure_trace,
               "load the failure schedule from this CSV instead of generating one");
  flags.String("save-failure-trace", &save_failure_trace,
               "write the injected failure schedule to this CSV");
  flags.Double("checkpoint-interval", &checkpoint_interval,
               "periodic checkpoint interval in seconds (0 = no checkpointing)");
  flags.Double("checkpoint-cost", &checkpoint_cost, "seconds per checkpoint write");
  flags.Bool("checkpoint-young-daly", &checkpoint_young_daly,
             "derive the checkpoint interval from --mtbf-hours via Young/Daly");
  flags.Bool("reconfig", &reconfig,
             "live reconfiguration (src/reconfig): migrate running jobs when the modeled "
             "remaining-time gain beats the migration cost plus a hysteresis margin");
  flags.Double("reconfig-margin", &reconfig_margin,
               "reconfig hysteresis margin in seconds (< 0 = default)");
  flags.Double("reconfig-cooldown", &reconfig_cooldown,
               "minimum seconds between migrations of one job (< 0 = default)");
  flags.Int("reconfig-max-per-round", &reconfig_max_per_round,
            "migration cap per scheduling round, 0 = unlimited (< 0 = default)");
  flags.String("save-trace", &trace_out, "write the synthesized trace to this CSV");
  flags.String("jobs-csv", &jobs_csv, "write per-job records to this CSV");
  flags.String("timeline-csv", &timeline_csv, "write the throughput timeline to this CSV");
  flags.String("events-csv", &events_csv, "write the scheduling-event log to this CSV");
  flags.String("trace-json", &trace_json,
               "write a Chrome trace (chrome://tracing / Perfetto) to this file");
  flags.Bool("counters", &counters, "print the process-wide counter/histogram table");
  flags.String("log-level", &log_level,
               "debug|info|warning|error|off; overrides CRIUS_LOG_LEVEL "
               "(precedence: flag > env > default warning)");
  flags.Int("threads", &threads,
            "worker threads for scheduling/estimation fan-out (results are "
            "bit-identical to --threads 1)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (!log_level.empty()) {
    const std::optional<LogLevel> parsed = ParseLogLevel(log_level);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "crius_sim: bad --log-level '%s' (want debug|info|warning|error|off)\n",
                   log_level.c_str());
      return 1;
    }
    SetLogLevel(*parsed);
  }

  if (!trace_json.empty()) {
    TraceRecorder::Global().SetEnabled(true);
  }
  ThreadPool::SetGlobalThreads(static_cast<int>(threads));
  // SIGINT/SIGTERM stop the simulation at the next step boundary; partial
  // CSV/Chrome-trace outputs are still flushed below before exiting 128+sig.
  InstallShutdownHandler();

  Cluster cluster = MakeNamedCluster(cluster_spec);
  PerformanceOracle oracle(cluster, static_cast<uint64_t>(seed));

  std::vector<TrainingJob> trace;
  if (!trace_file.empty()) {
    trace = ReadTraceCsvFile(trace_file);
    std::printf("Loaded %zu jobs from %s\n", trace.size(), trace_file.c_str());
  } else {
    TraceConfig config = MakeTraceConfig(trace_style);
    config.seed = static_cast<uint64_t>(seed);
    if (num_jobs > 0) {
      config.num_jobs = static_cast<int>(num_jobs);
    }
    if (load > 0.0) {
      config.load = load;
    }
    config.deadline_fraction = deadline_fraction;
    trace = GenerateTrace(cluster, oracle, config);
    std::printf("Synthesized %zu jobs (%s) for cluster %s\n", trace.size(),
                config.name.c_str(), ClusterSpecString(cluster).c_str());
  }
  if (!trace_out.empty()) {
    CRIUS_CHECK_MSG(WriteTraceCsvFile(trace, trace_out), "cannot write " << trace_out);
    std::printf("Trace written to %s\n", trace_out.c_str());
  }

  auto scheduler = MakeNamedScheduler(
      scheduler_name, &oracle,
      SchedulerOptions{.search_depth = static_cast<int>(search_depth),
                       .deadline_aware = deadline_aware,
                       .incremental = incremental});
  SimConfig sim_config;
  sim_config.charge_profiling = !no_profiling_cost;
  sim_config.execution_jitter = execution_jitter;
  // Any export that reconstructs per-job activity needs the event log.
  sim_config.record_events = !events_csv.empty() || !trace_json.empty() || counters;

  // --- Fault model -----------------------------------------------------------
  sim_config.checkpoint.interval = checkpoint_interval;
  sim_config.checkpoint.cost = checkpoint_cost;
  sim_config.checkpoint.young_daly = checkpoint_young_daly;
  sim_config.node_mtbf = mtbf_hours * kHour;

  // --- Live reconfiguration --------------------------------------------------
  sim_config.reconfig.enabled = reconfig;
  if (reconfig_margin >= 0.0) {
    sim_config.reconfig.hysteresis_margin = reconfig_margin;
  }
  if (reconfig_cooldown >= 0.0) {
    sim_config.reconfig.cooldown = reconfig_cooldown;
  }
  if (reconfig_max_per_round >= 0) {
    sim_config.reconfig.max_migrations_per_round = static_cast<int>(reconfig_max_per_round);
  }
  const bool faults_requested =
      !failure_trace.empty() || mtbf_hours > 0.0 || gpu_mtbf_hours > 0.0 || straggler_rate > 0.0;
  if (!failure_trace.empty()) {
    sim_config.failures = ReadFailureTraceCsvFile(failure_trace);
    std::printf("Loaded %zu failure events from %s\n", sim_config.failures.size(),
                failure_trace.c_str());
  } else if (faults_requested) {
    FailureInjectorConfig fault_config;
    fault_config.node_mtbf_hours = mtbf_hours;
    fault_config.gpu_mtbf_hours = gpu_mtbf_hours;
    fault_config.mttr_hours = mttr_hours;
    fault_config.straggler_rate = straggler_rate;
    fault_config.straggler_slowdown = straggler_slowdown;
    fault_config.straggler_duration_hours = straggler_duration_hours;
    fault_config.seed = static_cast<uint64_t>(seed);
    // Inject over the same horizon the simulator will run: trace duration x
    // the time cap, plus the 24 h drain window.
    double trace_end = 0.0;
    for (const TrainingJob& job : trace) {
      trace_end = std::max(trace_end, job.submit_time);
    }
    fault_config.horizon =
        std::max(trace_end, 1.0) * sim_config.max_time_factor + 24.0 * kHour;
    sim_config.failures = GenerateFailureSchedule(cluster, fault_config);
    std::printf("Injecting %zu failure events (node MTBF %.1f h, GPU MTBF %.1f h, "
                "straggler rate %.2f /node/h)\n",
                sim_config.failures.size(), mtbf_hours, gpu_mtbf_hours, straggler_rate);
  }
  if (!save_failure_trace.empty()) {
    CRIUS_CHECK_MSG(WriteFailureTraceCsvFile(sim_config.failures, save_failure_trace),
                    "cannot write " << save_failure_trace);
    std::printf("Failure schedule written to %s\n", save_failure_trace.c_str());
  }
  // Report every configuration error at once instead of aborting on the
  // first inside the Simulator constructor.
  const std::vector<std::string> config_errors = sim_config.Validate(cluster);
  if (!config_errors.empty()) {
    for (const std::string& error : config_errors) {
      std::fprintf(stderr, "crius_sim: invalid configuration: %s\n", error.c_str());
    }
    return 1;
  }

  Simulator sim(cluster, sim_config);
  const SimResult result = sim.Run(*scheduler, oracle, trace);
  if (ShutdownRequested()) {
    std::fprintf(stderr,
                 "crius_sim: interrupted (signal %d) at t=%.0f — flushing partial outputs\n",
                 ShutdownSignal(), result.makespan);
  }

  Table table("crius_sim: " + result.scheduler + " on " + ClusterSpecString(cluster));
  table.SetHeader({"metric", "value"});
  table.AddRow({"jobs (finished/unfinished/dropped)",
                Table::FmtInt(result.finished_jobs) + " / " +
                    Table::FmtInt(result.unfinished_jobs) + " / " +
                    Table::FmtInt(result.dropped_jobs)});
  table.AddRow({"avg JCT", Table::Fmt(result.avg_jct / kMinute, 1) + " min"});
  table.AddRow({"median JCT", Table::Fmt(result.median_jct / kMinute, 1) + " min"});
  table.AddRow({"p95 / p99 JCT", Table::Fmt(result.p95_jct / kMinute, 1) + " / " +
                                     Table::Fmt(result.p99_jct / kMinute, 1) + " min"});
  table.AddRow({"max JCT", Table::Fmt(result.max_jct / kHour, 2) + " h"});
  table.AddRow({"avg queuing time", Table::Fmt(result.avg_queue_time / kMinute, 1) + " min"});
  table.AddRow({"p50 / p95 / p99 queuing time",
                Table::Fmt(result.p50_queue_time / kMinute, 1) + " / " +
                    Table::Fmt(result.p95_queue_time / kMinute, 1) + " / " +
                    Table::Fmt(result.p99_queue_time / kMinute, 1) + " min"});
  table.AddRow({"avg cluster throughput", Table::Fmt(result.avg_throughput, 2)});
  table.AddRow({"peak cluster throughput", Table::Fmt(result.peak_throughput, 2)});
  table.AddRow({"avg restarts / job", Table::Fmt(result.avg_restarts, 2)});
  if (faults_requested) {
    table.AddRow({"avg restarts / job (sched / failure)",
                  Table::Fmt(result.avg_sched_restarts, 2) + " / " +
                      Table::Fmt(result.avg_failure_restarts, 2)});
    table.AddRow({"failure events / kills", Table::FmtInt(result.failure_events) + " / " +
                                                Table::FmtInt(result.failure_kills)});
    table.AddRow({"goodput (useful/total GPU-s)", Table::FmtPercent(result.goodput)});
    table.AddRow(
        {"lost GPU-hours", Table::Fmt(result.lost_gpu_seconds / kHour, 1)});
    table.AddRow({"avg / p95 recovery latency",
                  Table::Fmt(result.avg_recovery_latency / kMinute, 1) + " / " +
                      Table::Fmt(result.p95_recovery_latency / kMinute, 1) + " min"});
  }
  if (reconfig) {
    // Rows only under --reconfig, keeping default output byte-identical.
    table.AddRow({"migrations", Table::FmtInt(result.migrations)});
    table.AddRow({"migration pause cost (total)",
                  Table::Fmt(result.migration_cost_seconds / kMinute, 1) + " min"});
    table.AddRow({"modeled migration gain (total)",
                  Table::Fmt(result.migration_gain_seconds / kHour, 2) + " h"});
  }
  if (deadline_fraction > 0.0) {
    table.AddRow({"deadline satisfactory ratio", Table::FmtPercent(result.deadline_ratio)});
  }
  table.AddRow({"makespan", Table::Fmt(result.makespan / kHour, 2) + " h"});
  table.Print();

  if (!jobs_csv.empty()) {
    CRIUS_CHECK_MSG(WriteJobRecordsCsvFile(result, jobs_csv), "cannot write " << jobs_csv);
    std::printf("Per-job records written to %s\n", jobs_csv.c_str());
  }
  if (!timeline_csv.empty()) {
    CRIUS_CHECK_MSG(WriteTimelineCsvFile(result, timeline_csv),
                    "cannot write " << timeline_csv);
    std::printf("Timeline written to %s\n", timeline_csv.c_str());
  }
  if (!events_csv.empty()) {
    CRIUS_CHECK_MSG(WriteEventsCsvFile(result, events_csv), "cannot write " << events_csv);
    std::printf("Event log written to %s\n", events_csv.c_str());
  }
  if (!trace_json.empty()) {
    AppendSimTrace(result, TraceRecorder::Global());
    CRIUS_CHECK_MSG(TraceRecorder::Global().WriteJsonFile(trace_json),
                    "cannot write " << trace_json);
    std::printf("Chrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace_json.c_str());
  }
  if (counters) {
    CounterRegistry::Global().PrintTable();
  }
  return ShutdownRequested() ? 128 + ShutdownSignal() : 0;
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  return crius::Run(argc, argv);
}
