// crius_serve: long-running cluster-controller daemon.
//
// Wraps a Scheduler behind a concurrent ingress path: clients connect to a
// Unix domain socket and speak the line-delimited JSON protocol
// (src/serve/protocol.h) to submit/cancel jobs, inject node failures and
// recoveries, and query state. A single controller thread runs incremental
// scheduling rounds on a virtual clock; every accepted command is appended to
// a session log that `--replay` (or the library's ReplaySession) re-executes
// bit-identically through the batch simulator.
//
// Examples:
//   crius_serve --cluster testbed --scheduler crius --socket /tmp/crius.sock
//   crius_serve --cluster testbed --session-log session.csv
//   crius_serve --replay session.csv --jobs-csv jobs.csv --events-csv ev.csv
//
// SIGINT/SIGTERM stop the loop at the next tick, flush the session log and
// any partial CSV exports, and exit 128+signal. A signal-stopped session is
// NOT drained; use the protocol's `shutdown` (default mode `drain`) for a
// replay-identical end.

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/crius.h"

namespace crius {
namespace {

void WriteResultCsvs(const SimResult& result, const std::string& jobs_csv,
                     const std::string& timeline_csv, const std::string& events_csv) {
  if (!jobs_csv.empty()) {
    CRIUS_CHECK_MSG(WriteJobRecordsCsvFile(result, jobs_csv), "cannot write " << jobs_csv);
    std::printf("Per-job records written to %s\n", jobs_csv.c_str());
  }
  if (!timeline_csv.empty()) {
    CRIUS_CHECK_MSG(WriteTimelineCsvFile(result, timeline_csv),
                    "cannot write " << timeline_csv);
    std::printf("Timeline written to %s\n", timeline_csv.c_str());
  }
  if (!events_csv.empty()) {
    CRIUS_CHECK_MSG(WriteEventsCsvFile(result, events_csv), "cannot write " << events_csv);
    std::printf("Event log written to %s\n", events_csv.c_str());
  }
}

void PrintSummary(const char* mode, const SimResult& result) {
  std::printf("%s: %s — %d finished / %d unfinished / %d dropped, makespan %.0f s, "
              "avg JCT %.0f s\n",
              mode, result.scheduler.c_str(), result.finished_jobs, result.unfinished_jobs,
              result.dropped_jobs, result.makespan, result.avg_jct);
}

int Run(int argc, const char* const* argv) {
  std::string cluster_spec = "testbed";
  std::string scheduler_name = "crius";
  int64_t seed = 42;
  int64_t search_depth = 3;
  bool deadline_aware = false;
  bool incremental = true;
  bool no_profiling_cost = false;
  double schedule_interval = 5.0 * kMinute;
  double restart_overhead = 60.0;
  bool reconfig = false;
  std::string socket_path = "/tmp/crius_serve.sock";
  std::string session_log_path = "crius_session.csv";
  std::string metrics_csv;
  int64_t metrics_every_ticks = 10;
  std::string log_level;
  double tick_virtual = 60.0;
  double tick_wall = 0.02;
  int64_t queue_capacity = 256;
  int64_t max_pending = 0;
  double starvation_wait = 0.0;
  std::string replay_path;
  std::string jobs_csv;
  std::string timeline_csv;
  std::string events_csv;
  bool counters = false;
  int64_t threads = 1;

  FlagSet flags("crius_serve", "Crius cluster-controller daemon");
  flags.String("cluster", &cluster_spec,
               "testbed | simulated | motivation | spec like 'A100:8x4,A40:4x2'");
  flags.String("scheduler", &scheduler_name, kSchedulerNamesHelp);
  flags.Int("seed", &seed, "oracle / profiling-noise seed");
  flags.Int("search-depth", &search_depth, "Crius scaling-search depth");
  flags.Bool("deadline-aware", &deadline_aware, "run Crius in deadline-aware mode");
  flags.Bool("incremental", &incremental, "event-driven incremental Crius rounds");
  flags.Bool("no-profiling-cost", &no_profiling_cost,
             "skip charging Crius's Cell-profiling delay");
  flags.Double("schedule-interval", &schedule_interval, "scheduling round interval, seconds");
  flags.Double("restart-overhead", &restart_overhead, "per-restart overhead, seconds");
  flags.Bool("reconfig", &reconfig,
             "live reconfiguration: migrate running jobs when the modeled gain beats the "
             "migration cost (recorded in the session log, so replay matches)");
  flags.String("socket", &socket_path, "Unix domain socket to serve on");
  flags.String("session-log", &session_log_path,
               "append-only session event log (empty = no recording, no replay)");
  flags.String("metrics-csv", &metrics_csv,
               "append periodic metrics-registry snapshot rows to this CSV (empty = off)");
  flags.Int("metrics-every-ticks", &metrics_every_ticks,
            "controller ticks between metrics CSV rows");
  flags.String("log-level", &log_level,
               "debug|info|warning|error|off; overrides CRIUS_LOG_LEVEL "
               "(precedence: flag > env > default warning)");
  flags.Double("tick-virtual-seconds", &tick_virtual,
               "virtual seconds the session clock advances per controller tick");
  flags.Double("tick-wall-seconds", &tick_wall, "wall-clock pause between ticks");
  flags.Int("queue-capacity", &queue_capacity, "ingress command-queue capacity");
  flags.Int("max-pending", &max_pending,
            "reject submissions while this many jobs wait for GPUs (0 = no limit)");
  flags.Double("starvation-wait", &starvation_wait,
               "reject submissions while the oldest queued job has waited longer than this "
               "many virtual seconds (0 = disabled)");
  flags.String("replay", &replay_path,
               "replay this session log through the batch simulator and exit");
  flags.String("jobs-csv", &jobs_csv, "write per-job records to this CSV on exit");
  flags.String("timeline-csv", &timeline_csv, "write the throughput timeline to this CSV");
  flags.String("events-csv", &events_csv, "write the scheduling-event log to this CSV");
  flags.Bool("counters", &counters, "print the counter/histogram table on exit");
  flags.Int("threads", &threads, "worker threads (socket dispatch + estimation fan-out)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (!log_level.empty()) {
    const std::optional<LogLevel> parsed = ParseLogLevel(log_level);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "crius_serve: bad --log-level '%s' (want debug|info|warning|error|off)\n",
                   log_level.c_str());
      return 1;
    }
    SetLogLevel(*parsed);
  }
  if (metrics_every_ticks <= 0) {
    std::fprintf(stderr, "crius_serve: --metrics-every-ticks must be > 0\n");
    return 1;
  }

  ThreadPool::SetGlobalThreads(static_cast<int>(threads));

  if (!replay_path.empty()) {
    const SimResult result = ReplaySessionFile(replay_path);
    PrintSummary("replay", result);
    WriteResultCsvs(result, jobs_csv, timeline_csv, events_csv);
    if (counters) {
      CounterRegistry::Global().PrintTable();
    }
    return 0;
  }

  SessionMeta meta;
  meta.cluster_spec = cluster_spec;
  meta.scheduler = scheduler_name;
  meta.seed = static_cast<uint64_t>(seed);
  meta.search_depth = static_cast<int>(search_depth);
  meta.deadline_aware = deadline_aware;
  meta.incremental = incremental;
  meta.schedule_interval = schedule_interval;
  meta.restart_overhead = restart_overhead;
  meta.charge_profiling = !no_profiling_cost;
  meta.reconfig = reconfig;
  if (!IsKnownScheduler(meta.scheduler)) {
    std::fprintf(stderr, "crius_serve: unknown scheduler '%s' (want %s)\n",
                 meta.scheduler.c_str(), kSchedulerNamesHelp);
    return 1;
  }

  // The exact runtime the replay path will rebuild from the log's meta row.
  SessionRuntime runtime = MakeSessionRuntime(meta);
  const std::vector<std::string> config_errors = runtime.sim.Validate(runtime.cluster);
  if (!config_errors.empty()) {
    for (const std::string& error : config_errors) {
      std::fprintf(stderr, "crius_serve: invalid configuration: %s\n", error.c_str());
    }
    return 1;
  }

  std::unique_ptr<SessionLog> log;
  if (!session_log_path.empty()) {
    log = std::make_unique<SessionLog>(session_log_path, meta);
  }

  Controller::Config controller_config;
  controller_config.tick_virtual_seconds = tick_virtual;
  controller_config.tick_wall_seconds = tick_wall;
  controller_config.metrics_csv = metrics_csv;
  controller_config.metrics_every_ticks = static_cast<int>(metrics_every_ticks);
  controller_config.queue.capacity = static_cast<size_t>(queue_capacity);
  controller_config.queue.max_pending_jobs = static_cast<int>(max_pending);
  controller_config.queue.starvation_wait = starvation_wait;
  Controller controller(runtime.cluster, runtime.sim, *runtime.scheduler, *runtime.oracle,
                        log.get(), controller_config);

  serve::Server server(socket_path, serve::MakeHandler(controller));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "crius_serve: %s\n", error.c_str());
    return 1;
  }

  // SIGINT/SIGTERM stop the controller loop at the next tick; everything
  // below the loop still runs, so partial outputs are flushed.
  InstallShutdownHandler();
  controller.Start();
  std::printf("crius_serve: serving %s with %s on %s (session log: %s)\n",
              ClusterSpecString(runtime.cluster).c_str(), meta.scheduler.c_str(),
              socket_path.c_str(), session_log_path.empty() ? "off" : session_log_path.c_str());
  std::fflush(stdout);

  while (!controller.done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  controller.Join();

  if (controller.interrupted()) {
    std::fprintf(stderr,
                 "crius_serve: interrupted (signal %d) — flushing session log and partial "
                 "outputs (session NOT drained; replay will diverge past this point)\n",
                 ShutdownSignal());
  }
  const SimResult result = controller.TakeResult();
  PrintSummary("serve", result);
  WriteResultCsvs(result, jobs_csv, timeline_csv, events_csv);
  if (counters) {
    CounterRegistry::Global().PrintTable();
  }
  return ShutdownRequested() ? 128 + ShutdownSignal() : 0;
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  return crius::Run(argc, argv);
}
