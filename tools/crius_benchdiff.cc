// crius_benchdiff: compare a fresh BENCH_*.json run against a checked-in
// baseline and fail on regressions beyond tolerance.
//
//   crius_benchdiff --baseline bench/baselines/BENCH_rounds.json \
//                   --fresh build/BENCH_rounds.json [--threshold 0.5]
//
// Per-metric `threshold` values stored in the baseline override --threshold,
// so noisy wall-time metrics can carry loose hand-tuned bounds while
// dimensionless ratios stay tight. A metric present in the baseline but
// missing from the fresh run fails the gate (a silently vanished measurement
// is indistinguishable from a regression); fresh-only metrics are reported
// as "new" and pass.
//
// --update-baselines rewrites --baseline from --fresh instead of comparing:
// the fresh values and metric set win, but every surviving metric keeps the
// baseline's hand-tuned threshold (see UpdateBaseline). A missing or
// unreadable baseline is fine in this mode — the fresh report is adopted
// wholesale. Use after an intentional perf change:
//
//   crius_benchdiff --update-baselines \
//                   --baseline bench/baselines/BENCH_rounds.json \
//                   --fresh build/BENCH_rounds.json
//
// Exit codes: 0 = within tolerance, 1 = regression (or vanished metric),
// 2 = unreadable/malformed input.

#include <cstdio>

#include "src/util/benchdiff.h"
#include "src/util/flags.h"

namespace crius {
namespace {

int Run(int argc, const char* const* argv) {
  std::string baseline_path;
  std::string fresh_path;
  double threshold = 0.5;
  bool update_baselines = false;

  FlagSet flags("crius_benchdiff", "Compare a BENCH_*.json run against a baseline");
  flags.String("baseline", &baseline_path, "checked-in baseline report");
  flags.String("fresh", &fresh_path, "freshly produced report to validate");
  flags.Double("threshold", &threshold,
               "default relative regression tolerance (per-metric baseline "
               "thresholds override this)");
  flags.Bool("update-baselines", &update_baselines,
             "rewrite --baseline from --fresh, keeping per-metric thresholds "
             "for metrics present in both (no comparison)");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (baseline_path.empty() || fresh_path.empty()) {
    std::fprintf(stderr, "crius_benchdiff: --baseline and --fresh are required\n");
    return 2;
  }
  if (threshold < 0.0) {
    std::fprintf(stderr, "crius_benchdiff: --threshold must be >= 0\n");
    return 2;
  }

  std::string error;
  BenchReport fresh;
  if (!BenchReport::ReadFile(fresh_path, &fresh, &error)) {
    std::fprintf(stderr, "crius_benchdiff: fresh: %s\n", error.c_str());
    return 2;
  }
  if (update_baselines) {
    // A baseline that does not exist (first run of a new bench) or fails to
    // parse is simply replaced wholesale by the fresh report.
    BenchReport baseline;
    if (!BenchReport::ReadFile(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "crius_benchdiff: adopting fresh report (baseline: %s)\n",
                   error.c_str());
      baseline = BenchReport{};
    }
    const BenchReport updated = UpdateBaseline(baseline, fresh);
    if (!updated.WriteFile(baseline_path)) {
      std::fprintf(stderr, "crius_benchdiff: cannot write %s\n", baseline_path.c_str());
      return 2;
    }
    std::printf("crius_benchdiff: updated %s (%zu metrics)\n", baseline_path.c_str(),
                updated.metrics.size());
    return 0;
  }
  BenchReport baseline;
  if (!BenchReport::ReadFile(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "crius_benchdiff: baseline: %s\n", error.c_str());
    return 2;
  }
  if (!baseline.bench.empty() && !fresh.bench.empty() && baseline.bench != fresh.bench) {
    std::fprintf(stderr, "crius_benchdiff: comparing different benches ('%s' vs '%s')\n",
                 baseline.bench.c_str(), fresh.bench.c_str());
    return 2;
  }

  const BenchDiffResult result = CompareBenchReports(baseline, fresh, threshold);
  std::fputs(result.Render().c_str(), stdout);
  return result.regressed ? 1 : 0;
}

}  // namespace
}  // namespace crius

int main(int argc, char** argv) {
  return crius::Run(argc, argv);
}
