#include "src/fault/checkpoint.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace crius {

double YoungDalyInterval(double mtbf_seconds, double cost_seconds) {
  CRIUS_CHECK_MSG(mtbf_seconds > 0.0 && cost_seconds > 0.0,
                  "Young/Daly needs positive MTBF and checkpoint cost");
  return std::sqrt(2.0 * mtbf_seconds * cost_seconds);
}

double CheckpointOverheadFactor(double interval, double cost) {
  if (interval <= 0.0) {
    return 1.0;
  }
  CRIUS_CHECK_MSG(cost >= 0.0, "negative checkpoint cost");
  return 1.0 + cost / interval;
}

double PreservedProgress(double interval, double progress_seconds) {
  if (interval <= 0.0 || progress_seconds <= 0.0) {
    return 0.0;
  }
  return std::floor(progress_seconds / interval) * interval;
}

double EffectiveCheckpointInterval(const CheckpointConfig& config, double node_mtbf_seconds,
                                   int num_nodes) {
  CRIUS_CHECK_MSG(config.interval >= 0.0, "negative checkpoint interval");
  CRIUS_CHECK_MSG(config.cost >= 0.0, "negative checkpoint cost");
  if (config.young_daly && node_mtbf_seconds > 0.0 && config.cost > 0.0) {
    const double job_mtbf = node_mtbf_seconds / static_cast<double>(std::max(1, num_nodes));
    return YoungDalyInterval(job_mtbf, config.cost);
  }
  return config.interval;
}

}  // namespace crius
