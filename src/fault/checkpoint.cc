#include "src/fault/checkpoint.h"

#include <algorithm>
#include <cmath>

namespace crius {

double YoungDalyInterval(double mtbf_seconds, double cost_seconds) {
  // Degenerate inputs (unknown MTBF, free checkpoints) have no meaningful
  // optimum; 0 means "periodic checkpointing disabled", which every consumer
  // of an interval already handles. Guarded rather than CHECKed so callers
  // like the migration cost model can invoke it unconditionally.
  if (mtbf_seconds <= 0.0 || cost_seconds <= 0.0) {
    return 0.0;
  }
  return std::sqrt(2.0 * mtbf_seconds * cost_seconds);
}

double CheckpointOverheadFactor(double interval, double cost) {
  // interval <= 0 disables periodic checkpointing; a negative cost is clamped
  // to free rather than aborting (SimConfig::Validate still reports it as a
  // configuration error at the entry points).
  if (interval <= 0.0 || cost <= 0.0) {
    return 1.0;
  }
  return 1.0 + cost / interval;
}

double PreservedProgress(double interval, double progress_seconds) {
  if (interval <= 0.0 || progress_seconds <= 0.0) {
    return 0.0;
  }
  return std::floor(progress_seconds / interval) * interval;
}

double EffectiveCheckpointInterval(const CheckpointConfig& config, double node_mtbf_seconds,
                                   int num_nodes) {
  // Negative knobs clamp to "disabled" instead of aborting: this runs inside
  // the migration cost model and per-start engine path, which must be total.
  if (config.young_daly && node_mtbf_seconds > 0.0 && config.cost > 0.0) {
    const double job_mtbf = node_mtbf_seconds / static_cast<double>(std::max(1, num_nodes));
    return YoungDalyInterval(job_mtbf, config.cost);
  }
  return std::max(0.0, config.interval);
}

}  // namespace crius
