// Failure-trace persistence (CSV), in the style of src/sim/trace_io.
//
// Injector-generated schedules can be saved, hand-edited, and replayed:
// scripted scenarios ("node 3 dies at minute 10, comes back at minute 40")
// are just small CSV files. Loaded schedules are re-sorted into canonical
// order, so hand-written files need not be sorted.
//
// Failure-trace CSV columns:
//   time,kind,node_id,gpus,slowdown
// kind in {node_fail,node_recover,gpu_fail,gpu_recover,straggler_start,
// straggler_end}. Header row required.

#ifndef SRC_FAULT_FAULT_TRACE_IO_H_
#define SRC_FAULT_FAULT_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/fault/failure_injector.h"

namespace crius {

// Serializes `events` as CSV (with header).
void WriteFailureTraceCsv(const std::vector<FailureEvent>& events, std::ostream& out);
bool WriteFailureTraceCsvFile(const std::vector<FailureEvent>& events,
                              const std::string& path);

// Parses a failure-trace CSV, returning the events in canonical order. Aborts
// with a diagnostic on malformed rows (a corrupt fault scenario is an operator
// error worth failing loudly on).
std::vector<FailureEvent> ReadFailureTraceCsv(std::istream& in);
std::vector<FailureEvent> ReadFailureTraceCsvFile(const std::string& path);

}  // namespace crius

#endif  // SRC_FAULT_FAULT_TRACE_IO_H_
