#include "src/fault/fault_trace_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "src/util/check.h"

namespace crius {

namespace {

// Splits one CSV line on commas (no quoting needed for this schema).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

double ParseDouble(const std::string& s, const char* what, int line_no) {
  CRIUS_CHECK_MSG(!s.empty(), "failure trace line " << line_no << ": empty " << what);
  size_t pos = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  CRIUS_CHECK_MSG(ok && pos == s.size(),
                  "failure trace line " << line_no << ": bad " << what << " '" << s << "'");
  return v;
}

int64_t ParseInt(const std::string& s, const char* what, int line_no) {
  const double v = ParseDouble(s, what, line_no);
  CRIUS_CHECK_MSG(v == std::floor(v),
                  "failure trace line " << line_no << ": non-integer " << what);
  return static_cast<int64_t>(v);
}

FailureKind ParseKind(const std::string& s, int line_no) {
  for (FailureKind k :
       {FailureKind::kNodeFail, FailureKind::kNodeRecover, FailureKind::kGpuFail,
        FailureKind::kGpuRecover, FailureKind::kStragglerStart, FailureKind::kStragglerEnd}) {
    if (s == FailureEvent::KindName(k)) {
      return k;
    }
  }
  CRIUS_UNREACHABLE("failure trace line " + std::to_string(line_no) + ": unknown kind '" + s +
                    "'");
}

}  // namespace

void WriteFailureTraceCsv(const std::vector<FailureEvent>& events, std::ostream& out) {
  // Shortest-round-trip precision: a saved schedule replays the exact same
  // simulation the generating run saw.
  const auto old_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "time,kind,node_id,gpus,slowdown\n";
  for (const FailureEvent& e : events) {
    out << e.time << ',' << FailureEvent::KindName(e.kind) << ',' << e.node_id << ','
        << e.gpus << ',' << e.slowdown << '\n';
  }
  out.precision(old_precision);
}

bool WriteFailureTraceCsvFile(const std::vector<FailureEvent>& events,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteFailureTraceCsv(events, out);
  return out.good();
}

std::vector<FailureEvent> ReadFailureTraceCsv(std::istream& in) {
  std::vector<FailureEvent> events;
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (!header_seen) {
      header_seen = true;
      CRIUS_CHECK_MSG(line.rfind("time,", 0) == 0, "failure trace missing header row");
      continue;
    }
    const std::vector<std::string> f = SplitCsv(line);
    CRIUS_CHECK_MSG(f.size() == 5, "failure trace line " << line_no
                                                         << ": expected 5 fields, got "
                                                         << f.size());
    FailureEvent e;
    e.time = ParseDouble(f[0], "time", line_no);
    e.kind = ParseKind(f[1], line_no);
    e.node_id = static_cast<int>(ParseInt(f[2], "node_id", line_no));
    e.gpus = static_cast<int>(ParseInt(f[3], "gpus", line_no));
    e.slowdown = ParseDouble(f[4], "slowdown", line_no);
    CRIUS_CHECK_MSG(e.time >= 0.0, "failure trace line " << line_no << ": negative time");
    CRIUS_CHECK_MSG(e.node_id >= 0, "failure trace line " << line_no << ": negative node_id");
    CRIUS_CHECK_MSG(e.slowdown >= 1.0 || e.kind != FailureKind::kStragglerStart,
                    "failure trace line " << line_no << ": straggler slowdown below 1.0");
    events.push_back(e);
  }
  SortFailureSchedule(events);
  return events;
}

std::vector<FailureEvent> ReadFailureTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  CRIUS_CHECK_MSG(in.is_open(), "cannot open failure trace " << path);
  return ReadFailureTraceCsv(in);
}

}  // namespace crius
