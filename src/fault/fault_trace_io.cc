#include "src/fault/fault_trace_io.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "src/util/check.h"
#include "src/util/csv.h"

namespace crius {

namespace {

FailureKind ParseKind(const std::string& s, int line_no) {
  for (FailureKind k :
       {FailureKind::kNodeFail, FailureKind::kNodeRecover, FailureKind::kGpuFail,
        FailureKind::kGpuRecover, FailureKind::kStragglerStart, FailureKind::kStragglerEnd}) {
    if (s == FailureEvent::KindName(k)) {
      return k;
    }
  }
  CRIUS_UNREACHABLE("failure trace line " + std::to_string(line_no) + ": unknown kind '" + s +
                    "'");
}

}  // namespace

void WriteFailureTraceCsv(const std::vector<FailureEvent>& events, std::ostream& out) {
  // Shortest-round-trip precision: a saved schedule replays the exact same
  // simulation the generating run saw.
  const auto old_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "time,kind,node_id,gpus,slowdown\n";
  for (const FailureEvent& e : events) {
    out << e.time << ',' << FailureEvent::KindName(e.kind) << ',' << e.node_id << ','
        << e.gpus << ',' << e.slowdown << '\n';
  }
  out.precision(old_precision);
}

bool WriteFailureTraceCsvFile(const std::vector<FailureEvent>& events,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteFailureTraceCsv(events, out);
  return out.good();
}

std::vector<FailureEvent> ReadFailureTraceCsv(std::istream& in) {
  std::vector<FailureEvent> events;
  csv::Reader reader(in, "failure trace", "time,");
  while (reader.Next()) {
    reader.ExpectFields(5);
    const int line_no = reader.line_no();
    FailureEvent e;
    e.time = reader.Double(0, "time");
    e.kind = ParseKind(reader.Field(1), line_no);
    e.node_id = static_cast<int>(reader.Int(2, "node_id"));
    e.gpus = static_cast<int>(reader.Int(3, "gpus"));
    e.slowdown = reader.Double(4, "slowdown");
    CRIUS_CHECK_MSG(e.time >= 0.0, "failure trace line " << line_no << ": negative time");
    CRIUS_CHECK_MSG(e.node_id >= 0, "failure trace line " << line_no << ": negative node_id");
    CRIUS_CHECK_MSG(e.slowdown >= 1.0 || e.kind != FailureKind::kStragglerStart,
                    "failure trace line " << line_no << ": straggler slowdown below 1.0");
    events.push_back(e);
  }
  SortFailureSchedule(events);
  return events;
}

std::vector<FailureEvent> ReadFailureTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  CRIUS_CHECK_MSG(in.is_open(), "cannot open failure trace " << path);
  return ReadFailureTraceCsv(in);
}

}  // namespace crius
