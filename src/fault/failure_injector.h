// Deterministic failure injection for cluster simulations.
//
// Real heterogeneous clusters lose GPUs, nodes, and links mid-training; a
// reconfigurable scheduler should be able to re-derive a good plan against
// whatever hardware survives. This module produces the churn: a seeded,
// MTBF-driven schedule of node/GPU failures with exponential repair times and
// straggler (slowdown) windows, generated up front as a plain event list so a
// simulation under failures is exactly as reproducible as one without.
//
// Determinism contract: the schedule is a pure function of (cluster topology,
// config). Every node draws from its own named RNG stream
// ("fault.node.<id>" / "fault.gpu.<id>" / "fault.straggler.<id>"), disjoint
// from every other stream in the repository, so enabling injection never
// perturbs trace synthesis or profiling noise, and adding nodes never
// reshuffles the failures of existing ones.

#ifndef SRC_FAULT_FAILURE_INJECTOR_H_
#define SRC_FAULT_FAILURE_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/hw/cluster.h"

namespace crius {

enum class FailureKind : uint8_t {
  kNodeFail,        // whole node becomes unallocatable; running jobs die
  kNodeRecover,     // node returns to service
  kGpuFail,         // `gpus` devices on the node fail (jobs on the node die)
  kGpuRecover,      // `gpus` devices return to service
  kStragglerStart,  // node runs at `slowdown` x iteration time
  kStragglerEnd,    // node back to full speed
};

// One scripted change of cluster health.
struct FailureEvent {
  double time = 0.0;  // seconds since simulation start
  FailureKind kind = FailureKind::kNodeFail;
  int node_id = 0;
  // GPU-granular events: device count affected (>= 1). 0 for node-level and
  // straggler events.
  int gpus = 0;
  // Straggler windows: multiplicative iteration-time factor (> 1). 1.0 for
  // failure/recovery events.
  double slowdown = 1.0;

  static const char* KindName(FailureKind kind);

  bool operator==(const FailureEvent& other) const {
    return time == other.time && kind == other.kind && node_id == other.node_id &&
           gpus == other.gpus && slowdown == other.slowdown;
  }
};

struct FailureInjectorConfig {
  // Mean time between whole-node failures, per node (hours; 0 disables).
  double node_mtbf_hours = 0.0;
  // Mean time between single-GPU failures, per GPU (hours; 0 disables).
  double gpu_mtbf_hours = 0.0;
  // Mean time to repair a failure (hours).
  double mttr_hours = 0.5;
  // Expected straggler windows per node per hour (0 disables).
  double straggler_rate = 0.0;
  // Mean straggler-window length (hours).
  double straggler_duration_hours = 0.5;
  // Nominal straggler iteration-time factor; realized windows draw uniformly
  // from [1 + 0.5*(f-1), 1 + 1.5*(f-1)].
  double straggler_slowdown = 1.5;
  // Events are generated with fail/start times in [0, horizon) seconds;
  // recoveries may land past the horizon so every failure stays paired.
  double horizon = 0.0;
  uint64_t seed = 42;

  bool enabled() const {
    return node_mtbf_hours > 0.0 || gpu_mtbf_hours > 0.0 || straggler_rate > 0.0;
  }
};

// Generates the failure schedule for `cluster` under `config`, sorted by
// (time, node, kind). Same cluster + config => byte-identical schedule.
// Aborts on nonsensical configs (negative rates, enabled rates with no
// horizon).
std::vector<FailureEvent> GenerateFailureSchedule(const Cluster& cluster,
                                                  const FailureInjectorConfig& config);

// Sorts `events` into the canonical (time, node, kind) order the simulator
// expects; loaders use it so hand-written traces need not be pre-sorted.
void SortFailureSchedule(std::vector<FailureEvent>& events);

}  // namespace crius

#endif  // SRC_FAULT_FAILURE_INJECTOR_H_
