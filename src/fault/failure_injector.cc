#include "src/fault/failure_injector.h"

#include <algorithm>
#include <string>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace crius {

const char* FailureEvent::KindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNodeFail:
      return "node_fail";
    case FailureKind::kNodeRecover:
      return "node_recover";
    case FailureKind::kGpuFail:
      return "gpu_fail";
    case FailureKind::kGpuRecover:
      return "gpu_recover";
    case FailureKind::kStragglerStart:
      return "straggler_start";
    case FailureKind::kStragglerEnd:
      return "straggler_end";
  }
  return "?";
}

void SortFailureSchedule(std::vector<FailureEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     if (a.time != b.time) {
                       return a.time < b.time;
                     }
                     if (a.node_id != b.node_id) {
                       return a.node_id < b.node_id;
                     }
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

namespace {

void ValidateConfig(const FailureInjectorConfig& c) {
  CRIUS_CHECK_MSG(c.node_mtbf_hours >= 0.0, "negative node MTBF");
  CRIUS_CHECK_MSG(c.gpu_mtbf_hours >= 0.0, "negative GPU MTBF");
  CRIUS_CHECK_MSG(c.mttr_hours > 0.0, "MTTR must be positive");
  CRIUS_CHECK_MSG(c.straggler_rate >= 0.0, "negative straggler rate");
  CRIUS_CHECK_MSG(c.straggler_duration_hours > 0.0, "straggler duration must be positive");
  CRIUS_CHECK_MSG(c.straggler_slowdown > 1.0, "straggler slowdown must exceed 1.0");
  CRIUS_CHECK_MSG(!c.enabled() || c.horizon > 0.0,
                  "failure injection enabled with no horizon");
}

// Alternating fail/repair lifecycle for one node: a node is either up or in
// repair, so its own failures never overlap.
void NodeFailures(const NodeInfo& node, const FailureInjectorConfig& c,
                  std::vector<FailureEvent>& out) {
  Rng rng(c.seed, "fault.node." + std::to_string(node.id));
  const double fail_rate = 1.0 / (c.node_mtbf_hours * kHour);
  const double repair_rate = 1.0 / (c.mttr_hours * kHour);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(fail_rate);
    if (t >= c.horizon) {
      return;
    }
    const double down_for = rng.Exponential(repair_rate);
    out.push_back(FailureEvent{t, FailureKind::kNodeFail, node.id, 0, 1.0});
    out.push_back(FailureEvent{t + down_for, FailureKind::kNodeRecover, node.id, 0, 1.0});
    t += down_for;
  }
}

// Single-GPU failures: the node's devices fail as a superposed Poisson process
// (rate = gpus / MTBF); each failed device repairs independently, so
// concurrent single-GPU failures on one node are possible.
void GpuFailures(const NodeInfo& node, const FailureInjectorConfig& c,
                 std::vector<FailureEvent>& out) {
  Rng rng(c.seed, "fault.gpu." + std::to_string(node.id));
  const double fail_rate =
      static_cast<double>(node.total_gpus) / (c.gpu_mtbf_hours * kHour);
  const double repair_rate = 1.0 / (c.mttr_hours * kHour);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(fail_rate);
    if (t >= c.horizon) {
      return;
    }
    const double down_for = rng.Exponential(repair_rate);
    out.push_back(FailureEvent{t, FailureKind::kGpuFail, node.id, 1, 1.0});
    out.push_back(FailureEvent{t + down_for, FailureKind::kGpuRecover, node.id, 1, 1.0});
  }
}

// Straggler windows: sequential per node (a node is either slow or not).
void StragglerWindows(const NodeInfo& node, const FailureInjectorConfig& c,
                      std::vector<FailureEvent>& out) {
  Rng rng(c.seed, "fault.straggler." + std::to_string(node.id));
  const double start_rate = c.straggler_rate / kHour;
  const double mean_duration = c.straggler_duration_hours * kHour;
  double t = 0.0;
  while (true) {
    t += rng.Exponential(start_rate);
    if (t >= c.horizon) {
      return;
    }
    const double duration = rng.Exponential(1.0 / mean_duration);
    const double excess = c.straggler_slowdown - 1.0;
    const double factor = 1.0 + excess * rng.Uniform(0.5, 1.5);
    out.push_back(FailureEvent{t, FailureKind::kStragglerStart, node.id, 0, factor});
    out.push_back(FailureEvent{t + duration, FailureKind::kStragglerEnd, node.id, 0, 1.0});
    t += duration;
  }
}

}  // namespace

std::vector<FailureEvent> GenerateFailureSchedule(const Cluster& cluster,
                                                  const FailureInjectorConfig& config) {
  ValidateConfig(config);
  std::vector<FailureEvent> events;
  if (!config.enabled()) {
    return events;
  }
  for (const NodeInfo& node : cluster.nodes()) {
    if (config.node_mtbf_hours > 0.0) {
      NodeFailures(node, config, events);
    }
    if (config.gpu_mtbf_hours > 0.0) {
      GpuFailures(node, config, events);
    }
    if (config.straggler_rate > 0.0) {
      StragglerWindows(node, config, events);
    }
  }
  SortFailureSchedule(events);
  return events;
}

}  // namespace crius
