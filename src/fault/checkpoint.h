// Checkpoint model: what a failure actually costs.
//
// Without checkpoints a failure throws away everything since the job's last
// (re)start. With periodic checkpoints a failure only loses the work since the
// last completed checkpoint, at the price of a steady-state overhead of one
// checkpoint write per interval. The optimal interval balancing the two is the
// classic Young/Daly first-order optimum sqrt(2 * MTBF * cost), which the
// simulator can derive per job from the configured node MTBF and the job's
// node span.

#ifndef SRC_FAULT_CHECKPOINT_H_
#define SRC_FAULT_CHECKPOINT_H_

namespace crius {

struct CheckpointConfig {
  // Seconds of progress between checkpoints; 0 disables periodic checkpoints
  // (a failure then loses the whole run segment).
  double interval = 0.0;
  // Seconds to write one checkpoint (stalls training).
  double cost = 30.0;
  // Derive the interval per job as YoungDalyInterval(job MTBF, cost) instead
  // of the fixed `interval`; falls back to `interval` when no MTBF is known.
  bool young_daly = false;
};

// First-order optimal checkpoint interval sqrt(2 * mtbf * cost). Total over
// all inputs: a non-positive MTBF or cost returns 0 ("checkpointing
// disabled") so unconditional callers -- the migration cost model, the
// engine's per-start path -- never abort on degenerate configurations.
double YoungDalyInterval(double mtbf_seconds, double cost_seconds);

// Steady-state slowdown factor of periodic checkpointing: every `interval`
// seconds of progress additionally pays `cost` seconds, so wall time runs
// (1 + cost / interval) slower. 1.0 when checkpointing is disabled
// (interval <= 0) or the write is free (cost <= 0; negative clamps to free).
double CheckpointOverheadFactor(double interval, double cost);

// Progress surviving a failure: of `progress_seconds` of useful work since the
// segment start, the part covered by completed checkpoints. 0 when
// checkpointing is disabled.
double PreservedProgress(double interval, double progress_seconds);

// The interval a job spanning `num_nodes` nodes should run with, given the
// per-node MTBF (seconds; 0 = unknown). Resolves young_daly against the job's
// effective MTBF (node MTBF / nodes spanned).
double EffectiveCheckpointInterval(const CheckpointConfig& config, double node_mtbf_seconds,
                                   int num_nodes);

}  // namespace crius

#endif  // SRC_FAULT_CHECKPOINT_H_
