// Line-delimited JSON protocol between crius_serve and its clients.
//
// Each request and each response is one flat JSON object on one line --
// string, number, and boolean values only, no nesting. A deliberately tiny
// dialect: it keeps the daemon dependency-free, is trivially scriptable from
// a shell, and the flat shape is all the command vocabulary needs.
//
//   -> {"cmd":"submit","family":"BERT","params_billion":1.3,
//       "global_batch":256,"iterations":200,"gpus":8,"type":"A100"}
//   <- {"ok":true,"job_id":7,"status":"queued"}
//   -> {"cmd":"submit",...}                       (cluster saturated)
//   <- {"ok":false,"reason":"cluster_saturated"}
//
// Commands: submit | cancel | fail-node | recover-node | query | stats |
// metrics | shutdown. See DESIGN.md §8 for the full field tables. The
// `metrics` reply smuggles the (nested) registry snapshot through the flat
// dialect as an escaped string field -- clients parse the line, then parse
// the "metrics" payload.
//
// Serialization is deterministic (keys emitted in sorted order) so tests can
// string-compare responses.

#ifndef SRC_SERVE_PROTOCOL_H_
#define SRC_SERVE_PROTOCOL_H_

#include <map>
#include <string>

#include "src/model/job.h"
#include "src/serve/event_queue.h"

namespace crius {
namespace serve {

// One flat JSON value.
struct JsonValue {
  enum class Kind : uint8_t { kString, kNumber, kBool };
  Kind kind = Kind::kString;
  std::string str;
  double num = 0.0;
  bool b = false;

  static JsonValue String(std::string s);
  static JsonValue Number(double v);
  static JsonValue Bool(bool v);
};

// std::map keeps keys sorted, which makes Serialize deterministic.
using JsonObject = std::map<std::string, JsonValue>;

// Parses one flat JSON object. Returns false (with a message in *error) on
// malformed input, nesting, arrays, or null -- operator input is rejected,
// never aborted on.
bool ParseJsonObject(const std::string& line, JsonObject* out, std::string* error);

// Renders `obj` as one JSON line (no trailing newline), keys sorted.
std::string Serialize(const JsonObject& obj);

// Field accessors with defaults.
bool Has(const JsonObject& obj, const std::string& key);
std::string GetString(const JsonObject& obj, const std::string& key,
                      const std::string& fallback = "");
double GetNumber(const JsonObject& obj, const std::string& key, double fallback = 0.0);
bool GetBool(const JsonObject& obj, const std::string& key, bool fallback = false);

// Canned responses.
std::string OkResponse(JsonObject extra = {});
std::string ErrorResponse(RejectReason reason, const std::string& message = "");

// Builds a TrainingJob (id unset) from a submit request. Returns false with a
// human-readable message on unknown families/types, unsupported model sizes,
// or non-positive counts; the caller turns that into a kBadRequest response.
bool ParseSubmitJob(const JsonObject& request, TrainingJob* job, std::string* error);

// The submit request for `job` (inverse of ParseSubmitJob; used by the client
// library and the load generator).
JsonObject SubmitRequest(const TrainingJob& job);

}  // namespace serve
}  // namespace crius

#endif  // SRC_SERVE_PROTOCOL_H_
