#include "src/serve/protocol.h"

#include <cctype>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace crius {
namespace serve {

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind = Kind::kString;
  v.str = std::move(s);
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  v.num = value;
  return v;
}

JsonValue JsonValue::Bool(bool value) {
  JsonValue v;
  v.kind = Kind::kBool;
  v.b = value;
  return v;
}

namespace {

// Cursor over the request line.
struct Parser {
  const std::string& s;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos >= s.size() || s[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= s.size()) {
          return Fail("dangling escape");
        }
        const char e = s[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default:
            return Fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= s.size()) {
      return Fail("expected value");
    }
    const char c = s[pos];
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const std::string word = c == 't' ? "true" : "false";
      if (s.compare(pos, word.size(), word) != 0) {
        return Fail("bad literal");
      }
      pos += word.size();
      out->kind = JsonValue::Kind::kBool;
      out->b = c == 't';
      return true;
    }
    if (c == '{' || c == '[') {
      return Fail("nested values are not part of the protocol");
    }
    if (c == 'n') {
      return Fail("null is not part of the protocol");
    }
    // Number.
    size_t end = pos;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) != 0 || s[end] == '-' ||
            s[end] == '+' || s[end] == '.' || s[end] == 'e' || s[end] == 'E')) {
      ++end;
    }
    if (end == pos) {
      return Fail("expected value");
    }
    const std::string token = s.substr(pos, end - pos);
    try {
      size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size() || !std::isfinite(v)) {
        return Fail("bad number '" + token + "'");
      }
      out->kind = JsonValue::Kind::kNumber;
      out->num = v;
    } catch (const std::exception&) {
      return Fail("bad number '" + token + "'");
    }
    pos = end;
    return true;
  }
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string FmtNumber(double v) {
  // Integers (job ids, GPU counts) render without a decimal point; everything
  // else round-trips at full precision.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream oss;
    oss << static_cast<long long>(v);
    return oss.str();
  }
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return oss.str();
}

}  // namespace

bool ParseJsonObject(const std::string& line, JsonObject* out, std::string* error) {
  out->clear();
  Parser p{line, 0, error};
  if (!p.Consume('{')) {
    return p.Fail("expected '{'");
  }
  p.SkipSpace();
  if (p.Consume('}')) {
    // Empty object; trailing garbage check below.
  } else {
    while (true) {
      std::string key;
      if (!p.ParseString(&key)) {
        return false;
      }
      if (!p.Consume(':')) {
        return p.Fail("expected ':'");
      }
      JsonValue value;
      if (!p.ParseValue(&value)) {
        return false;
      }
      (*out)[key] = value;
      if (p.Consume(',')) {
        continue;
      }
      if (p.Consume('}')) {
        break;
      }
      return p.Fail("expected ',' or '}'");
    }
  }
  p.SkipSpace();
  if (p.pos != line.size()) {
    return p.Fail("trailing characters");
  }
  return true;
}

std::string Serialize(const JsonObject& obj) {
  std::ostringstream oss;
  oss << '{';
  bool first = true;
  for (const auto& [key, value] : obj) {
    if (!first) {
      oss << ',';
    }
    first = false;
    oss << '"' << EscapeJson(key) << "\":";
    switch (value.kind) {
      case JsonValue::Kind::kString:
        oss << '"' << EscapeJson(value.str) << '"';
        break;
      case JsonValue::Kind::kNumber:
        oss << FmtNumber(value.num);
        break;
      case JsonValue::Kind::kBool:
        oss << (value.b ? "true" : "false");
        break;
    }
  }
  oss << '}';
  return oss.str();
}

bool Has(const JsonObject& obj, const std::string& key) { return obj.count(key) != 0; }

std::string GetString(const JsonObject& obj, const std::string& key,
                      const std::string& fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kString) {
    return fallback;
  }
  return it->second.str;
}

double GetNumber(const JsonObject& obj, const std::string& key, double fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return it->second.num;
}

bool GetBool(const JsonObject& obj, const std::string& key, bool fallback) {
  auto it = obj.find(key);
  if (it == obj.end() || it->second.kind != JsonValue::Kind::kBool) {
    return fallback;
  }
  return it->second.b;
}

std::string OkResponse(JsonObject extra) {
  extra["ok"] = JsonValue::Bool(true);
  return Serialize(extra);
}

std::string ErrorResponse(RejectReason reason, const std::string& message) {
  JsonObject obj;
  obj["ok"] = JsonValue::Bool(false);
  obj["reason"] = JsonValue::String(RejectReasonName(reason));
  if (!message.empty()) {
    obj["message"] = JsonValue::String(message);
  }
  return Serialize(obj);
}

bool ParseSubmitJob(const JsonObject& request, TrainingJob* job, std::string* error) {
  *job = TrainingJob{};

  const std::string family = GetString(request, "family");
  bool family_ok = false;
  for (ModelFamily f : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    if (family == FamilyName(f)) {
      job->spec.family = f;
      family_ok = true;
      break;
    }
  }
  if (!family_ok) {
    *error = "unknown family '" + family + "'";
    return false;
  }

  job->spec.params_billion = GetNumber(request, "params_billion", -1.0);
  bool size_ok = false;
  for (double size : SupportedSizes(job->spec.family)) {
    if (std::abs(size - job->spec.params_billion) < 1e-9) {
      job->spec.params_billion = size;
      size_ok = true;
      break;
    }
  }
  if (!size_ok) {
    *error = "unsupported params_billion for " + family;
    return false;
  }

  job->spec.global_batch = static_cast<int64_t>(GetNumber(request, "global_batch", 0.0));
  if (job->spec.global_batch < 1) {
    *error = "global_batch must be >= 1";
    return false;
  }
  job->iterations = static_cast<int64_t>(GetNumber(request, "iterations", 0.0));
  if (job->iterations < 1) {
    *error = "iterations must be >= 1";
    return false;
  }
  job->requested_gpus = static_cast<int>(GetNumber(request, "gpus", 0.0));
  if (job->requested_gpus < 1) {
    *error = "gpus must be >= 1";
    return false;
  }

  const std::string type = GetString(request, "type", "A100");
  bool type_ok = false;
  for (GpuType t : AllGpuTypes()) {
    if (type == GpuName(t)) {
      job->requested_type = t;
      type_ok = true;
      break;
    }
  }
  if (!type_ok) {
    *error = "unknown GPU type '" + type + "'";
    return false;
  }

  if (Has(request, "deadline")) {
    const double deadline = GetNumber(request, "deadline", -1.0);
    if (deadline <= 0.0) {
      *error = "deadline must be > 0";
      return false;
    }
    job->deadline = deadline;
  }
  return true;
}

JsonObject SubmitRequest(const TrainingJob& job) {
  JsonObject obj;
  obj["cmd"] = JsonValue::String("submit");
  obj["family"] = JsonValue::String(FamilyName(job.spec.family));
  obj["params_billion"] = JsonValue::Number(job.spec.params_billion);
  obj["global_batch"] = JsonValue::Number(static_cast<double>(job.spec.global_batch));
  obj["iterations"] = JsonValue::Number(static_cast<double>(job.iterations));
  obj["gpus"] = JsonValue::Number(static_cast<double>(job.requested_gpus));
  obj["type"] = JsonValue::String(GpuName(job.requested_type));
  if (job.deadline.has_value()) {
    obj["deadline"] = JsonValue::Number(*job.deadline);
  }
  return obj;
}

}  // namespace serve
}  // namespace crius
