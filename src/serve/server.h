// Local-socket front end: accepts connections on a Unix domain socket and
// feeds complete request lines to a handler.
//
// One poll thread owns every fd (listener + connections): it accepts,
// reads into per-connection buffers, and extracts complete lines. Each poll
// round, the connections that produced ready lines are dispatched through the
// process-wide ThreadPool (ThreadPool::Global().ParallelFor) -- one worker
// per connection, so a connection's requests stay ordered and no two threads
// ever write the same fd, while slow handlers on separate connections run
// concurrently. Handlers must therefore be thread-safe (the Controller's
// ingress and snapshot surfaces are).

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace crius {
namespace serve {

class Server {
 public:
  // Returns the response line (without trailing newline) for one request
  // line. Called concurrently from pool workers.
  using Handler = std::function<std::string(const std::string& line)>;

  Server(std::string socket_path, Handler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and launches the poll thread. Returns false with a
  // message on bind/listen failures (stale socket files are unlinked first).
  bool Start(std::string* error);

  // Stops the poll thread, closes every fd, and removes the socket file.
  // Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  struct Connection {
    int fd = -1;
    std::string buffer;               // bytes read, not yet line-terminated
    std::vector<std::string> ready;   // complete lines awaiting dispatch
    bool closed = false;
  };

  void PollLoop();
  void AcceptNew();
  // Reads available bytes; marks the connection closed on EOF/error.
  void ReadFrom(Connection& conn);
  void DispatchReady();

  const std::string socket_path_;
  const Handler handler_;
  int listen_fd_ = -1;
  std::vector<Connection> connections_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace serve
}  // namespace crius

#endif  // SRC_SERVE_SERVER_H_
