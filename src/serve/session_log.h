// Append-only record of everything a live serving session was told.
//
// The controller writes one CSV row per externally-injected fact -- job
// submissions, owner cancels, node failures and recoveries -- stamped with the
// virtual time at which the command was applied, plus one leading `meta` row
// capturing the full runtime configuration (cluster spec, scheduler,
// SimConfig knobs, seed). That is exactly the information the batch simulator
// needs: BuildReplayInputs() turns a log back into a (trace, failures,
// cancels) triple and replay.h runs it through Simulator::Run. Because the
// live controller and the batch simulator share one SimEngine, a drained
// session's replay produces bit-identical decision CSVs (see
// src/sim/engine.h for the determinism contract); times are serialized with
// max_digits10 so every double round-trips exactly.
//
// Columns:
//   time,kind,job_id,node_id,family,params_billion,global_batch,iterations,
//   requested_gpus,requested_type,deadline,detail
// Kinds: meta | submit | cancel | fail_node | recover_node. Unused columns
// are empty (numeric id columns: -1). The meta row packs its key=value pairs
// into `detail`, semicolon-separated; the cluster spec value contains commas,
// so the field exercises the shared CSV quoting (src/util/csv.h).

#ifndef SRC_SERVE_SESSION_LOG_H_
#define SRC_SERVE_SESSION_LOG_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/fault/failure_injector.h"
#include "src/model/job.h"
#include "src/sim/simulator.h"

namespace crius {

// Everything needed to rebuild the live session's runtime (cluster,
// scheduler, SimConfig) for replay. Serialized into the log's meta row.
struct SessionMeta {
  std::string cluster_spec = "testbed";
  std::string scheduler = "crius";
  uint64_t seed = 1;
  int search_depth = 3;
  bool deadline_aware = false;
  bool incremental = true;
  double schedule_interval = 5.0 * kMinute;
  double restart_overhead = 60.0;
  bool charge_profiling = true;
  // Live reconfiguration (src/reconfig) with its default knobs. Recorded so a
  // replay reconstructs the same migration decisions the live session made.
  bool reconfig = false;
};

// Streaming log writer. Each Append* call emits one row and flushes, so a
// crash or signal loses at most the in-flight row.
class SessionLog {
 public:
  // Opens `path` (truncating) and writes the header + meta row. Aborts if the
  // file cannot be opened: a serving daemon without its flight recorder is
  // misconfigured.
  SessionLog(const std::string& path, const SessionMeta& meta);
  // Stream variant for tests / in-process sessions.
  SessionLog(std::ostream& out, const SessionMeta& meta);

  void AppendSubmit(double time, const TrainingJob& job);
  void AppendCancel(double time, int64_t job_id);
  void AppendFailNode(double time, int node_id);
  void AppendRecoverNode(double time, int node_id);

  void Flush();

 private:
  void WriteHeader(const SessionMeta& meta);

  std::ofstream file_;
  std::ostream* out_;  // &file_ or the caller's stream
};

// A parsed session log.
struct Session {
  SessionMeta meta;
  std::vector<TrainingJob> trace;       // submit rows, in log (= id) order
  std::vector<FailureEvent> failures;   // fail_node / recover_node rows
  std::vector<JobCancelEvent> cancels;  // cancel rows
};

// Parses a session log. Aborts with a "session log line N: ..." diagnostic on
// malformed rows (same failing-loudly policy as the trace readers).
Session ReadSessionLog(std::istream& in);
Session ReadSessionLogFile(const std::string& path);

// Serializes/parses the meta row's detail payload (exposed for tests).
std::string SerializeSessionMeta(const SessionMeta& meta);
SessionMeta ParseSessionMeta(const std::string& detail, int line_no);

}  // namespace crius

#endif  // SRC_SERVE_SESSION_LOG_H_
