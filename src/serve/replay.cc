#include "src/serve/replay.h"

#include "src/hw/cluster.h"
#include "src/sched/factory.h"
#include "src/util/check.h"

namespace crius {

SimConfig SimConfigFromMeta(const SessionMeta& meta) {
  SimConfig config;
  config.schedule_interval = meta.schedule_interval;
  config.restart_overhead = meta.restart_overhead;
  config.charge_profiling = meta.charge_profiling;
  config.record_events = true;
  config.reconfig.enabled = meta.reconfig;
  return config;
}

SessionRuntime MakeSessionRuntime(const SessionMeta& meta) {
  SessionRuntime runtime;
  runtime.cluster = MakeNamedCluster(meta.cluster_spec);
  runtime.oracle = std::make_unique<PerformanceOracle>(runtime.cluster, meta.seed);
  CRIUS_CHECK_MSG(IsKnownScheduler(meta.scheduler),
                  "session meta names unknown scheduler '" << meta.scheduler << "'");
  SchedulerOptions options;
  options.search_depth = meta.search_depth;
  options.deadline_aware = meta.deadline_aware;
  options.incremental = meta.incremental;
  runtime.scheduler = MakeNamedScheduler(meta.scheduler, runtime.oracle.get(), options);
  runtime.sim = SimConfigFromMeta(meta);
  return runtime;
}

SimResult ReplaySession(const Session& session) {
  SessionRuntime runtime = MakeSessionRuntime(session.meta);
  runtime.sim.failures = session.failures;
  runtime.sim.cancels = session.cancels;
  Simulator simulator(runtime.cluster, runtime.sim);
  return simulator.Run(*runtime.scheduler, *runtime.oracle, session.trace);
}

SimResult ReplaySessionFile(const std::string& path) {
  return ReplaySession(ReadSessionLogFile(path));
}

}  // namespace crius
