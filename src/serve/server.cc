#include "src/serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/util/counters.h"
#include "src/util/threadpool.h"

namespace crius {
namespace serve {

namespace {

constexpr int kPollTimeoutMs = 50;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

bool FillSockaddr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

Server::Server(std::string socket_path, Handler handler)
    : socket_path_(std::move(socket_path)), handler_(std::move(handler)) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  sockaddr_un addr;
  if (!FillSockaddr(socket_path_, &addr, error)) {
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(socket_path_.c_str());  // stale file from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind(" + socket_path_ + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    *error = std::string("listen(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(listen_fd_);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { PollLoop(); });
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
    }
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

void Server::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or error; poll will tell us again
    }
    SetNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    connections_.push_back(std::move(conn));
    CRIUS_COUNTER_INC("serve.connections");
  }
}

void Server::ReadFrom(Connection& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.buffer.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // drained what was ready
      }
      continue;
    }
    if (n == 0) {
      conn.closed = true;  // peer closed
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      conn.closed = true;
    }
    break;
  }
  size_t start = 0;
  while (true) {
    const size_t nl = conn.buffer.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    std::string line = conn.buffer.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty()) {
      conn.ready.push_back(std::move(line));
    }
    start = nl + 1;
  }
  conn.buffer.erase(0, start);
}

void Server::DispatchReady() {
  std::vector<Connection*> busy;
  for (Connection& conn : connections_) {
    if (!conn.ready.empty() && !conn.closed) {
      busy.push_back(&conn);
    }
  }
  if (busy.empty()) {
    return;
  }
  // One worker per connection: requests within a connection stay ordered and
  // each fd has a single writer; independent connections are served
  // concurrently by the shared pool.
  ThreadPool::Global().ParallelFor(busy.size(), [&](size_t i) {
    Connection& conn = *busy[i];
    for (const std::string& line : conn.ready) {
      CRIUS_COUNTER_INC("serve.requests");
      const std::string response = handler_(line) + "\n";
      size_t written = 0;
      while (written < response.size()) {
        const ssize_t n =
            ::write(conn.fd, response.data() + written, response.size() - written);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{conn.fd, POLLOUT, 0};
            ::poll(&pfd, 1, 100);  // wait for the send buffer to drain
            continue;
          }
          conn.closed = true;
          break;
        }
        written += static_cast<size_t>(n);
      }
      if (conn.closed) {
        break;
      }
    }
    conn.ready.clear();
  });
}

void Server::PollLoop() {
  while (running_.load(std::memory_order_acquire)) {
    // Connections accepted this round (AcceptNew below) have no pollfd entry
    // yet; only the first `polled` connections may be indexed into `fds`.
    const size_t polled = connections_.size();
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Connection& conn : connections_) {
      fds.push_back(pollfd{conn.fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready > 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        AcceptNew();
      }
      for (size_t i = 0; i < polled; ++i) {
        const short events = fds[i + 1].revents;
        if ((events & (POLLIN | POLLHUP | POLLERR)) != 0) {
          ReadFrom(connections_[i]);
        }
      }
      DispatchReady();
    }
    // Retire closed connections after dispatch so final responses go out.
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i].closed) {
        ::close(connections_[i].fd);
        connections_.erase(connections_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
}

}  // namespace serve
}  // namespace crius
