// Cluster-controller round loop: the long-running core of crius_serve.
//
// One controller thread owns a SimEngine and is the only thread that touches
// it. Ingress threads (socket handlers, bench clients) go through two
// thread-safe surfaces instead:
//
//   * the EventQueue (Submit/Cancel/FailNode/RecoverNode/Shutdown), which
//     applies admission control and hands commands to the round loop, and
//   * a mutex-guarded snapshot (Query/GetStats) the loop refreshes each tick.
//
// Each tick the loop drains the queue, advances the session's virtual clock
// by tick_virtual_seconds, stamps every drained command with the new virtual
// time, applies it to the engine (TryAddJob / InjectCancel / InjectFailure),
// appends it to the session log, and calls SimEngine::AdvanceTo(now). The
// engine's lazy stepping (src/sim/engine.h) guarantees that the resulting
// decision sequence is bit-identical to replaying the session log through the
// batch simulator, provided the session ends with a drain (the protocol
// `shutdown` command's default). A signal-initiated stop flushes and exits
// WITHOUT draining; such a truncated session is still a valid log but its
// replay runs past the point where the live session stopped.
//
// Wall-clock decision latency (ingress enqueue -> applied at tick) is
// recorded per command into the "serve.decision_latency_ms" histogram and
// surfaced as p50/p95/p99 in GetStats.
//
// Each tick is also broken into four instrumented phases -- drain (pop the
// ingress queue), apply (feed commands to the engine), schedule
// (SimEngine::AdvanceTo, where scheduler rounds run), and log (snapshot
// refresh + bookkeeping) -- recorded into the labeled histogram
// "serve.phase_ms{phase=...}" plus the tick total "serve.round_ms" (sleep
// excluded, so the four phases sum to the round within timer granularity)
// and mirrored as Chrome-trace spans. When Config::metrics_csv is set, the
// loop appends a full registry snapshot row every metrics_every_ticks ticks
// (see MetricsCsvWriter).

#ifndef SRC_SERVE_CONTROLLER_H_
#define SRC_SERVE_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/serve/event_queue.h"
#include "src/serve/session_log.h"
#include "src/sim/engine.h"
#include "src/util/metrics_export.h"

namespace crius {

class Controller {
 public:
  struct Config {
    // Virtual seconds the session clock advances per tick.
    double tick_virtual_seconds = 60.0;
    // Wall-clock pause between ticks (the daemon's poll cadence).
    double tick_wall_seconds = 0.02;
    // When non-empty, append a metrics-registry snapshot row to this CSV
    // every metrics_every_ticks ticks (and once more on loop exit).
    std::string metrics_csv;
    int metrics_every_ticks = 10;
    EventQueueConfig queue;
  };

  struct SubmitResult {
    bool ok = false;
    int64_t job_id = -1;
    RejectReason reason = RejectReason::kNone;
  };

  struct JobStatus {
    bool known = false;
    // accepted | queued | running | finished | dropped | infeasible
    std::string state;
    double submit_time = -1.0;
    double first_start = -1.0;
    double finish_time = -1.0;
    int restarts = 0;
  };

  struct Stats {
    double virtual_now = 0.0;
    uint64_t ticks = 0;
    int live_jobs = 0;
    int running_jobs = 0;
    int queued_jobs = 0;
    uint64_t accepted = 0;
    uint64_t infeasible = 0;
    // Wall-clock ingress->applied latency over every consumed command.
    uint64_t decisions = 0;
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    // Sourced from the metrics registry / queue at GetStats time, not
    // hand-maintained: ingress commands currently waiting for the round
    // loop, wall seconds since Start(), and admission rejections by reason
    // (machine-readable RejectReasonName tokens, counts > 0 only).
    int queue_depth = 0;
    double uptime_seconds = 0.0;
    std::vector<std::pair<std::string, int64_t>> rejected_by_reason;
  };

  // `scheduler` and `oracle` must outlive the controller; `log` may be null
  // (no session recording; replay is then impossible).
  Controller(const Cluster& cluster, SimConfig sim_config, Scheduler& scheduler,
             PerformanceOracle& oracle, SessionLog* log, Config config);
  ~Controller();

  // Launches the round loop. Call once.
  void Start();
  // Blocks until the loop exited (protocol shutdown or signal).
  void Join();
  bool done() const { return done_.load(std::memory_order_acquire); }
  // True when the loop was stopped by a signal instead of a protocol
  // shutdown; the session was then NOT drained.
  bool interrupted() const { return interrupted_.load(std::memory_order_acquire); }

  // --- Ingress (any thread) --------------------------------------------------
  // Admission-checks and enqueues; assigns the job id returned to the client.
  SubmitResult Submit(TrainingJob job);
  std::optional<RejectReason> Cancel(int64_t job_id);
  std::optional<RejectReason> FailNode(int node_id);
  std::optional<RejectReason> RecoverNode(int node_id);
  std::optional<RejectReason> Shutdown(bool drain);

  // --- Snapshot (any thread) -------------------------------------------------
  JobStatus Query(int64_t job_id) const;
  Stats GetStats() const;

  // After Join(): settles the engine and returns the SimResult (decision
  // CSVs). Call at most once.
  SimResult TakeResult();

 private:
  void RunLoop();
  void ApplyCommand(const ServeCommand& cmd);
  void RefreshSnapshot();
  void MaybeAppendMetricsCsv(bool force);

  const Config config_;
  const int num_nodes_;
  SimEngine engine_;
  SessionLog* log_;
  EventQueue queue_;
  std::optional<MetricsCsvWriter> metrics_csv_;

  std::thread thread_;
  std::chrono::steady_clock::time_point start_wall_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> interrupted_{false};
  std::atomic<int64_t> next_job_id_{1};

  // Controller-thread only.
  double virtual_now_ = 0.0;
  bool drain_on_shutdown_ = true;
  std::vector<int64_t> active_ids_;

  // Guards everything below (ingress bookkeeping + tick snapshot).
  mutable std::mutex state_mu_;
  std::unordered_map<int64_t, JobStatus> statuses_;
  std::vector<double> latencies_ms_;
  Stats stats_;
};

}  // namespace crius

#endif  // SRC_SERVE_CONTROLLER_H_
