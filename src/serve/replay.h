// Deterministic re-execution of a recorded serving session.
//
// MakeSessionRuntime rebuilds the exact runtime a session's meta row
// describes -- cluster, oracle (seeded identically), scheduler, SimConfig --
// and ReplaySession feeds the log's submissions/cancels/failures through the
// batch Simulator. Live loop and batch simulator share one SimEngine
// (src/sim/engine.h), so for a session that ended with a drained shutdown the
// replayed SimResult's job records and event log are bit-identical to the
// live ones; serve_replay_test.cc and the CI smoke job compare the CSVs
// byte-for-byte.

#ifndef SRC_SERVE_REPLAY_H_
#define SRC_SERVE_REPLAY_H_

#include <memory>
#include <string>

#include "src/core/oracle.h"
#include "src/sched/scheduler.h"
#include "src/serve/session_log.h"
#include "src/sim/simulator.h"

namespace crius {

// The full runtime a SessionMeta describes. Used by crius_serve to construct
// the live controller and by the replay path, so both sides cannot drift.
struct SessionRuntime {
  Cluster cluster;
  std::unique_ptr<PerformanceOracle> oracle;
  std::unique_ptr<Scheduler> scheduler;
  SimConfig sim;
};

// SimConfig from the meta row. record_events is always on: the event CSV is
// half of the replay-identity check.
SimConfig SimConfigFromMeta(const SessionMeta& meta);

// Builds cluster + oracle + scheduler + SimConfig from the meta row. Aborts
// on unknown cluster specs or scheduler names (the meta row was written by
// crius_serve, so a mismatch means a corrupt or hand-edited log).
SessionRuntime MakeSessionRuntime(const SessionMeta& meta);

// Replays a parsed session through Simulator::Run.
SimResult ReplaySession(const Session& session);
SimResult ReplaySessionFile(const std::string& path);

}  // namespace crius

#endif  // SRC_SERVE_REPLAY_H_
