#include "src/serve/session_log.h"

#include <iomanip>
#include <limits>
#include <sstream>

#include "src/util/check.h"
#include "src/util/csv.h"

namespace crius {

namespace {

constexpr char kHeader[] =
    "time,kind,job_id,node_id,family,params_billion,global_batch,iterations,"
    "requested_gpus,requested_type,deadline,detail";

// Round-trip-exact double formatting: the replay must feed the engine the
// bit-identical values the live session used.
std::string FmtDouble(double v) {
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return oss.str();
}

ModelFamily ParseFamilyField(const std::string& s, int line_no) {
  for (ModelFamily f : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    if (s == FamilyName(f)) {
      return f;
    }
  }
  CRIUS_UNREACHABLE("session log line " + std::to_string(line_no) + ": unknown family '" + s +
                    "'");
}

bool ParseBoolField(const std::string& s, const char* what, int line_no) {
  if (s == "1" || s == "true") {
    return true;
  }
  if (s == "0" || s == "false") {
    return false;
  }
  CRIUS_UNREACHABLE("session log line " + std::to_string(line_no) + ": bad " +
                    std::string(what) + " '" + s + "'");
}

}  // namespace

std::string SerializeSessionMeta(const SessionMeta& meta) {
  std::ostringstream oss;
  oss << "cluster=" << meta.cluster_spec << ";scheduler=" << meta.scheduler
      << ";seed=" << meta.seed << ";search_depth=" << meta.search_depth
      << ";deadline_aware=" << (meta.deadline_aware ? 1 : 0)
      << ";incremental=" << (meta.incremental ? 1 : 0)
      << ";schedule_interval=" << FmtDouble(meta.schedule_interval)
      << ";restart_overhead=" << FmtDouble(meta.restart_overhead)
      << ";charge_profiling=" << (meta.charge_profiling ? 1 : 0)
      << ";reconfig=" << (meta.reconfig ? 1 : 0);
  return oss.str();
}

SessionMeta ParseSessionMeta(const std::string& detail, int line_no) {
  SessionMeta meta;
  size_t pos = 0;
  while (pos < detail.size()) {
    size_t end = detail.find(';', pos);
    if (end == std::string::npos) {
      end = detail.size();
    }
    const std::string pair = detail.substr(pos, end - pos);
    pos = end + 1;
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    CRIUS_CHECK_MSG(eq != std::string::npos, "session log line " << line_no
                                                                 << ": bad meta pair '" << pair
                                                                 << "'");
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "cluster") {
      meta.cluster_spec = value;
    } else if (key == "scheduler") {
      meta.scheduler = value;
    } else if (key == "seed") {
      meta.seed = static_cast<uint64_t>(csv::ParseInt(value, "seed", line_no, "session log"));
    } else if (key == "search_depth") {
      meta.search_depth =
          static_cast<int>(csv::ParseInt(value, "search_depth", line_no, "session log"));
    } else if (key == "deadline_aware") {
      meta.deadline_aware = ParseBoolField(value, "deadline_aware", line_no);
    } else if (key == "incremental") {
      meta.incremental = ParseBoolField(value, "incremental", line_no);
    } else if (key == "schedule_interval") {
      meta.schedule_interval = csv::ParseDouble(value, "schedule_interval", line_no, "session log");
    } else if (key == "restart_overhead") {
      meta.restart_overhead = csv::ParseDouble(value, "restart_overhead", line_no, "session log");
    } else if (key == "charge_profiling") {
      meta.charge_profiling = ParseBoolField(value, "charge_profiling", line_no);
    } else if (key == "reconfig") {
      meta.reconfig = ParseBoolField(value, "reconfig", line_no);
    } else {
      CRIUS_UNREACHABLE("session log line " + std::to_string(line_no) + ": unknown meta key '" +
                        key + "'");
    }
  }
  return meta;
}

SessionLog::SessionLog(const std::string& path, const SessionMeta& meta)
    : file_(path), out_(&file_) {
  CRIUS_CHECK_MSG(file_.is_open(), "cannot open session log " << path);
  WriteHeader(meta);
}

SessionLog::SessionLog(std::ostream& out, const SessionMeta& meta) : out_(&out) {
  WriteHeader(meta);
}

void SessionLog::WriteHeader(const SessionMeta& meta) {
  *out_ << kHeader << '\n';
  csv::WriteRow(*out_, {"0", "meta", "-1", "-1", "", "", "", "", "", "", "",
                        SerializeSessionMeta(meta)});
  out_->flush();
}

void SessionLog::AppendSubmit(double time, const TrainingJob& job) {
  std::string deadline;
  if (job.deadline.has_value()) {
    deadline = FmtDouble(*job.deadline);
  }
  csv::WriteRow(*out_, {FmtDouble(time), "submit", std::to_string(job.id), "-1",
                        FamilyName(job.spec.family), FmtDouble(job.spec.params_billion),
                        std::to_string(job.spec.global_batch), std::to_string(job.iterations),
                        std::to_string(job.requested_gpus), GpuName(job.requested_type),
                        deadline, ""});
  out_->flush();
}

void SessionLog::AppendCancel(double time, int64_t job_id) {
  csv::WriteRow(*out_, {FmtDouble(time), "cancel", std::to_string(job_id), "-1", "", "", "", "",
                        "", "", "", ""});
  out_->flush();
}

void SessionLog::AppendFailNode(double time, int node_id) {
  csv::WriteRow(*out_, {FmtDouble(time), "fail_node", "-1", std::to_string(node_id), "", "", "",
                        "", "", "", "", ""});
  out_->flush();
}

void SessionLog::AppendRecoverNode(double time, int node_id) {
  csv::WriteRow(*out_, {FmtDouble(time), "recover_node", "-1", std::to_string(node_id), "", "",
                        "", "", "", "", "", ""});
  out_->flush();
}

void SessionLog::Flush() { out_->flush(); }

Session ReadSessionLog(std::istream& in) {
  Session session;
  bool meta_seen = false;
  csv::Reader reader(in, "session log", "time,");
  while (reader.Next()) {
    reader.ExpectFields(12);
    const double time = reader.Double(0, "time");
    const std::string& kind = reader.Field(1);
    if (kind == "meta") {
      CRIUS_CHECK_MSG(!meta_seen,
                      "session log line " << reader.line_no() << ": duplicate meta row");
      session.meta = ParseSessionMeta(reader.Field(11), reader.line_no());
      meta_seen = true;
    } else if (kind == "submit") {
      TrainingJob job;
      job.id = reader.Int(2, "job_id");
      job.spec.family = ParseFamilyField(reader.Field(4), reader.line_no());
      job.spec.params_billion = reader.Double(5, "params_billion");
      job.spec.global_batch = reader.Int(6, "global_batch");
      job.iterations = reader.Int(7, "iterations");
      job.submit_time = time;
      job.requested_gpus = static_cast<int>(reader.Int(8, "requested_gpus"));
      job.requested_type = ParseGpuType(reader.Field(9));
      if (!reader.Field(10).empty()) {
        job.deadline = reader.Double(10, "deadline");
      }
      session.trace.push_back(job);
    } else if (kind == "cancel") {
      session.cancels.push_back(JobCancelEvent{time, reader.Int(2, "job_id")});
    } else if (kind == "fail_node" || kind == "recover_node") {
      FailureEvent e;
      e.time = time;
      e.kind = kind == "fail_node" ? FailureKind::kNodeFail : FailureKind::kNodeRecover;
      e.node_id = static_cast<int>(reader.Int(3, "node_id"));
      session.failures.push_back(e);
    } else {
      CRIUS_UNREACHABLE("session log line " + std::to_string(reader.line_no()) +
                        ": unknown kind '" + kind + "'");
    }
  }
  CRIUS_CHECK_MSG(meta_seen, "session log: missing meta row");
  return session;
}

Session ReadSessionLogFile(const std::string& path) {
  std::ifstream in(path);
  CRIUS_CHECK_MSG(in.is_open(), "cannot open session log " << path);
  return ReadSessionLog(in);
}

}  // namespace crius
