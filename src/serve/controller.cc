#include "src/serve/controller.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/shutdown.h"
#include "src/util/stats.h"
#include "src/util/trace.h"

namespace crius {

namespace {

const char* PhaseName(JobPhase phase) {
  switch (phase) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kFinished:
      return "finished";
    case JobPhase::kDropped:
      return "dropped";
  }
  return "unknown";
}

}  // namespace

Controller::Controller(const Cluster& cluster, SimConfig sim_config, Scheduler& scheduler,
                       PerformanceOracle& oracle, SessionLog* log, Config config)
    : config_(config),
      num_nodes_(static_cast<int>(cluster.nodes().size())),
      engine_(cluster, std::move(sim_config), scheduler, oracle),
      log_(log),
      queue_(config.queue) {
  CRIUS_CHECK_MSG(config_.tick_virtual_seconds > 0.0, "tick_virtual_seconds must be > 0");
  CRIUS_CHECK_MSG(config_.tick_wall_seconds >= 0.0, "tick_wall_seconds must be >= 0");
}

Controller::~Controller() {
  if (started_.load(std::memory_order_acquire) && thread_.joinable()) {
    // Last-resort stop so a crashed owner does not hang the process; normal
    // teardown goes through Shutdown() + Join().
    ServeCommand cmd;
    cmd.kind = ServeCommand::Kind::kShutdown;
    cmd.drain = false;
    queue_.TryPush(std::move(cmd));
    thread_.join();
  }
}

void Controller::Start() {
  CRIUS_CHECK_MSG(!started_.exchange(true), "Controller::Start called twice");
  thread_ = std::thread([this] { RunLoop(); });
}

void Controller::Join() {
  CRIUS_CHECK_MSG(started_.load(std::memory_order_acquire), "Controller was never started");
  if (thread_.joinable()) {
    thread_.join();
  }
}

Controller::SubmitResult Controller::Submit(TrainingJob job) {
  SubmitResult result;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kSubmit;
  cmd.job = job;
  if (auto reject = queue_.TryPush(std::move(cmd)); reject.has_value()) {
    result.reason = *reject;
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    JobStatus status;
    status.known = true;
    status.state = "accepted";
    statuses_[job.id] = status;
    ++stats_.accepted;
  }
  CRIUS_COUNTER_INC("serve.submits");
  result.ok = true;
  result.job_id = job.id;
  return result;
}

std::optional<RejectReason> Controller::Cancel(int64_t job_id) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (statuses_.count(job_id) == 0) {
      return RejectReason::kUnknownJob;
    }
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kCancel;
  cmd.job_id = job_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.cancels");
  }
  return reject;
}

std::optional<RejectReason> Controller::FailNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes_) {
    return RejectReason::kBadRequest;
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kFailNode;
  cmd.node_id = node_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.fail_nodes");
  }
  return reject;
}

std::optional<RejectReason> Controller::RecoverNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes_) {
    return RejectReason::kBadRequest;
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kRecoverNode;
  cmd.node_id = node_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.recover_nodes");
  }
  return reject;
}

std::optional<RejectReason> Controller::Shutdown(bool drain) {
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kShutdown;
  cmd.drain = drain;
  return queue_.TryPush(std::move(cmd));
}

Controller::JobStatus Controller::Query(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = statuses_.find(job_id);
  if (it == statuses_.end()) {
    return JobStatus{};
  }
  return it->second;
}

Controller::Stats Controller::GetStats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  Stats stats = stats_;
  stats.decisions = latencies_ms_.size();
  if (!latencies_ms_.empty()) {
    stats.latency_p50_ms = Percentile(latencies_ms_, 50.0);
    stats.latency_p95_ms = Percentile(latencies_ms_, 95.0);
    stats.latency_p99_ms = Percentile(latencies_ms_, 99.0);
  }
  return stats;
}

SimResult Controller::TakeResult() {
  CRIUS_CHECK_MSG(done(), "TakeResult before the controller loop exited");
  return engine_.Finish();
}

void Controller::ApplyCommand(const ServeCommand& cmd) {
  switch (cmd.kind) {
    case ServeCommand::Kind::kSubmit: {
      TrainingJob job = cmd.job;
      job.submit_time = virtual_now_;
      if (engine_.TryAddJob(job)) {
        if (log_ != nullptr) {
          log_->AppendSubmit(virtual_now_, job);
        }
        active_ids_.push_back(job.id);
      } else {
        // Fits no GPU type: never reaches the engine or the log (the batch
        // replay path aborts on infeasible jobs). The owner sees the verdict
        // via query.
        CRIUS_COUNTER_INC("serve.infeasible");
        std::lock_guard<std::mutex> lock(state_mu_);
        statuses_[job.id].state = "infeasible";
        ++stats_.infeasible;
      }
      break;
    }
    case ServeCommand::Kind::kCancel:
      engine_.InjectCancel(virtual_now_, cmd.job_id);
      if (log_ != nullptr) {
        log_->AppendCancel(virtual_now_, cmd.job_id);
      }
      break;
    case ServeCommand::Kind::kFailNode: {
      FailureEvent e;
      e.time = virtual_now_;
      e.kind = FailureKind::kNodeFail;
      e.node_id = cmd.node_id;
      engine_.InjectFailure(e);
      if (log_ != nullptr) {
        log_->AppendFailNode(virtual_now_, cmd.node_id);
      }
      break;
    }
    case ServeCommand::Kind::kRecoverNode: {
      FailureEvent e;
      e.time = virtual_now_;
      e.kind = FailureKind::kNodeRecover;
      e.node_id = cmd.node_id;
      engine_.InjectFailure(e);
      if (log_ != nullptr) {
        log_->AppendRecoverNode(virtual_now_, cmd.node_id);
      }
      break;
    }
    case ServeCommand::Kind::kShutdown:
      // Handled by the loop (needs to break out); nothing to apply.
      break;
  }
}

void Controller::RefreshSnapshot() {
  // Per-job statuses from the engine, and the queued-wait feedback for the
  // starvation guard. active_ids_ only holds jobs the engine accepted;
  // finished/dropped ones are retired from the scan (their status is final).
  double oldest_wait = 0.0;
  std::vector<std::pair<int64_t, JobStatus>> updates;
  updates.reserve(active_ids_.size());
  size_t kept = 0;
  for (int64_t id : active_ids_) {
    const JobState* state = engine_.FindJob(id);
    if (state == nullptr) {
      continue;
    }
    JobStatus status;
    status.known = true;
    status.state = PhaseName(state->phase);
    status.submit_time = state->job.submit_time;
    status.first_start = state->first_start;
    status.finish_time = state->finish_time;
    status.restarts = state->num_restarts;
    updates.emplace_back(id, status);
    const bool final_phase =
        state->phase == JobPhase::kFinished || state->phase == JobPhase::kDropped;
    if (!final_phase) {
      active_ids_[kept++] = id;
      if (state->phase == JobPhase::kQueued) {
        oldest_wait = std::max(oldest_wait, virtual_now_ - state->job.submit_time);
      }
    }
  }
  active_ids_.resize(kept);

  Stats stats;
  stats.virtual_now = virtual_now_;
  stats.live_jobs = engine_.LiveJobs();
  stats.running_jobs = engine_.RunningJobs();
  stats.queued_jobs = engine_.QueuedJobs();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (auto& [id, status] : updates) {
      statuses_[id] = std::move(status);
    }
    stats_.virtual_now = stats.virtual_now;
    stats_.live_jobs = stats.live_jobs;
    stats_.running_jobs = stats.running_jobs;
    stats_.queued_jobs = stats.queued_jobs;
    ++stats_.ticks;
  }
  queue_.UpdateClusterView(stats.queued_jobs, oldest_wait, false);
}

void Controller::RunLoop() {
  while (true) {
    if (ShutdownRequested()) {
      // Signal-initiated stop: flush what we have, do NOT drain -- the
      // session log stays valid but marks a truncated (non-replayable to the
      // end) session.
      interrupted_.store(true, std::memory_order_release);
      break;
    }
    CRIUS_TRACE_SPAN("serve.tick");
    CRIUS_COUNTER_INC("serve.ticks");
    std::vector<ServeCommand> cmds = queue_.Drain();
    virtual_now_ += config_.tick_virtual_seconds;
    bool shutdown = false;
    const auto applied_wall = std::chrono::steady_clock::now();
    for (const ServeCommand& cmd : cmds) {
      if (cmd.kind == ServeCommand::Kind::kShutdown) {
        shutdown = true;
        drain_on_shutdown_ = cmd.drain;
        continue;
      }
      ApplyCommand(cmd);
      const double latency_ms =
          std::chrono::duration<double, std::milli>(applied_wall - cmd.enqueue_wall).count();
      CRIUS_HISTOGRAM_RECORD("serve.decision_latency_ms", latency_ms);
      std::lock_guard<std::mutex> lock(state_mu_);
      latencies_ms_.push_back(latency_ms);
    }
    {
      CRIUS_TRACE_SPAN("serve.advance");
      engine_.AdvanceTo(virtual_now_);
    }
    RefreshSnapshot();
    if (shutdown) {
      if (drain_on_shutdown_) {
        CRIUS_TRACE_SPAN("serve.drain");
        engine_.Drain();
        // A signal during the drain leaves the session un-drained.
        interrupted_.store(ShutdownRequested(), std::memory_order_release);
        virtual_now_ = std::max(virtual_now_, engine_.now());
        RefreshSnapshot();
      }
      break;
    }
    if (config_.tick_wall_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(config_.tick_wall_seconds));
    }
  }
  if (log_ != nullptr) {
    log_->Flush();
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace crius
