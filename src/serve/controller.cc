#include "src/serve/controller.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/shutdown.h"
#include "src/util/stats.h"
#include "src/util/trace.h"

namespace crius {

namespace {

const char* PhaseName(JobPhase phase) {
  switch (phase) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kFinished:
      return "finished";
    case JobPhase::kDropped:
      return "dropped";
  }
  return "unknown";
}

}  // namespace

Controller::Controller(const Cluster& cluster, SimConfig sim_config, Scheduler& scheduler,
                       PerformanceOracle& oracle, SessionLog* log, Config config)
    : config_(config),
      num_nodes_(static_cast<int>(cluster.nodes().size())),
      engine_(cluster, std::move(sim_config), scheduler, oracle),
      log_(log),
      queue_(config.queue) {
  CRIUS_CHECK_MSG(config_.tick_virtual_seconds > 0.0, "tick_virtual_seconds must be > 0");
  CRIUS_CHECK_MSG(config_.tick_wall_seconds >= 0.0, "tick_wall_seconds must be >= 0");
  CRIUS_CHECK_MSG(config_.metrics_every_ticks > 0, "metrics_every_ticks must be > 0");
  if (!config_.metrics_csv.empty()) {
    metrics_csv_.emplace(config_.metrics_csv);
  }
}

Controller::~Controller() {
  if (started_.load(std::memory_order_acquire) && thread_.joinable()) {
    // Last-resort stop so a crashed owner does not hang the process; normal
    // teardown goes through Shutdown() + Join().
    ServeCommand cmd;
    cmd.kind = ServeCommand::Kind::kShutdown;
    cmd.drain = false;
    queue_.TryPush(std::move(cmd));
    thread_.join();
  }
}

void Controller::Start() {
  CRIUS_CHECK_MSG(!started_.exchange(true), "Controller::Start called twice");
  // Recorded synchronously, before the tick thread exists, so a `metrics`
  // request issued right after Start() never sees an empty registry.
  CRIUS_COUNTER_INC("serve.controller_starts");
  start_wall_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { RunLoop(); });
}

void Controller::Join() {
  CRIUS_CHECK_MSG(started_.load(std::memory_order_acquire), "Controller was never started");
  if (thread_.joinable()) {
    thread_.join();
  }
}

Controller::SubmitResult Controller::Submit(TrainingJob job) {
  SubmitResult result;
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kSubmit;
  cmd.job = job;
  if (auto reject = queue_.TryPush(std::move(cmd)); reject.has_value()) {
    result.reason = *reject;
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    JobStatus status;
    status.known = true;
    status.state = "accepted";
    statuses_[job.id] = status;
    ++stats_.accepted;
  }
  CRIUS_COUNTER_INC("serve.submits");
  result.ok = true;
  result.job_id = job.id;
  return result;
}

std::optional<RejectReason> Controller::Cancel(int64_t job_id) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (statuses_.count(job_id) == 0) {
      return RejectReason::kUnknownJob;
    }
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kCancel;
  cmd.job_id = job_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.cancels");
  }
  return reject;
}

std::optional<RejectReason> Controller::FailNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes_) {
    return RejectReason::kBadRequest;
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kFailNode;
  cmd.node_id = node_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.fail_nodes");
  }
  return reject;
}

std::optional<RejectReason> Controller::RecoverNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes_) {
    return RejectReason::kBadRequest;
  }
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kRecoverNode;
  cmd.node_id = node_id;
  auto reject = queue_.TryPush(std::move(cmd));
  if (!reject.has_value()) {
    CRIUS_COUNTER_INC("serve.recover_nodes");
  }
  return reject;
}

std::optional<RejectReason> Controller::Shutdown(bool drain) {
  ServeCommand cmd;
  cmd.kind = ServeCommand::Kind::kShutdown;
  cmd.drain = drain;
  return queue_.TryPush(std::move(cmd));
}

Controller::JobStatus Controller::Query(int64_t job_id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto it = statuses_.find(job_id);
  if (it == statuses_.end()) {
    return JobStatus{};
  }
  return it->second;
}

Controller::Stats Controller::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stats = stats_;
    stats.decisions = latencies_ms_.size();
    if (!latencies_ms_.empty()) {
      stats.latency_p50_ms = Percentile(latencies_ms_, 50.0);
      stats.latency_p95_ms = Percentile(latencies_ms_, 95.0);
      stats.latency_p99_ms = Percentile(latencies_ms_, 99.0);
    }
  }
  // Live values come from the queue and the metrics registry rather than
  // hand-maintained fields, so the stats verb and the metrics scrape can
  // never disagree.
  stats.queue_depth = static_cast<int>(queue_.size());
  if (started_.load(std::memory_order_acquire)) {
    stats.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_wall_).count();
  }
  const CounterRegistry& registry = CounterRegistry::Global();
  static constexpr RejectReason kReasons[] = {
      RejectReason::kQueueFull,      RejectReason::kClusterSaturated,
      RejectReason::kStarvationGuard, RejectReason::kShuttingDown,
      RejectReason::kInfeasible,      RejectReason::kUnknownJob,
      RejectReason::kBadRequest,
  };
  for (const RejectReason reason : kReasons) {
    const std::string name = RejectReasonName(reason);
    const int64_t count = registry.CounterValue(
        CanonicalMetricName("serve.ingress.rejected_by_reason", {{"reason", name}}));
    if (count > 0) {
      stats.rejected_by_reason.emplace_back(name, count);
    }
  }
  return stats;
}

SimResult Controller::TakeResult() {
  CRIUS_CHECK_MSG(done(), "TakeResult before the controller loop exited");
  return engine_.Finish();
}

void Controller::ApplyCommand(const ServeCommand& cmd) {
  switch (cmd.kind) {
    case ServeCommand::Kind::kSubmit: {
      TrainingJob job = cmd.job;
      job.submit_time = virtual_now_;
      if (engine_.TryAddJob(job)) {
        if (log_ != nullptr) {
          log_->AppendSubmit(virtual_now_, job);
        }
        active_ids_.push_back(job.id);
      } else {
        // Fits no GPU type: never reaches the engine or the log (the batch
        // replay path aborts on infeasible jobs). The owner sees the verdict
        // via query.
        CRIUS_COUNTER_INC("serve.infeasible");
        std::lock_guard<std::mutex> lock(state_mu_);
        statuses_[job.id].state = "infeasible";
        ++stats_.infeasible;
      }
      break;
    }
    case ServeCommand::Kind::kCancel:
      engine_.InjectCancel(virtual_now_, cmd.job_id);
      if (log_ != nullptr) {
        log_->AppendCancel(virtual_now_, cmd.job_id);
      }
      break;
    case ServeCommand::Kind::kFailNode: {
      FailureEvent e;
      e.time = virtual_now_;
      e.kind = FailureKind::kNodeFail;
      e.node_id = cmd.node_id;
      engine_.InjectFailure(e);
      if (log_ != nullptr) {
        log_->AppendFailNode(virtual_now_, cmd.node_id);
      }
      break;
    }
    case ServeCommand::Kind::kRecoverNode: {
      FailureEvent e;
      e.time = virtual_now_;
      e.kind = FailureKind::kNodeRecover;
      e.node_id = cmd.node_id;
      engine_.InjectFailure(e);
      if (log_ != nullptr) {
        log_->AppendRecoverNode(virtual_now_, cmd.node_id);
      }
      break;
    }
    case ServeCommand::Kind::kShutdown:
      // Handled by the loop (needs to break out); nothing to apply.
      break;
  }
}

void Controller::RefreshSnapshot() {
  // Per-job statuses from the engine, and the queued-wait feedback for the
  // starvation guard. active_ids_ only holds jobs the engine accepted;
  // finished/dropped ones are retired from the scan (their status is final).
  double oldest_wait = 0.0;
  std::vector<std::pair<int64_t, JobStatus>> updates;
  updates.reserve(active_ids_.size());
  size_t kept = 0;
  for (int64_t id : active_ids_) {
    const JobState* state = engine_.FindJob(id);
    if (state == nullptr) {
      continue;
    }
    JobStatus status;
    status.known = true;
    status.state = PhaseName(state->phase);
    status.submit_time = state->job.submit_time;
    status.first_start = state->first_start;
    status.finish_time = state->finish_time;
    status.restarts = state->num_restarts;
    updates.emplace_back(id, status);
    const bool final_phase =
        state->phase == JobPhase::kFinished || state->phase == JobPhase::kDropped;
    if (!final_phase) {
      active_ids_[kept++] = id;
      if (state->phase == JobPhase::kQueued) {
        oldest_wait = std::max(oldest_wait, virtual_now_ - state->job.submit_time);
      }
    }
  }
  active_ids_.resize(kept);

  Stats stats;
  stats.virtual_now = virtual_now_;
  stats.live_jobs = engine_.LiveJobs();
  stats.running_jobs = engine_.RunningJobs();
  stats.queued_jobs = engine_.QueuedJobs();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (auto& [id, status] : updates) {
      statuses_[id] = std::move(status);
    }
    stats_.virtual_now = stats.virtual_now;
    stats_.live_jobs = stats.live_jobs;
    stats_.running_jobs = stats.running_jobs;
    stats_.queued_jobs = stats.queued_jobs;
    ++stats_.ticks;
  }
  queue_.UpdateClusterView(stats.queued_jobs, oldest_wait, false);
}

void Controller::MaybeAppendMetricsCsv(bool force) {
  if (!metrics_csv_.has_value()) {
    return;
  }
  uint64_t ticks = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ticks = stats_.ticks;
  }
  if (force || ticks % static_cast<uint64_t>(config_.metrics_every_ticks) == 0) {
    metrics_csv_->Append(virtual_now_, CounterRegistry::Global().Snapshot());
  }
}

void Controller::RunLoop() {
  // Resolved once per loop; labeled entries bypass the static-entry macros.
  CounterRegistry& registry = CounterRegistry::Global();
  Histogram& drain_ms = registry.GetHistogram("serve.phase_ms", {{"phase", "drain"}});
  Histogram& apply_ms = registry.GetHistogram("serve.phase_ms", {{"phase", "apply"}});
  Histogram& schedule_ms = registry.GetHistogram("serve.phase_ms", {{"phase", "schedule"}});
  Histogram& log_ms = registry.GetHistogram("serve.phase_ms", {{"phase", "log"}});
  Histogram& round_ms = registry.GetHistogram("serve.round_ms");
  using Clock = std::chrono::steady_clock;
  const auto ms_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  while (true) {
    if (ShutdownRequested()) {
      // Signal-initiated stop: flush what we have, do NOT drain -- the
      // session log stays valid but marks a truncated (non-replayable to the
      // end) session.
      interrupted_.store(true, std::memory_order_release);
      break;
    }
    CRIUS_TRACE_SPAN("serve.tick");
    CRIUS_COUNTER_INC("serve.ticks");
    // Phase 1/4 "drain": pop the ingress queue.
    const auto t_round = Clock::now();
    std::vector<ServeCommand> cmds;
    {
      CRIUS_TRACE_SPAN("serve.phase.drain");
      cmds = queue_.Drain();
    }
    const auto t_drained = Clock::now();
    drain_ms.Record(ms_between(t_round, t_drained));
    virtual_now_ += config_.tick_virtual_seconds;
    bool shutdown = false;
    // Phase 2/4 "apply": stamp and feed drained commands to the engine.
    {
      CRIUS_TRACE_SPAN("serve.phase.apply");
      const auto applied_wall = t_drained;
      for (const ServeCommand& cmd : cmds) {
        if (cmd.kind == ServeCommand::Kind::kShutdown) {
          shutdown = true;
          drain_on_shutdown_ = cmd.drain;
          continue;
        }
        ApplyCommand(cmd);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(applied_wall - cmd.enqueue_wall).count();
        CRIUS_HISTOGRAM_RECORD("serve.decision_latency_ms", latency_ms);
        std::lock_guard<std::mutex> lock(state_mu_);
        latencies_ms_.push_back(latency_ms);
      }
    }
    const auto t_applied = Clock::now();
    apply_ms.Record(ms_between(t_drained, t_applied));
    // Phase 3/4 "schedule": advance the engine (scheduler rounds run here).
    {
      CRIUS_TRACE_SPAN("serve.advance");
      engine_.AdvanceTo(virtual_now_);
    }
    const auto t_scheduled = Clock::now();
    schedule_ms.Record(ms_between(t_applied, t_scheduled));
    // Phase 4/4 "log": snapshot refresh + periodic metrics row.
    {
      CRIUS_TRACE_SPAN("serve.phase.log");
      RefreshSnapshot();
      CRIUS_GAUGE_SET("serve.queue_depth", static_cast<double>(queue_.size()));
      CRIUS_GAUGE_SET("serve.virtual_now", virtual_now_);
      MaybeAppendMetricsCsv(false);
    }
    const auto t_logged = Clock::now();
    log_ms.Record(ms_between(t_scheduled, t_logged));
    // Round total excludes the inter-tick sleep, so
    // sum(serve.phase_ms{*}) == serve.round_ms up to timer granularity.
    round_ms.Record(ms_between(t_round, t_logged));
    if (shutdown) {
      if (drain_on_shutdown_) {
        CRIUS_TRACE_SPAN("serve.drain");
        engine_.Drain();
        // A signal during the drain leaves the session un-drained.
        interrupted_.store(ShutdownRequested(), std::memory_order_release);
        virtual_now_ = std::max(virtual_now_, engine_.now());
        RefreshSnapshot();
      }
      break;
    }
    if (config_.tick_wall_seconds > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(config_.tick_wall_seconds));
    }
  }
  MaybeAppendMetricsCsv(true);
  if (log_ != nullptr) {
    log_->Flush();
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace crius
