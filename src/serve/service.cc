#include "src/serve/service.h"

#include <optional>

#include "src/serve/protocol.h"
#include "src/util/counters.h"
#include "src/util/metrics_export.h"

namespace crius {
namespace serve {

namespace {

std::string FromReject(std::optional<RejectReason> reject, JsonObject ok_extra = {}) {
  if (reject.has_value()) {
    return ErrorResponse(*reject);
  }
  return OkResponse(std::move(ok_extra));
}

std::string HandleSubmit(Controller& controller, const JsonObject& request) {
  TrainingJob job;
  std::string error;
  if (!ParseSubmitJob(request, &job, &error)) {
    return ErrorResponse(RejectReason::kBadRequest, error);
  }
  const Controller::SubmitResult result = controller.Submit(job);
  if (!result.ok) {
    return ErrorResponse(result.reason);
  }
  JsonObject extra;
  extra["job_id"] = JsonValue::Number(static_cast<double>(result.job_id));
  extra["status"] = JsonValue::String("queued");
  return OkResponse(std::move(extra));
}

std::string HandleQuery(Controller& controller, const JsonObject& request) {
  const int64_t job_id = static_cast<int64_t>(GetNumber(request, "job_id", -1.0));
  const Controller::JobStatus status = controller.Query(job_id);
  if (!status.known) {
    return ErrorResponse(RejectReason::kUnknownJob);
  }
  JsonObject extra;
  extra["job_id"] = JsonValue::Number(static_cast<double>(job_id));
  extra["status"] = JsonValue::String(status.state);
  extra["submit_time"] = JsonValue::Number(status.submit_time);
  extra["first_start"] = JsonValue::Number(status.first_start);
  extra["finish_time"] = JsonValue::Number(status.finish_time);
  extra["restarts"] = JsonValue::Number(status.restarts);
  return OkResponse(std::move(extra));
}

std::string HandleStats(Controller& controller) {
  const Controller::Stats stats = controller.GetStats();
  JsonObject extra;
  extra["virtual_now"] = JsonValue::Number(stats.virtual_now);
  extra["ticks"] = JsonValue::Number(static_cast<double>(stats.ticks));
  extra["live_jobs"] = JsonValue::Number(stats.live_jobs);
  extra["running_jobs"] = JsonValue::Number(stats.running_jobs);
  extra["queued_jobs"] = JsonValue::Number(stats.queued_jobs);
  extra["accepted"] = JsonValue::Number(static_cast<double>(stats.accepted));
  extra["infeasible"] = JsonValue::Number(static_cast<double>(stats.infeasible));
  extra["decisions"] = JsonValue::Number(static_cast<double>(stats.decisions));
  extra["latency_p50_ms"] = JsonValue::Number(stats.latency_p50_ms);
  extra["latency_p95_ms"] = JsonValue::Number(stats.latency_p95_ms);
  extra["latency_p99_ms"] = JsonValue::Number(stats.latency_p99_ms);
  // Registry-sourced enrichment: live ingress backlog, wall uptime, and one
  // rejected_<reason> field per admission-reject reason seen so far.
  extra["queue_depth"] = JsonValue::Number(stats.queue_depth);
  extra["uptime_seconds"] = JsonValue::Number(stats.uptime_seconds);
  for (const auto& [reason, count] : stats.rejected_by_reason) {
    extra["rejected_" + reason] = JsonValue::Number(static_cast<double>(count));
  }
  return OkResponse(std::move(extra));
}

std::string HandleMetrics(const JsonObject& request) {
  const std::string format = GetString(request, "format", "json");
  if (format != "json" && format != "prometheus") {
    return ErrorResponse(RejectReason::kBadRequest, "metrics format must be json|prometheus");
  }
  const MetricsSnapshot snapshot = CounterRegistry::Global().Snapshot();
  JsonObject extra;
  extra["format"] = JsonValue::String(format);
  // The protocol is deliberately flat (one line, no nesting), so the nested
  // snapshot rides inside a string field; consumers parse the line, then
  // parse the "metrics" payload (double-parse).
  extra["metrics"] = JsonValue::String(format == "json" ? MetricsToJson(snapshot)
                                                        : MetricsToPrometheus(snapshot));
  return OkResponse(std::move(extra));
}

}  // namespace

std::string HandleRequest(Controller& controller, const std::string& line) {
  JsonObject request;
  std::string error;
  if (!ParseJsonObject(line, &request, &error)) {
    return ErrorResponse(RejectReason::kBadRequest, error);
  }
  const std::string cmd = GetString(request, "cmd");
  if (cmd == "submit") {
    return HandleSubmit(controller, request);
  }
  if (cmd == "cancel") {
    if (!Has(request, "job_id")) {
      return ErrorResponse(RejectReason::kBadRequest, "cancel needs job_id");
    }
    return FromReject(
        controller.Cancel(static_cast<int64_t>(GetNumber(request, "job_id", -1.0))));
  }
  if (cmd == "fail-node") {
    if (!Has(request, "node_id")) {
      return ErrorResponse(RejectReason::kBadRequest, "fail-node needs node_id");
    }
    return FromReject(
        controller.FailNode(static_cast<int>(GetNumber(request, "node_id", -1.0))));
  }
  if (cmd == "recover-node") {
    if (!Has(request, "node_id")) {
      return ErrorResponse(RejectReason::kBadRequest, "recover-node needs node_id");
    }
    return FromReject(
        controller.RecoverNode(static_cast<int>(GetNumber(request, "node_id", -1.0))));
  }
  if (cmd == "query") {
    return HandleQuery(controller, request);
  }
  if (cmd == "stats") {
    return HandleStats(controller);
  }
  if (cmd == "metrics") {
    return HandleMetrics(request);
  }
  if (cmd == "shutdown") {
    const std::string mode = GetString(request, "mode", "drain");
    if (mode != "drain" && mode != "now") {
      return ErrorResponse(RejectReason::kBadRequest, "shutdown mode must be drain|now");
    }
    return FromReject(controller.Shutdown(mode == "drain"));
  }
  return ErrorResponse(RejectReason::kBadRequest, "unknown cmd '" + cmd + "'");
}

Server::Handler MakeHandler(Controller& controller) {
  return [&controller](const std::string& line) { return HandleRequest(controller, line); };
}

}  // namespace serve
}  // namespace crius
