#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crius {
namespace serve {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& socket_path, std::string* error) {
  Close();
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    *error = "socket path too long: " + socket_path;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect(" + socket_path + "): " + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::SendLine(const std::string& line, std::string* error) {
  const std::string payload = line + "\n";
  size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd_, payload.data() + written, payload.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      *error = std::string("write(): ") + (n < 0 ? std::strerror(errno) : "connection closed");
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool Client::ReadLine(std::string* line, std::string* error) {
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      return true;
    }
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    *error = std::string("read(): ") + (n < 0 ? std::strerror(errno) : "connection closed");
    return false;
  }
}

bool Client::Call(const std::string& request, std::string* response, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  return SendLine(request, error) && ReadLine(response, error);
}

bool Client::CallJson(const JsonObject& request, JsonObject* response, std::string* error) {
  std::string line;
  if (!Call(Serialize(request), &line, error)) {
    return false;
  }
  if (!ParseJsonObject(line, response, error)) {
    *error = "bad response '" + line + "': " + *error;
    return false;
  }
  return true;
}

bool Client::Submit(const TrainingJob& job, JsonObject* response, std::string* error) {
  return CallJson(SubmitRequest(job), response, error);
}

bool Client::Cancel(int64_t job_id, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("cancel");
  request["job_id"] = JsonValue::Number(static_cast<double>(job_id));
  return CallJson(request, response, error);
}

bool Client::FailNode(int node_id, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("fail-node");
  request["node_id"] = JsonValue::Number(node_id);
  return CallJson(request, response, error);
}

bool Client::RecoverNode(int node_id, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("recover-node");
  request["node_id"] = JsonValue::Number(node_id);
  return CallJson(request, response, error);
}

bool Client::Query(int64_t job_id, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("query");
  request["job_id"] = JsonValue::Number(static_cast<double>(job_id));
  return CallJson(request, response, error);
}

bool Client::Stats(JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("stats");
  return CallJson(request, response, error);
}

bool Client::Metrics(const std::string& format, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("metrics");
  request["format"] = JsonValue::String(format);
  return CallJson(request, response, error);
}

bool Client::Shutdown(bool drain, JsonObject* response, std::string* error) {
  JsonObject request;
  request["cmd"] = JsonValue::String("shutdown");
  request["mode"] = JsonValue::String(drain ? "drain" : "now");
  return CallJson(request, response, error);
}

}  // namespace serve
}  // namespace crius
