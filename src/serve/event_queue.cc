#include "src/serve/event_queue.h"

#include <string>
#include <utility>

#include "src/util/counters.h"

namespace crius {

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kClusterSaturated:
      return "cluster_saturated";
    case RejectReason::kStarvationGuard:
      return "starvation_guard";
    case RejectReason::kShuttingDown:
      return "shutting_down";
    case RejectReason::kInfeasible:
      return "infeasible";
    case RejectReason::kUnknownJob:
      return "unknown_job";
    case RejectReason::kBadRequest:
      return "bad_request";
  }
  return "unknown";
}

EventQueue::EventQueue(EventQueueConfig config) : config_(config) {}

std::optional<RejectReason> EventQueue::TryPush(ServeCommand cmd) {
  std::optional<RejectReason> reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && cmd.kind != ServeCommand::Kind::kShutdown) {
      reject = RejectReason::kShuttingDown;
    } else if (queue_.size() >= config_.capacity && cmd.kind != ServeCommand::Kind::kShutdown) {
      reject = RejectReason::kQueueFull;
    } else if (cmd.kind == ServeCommand::Kind::kSubmit) {
      if (config_.max_pending_jobs > 0 && queued_jobs_ >= config_.max_pending_jobs) {
        reject = RejectReason::kClusterSaturated;
      } else if (config_.starvation_wait > 0.0 && oldest_wait_ > config_.starvation_wait) {
        reject = RejectReason::kStarvationGuard;
      }
    }
    if (!reject.has_value()) {
      cmd.seq = next_seq_++;
      cmd.enqueue_wall = std::chrono::steady_clock::now();
      if (cmd.kind == ServeCommand::Kind::kShutdown) {
        shutting_down_ = true;
      }
      queue_.push_back(std::move(cmd));
    }
  }
  if (reject.has_value()) {
    CRIUS_COUNTER_INC("serve.ingress.rejected");
    // Per-reason labeled counter: the label varies at runtime, so this
    // bypasses the static-entry macro and pays the registry lookup.
    CounterRegistry::Global()
        .GetCounter("serve.ingress.rejected_by_reason",
                    MetricLabels{{"reason", RejectReasonName(*reject)}})
        .Add(1);
  } else {
    CRIUS_COUNTER_INC("serve.ingress.accepted");
  }
  return reject;
}

std::vector<ServeCommand> EventQueue::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeCommand> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void EventQueue::UpdateClusterView(int queued_jobs, double oldest_wait, bool shutting_down) {
  std::lock_guard<std::mutex> lock(mu_);
  queued_jobs_ = queued_jobs;
  oldest_wait_ = oldest_wait;
  // Shutdown latches: once requested it is never un-requested.
  shutting_down_ = shutting_down_ || shutting_down;
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace crius
