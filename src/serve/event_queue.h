// Bounded, thread-safe command queue between the ingress threads and the
// controller's round loop, with admission control.
//
// Ingress (socket handler threads, bench client threads) calls TryPush; the
// controller drains the queue once per tick and feeds back a view of the
// cluster (UpdateClusterView) that the admission checks read. All admission
// policy lives here so it is unit-testable without sockets or a controller:
//
//   * kQueueFull         -- the command queue itself is at capacity
//                           (backpressure: the controller is not keeping up).
//   * kClusterSaturated  -- too many jobs already waiting for GPUs
//                           (max_pending_jobs); admitting more would only
//                           grow the queue, so the submitter is told to back
//                           off with a machine-readable reason instead.
//   * kStarvationGuard   -- the oldest queued job has waited longer than
//                           starvation_wait (virtual seconds). New work is
//                           rejected until the backlog drains, bounding how
//                           long an admitted job can starve behind a firehose
//                           of fresh submissions.
//   * kShuttingDown      -- shutdown was requested; only the shutdown command
//                           itself is still accepted.
//
// Only submissions are subject to the cluster-level checks; cancels and
// health commands are operator actions that shrink load and are accepted
// while there is queue space.

#ifndef SRC_SERVE_EVENT_QUEUE_H_
#define SRC_SERVE_EVENT_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/model/job.h"

namespace crius {

enum class RejectReason : uint8_t {
  kNone = 0,
  kQueueFull,
  kClusterSaturated,
  kStarvationGuard,
  kShuttingDown,
  kInfeasible,   // job fits no GPU type (reported via query, see controller)
  kUnknownJob,   // cancel/query for an id this session never accepted
  kBadRequest,   // malformed or out-of-range request fields
};

// Stable machine-readable token ("queue_full", ...) used in protocol error
// responses and counters.
const char* RejectReasonName(RejectReason reason);

// One external command, as queued for the controller.
struct ServeCommand {
  enum class Kind : uint8_t { kSubmit, kCancel, kFailNode, kRecoverNode, kShutdown };

  Kind kind = Kind::kSubmit;
  TrainingJob job;    // kSubmit (id already assigned by the controller)
  int64_t job_id = -1;  // kCancel
  int node_id = -1;     // kFailNode / kRecoverNode
  bool drain = true;    // kShutdown: drain the system before exiting?

  // Assigned by TryPush: arrival order and ingress wall time (decision
  // latency = applied-at-tick wall time minus this).
  uint64_t seq = 0;
  std::chrono::steady_clock::time_point enqueue_wall{};
};

struct EventQueueConfig {
  // Command-queue capacity (backpressure bound).
  size_t capacity = 256;
  // Reject submissions while this many jobs already wait for GPUs; 0 = no
  // limit.
  int max_pending_jobs = 0;
  // Reject submissions while the oldest queued job has waited longer than
  // this many virtual seconds; 0 = disabled.
  double starvation_wait = 0.0;
};

class EventQueue {
 public:
  explicit EventQueue(EventQueueConfig config);

  // Admission-checks and enqueues `cmd`. Returns std::nullopt on success
  // (cmd.seq / cmd.enqueue_wall were stamped), or the rejection reason.
  std::optional<RejectReason> TryPush(ServeCommand cmd);

  // Pops every queued command, in arrival order. Controller-thread only by
  // convention (safe from any thread).
  std::vector<ServeCommand> Drain();

  // Controller feedback after each tick: jobs currently waiting for GPUs, the
  // oldest such job's wait in virtual seconds, and whether shutdown has been
  // requested.
  void UpdateClusterView(int queued_jobs, double oldest_wait, bool shutting_down);

  size_t size() const;
  const EventQueueConfig& config() const { return config_; }

 private:
  const EventQueueConfig config_;
  mutable std::mutex mu_;
  std::deque<ServeCommand> queue_;
  uint64_t next_seq_ = 1;
  int queued_jobs_ = 0;
  double oldest_wait_ = 0.0;
  bool shutting_down_ = false;
};

}  // namespace crius

#endif  // SRC_SERVE_EVENT_QUEUE_H_
