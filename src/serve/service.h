// Glue between the line protocol and the Controller: one handler function
// per daemon, dispatching parsed commands to the controller's thread-safe
// ingress and snapshot surfaces. Shared by crius_serve (over the socket
// Server), the service tests, and the in-process ext_serve bench.

#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <string>

#include "src/serve/controller.h"
#include "src/serve/server.h"

namespace crius {
namespace serve {

// Handles one request line against `controller`; returns the response line.
// Thread-safe (the controller surfaces it touches are).
std::string HandleRequest(Controller& controller, const std::string& line);

// The Server handler closure for `controller` (must outlive the server).
Server::Handler MakeHandler(Controller& controller);

}  // namespace serve
}  // namespace crius

#endif  // SRC_SERVE_SERVICE_H_
