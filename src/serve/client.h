// Client library for the crius_serve line protocol.
//
// A blocking Unix-domain-socket connection plus typed wrappers for the
// protocol commands. Used by the crius_client CLI, the ext_serve load
// generator, and the service tests; the raw Call() surface is enough for
// scripted sessions, the typed helpers parse the interesting response fields.

#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/model/job.h"
#include "src/serve/protocol.h"

namespace crius {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to the daemon's socket. Returns false with a message on failure.
  bool Connect(const std::string& socket_path, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One request/response round trip: sends `request` + '\n', blocks for the
  // response line. Returns false on transport errors (daemon gone).
  bool Call(const std::string& request, std::string* response, std::string* error);

  // As Call, but serializes/parses the protocol's JSON objects.
  bool CallJson(const JsonObject& request, JsonObject* response, std::string* error);

  // --- Typed commands --------------------------------------------------------
  // Each returns false on transport errors; protocol-level rejections come
  // back through *response ("ok":false plus "reason").
  bool Submit(const TrainingJob& job, JsonObject* response, std::string* error);
  bool Cancel(int64_t job_id, JsonObject* response, std::string* error);
  bool FailNode(int node_id, JsonObject* response, std::string* error);
  bool RecoverNode(int node_id, JsonObject* response, std::string* error);
  bool Query(int64_t job_id, JsonObject* response, std::string* error);
  bool Stats(JsonObject* response, std::string* error);
  // `format` is "json" or "prometheus"; the registry snapshot comes back in
  // the response's "metrics" string field (see protocol.h).
  bool Metrics(const std::string& format, JsonObject* response, std::string* error);
  bool Shutdown(bool drain, JsonObject* response, std::string* error);

 private:
  bool SendLine(const std::string& line, std::string* error);
  bool ReadLine(std::string* line, std::string* error);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace crius

#endif  // SRC_SERVE_CLIENT_H_
