#include "src/sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/core/cell.h"
#include "src/parallel/perf_model.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/shutdown.h"
#include "src/util/trace.h"

namespace crius {

namespace {

constexpr double kEps = 1e-6;

const char* CounterNameFor(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kStart:
      return "sim.starts";
    case SimEvent::Kind::kRestart:
      return "sim.restarts";
    case SimEvent::Kind::kMigrate:
      return "sim.migrations";
    case SimEvent::Kind::kPreempt:
      return "sim.preempts";
    case SimEvent::Kind::kFinish:
      return "sim.finishes";
    case SimEvent::Kind::kDrop:
      return "sim.drops";
    case SimEvent::Kind::kCancel:
      return "sim.cancels";
    case SimEvent::Kind::kFailureKill:
      return "sim.failure_kills";
    case SimEvent::Kind::kNodeFail:
      return "sim.node_fails";
    case SimEvent::Kind::kNodeRecover:
      return "sim.node_recovers";
    case SimEvent::Kind::kStragglerStart:
      return "sim.straggler_starts";
    case SimEvent::Kind::kStragglerEnd:
      return "sim.straggler_ends";
  }
  return "sim.events";
}

bool CancelBefore(const JobCancelEvent& a, const JobCancelEvent& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.job_id < b.job_id;
}

}  // namespace

SimEngine::SimEngine(const Cluster& cluster_template, SimConfig config, Scheduler& scheduler,
                     PerformanceOracle& oracle)
    : cluster_template_(cluster_template),
      config_(std::move(config)),
      scheduler_(scheduler),
      oracle_(oracle),
      cluster_(cluster_template_) {
  SortFailureSchedule(config_.failures);
  std::stable_sort(config_.cancels.begin(), config_.cancels.end(), CancelBefore);
  result_.scheduler = scheduler_.name();
  if (config_.reconfig.enabled) {
    // Sync the shared cost legs so a migration is never priced differently
    // from the plain restart the engine would charge for the same move.
    ReconfigConfig rc = config_.reconfig;
    rc.cost.restart_overhead = config_.restart_overhead;
    rc.cost.checkpoint_bandwidth = config_.checkpoint_bandwidth;
    reconfig_ = std::make_unique<ReconfigPolicy>(&oracle_, rc, config_.checkpoint,
                                                 config_.node_mtbf);
  }
}

void SimEngine::AddJob(const TrainingJob& job, double profiling_delay,
                       double reference_throughput) {
  CRIUS_CHECK_MSG(job_index_.find(job.id) == job_index_.end(),
                  "duplicate job id " << job.id);
  SimJob sj;
  sj.state.job = job;
  sj.state.phase = JobPhase::kQueued;
  if (config_.charge_profiling) {
    CRIUS_HISTOGRAM_RECORD("sim.profile_delay_s", profiling_delay);
  }
  sj.schedulable_at = job.submit_time + profiling_delay;
  sj.reference_throughput = reference_throughput;
  CRIUS_CHECK_MSG(sj.reference_throughput > 0.0,
                  "trace job " << job.id << " infeasible everywhere");
  job_index_[job.id] = jobs_.size();
  jobs_.push_back(std::move(sj));
  ++live_;
}

bool SimEngine::TryAddJob(const TrainingJob& job) {
  if (job_index_.find(job.id) != job_index_.end()) {
    return false;
  }
  // Price admission against the pristine template: the batch prepass runs
  // before any failure mutates the cluster, and a replayed session must
  // derive the same schedulable_at and reference throughput.
  const double reference = ReferenceThroughput(oracle_, cluster_template_, job);
  if (reference <= 0.0) {
    return false;
  }
  const double delay =
      config_.charge_profiling ? scheduler_.ProfilingDelay(job, cluster_template_) : 0.0;
  AddJob(job, delay, reference);
  return true;
}

void SimEngine::InjectFailure(const FailureEvent& event) {
  CRIUS_CHECK_MSG(event.time + kEps >= now_,
                  "failure injected in the past: t=" << event.time << " now=" << now_);
  // Sorted insert among the not-yet-applied tail, using SortFailureSchedule's
  // comparator, so same-tick live commands apply in the replay's order.
  auto before = [](const FailureEvent& a, const FailureEvent& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.node_id != b.node_id) {
      return a.node_id < b.node_id;
    }
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  };
  auto it = std::upper_bound(config_.failures.begin() + static_cast<ptrdiff_t>(next_failure_),
                             config_.failures.end(), event, before);
  config_.failures.insert(it, event);
}

void SimEngine::InjectCancel(double time, int64_t job_id) {
  CRIUS_CHECK_MSG(time + kEps >= now_,
                  "cancel injected in the past: t=" << time << " now=" << now_);
  const JobCancelEvent event{time, job_id};
  auto it = std::upper_bound(config_.cancels.begin() + static_cast<ptrdiff_t>(next_cancel_),
                             config_.cancels.end(), event, CancelBefore);
  config_.cancels.insert(it, event);
}

double SimEngine::NextEventTime() const {
  double next_completion = std::numeric_limits<double>::infinity();
  for (const SimJob& sj : jobs_) {
    next_completion = std::min(next_completion, CompletionTime(sj, now_));
  }
  double t_next = std::min(next_round_, next_completion);
  if (next_failure_ < config_.failures.size()) {
    t_next = std::min(t_next, config_.failures[next_failure_].time);
  }
  if (next_cancel_ < config_.cancels.size()) {
    t_next = std::min(t_next, config_.cancels[next_cancel_].time);
  }
  return t_next;
}

void SimEngine::AdvanceJob(SimJob& sj, double t0, double t1) const {
  if (sj.state.phase != JobPhase::kRunning) {
    return;
  }
  const double from = std::max(t0, sj.state.blocked_until);
  if (from >= t1 || sj.state.iter_time <= 0.0) {
    return;
  }
  sj.state.iters_done += (t1 - from) / sj.state.iter_time;
}

double SimEngine::CompletionTime(const SimJob& sj, double at) const {
  if (sj.state.phase != JobPhase::kRunning || sj.state.iter_time <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double from = std::max(at, sj.state.blocked_until);
  return from + sj.state.remaining_iters() * sj.state.iter_time;
}

void SimEngine::Record(SimJob& sj, double time, SimEvent::Kind kind, std::string placement) {
  CounterRegistry::Global().GetCounter(CounterNameFor(kind)).Add(1);
  sj.last_event = time;
  if (config_.record_events) {
    result_.events.push_back(SimEvent{time, kind, sj.state.job.id, std::move(placement)});
  }
}

// Cluster-health events carry the node id in the job_id field.
void SimEngine::RecordCluster(double time, SimEvent::Kind kind, int node_id,
                              std::string detail) {
  CounterRegistry::Global().GetCounter(CounterNameFor(kind)).Add(1);
  if (config_.record_events) {
    result_.events.push_back(SimEvent{time, kind, node_id, std::move(detail)});
  }
}

// Closes the GPU-second ledger for a job's current allocation segment at
// time `t`. Every iteration gained in the segment survived, valued at the
// plan's base rate; the rest of the hold time (restart stall, checkpoint
// writes, straggler stretch) is overhead.
void SimEngine::SettleSegment(SimJob& sj, double t) {
  const double held = (t - sj.grant_time) * static_cast<double>(sj.state.ngpus);
  result_.total_gpu_seconds += held;
  const double gained = sj.state.iters_done - sj.segment_start_iters;
  result_.useful_gpu_seconds +=
      gained * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
}

// Same, but a hardware failure ends the segment: progress since the last
// completed checkpoint is destroyed (all of it when checkpointing is off)
// and rolls iters_done back, landing in the lost-work ledger.
void SimEngine::SettleSegmentFailed(SimJob& sj, double t) {
  const double held = (t - sj.grant_time) * static_cast<double>(sj.state.ngpus);
  result_.total_gpu_seconds += held;
  const double gained = sj.state.iters_done - sj.segment_start_iters;
  double preserved = 0.0;
  if (gained > 0.0 && sj.state.iter_time > 0.0) {
    // Checkpoints complete every ckpt_interval seconds of wall progress.
    const double progress_seconds = gained * sj.state.iter_time;
    preserved = PreservedProgress(sj.ckpt_interval, progress_seconds) / sj.state.iter_time;
  }
  const double lost = gained - preserved;
  sj.state.iters_done = sj.segment_start_iters + preserved;
  result_.useful_gpu_seconds +=
      preserved * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
  result_.lost_gpu_seconds +=
      lost * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
  CRIUS_HISTOGRAM_RECORD("sim.lost_iters_per_kill", lost);
}

// Kills a running job whose hardware failed: rolls progress back to the last
// checkpoint, releases the grant, and requeues it for the recovery round.
void SimEngine::KillJob(SimJob& sj, double at) {
  SettleSegmentFailed(sj, at);
  cluster_.Release(sj.alloc);
  sj.alloc = Allocation{};
  sj.state.phase = JobPhase::kQueued;
  sj.state.ngpus = 0;
  sj.state.nstages = 0;
  sj.state.iter_time = 0.0;
  sj.failure_restart_pending = true;
  sj.killed_at = at;
  ++result_.failure_kills;
  Record(sj, at, SimEvent::Kind::kFailureKill);
  round_events_.push_back(RoundEvent::JobPhaseChange(sj.state.job.id));
}

// Re-derives the realized iteration time of every running job touching
// `node_id` after its straggler factor changed.
void SimEngine::RefreshSlowdowns(int node_id) {
  for (SimJob& sj : jobs_) {
    if (sj.state.phase != JobPhase::kRunning) {
      continue;
    }
    bool touches = false;
    for (const auto& [id, count] : sj.alloc.node_gpus) {
      (void)count;
      touches = touches || id == node_id;
    }
    if (touches) {
      sj.state.iter_time = DegradedIterTime(sj.base_iter_time * sj.ckpt_factor,
                                            cluster_.MaxSlowdown(sj.alloc));
    }
  }
}

// Applies one cluster-health event at time `at`. Returns true when the
// change warrants an immediate scheduling round.
bool SimEngine::ApplyFault(const FailureEvent& e, double at) {
  const NodeInfo& node = cluster_.nodes()[e.node_id];
  switch (e.kind) {
    case FailureKind::kNodeFail:
    case FailureKind::kGpuFail: {
      const int usable_on_node = node.total_gpus - node.failed_gpus;
      const int want = std::min(
          e.kind == FailureKind::kGpuFail ? std::max(1, e.gpus) : usable_on_node,
          usable_on_node);
      if (want <= 0) {
        return false;  // node already fully failed
      }
      // Allocated devices cannot fail in place: any job holding GPUs on the
      // node aborts (NCCL-style collective failure), freeing them. Lowest
      // job id first for determinism.
      while (cluster_.nodes()[e.node_id].free_gpus < want) {
        SimJob* victim = nullptr;
        for (SimJob& sj : jobs_) {
          if (sj.state.phase != JobPhase::kRunning) {
            continue;
          }
          for (const auto& [id, count] : sj.alloc.node_gpus) {
            (void)count;
            if (id == e.node_id &&
                (victim == nullptr || sj.state.job.id < victim->state.job.id)) {
              victim = &sj;
            }
          }
        }
        if (victim == nullptr) {
          break;  // nothing left to kill; clamp to what is free
        }
        KillJob(*victim, at);
      }
      const int failed = cluster_.MarkFailed(e.node_id, want);
      ++result_.failure_events;
      RecordCluster(at, SimEvent::Kind::kNodeFail, e.node_id,
                    GpuName(node.type) + "x" + std::to_string(failed));
      round_events_.push_back(RoundEvent::NodeFail(e.node_id, node.type));
      return true;
    }
    case FailureKind::kNodeRecover:
    case FailureKind::kGpuRecover: {
      const int recovered = cluster_.MarkRecovered(
          e.node_id, e.kind == FailureKind::kGpuRecover ? std::max(1, e.gpus) : 0);
      if (recovered == 0) {
        return false;
      }
      RecordCluster(at, SimEvent::Kind::kNodeRecover, e.node_id,
                    GpuName(node.type) + "x" + std::to_string(recovered));
      round_events_.push_back(RoundEvent::NodeRecover(e.node_id, node.type));
      return true;
    }
    case FailureKind::kStragglerStart: {
      cluster_.SetNodeSlowdown(e.node_id, std::max(1.0, e.slowdown));
      RefreshSlowdowns(e.node_id);
      std::ostringstream factor;
      factor << "x" << std::max(1.0, e.slowdown);
      RecordCluster(at, SimEvent::Kind::kStragglerStart, e.node_id, factor.str());
      round_events_.push_back(
          RoundEvent::SlowdownChange(e.node_id, node.type, std::max(1.0, e.slowdown)));
      return true;
    }
    case FailureKind::kStragglerEnd: {
      cluster_.SetNodeSlowdown(e.node_id, 1.0);
      RefreshSlowdowns(e.node_id);
      RecordCluster(at, SimEvent::Kind::kStragglerEnd, e.node_id, "");
      round_events_.push_back(RoundEvent::SlowdownChange(e.node_id, node.type, 1.0));
      return true;
    }
  }
  return false;
}

// Applies one owner-initiated withdrawal. Cancels of unknown or already
// finished/dropped jobs are ignored (a replayed session log may carry them
// verbatim). Returns true when the cancel freed GPUs, warranting an immediate
// scheduling round.
bool SimEngine::ApplyCancel(const JobCancelEvent& e, double at) {
  const auto it = job_index_.find(e.job_id);
  if (it == job_index_.end()) {
    return false;
  }
  SimJob& sj = jobs_[it->second];
  if (sj.state.phase != JobPhase::kQueued && sj.state.phase != JobPhase::kRunning) {
    return false;
  }
  const bool was_running = sj.state.phase == JobPhase::kRunning;
  if (was_running) {
    SettleSegment(sj, at);
    cluster_.Release(sj.alloc);
    sj.alloc = Allocation{};
    sj.state.ngpus = 0;
    sj.state.nstages = 0;
    sj.state.iter_time = 0.0;
  }
  sj.state.phase = JobPhase::kDropped;
  Record(sj, at, SimEvent::Kind::kCancel);
  if (sj.announced) {
    // The scheduler only hears about jobs it has seen arrive; a job cancelled
    // inside its profiling window just vanishes.
    round_events_.push_back(RoundEvent::JobDrop(sj.state.job.id));
  }
  return was_running;
}

// Applies one scheduling decision at time `at`.
void SimEngine::ApplyDecision(double at, const ScheduleDecision& decision) {
  // Reject contradictory decisions outright: a job both assigned and
  // dropped would be started and then torn down in the same round, which is
  // never what a scheduler means.
  for (int64_t id : decision.dropped) {
    CRIUS_CHECK_MSG(decision.assignments.find(id) == decision.assignments.end(),
                    scheduler_.name() << " decision both assigns and drops job " << id);
  }

  // Migrations target *running* jobs only, at most once per job per round; a
  // migration's target overrides the job's entry in `assignments`.
  std::map<int64_t, const MigrationAction*> migrating;
  for (const MigrationAction& m : decision.migrations) {
    CRIUS_CHECK_MSG(std::find(decision.dropped.begin(), decision.dropped.end(), m.job_id) ==
                        decision.dropped.end(),
                    "decision both migrates and drops job " << m.job_id);
    CRIUS_CHECK_MSG(JobById(m.job_id).state.phase == JobPhase::kRunning,
                    "migration of non-running job " << m.job_id);
    const bool inserted = migrating.emplace(m.job_id, &m).second;
    CRIUS_CHECK_MSG(inserted, "duplicate migration for job " << m.job_id);
  }

  // Drops first.
  for (int64_t id : decision.dropped) {
    SimJob& sj = JobById(id);
    if (sj.state.phase == JobPhase::kQueued) {
      sj.state.phase = JobPhase::kDropped;
      Record(sj, at, SimEvent::Kind::kDrop);
      round_events_.push_back(RoundEvent::JobDrop(sj.state.job.id));
    }
  }

  // Releases: running jobs whose assignment vanished or changed, plus jobs
  // being migrated (their current grant is released so the new Cell can be
  // allocated from the freed capacity).
  struct StartItem {
    size_t index;
    Assignment assignment;
    const MigrationAction* migration;  // null for plain starts/restarts
  };
  std::vector<StartItem> to_start;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    SimJob& sj = jobs_[i];
    if (sj.state.phase != JobPhase::kRunning && sj.state.phase != JobPhase::kQueued) {
      continue;
    }
    if (at < sj.schedulable_at) {
      continue;
    }
    const auto it = decision.assignments.find(sj.state.job.id);
    const MigrationAction* mig = nullptr;
    if (sj.state.phase == JobPhase::kRunning) {
      const auto mit = migrating.find(sj.state.job.id);
      if (mit != migrating.end()) {
        mig = mit->second;
      }
      const bool keep = mig == nullptr && it != decision.assignments.end() &&
                        it->second.type == sj.state.gpu_type &&
                        it->second.ngpus == sj.state.ngpus &&
                        (it->second.nstages == 0 || it->second.nstages == sj.state.nstages);
      if (keep) {
        sj.state.opportunistic = it->second.opportunistic;
        continue;
      }
      // Preempt / reschedule / migrate: release now, maybe restart below.
      SettleSegment(sj, at);
      cluster_.Release(sj.alloc);
      sj.alloc = Allocation{};
      sj.state.phase = JobPhase::kQueued;
      sj.state.ngpus = 0;
      sj.state.nstages = 0;
      sj.state.iter_time = 0.0;
      if (mig == nullptr && it == decision.assignments.end()) {
        Record(sj, at, SimEvent::Kind::kPreempt);
        round_events_.push_back(RoundEvent::JobPhaseChange(sj.state.job.id));
      }
    }
    if (mig != nullptr) {
      to_start.push_back(StartItem{i, mig->target, mig});
    } else if (it != decision.assignments.end()) {
      to_start.push_back(StartItem{i, it->second, nullptr});
    }
  }

  // Starts / restarts / migration resumes.
  for (const StartItem& item : to_start) {
    const size_t i = item.index;
    const Assignment& a = item.assignment;
    SimJob& sj = jobs_[i];
    CRIUS_CHECK(sj.state.phase == JobPhase::kQueued);
    CRIUS_CHECK_MSG(a.ngpus > 0, "empty assignment for job " << sj.state.job.id);
    auto alloc = cluster_.Allocate(a.type, a.ngpus);
    CRIUS_CHECK_MSG(alloc.has_value(), scheduler_.name()
                                           << " oversubscribed " << GpuName(a.type)
                                           << " by job " << sj.state.job.id);
    double iter_time = 0.0;
    if (a.nstages > 0) {
      // Crius: run the Cell-guided tuned plan.
      const Cell cell{a.type, a.ngpus, a.nstages};
      const TuneResult& tuned = oracle_.TuneCell(sj.state.job.spec, cell);
      if (tuned.best.has_value()) {
        iter_time = tuned.best->iter_time;
      }
    }
    if (iter_time <= 0.0) {
      const std::optional<PlanChoice>& best =
          oracle_.BestAdaptive(sj.state.job.spec, a.type, a.ngpus);
      CRIUS_CHECK_MSG(best.has_value(), scheduler_.name()
                                            << " scheduled infeasible shape for job "
                                            << sj.state.job.id);
      iter_time = best->iter_time;
    }
    if (config_.execution_jitter > 0.0) {
      uint64_t key = static_cast<uint64_t>(sj.state.job.id);
      key = HashCombine(key, static_cast<uint64_t>(a.type));
      key = HashCombine(key, static_cast<uint64_t>(a.ngpus));
      iter_time *= HashJitter(config_.jitter_seed, key, config_.execution_jitter);
    }

    sj.alloc = std::move(*alloc);
    sj.state.phase = JobPhase::kRunning;
    sj.state.gpu_type = a.type;
    sj.state.ngpus = a.ngpus;
    sj.state.nstages = a.nstages;
    // Realized rate: plan latency, stretched by the periodic-checkpoint
    // overhead and the worst straggler among the granted nodes.
    sj.base_iter_time = iter_time;
    sj.ckpt_interval = EffectiveCheckpointInterval(config_.checkpoint, config_.node_mtbf,
                                                   sj.alloc.num_nodes());
    sj.ckpt_factor = CheckpointOverheadFactor(sj.ckpt_interval, config_.checkpoint.cost);
    sj.state.iter_time =
        DegradedIterTime(iter_time * sj.ckpt_factor, cluster_.MaxSlowdown(sj.alloc));
    sj.state.opportunistic = a.opportunistic;
    sj.grant_time = at;
    sj.segment_start_iters = sj.state.iters_done;
    double restart_cost = config_.restart_overhead;
    if (config_.checkpoint_bandwidth > 0.0) {
      restart_cost += 2.0 * GetOpGraph(sj.state.job.spec).TotalParamBytes() /
                      config_.checkpoint_bandwidth;
    }
    if (item.migration != nullptr) {
      // A migration's pause is the cost model's full price (checkpoint write +
      // relaunch + restore + destination warm-up), never the plain restart.
      restart_cost = item.migration->cost_seconds;
    }
    CRIUS_HISTOGRAM_RECORD("sim.restart_cost_s", restart_cost);
    sj.state.blocked_until = at + restart_cost;
    const Cell placement{a.type, a.ngpus, std::max(1, a.nstages)};
    if (item.migration != nullptr) {
      const MigrationAction& m = *item.migration;
      ++sj.state.num_restarts;
      ++sj.sched_restarts;
      ++result_.migrations;
      result_.migration_cost_seconds += m.cost_seconds;
      result_.migration_gain_seconds += m.gain_seconds;
      CounterRegistry::Global()
          .GetCounter("reconfig.migrations",
                      MetricLabels{{"kind", MigrationKindName(m.kind)}})
          .Add(1);
      Record(sj, at, SimEvent::Kind::kMigrate, placement.ToString());
    } else if (!sj.started_once) {
      sj.started_once = true;
      sj.state.first_start = at;
      Record(sj, at, SimEvent::Kind::kStart, placement.ToString());
    } else {
      ++sj.state.num_restarts;
      if (sj.failure_restart_pending) {
        sj.failure_restart_pending = false;
        ++sj.failure_restarts;
        // Recovery ends when the job computes again, not when it is placed.
        const double latency = sj.state.blocked_until - sj.killed_at;
        result_.recovery_latencies.push_back(latency);
        CRIUS_HISTOGRAM_RECORD("sim.recovery_latency_s", latency);
      } else {
        ++sj.sched_restarts;
      }
      Record(sj, at, SimEvent::Kind::kRestart, placement.ToString());
    }
  }
}

// Runs one scheduler invocation over the currently visible jobs. The
// accumulated round_events_ delta is handed over and reset; when no job is
// visible the delta stays pending for the next real invocation so the
// scheduler never misses a transition.
void SimEngine::RunScheduler(double at) {
  std::vector<const JobState*> visible;
  for (SimJob& sj : jobs_) {
    if ((sj.state.phase == JobPhase::kQueued && at + kEps >= sj.schedulable_at &&
         at + kEps >= sj.state.job.submit_time) ||
        sj.state.phase == JobPhase::kRunning) {
      visible.push_back(&sj.state);
      if (!sj.announced) {
        sj.announced = true;
        round_events_.push_back(RoundEvent::JobArrival(sj.state.job.id));
      }
    }
  }
  if (visible.empty()) {
    return;
  }
  CRIUS_TRACE_SPAN_ARGS("sim.schedule",
                        "{\"t\": " + std::to_string(at) +
                            ", \"visible_jobs\": " + std::to_string(visible.size()) + "}");
  CRIUS_COUNTER_INC("sim.sched_invocations");
  const RoundContext round(at, std::move(visible), cluster_, std::move(round_events_));
  round_events_.clear();  // moved-from; restart the next round's delta empty
  ScheduleDecision decision = scheduler_.Schedule(round);
  if (reconfig_ != nullptr) {
    decision.migrations = reconfig_->Propose(round, decision);
  }
  ApplyDecision(at, decision);
}

void SimEngine::SampleThroughput(double at) {
  ThroughputSample sample;
  sample.time = at;
  sample.usable_gpus = cluster_.UsableGpus();
  for (const SimJob& sj : jobs_) {
    if (sj.state.phase == JobPhase::kRunning) {
      ++sample.running_jobs;
      sample.busy_gpus += sj.state.ngpus;
      if (at >= sj.state.blocked_until && sj.state.iter_time > 0.0) {
        const double thr =
            static_cast<double>(sj.state.job.spec.global_batch) / sj.state.iter_time;
        sample.normalized_throughput += thr / sj.reference_throughput;
      }
    } else if (sj.state.phase == JobPhase::kQueued && at >= sj.state.job.submit_time) {
      ++sample.queued_jobs;
    }
  }
  result_.timeline.push_back(sample);
}

void SimEngine::RecountLive() {
  live_ = 0;
  for (const SimJob& sj : jobs_) {
    if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
      ++live_;
    }
  }
}

SimEngine::SimJob& SimEngine::JobById(int64_t id) {
  const auto it = job_index_.find(id);
  CRIUS_CHECK_MSG(it != job_index_.end(), "unknown job id " << id);
  return jobs_[it->second];
}

void SimEngine::ProcessNext() {
  CRIUS_CHECK_MSG(live_ > 0, "ProcessNext with no live jobs");
  CRIUS_CHECK_MSG(!finished_, "SimEngine stepped after Finish");
  // The pre-step live count, logged at the round boundary below (matches the
  // historical batch loop, which logged the count from the previous
  // iteration's recount).
  const int live_before = live_;

  const double t_next = NextEventTime();
  CRIUS_CHECK(t_next < std::numeric_limits<double>::infinity());

  for (SimJob& sj : jobs_) {
    AdvanceJob(sj, now_, t_next);
  }
  now_ = t_next;

  // Completions (SchedDeparture).
  bool departed = false;
  for (SimJob& sj : jobs_) {
    if (sj.state.phase == JobPhase::kRunning &&
        sj.state.iters_done + kEps >= static_cast<double>(sj.state.job.iterations)) {
      SettleSegment(sj, now_);
      cluster_.Release(sj.alloc);
      sj.alloc = Allocation{};
      sj.state.phase = JobPhase::kFinished;
      sj.state.finish_time = now_;
      Record(sj, now_, SimEvent::Kind::kFinish);
      round_events_.push_back(RoundEvent::JobDeparture(sj.state.job.id));
      departed = true;
    }
  }
  if (departed) {
    RunScheduler(now_);
  }

  // Owner cancels, then cluster-health changes: kill affected jobs, then
  // re-schedule immediately against the surviving hardware (Crius re-derives
  // Cells; baselines requeue).
  bool churn = false;
  while (next_cancel_ < config_.cancels.size() &&
         config_.cancels[next_cancel_].time <= now_ + kEps) {
    churn = ApplyCancel(config_.cancels[next_cancel_], now_) || churn;
    ++next_cancel_;
  }
  while (next_failure_ < config_.failures.size() &&
         config_.failures[next_failure_].time <= now_ + kEps) {
    churn = ApplyFault(config_.failures[next_failure_], now_) || churn;
    ++next_failure_;
  }
  if (churn) {
    RunScheduler(now_);
  }

  // Round boundary (SchedArrival + periodic rescheduling).
  if (now_ + kEps >= next_round_) {
    RunScheduler(now_);
    SampleThroughput(now_);
    next_round_ += config_.schedule_interval;
    // Per-round chatter: kInfo when the caller asked for it, kDebug
    // otherwise so CRIUS_LOG_LEVEL=debug surfaces it without a code change.
    {
      std::ostringstream round_msg;
      round_msg << scheduler_.name() << " t=" << now_ << " live=" << live_before;
      LogMessage(config_.verbose ? LogLevel::kInfo : LogLevel::kDebug, round_msg.str());
    }
  }

  RecountLive();
}

void SimEngine::AdvanceTo(double t) {
  while (live_ > 0 && now_ < MaxTime() && NextEventTime() <= t) {
    ProcessNext();
  }
}

void SimEngine::Drain() {
  // The shutdown check makes SIGINT/SIGTERM graceful for every driver: the
  // loop stops at a step boundary and the caller flushes partial results.
  while (live_ > 0 && now_ < MaxTime() && !ShutdownRequested()) {
    ProcessNext();
  }
}

double SimEngine::MaxTime() const {
  double trace_end = 0.0;
  for (const SimJob& sj : jobs_) {
    trace_end = std::max(trace_end, sj.state.job.submit_time);
  }
  return std::max(trace_end, 1.0) * config_.max_time_factor + 24.0 * kHour;
}

int SimEngine::RunningJobs() const {
  int n = 0;
  for (const SimJob& sj : jobs_) {
    n += sj.state.phase == JobPhase::kRunning ? 1 : 0;
  }
  return n;
}

int SimEngine::QueuedJobs() const {
  int n = 0;
  for (const SimJob& sj : jobs_) {
    n += sj.state.phase == JobPhase::kQueued ? 1 : 0;
  }
  return n;
}

const JobState* SimEngine::FindJob(int64_t id) const {
  const auto it = job_index_.find(id);
  return it == job_index_.end() ? nullptr : &jobs_[it->second].state;
}

SimResult SimEngine::Finish() {
  CRIUS_CHECK_MSG(!finished_, "SimEngine::Finish called twice");
  finished_ = true;
  for (SimJob& sj : jobs_) {
    // Jobs still live when the simulation stopped were last observed now; any
    // still-held grant settles its GPU-second ledger at the horizon.
    if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
      sj.last_event = now_;
      if (sj.state.phase == JobPhase::kRunning) {
        SettleSegment(sj, now_);
      }
    }
  }
  for (const SimJob& sj : jobs_) {
    JobRecord r;
    r.id = sj.state.job.id;
    r.submit = sj.state.job.submit_time;
    r.first_start = sj.state.first_start;
    r.finish = sj.state.finish_time;
    r.ideal_duration = static_cast<double>(sj.state.job.iterations) *
                       static_cast<double>(sj.state.job.spec.global_batch) /
                       sj.reference_throughput;
    r.last_event = sj.last_event;
    r.restarts = sj.state.num_restarts;
    r.sched_restarts = sj.sched_restarts;
    r.failure_restarts = sj.failure_restarts;
    r.finished = sj.state.phase == JobPhase::kFinished;
    r.dropped = sj.state.phase == JobPhase::kDropped;
    r.had_deadline = sj.state.job.deadline.has_value();
    r.deadline_met = r.finished && r.had_deadline && r.finish <= *sj.state.job.deadline;
    result_.jobs.push_back(r);
  }
  result_.cluster_gpus = cluster_.TotalGpus();
  result_.Finalize();
  return std::move(result_);
}

}  // namespace crius
