// Trace and result persistence (CSV).
//
// The paper's system consumes production traces (Philly / Helios / PAI) from
// files; this module gives the reproduction the same workflow: synthetic
// traces can be saved, edited, and replayed, and simulation results can be
// exported for external plotting.
//
// Trace CSV columns:
//   id,family,params_billion,global_batch,iterations,submit_time,
//   requested_gpus,requested_type,deadline
// (deadline empty when absent). Header row required.

#ifndef SRC_SIM_TRACE_IO_H_
#define SRC_SIM_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/model/job.h"
#include "src/sim/metrics.h"

namespace crius {

// Serializes `trace` as CSV (with header).
void WriteTraceCsv(const std::vector<TrainingJob>& trace, std::ostream& out);
bool WriteTraceCsvFile(const std::vector<TrainingJob>& trace, const std::string& path);

// Parses a trace CSV. Aborts with a diagnostic on malformed rows (a corrupt
// workload file is an operator error worth failing loudly on).
std::vector<TrainingJob> ReadTraceCsv(std::istream& in);
std::vector<TrainingJob> ReadTraceCsvFile(const std::string& path);

// Per-job result rows (restarts == sched_restarts + failure_restarts):
//   id,submit,first_start,finish,jct,queue_time,restarts,sched_restarts,
//   failure_restarts,finished,dropped,had_deadline,deadline_met
void WriteJobRecordsCsv(const SimResult& result, std::ostream& out);
bool WriteJobRecordsCsvFile(const SimResult& result, const std::string& path);

// Throughput timeline rows:
//   time,normalized_throughput,running_jobs,queued_jobs,busy_gpus
void WriteTimelineCsv(const SimResult& result, std::ostream& out);
bool WriteTimelineCsvFile(const SimResult& result, const std::string& path);

// Scheduling-event rows (requires SimConfig::record_events):
//   time,kind,job_id,placement
void WriteEventsCsv(const SimResult& result, std::ostream& out);
bool WriteEventsCsvFile(const SimResult& result, const std::string& path);

}  // namespace crius

#endif  // SRC_SIM_TRACE_IO_H_
