// Steppable discrete-event engine behind both execution modes.
//
// SimEngine owns the event loop that used to live inside Simulator::Run: the
// batch simulator adds every trace job up front and steps until the system
// drains; the serve Controller (src/serve) adds jobs, failures, and cancels
// as external commands arrive and calls AdvanceTo(tick). Because both paths
// run the *same* stepping code, a recorded live session replayed through the
// batch simulator is bit-identical by construction — there is no second copy
// of the simulation semantics to drift.
//
// Determinism contract (what makes live == replay exact):
//  - One ProcessNext() call performs exactly one step of the original batch
//    loop: advance running jobs to the next event time, settle completions
//    (+ departure round), apply due cancels and cluster-health changes
//    (+ churn round), then the round boundary (+ throughput sample). The
//    engine's clock only ever lands ON event times; it is never advanced to
//    an arbitrary wall-clock tick, so floating-point progress sums are
//    accumulated over the identical sequence of intervals in both modes.
//  - AdvanceTo(t) lazily catches up: it processes every step with event time
//    <= t and leaves now() at the last processed event. An idle live engine
//    (no live jobs) processes nothing; once a submission arrives, the skipped
//    round boundaries are processed late but at their own times, producing
//    the same schedule/timeline rows the batch run produces eagerly.
//  - Online admission (TryAddJob) prices ProfilingDelay and the reference
//    throughput against the pristine cluster *template*, exactly like the
//    batch prepass (which runs before any failure mutates the cluster), so a
//    job admitted mid-session gets the same schedulable_at in the replay.
//  - InjectFailure keeps the pending schedule in SortFailureSchedule's
//    canonical (time, node, kind) order, so same-tick live commands apply in
//    the order the replay's pre-sorted list would.
//
// The replay guarantee therefore holds for DRAINED sessions: a live session
// that ends with Drain() (shutdown waits for the system to empty or hit the
// time cap) has processed exactly the step sequence the batch run processes.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"

namespace crius {

class SimEngine {
 public:
  // Copies the cluster template and sorts the config's failure/cancel
  // schedules into canonical order. `scheduler` and `oracle` must outlive the
  // engine. The config must already be valid (Simulator and the serve session
  // runtime both run SimConfig::Validate first).
  SimEngine(const Cluster& cluster_template, SimConfig config, Scheduler& scheduler,
            PerformanceOracle& oracle);

  // Batch path: profiling delay and reference throughput were precomputed by
  // the caller's parallel prepass. Aborts if the job is infeasible everywhere
  // or its id collides with an existing job.
  void AddJob(const TrainingJob& job, double profiling_delay, double reference_throughput);

  // Online path: computes both quantities against the pristine cluster
  // template (matching the batch prepass). Returns false — job not added —
  // when the job is infeasible on every GPU type; the caller turns that into
  // an admission rejection instead of an abort.
  bool TryAddJob(const TrainingJob& job);

  // Queues a cluster-health change, keeping the pending schedule in canonical
  // (time, node, kind) order. `event.time` must be >= now().
  void InjectFailure(const FailureEvent& event);

  // Queues an owner-initiated withdrawal ((time, job_id) order, time >= now()).
  void InjectCancel(double time, int64_t job_id);

  // Time of the next step the engine would process: the earliest of the next
  // round boundary, running-job completion, pending failure, and pending
  // cancel.
  double NextEventTime() const;

  // Processes exactly one step (one iteration of the original batch loop) at
  // NextEventTime(). Requires LiveJobs() > 0.
  void ProcessNext();

  // Processes every step with NextEventTime() <= t; now() ends at the last
  // processed event time (NOT at t — see the determinism contract above).
  void AdvanceTo(double t);

  // Steps until no job is live or now() reaches MaxTime(). This is the batch
  // run and the live shutdown drain.
  void Drain();

  // Jobs still queued or running (future arrivals included).
  int LiveJobs() const { return live_; }
  int RunningJobs() const;
  int QueuedJobs() const;

  double now() const { return now_; }

  // Horizon cap from the jobs added so far: max submit_time scaled by
  // SimConfig::max_time_factor plus a day (the batch formula; it only grows
  // as jobs are added).
  double MaxTime() const;

  // Scheduler-visible state of a job, or nullptr for an unknown id.
  const JobState* FindJob(int64_t id) const;

  const Cluster& cluster() const { return cluster_; }
  const SimConfig& config() const { return config_; }

  // Chronological event log recorded so far (empty unless record_events).
  const std::vector<SimEvent>& events() const { return result_.events; }

  // Settles still-live jobs at now(), fills the job records, and finalizes
  // the aggregates. The engine must not be stepped afterwards.
  SimResult Finish();

 private:
  // Engine-internal per-job bookkeeping on top of the scheduler-visible
  // JobState.
  struct SimJob {
    JobState state;
    Allocation alloc;             // concrete node grant while running
    double schedulable_at = 0.0;  // submit + profiling delay
    double reference_throughput = 0.0;
    bool started_once = false;
    // Arrival RoundEvent already emitted (first round the job was visible).
    bool announced = false;
    // Last simulation time the job's state changed (JobRecord::last_event).
    double last_event = -1.0;

    // --- Fault-model bookkeeping (src/fault) -------------------------------
    // Plan iteration time incl. execution jitter, excl. checkpoint overhead
    // and straggler factors; the rate "useful work" is valued at.
    double base_iter_time = 0.0;
    // Checkpoint cadence and its steady-state overhead factor per segment.
    double ckpt_interval = 0.0;
    double ckpt_factor = 1.0;
    // Current allocation segment: grant time and progress at grant.
    double grant_time = 0.0;
    double segment_start_iters = 0.0;
    // Set when a hardware failure killed the job; the next launch is a
    // failure-initiated restart and closes the recovery-latency measurement.
    bool failure_restart_pending = false;
    double killed_at = -1.0;
    int sched_restarts = 0;
    int failure_restarts = 0;
  };

  void AdvanceJob(SimJob& sj, double t0, double t1) const;
  double CompletionTime(const SimJob& sj, double at) const;
  void Record(SimJob& sj, double time, SimEvent::Kind kind, std::string placement = "");
  void RecordCluster(double time, SimEvent::Kind kind, int node_id, std::string detail);
  void SettleSegment(SimJob& sj, double t);
  void SettleSegmentFailed(SimJob& sj, double t);
  void KillJob(SimJob& sj, double at);
  void RefreshSlowdowns(int node_id);
  bool ApplyFault(const FailureEvent& e, double at);
  bool ApplyCancel(const JobCancelEvent& e, double at);
  void ApplyDecision(double at, const ScheduleDecision& decision);
  void RunScheduler(double at);
  void SampleThroughput(double at);
  void RecountLive();
  SimJob& JobById(int64_t id);

  Cluster cluster_template_;
  SimConfig config_;
  Scheduler& scheduler_;
  PerformanceOracle& oracle_;
  // Live-reconfiguration policy (src/reconfig); null unless
  // SimConfig::reconfig.enabled, so the off path never touches it.
  std::unique_ptr<ReconfigPolicy> reconfig_;

  Cluster cluster_;
  SimResult result_;
  std::vector<SimJob> jobs_;
  std::unordered_map<int64_t, size_t> job_index_;
  // Typed deltas accumulated since the scheduler last ran (the RoundContext
  // completeness contract).
  std::vector<RoundEvent> round_events_;

  double now_ = 0.0;
  double next_round_ = 0.0;
  size_t next_failure_ = 0;
  size_t next_cancel_ = 0;
  int live_ = 0;
  bool finished_ = false;
};

}  // namespace crius

#endif  // SRC_SIM_ENGINE_H_
