// Chrome-trace export of a finished cluster simulation.
//
// Converts SimResult's event log and throughput timeline into per-job tracks
// (queued/running spans, restart/preempt/drop instants), a scheduler-round
// track, and cluster-level counter series, all under the recorder's
// "simulation (sim time)" process (timestamps are simulated seconds, exported
// as microseconds). Combined with the live subsystem spans recorded during
// the run this makes a whole cluster run visually inspectable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Requires SimConfig::record_events (per-job tracks are reconstructed from
// the event log); with an empty event log only the round/counter tracks are
// emitted. The conversion is a pure function of the SimResult, so the
// appended events are fully deterministic.

#ifndef SRC_SIM_CHROME_EXPORT_H_
#define SRC_SIM_CHROME_EXPORT_H_

#include <iosfwd>
#include <string>

#include "src/sim/metrics.h"
#include "src/util/trace.h"

namespace crius {

// Appends the simulation's tracks to `recorder` (works on a disabled
// recorder: explicit-timestamp events are always accepted).
void AppendSimTrace(const SimResult& result, TraceRecorder& recorder);

// Converts `result` alone into a standalone Chrome-trace JSON document.
void WriteSimChromeTrace(const SimResult& result, std::ostream& out);
bool WriteSimChromeTraceFile(const SimResult& result, const std::string& path);

}  // namespace crius

#endif  // SRC_SIM_CHROME_EXPORT_H_
