// Simulation results and metric aggregation.
//
// Collects the quantities every evaluation figure reports: per-job JCT and
// queuing delay (Figs. 14a/b, 17a, 18a/b), finished-job counts (Fig. 17b),
// the normalized cluster-throughput timeline (Fig. 16) with average/peak
// summaries (Figs. 14c, 17c, 18c/d), restart counts (§8.4), and the deadline
// satisfactory ratio (Fig. 19).

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crius {

struct JobRecord {
  int64_t id = 0;
  double submit = 0.0;
  double first_start = -1.0;  // -1: never started
  double finish = -1.0;       // -1: unfinished at simulation end
  // Standalone runtime at the requested shape's ground-truth optimal plan;
  // jct()/ideal_duration is the job's slowdown (finish-time fairness).
  double ideal_duration = 0.0;
  // Time of the job's last observed event: finish for finished jobs, the drop
  // time for dropped jobs, the simulation horizon for jobs still live at the
  // end. -1 when the simulator never observed the job (hand-built records).
  double last_event = -1.0;
  // Total relaunches after the first start; the two components distinguish the
  // scheduler's own placement changes from recoveries after a hardware
  // failure (restarts == sched_restarts + failure_restarts).
  int restarts = 0;
  int sched_restarts = 0;
  int failure_restarts = 0;
  bool finished = false;
  bool dropped = false;
  bool had_deadline = false;
  bool deadline_met = false;

  double jct() const { return finish - submit; }
  double queue_time() const { return (first_start < 0.0 ? finish : first_start) - submit; }
};

struct ThroughputSample {
  double time = 0.0;
  // Sum over running jobs of (current throughput / requested-shape reference).
  double normalized_throughput = 0.0;
  int running_jobs = 0;
  int queued_jobs = 0;
  // GPUs held by running jobs at sample time (all types).
  int busy_gpus = 0;
  // Cluster capacity net of failed devices at sample time (the availability
  // timeline under failure injection; equals total capacity when healthy).
  int usable_gpus = 0;
};

// One scheduling-relevant event (recorded when SimConfig::record_events).
struct SimEvent {
  enum class Kind : uint8_t {
    kStart,        // first launch
    kRestart,      // relaunched with a (possibly) different placement
    kMigrate,      // live reconfiguration: moved to a new Cell (src/reconfig)
    kPreempt,      // lost its GPUs to a scheduling decision, back to the queue
    kFinish,
    kDrop,
    kCancel,       // withdrawn by its owner (serve `cancel` command / replay)
    kFailureKill,  // lost its GPUs to a hardware failure, back to the queue
    // Cluster-health events (src/fault): job_id carries the *node* id.
    kNodeFail,
    kNodeRecover,
    kStragglerStart,
    kStragglerEnd,
  };
  double time = 0.0;
  Kind kind = Kind::kStart;
  // Job id for job events; node id for cluster-health kinds (see IsClusterKind).
  int64_t job_id = 0;
  // Placement at/after the event ("A40x8/P2", empty for preempt/finish/drop;
  // health detail like "A100x4" or "x1.62" for cluster kinds).
  std::string placement;

  static const char* KindName(Kind kind);
  // True for the cluster-health kinds, whose job_id field holds a node id.
  static bool IsClusterKind(Kind kind);
};

struct SimResult {
  std::string scheduler;
  std::vector<JobRecord> jobs;
  std::vector<ThroughputSample> timeline;
  // Chronological event log; empty unless SimConfig::record_events was set.
  std::vector<SimEvent> events;

  // Aggregates (filled by Finalize).
  double avg_jct = 0.0;
  double median_jct = 0.0;
  double max_jct = 0.0;
  // Tail percentiles over finished jobs (p50 JCT == median_jct); 0 when
  // nothing finished.
  double p95_jct = 0.0;
  double p99_jct = 0.0;
  double p50_queue_time = 0.0;
  double p95_queue_time = 0.0;
  double p99_queue_time = 0.0;
  // Sentinel semantics: avg_queue_time and avg_restarts average over finished
  // jobs only and read 0.0 (never NaN) when no job finished.
  double avg_queue_time = 0.0;
  double avg_throughput = 0.0;
  double peak_throughput = 0.0;
  double avg_restarts = 0.0;
  // avg_restarts split by cause (scheduler-initiated vs failure recovery).
  double avg_sched_restarts = 0.0;
  double avg_failure_restarts = 0.0;
  double deadline_ratio = 0.0;  // met / had_deadline (dropped jobs count unmet)
  int finished_jobs = 0;
  int dropped_jobs = 0;
  int unfinished_jobs = 0;
  // Latest finish time, folded with dropped/unfinished jobs' last-event times,
  // so a run where nothing finishes (e.g. everything deadline-dropped) still
  // reports the horizon of activity instead of 0.
  double makespan = 0.0;
  // Mean slowdown (jct / ideal) and Jain's fairness index over the finished
  // jobs' 1/slowdown values; 1.0 = perfectly even service.
  double avg_slowdown = 0.0;
  double p99_slowdown = 0.0;
  double fairness_index = 0.0;
  // Mean fraction of cluster GPUs held by running jobs across the timeline.
  double avg_gpu_utilization = 0.0;
  // Total cluster GPU count the utilization is relative to (set by the
  // simulator).
  int cluster_gpus = 0;

  // --- Fault accounting (set by the simulator; zero without injection) -------
  // GPU-second ledger over every allocation segment: `total` counts the full
  // hold time (compute + checkpoint/restart stalls), `useful` the part spent
  // on iterations that survived to the end, `lost` the part rolled back by
  // failures. total - useful - lost is restart/checkpoint overhead.
  double total_gpu_seconds = 0.0;
  double useful_gpu_seconds = 0.0;
  double lost_gpu_seconds = 0.0;
  // Hardware failure events applied and jobs killed by them.
  int failure_events = 0;
  int failure_kills = 0;
  // Per-failure recovery latency: failure kill -> the job's next launch.
  std::vector<double> recovery_latencies;

  // Aggregates derived from the fault accounting (filled by Finalize).
  // goodput = useful / total GPU-seconds; 1.0 for an idle ledger so healthy
  // runs read as fully efficient.
  double goodput = 0.0;
  double avg_recovery_latency = 0.0;
  double p95_recovery_latency = 0.0;

  // --- Live reconfiguration (src/reconfig; zero unless --reconfig) ----------
  // Migrations applied, and the summed modeled pause cost / remaining-time
  // gain of the accepted moves (gain is the policy's model, not realized).
  int migrations = 0;
  double migration_cost_seconds = 0.0;
  double migration_gain_seconds = 0.0;

  // Computes the aggregates from `jobs`, `timeline`, and the fault ledger.
  void Finalize();
};

}  // namespace crius

#endif  // SRC_SIM_METRICS_H_
