#include "src/sim/chrome_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <vector>

namespace crius {

namespace {

constexpr double kUsPerSecond = 1e6;

std::string RoundArgs(const ThroughputSample& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"running\": %d, \"queued\": %d, \"busy_gpus\": %d}", s.running_jobs,
                s.queued_jobs, s.busy_gpus);
  return buf;
}

}  // namespace

void AppendSimTrace(const SimResult& result, TraceRecorder& recorder) {
  // Observed horizon: the latest event, sample, or job time.
  double end = 0.0;
  for (const SimEvent& e : result.events) {
    end = std::max(end, e.time);
  }
  for (const ThroughputSample& s : result.timeline) {
    end = std::max(end, s.time);
  }
  for (const JobRecord& r : result.jobs) {
    end = std::max({end, r.submit, r.finish, r.last_event});
  }

  // --- Scheduler-round track (one span per round sample) --------------------
  if (!result.timeline.empty()) {
    const int rounds = recorder.Track(TraceRecorder::kSimPid, "scheduler rounds");
    for (size_t i = 0; i < result.timeline.size(); ++i) {
      const ThroughputSample& s = result.timeline[i];
      const double next =
          i + 1 < result.timeline.size() ? result.timeline[i + 1].time : end;
      recorder.CompleteEvent(rounds, "round " + std::to_string(i), s.time * kUsPerSecond,
                             std::max(0.0, next - s.time) * kUsPerSecond, RoundArgs(s));
    }
  }

  // --- Cluster counter series ------------------------------------------------
  if (!result.timeline.empty()) {
    const int cluster = recorder.Track(TraceRecorder::kSimPid, "cluster");
    for (const ThroughputSample& s : result.timeline) {
      const double ts = s.time * kUsPerSecond;
      recorder.CounterEvent(cluster, "running_jobs", ts, s.running_jobs);
      recorder.CounterEvent(cluster, "queued_jobs", ts, s.queued_jobs);
      recorder.CounterEvent(cluster, "busy_gpus", ts, s.busy_gpus);
      recorder.CounterEvent(cluster, "usable_gpus", ts, s.usable_gpus);
      recorder.CounterEvent(cluster, "normalized_throughput", ts, s.normalized_throughput);
    }
  }

  // --- Per-job tracks (reconstructed from the event log) --------------------
  if (result.events.empty()) {
    return;  // record_events was off; only the aggregate tracks exist
  }
  // Cluster-health kinds carry a *node* id in job_id and get their own track
  // below; mixing them into the per-job reconstruction would corrupt the jobs
  // whose ids collide with node ids.
  std::map<int64_t, std::vector<const SimEvent*>> by_job;
  std::vector<const SimEvent*> health;
  for (const SimEvent& e : result.events) {
    if (SimEvent::IsClusterKind(e.kind)) {
      health.push_back(&e);
    } else {
      by_job[e.job_id].push_back(&e);
    }
  }

  // --- Cluster-health track (node-down and straggler windows) ----------------
  if (!health.empty()) {
    const int track = recorder.Track(TraceRecorder::kSimPid, "cluster health");
    // Per-node open window start times; -1 when the node is healthy.
    std::map<int64_t, double> down_since;
    std::map<int64_t, std::pair<double, std::string>> straggling_since;
    for (const SimEvent* e : health) {
      const std::string node = "node " + std::to_string(e->job_id);
      switch (e->kind) {
        case SimEvent::Kind::kNodeFail:
          recorder.InstantEvent(track, node + " fail " + e->placement,
                                e->time * kUsPerSecond);
          down_since.emplace(e->job_id, e->time);  // keep the first failure time
          break;
        case SimEvent::Kind::kNodeRecover: {
          const auto it = down_since.find(e->job_id);
          if (it != down_since.end()) {
            recorder.CompleteEvent(track, node + " down", it->second * kUsPerSecond,
                                   (e->time - it->second) * kUsPerSecond);
            down_since.erase(it);
          }
          break;
        }
        case SimEvent::Kind::kStragglerStart:
          straggling_since[e->job_id] = {e->time, e->placement};
          break;
        case SimEvent::Kind::kStragglerEnd: {
          const auto it = straggling_since.find(e->job_id);
          if (it != straggling_since.end()) {
            recorder.CompleteEvent(track, node + " straggler " + it->second.second,
                                   it->second.first * kUsPerSecond,
                                   (e->time - it->second.first) * kUsPerSecond);
            straggling_since.erase(it);
          }
          break;
        }
        default:
          break;
      }
    }
    // Windows still open at the horizon.
    for (const auto& [node_id, since] : down_since) {
      recorder.CompleteEvent(track, "node " + std::to_string(node_id) + " down",
                             since * kUsPerSecond, (end - since) * kUsPerSecond);
    }
    for (const auto& [node_id, open] : straggling_since) {
      recorder.CompleteEvent(track, "node " + std::to_string(node_id) + " straggler " + open.second,
                             open.first * kUsPerSecond, (end - open.first) * kUsPerSecond);
    }
  }
  for (const JobRecord& r : result.jobs) {
    const int track = recorder.Track(TraceRecorder::kSimPid, "job " + std::to_string(r.id));
    double open_since = r.submit;
    bool open = true;
    std::string span_name = "queued";
    std::string span_args;
    auto close_span = [&](double t) {
      if (open && t > open_since) {
        recorder.CompleteEvent(track, span_name, open_since * kUsPerSecond,
                               (t - open_since) * kUsPerSecond, span_args);
      }
    };
    for (const SimEvent* e : by_job[r.id]) {
      switch (e->kind) {
        case SimEvent::Kind::kStart:
        case SimEvent::Kind::kRestart:
        case SimEvent::Kind::kMigrate:
          close_span(e->time);
          if (e->kind == SimEvent::Kind::kRestart) {
            recorder.InstantEvent(track, "restart", e->time * kUsPerSecond);
          } else if (e->kind == SimEvent::Kind::kMigrate) {
            recorder.InstantEvent(track, "migrate", e->time * kUsPerSecond);
          }
          open = true;
          open_since = e->time;
          span_name = "run " + e->placement;
          span_args = "{\"placement\": \"" + e->placement + "\"}";
          break;
        case SimEvent::Kind::kPreempt:
        case SimEvent::Kind::kFailureKill:
          close_span(e->time);
          recorder.InstantEvent(
              track, e->kind == SimEvent::Kind::kFailureKill ? "failure kill" : "preempt",
              e->time * kUsPerSecond);
          open = true;
          open_since = e->time;
          span_name = "queued";
          span_args.clear();
          break;
        case SimEvent::Kind::kFinish:
          close_span(e->time);
          open = false;
          break;
        case SimEvent::Kind::kDrop:
        case SimEvent::Kind::kCancel:
          close_span(e->time);
          recorder.InstantEvent(
              track, e->kind == SimEvent::Kind::kCancel ? "cancel" : "drop",
              e->time * kUsPerSecond);
          open = false;
          break;
        default:
          break;  // cluster-health kinds were filtered out above
      }
    }
    // Jobs still live at the horizon keep their open span to the end.
    close_span(end);
  }
}

void WriteSimChromeTrace(const SimResult& result, std::ostream& out) {
  TraceRecorder recorder;
  AppendSimTrace(result, recorder);
  recorder.WriteJson(out);
}

bool WriteSimChromeTraceFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteSimChromeTrace(result, out);
  return out.good();
}

}  // namespace crius
