// Discrete-event cluster simulator.
//
// Mirrors the paper's runtime (§7): the scheduler fires every 5 minutes
// (SchedArrival batches the jobs that arrived since the last round) and
// immediately on job completions (SchedDeparture). Assignment changes pay a
// restart overhead (checkpoint + relaunch); Crius additionally pays its
// one-time single-GPU Cell-profiling delay before a new job becomes
// schedulable (§8.2). Scheduled jobs run at the ground-truth iteration time of
// their plan: the Cell-tuned plan for Crius, the full adaptive-parallelism
// optimum for the baselines (§8.1's fair comparison).

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fault/checkpoint.h"
#include "src/fault/failure_injector.h"
#include "src/reconfig/policy.h"
#include "src/sched/scheduler.h"
#include "src/sim/metrics.h"

namespace crius {

// A job withdrawn by its owner at `time` (the serve subsystem's `cancel`
// command; a recorded live session replays these through the batch simulator).
struct JobCancelEvent {
  double time = 0.0;
  int64_t job_id = -1;
};

struct SimConfig {
  // Scheduling round interval (the paper uses 5 minutes).
  double schedule_interval = 5.0 * kMinute;
  // Fixed checkpoint + restore + relaunch cost paid on every assignment
  // change.
  double restart_overhead = 60.0;
  // Optional size-dependent checkpoint cost: when > 0, every restart
  // additionally pays 2 x model parameter bytes / this bandwidth (write at
  // suspend + read at resume). 0 keeps the fixed-cost model.
  double checkpoint_bandwidth = 0.0;
  // Charge schedulers' ProfilingDelay before a job becomes schedulable.
  bool charge_profiling = true;
  // Hard stop: trace duration x this factor (jobs unfinished then are
  // reported as unfinished).
  double max_time_factor = 4.0;
  // Per-(job, placement) multiplicative jitter on realized iteration times,
  // modeling real-testbed variance the simulator does not capture; 0 gives
  // the pure simulation, ~0.06 emulates the physical testbed for the §8.3
  // fidelity comparison.
  double execution_jitter = 0.0;
  uint64_t jitter_seed = 1234;
  // Record a chronological SimEvent log in the result (start / restart /
  // preempt / finish / drop per job, plus cluster-health events).
  bool record_events = false;
  // Quiet progress logging.
  bool verbose = false;

  // --- Fault model (src/fault; empty/default = no injection) -----------------
  // Scripted cluster-health changes (injector-generated or loaded from a
  // failure-trace CSV). Node/GPU failures kill the jobs holding the hardware
  // and trigger an immediate scheduling round against the surviving capacity;
  // straggler windows stretch the iteration time of every job touching the
  // node. Applied in canonical order (the simulator sorts a copy).
  std::vector<FailureEvent> failures;
  // Periodic-checkpoint model bounding the work a failure destroys; disabled
  // (interval 0, no Young/Daly) => a failure rolls the job back to the start
  // of its current run segment.
  CheckpointConfig checkpoint;
  // Per-node MTBF in seconds backing Young/Daly interval derivation; 0 when
  // unknown (Young/Daly then falls back to checkpoint.interval).
  double node_mtbf = 0.0;

  // Owner-initiated job withdrawals, applied in (time, job_id) order between
  // completions and cluster-health changes each step. Cancels of jobs that
  // already finished/dropped are ignored, so a replayed session log may carry
  // them verbatim.
  std::vector<JobCancelEvent> cancels;

  // --- Live reconfiguration (src/reconfig; disabled by default) --------------
  // When reconfig.enabled, the engine runs a ReconfigPolicy after every
  // scheduling round and applies its migrations (pause, charge the modeled
  // cost, resume in the new Cell). The engine syncs reconfig.cost's
  // restart_overhead and checkpoint_bandwidth from the fields above so
  // migrations and plain restarts price their shared legs identically.
  ReconfigConfig reconfig;

  // Collects every configuration error at once (empty = valid): non-positive
  // schedule_interval, negative overheads/bandwidths/factors, fault events
  // with negative times or node ids outside `cluster`, and cancels with
  // negative times. Callers that can report to a human (crius_sim) print the
  // full list; the Simulator constructor aborts listing all of them.
  std::vector<std::string> Validate(const Cluster& cluster) const;
};

class Simulator {
 public:
  // Aborts (with the full Validate() error list) on an invalid `config` and
  // captures the cluster template.
  Simulator(const Cluster& cluster, SimConfig config);

  // Runs `trace` to completion (or the time cap) under `scheduler`.
  SimResult Run(Scheduler& scheduler, PerformanceOracle& oracle,
                const std::vector<TrainingJob>& trace);

 private:
  Cluster cluster_template_;
  SimConfig config_;
};

}  // namespace crius

#endif  // SRC_SIM_SIMULATOR_H_
