#include "src/sim/trace.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"

namespace crius {

namespace {

// Family mixture; BERT-style jobs dominate production LLM clusters.
constexpr double kFamilyWeights[kNumModelFamilies] = {0.30, 0.40, 0.30};

// Size-rank weight decay: the i-th smallest size of a family is
// kSizeDecay^i as likely as the smallest (Fig. 15's small-model-heavy mix).
constexpr double kSizeDecay = 0.68;

// Smallest power-of-two GPU count on which the job can start on `type`
// (ground-truth adaptive feasibility -- users request shapes that work).
int MinFeasibleGpus(PerformanceOracle& oracle, const ModelSpec& spec, GpuType type, int cap) {
  for (int n = 1; n <= cap; n *= 2) {
    if (oracle.AdaptiveThroughput(spec, type, n) > 0.0) {
      return n;
    }
  }
  return 0;
}

// Diurnal + burst arrival intensity in [0.2, ~3], integrating to ~1.
double ArrivalIntensity(double t, double duration, double burstiness) {
  const double day_phase = 2.0 * 3.14159265358979 * t / kDay;
  double v = 1.0 + burstiness * 0.8 * std::sin(day_phase - 1.3);
  // Two burst windows at 30% and 65% of the trace (the Fig. 16 surges).
  for (double center : {0.30, 0.65}) {
    const double x = (t / duration - center) / 0.05;
    v += burstiness * 2.0 * std::exp(-x * x);
  }
  return std::max(0.2, v);
}

}  // namespace

TraceConfig PhillySixHourConfig() {
  TraceConfig c;
  c.name = "philly-6h";
  c.seed = 7001;
  c.duration = 6.0 * kHour;
  c.num_jobs = 244;
  c.load = 1.9;
  c.burstiness = 0.6;
  c.max_request_gpus = 16;
  return c;
}

TraceConfig PhillyWeekHeavyConfig() {
  TraceConfig c;
  c.name = "philly-week-heavy";
  c.seed = 7002;
  c.duration = 7.0 * kDay;
  c.num_jobs = 2600;
  c.load = 1.25;
  c.burstiness = 0.8;
  c.max_request_gpus = 64;
  return c;
}

TraceConfig HeliosModerateConfig() {
  TraceConfig c;
  c.name = "helios-moderate";
  c.seed = 7003;
  c.duration = 1.0 * kDay;
  c.num_jobs = 650;
  c.load = 0.70;
  c.burstiness = 0.5;
  c.max_request_gpus = 64;
  return c;
}

TraceConfig PaiLowConfig() {
  TraceConfig c;
  c.name = "pai-low";
  c.seed = 7004;
  c.duration = 1.0 * kDay;
  c.num_jobs = 420;
  c.load = 0.38;
  c.burstiness = 0.4;
  c.max_request_gpus = 64;
  return c;
}

std::vector<TrainingJob> GenerateTrace(const Cluster& cluster, PerformanceOracle& oracle,
                                       const TraceConfig& config) {
  CRIUS_CHECK(config.num_jobs > 0);
  CRIUS_CHECK(config.duration > 0.0);
  Rng rng(config.seed, "trace." + config.name);

  // GPU types weighted by capacity share.
  std::vector<GpuType> types;
  std::vector<double> type_weights;
  for (GpuType type : AllGpuTypes()) {
    if (cluster.HasType(type)) {
      types.push_back(type);
      type_weights.push_back(static_cast<double>(cluster.TotalGpus(type)));
    }
  }
  CRIUS_CHECK(!types.empty());

  // Mean ideal duration targeting the configured offered load.
  // load = sum(requested_gpus x ideal_duration) / (total_gpus x duration).
  // Requested GPU counts average out around 6; solve for the mean duration and
  // fix up below by rescaling after sampling.
  std::vector<TrainingJob> jobs;
  std::vector<double> ideal_durations;
  double gpu_seconds_accum = 0.0;

  for (int i = 0; i < config.num_jobs; ++i) {
    TrainingJob job;
    job.id = i;

    // --- Model ---------------------------------------------------------------
    for (int attempt = 0;; ++attempt) {
      CRIUS_CHECK_MSG(attempt < 64, "cannot synthesize a feasible job");
      const auto family = static_cast<ModelFamily>(rng.WeightedIndex(
          {kFamilyWeights[0], kFamilyWeights[1], kFamilyWeights[2]}));
      const std::vector<double>& sizes = SupportedSizes(family);
      std::vector<double> size_weights(sizes.size());
      for (size_t s = 0; s < sizes.size(); ++s) {
        size_weights[s] = std::pow(kSizeDecay, static_cast<double>(s));
      }
      const size_t size_idx = rng.WeightedIndex(size_weights);
      const std::vector<int64_t>& batches = SupportedBatches(family);
      const int64_t batch =
          batches[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(batches.size()) - 1))];
      job.spec = ModelSpec{family, sizes[size_idx], batch};

      const size_t type_idx = rng.WeightedIndex(type_weights);
      job.requested_type = types[type_idx];
      const int cap = std::min(config.max_request_gpus,
                               static_cast<int>(FloorPowerOfTwo(
                                   cluster.TotalGpus(job.requested_type))));
      const int min_gpus = MinFeasibleGpus(oracle, job.spec, job.requested_type, cap);
      if (min_gpus == 0) {
        continue;  // model too large for this type; redraw
      }
      // Users habitually over-request (the Philly analysis): most jobs ask for
      // 2-4x the share they can efficiently use, which is the headroom elastic
      // schedulers reclaim.
      const int scale = 1 << rng.WeightedIndex({0.30, 0.40, 0.30});
      job.requested_gpus = std::min(cap, min_gpus * scale);
      break;
    }

    // --- Duration / iterations ------------------------------------------------
    // Log-normal ideal duration; heavy upper tail, clamped to the trace scale.
    const double median = std::min(config.duration * 0.15, 45.0 * kMinute);
    const double d_raw = rng.LogNormal(std::log(median), 1.1);
    const double d_min = 4.0 * kMinute;
    const double d_max = config.duration * 1.5;
    ideal_durations.push_back(std::clamp(d_raw, d_min, d_max));
    gpu_seconds_accum += ideal_durations.back() * job.requested_gpus;

    // --- Arrival ---------------------------------------------------------------
    // Rejection-sample arrival times against the intensity profile.
    double t = 0.0;
    for (;;) {
      t = rng.Uniform(0.0, config.duration);
      const double intensity = ArrivalIntensity(t, config.duration, config.burstiness);
      if (rng.Uniform() * 3.5 < intensity) {
        break;
      }
    }
    job.submit_time = t;
    jobs.push_back(job);
  }

  // Rescale durations so the realized offered load matches config.load.
  const double target_gpu_seconds =
      config.load * static_cast<double>(cluster.TotalGpus()) * config.duration;
  const double scale = target_gpu_seconds / gpu_seconds_accum;
  for (size_t i = 0; i < jobs.size(); ++i) {
    TrainingJob& job = jobs[i];
    const double ideal = std::max(4.0 * kMinute, ideal_durations[i] * scale);
    const double thr =
        oracle.AdaptiveThroughput(job.spec, job.requested_type, job.requested_gpus);
    CRIUS_CHECK(thr > 0.0);
    const double iter_time = static_cast<double>(job.spec.global_batch) / thr;
    job.iterations = std::max<int64_t>(20, static_cast<int64_t>(ideal / iter_time));

    if (config.deadline_fraction > 0.0 && rng.Uniform() < config.deadline_fraction) {
      const double slack = rng.Uniform(config.deadline_slack_min, config.deadline_slack_max);
      job.deadline = job.submit_time + slack * ideal + 0.5 * kHour;
    }
  }

  std::stable_sort(jobs.begin(), jobs.end(), [](const TrainingJob& a, const TrainingJob& b) {
    return a.submit_time < b.submit_time;
  });
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<int64_t>(i);
  }
  return jobs;
}

std::map<std::string, int> ModelSizeHistogram(const std::vector<TrainingJob>& trace) {
  std::map<std::string, int> hist;
  for (const TrainingJob& job : trace) {
    ++hist[job.spec.Name()];
  }
  return hist;
}

}  // namespace crius
