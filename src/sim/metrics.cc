#include "src/sim/metrics.h"

#include <algorithm>

#include "src/util/stats.h"

namespace crius {

const char* SimEvent::KindName(Kind kind) {
  switch (kind) {
    case Kind::kStart:
      return "start";
    case Kind::kRestart:
      return "restart";
    case Kind::kMigrate:
      return "migrate";
    case Kind::kPreempt:
      return "preempt";
    case Kind::kFinish:
      return "finish";
    case Kind::kDrop:
      return "drop";
    case Kind::kCancel:
      return "cancel";
    case Kind::kFailureKill:
      return "failure_kill";
    case Kind::kNodeFail:
      return "node_fail";
    case Kind::kNodeRecover:
      return "node_recover";
    case Kind::kStragglerStart:
      return "straggler_start";
    case Kind::kStragglerEnd:
      return "straggler_end";
  }
  return "?";
}

bool SimEvent::IsClusterKind(Kind kind) {
  switch (kind) {
    case Kind::kNodeFail:
    case Kind::kNodeRecover:
    case Kind::kStragglerStart:
    case Kind::kStragglerEnd:
      return true;
    default:
      return false;
  }
}

void SimResult::Finalize() {
  std::vector<double> jcts;
  std::vector<double> queues;
  std::vector<double> slowdowns;
  double restarts = 0.0;
  double sched_restarts_sum = 0.0;
  double failure_restarts_sum = 0.0;
  int deadline_total = 0;
  int deadline_met = 0;
  finished_jobs = 0;
  dropped_jobs = 0;
  unfinished_jobs = 0;
  makespan = 0.0;

  for (const JobRecord& r : jobs) {
    if (r.dropped) {
      ++dropped_jobs;
    } else if (r.finished) {
      ++finished_jobs;
      jcts.push_back(r.jct());
      queues.push_back(std::max(0.0, r.queue_time()));
      if (r.ideal_duration > 0.0) {
        slowdowns.push_back(std::max(1.0, r.jct() / r.ideal_duration));
      }
      restarts += static_cast<double>(r.restarts);
      sched_restarts_sum += static_cast<double>(r.sched_restarts);
      failure_restarts_sum += static_cast<double>(r.failure_restarts);
      makespan = std::max(makespan, r.finish);
    } else {
      ++unfinished_jobs;
    }
    if (!r.finished && r.last_event > 0.0) {
      // Dropped / unfinished jobs extend the activity horizon too.
      makespan = std::max(makespan, r.last_event);
    }
    if (r.had_deadline) {
      ++deadline_total;
      if (r.deadline_met) {
        ++deadline_met;
      }
    }
  }

  if (!jcts.empty()) {
    avg_jct = Mean(jcts);
    median_jct = Median(jcts);
    max_jct = Max(jcts);
    p95_jct = Percentile(jcts, 95.0);
    p99_jct = Percentile(jcts, 99.0);
    avg_queue_time = Mean(queues);
    p50_queue_time = Median(queues);
    p95_queue_time = Percentile(queues, 95.0);
    p99_queue_time = Percentile(queues, 99.0);
    avg_restarts = restarts / static_cast<double>(finished_jobs);
    avg_sched_restarts = sched_restarts_sum / static_cast<double>(finished_jobs);
    avg_failure_restarts = failure_restarts_sum / static_cast<double>(finished_jobs);
  }
  deadline_ratio =
      deadline_total > 0 ? static_cast<double>(deadline_met) / deadline_total : 0.0;

  if (!slowdowns.empty()) {
    avg_slowdown = Mean(slowdowns);
    p99_slowdown = Percentile(slowdowns, 99.0);
    // Jain's index over service rates (1 / slowdown).
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double s : slowdowns) {
      const double rate = 1.0 / s;
      sum += rate;
      sum_sq += rate * rate;
    }
    fairness_index = sum * sum / (static_cast<double>(slowdowns.size()) * sum_sq);
  }

  if (!timeline.empty()) {
    std::vector<double> thr;
    thr.reserve(timeline.size());
    double busy = 0.0;
    for (const ThroughputSample& s : timeline) {
      thr.push_back(s.normalized_throughput);
      busy += static_cast<double>(s.busy_gpus);
    }
    avg_throughput = Mean(thr);
    peak_throughput = Max(thr);
    if (cluster_gpus > 0) {
      avg_gpu_utilization = busy / static_cast<double>(timeline.size()) / cluster_gpus;
    }
  }

  goodput = total_gpu_seconds > 0.0 ? useful_gpu_seconds / total_gpu_seconds : 1.0;
  if (!recovery_latencies.empty()) {
    avg_recovery_latency = Mean(recovery_latencies);
    p95_recovery_latency = Percentile(recovery_latencies, 95.0);
  }
}

}  // namespace crius
