#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "src/core/cell.h"
#include "src/parallel/perf_model.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"
#include "src/util/trace.h"

namespace crius {

namespace {

constexpr double kEps = 1e-6;

// Simulator-internal per-job bookkeeping on top of the scheduler-visible
// JobState.
struct SimJob {
  JobState state;
  Allocation alloc;          // concrete node grant while running
  double schedulable_at = 0.0;  // submit + profiling delay
  double reference_throughput = 0.0;
  bool started_once = false;
  // Arrival RoundEvent already emitted (first round the job was visible).
  bool announced = false;
  // Last simulation time the job's state changed (JobRecord::last_event).
  double last_event = -1.0;

  // --- Fault-model bookkeeping (src/fault) ---------------------------------
  // Plan iteration time incl. execution jitter, excl. checkpoint overhead and
  // straggler factors; the rate "useful work" is valued at.
  double base_iter_time = 0.0;
  // Checkpoint cadence and its steady-state overhead factor for this segment.
  double ckpt_interval = 0.0;
  double ckpt_factor = 1.0;
  // Current allocation segment: grant time and progress at grant.
  double grant_time = 0.0;
  double segment_start_iters = 0.0;
  // Set when a hardware failure killed the job; the next launch is a
  // failure-initiated restart and closes the recovery-latency measurement.
  bool failure_restart_pending = false;
  double killed_at = -1.0;
  int sched_restarts = 0;
  int failure_restarts = 0;
};

const char* CounterNameFor(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kStart:
      return "sim.starts";
    case SimEvent::Kind::kRestart:
      return "sim.restarts";
    case SimEvent::Kind::kPreempt:
      return "sim.preempts";
    case SimEvent::Kind::kFinish:
      return "sim.finishes";
    case SimEvent::Kind::kDrop:
      return "sim.drops";
    case SimEvent::Kind::kFailureKill:
      return "sim.failure_kills";
    case SimEvent::Kind::kNodeFail:
      return "sim.node_fails";
    case SimEvent::Kind::kNodeRecover:
      return "sim.node_recovers";
    case SimEvent::Kind::kStragglerStart:
      return "sim.straggler_starts";
    case SimEvent::Kind::kStragglerEnd:
      return "sim.straggler_ends";
  }
  return "sim.events";
}

}  // namespace

std::vector<std::string> SimConfig::Validate(const Cluster& cluster) const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const std::string& message) {
    if (!ok) {
      errors.push_back(message);
    }
  };
  require(schedule_interval > 0.0, "non-positive schedule_interval");
  require(restart_overhead >= 0.0, "negative restart_overhead");
  require(checkpoint_bandwidth >= 0.0, "negative checkpoint_bandwidth");
  require(max_time_factor >= 0.0, "negative max_time_factor");
  require(execution_jitter >= 0.0, "negative execution_jitter");
  require(checkpoint.interval >= 0.0, "negative checkpoint interval");
  require(checkpoint.cost >= 0.0, "negative checkpoint cost");
  require(node_mtbf >= 0.0, "negative node_mtbf");
  const int num_nodes = static_cast<int>(cluster.nodes().size());
  for (const FailureEvent& e : failures) {
    require(e.time >= 0.0, "failure event with negative time");
    require(e.node_id >= 0 && e.node_id < num_nodes,
            "failure event for unknown node " + std::to_string(e.node_id));
  }
  return errors;
}

Simulator::Simulator(const Cluster& cluster, SimConfig config)
    : cluster_template_(cluster), config_(std::move(config)) {
  const std::vector<std::string> errors = config_.Validate(cluster_template_);
  if (!errors.empty()) {
    std::ostringstream joined;
    for (size_t i = 0; i < errors.size(); ++i) {
      joined << (i > 0 ? "; " : "") << errors[i];
    }
    CRIUS_CHECK_MSG(false, "invalid SimConfig: " << joined.str());
  }
  SortFailureSchedule(config_.failures);
}

SimResult Simulator::Run(Scheduler& scheduler, PerformanceOracle& oracle,
                         const std::vector<TrainingJob>& trace) {
  Cluster cluster = cluster_template_;
  SimResult result;
  result.scheduler = scheduler.name();

  CRIUS_TRACE_SPAN_ARGS("sim.run", "{\"jobs\": " + std::to_string(trace.size()) + "}");
  CRIUS_COUNTER_INC("sim.runs");

  std::vector<SimJob> jobs(trace.size());
  // Startup prepass: per-job profiling delay and reference throughput dominate
  // cold-start time (they fault in the oracle's explorer/estimator caches).
  // Both are pure functions of (job, cluster), so they fan out over the global
  // pool into per-job slots; observability records and feasibility checks then
  // run sequentially so output is identical across thread counts.
  std::vector<double> profile_delays(trace.size(), 0.0);
  std::vector<double> ref_throughputs(trace.size(), 0.0);
  {
    CRIUS_TRACE_SPAN_ARGS("sim.startup_prepass",
                          "{\"jobs\": " + std::to_string(trace.size()) + "}");
    ThreadPool::Global().ParallelFor(trace.size(), [&](size_t i) {
      if (config_.charge_profiling) {
        profile_delays[i] = scheduler.ProfilingDelay(trace[i], cluster);
      }
      ref_throughputs[i] = ReferenceThroughput(oracle, cluster, trace[i]);
    });
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    jobs[i].state.job = trace[i];
    jobs[i].state.phase = JobPhase::kQueued;
    if (config_.charge_profiling) {
      CRIUS_HISTOGRAM_RECORD("sim.profile_delay_s", profile_delays[i]);
    }
    jobs[i].schedulable_at = trace[i].submit_time + profile_delays[i];
    jobs[i].reference_throughput = ref_throughputs[i];
    CRIUS_CHECK_MSG(jobs[i].reference_throughput > 0.0,
                    "trace job " << trace[i].id << " infeasible everywhere");
  }

  double trace_end = 0.0;
  for (const TrainingJob& job : trace) {
    trace_end = std::max(trace_end, job.submit_time);
  }
  const double max_time = std::max(trace_end, 1.0) * config_.max_time_factor +
                          24.0 * kHour;

  // Typed deltas accumulated since the scheduler last ran, handed to it in
  // the next RoundContext. Every job transition and cluster-health mutation
  // below appends here (the RoundContext completeness contract), so
  // incremental schedulers may trust the delta instead of re-deriving state.
  std::vector<RoundEvent> round_events;

  // Advances a running job's progress from t0 to t1.
  auto advance = [&](SimJob& sj, double t0, double t1) {
    if (sj.state.phase != JobPhase::kRunning) {
      return;
    }
    const double from = std::max(t0, sj.state.blocked_until);
    if (from >= t1 || sj.state.iter_time <= 0.0) {
      return;
    }
    sj.state.iters_done += (t1 - from) / sj.state.iter_time;
  };

  // Exact completion time of a running job; +inf otherwise.
  auto completion_time = [&](const SimJob& sj, double now) {
    if (sj.state.phase != JobPhase::kRunning || sj.state.iter_time <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    const double from = std::max(now, sj.state.blocked_until);
    return from + sj.state.remaining_iters() * sj.state.iter_time;
  };

  auto record = [&](SimJob& sj, double time, SimEvent::Kind kind,
                    std::string placement = "") {
    CounterRegistry::Global().GetCounter(CounterNameFor(kind)).Add(1);
    sj.last_event = time;
    if (config_.record_events) {
      result.events.push_back(SimEvent{time, kind, sj.state.job.id, std::move(placement)});
    }
  };

  // Cluster-health events carry the node id in the job_id field.
  auto record_cluster = [&](double time, SimEvent::Kind kind, int node_id,
                            std::string detail) {
    CounterRegistry::Global().GetCounter(CounterNameFor(kind)).Add(1);
    if (config_.record_events) {
      result.events.push_back(SimEvent{time, kind, node_id, std::move(detail)});
    }
  };

  // Closes the GPU-second ledger for a job's current allocation segment at
  // time `t`. Every iteration gained in the segment survived, valued at the
  // plan's base rate; the rest of the hold time (restart stall, checkpoint
  // writes, straggler stretch) is overhead.
  auto settle_segment = [&](SimJob& sj, double t) {
    const double held = (t - sj.grant_time) * static_cast<double>(sj.state.ngpus);
    result.total_gpu_seconds += held;
    const double gained = sj.state.iters_done - sj.segment_start_iters;
    result.useful_gpu_seconds +=
        gained * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
  };

  // Same, but a hardware failure ends the segment: progress since the last
  // completed checkpoint is destroyed (all of it when checkpointing is off)
  // and rolls iters_done back, landing in the lost-work ledger.
  auto settle_segment_failed = [&](SimJob& sj, double t) {
    const double held = (t - sj.grant_time) * static_cast<double>(sj.state.ngpus);
    result.total_gpu_seconds += held;
    const double gained = sj.state.iters_done - sj.segment_start_iters;
    double preserved = 0.0;
    if (gained > 0.0 && sj.state.iter_time > 0.0) {
      // Checkpoints complete every ckpt_interval seconds of wall progress.
      const double progress_seconds = gained * sj.state.iter_time;
      preserved =
          PreservedProgress(sj.ckpt_interval, progress_seconds) / sj.state.iter_time;
    }
    const double lost = gained - preserved;
    sj.state.iters_done = sj.segment_start_iters + preserved;
    result.useful_gpu_seconds +=
        preserved * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
    result.lost_gpu_seconds +=
        lost * sj.base_iter_time * static_cast<double>(sj.state.ngpus);
    CRIUS_HISTOGRAM_RECORD("sim.lost_iters_per_kill", lost);
  };

  // Kills a running job whose hardware failed: rolls progress back to the last
  // checkpoint, releases the grant, and requeues it for the recovery round.
  auto kill_job = [&](SimJob& sj, double now) {
    settle_segment_failed(sj, now);
    cluster.Release(sj.alloc);
    sj.alloc = Allocation{};
    sj.state.phase = JobPhase::kQueued;
    sj.state.ngpus = 0;
    sj.state.nstages = 0;
    sj.state.iter_time = 0.0;
    sj.failure_restart_pending = true;
    sj.killed_at = now;
    ++result.failure_kills;
    record(sj, now, SimEvent::Kind::kFailureKill);
    round_events.push_back(RoundEvent::JobPhaseChange(sj.state.job.id));
  };

  // Re-derives the realized iteration time of every running job touching
  // `node_id` after its straggler factor changed.
  auto refresh_slowdowns = [&](int node_id) {
    for (SimJob& sj : jobs) {
      if (sj.state.phase != JobPhase::kRunning) {
        continue;
      }
      bool touches = false;
      for (const auto& [id, count] : sj.alloc.node_gpus) {
        (void)count;
        touches = touches || id == node_id;
      }
      if (touches) {
        sj.state.iter_time = DegradedIterTime(sj.base_iter_time * sj.ckpt_factor,
                                              cluster.MaxSlowdown(sj.alloc));
      }
    }
  };

  // Applies one cluster-health event at time `now`. Returns true when the
  // change warrants an immediate scheduling round.
  auto apply_fault = [&](const FailureEvent& e, double now) {
    const NodeInfo& node = cluster.nodes()[e.node_id];
    switch (e.kind) {
      case FailureKind::kNodeFail:
      case FailureKind::kGpuFail: {
        const int usable_on_node = node.total_gpus - node.failed_gpus;
        const int want = std::min(
            e.kind == FailureKind::kGpuFail ? std::max(1, e.gpus) : usable_on_node,
            usable_on_node);
        if (want <= 0) {
          return false;  // node already fully failed
        }
        // Allocated devices cannot fail in place: any job holding GPUs on the
        // node aborts (NCCL-style collective failure), freeing them. Lowest
        // job id first for determinism.
        while (cluster.nodes()[e.node_id].free_gpus < want) {
          SimJob* victim = nullptr;
          for (SimJob& sj : jobs) {
            if (sj.state.phase != JobPhase::kRunning) {
              continue;
            }
            for (const auto& [id, count] : sj.alloc.node_gpus) {
              (void)count;
              if (id == e.node_id && (victim == nullptr ||
                                      sj.state.job.id < victim->state.job.id)) {
                victim = &sj;
              }
            }
          }
          if (victim == nullptr) {
            break;  // nothing left to kill; clamp to what is free
          }
          kill_job(*victim, now);
        }
        const int failed = cluster.MarkFailed(e.node_id, want);
        ++result.failure_events;
        record_cluster(now, SimEvent::Kind::kNodeFail, e.node_id,
                       GpuName(node.type) + "x" + std::to_string(failed));
        round_events.push_back(RoundEvent::NodeFail(e.node_id, node.type));
        return true;
      }
      case FailureKind::kNodeRecover:
      case FailureKind::kGpuRecover: {
        const int recovered = cluster.MarkRecovered(
            e.node_id, e.kind == FailureKind::kGpuRecover ? std::max(1, e.gpus) : 0);
        if (recovered == 0) {
          return false;
        }
        record_cluster(now, SimEvent::Kind::kNodeRecover, e.node_id,
                       GpuName(node.type) + "x" + std::to_string(recovered));
        round_events.push_back(RoundEvent::NodeRecover(e.node_id, node.type));
        return true;
      }
      case FailureKind::kStragglerStart: {
        cluster.SetNodeSlowdown(e.node_id, std::max(1.0, e.slowdown));
        refresh_slowdowns(e.node_id);
        std::ostringstream factor;
        factor << "x" << std::max(1.0, e.slowdown);
        record_cluster(now, SimEvent::Kind::kStragglerStart, e.node_id, factor.str());
        round_events.push_back(
            RoundEvent::SlowdownChange(e.node_id, node.type, std::max(1.0, e.slowdown)));
        return true;
      }
      case FailureKind::kStragglerEnd: {
        cluster.SetNodeSlowdown(e.node_id, 1.0);
        refresh_slowdowns(e.node_id);
        record_cluster(now, SimEvent::Kind::kStragglerEnd, e.node_id, "");
        round_events.push_back(RoundEvent::SlowdownChange(e.node_id, node.type, 1.0));
        return true;
      }
    }
    return false;
  };

  // Applies one scheduling decision at time `now`.
  auto apply_decision = [&](double now, const ScheduleDecision& decision) {
    // Reject contradictory decisions outright: a job both assigned and
    // dropped would be started and then torn down in the same round, which is
    // never what a scheduler means.
    for (int64_t id : decision.dropped) {
      CRIUS_CHECK_MSG(decision.assignments.find(id) == decision.assignments.end(),
                      scheduler.name() << " decision both assigns and drops job " << id);
    }

    // Drops first.
    for (int64_t id : decision.dropped) {
      SimJob& sj = jobs[static_cast<size_t>(id)];
      if (sj.state.phase == JobPhase::kQueued) {
        sj.state.phase = JobPhase::kDropped;
        record(sj, now, SimEvent::Kind::kDrop);
        round_events.push_back(RoundEvent::JobDrop(sj.state.job.id));
      }
    }

    // Releases: running jobs whose assignment vanished or changed.
    std::vector<std::pair<size_t, Assignment>> to_start;
    for (size_t i = 0; i < jobs.size(); ++i) {
      SimJob& sj = jobs[i];
      if (sj.state.phase != JobPhase::kRunning && sj.state.phase != JobPhase::kQueued) {
        continue;
      }
      if (now < sj.schedulable_at) {
        continue;
      }
      const auto it = decision.assignments.find(sj.state.job.id);
      if (sj.state.phase == JobPhase::kRunning) {
        const bool keep = it != decision.assignments.end() && it->second.type == sj.state.gpu_type &&
                          it->second.ngpus == sj.state.ngpus &&
                          (it->second.nstages == 0 || it->second.nstages == sj.state.nstages);
        if (keep) {
          sj.state.opportunistic = it->second.opportunistic;
          continue;
        }
        // Preempt / reschedule: release now, maybe restart below.
        settle_segment(sj, now);
        cluster.Release(sj.alloc);
        sj.alloc = Allocation{};
        sj.state.phase = JobPhase::kQueued;
        sj.state.ngpus = 0;
        sj.state.nstages = 0;
        sj.state.iter_time = 0.0;
        if (it == decision.assignments.end()) {
          record(sj, now, SimEvent::Kind::kPreempt);
          round_events.push_back(RoundEvent::JobPhaseChange(sj.state.job.id));
        }
      }
      if (it != decision.assignments.end()) {
        to_start.emplace_back(i, it->second);
      }
    }

    // Starts / restarts.
    for (const auto& [i, a] : to_start) {
      SimJob& sj = jobs[i];
      CRIUS_CHECK(sj.state.phase == JobPhase::kQueued);
      CRIUS_CHECK_MSG(a.ngpus > 0, "empty assignment for job " << sj.state.job.id);
      auto alloc = cluster.Allocate(a.type, a.ngpus);
      CRIUS_CHECK_MSG(alloc.has_value(), scheduler.name()
                                             << " oversubscribed " << GpuName(a.type) << " by job "
                                             << sj.state.job.id);
      double iter_time = 0.0;
      if (a.nstages > 0) {
        // Crius: run the Cell-guided tuned plan.
        const Cell cell{a.type, a.ngpus, a.nstages};
        const TuneResult& tuned = oracle.TuneCell(sj.state.job.spec, cell);
        if (tuned.best.has_value()) {
          iter_time = tuned.best->iter_time;
        }
      }
      if (iter_time <= 0.0) {
        const std::optional<PlanChoice>& best =
            oracle.BestAdaptive(sj.state.job.spec, a.type, a.ngpus);
        CRIUS_CHECK_MSG(best.has_value(), scheduler.name()
                                              << " scheduled infeasible shape for job "
                                              << sj.state.job.id);
        iter_time = best->iter_time;
      }
      if (config_.execution_jitter > 0.0) {
        uint64_t key = static_cast<uint64_t>(sj.state.job.id);
        key = HashCombine(key, static_cast<uint64_t>(a.type));
        key = HashCombine(key, static_cast<uint64_t>(a.ngpus));
        iter_time *= HashJitter(config_.jitter_seed, key, config_.execution_jitter);
      }

      sj.alloc = std::move(*alloc);
      sj.state.phase = JobPhase::kRunning;
      sj.state.gpu_type = a.type;
      sj.state.ngpus = a.ngpus;
      sj.state.nstages = a.nstages;
      // Realized rate: plan latency, stretched by the periodic-checkpoint
      // overhead and the worst straggler among the granted nodes.
      sj.base_iter_time = iter_time;
      sj.ckpt_interval = EffectiveCheckpointInterval(config_.checkpoint, config_.node_mtbf,
                                                     sj.alloc.num_nodes());
      sj.ckpt_factor = CheckpointOverheadFactor(sj.ckpt_interval, config_.checkpoint.cost);
      sj.state.iter_time =
          DegradedIterTime(iter_time * sj.ckpt_factor, cluster.MaxSlowdown(sj.alloc));
      sj.state.opportunistic = a.opportunistic;
      sj.grant_time = now;
      sj.segment_start_iters = sj.state.iters_done;
      double restart_cost = config_.restart_overhead;
      if (config_.checkpoint_bandwidth > 0.0) {
        restart_cost += 2.0 * GetOpGraph(sj.state.job.spec).TotalParamBytes() /
                        config_.checkpoint_bandwidth;
      }
      CRIUS_HISTOGRAM_RECORD("sim.restart_cost_s", restart_cost);
      sj.state.blocked_until = now + restart_cost;
      const Cell placement{a.type, a.ngpus, std::max(1, a.nstages)};
      if (!sj.started_once) {
        sj.started_once = true;
        sj.state.first_start = now;
        record(sj, now, SimEvent::Kind::kStart, placement.ToString());
      } else {
        ++sj.state.num_restarts;
        if (sj.failure_restart_pending) {
          sj.failure_restart_pending = false;
          ++sj.failure_restarts;
          // Recovery ends when the job computes again, not when it is placed.
          const double latency = sj.state.blocked_until - sj.killed_at;
          result.recovery_latencies.push_back(latency);
          CRIUS_HISTOGRAM_RECORD("sim.recovery_latency_s", latency);
        } else {
          ++sj.sched_restarts;
        }
        record(sj, now, SimEvent::Kind::kRestart, placement.ToString());
      }
    }
  };

  // Runs one scheduler invocation over the currently visible jobs. The
  // accumulated round_events delta is handed over and reset; when no job is
  // visible the delta stays pending for the next real invocation so the
  // scheduler never misses a transition.
  auto run_scheduler = [&](double now) {
    std::vector<const JobState*> visible;
    for (SimJob& sj : jobs) {
      if ((sj.state.phase == JobPhase::kQueued && now + kEps >= sj.schedulable_at &&
           now + kEps >= sj.state.job.submit_time) ||
          sj.state.phase == JobPhase::kRunning) {
        visible.push_back(&sj.state);
        if (!sj.announced) {
          sj.announced = true;
          round_events.push_back(RoundEvent::JobArrival(sj.state.job.id));
        }
      }
    }
    if (visible.empty()) {
      return;
    }
    CRIUS_TRACE_SPAN_ARGS("sim.schedule",
                          "{\"t\": " + std::to_string(now) +
                              ", \"visible_jobs\": " + std::to_string(visible.size()) + "}");
    CRIUS_COUNTER_INC("sim.sched_invocations");
    const RoundContext round(now, std::move(visible), cluster, std::move(round_events));
    round_events.clear();  // moved-from; restart the next round's delta empty
    const ScheduleDecision decision = scheduler.Schedule(round);
    apply_decision(now, decision);
  };

  auto sample_throughput = [&](double now) {
    ThroughputSample sample;
    sample.time = now;
    sample.usable_gpus = cluster.UsableGpus();
    for (const SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kRunning) {
        ++sample.running_jobs;
        sample.busy_gpus += sj.state.ngpus;
        if (now >= sj.state.blocked_until && sj.state.iter_time > 0.0) {
          const double thr =
              static_cast<double>(sj.state.job.spec.global_batch) / sj.state.iter_time;
          sample.normalized_throughput += thr / sj.reference_throughput;
        }
      } else if (sj.state.phase == JobPhase::kQueued && now >= sj.state.job.submit_time) {
        ++sample.queued_jobs;
      }
    }
    result.timeline.push_back(sample);
  };

  // --- Main loop --------------------------------------------------------------
  double now = 0.0;
  double next_round = 0.0;
  size_t next_failure = 0;
  int live = static_cast<int>(jobs.size());
  while (live > 0 && now < max_time) {
    // Next event: round boundary, earliest completion, or cluster-health
    // change.
    double next_completion = std::numeric_limits<double>::infinity();
    for (const SimJob& sj : jobs) {
      next_completion = std::min(next_completion, completion_time(sj, now));
    }
    double t_next = std::min(next_round, next_completion);
    if (next_failure < config_.failures.size()) {
      t_next = std::min(t_next, config_.failures[next_failure].time);
    }
    CRIUS_CHECK(t_next < std::numeric_limits<double>::infinity());

    for (SimJob& sj : jobs) {
      advance(sj, now, t_next);
    }
    now = t_next;

    // Completions (SchedDeparture).
    bool departed = false;
    for (SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kRunning &&
          sj.state.iters_done + kEps >= static_cast<double>(sj.state.job.iterations)) {
        settle_segment(sj, now);
        cluster.Release(sj.alloc);
        sj.alloc = Allocation{};
        sj.state.phase = JobPhase::kFinished;
        sj.state.finish_time = now;
        record(sj, now, SimEvent::Kind::kFinish);
        round_events.push_back(RoundEvent::JobDeparture(sj.state.job.id));
        departed = true;
      }
    }
    if (departed) {
      run_scheduler(now);
    }

    // Cluster-health changes: kill affected jobs, then re-schedule immediately
    // against the surviving hardware (Crius re-derives Cells; baselines
    // requeue).
    bool churn = false;
    while (next_failure < config_.failures.size() &&
           config_.failures[next_failure].time <= now + kEps) {
      churn = apply_fault(config_.failures[next_failure], now) || churn;
      ++next_failure;
    }
    if (churn) {
      run_scheduler(now);
    }

    // Round boundary (SchedArrival + periodic rescheduling).
    if (now + kEps >= next_round) {
      run_scheduler(now);
      sample_throughput(now);
      next_round += config_.schedule_interval;
      // Per-round chatter: kInfo when the caller asked for it, kDebug
      // otherwise so CRIUS_LOG_LEVEL=debug surfaces it without a code change.
      {
        std::ostringstream round_msg;
        round_msg << scheduler.name() << " t=" << now << " live=" << live;
        LogMessage(config_.verbose ? LogLevel::kInfo : LogLevel::kDebug,
                   round_msg.str());
      }
    }

    live = 0;
    for (const SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
        ++live;
      }
    }
  }

  // --- Records -----------------------------------------------------------------
  for (SimJob& sj : jobs) {
    // Jobs still live when the simulation stopped were last observed now; any
    // still-held grant settles its GPU-second ledger at the horizon.
    if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
      sj.last_event = now;
      if (sj.state.phase == JobPhase::kRunning) {
        settle_segment(sj, now);
      }
    }
  }
  for (const SimJob& sj : jobs) {
    JobRecord r;
    r.id = sj.state.job.id;
    r.submit = sj.state.job.submit_time;
    r.first_start = sj.state.first_start;
    r.finish = sj.state.finish_time;
    r.ideal_duration = static_cast<double>(sj.state.job.iterations) *
                       static_cast<double>(sj.state.job.spec.global_batch) /
                       sj.reference_throughput;
    r.last_event = sj.last_event;
    r.restarts = sj.state.num_restarts;
    r.sched_restarts = sj.sched_restarts;
    r.failure_restarts = sj.failure_restarts;
    r.finished = sj.state.phase == JobPhase::kFinished;
    r.dropped = sj.state.phase == JobPhase::kDropped;
    r.had_deadline = sj.state.job.deadline.has_value();
    r.deadline_met = r.finished && r.had_deadline && r.finish <= *sj.state.job.deadline;
    result.jobs.push_back(r);
  }
  result.cluster_gpus = cluster.TotalGpus();
  result.Finalize();
  return result;
}

}  // namespace crius
