#include "src/sim/simulator.h"

#include <sstream>
#include <string>

#include "src/sim/engine.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/threadpool.h"
#include "src/util/trace.h"

namespace crius {

std::vector<std::string> SimConfig::Validate(const Cluster& cluster) const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const std::string& message) {
    if (!ok) {
      errors.push_back(message);
    }
  };
  require(schedule_interval > 0.0, "non-positive schedule_interval");
  require(restart_overhead >= 0.0, "negative restart_overhead");
  require(checkpoint_bandwidth >= 0.0, "negative checkpoint_bandwidth");
  require(max_time_factor >= 0.0, "negative max_time_factor");
  require(execution_jitter >= 0.0, "negative execution_jitter");
  require(checkpoint.interval >= 0.0, "negative checkpoint interval");
  require(checkpoint.cost >= 0.0, "negative checkpoint cost");
  require(node_mtbf >= 0.0, "negative node_mtbf");
  if (reconfig.enabled) {
    require(reconfig.hysteresis_margin >= 0.0, "negative reconfig hysteresis_margin");
    require(reconfig.min_relative_gain >= 0.0, "negative reconfig min_relative_gain");
    require(reconfig.cooldown >= 0.0, "negative reconfig cooldown");
    require(reconfig.max_migrations_per_round >= 0,
            "negative reconfig max_migrations_per_round");
    require(reconfig.arrival_burst >= 1, "reconfig arrival_burst below 1");
    require(reconfig.distress_factor >= 1.0, "reconfig distress_factor below 1");
    require(reconfig.cost.restart_overhead >= 0.0, "negative reconfig restart_overhead");
    require(reconfig.cost.checkpoint_bandwidth >= 0.0,
            "negative reconfig checkpoint_bandwidth");
    require(reconfig.cost.checkpoint_cost >= 0.0, "negative reconfig checkpoint_cost");
    require(reconfig.cost.warmup_base >= 0.0, "negative reconfig warmup_base");
    require(reconfig.cost.warmup_per_gpu >= 0.0, "negative reconfig warmup_per_gpu");
  }
  const int num_nodes = static_cast<int>(cluster.nodes().size());
  for (const FailureEvent& e : failures) {
    require(e.time >= 0.0, "failure event with negative time");
    require(e.node_id >= 0 && e.node_id < num_nodes,
            "failure event for unknown node " + std::to_string(e.node_id));
  }
  for (const JobCancelEvent& e : cancels) {
    require(e.time >= 0.0, "cancel event with negative time");
  }
  return errors;
}

Simulator::Simulator(const Cluster& cluster, SimConfig config)
    : cluster_template_(cluster), config_(std::move(config)) {
  const std::vector<std::string> errors = config_.Validate(cluster_template_);
  if (!errors.empty()) {
    std::ostringstream joined;
    for (size_t i = 0; i < errors.size(); ++i) {
      joined << (i > 0 ? "; " : "") << errors[i];
    }
    CRIUS_CHECK_MSG(false, "invalid SimConfig: " << joined.str());
  }
  SortFailureSchedule(config_.failures);
}

SimResult Simulator::Run(Scheduler& scheduler, PerformanceOracle& oracle,
                         const std::vector<TrainingJob>& trace) {
  CRIUS_TRACE_SPAN_ARGS("sim.run", "{\"jobs\": " + std::to_string(trace.size()) + "}");
  CRIUS_COUNTER_INC("sim.runs");

  SimEngine engine(cluster_template_, config_, scheduler, oracle);

  // Startup prepass: per-job profiling delay and reference throughput dominate
  // cold-start time (they fault in the oracle's explorer/estimator caches).
  // Both are pure functions of (job, cluster), so they fan out over the global
  // pool into per-job slots; observability records and feasibility checks then
  // run sequentially (inside AddJob) so output is identical across thread
  // counts.
  std::vector<double> profile_delays(trace.size(), 0.0);
  std::vector<double> ref_throughputs(trace.size(), 0.0);
  {
    CRIUS_TRACE_SPAN_ARGS("sim.startup_prepass",
                          "{\"jobs\": " + std::to_string(trace.size()) + "}");
    // The engine's working cluster copy (still pristine here) rather than the
    // template: CriusScheduler keys its cells memo on Cluster::identity(), so
    // warming against the copy the rounds will actually see keeps the prepass
    // cache-priming effective.
    const Cluster& cluster = engine.cluster();
    ThreadPool::Global().ParallelFor(trace.size(), [&](size_t i) {
      if (config_.charge_profiling) {
        profile_delays[i] = scheduler.ProfilingDelay(trace[i], cluster);
      }
      ref_throughputs[i] = ReferenceThroughput(oracle, cluster, trace[i]);
    });
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    engine.AddJob(trace[i], profile_delays[i], ref_throughputs[i]);
  }

  engine.Drain();
  return engine.Finish();
}

}  // namespace crius
