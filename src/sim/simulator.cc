#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "src/core/cell.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/trace.h"

namespace crius {

namespace {

constexpr double kEps = 1e-6;

// Simulator-internal per-job bookkeeping on top of the scheduler-visible
// JobState.
struct SimJob {
  JobState state;
  Allocation alloc;          // concrete node grant while running
  double schedulable_at = 0.0;  // submit + profiling delay
  double reference_throughput = 0.0;
  bool started_once = false;
  // Last simulation time the job's state changed (JobRecord::last_event).
  double last_event = -1.0;
};

const char* CounterNameFor(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kStart:
      return "sim.starts";
    case SimEvent::Kind::kRestart:
      return "sim.restarts";
    case SimEvent::Kind::kPreempt:
      return "sim.preempts";
    case SimEvent::Kind::kFinish:
      return "sim.finishes";
    case SimEvent::Kind::kDrop:
      return "sim.drops";
  }
  return "sim.events";
}

}  // namespace

Simulator::Simulator(const Cluster& cluster, SimConfig config)
    : cluster_template_(cluster), config_(config) {}

SimResult Simulator::Run(Scheduler& scheduler, PerformanceOracle& oracle,
                         const std::vector<TrainingJob>& trace) {
  Cluster cluster = cluster_template_;
  SimResult result;
  result.scheduler = scheduler.name();

  CRIUS_TRACE_SPAN_ARGS("sim.run", "{\"jobs\": " + std::to_string(trace.size()) + "}");
  CRIUS_COUNTER_INC("sim.runs");

  std::vector<SimJob> jobs(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    jobs[i].state.job = trace[i];
    jobs[i].state.phase = JobPhase::kQueued;
    double delay = 0.0;
    if (config_.charge_profiling) {
      delay = scheduler.ProfilingDelay(trace[i], cluster);
      CRIUS_HISTOGRAM_RECORD("sim.profile_delay_s", delay);
    }
    jobs[i].schedulable_at = trace[i].submit_time + delay;
    jobs[i].reference_throughput = ReferenceThroughput(oracle, cluster, trace[i]);
    CRIUS_CHECK_MSG(jobs[i].reference_throughput > 0.0,
                    "trace job " << trace[i].id << " infeasible everywhere");
  }

  double trace_end = 0.0;
  for (const TrainingJob& job : trace) {
    trace_end = std::max(trace_end, job.submit_time);
  }
  const double max_time = std::max(trace_end, 1.0) * config_.max_time_factor +
                          24.0 * kHour;

  // Advances a running job's progress from t0 to t1.
  auto advance = [&](SimJob& sj, double t0, double t1) {
    if (sj.state.phase != JobPhase::kRunning) {
      return;
    }
    const double from = std::max(t0, sj.state.blocked_until);
    if (from >= t1 || sj.state.iter_time <= 0.0) {
      return;
    }
    sj.state.iters_done += (t1 - from) / sj.state.iter_time;
  };

  // Exact completion time of a running job; +inf otherwise.
  auto completion_time = [&](const SimJob& sj, double now) {
    if (sj.state.phase != JobPhase::kRunning || sj.state.iter_time <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    const double from = std::max(now, sj.state.blocked_until);
    return from + sj.state.remaining_iters() * sj.state.iter_time;
  };

  auto record = [&](SimJob& sj, double time, SimEvent::Kind kind,
                    std::string placement = "") {
    CounterRegistry::Global().GetCounter(CounterNameFor(kind)).Add(1);
    sj.last_event = time;
    if (config_.record_events) {
      result.events.push_back(SimEvent{time, kind, sj.state.job.id, std::move(placement)});
    }
  };

  // Applies one scheduling decision at time `now`.
  auto apply_decision = [&](double now, const ScheduleDecision& decision) {
    // Drops first.
    for (int64_t id : decision.dropped) {
      SimJob& sj = jobs[static_cast<size_t>(id)];
      if (sj.state.phase == JobPhase::kQueued) {
        sj.state.phase = JobPhase::kDropped;
        record(sj, now, SimEvent::Kind::kDrop);
      }
    }

    // Releases: running jobs whose assignment vanished or changed.
    std::vector<std::pair<size_t, Assignment>> to_start;
    for (size_t i = 0; i < jobs.size(); ++i) {
      SimJob& sj = jobs[i];
      if (sj.state.phase != JobPhase::kRunning && sj.state.phase != JobPhase::kQueued) {
        continue;
      }
      if (now < sj.schedulable_at) {
        continue;
      }
      const auto it = decision.assignments.find(sj.state.job.id);
      if (sj.state.phase == JobPhase::kRunning) {
        const bool keep = it != decision.assignments.end() && it->second.type == sj.state.gpu_type &&
                          it->second.ngpus == sj.state.ngpus &&
                          (it->second.nstages == 0 || it->second.nstages == sj.state.nstages);
        if (keep) {
          sj.state.opportunistic = it->second.opportunistic;
          continue;
        }
        // Preempt / reschedule: release now, maybe restart below.
        cluster.Release(sj.alloc);
        sj.alloc = Allocation{};
        sj.state.phase = JobPhase::kQueued;
        sj.state.ngpus = 0;
        sj.state.nstages = 0;
        sj.state.iter_time = 0.0;
        if (it == decision.assignments.end()) {
          record(sj, now, SimEvent::Kind::kPreempt);
        }
      }
      if (it != decision.assignments.end()) {
        to_start.emplace_back(i, it->second);
      }
    }

    // Starts / restarts.
    for (const auto& [i, a] : to_start) {
      SimJob& sj = jobs[i];
      CRIUS_CHECK(sj.state.phase == JobPhase::kQueued);
      CRIUS_CHECK_MSG(a.ngpus > 0, "empty assignment for job " << sj.state.job.id);
      auto alloc = cluster.Allocate(a.type, a.ngpus);
      CRIUS_CHECK_MSG(alloc.has_value(), scheduler.name()
                                             << " oversubscribed " << GpuName(a.type) << " by job "
                                             << sj.state.job.id);
      double iter_time = 0.0;
      if (a.nstages > 0) {
        // Crius: run the Cell-guided tuned plan.
        const Cell cell{a.type, a.ngpus, a.nstages};
        const TuneResult& tuned = oracle.TuneCell(sj.state.job.spec, cell);
        if (tuned.best.has_value()) {
          iter_time = tuned.best->iter_time;
        }
      }
      if (iter_time <= 0.0) {
        const std::optional<PlanChoice>& best =
            oracle.BestAdaptive(sj.state.job.spec, a.type, a.ngpus);
        CRIUS_CHECK_MSG(best.has_value(), scheduler.name()
                                              << " scheduled infeasible shape for job "
                                              << sj.state.job.id);
        iter_time = best->iter_time;
      }
      if (config_.execution_jitter > 0.0) {
        uint64_t key = static_cast<uint64_t>(sj.state.job.id);
        key = HashCombine(key, static_cast<uint64_t>(a.type));
        key = HashCombine(key, static_cast<uint64_t>(a.ngpus));
        iter_time *= HashJitter(config_.jitter_seed, key, config_.execution_jitter);
      }

      sj.alloc = std::move(*alloc);
      sj.state.phase = JobPhase::kRunning;
      sj.state.gpu_type = a.type;
      sj.state.ngpus = a.ngpus;
      sj.state.nstages = a.nstages;
      sj.state.iter_time = iter_time;
      sj.state.opportunistic = a.opportunistic;
      double restart_cost = config_.restart_overhead;
      if (config_.checkpoint_bandwidth > 0.0) {
        restart_cost += 2.0 * GetOpGraph(sj.state.job.spec).TotalParamBytes() /
                        config_.checkpoint_bandwidth;
      }
      CRIUS_HISTOGRAM_RECORD("sim.restart_cost_s", restart_cost);
      sj.state.blocked_until = now + restart_cost;
      const Cell placement{a.type, a.ngpus, std::max(1, a.nstages)};
      if (!sj.started_once) {
        sj.started_once = true;
        sj.state.first_start = now;
        record(sj, now, SimEvent::Kind::kStart, placement.ToString());
      } else {
        ++sj.state.num_restarts;
        record(sj, now, SimEvent::Kind::kRestart, placement.ToString());
      }
    }
  };

  // Runs one scheduler invocation over the currently visible jobs.
  auto run_scheduler = [&](double now) {
    std::vector<const JobState*> visible;
    for (const SimJob& sj : jobs) {
      if ((sj.state.phase == JobPhase::kQueued && now + kEps >= sj.schedulable_at &&
           now + kEps >= sj.state.job.submit_time) ||
          sj.state.phase == JobPhase::kRunning) {
        visible.push_back(&sj.state);
      }
    }
    if (visible.empty()) {
      return;
    }
    CRIUS_TRACE_SPAN_ARGS("sim.schedule",
                          "{\"t\": " + std::to_string(now) +
                              ", \"visible_jobs\": " + std::to_string(visible.size()) + "}");
    CRIUS_COUNTER_INC("sim.sched_invocations");
    const ScheduleDecision decision = scheduler.Schedule(now, visible, cluster);
    apply_decision(now, decision);
  };

  auto sample_throughput = [&](double now) {
    ThroughputSample sample;
    sample.time = now;
    for (const SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kRunning) {
        ++sample.running_jobs;
        sample.busy_gpus += sj.state.ngpus;
        if (now >= sj.state.blocked_until && sj.state.iter_time > 0.0) {
          const double thr =
              static_cast<double>(sj.state.job.spec.global_batch) / sj.state.iter_time;
          sample.normalized_throughput += thr / sj.reference_throughput;
        }
      } else if (sj.state.phase == JobPhase::kQueued && now >= sj.state.job.submit_time) {
        ++sample.queued_jobs;
      }
    }
    result.timeline.push_back(sample);
  };

  // --- Main loop --------------------------------------------------------------
  double now = 0.0;
  double next_round = 0.0;
  int live = static_cast<int>(jobs.size());
  while (live > 0 && now < max_time) {
    // Next event: round boundary or earliest completion.
    double next_completion = std::numeric_limits<double>::infinity();
    for (const SimJob& sj : jobs) {
      next_completion = std::min(next_completion, completion_time(sj, now));
    }
    const double t_next = std::min(next_round, next_completion);
    CRIUS_CHECK(t_next < std::numeric_limits<double>::infinity());

    for (SimJob& sj : jobs) {
      advance(sj, now, t_next);
    }
    now = t_next;

    // Completions (SchedDeparture).
    bool departed = false;
    for (SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kRunning &&
          sj.state.iters_done + kEps >= static_cast<double>(sj.state.job.iterations)) {
        cluster.Release(sj.alloc);
        sj.alloc = Allocation{};
        sj.state.phase = JobPhase::kFinished;
        sj.state.finish_time = now;
        record(sj, now, SimEvent::Kind::kFinish);
        departed = true;
      }
    }
    if (departed) {
      run_scheduler(now);
    }

    // Round boundary (SchedArrival + periodic rescheduling).
    if (now + kEps >= next_round) {
      run_scheduler(now);
      sample_throughput(now);
      next_round += config_.schedule_interval;
      // Per-round chatter: kInfo when the caller asked for it, kDebug
      // otherwise so CRIUS_LOG_LEVEL=debug surfaces it without a code change.
      {
        std::ostringstream round_msg;
        round_msg << scheduler.name() << " t=" << now << " live=" << live;
        LogMessage(config_.verbose ? LogLevel::kInfo : LogLevel::kDebug,
                   round_msg.str());
      }
    }

    live = 0;
    for (const SimJob& sj : jobs) {
      if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
        ++live;
      }
    }
  }

  // --- Records -----------------------------------------------------------------
  for (SimJob& sj : jobs) {
    // Jobs still live when the simulation stopped were last observed now.
    if (sj.state.phase == JobPhase::kQueued || sj.state.phase == JobPhase::kRunning) {
      sj.last_event = now;
    }
  }
  for (const SimJob& sj : jobs) {
    JobRecord r;
    r.id = sj.state.job.id;
    r.submit = sj.state.job.submit_time;
    r.first_start = sj.state.first_start;
    r.finish = sj.state.finish_time;
    r.ideal_duration = static_cast<double>(sj.state.job.iterations) *
                       static_cast<double>(sj.state.job.spec.global_batch) /
                       sj.reference_throughput;
    r.last_event = sj.last_event;
    r.restarts = sj.state.num_restarts;
    r.finished = sj.state.phase == JobPhase::kFinished;
    r.dropped = sj.state.phase == JobPhase::kDropped;
    r.had_deadline = sj.state.job.deadline.has_value();
    r.deadline_met = r.finished && r.had_deadline && r.finish <= *sj.state.job.deadline;
    result.jobs.push_back(r);
  }
  result.cluster_gpus = cluster.TotalGpus();
  result.Finalize();
  return result;
}

}  // namespace crius
