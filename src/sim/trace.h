// Synthetic workload traces (DESIGN.md §2 substitution for the Philly,
// Helios Venus and Alibaba PAI production traces).
//
// The paper adapts the public traces by randomly generating GPU amounts and
// types for heterogeneity and deriving iteration counts from trace durations;
// this generator produces shape-matched synthetic equivalents directly:
//   * model mixture follows the Fig. 15 size distribution (small models
//     dominate, a long tail up to MoE-27B),
//   * requested GPU counts are powers of two scaled to each model's real
//     minimum footprint,
//   * durations are log-normal with a heavy tail (Philly's signature),
//   * arrivals follow a diurnally modulated Poisson process with optional
//     burst windows (the Fig. 16 "range 850-1200" surge),
//   * the target offered load (fraction of cluster GPU capacity) selects
//     heavy / moderate / low pressure, matching how the paper picks its
//     Philly / Helios / PAI windows.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/oracle.h"
#include "src/hw/cluster.h"
#include "src/model/job.h"

namespace crius {

struct TraceConfig {
  std::string name = "trace";
  uint64_t seed = 1;
  // Arrival window in seconds; jobs may finish after it.
  double duration = 6.0 * kHour;
  int num_jobs = 244;
  // Target offered load: total requested GPU-seconds / (cluster GPUs x duration).
  double load = 1.0;
  // Fraction of jobs carrying a deadline (deadline-aware experiments, §8.5).
  double deadline_fraction = 0.0;
  // Deadline slack range, multiples of the job's ideal standalone duration.
  double deadline_slack_min = 2.0;
  double deadline_slack_max = 8.0;
  // Arrival burstiness: 0 = homogeneous Poisson; 1 = strong diurnal + bursts.
  double burstiness = 0.5;
  // Largest GPU request generated.
  int max_request_gpus = 64;
};

// Canonical configurations for the four evaluation traces.
TraceConfig PhillySixHourConfig();    // §8.3: 244 jobs / 6 h on the 64-GPU testbed
TraceConfig PhillyWeekHeavyConfig();  // §8.4: one-week heavy load, 1,280 GPUs
TraceConfig HeliosModerateConfig();   // §8.4: one-day moderate load
TraceConfig PaiLowConfig();           // §8.4: one-day low load

// Generates a trace for `cluster`. The oracle is used to clamp each job's
// requested GPU count to a shape the model can actually start on (mirroring
// how users request sane shares) and to size iteration counts from durations.
std::vector<TrainingJob> GenerateTrace(const Cluster& cluster, PerformanceOracle& oracle,
                                       const TraceConfig& config);

// Job counts per model-size bucket (the Fig. 15 histogram).
std::map<std::string, int> ModelSizeHistogram(const std::vector<TrainingJob>& trace);

}  // namespace crius

#endif  // SRC_SIM_TRACE_H_
