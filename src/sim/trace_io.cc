#include "src/sim/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/util/check.h"
#include "src/util/csv.h"

namespace crius {

namespace {

ModelFamily ParseFamily(const std::string& s, int line_no) {
  for (ModelFamily f : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    if (s == FamilyName(f)) {
      return f;
    }
  }
  CRIUS_UNREACHABLE("trace CSV line " + std::to_string(line_no) + ": unknown family '" + s +
                    "'");
}

}  // namespace

void WriteTraceCsv(const std::vector<TrainingJob>& trace, std::ostream& out) {
  out << "id,family,params_billion,global_batch,iterations,submit_time,requested_gpus,"
         "requested_type,deadline\n";
  for (const TrainingJob& job : trace) {
    out << job.id << ',' << FamilyName(job.spec.family) << ',' << job.spec.params_billion
        << ',' << job.spec.global_batch << ',' << job.iterations << ',' << job.submit_time
        << ',' << job.requested_gpus << ',' << GpuName(job.requested_type) << ',';
    if (job.deadline.has_value()) {
      out << *job.deadline;
    }
    out << '\n';
  }
}

bool WriteTraceCsvFile(const std::vector<TrainingJob>& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteTraceCsv(trace, out);
  return out.good();
}

std::vector<TrainingJob> ReadTraceCsv(std::istream& in) {
  std::vector<TrainingJob> trace;
  csv::Reader reader(in, "trace CSV", "id,");
  while (reader.Next()) {
    reader.ExpectFields(9);
    TrainingJob job;
    job.id = reader.Int(0, "id");
    job.spec.family = ParseFamily(reader.Field(1), reader.line_no());
    job.spec.params_billion = reader.Double(2, "params_billion");
    job.spec.global_batch = reader.Int(3, "global_batch");
    job.iterations = reader.Int(4, "iterations");
    job.submit_time = reader.Double(5, "submit_time");
    job.requested_gpus = static_cast<int>(reader.Int(6, "requested_gpus"));
    job.requested_type = ParseGpuType(reader.Field(7));
    if (!reader.Field(8).empty()) {
      job.deadline = reader.Double(8, "deadline");
    }
    trace.push_back(job);
  }
  return trace;
}

std::vector<TrainingJob> ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  CRIUS_CHECK_MSG(in.is_open(), "cannot open trace file " << path);
  return ReadTraceCsv(in);
}

void WriteJobRecordsCsv(const SimResult& result, std::ostream& out) {
  out << "id,submit,first_start,finish,jct,queue_time,restarts,sched_restarts,"
         "failure_restarts,finished,dropped,had_deadline,deadline_met\n";
  for (const JobRecord& r : result.jobs) {
    out << r.id << ',' << r.submit << ',' << r.first_start << ',' << r.finish << ','
        << (r.finished ? r.jct() : -1.0) << ','
        << (r.finished ? std::max(0.0, r.queue_time()) : -1.0) << ',' << r.restarts << ','
        << r.sched_restarts << ',' << r.failure_restarts << ',' << r.finished << ','
        << r.dropped << ',' << r.had_deadline << ',' << r.deadline_met << '\n';
  }
}

bool WriteJobRecordsCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJobRecordsCsv(result, out);
  return out.good();
}

void WriteTimelineCsv(const SimResult& result, std::ostream& out) {
  out << "time,normalized_throughput,running_jobs,queued_jobs,busy_gpus\n";
  for (const ThroughputSample& s : result.timeline) {
    out << s.time << ',' << s.normalized_throughput << ',' << s.running_jobs << ','
        << s.queued_jobs << ',' << s.busy_gpus << '\n';
  }
}

bool WriteTimelineCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteTimelineCsv(result, out);
  return out.good();
}

void WriteEventsCsv(const SimResult& result, std::ostream& out) {
  out << "time,kind,job_id,placement\n";
  for (const SimEvent& e : result.events) {
    out << e.time << ',' << SimEvent::KindName(e.kind) << ',' << e.job_id << ','
        << csv::EscapeField(e.placement) << '\n';
  }
}

bool WriteEventsCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteEventsCsv(result, out);
  return out.good();
}

}  // namespace crius
