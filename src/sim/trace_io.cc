#include "src/sim/trace_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/util/check.h"

namespace crius {

namespace {

// Splits one CSV line on commas (no quoting needed for these schemas).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

double ParseDouble(const std::string& s, const char* what, int line_no) {
  CRIUS_CHECK_MSG(!s.empty(), "trace CSV line " << line_no << ": empty " << what);
  size_t pos = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  CRIUS_CHECK_MSG(ok && pos == s.size(),
                  "trace CSV line " << line_no << ": bad " << what << " '" << s << "'");
  return v;
}

int64_t ParseInt(const std::string& s, const char* what, int line_no) {
  const double v = ParseDouble(s, what, line_no);
  CRIUS_CHECK_MSG(v == std::floor(v), "trace CSV line " << line_no << ": non-integer " << what);
  return static_cast<int64_t>(v);
}

ModelFamily ParseFamily(const std::string& s, int line_no) {
  for (ModelFamily f : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    if (s == FamilyName(f)) {
      return f;
    }
  }
  CRIUS_UNREACHABLE("trace CSV line " + std::to_string(line_no) + ": unknown family '" + s +
                    "'");
}

}  // namespace

void WriteTraceCsv(const std::vector<TrainingJob>& trace, std::ostream& out) {
  out << "id,family,params_billion,global_batch,iterations,submit_time,requested_gpus,"
         "requested_type,deadline\n";
  for (const TrainingJob& job : trace) {
    out << job.id << ',' << FamilyName(job.spec.family) << ',' << job.spec.params_billion
        << ',' << job.spec.global_batch << ',' << job.iterations << ',' << job.submit_time
        << ',' << job.requested_gpus << ',' << GpuName(job.requested_type) << ',';
    if (job.deadline.has_value()) {
      out << *job.deadline;
    }
    out << '\n';
  }
}

bool WriteTraceCsvFile(const std::vector<TrainingJob>& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteTraceCsv(trace, out);
  return out.good();
}

std::vector<TrainingJob> ReadTraceCsv(std::istream& in) {
  std::vector<TrainingJob> trace;
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (!header_seen) {
      header_seen = true;
      CRIUS_CHECK_MSG(line.rfind("id,", 0) == 0, "trace CSV missing header row");
      continue;
    }
    const std::vector<std::string> f = SplitCsv(line);
    CRIUS_CHECK_MSG(f.size() == 9, "trace CSV line " << line_no << ": expected 9 fields, got "
                                                     << f.size());
    TrainingJob job;
    job.id = ParseInt(f[0], "id", line_no);
    job.spec.family = ParseFamily(f[1], line_no);
    job.spec.params_billion = ParseDouble(f[2], "params_billion", line_no);
    job.spec.global_batch = ParseInt(f[3], "global_batch", line_no);
    job.iterations = ParseInt(f[4], "iterations", line_no);
    job.submit_time = ParseDouble(f[5], "submit_time", line_no);
    job.requested_gpus = static_cast<int>(ParseInt(f[6], "requested_gpus", line_no));
    job.requested_type = ParseGpuType(f[7]);
    if (!f[8].empty()) {
      job.deadline = ParseDouble(f[8], "deadline", line_no);
    }
    trace.push_back(job);
  }
  return trace;
}

std::vector<TrainingJob> ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  CRIUS_CHECK_MSG(in.is_open(), "cannot open trace file " << path);
  return ReadTraceCsv(in);
}

void WriteJobRecordsCsv(const SimResult& result, std::ostream& out) {
  out << "id,submit,first_start,finish,jct,queue_time,restarts,sched_restarts,"
         "failure_restarts,finished,dropped,had_deadline,deadline_met\n";
  for (const JobRecord& r : result.jobs) {
    out << r.id << ',' << r.submit << ',' << r.first_start << ',' << r.finish << ','
        << (r.finished ? r.jct() : -1.0) << ','
        << (r.finished ? std::max(0.0, r.queue_time()) : -1.0) << ',' << r.restarts << ','
        << r.sched_restarts << ',' << r.failure_restarts << ',' << r.finished << ','
        << r.dropped << ',' << r.had_deadline << ',' << r.deadline_met << '\n';
  }
}

bool WriteJobRecordsCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJobRecordsCsv(result, out);
  return out.good();
}

void WriteTimelineCsv(const SimResult& result, std::ostream& out) {
  out << "time,normalized_throughput,running_jobs,queued_jobs,busy_gpus\n";
  for (const ThroughputSample& s : result.timeline) {
    out << s.time << ',' << s.normalized_throughput << ',' << s.running_jobs << ','
        << s.queued_jobs << ',' << s.busy_gpus << '\n';
  }
}

bool WriteTimelineCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteTimelineCsv(result, out);
  return out.good();
}

void WriteEventsCsv(const SimResult& result, std::ostream& out) {
  out << "time,kind,job_id,placement\n";
  for (const SimEvent& e : result.events) {
    out << e.time << ',' << SimEvent::KindName(e.kind) << ',' << e.job_id << ','
        << e.placement << '\n';
  }
}

bool WriteEventsCsvFile(const SimResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteEventsCsv(result, out);
  return out.good();
}

}  // namespace crius
