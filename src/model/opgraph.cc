#include "src/model/opgraph.h"

#include "src/util/check.h"

namespace crius {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kEmbedding:
      return "embedding";
    case OpKind::kAttention:
      return "attention";
    case OpKind::kMlp:
      return "mlp";
    case OpKind::kMoeLayer:
      return "moe";
    case OpKind::kConvBlock:
      return "conv_block";
    case OpKind::kHead:
      return "head";
  }
  return "?";
}

void OpGraph::Add(Operator op) {
  CRIUS_CHECK(!finalized_);
  op.id = static_cast<int>(ops_.size());
  CRIUS_CHECK(op.fwd_flops_per_sample >= 0.0);
  CRIUS_CHECK(op.param_bytes >= 0.0);
  CRIUS_CHECK(op.act_bytes_per_sample >= 0.0);
  if (op.act_mem_bytes_per_sample < op.act_bytes_per_sample) {
    op.act_mem_bytes_per_sample = op.act_bytes_per_sample;
  }
  ops_.push_back(std::move(op));
}

void OpGraph::Finalize() {
  CRIUS_CHECK(!finalized_);
  CRIUS_CHECK_MSG(!ops_.empty(), "OpGraph needs at least one operator");
  const size_t n = ops_.size();
  flops_prefix_.assign(n + 1, 0.0);
  param_prefix_.assign(n + 1, 0.0);
  act_prefix_.assign(n + 1, 0.0);
  act_mem_prefix_.assign(n + 1, 0.0);
  tp_prefix_.assign(n + 1, 0.0);
  a2a_prefix_.assign(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    flops_prefix_[i + 1] = flops_prefix_[i] + ops_[i].fwd_flops_per_sample;
    param_prefix_[i + 1] = param_prefix_[i] + ops_[i].param_bytes;
    act_prefix_[i + 1] = act_prefix_[i] + ops_[i].act_bytes_per_sample;
    act_mem_prefix_[i + 1] = act_mem_prefix_[i] + ops_[i].act_mem_bytes_per_sample;
    tp_prefix_[i + 1] = tp_prefix_[i] + ops_[i].tp_comm_bytes_per_sample;
    a2a_prefix_[i + 1] = a2a_prefix_[i] + ops_[i].a2a_bytes_per_sample;
  }
  finalized_ = true;
}

const Operator& OpGraph::op(size_t i) const {
  CRIUS_CHECK(i < ops_.size());
  return ops_[i];
}

namespace {

double RangeSum(const std::vector<double>& prefix, size_t begin, size_t end) {
  CRIUS_CHECK(begin <= end);
  CRIUS_CHECK(end < prefix.size());
  return prefix[end] - prefix[begin];
}

}  // namespace

double OpGraph::FwdFlops(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(flops_prefix_, begin, end);
}

double OpGraph::ParamBytes(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(param_prefix_, begin, end);
}

double OpGraph::ActBytes(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(act_prefix_, begin, end);
}

double OpGraph::ActMemBytes(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(act_mem_prefix_, begin, end);
}

double OpGraph::TpCommBytes(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(tp_prefix_, begin, end);
}

double OpGraph::A2aBytes(size_t begin, size_t end) const {
  CRIUS_CHECK(finalized_);
  return RangeSum(a2a_prefix_, begin, end);
}

double OpGraph::BoundaryBytes(size_t i) const {
  CRIUS_CHECK(finalized_);
  CRIUS_CHECK(i >= 1 && i < ops_.size());
  return ops_[i - 1].act_bytes_per_sample;
}

}  // namespace crius
