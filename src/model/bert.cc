// BERT operator-graph builder.
//
// Transformer encoder with the standard parameter formula ~12*L*H^2 plus a
// vocab embedding. Per layer the graph holds two operators (attention, MLP),
// which is the granularity Megatron/Alpa shard at:
//
//   attention: params 4H^2, fwd FLOPs 8*s*H^2 + 4*s^2*H
//   mlp:       params 8H^2, fwd FLOPs 16*s*H^2
//
// Tensor parallelism all-reduces one s*H activation per sharded operator in
// the forward pass and one in the backward pass (Megatron's f/g operators).

#include <cmath>

#include "src/model/models.h"
#include "src/util/check.h"

namespace crius {

namespace {

constexpr double kSeqLen = 512.0;
constexpr double kVocab = 30592.0;
constexpr double kBytesPerParam = 2.0;  // fp16 weights
constexpr double kBytesPerAct = 2.0;    // fp16 activations

struct BertConfig {
  int layers;
  double hidden;
};

BertConfig ConfigFor(double params_billion) {
  // (layers, hidden) tuned so 12*L*H^2 + vocab*H lands on the nominal size.
  if (std::abs(params_billion - 0.76) < 1e-9) {
    return {24, 1536.0};
  }
  if (std::abs(params_billion - 1.3) < 1e-9) {
    return {24, 2048.0};
  }
  if (std::abs(params_billion - 2.6) < 1e-9) {
    return {32, 2560.0};
  }
  if (std::abs(params_billion - 6.7) < 1e-9) {
    return {32, 4096.0};
  }
  CRIUS_UNREACHABLE("unsupported BERT size");
}

}  // namespace

OpGraph BuildBert(double params_billion) {
  const BertConfig cfg = ConfigFor(params_billion);
  const double h = cfg.hidden;
  const double s = kSeqLen;
  const double act_bytes = s * h * kBytesPerAct;
  // One all-reduce of an s*H activation forward + one backward per sharded op.
  const double tp_bytes = 2.0 * act_bytes;

  OpGraph g;

  Operator embed;
  embed.name = "embedding";
  embed.kind = OpKind::kEmbedding;
  embed.param_bytes = kVocab * h * kBytesPerParam;
  embed.fwd_flops_per_sample = 2.0 * s * h;  // gather + scale
  embed.act_bytes_per_sample = act_bytes;
  embed.tp_comm_bytes_per_sample = tp_bytes;
  g.Add(embed);

  for (int layer = 0; layer < cfg.layers; ++layer) {
    Operator attn;
    attn.name = "layer" + std::to_string(layer) + ".attn";
    attn.kind = OpKind::kAttention;
    attn.param_bytes = 4.0 * h * h * kBytesPerParam;
    attn.fwd_flops_per_sample = 8.0 * s * h * h + 4.0 * s * s * h;
    attn.act_bytes_per_sample = act_bytes;
    // Q/K/V projections and (softmax-checkpointed) score tensors.
    attn.act_mem_bytes_per_sample = 1.6 * act_bytes;
    attn.tp_comm_bytes_per_sample = tp_bytes;
    g.Add(attn);

    Operator mlp;
    mlp.name = "layer" + std::to_string(layer) + ".mlp";
    mlp.kind = OpKind::kMlp;
    mlp.param_bytes = 8.0 * h * h * kBytesPerParam;
    mlp.fwd_flops_per_sample = 16.0 * s * h * h;
    mlp.act_bytes_per_sample = act_bytes;
    // The 4H intermediate is partially re-materialized; ~2.5 activations kept.
    mlp.act_mem_bytes_per_sample = 2.5 * act_bytes;
    mlp.tp_comm_bytes_per_sample = tp_bytes;
    g.Add(mlp);
  }

  Operator head;
  head.name = "lm_head";
  head.kind = OpKind::kHead;
  head.param_bytes = 0.0;  // tied with the embedding
  head.fwd_flops_per_sample = 2.0 * s * h * kVocab;
  head.act_bytes_per_sample = s * kBytesPerAct;  // per-token loss
  head.tp_comm_bytes_per_sample = tp_bytes;
  g.Add(head);

  g.Finalize();
  return g;
}

}  // namespace crius
