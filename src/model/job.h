// Training job descriptor: what a user submits to the cluster.
//
// Per §3, Crius "requires model developers to specify an initial number of
// GPUs" for each job; traces also carry submission time, iteration count and
// (for deadline-aware scheduling, §8.5) an optional deadline.

#ifndef SRC_MODEL_JOB_H_
#define SRC_MODEL_JOB_H_

#include <cstdint>
#include <optional>

#include "src/hw/gpu.h"
#include "src/model/models.h"

namespace crius {

struct TrainingJob {
  int64_t id = 0;
  ModelSpec spec;
  // Total iterations to train.
  int64_t iterations = 1;
  // Submission time, seconds since simulation start.
  double submit_time = 0.0;
  // User-specified initial GPU count N_G (power of two).
  int requested_gpus = 1;
  // GPU type the user asked for (baselines without heterogeneity scaling keep
  // the job on this type).
  GpuType requested_type = GpuType::kA100;
  // Absolute deadline in seconds since simulation start, if any (§8.5).
  std::optional<double> deadline;
};

}  // namespace crius

#endif  // SRC_MODEL_JOB_H_
