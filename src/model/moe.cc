// GShard Mixture-of-Experts operator-graph builder.
//
// Transformer in which every second MLP is a top-2-routed expert layer with E
// experts. Experts multiply the parameter count by ~E while the per-token
// compute only doubles (two active experts), giving MoE the high
// parameters-to-FLOPs ratio that makes it memory-bound -- the reason MoE jobs
// change parallelism plans aggressively across GPU types in Fig. 4.
//
// Expert dispatch adds all-to-all traffic (tokens to experts and back, forward
// and backward), captured per-operator in a2a_bytes_per_sample.

#include <cmath>

#include "src/model/models.h"
#include "src/util/check.h"

namespace crius {

namespace {

constexpr double kSeqLen = 512.0;
constexpr double kVocab = 30592.0;
constexpr double kBytesPerParam = 2.0;
constexpr double kBytesPerAct = 2.0;
constexpr double kTopK = 2.0;

struct MoeConfig {
  int layers;
  double hidden;
  double experts;
};

MoeConfig ConfigFor(double params_billion) {
  if (std::abs(params_billion - 0.69) < 1e-9) {
    return {16, 768.0, 16.0};
  }
  if (std::abs(params_billion - 1.3) < 1e-9) {
    return {16, 1024.0, 16.0};
  }
  if (std::abs(params_billion - 2.4) < 1e-9) {
    return {16, 1024.0, 32.0};
  }
  if (std::abs(params_billion - 10.0) < 1e-9) {
    return {24, 2048.0, 24.0};
  }
  if (std::abs(params_billion - 27.0) < 1e-9) {
    return {32, 2560.0, 32.0};
  }
  CRIUS_UNREACHABLE("unsupported MoE size");
}

}  // namespace

OpGraph BuildMoe(double params_billion) {
  const MoeConfig cfg = ConfigFor(params_billion);
  const double h = cfg.hidden;
  const double s = kSeqLen;
  const double act_bytes = s * h * kBytesPerAct;
  const double tp_bytes = 2.0 * act_bytes;

  OpGraph g;

  Operator embed;
  embed.name = "embedding";
  embed.kind = OpKind::kEmbedding;
  embed.param_bytes = kVocab * h * kBytesPerParam;
  embed.fwd_flops_per_sample = 2.0 * s * h;
  embed.act_bytes_per_sample = act_bytes;
  embed.tp_comm_bytes_per_sample = tp_bytes;
  g.Add(embed);

  for (int layer = 0; layer < cfg.layers; ++layer) {
    Operator attn;
    attn.name = "layer" + std::to_string(layer) + ".attn";
    attn.kind = OpKind::kAttention;
    attn.param_bytes = 4.0 * h * h * kBytesPerParam;
    attn.fwd_flops_per_sample = 8.0 * s * h * h + 4.0 * s * s * h;
    attn.act_bytes_per_sample = act_bytes;
    attn.act_mem_bytes_per_sample = 1.6 * act_bytes;
    attn.tp_comm_bytes_per_sample = tp_bytes;
    g.Add(attn);

    const bool is_moe = (layer % 2) == 1;
    Operator mlp;
    mlp.kind = is_moe ? OpKind::kMoeLayer : OpKind::kMlp;
    mlp.name = "layer" + std::to_string(layer) + (is_moe ? ".moe" : ".mlp");
    if (is_moe) {
      mlp.param_bytes = cfg.experts * 8.0 * h * h * kBytesPerParam;
      // Top-2 routing: each token runs two experts.
      mlp.fwd_flops_per_sample = kTopK * 16.0 * s * h * h;
      // Dispatch + combine, forward and backward: 4 transfers of top-k-
      // replicated token activations.
      mlp.a2a_bytes_per_sample = 4.0 * kTopK * act_bytes;
    } else {
      mlp.param_bytes = 8.0 * h * h * kBytesPerParam;
      mlp.fwd_flops_per_sample = 16.0 * s * h * h;
    }
    mlp.act_bytes_per_sample = act_bytes;
    // Expert layers keep dispatched (top-k replicated) token buffers alive.
    mlp.act_mem_bytes_per_sample = (is_moe ? 3.0 : 2.5) * act_bytes;
    mlp.tp_comm_bytes_per_sample = tp_bytes;
    g.Add(mlp);
  }

  Operator head;
  head.name = "lm_head";
  head.kind = OpKind::kHead;
  head.param_bytes = 0.0;  // tied
  head.fwd_flops_per_sample = 2.0 * s * h * kVocab;
  head.act_bytes_per_sample = s * kBytesPerAct;
  head.tp_comm_bytes_per_sample = tp_bytes;
  g.Add(head);

  g.Finalize();
  return g;
}

}  // namespace crius
