// Wide-ResNet operator-graph builder.
//
// ResNet-50 bottleneck layout ([3,4,6,3] blocks, stage spatial sizes
// 56/28/14/7 at 224x224 input) widened until the parameter count reaches the
// nominal size, following how Alpa / the paper scale WideResNet into the
// billions. One operator = one bottleneck block:
//
//   inner width w (outer 4w): params 17*w^2 (1x1: 4w*w, 3x3: 9w^2, 1x1: w*4w)
//   fwd FLOPs = 2 * params * spatial(stage)
//
// Convolutions are activation-heavy: the output of an early block is ~4w*56^2
// elements per sample, which is what makes tensor parallelism (which must
// exchange those activations) unattractive for WRes -- matching Fig. 4, where
// WRes prefers data/pipeline parallelism.

#include <cmath>

#include "src/model/models.h"
#include "src/util/check.h"

namespace crius {

namespace {

constexpr double kBytesPerParam = 2.0;
constexpr double kBytesPerAct = 2.0;
constexpr int kBlocksPerGroup[4] = {3, 4, 6, 3};
constexpr double kSpatial[4] = {56.0 * 56.0, 28.0 * 28.0, 14.0 * 14.0, 7.0 * 7.0};

double BaseWidthFor(double params_billion) {
  // Sum over groups of n_g * 17 * (w1 * 2^(g-1))^2 = 5219 * w1^2; solve for w1
  // and round to a multiple of 8.
  if (std::abs(params_billion - 0.5) < 1e-9) {
    return 312.0;
  }
  if (std::abs(params_billion - 1.0) < 1e-9) {
    return 440.0;
  }
  if (std::abs(params_billion - 2.0) < 1e-9) {
    return 624.0;
  }
  if (std::abs(params_billion - 4.0) < 1e-9) {
    return 880.0;
  }
  if (std::abs(params_billion - 6.8) < 1e-9) {
    return 1144.0;
  }
  CRIUS_UNREACHABLE("unsupported WideResNet size");
}

}  // namespace

OpGraph BuildWideResNet(double params_billion) {
  const double w1 = BaseWidthFor(params_billion);

  OpGraph g;

  Operator stem;
  stem.name = "stem";
  stem.kind = OpKind::kConvBlock;
  // 7x7 conv, 3 -> w1 channels at 112^2.
  stem.param_bytes = 49.0 * 3.0 * w1 * kBytesPerParam;
  stem.fwd_flops_per_sample = 2.0 * 49.0 * 3.0 * w1 * 112.0 * 112.0;
  stem.act_bytes_per_sample = w1 * 56.0 * 56.0 * kBytesPerAct;  // after max-pool
  stem.tp_comm_bytes_per_sample = 3.0 * stem.act_bytes_per_sample;
  g.Add(stem);

  double prev_outer = w1;  // channels entering the next block
  for (int group = 0; group < 4; ++group) {
    const double w = w1 * std::pow(2.0, group);
    const double outer = 4.0 * w;
    const double spatial = kSpatial[group];
    for (int block = 0; block < kBlocksPerGroup[group]; ++block) {
      Operator op;
      op.name = "g" + std::to_string(group + 1) + ".b" + std::to_string(block);
      op.kind = OpKind::kConvBlock;
      double param_elems = 17.0 * w * w;
      if (block == 0) {
        // Projection shortcut from the previous group's channel count.
        param_elems += prev_outer * outer;
      }
      op.param_bytes = param_elems * kBytesPerParam;
      op.fwd_flops_per_sample = 2.0 * param_elems * spatial;
      op.act_bytes_per_sample = outer * spatial * kBytesPerAct;
      // Bottleneck internals (two inner-width maps) add ~0.8 boundary volumes.
      op.act_mem_bytes_per_sample = 1.8 * op.act_bytes_per_sample;
      // Channel-sharded convolutions all-gather their activations forward and
      // scatter gradients backward; ~1.5 activation volumes each way.
      op.tp_comm_bytes_per_sample = 3.0 * op.act_bytes_per_sample;
      g.Add(op);
      prev_outer = outer;
    }
  }

  Operator head;
  head.name = "fc_head";
  head.kind = OpKind::kHead;
  const double classes = 1000.0;
  head.param_bytes = prev_outer * classes * kBytesPerParam;
  head.fwd_flops_per_sample = 2.0 * prev_outer * classes;
  head.act_bytes_per_sample = classes * kBytesPerAct;
  head.tp_comm_bytes_per_sample = 2.0 * head.act_bytes_per_sample;
  g.Add(head);

  g.Finalize();
  return g;
}

}  // namespace crius
