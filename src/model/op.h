// Operator: the unit of the model IR.
//
// A training job's model is a linear graph of operators (Fig. 7 treats the
// model exactly this way for stage determination). Each operator carries the
// analytical quantities the performance model needs:
//   * forward FLOPs per sample      -- compute cost (backward ~ 2x forward)
//   * parameter bytes               -- memory + data-parallel gradient traffic
//   * output activation bytes       -- pipeline-boundary traffic to the next op
//   * tensor-parallel traffic       -- bytes all-reduced per sample when the
//                                      operator is tensor-sharded (fwd+bwd)
//   * all-to-all traffic            -- MoE expert dispatch bytes per sample

#ifndef SRC_MODEL_OP_H_
#define SRC_MODEL_OP_H_

#include <cstdint>
#include <string>

namespace crius {

enum class OpKind : uint8_t {
  kEmbedding,
  kAttention,
  kMlp,
  kMoeLayer,
  kConvBlock,
  kHead,
};

const char* OpKindName(OpKind kind);

struct Operator {
  int id = 0;
  std::string name;
  OpKind kind = OpKind::kMlp;

  // Forward-pass FLOPs per input sample.
  double fwd_flops_per_sample = 0.0;
  // Weight bytes (fp16 storage, 2 bytes / parameter).
  double param_bytes = 0.0;
  // Output activation bytes per sample; this is also the traffic crossing a
  // pipeline-stage boundary placed right after this operator.
  double act_bytes_per_sample = 0.0;
  // Total activation bytes this operator keeps alive for its backward pass per
  // sample (output plus internal intermediates); >= act_bytes_per_sample.
  double act_mem_bytes_per_sample = 0.0;
  // Bytes all-reduced across the tensor-parallel group per sample for one full
  // forward+backward pass when this operator is tensor-sharded.
  double tp_comm_bytes_per_sample = 0.0;
  // Bytes exchanged all-to-all per sample (MoE dispatch + combine, fwd+bwd).
  double a2a_bytes_per_sample = 0.0;
};

}  // namespace crius

#endif  // SRC_MODEL_OP_H_
