// Model zoo: the three large-model families of Table 2.
//
//   Wide-ResNet  [256, 512, 1024] global batch, {0.5, 1.0, 2.0, 4.0, 6.8} B params
//   BERT         [128, 256,  512] global batch, {0.76, 1.3, 2.6, 6.7} B params
//   GShard MoE   [256, 512, 1024] global batch, {0.69, 1.3, 2.4, 10, 27} B params
//
// Builders synthesize operator graphs from the standard architecture formulas
// at the published parameter counts; see each .cc for the derivation. Built
// graphs are cached because trace-scale simulations request the same specs
// millions of times.

#ifndef SRC_MODEL_MODELS_H_
#define SRC_MODEL_MODELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/opgraph.h"

namespace crius {

enum class ModelFamily : uint8_t {
  kWideResNet = 0,
  kBert = 1,
  kMoe = 2,
};

inline constexpr int kNumModelFamilies = 3;

const char* FamilyName(ModelFamily family);

struct ModelSpec {
  ModelFamily family = ModelFamily::kBert;
  // Nominal parameter count in billions; must match a supported size.
  double params_billion = 1.3;
  // Global (per-iteration) batch size in samples.
  int64_t global_batch = 256;

  // "BERT-1.3B" style display name.
  std::string Name() const;
  // Name plus batch, usable as a cache key.
  std::string Key() const;

  bool operator==(const ModelSpec& other) const;
};

// Supported parameter sizes (billions) per family, ascending.
const std::vector<double>& SupportedSizes(ModelFamily family);

// Supported global batch sizes per family (Table 2).
const std::vector<int64_t>& SupportedBatches(ModelFamily family);

// All (family, size, batch) combinations of Table 2.
std::vector<ModelSpec> AllModelConfigs();

// Fraction of peak FLOPs the family's kernels achieve at large batch
// (convolutions run denser pipelines than attention, MoE loses to routing).
double ComputeEfficiency(ModelFamily family);

// Per-GPU-group sample count at which kernels reach half of their asymptotic
// efficiency; models the small-batch utilization droop that makes jobs
// "approach the performance ceiling" when scaled out (Fig. 4a).
double BatchHalfPoint(ModelFamily family);

// Builds the operator graph for `spec`. Aborts if spec.params_billion is not a
// supported size for the family.
OpGraph BuildOpGraph(const ModelSpec& spec);

// Cached variant of BuildOpGraph; the returned reference lives for the
// process lifetime. Thread-safe: the cache is mutex-guarded so the parallel
// estimation fan-out can share it.
const OpGraph& GetOpGraph(const ModelSpec& spec);

// Individual builders (exposed for tests).
OpGraph BuildWideResNet(double params_billion);
OpGraph BuildBert(double params_billion);
OpGraph BuildMoe(double params_billion);

}  // namespace crius

#endif  // SRC_MODEL_MODELS_H_
