// OpGraph: a linear operator graph with O(1) range aggregates.
//
// Stage determination (§4.2) and the performance model repeatedly need sums of
// FLOPs / bytes over contiguous operator ranges [begin, end); the graph keeps
// prefix sums for all of them.

#ifndef SRC_MODEL_OPGRAPH_H_
#define SRC_MODEL_OPGRAPH_H_

#include <vector>

#include "src/model/op.h"

namespace crius {

class OpGraph {
 public:
  OpGraph() = default;

  // Appends an operator; its id is assigned sequentially.
  void Add(Operator op);

  // Builds the prefix sums. Must be called once after the last Add and before
  // any query. Requires at least one operator.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t size() const { return ops_.size(); }
  const Operator& op(size_t i) const;
  const std::vector<Operator>& ops() const { return ops_; }

  // Range aggregates over ops [begin, end). Require finalized().
  double FwdFlops(size_t begin, size_t end) const;
  double ParamBytes(size_t begin, size_t end) const;
  double ActBytes(size_t begin, size_t end) const;
  double ActMemBytes(size_t begin, size_t end) const;
  double TpCommBytes(size_t begin, size_t end) const;
  double A2aBytes(size_t begin, size_t end) const;

  // Whole-model aggregates.
  double TotalFwdFlops() const { return FwdFlops(0, size()); }
  double TotalParamBytes() const { return ParamBytes(0, size()); }

  // Activation bytes crossing the boundary placed before op `i` (i.e. the
  // output of op i-1). Requires 1 <= i < size().
  double BoundaryBytes(size_t i) const;

 private:
  std::vector<Operator> ops_;
  std::vector<double> flops_prefix_;
  std::vector<double> param_prefix_;
  std::vector<double> act_prefix_;
  std::vector<double> act_mem_prefix_;
  std::vector<double> tp_prefix_;
  std::vector<double> a2a_prefix_;
  bool finalized_ = false;
};

}  // namespace crius

#endif  // SRC_MODEL_OPGRAPH_H_
