#include "src/model/models.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

#include "src/util/check.h"

namespace crius {

const char* FamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kWideResNet:
      return "WRes";
    case ModelFamily::kBert:
      return "BERT";
    case ModelFamily::kMoe:
      return "MoE";
  }
  return "?";
}

std::string ModelSpec::Name() const {
  char buf[64];
  // Sizes like 0.76 print with two decimals, whole-ish sizes with one.
  const double frac = params_billion - std::floor(params_billion);
  if (params_billion >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%s-%.0fB", FamilyName(family), params_billion);
  } else if (frac > 1e-9 && std::abs(frac * 100.0 - std::round(frac * 100.0)) < 1e-6 &&
             std::abs(frac * 10.0 - std::round(frac * 10.0)) > 1e-6) {
    std::snprintf(buf, sizeof(buf), "%s-%.2fB", FamilyName(family), params_billion);
  } else {
    std::snprintf(buf, sizeof(buf), "%s-%.1fB", FamilyName(family), params_billion);
  }
  return buf;
}

std::string ModelSpec::Key() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/b%lld", Name().c_str(),
                static_cast<long long>(global_batch));
  return buf;
}

bool ModelSpec::operator==(const ModelSpec& other) const {
  return family == other.family && params_billion == other.params_billion &&
         global_batch == other.global_batch;
}

const std::vector<double>& SupportedSizes(ModelFamily family) {
  static const std::vector<double> kWres = {0.5, 1.0, 2.0, 4.0, 6.8};
  static const std::vector<double> kBert = {0.76, 1.3, 2.6, 6.7};
  static const std::vector<double> kMoe = {0.69, 1.3, 2.4, 10.0, 27.0};
  switch (family) {
    case ModelFamily::kWideResNet:
      return kWres;
    case ModelFamily::kBert:
      return kBert;
    case ModelFamily::kMoe:
      return kMoe;
  }
  CRIUS_UNREACHABLE("bad family");
}

const std::vector<int64_t>& SupportedBatches(ModelFamily family) {
  static const std::vector<int64_t> kWres = {256, 512, 1024};
  static const std::vector<int64_t> kBert = {128, 256, 512};
  static const std::vector<int64_t> kMoe = {256, 512, 1024};
  switch (family) {
    case ModelFamily::kWideResNet:
      return kWres;
    case ModelFamily::kBert:
      return kBert;
    case ModelFamily::kMoe:
      return kMoe;
  }
  CRIUS_UNREACHABLE("bad family");
}

std::vector<ModelSpec> AllModelConfigs() {
  std::vector<ModelSpec> out;
  for (ModelFamily family : {ModelFamily::kWideResNet, ModelFamily::kBert, ModelFamily::kMoe}) {
    for (double size : SupportedSizes(family)) {
      for (int64_t batch : SupportedBatches(family)) {
        out.push_back(ModelSpec{family, size, batch});
      }
    }
  }
  return out;
}

double ComputeEfficiency(ModelFamily family) {
  switch (family) {
    case ModelFamily::kWideResNet:
      return 0.42;
    case ModelFamily::kBert:
      return 0.52;
    case ModelFamily::kMoe:
      return 0.44;
  }
  CRIUS_UNREACHABLE("bad family");
}

double BatchHalfPoint(ModelFamily family) {
  switch (family) {
    case ModelFamily::kWideResNet:
      return 3.0;
    case ModelFamily::kBert:
      return 1.5;
    case ModelFamily::kMoe:
      return 2.0;
  }
  CRIUS_UNREACHABLE("bad family");
}

OpGraph BuildOpGraph(const ModelSpec& spec) {
  switch (spec.family) {
    case ModelFamily::kWideResNet:
      return BuildWideResNet(spec.params_billion);
    case ModelFamily::kBert:
      return BuildBert(spec.params_billion);
    case ModelFamily::kMoe:
      return BuildMoe(spec.params_billion);
  }
  CRIUS_UNREACHABLE("bad family");
}

const OpGraph& GetOpGraph(const ModelSpec& spec) {
  // Keyed by family+size only: the graph does not depend on the batch.
  // Mutex-guarded so parallel estimation fan-out can share the cache; builds
  // are pure, so holding the lock across the (rare) build keeps each graph
  // constructed exactly once. std::map nodes are stable, so returned
  // references outlive later inserts.
  static std::mutex mu;
  static std::map<std::pair<int, double>, OpGraph> cache;
  const auto key = std::make_pair(static_cast<int>(spec.family), spec.params_billion);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildOpGraph(spec)).first;
  }
  return it->second;
}

}  // namespace crius
