// Analytical training-performance model: the ground truth of the simulated
// hardware (DESIGN.md §2).
//
// Given a parallelism plan on a GPU type, the model produces the exact
// per-iteration latency and per-GPU memory footprint, combining:
//   * compute  -- FLOPs / (tp * peak * efficiency); efficiency loses to tensor
//                 sharding (kernel splitting) and to small per-replica batches
//                 (the Fig. 4a "performance ceiling").
//   * comm     -- collective costs from src/hw/interconnect.h: tensor-parallel
//                 all-reduces, MoE all-to-all, data-parallel gradient sync,
//                 and pipeline-boundary transfers (send/recv + resharding
//                 all-gathers, Fig. 8).
//   * pipeline -- the §5.1 GPipe formula: first microbatch traverses every
//                 stage, the remaining B-1 are dominated by the slowest stage
//                 with boundary communication overlapped.
//
// "Measured" / "direct profiling" everywhere in this repository means an exact
// evaluation by this model; Crius's estimator (src/core) sees only noisy
// single-device profiles and interpolated communication tables.

#ifndef SRC_PARALLEL_PERF_MODEL_H_
#define SRC_PARALLEL_PERF_MODEL_H_

#include <array>

#include "src/hw/cluster.h"
#include "src/model/models.h"
#include "src/util/units.h"
#include "src/parallel/plan.h"
#include "src/parallel/stage_partition.h"

namespace crius {

// Everything the model needs to evaluate plans for one (job, GPU type) pair.
struct JobContext {
  const OpGraph* graph = nullptr;
  ModelFamily family = ModelFamily::kBert;
  int64_t global_batch = 256;
  GpuType gpu_type = GpuType::kA100;
  GroupTopology topo;
  // Stable identity of the model spec; keys profiling-noise streams & caches.
  uint64_t model_key = 0;
};

// Per-stage evaluation under a (dp, tp) split.
struct StageEval {
  // Compute + tensor-parallel + all-to-all time for one microbatch.
  double t_microbatch = 0.0;
  // Compute-only portion, including the distributed straggler factor.
  double t_compute = 0.0;
  // Compute time of one shard on an isolated single device (what
  // distributed-equivalent compilation + CUPTI timing observes, §5.1).
  double t_compute_single = 0.0;
  // Gradient all-reduce time per iteration.
  double t_dp_sync = 0.0;
  // Per-GPU memory footprint.
  double mem_bytes = 0.0;
  bool fits = false;
};

// Whole-plan evaluation.
struct PlanEval {
  double iter_time = 0.0;  // seconds per training iteration
  double max_stage_mem = 0.0;
  bool feasible = false;  // false iff some stage exceeds GPU memory
};

class PerfModel {
 public:
  // Model constants (documented effects; see DESIGN.md §5).
  static constexpr double kTrainFlopsMult = 3.0;     // fwd + ~2x bwd
  static constexpr double kTpEffLossPerDoubling = 0.045;
  // Distributed execution runs slower than the sum of its single-device parts
  // (kernel desynchronization, stragglers, interference); single-device
  // profiling cannot observe this, making it a systematic estimator error.
  static constexpr double kStragglerPerDoubling = 0.015;
  static constexpr double kOptimStateMult = 8.0;     // 16 B/param over fp16 storage
  static constexpr double kWorkspaceBytes = 0.75 * kGiB;
  static constexpr double kMemLimitFraction = 0.92;
  static constexpr double kDpSyncExposedFraction = 0.5;  // rest overlaps backward
  static constexpr double kIterOverhead = 8e-3;      // optimizer + launch, seconds

  // Builds a model over the cluster's per-type topologies.
  explicit PerfModel(const Cluster& cluster);

  // Context for evaluating `spec` on `type` GPUs. Requires the cluster to have
  // that type.
  JobContext MakeContext(const ModelSpec& spec, GpuType type) const;

  // Evaluates one stage (operator range `range`, GPU count range.gpus) under
  // the given split. Requires dp * tp == range.gpus. `num_microbatches` 0
  // selects the GPipe default of 4 x nstages.
  StageEval EvalStage(const JobContext& ctx, const StageRange& range, int dp, int tp,
                      int nstages, int num_microbatches = 0) const;

  // Exact end-to-end evaluation of a full plan.
  PlanEval Evaluate(const JobContext& ctx, const ParallelPlan& plan) const;

  // Boundary transfer time for one microbatch of `bytes` activations flowing
  // from a stage with tensor degree tp_prev into one with tp_next (forward
  // activations + backward gradients; resharding all-gather when the degrees
  // differ -- Fig. 8's send/recv vs all_gather connectors).
  double BoundaryTransferTime(const JobContext& ctx, double bytes, int tp_prev, int tp_next,
                              bool cross_node) const;

  // GPU-seconds consumed by directly profiling `plan` on real hardware
  // (setup/compilation plus kProfileIters measured iterations on every GPU).
  // This is the paper's "Measured"/"direct profiling" cost (Fig. 12b).
  static constexpr double kProfileSetupSeconds = 15.0;
  static constexpr int kProfileIters = 3;
  double DirectProfileGpuSeconds(const JobContext& ctx, const ParallelPlan& plan) const;

  bool HasType(GpuType type) const { return has_type_[static_cast<int>(type)]; }

 private:
  std::array<GroupTopology, kNumGpuTypes> topo_{};
  std::array<bool, kNumGpuTypes> has_type_{};
};

// Degraded-mode iteration time: the realized latency of a plan whose slowest
// node advertises straggler factor `slowdown` (>= 1.0). Training is bulk-
// synchronous, so every pipeline flush and gradient sync waits for the
// straggler and the whole iteration stretches by its factor.
double DegradedIterTime(double iter_time, double slowdown);

// Kernel efficiency at `samples` per tensor-parallel group per microbatch.
double BatchUtilization(ModelFamily family, double samples);

// Tensor-sharding kernel efficiency at degree tp.
double TpEfficiency(int tp);

}  // namespace crius

#endif  // SRC_PARALLEL_PERF_MODEL_H_
