#include "src/parallel/perf_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace crius {

double BatchUtilization(ModelFamily family, double samples) {
  CRIUS_CHECK(samples > 0.0);
  const double half = BatchHalfPoint(family);
  return samples / (samples + half);
}

double TpEfficiency(int tp) {
  CRIUS_CHECK(tp >= 1);
  return 1.0 - PerfModel::kTpEffLossPerDoubling * static_cast<double>(Log2Floor(tp));
}

PerfModel::PerfModel(const Cluster& cluster) {
  for (GpuType type : AllGpuTypes()) {
    const int ti = static_cast<int>(type);
    if (cluster.HasType(type)) {
      topo_[ti] = cluster.TopologyFor(type);
      has_type_[ti] = true;
    }
  }
}

JobContext PerfModel::MakeContext(const ModelSpec& spec, GpuType type) const {
  CRIUS_CHECK_MSG(HasType(type), "no " << GpuName(type) << " in cluster");
  JobContext ctx;
  ctx.graph = &GetOpGraph(spec);
  ctx.family = spec.family;
  ctx.global_batch = spec.global_batch;
  ctx.gpu_type = type;
  ctx.topo = topo_[static_cast<int>(type)];
  ctx.model_key = HashString(spec.Key());
  return ctx;
}

namespace {

// Topology seen by a data-parallel group whose replicas are tp GPUs apart:
// with tp GPUs packed innermost, a node holds gpus_per_node / tp replicas.
GroupTopology DpGroupTopology(const GroupTopology& topo, int tp) {
  GroupTopology t = topo;
  const int tp_in_node = std::min(tp, topo.gpus_per_node);
  t.gpus_per_node = std::max(1, topo.gpus_per_node / tp_in_node);
  return t;
}

}  // namespace

StageEval PerfModel::EvalStage(const JobContext& ctx, const StageRange& range, int dp, int tp,
                               int nstages, int num_microbatches) const {
  CRIUS_CHECK(ctx.graph != nullptr);
  CRIUS_CHECK(dp >= 1 && tp >= 1);
  CRIUS_CHECK_MSG(dp * tp == range.gpus, "dp*tp != stage gpus");
  const OpGraph& g = *ctx.graph;
  const GpuSpec& spec = GpuSpecOf(ctx.gpu_type);

  if (num_microbatches <= 0) {
    num_microbatches = 4 * nstages;
  }
  const double microbatch =
      static_cast<double>(ctx.global_batch) / static_cast<double>(num_microbatches);
  // Samples processed by one tensor-parallel group per microbatch.
  const double local_samples = microbatch / static_cast<double>(dp);

  StageEval eval;

  // --- Compute -------------------------------------------------------------
  const double fwd_flops = g.FwdFlops(range.op_begin, range.op_end);
  const double eff = ComputeEfficiency(ctx.family) * TpEfficiency(tp) *
                     BatchUtilization(ctx.family, local_samples);
  eval.t_compute_single = kTrainFlopsMult * fwd_flops * local_samples /
                          (static_cast<double>(tp) * spec.peak_flops * eff);
  const double straggler =
      1.0 + kStragglerPerDoubling * static_cast<double>(Log2Floor(dp * tp));
  eval.t_compute = eval.t_compute_single * straggler;

  // --- Intra-stage communication --------------------------------------------
  double t_comm = 0.0;
  if (tp > 1) {
    const double tp_bytes = g.TpCommBytes(range.op_begin, range.op_end) * local_samples;
    t_comm += AllReduceTime(ctx.topo, tp_bytes, tp);
    const double a2a_bytes = g.A2aBytes(range.op_begin, range.op_end) * local_samples;
    if (a2a_bytes > 0.0) {
      t_comm += AllToAllTime(ctx.topo, a2a_bytes, tp);
    }
  }
  eval.t_microbatch = eval.t_compute + t_comm;

  // --- Gradient synchronization ---------------------------------------------
  if (dp > 1) {
    const double grad_bytes =
        g.ParamBytes(range.op_begin, range.op_end) / static_cast<double>(tp);
    eval.t_dp_sync = AllReduceTime(DpGroupTopology(ctx.topo, tp), grad_bytes, dp);
  }

  // --- Memory ----------------------------------------------------------------
  const double weight_state =
      g.ParamBytes(range.op_begin, range.op_end) * kOptimStateMult / static_cast<double>(tp);
  // 1F1B-style schedule keeps ~nstages microbatches of activations in flight.
  const double in_flight = static_cast<double>(nstages);
  const double acts = g.ActMemBytes(range.op_begin, range.op_end) * local_samples /
                      static_cast<double>(tp) * in_flight;
  eval.mem_bytes = weight_state + acts + kWorkspaceBytes;
  eval.fits = eval.mem_bytes <= spec.memory_bytes * kMemLimitFraction;

  return eval;
}

double PerfModel::BoundaryTransferTime(const JobContext& ctx, double bytes, int tp_prev,
                                       int tp_next, bool cross_node) const {
  // Sharded producers send their slices in parallel; a tensor-degree change
  // adds an all-gather to reassemble the activation in the consumer group.
  // Counted twice: forward activations and backward gradients.
  const double slice = bytes / static_cast<double>(std::max(1, tp_prev));
  double t = SendRecvTime(ctx.topo, slice, cross_node);
  if (tp_next != tp_prev && std::max(tp_prev, tp_next) > 1) {
    t += AllGatherTime(ctx.topo, bytes, std::max(tp_prev, tp_next));
  }
  return 2.0 * t;
}

PlanEval PerfModel::Evaluate(const JobContext& ctx, const ParallelPlan& plan) const {
  CRIUS_CHECK(ctx.graph != nullptr);
  CRIUS_CHECK(!plan.stages.empty());
  CRIUS_CHECK(plan.gpu_type == ctx.gpu_type);
  const OpGraph& g = *ctx.graph;
  const int nstages = plan.num_stages();
  const int num_microbatches = plan.num_microbatches();
  const double microbatch =
      static_cast<double>(ctx.global_batch) / static_cast<double>(num_microbatches);

  PlanEval out;
  out.feasible = true;

  double sum_stage = 0.0;
  double max_stage = 0.0;
  double sum_boundary = 0.0;
  double max_dp_sync = 0.0;
  int gpu_offset = 0;

  for (int s = 0; s < nstages; ++s) {
    const StagePlan& sp = plan.stages[s];
    StageRange range{sp.op_begin, sp.op_end, sp.gpus};
    const StageEval ev = EvalStage(ctx, range, sp.dp, sp.tp, nstages, num_microbatches);
    if (!ev.fits) {
      out.feasible = false;
    }
    out.max_stage_mem = std::max(out.max_stage_mem, ev.mem_bytes);
    sum_stage += ev.t_microbatch;
    max_stage = std::max(max_stage, ev.t_microbatch);
    max_dp_sync = std::max(max_dp_sync, ev.t_dp_sync);

    if (s > 0) {
      const double bytes = g.BoundaryBytes(sp.op_begin) * microbatch;
      // A boundary stays on-node only if the consumer stage starts mid-node.
      const bool cross_node = (gpu_offset % ctx.topo.gpus_per_node) == 0;
      sum_boundary +=
          BoundaryTransferTime(ctx, bytes, plan.stages[s - 1].tp, sp.tp, cross_node);
    }
    gpu_offset += sp.gpus;
  }

  // §5.1 pipeline latency: first microbatch through all stages (compute +
  // boundary transfers), then B-1 microbatches at the slowest stage's pace
  // with communication overlapped, then the exposed part of gradient sync.
  out.iter_time = sum_stage + sum_boundary +
                  static_cast<double>(num_microbatches - 1) * max_stage +
                  kDpSyncExposedFraction * max_dp_sync + kIterOverhead;
  if (!out.feasible) {
    out.iter_time = std::numeric_limits<double>::infinity();
  }
  return out;
}

double DegradedIterTime(double iter_time, double slowdown) {
  CRIUS_CHECK_MSG(slowdown >= 1.0, "straggler slowdown below 1.0");
  return iter_time * slowdown;
}

double PerfModel::DirectProfileGpuSeconds(const JobContext& ctx, const ParallelPlan& plan) const {
  const PlanEval ev = Evaluate(ctx, plan);
  const double iter = ev.feasible ? ev.iter_time : 0.0;  // OOM aborts after setup
  return (kProfileSetupSeconds + static_cast<double>(kProfileIters) * iter) *
         static_cast<double>(plan.total_gpus());
}

}  // namespace crius
