#include "src/parallel/stage_partition.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"
#include "src/util/mathutil.h"

namespace crius {

namespace {

struct SplitCost {
  double max_flops = std::numeric_limits<double>::infinity();
  double boundary_bytes = std::numeric_limits<double>::infinity();

  bool BetterThan(const SplitCost& other) const {
    if (max_flops != other.max_flops) {
      return max_flops < other.max_flops;
    }
    return boundary_bytes < other.boundary_bytes;
  }
};

}  // namespace

std::vector<StageRange> PartitionStages(const OpGraph& graph, int ngpus, int nstages) {
  CRIUS_CHECK(graph.finalized());
  CRIUS_CHECK_MSG(IsPowerOfTwo(ngpus), "GPU count must be a power of two, got " << ngpus);
  const int n = static_cast<int>(graph.size());
  CRIUS_CHECK_MSG(nstages >= 1 && nstages <= std::min(ngpus, n),
                  "invalid stage count " << nstages << " for " << ngpus << " GPUs / " << n
                                         << " ops");

  // --- Boundary selection -------------------------------------------------
  // dp[i][s] = best cost of splitting ops [0, i) into s stages; lexicographic
  // (max stage FLOPs, total boundary traffic), i.e. the §4.2 principle of
  // similar per-stage latency with minimized inter-stage communication.
  std::vector<std::vector<SplitCost>> dp(n + 1, std::vector<SplitCost>(nstages + 1));
  std::vector<std::vector<int>> parent(n + 1, std::vector<int>(nstages + 1, -1));
  dp[0][0] = SplitCost{0.0, 0.0};

  for (int s = 1; s <= nstages; ++s) {
    for (int i = s; i <= n; ++i) {
      // Last stage covers ops [j, i).
      for (int j = s - 1; j < i; ++j) {
        if (parent[j][s - 1] == -1 && !(j == 0 && s == 1)) {
          continue;
        }
        const SplitCost& prev = dp[j][s - 1];
        if (prev.max_flops == std::numeric_limits<double>::infinity()) {
          continue;
        }
        SplitCost cand;
        cand.max_flops = std::max(prev.max_flops, graph.FwdFlops(j, i));
        cand.boundary_bytes = prev.boundary_bytes + (j > 0 ? graph.BoundaryBytes(j) : 0.0);
        if (cand.BetterThan(dp[i][s])) {
          dp[i][s] = cand;
          parent[i][s] = j;
        }
      }
    }
  }
  CRIUS_CHECK(parent[n][nstages] != -1 || nstages == 1);

  std::vector<StageRange> stages(nstages);
  {
    int i = n;
    for (int s = nstages; s >= 1; --s) {
      const int j = (s == 1) ? 0 : parent[i][s];
      CRIUS_CHECK(j >= 0);
      stages[s - 1].op_begin = static_cast<size_t>(j);
      stages[s - 1].op_end = static_cast<size_t>(i);
      i = j;
    }
    CRIUS_CHECK(i == 0);
  }

  // --- GPU assignment -----------------------------------------------------
  // Start every stage at one GPU and repeatedly double the most FLOPs-loaded
  // stage (highest FLOPs per GPU). The smallest stage count always divides the
  // remaining budget, so the greedy loop lands exactly on ngpus.
  std::vector<double> flops(nstages);
  for (int s = 0; s < nstages; ++s) {
    flops[s] = graph.FwdFlops(stages[s].op_begin, stages[s].op_end);
    stages[s].gpus = 1;
  }
  int total = nstages;
  while (total < ngpus) {
    int best = -1;
    double best_load = -1.0;
    const int budget = ngpus - total;
    for (int s = 0; s < nstages; ++s) {
      if (stages[s].gpus > budget) {
        continue;  // doubling would overshoot
      }
      const double load = flops[s] / static_cast<double>(stages[s].gpus);
      if (load > best_load) {
        best_load = load;
        best = s;
      }
    }
    CRIUS_CHECK_MSG(best >= 0, "GPU assignment cannot reach " << ngpus);
    total += stages[best].gpus;
    stages[best].gpus *= 2;
  }
  CRIUS_CHECK(total == ngpus);
  return stages;
}

std::vector<StageRange> PartitionStagesUniform(const OpGraph& graph, int ngpus, int nstages) {
  CRIUS_CHECK(graph.finalized());
  CRIUS_CHECK_MSG(IsPowerOfTwo(ngpus), "GPU count must be a power of two, got " << ngpus);
  const int n = static_cast<int>(graph.size());
  CRIUS_CHECK_MSG(nstages >= 1 && nstages <= std::min(ngpus, n),
                  "invalid stage count " << nstages << " for " << ngpus << " GPUs / " << n
                                         << " ops");
  std::vector<StageRange> stages(nstages);
  // Equal operator counts (remainder to the front), equal GPU counts. The GPU
  // split is exact because nstages and ngpus are both powers of two.
  size_t begin = 0;
  for (int s = 0; s < nstages; ++s) {
    const size_t count = static_cast<size_t>(n / nstages + (s < n % nstages ? 1 : 0));
    stages[s].op_begin = begin;
    stages[s].op_end = begin + count;
    stages[s].gpus = ngpus / nstages;
    begin += count;
  }
  CRIUS_CHECK(begin == graph.size());
  return stages;
}

std::vector<int> CandidateStageCounts(const OpGraph& graph, int ngpus, int max_stages) {
  CRIUS_CHECK(IsPowerOfTwo(ngpus));
  const int limit =
      std::min({ngpus, static_cast<int>(graph.size()), std::max(1, max_stages)});
  std::vector<int> out;
  for (int s = 1; s <= limit; s *= 2) {
    out.push_back(s);
  }
  return out;
}

}  // namespace crius
