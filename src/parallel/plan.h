// Parallelism plan IR.
//
// A plan fixes, for one GPU type, the pipeline decomposition of the model into
// stages (each a contiguous operator range with a GPU count) and the internal
// data x tensor split of every stage. This mirrors the paper's implicit
// priority (§4.1): pipeline first, then per-stage (dp, tp).

#ifndef SRC_PARALLEL_PLAN_H_
#define SRC_PARALLEL_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/hw/gpu.h"
#include "src/model/opgraph.h"

namespace crius {

struct StagePlan {
  // Operator range [op_begin, op_end).
  size_t op_begin = 0;
  size_t op_end = 0;
  // GPUs assigned to this stage; a power of two, = dp * tp.
  int gpus = 1;
  int dp = 1;
  int tp = 1;
};

struct ParallelPlan {
  GpuType gpu_type = GpuType::kA100;
  std::vector<StagePlan> stages;
  // Microbatches per stage count; the paper follows GPipe and fixes this to 4
  // (Fig. 10). Exposed as a knob for the microbatch-sensitivity extension
  // study -- more microbatches shrink the pipeline bubble but reduce
  // per-kernel batch efficiency.
  int microbatch_factor = 4;

  int num_stages() const { return static_cast<int>(stages.size()); }
  int total_gpus() const;

  // Number of pipeline microbatches (factor x stage count).
  int num_microbatches() const { return microbatch_factor * num_stages(); }

  // e.g. "A100 P2[D2T1|D1T2]".
  std::string ToString() const;

  // Compact parallelism descriptor like the paper's figures, e.g. "4D" for
  // pure data parallel, "2P2T", "2D2T", "2P2D2T".
  std::string ShortForm() const;
};

// Validates structural invariants (contiguous full coverage of `graph`,
// power-of-two GPU counts, dp*tp == gpus). Aborts on violation.
void ValidatePlan(const ParallelPlan& plan, const OpGraph& graph);

}  // namespace crius

#endif  // SRC_PARALLEL_PLAN_H_
