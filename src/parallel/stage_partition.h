// Pipeline-stage determination (§4.2, Fig. 7).
//
// Given an operator graph and an allocation of N GPUs, Crius determines the
// stage boundaries at the *scheduler* level: it maps GPUs to operators in
// proportion to their FLOPs (so a theoretically full pipeline forms), then
// clusters operators into the requested number of stages, preferring
// boundaries with little inter-operator traffic, and finally rounds each
// stage's accumulated GPU share to a power of two (the common cluster
// topology) such that the total is exactly N.

#ifndef SRC_PARALLEL_STAGE_PARTITION_H_
#define SRC_PARALLEL_STAGE_PARTITION_H_

#include <vector>

#include "src/model/opgraph.h"
#include "src/parallel/plan.h"

namespace crius {

struct StageRange {
  size_t op_begin = 0;
  size_t op_end = 0;
  int gpus = 1;
};

// Partitions `graph` into `nstages` contiguous stages over `ngpus` GPUs.
// Requirements: ngpus a power of two, 1 <= nstages <= min(ngpus, graph.size()).
// Guarantees: stages tile the graph; every stage GPU count is a power of two
// >= 1; counts sum to ngpus.
//
// The split minimizes the maximum per-stage FLOPs (balanced pipeline), using
// total boundary traffic as the tie breaker (minimized communication).
std::vector<StageRange> PartitionStages(const OpGraph& graph, int ngpus, int nstages);

// Stage counts Crius considers for a job on `ngpus` GPUs: powers of two from 1
// to min(ngpus, max_stages, graph.size()) -- the "log N_G choices" of §6.1.
std::vector<int> CandidateStageCounts(const OpGraph& graph, int ngpus, int max_stages = 16);

// Naive baseline partitioner for the §4.2 ablation: equal *operator counts*
// per stage and equal GPU counts, ignoring FLOPs balance and boundary
// traffic. Same pre/post-conditions as PartitionStages.
std::vector<StageRange> PartitionStagesUniform(const OpGraph& graph, int ngpus, int nstages);

}  // namespace crius

#endif  // SRC_PARALLEL_STAGE_PARTITION_H_
