#include "src/parallel/explorer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/hw/interconnect.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/trace.h"

namespace crius {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One per-stage candidate with its precomputed evaluation.
struct StageOption {
  int dp = 1;
  int tp = 1;
  StageEval eval;
};

// Precomputed boundary-transfer time between adjacent stages for a given
// (producer tp, consumer tp) pair; mirrors PerfModel::Evaluate's internals so
// enumeration can assemble totals incrementally.
double BoundaryTime(const JobContext& ctx, const OpGraph& g, const StageRange& next,
                    int tp_prev, int tp_next, int gpu_offset, double microbatch) {
  const double bytes = g.BoundaryBytes(next.op_begin) * microbatch;
  const bool cross_node = (gpu_offset % ctx.topo.gpus_per_node) == 0;
  const double slice = bytes / static_cast<double>(std::max(1, tp_prev));
  double t = SendRecvTime(ctx.topo, slice, cross_node);
  if (tp_next != tp_prev && std::max(tp_prev, tp_next) > 1) {
    t += AllGatherTime(ctx.topo, bytes, std::max(tp_prev, tp_next));
  }
  return 2.0 * t;
}

// Partial chain state during enumeration / beam search.
struct ChainState {
  double sum = 0.0;       // sum of stage microbatch times + boundary times
  double max_stage = 0.0;
  double max_sync = 0.0;
  int last_tp = 1;
  std::vector<int> choice;  // option index per stage decided so far

  double Bound(int num_microbatches) const {
    return sum + static_cast<double>(num_microbatches - 1) * max_stage;
  }
};

}  // namespace

Explorer::Explorer(const PerfModel* model) : model_(model) {
  CRIUS_CHECK(model != nullptr);
}

ExploreResult Explorer::ExploreWithinStages(const JobContext& ctx, int ngpus, int nstages,
                                            const StageOptionFilter& filter) const {
  CRIUS_CHECK(ctx.graph != nullptr);
  CRIUS_CHECK(IsPowerOfTwo(ngpus));
  CRIUS_TRACE_SPAN("explorer.explore");
  CRIUS_COUNTER_INC("explorer.explorations");
  const OpGraph& g = *ctx.graph;
  ExploreResult result;
  if (nstages > std::min<int>(ngpus, static_cast<int>(g.size()))) {
    return result;
  }

  const std::vector<StageRange> ranges = PartitionStages(g, ngpus, nstages);
  const int num_microbatches = 4 * nstages;
  const double microbatch =
      static_cast<double>(ctx.global_batch) / static_cast<double>(num_microbatches);

  // Per-stage candidate lists (memory-feasible (dp, tp) splits).
  std::vector<std::vector<StageOption>> options(ranges.size());
  double combos = 1.0;
  for (size_t s = 0; s < ranges.size(); ++s) {
    for (const PowerOfTwoSplit& split : PowerOfTwoSplits(ranges[s].gpus)) {
      const int dp = static_cast<int>(split.d);
      const int tp = static_cast<int>(split.t);
      if (filter && !filter(static_cast<int>(s), dp, tp)) {
        continue;
      }
      StageOption opt;
      opt.dp = dp;
      opt.tp = tp;
      opt.eval = model_->EvalStage(ctx, ranges[s], dp, tp, nstages);
      if (!opt.eval.fits) {
        continue;
      }
      options[s].push_back(opt);
    }
    if (options[s].empty()) {
      return result;  // some stage cannot fit in memory at all
    }
    combos *= static_cast<double>(options[s].size());
  }

  // GPU offsets of each stage for boundary cross-node decisions.
  std::vector<int> offsets(ranges.size(), 0);
  for (size_t s = 1; s < ranges.size(); ++s) {
    offsets[s] = offsets[s - 1] + ranges[s - 1].gpus;
  }

  auto finish = [&](const ChainState& st) -> double {
    return st.sum + static_cast<double>(num_microbatches - 1) * st.max_stage +
           PerfModel::kDpSyncExposedFraction * st.max_sync + PerfModel::kIterOverhead;
  };

  auto extend = [&](const ChainState& st, size_t s, size_t oi) {
    const StageOption& opt = options[s][oi];
    ChainState next = st;
    next.sum += opt.eval.t_microbatch;
    if (s > 0) {
      next.sum += BoundaryTime(ctx, g, ranges[s], st.last_tp, opt.tp, offsets[s], microbatch);
    }
    next.max_stage = std::max(next.max_stage, opt.eval.t_microbatch);
    next.max_sync = std::max(next.max_sync, opt.eval.t_dp_sync);
    next.last_tp = opt.tp;
    next.choice.push_back(static_cast<int>(oi));
    return next;
  };

  double best_time = kInf;
  std::vector<int> best_choice;

  if (combos <= static_cast<double>(kExhaustiveLimit)) {
    // Depth-first exhaustive enumeration.
    std::vector<ChainState> stack;
    ChainState init;
    stack.push_back(init);
    while (!stack.empty()) {
      ChainState st = std::move(stack.back());
      stack.pop_back();
      const size_t s = st.choice.size();
      if (s == ranges.size()) {
        const double t = finish(st);
        if (t < best_time) {
          best_time = t;
          best_choice = st.choice;
        }
        continue;
      }
      for (size_t oi = 0; oi < options[s].size(); ++oi) {
        ChainState next = extend(st, s, oi);
        if (next.Bound(num_microbatches) < best_time) {
          stack.push_back(std::move(next));
        }
      }
    }
    // Physical full-space profiling runs *every* combination -- the in-memory
    // branch-and-bound shortcut above finds the same optimum, but hardware
    // exploration has no oracle bound, so the cost accounting charges all of
    // them (§2.1's exhaustive search).
    result.plans_evaluated = static_cast<int>(combos);
  } else {
    // Deterministic beam search over the stage chain.
    std::vector<ChainState> beam;
    beam.push_back(ChainState{});
    for (size_t s = 0; s < ranges.size(); ++s) {
      std::vector<ChainState> expanded;
      expanded.reserve(beam.size() * options[s].size());
      for (const ChainState& st : beam) {
        for (size_t oi = 0; oi < options[s].size(); ++oi) {
          expanded.push_back(extend(st, s, oi));
        }
      }
      result.plans_evaluated += static_cast<int>(expanded.size());
      std::stable_sort(expanded.begin(), expanded.end(),
                       [&](const ChainState& a, const ChainState& b) {
                         return a.Bound(num_microbatches) < b.Bound(num_microbatches);
                       });
      if (expanded.size() > static_cast<size_t>(kBeamWidth)) {
        expanded.resize(static_cast<size_t>(kBeamWidth));
      }
      beam = std::move(expanded);
    }
    for (const ChainState& st : beam) {
      const double t = finish(st);
      if (t < best_time) {
        best_time = t;
        best_choice = st.choice;
      }
    }
  }

  CRIUS_CHECK_MSG(best_choice.size() == ranges.size(), "enumeration lost the optimum");

  // Materialize the winning plan and account for its profiling cost exactly.
  ParallelPlan plan;
  plan.gpu_type = ctx.gpu_type;
  for (size_t s = 0; s < ranges.size(); ++s) {
    const StageOption& opt = options[s][static_cast<size_t>(best_choice[s])];
    StagePlan sp;
    sp.op_begin = ranges[s].op_begin;
    sp.op_end = ranges[s].op_end;
    sp.gpus = ranges[s].gpus;
    sp.dp = opt.dp;
    sp.tp = opt.tp;
    plan.stages.push_back(sp);
  }
  const PlanEval exact = model_->Evaluate(ctx, plan);
  CRIUS_CHECK(exact.feasible);

  result.best = PlanChoice{std::move(plan), exact.iter_time};

  // Hardware cost: every evaluated candidate would have been compiled and
  // timed for kProfileIters iterations on all ngpus. Approximate each
  // candidate's runtime by the winner's (they are within a small factor).
  result.profile_gpu_seconds =
      static_cast<double>(std::min(result.plans_evaluated, kPhysicalProfileCap)) *
      (PerfModel::kProfileSetupSeconds +
       static_cast<double>(PerfModel::kProfileIters) * exact.iter_time) *
      static_cast<double>(ngpus);
  CRIUS_HISTOGRAM_RECORD("explorer.plans_enumerated",
                         static_cast<double>(result.plans_evaluated));
  return result;
}

ExploreResult Explorer::FullExplore(const JobContext& ctx, int ngpus) const {
  CRIUS_TRACE_SPAN("explorer.full_explore");
  ExploreResult result;
  for (int nstages : CandidateStageCounts(*ctx.graph, ngpus)) {
    ExploreResult r = ExploreWithinStages(ctx, ngpus, nstages);
    result.plans_evaluated += r.plans_evaluated;
    result.profile_gpu_seconds += r.profile_gpu_seconds;
    if (r.best.has_value() &&
        (!result.best.has_value() || r.best->iter_time < result.best->iter_time)) {
      result.best = std::move(r.best);
    }
  }
  return result;
}

}  // namespace crius
