#include "src/parallel/plan.h"

#include <sstream>

#include "src/util/check.h"
#include "src/util/mathutil.h"

namespace crius {

int ParallelPlan::total_gpus() const {
  int n = 0;
  for (const StagePlan& s : stages) {
    n += s.gpus;
  }
  return n;
}

std::string ParallelPlan::ToString() const {
  std::ostringstream oss;
  oss << GpuName(gpu_type) << " P" << stages.size() << "[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) {
      oss << "|";
    }
    oss << "D" << stages[i].dp << "T" << stages[i].tp;
  }
  oss << "]";
  return oss.str();
}

std::string ParallelPlan::ShortForm() const {
  // Uniform-stage plans print like the paper's annotations ("4D", "2D2T",
  // "2P4D"); mixed-stage plans fall back to the full form.
  bool uniform = true;
  for (const StagePlan& s : stages) {
    if (s.dp != stages[0].dp || s.tp != stages[0].tp) {
      uniform = false;
      break;
    }
  }
  if (!uniform) {
    return ToString();
  }
  std::ostringstream oss;
  if (stages.size() > 1) {
    oss << stages.size() << "P";
  }
  if (stages[0].dp > 1) {
    oss << stages[0].dp << "D";
  }
  if (stages[0].tp > 1) {
    oss << stages[0].tp << "T";
  }
  if (oss.str().empty()) {
    oss << "1D";
  }
  return oss.str();
}

void ValidatePlan(const ParallelPlan& plan, const OpGraph& graph) {
  CRIUS_CHECK_MSG(!plan.stages.empty(), "plan has no stages");
  size_t expect = 0;
  for (const StagePlan& s : plan.stages) {
    CRIUS_CHECK_MSG(s.op_begin == expect, "stages must tile the graph contiguously");
    CRIUS_CHECK_MSG(s.op_end > s.op_begin, "empty stage");
    CRIUS_CHECK_MSG(IsPowerOfTwo(s.gpus), "stage GPU count must be a power of two");
    CRIUS_CHECK_MSG(s.dp >= 1 && s.tp >= 1 && s.dp * s.tp == s.gpus,
                    "dp*tp must equal the stage GPU count");
    expect = s.op_end;
  }
  CRIUS_CHECK_MSG(expect == graph.size(), "stages must cover all operators");
}

}  // namespace crius
