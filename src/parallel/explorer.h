// Adaptive-parallelism exploration (the paper's §2.1 baseline behaviour).
//
// Given a job context and a GPU grant, the explorer enumerates parallelism
// plans -- stage counts x per-stage (dp, tp) splits -- and returns the best
// one under the exact performance model. This is what Alpa-style systems do
// by physically running candidate plans; `profile_gpu_seconds` accounts for
// that hardware cost (setup + measured iterations on every allocated GPU per
// candidate), which is what Crius's Cell estimation avoids.
//
// The tuner's pruning (§5.2) plugs in through StageOptionFilter: a predicate
// that restricts each stage's (dp, tp) candidates.

#ifndef SRC_PARALLEL_EXPLORER_H_
#define SRC_PARALLEL_EXPLORER_H_

#include <functional>
#include <optional>

#include "src/parallel/perf_model.h"

namespace crius {

struct PlanChoice {
  ParallelPlan plan;
  double iter_time = 0.0;
};

struct ExploreResult {
  // Best feasible plan, or nullopt if every candidate runs out of memory.
  std::optional<PlanChoice> best;
  // Complete candidate plans evaluated ("physically profiled").
  int plans_evaluated = 0;
  // GPU-seconds the evaluation would cost on real hardware.
  double profile_gpu_seconds = 0.0;
};

// Restricts the (dp, tp) candidates of stage `stage_index`; return false to
// drop the candidate.
using StageOptionFilter = std::function<bool(int stage_index, int dp, int tp)>;

class Explorer {
 public:
  // Exhaustive chain enumeration is used while the combination count stays
  // under this limit; larger spaces fall back to deterministic beam search.
  static constexpr int kExhaustiveLimit = 4096;
  static constexpr int kBeamWidth = 256;
  // Hardware-cost accounting: exploration analytically screens candidates and
  // physically measures at most this many end-to-end (Alpa-style top-k
  // validation); profile_gpu_seconds charges min(plans_evaluated, cap).
  static constexpr int kPhysicalProfileCap = 32;

  explicit Explorer(const PerfModel* model);

  // Best plan with the §4.2 stage partition for exactly `nstages` stages.
  ExploreResult ExploreWithinStages(const JobContext& ctx, int ngpus, int nstages,
                                    const StageOptionFilter& filter = nullptr) const;

  // Full adaptive parallelism: best plan over all candidate stage counts.
  ExploreResult FullExplore(const JobContext& ctx, int ngpus) const;

  const PerfModel& model() const { return *model_; }

 private:
  const PerfModel* model_;
};

}  // namespace crius

#endif  // SRC_PARALLEL_EXPLORER_H_
