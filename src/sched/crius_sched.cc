#include "src/sched/crius_sched.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <set>

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"
#include "src/util/trace.h"

namespace crius {

namespace {

// Shard-routing hash for the ranking memo.
uint64_t JobHash(int64_t id) { return SplitMix64(static_cast<uint64_t>(id)); }

// Per-type candidate-size cap, exactly as GenerateCellsUpTo derives it:
// FloorPowerOfTwo of the usable capacity, 0 when the type is absent or fully
// failed. Cached Cell rankings are a pure function of the job and these caps
// (slowdowns are applied at execution time, never in the oracle's what-if
// estimates), so diffing caps across rounds identifies exactly the entries a
// health change can dirty.
std::array<int, kNumGpuTypes> CandidateCaps(const Cluster& cluster) {
  std::array<int, kNumGpuTypes> caps{};
  for (GpuType type : AllGpuTypes()) {
    if (!cluster.HasType(type)) {
      continue;
    }
    const int usable = cluster.UsableGpus(type);
    caps[static_cast<int>(type)] =
        usable < 1 ? 0 : static_cast<int>(FloorPowerOfTwo(usable));
  }
  return caps;
}

// True when the §6.1 candidate GPU sizes ({N_G/2, N_G, 2*N_G} clipped to the
// cap) for a job requesting `requested` GPUs differ between caps a and b.
bool CandidateSizesDiffer(int requested, int cap_a, int cap_b) {
  for (const int ngpus : {requested / 2, requested, requested * 2}) {
    if (ngpus < 1) {
      continue;
    }
    if ((ngpus <= cap_a) != (ngpus <= cap_b)) {
      return true;
    }
  }
  return false;
}

// Virtual placement of one job during a scheduling round.
struct VirtualJob {
  const JobState* state = nullptr;
  std::optional<Cell> cell;
  double score = 0.0;
  bool opportunistic = false;
};

using FreeMap = std::array<int, kNumGpuTypes>;

bool Fits(const Cell& cell, const FreeMap& free) {
  return free[static_cast<int>(cell.gpu_type)] >= cell.ngpus;
}

void Take(const Cell& cell, FreeMap& free) {
  free[static_cast<int>(cell.gpu_type)] -= cell.ngpus;
  CRIUS_CHECK(free[static_cast<int>(cell.gpu_type)] >= 0);
}

void Give(const Cell& cell, FreeMap& free) {
  free[static_cast<int>(cell.gpu_type)] += cell.ngpus;
}

}  // namespace

CriusScheduler::CriusScheduler(PerformanceOracle* oracle, CriusConfig config)
    : Scheduler(oracle), config_(config) {
  CRIUS_CHECK(config_.search_depth >= 0);
}

std::string CriusScheduler::name() const {
  if (config_.deadline_aware) {
    return "Crius-DDL";
  }
  if (config_.objective == CriusObjective::kMaxMinFairness) {
    return "Crius-Fair";
  }
  if (!config_.adaptivity_scaling && config_.heterogeneity_scaling) {
    return "Crius-NA";
  }
  if (config_.adaptivity_scaling && !config_.heterogeneity_scaling) {
    return "Crius-NH";
  }
  if (!config_.adaptivity_scaling && !config_.heterogeneity_scaling) {
    return "Crius-static";
  }
  return "Crius";
}

CriusScheduler::JobCells CriusScheduler::ComputeCells(const TrainingJob& job,
                                                      const Cluster& cluster) {
  CRIUS_TRACE_SPAN("sched.cells_for");
  JobCells jc;
  std::vector<Cell> candidates;
  for (const Cell& cell : GenerateCells(job, cluster)) {
    CRIUS_COUNTER_INC("sched.cells_considered");
    if (!config_.heterogeneity_scaling && cell.gpu_type != job.requested_type) {
      CRIUS_COUNTER_INC("sched.cells_pruned");
      continue;
    }
    if (!config_.adaptivity_scaling && cell.ngpus != job.requested_gpus) {
      CRIUS_COUNTER_INC("sched.cells_pruned");
      continue;
    }
    candidates.push_back(cell);
  }
  std::vector<double> throughputs;
  oracle_->EstimatedThroughputBatch(job.spec, candidates, &throughputs);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double thr = throughputs[i];
    if (thr <= 0.0) {
      CRIUS_COUNTER_INC("sched.cells_infeasible");
      continue;  // infeasible Cell
    }
    jc.choices.push_back(CellChoice{candidates[i], thr});
    if (candidates[i].ngpus == job.requested_gpus) {
      jc.ref_throughput = std::max(jc.ref_throughput, thr);
    }
  }
  if (jc.ref_throughput <= 0.0 && !jc.choices.empty()) {
    for (const CellChoice& c : jc.choices) {
      jc.ref_throughput = std::max(jc.ref_throughput, c.score);
    }
  }
  // Normalize scores so cluster throughput sums job fractions of their
  // requested-shape performance.
  for (CellChoice& c : jc.choices) {
    c.score = jc.ref_throughput > 0.0 ? c.score / jc.ref_throughput : 0.0;
  }
  std::stable_sort(jc.choices.begin(), jc.choices.end(),
                   [](const CellChoice& a, const CellChoice& b) { return a.score > b.score; });
  CRIUS_HISTOGRAM_RECORD("sched.cells_per_job", static_cast<double>(jc.choices.size()));
  return jc;
}

const CriusScheduler::JobCells& CriusScheduler::CellsFor(const TrainingJob& job,
                                                         const Cluster& cluster) {
  const MemoStamp stamp{cluster.identity(), cluster.health_epoch()};
  const uint64_t hash = JobHash(job.id);
  if (const JobCells* hit = cells_memo_.Find(job.id, hash, stamp)) {
    return *hit;
  }
  // Compute outside the memo lock (the oracle serializes per shard); a racing
  // same-job miss loses the PutIfAbsent and the first value wins -- both
  // computed the identical pure result, and first-wins keeps references
  // handed out above immutable.
  JobCells jc = ComputeCells(job, cluster);
  return cells_memo_.PutIfAbsent(job.id, hash, stamp, std::move(jc));
}

void CriusScheduler::SyncCellsCache(const RoundContext& round) {
  // Phase breakdown of the round's cache work: everything up to the warm-up
  // is memo maintenance ("memo_restamp"); the parallel ComputeCells warm-up
  // is where the oracle estimates run ("estimator"). Both land in the
  // labeled histogram sched.phase_ms next to the "explorer" phase recorded
  // by Schedule().
  static Histogram& restamp_ms = CounterRegistry::Global().GetHistogram(
      "sched.phase_ms", MetricLabels{{"phase", "memo_restamp"}});
  static Histogram& estimator_ms = CounterRegistry::Global().GetHistogram(
      "sched.phase_ms", MetricLabels{{"phase", "estimator"}});
  const auto t_enter = std::chrono::steady_clock::now();
  const Cluster& cluster = round.cluster();
  const std::vector<const JobState*>& jobs = round.jobs();
  const MemoStamp stamp{cluster.identity(), cluster.health_epoch()};
  const std::array<int, kNumGpuTypes> caps = CandidateCaps(cluster);

  // 1. Pick the maintenance path. The incremental delta path requires:
  // incremental mode on, the same cluster object as last round, and -- when
  // the health epoch moved -- an event delta that actually reports the health
  // changes (the RoundContext contract). An empty-handed delta, a cluster
  // identity change (different hardware; cached rankings are meaningless),
  // or incremental mode off all force the full re-rank, which is always
  // correct.
  const bool stamp_moved = cells_stamp_known_ && cells_stamp_ != stamp;
  bool full = !config_.incremental || !cells_stamp_known_ ||
              cells_stamp_.identity != stamp.identity;
  if (!full && cells_stamp_.epoch != stamp.epoch && !round.has_health_events()) {
    full = true;
  }

  if (full) {
    if (stamp_moved && !cells_memo_.empty()) {
      CRIUS_COUNTER_INC("sched.cells_cache_invalidations");
    }
    cells_memo_.Clear();
    CRIUS_COUNTER_INC("sched.cells_full_reranks");
  } else if (cells_stamp_.epoch != stamp.epoch) {
    // 1b. Incremental dirty set: a health change re-ranks a job iff some
    // type's candidate-size cap crossed one of the job's three §6.1 candidate
    // sizes -- only then does GenerateCells emit a different Cell set.
    // Slowdown-only epochs change no caps, so every entry survives. Clean
    // survivors are restamped in place; dirty ones are erased and re-ranked
    // by the warm-up below.
    for (const JobState* js : jobs) {
      const int64_t id = js->job.id;
      const uint64_t hash = JobHash(id);
      if (!cells_memo_.Contains(id, hash)) {
        continue;
      }
      bool dirty = false;
      for (int t = 0; t < kNumGpuTypes; ++t) {
        if (caps[t] != cells_caps_[t] &&
            CandidateSizesDiffer(js->job.requested_gpus, cells_caps_[t], caps[t])) {
          dirty = true;
          break;
        }
      }
      if (dirty) {
        cells_memo_.Erase(id, hash);
        CRIUS_COUNTER_INC("sched.cells_dirty_reranks");
      } else {
        cells_memo_.Restamp(id, hash, stamp);
        CRIUS_COUNTER_INC("sched.cells_kept_incremental");
      }
    }
  }
  cells_stamp_ = stamp;
  cells_caps_ = caps;
  cells_stamp_known_ = true;

  // 2. Evict entries for jobs that left the system (completed, killed, or
  // dropped): without this the memo grows without bound over a trace. The
  // event delta names departures and drops, but the sweep also covers callers
  // that pass no events.
  std::set<int64_t> active;
  for (const JobState* js : jobs) {
    active.insert(js->job.id);
  }
  const size_t evicted = cells_memo_.EvictIf(
      [&](int64_t id, const MemoStamp&) { return active.find(id) == active.end(); });
  if (evicted > 0) {
    CRIUS_COUNTER_ADD("sched.cells_cache_evictions", static_cast<int64_t>(evicted));
  }

  // 3. Warm missing entries (arrivals + dirtied) in parallel. ComputeCells is
  // a pure function of (job, cluster-health), so slot results are identical
  // across thread counts and the sequential inserts below keep the memo
  // content deterministic.
  std::vector<const JobState*> missing;
  for (const JobState* js : jobs) {
    if (cells_memo_.Find(js->job.id, JobHash(js->job.id), stamp) == nullptr) {
      missing.push_back(js);
    }
  }
  const auto t_maintained = std::chrono::steady_clock::now();
  restamp_ms.Record(
      std::chrono::duration<double, std::milli>(t_maintained - t_enter).count());
  if (missing.empty()) {
    estimator_ms.Record(0.0);
    return;
  }
  CRIUS_TRACE_SPAN_ARGS("sched.cells_warmup",
                        "{\"jobs\": " + std::to_string(missing.size()) + "}");
  std::vector<JobCells> slots(missing.size());
  ThreadPool::Global().ParallelFor(missing.size(), [&](size_t i) {
    slots[i] = ComputeCells(missing[i]->job, cluster);
  });
  for (size_t i = 0; i < missing.size(); ++i) {
    const int64_t id = missing[i]->job.id;
    cells_memo_.PutIfAbsent(id, JobHash(id), stamp, std::move(slots[i]));
  }
  estimator_ms.Record(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t_maintained)
                          .count());
}

double CriusScheduler::ProfilingDelay(const TrainingJob& job, const Cluster& cluster) {
  std::array<double, kNumGpuTypes> per_type{};
  for (const Cell& cell : GenerateCells(job, cluster)) {
    // Ablation variants never rank pruned Cells (CellsFor drops them), so they
    // must not be charged the GPU-seconds to profile them either: Crius-NH
    // profiles only the requested type, Crius-NA only the requested size.
    if (!config_.heterogeneity_scaling && cell.gpu_type != job.requested_type) {
      continue;
    }
    if (!config_.adaptivity_scaling && cell.ngpus != job.requested_gpus) {
      continue;
    }
    const CellEstimate& est = oracle_->EstimateCell(job.spec, cell);
    per_type[static_cast<int>(cell.gpu_type)] += est.profile_gpu_seconds;
  }
  // Heterogeneous GPU types profile in parallel, one device each (§6.1);
  // Crius bounds the total at 30 minutes (§8.2).
  double delay = 0.0;
  for (double t : per_type) {
    delay = std::max(delay, t);
  }
  return std::min(delay, 1800.0);
}

ScheduleDecision CriusScheduler::Schedule(const RoundContext& round) {
  const double now = round.now();
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  CRIUS_COUNTER_INC("sched.rounds");
  CRIUS_HISTOGRAM_RECORD("sched.round_jobs", static_cast<double>(jobs.size()));
  CRIUS_SCOPED_TIMER_MS("sched.round_ms");
  CRIUS_TRACE_SPAN_ARGS("sched.round",
                        "{\"jobs\": " + std::to_string(jobs.size()) + "}");
  // Round-start memo maintenance + parallel warm-up: after this every
  // CellsFor call below is a memo hit, so concurrent passes are read-mostly.
  SyncCellsCache(round);
  // "explorer" phase: the ScheduleOnce pass(es) that enumerate placements.
  static Histogram& explorer_ms = CounterRegistry::Global().GetHistogram(
      "sched.phase_ms", MetricLabels{{"phase", "explorer"}});
  counters_internal::ScopedTimerMs explorer_timer(explorer_ms);
  if (config_.placement_order != CriusPlacementOrder::kBestOfAll || config_.deadline_aware) {
    return ScheduleOnce(now, jobs, cluster, config_.placement_order).first;
  }
  // Solver-lite: evaluate every ordering virtually and keep the outcome with
  // the highest total estimated throughput. Each pass is a pure function of
  // (now, jobs, cluster, order) with its own virtual state, so the three run
  // concurrently into slots; the winner is then picked sequentially in the
  // same fixed order (strict > comparison) the single-threaded loop used --
  // the decision is bit-identical across thread counts.
  const std::array<CriusPlacementOrder, 3> orders = {CriusPlacementOrder::kFifo,
                                                     CriusPlacementOrder::kScoreDensity,
                                                     CriusPlacementOrder::kSmallestFirst};
  std::array<std::pair<ScheduleDecision, double>, 3> results;
  ThreadPool::Global().ParallelFor(orders.size(), [&](size_t i) {
    results[i] = ScheduleOnce(now, jobs, cluster, orders[i]);
  });
  std::pair<ScheduleDecision, double> best{ScheduleDecision{}, -1.0};
  for (std::pair<ScheduleDecision, double>& candidate : results) {
    if (candidate.second > best.second) {
      best = std::move(candidate);
    }
  }
  return best.first;
}

std::pair<ScheduleDecision, double> CriusScheduler::ScheduleOnce(
    double now, const std::vector<const JobState*>& jobs, const Cluster& cluster,
    CriusPlacementOrder order) {
  CRIUS_TRACE_SPAN("sched.pass");
  ScheduleDecision decision;

  FreeMap free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }

  // --- Virtual state: running jobs keep their Cells ------------------------
  std::vector<VirtualJob> vjobs;
  std::vector<size_t> queued_order;
  for (const JobState* js : jobs) {
    VirtualJob vj;
    vj.state = js;
    if (js->phase == JobPhase::kRunning) {
      Cell cell{js->gpu_type, js->ngpus, js->nstages};
      const JobCells& jc = CellsFor(js->job, cluster);
      double score = 0.0;
      for (const CellChoice& c : jc.choices) {
        if (c.cell == cell) {
          score = c.score;
          break;
        }
      }
      vj.cell = cell;
      vj.score = score;
      vj.opportunistic = js->opportunistic;
      Take(cell, free);
    }
    vjobs.push_back(vj);
  }
  for (size_t i = 0; i < vjobs.size(); ++i) {
    if (!vjobs[i].cell.has_value()) {
      queued_order.push_back(i);
    }
  }
  // Density of a queued job: best estimated score per requested GPU.
  auto density = [&](size_t vi) {
    const JobCells& jc = CellsFor(vjobs[vi].state->job, cluster);
    const double best = jc.choices.empty() ? 0.0 : jc.choices.front().score;
    return best / std::max(1, vjobs[vi].state->job.requested_gpus);
  };
  std::stable_sort(queued_order.begin(), queued_order.end(), [&](size_t a, size_t b) {
    const TrainingJob& ja = vjobs[a].state->job;
    const TrainingJob& jb = vjobs[b].state->job;
    if (config_.deadline_aware && ja.deadline.has_value() && jb.deadline.has_value() &&
        *ja.deadline != *jb.deadline) {
      return *ja.deadline < *jb.deadline;  // earliest deadline first
    }
    if (!config_.deadline_aware) {
      if (order == CriusPlacementOrder::kScoreDensity) {
        const double da = density(a);
        const double db = density(b);
        if (da != db) {
          return da > db;
        }
      } else if (order == CriusPlacementOrder::kSmallestFirst) {
        if (ja.requested_gpus != jb.requested_gpus) {
          return ja.requested_gpus < jb.requested_gpus;
        }
      }
    }
    if (ja.submit_time != jb.submit_time) {
      return ja.submit_time < jb.submit_time;
    }
    return ja.id < jb.id;
  });

  // Estimated completion check for the deadline policy.
  auto meets_deadline = [&](const VirtualJob& vj, const CellChoice& choice) {
    if (!config_.deadline_aware || !vj.state->job.deadline.has_value()) {
      return true;
    }
    const double thr = oracle_->EstimatedThroughput(vj.state->job.spec, choice.cell);
    if (thr <= 0.0) {
      return false;
    }
    const double iters_per_sec = thr / static_cast<double>(vj.state->job.spec.global_batch);
    const double finish = now + vj.state->remaining_iters() / iters_per_sec;
    return finish <= *vj.state->job.deadline;
  };

  // Best feasible Cell for a job under `free`; highest estimated score first.
  auto best_fitting = [&](const VirtualJob& vj, const FreeMap& f) -> const CellChoice* {
    const JobCells& jc = CellsFor(vj.state->job, cluster);
    for (const CellChoice& c : jc.choices) {
      if (Fits(c.cell, f) && meets_deadline(vj, c)) {
        return &c;
      }
    }
    return nullptr;
  };

  // --- Deadline admission (§8.5): early-drop hopeless jobs ------------------
  if (config_.deadline_aware) {
    for (size_t qi : queued_order) {
      VirtualJob& vj = vjobs[qi];
      if (!vj.state->job.deadline.has_value()) {
        continue;
      }
      const JobCells& jc = CellsFor(vj.state->job, cluster);
      bool possible = false;
      for (const CellChoice& c : jc.choices) {
        if (meets_deadline(vj, c)) {
          possible = true;
          break;
        }
      }
      if (!possible) {
        decision.dropped.push_back(vj.state->job.id);
      }
    }
  }
  auto is_dropped = [&](int64_t id) {
    return std::find(decision.dropped.begin(), decision.dropped.end(), id) !=
           decision.dropped.end();
  };

  // --- Place queued jobs (FIFO), scaling running jobs when short (lines
  // 14-20 of Algorithm 1) ----------------------------------------------------
  int searched_jobs = 0;
  bool some_job_pending = false;
  {
    CRIUS_TRACE_SPAN("sched.place");
    for (size_t qi : queued_order) {
      VirtualJob& vj = vjobs[qi];
      if (is_dropped(vj.state->job.id)) {
        continue;
      }

      if (const CellChoice* c = best_fitting(vj, free)) {
        vj.cell = c->cell;
        vj.score = c->score;
        vj.opportunistic = some_job_pending;
        Take(c->cell, free);
        continue;
      }

      // Scaling search: up to search_depth moves of running/placed jobs that
      // make room for `vj` while maximizing total estimated throughput. A single
      // downscale often cannot free enough for a large job, so intermediate
      // moves may carry a negative throughput delta; the chain is only kept if
      // the final placement makes the cumulative delta (including the placed
      // job's score) positive.
      bool placed = false;
      if (searched_jobs < config_.max_search_jobs && config_.search_depth > 0) {
        ++searched_jobs;
        FreeMap trial_free = free;
        std::vector<std::pair<size_t, std::optional<Cell>>> saved;  // victim -> old cell
        double cumulative_delta = 0.0;
        // The best score vj could realize if capacity were freed; bounds the
        // deficit any intermediate move is allowed to dig.
        double vj_potential = 0.0;
        {
          const JobCells& jc = CellsFor(vj.state->job, cluster);
          for (const CellChoice& c : jc.choices) {
            if (meets_deadline(vj, c)) {
              vj_potential = std::max(vj_potential, c.score);
            }
          }
        }

        for (int depth = 0; depth < config_.search_depth && !placed; ++depth) {
          double best_delta = -std::numeric_limits<double>::infinity();
          size_t best_victim = 0;
          const CellChoice* best_new_cell = nullptr;
          bool enables_placement = false;

          for (size_t vi = 0; vi < vjobs.size(); ++vi) {
            VirtualJob& victim = vjobs[vi];
            if (vi == qi || !victim.cell.has_value()) {
              continue;
            }
            const JobCells& vjc = CellsFor(victim.state->job, cluster);
            for (const CellChoice& alt : vjc.choices) {
              if (alt.cell == *victim.cell) {
                continue;
              }
              // The move must shrink usage of some type (downscale or exchange).
              const bool frees_capacity =
                  alt.cell.gpu_type != victim.cell->gpu_type || alt.cell.ngpus < victim.cell->ngpus;
              if (!frees_capacity) {
                continue;
              }
              FreeMap f2 = trial_free;
              Give(*victim.cell, f2);
              if (!Fits(alt.cell, f2) || !meets_deadline(victim, alt)) {
                continue;
              }
              Take(alt.cell, f2);
              const CellChoice* mine = best_fitting(vj, f2);
              const bool enables = mine != nullptr;
              const double delta = alt.score - victim.score + (enables ? mine->score : 0.0);
              // Prefer placement-enabling moves strictly; among progress moves
              // take the least-damaging, but never dig deeper than the placed
              // job could pay back.
              if (!enables &&
                  cumulative_delta + delta + vj_potential <= 0.0) {
                continue;
              }
              if ((enables && !enables_placement) ||
                  ((enables == enables_placement) && delta > best_delta)) {
                best_delta = delta;
                best_victim = vi;
                best_new_cell = &alt;
                enables_placement = enables;
              }
            }
          }

          if (best_new_cell == nullptr ||
              (enables_placement && cumulative_delta + best_delta <= 0.0)) {
            break;  // no move, or completing the chain would lower throughput
          }
          VirtualJob& victim = vjobs[best_victim];
          saved.emplace_back(best_victim, victim.cell);
          Give(*victim.cell, trial_free);
          Take(best_new_cell->cell, trial_free);
          cumulative_delta += best_new_cell->score - victim.score;
          victim.cell = best_new_cell->cell;
          victim.score = best_new_cell->score;

          if (const CellChoice* mine = best_fitting(vj, trial_free)) {
            if (cumulative_delta + mine->score > 0.0) {
              vj.cell = mine->cell;
              vj.score = mine->score;
              vj.opportunistic = some_job_pending;
              Take(mine->cell, trial_free);
              placed = true;
            }
          }
        }

        if (placed) {
          free = trial_free;
        } else {
          // Roll back all speculative moves.
          for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
            VirtualJob& victim = vjobs[it->first];
            victim.cell = it->second;
            const JobCells& vjc = CellsFor(victim.state->job, cluster);
            victim.score = 0.0;
            for (const CellChoice& c : vjc.choices) {
              if (victim.cell.has_value() && c.cell == *victim.cell) {
                victim.score = c.score;
                break;
              }
            }
          }
        }
      }

      if (!placed) {
        some_job_pending = true;
        if (!config_.opportunistic) {
          break;  // strict head-of-line blocking without opportunistic execution
        }
      }
    }
  }

  // --- Pending-job preemption of opportunistic jobs (§6.1) ------------------
  if (config_.opportunistic && some_job_pending) {
    CRIUS_TRACE_SPAN("sched.preempt_opportunistic");
    for (size_t qi : queued_order) {
      VirtualJob& vj = vjobs[qi];
      if (vj.cell.has_value() || is_dropped(vj.state->job.id)) {
        continue;
      }
      // Would evicting all opportunistic jobs make room?
      FreeMap f2 = free;
      std::vector<size_t> evictable;
      for (size_t vi = 0; vi < vjobs.size(); ++vi) {
        if (vjobs[vi].cell.has_value() && vjobs[vi].opportunistic) {
          Give(*vjobs[vi].cell, f2);
          evictable.push_back(vi);
        }
      }
      const CellChoice* mine = best_fitting(vj, f2);
      if (mine == nullptr) {
        continue;
      }
      // Evict only as many opportunistic jobs as needed (latest first).
      FreeMap f3 = free;
      for (auto it = evictable.rbegin(); it != evictable.rend(); ++it) {
        VirtualJob& opp = vjobs[*it];
        Give(*opp.cell, f3);
        opp.cell.reset();
        opp.score = 0.0;
        if (Fits(mine->cell, f3)) {
          break;
        }
      }
      if (const CellChoice* c = best_fitting(vj, f3)) {
        vj.cell = c->cell;
        vj.score = c->score;
        vj.opportunistic = false;
        Take(c->cell, f3);
        free = f3;
      }
    }
  }

  // --- Upscale phase: feed leftover capacity back (Algorithm 1 line 11) -----
  // kMaxThroughput picks the globally best relative gain; kMaxMinFairness
  // water-fills, upgrading the worst-off placed job first.
  CRIUS_TRACE_SPAN("sched.upscale");
  int upscale_moves = 0;
  for (int moves = 0; moves < config_.max_upscale_moves; ++moves) {
    double best_rank = config_.objective == CriusObjective::kMaxThroughput
                           ? config_.move_gain_threshold
                           : -std::numeric_limits<double>::infinity();
    size_t best_vi = 0;
    const CellChoice* best_cell = nullptr;
    for (size_t vi = 0; vi < vjobs.size(); ++vi) {
      VirtualJob& vj = vjobs[vi];
      if (!vj.cell.has_value()) {
        continue;
      }
      const JobCells& jc = CellsFor(vj.state->job, cluster);
      for (const CellChoice& alt : jc.choices) {
        if (alt.cell == *vj.cell || alt.score <= vj.score) {
          continue;
        }
        FreeMap f2 = free;
        Give(*vj.cell, f2);
        if (!Fits(alt.cell, f2) || !meets_deadline(vj, alt)) {
          continue;
        }
        const double gain = (alt.score - vj.score) / std::max(vj.score, 1e-9);
        if (gain <= config_.move_gain_threshold) {
          continue;  // a restart is never worth a marginal gain
        }
        double rank = 0.0;
        if (config_.objective == CriusObjective::kMaxThroughput) {
          rank = gain;
        } else {
          // Water-filling: most-deprived job first; its gain breaks ties.
          rank = -vj.score + 1e-3 * gain;
        }
        if (rank > best_rank) {
          best_rank = rank;
          best_vi = vi;
          best_cell = &alt;
        }
      }
    }
    if (best_cell == nullptr) {
      break;
    }
    VirtualJob& vj = vjobs[best_vi];
    Give(*vj.cell, free);
    Take(best_cell->cell, free);
    vj.cell = best_cell->cell;
    vj.score = best_cell->score;
    ++upscale_moves;
  }
  CRIUS_HISTOGRAM_RECORD("sched.upscale_moves", static_cast<double>(upscale_moves));

  // --- Emit ------------------------------------------------------------------
  double total_score = 0.0;
  for (const VirtualJob& vj : vjobs) {
    if (!vj.cell.has_value()) {
      continue;
    }
    Assignment a;
    a.type = vj.cell->gpu_type;
    a.ngpus = vj.cell->ngpus;
    a.nstages = vj.cell->nstages;
    a.opportunistic = vj.opportunistic;
    decision.assignments[vj.state->job.id] = a;
    total_score += vj.score;
  }
  (void)now;
  return {std::move(decision), total_score};
}

}  // namespace crius
