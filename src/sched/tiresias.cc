#include <algorithm>
#include <array>

#include "src/sched/baselines.h"
#include "src/util/units.h"

namespace crius {

namespace {

int QueueLevel(double attained_gpu_seconds) {
  int level = 0;
  for (double threshold : TiresiasScheduler::kLevelThresholdsGpuHours) {
    if (attained_gpu_seconds > threshold * kHour) {
      ++level;
    }
  }
  return level;
}

}  // namespace

ScheduleDecision TiresiasScheduler::Schedule(const RoundContext& round) {
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  ScheduleDecision decision;

  // Attained GPU-service so far, in GPU-seconds. Tiresias tracks executed
  // GPU-time; completed iterations times the per-iteration GPU-time at the
  // requested shape reconstructs it whether or not the job currently holds
  // GPUs (a preempted job must keep its attained service or the levels
  // oscillate and the scheduler thrashes).
  auto attained = [&](const JobState& js) {
    const double thr = oracle_->AdaptiveThroughput(js.job.spec, js.job.requested_type,
                                                   js.job.requested_gpus);
    if (thr <= 0.0) {
      return js.iters_done;
    }
    const double iter_time = static_cast<double>(js.job.spec.global_batch) / thr;
    return js.iters_done * iter_time * static_cast<double>(js.job.requested_gpus);
  };

  // All active jobs compete; priority = (queue level asc, submit asc).
  std::vector<const JobState*> active;
  for (const JobState* js : jobs) {
    if (js->phase == JobPhase::kQueued || js->phase == JobPhase::kRunning) {
      active.push_back(js);
    }
  }
  std::stable_sort(active.begin(), active.end(), [&](const JobState* a, const JobState* b) {
    const int la = QueueLevel(attained(*a));
    const int lb = QueueLevel(attained(*b));
    if (la != lb) {
      return la < lb;
    }
    if (a->job.submit_time != b->job.submit_time) {
      return a->job.submit_time < b->job.submit_time;
    }
    return a->job.id < b->job.id;
  });

  // Preemptive gang admission in priority order at the requested shape.
  std::array<int, kNumGpuTypes> free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }
  for (const JobState* js : active) {
    const GpuType type = js->job.requested_type;
    const int n = js->job.requested_gpus;
    if (free[static_cast<int>(type)] < n ||
        !view_.Launchable(js->job.spec, type, n)) {
      continue;  // skipped this round; may preempt back in later
    }
    Assignment a;
    a.type = type;
    a.ngpus = n;
    decision.assignments[js->job.id] = a;
    free[static_cast<int>(type)] -= n;
  }
  return decision;
}

}  // namespace crius
