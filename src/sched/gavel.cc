#include <algorithm>
#include <array>

#include "src/sched/baselines.h"

namespace crius {

// Gavel assigns each job to the GPU type maximizing its dp-profiled
// throughput (heterogeneity-aware throughput-maximization policy), never
// scaling GPU counts. Jobs whose dp-only plan fits nowhere are scheduled with
// an uninformed neutral view. Running jobs may be reassigned to a better type
// when the dp view shows a clear win.
ScheduleDecision GavelScheduler::Schedule(const RoundContext& round) {
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  ScheduleDecision decision;
  std::array<int, kNumGpuTypes> free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }

  // Normalized dp-view throughput of `js` on `type`; 0 if it cannot launch,
  // a neutral 0.5 if dp profiling has no data (OOM under pure dp).
  auto view_score = [&](const JobState* js, GpuType type) -> double {
    if (!cluster.HasType(type) || !view_.Launchable(js->job.spec, type, js->job.requested_gpus)) {
      return 0.0;
    }
    double best_anywhere = 0.0;
    for (GpuType t : AllGpuTypes()) {
      if (!cluster.HasType(t)) {
        continue;
      }
      const auto thr = view_.Throughput(js->job.spec, t, js->job.requested_gpus);
      if (thr.has_value()) {
        best_anywhere = std::max(best_anywhere, *thr);
      }
    }
    const auto thr = view_.Throughput(js->job.spec, type, js->job.requested_gpus);
    if (!thr.has_value() || best_anywhere <= 0.0) {
      return 0.5;  // dp profile unavailable: heterogeneity-blind fallback
    }
    return *thr / best_anywhere;
  };

  std::vector<const JobState*> active;
  for (const JobState* js : jobs) {
    if (js->phase == JobPhase::kRunning || js->phase == JobPhase::kQueued) {
      active.push_back(js);
    }
  }
  // Gavel re-solves the whole assignment each round. Running jobs are placed
  // first (they hold checkpointable state; evicting them for a newcomer's
  // preferred type would churn restarts) and get a stickiness bonus so
  // reassignments only happen on clear dp-view wins.
  std::stable_sort(active.begin(), active.end(), [](const JobState* a, const JobState* b) {
    const bool ra = a->phase == JobPhase::kRunning;
    const bool rb = b->phase == JobPhase::kRunning;
    if (ra != rb) {
      return ra > rb;
    }
    if (a->job.submit_time != b->job.submit_time) {
      return a->job.submit_time < b->job.submit_time;
    }
    return a->job.id < b->job.id;
  });

  for (const JobState* js : active) {
    const int n = js->job.requested_gpus;
    GpuType best_type = js->job.requested_type;
    double best_score = -1.0;
    for (GpuType type : AllGpuTypes()) {
      if (!cluster.HasType(type) || free[static_cast<int>(type)] < n) {
        continue;
      }
      double score = view_score(js, type);
      if (score <= 0.0) {
        continue;
      }
      if (js->phase == JobPhase::kRunning) {
        if (type == js->gpu_type) {
          score *= 1.0 + kReassignGain;  // stickiness: avoid restart churn
        }
      }
      if (score > best_score) {
        best_score = score;
        best_type = type;
      }
    }
    if (best_score <= 0.0) {
      continue;  // waits this round
    }
    Assignment a;
    a.type = best_type;
    a.ngpus = n;
    decision.assignments[js->job.id] = a;
    free[static_cast<int>(best_type)] -= n;
  }
  return decision;
}

}  // namespace crius
