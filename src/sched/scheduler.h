// Scheduler interface.
//
// The simulator (src/sim) drives a Scheduler with the current set of active
// jobs each scheduling round (and on job departures, per Algorithm 1). The
// scheduler returns a target assignment per job: GPU type + count, plus -- for
// Crius -- the Cell's pipeline-stage count. The simulator applies the diff
// (restarts, allocations) and runs every scheduled job with adaptive
// parallelism (§8.1's fair-comparison setup).

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/oracle.h"
#include "src/hw/cluster.h"
#include "src/model/job.h"

namespace crius {

enum class JobPhase : uint8_t {
  kQueued,    // submitted, not running
  kRunning,
  kFinished,
  kDropped,   // deadline-infeasible, rejected at admission (§8.5)
};

// Scheduler-visible job state, owned by the simulator.
struct JobState {
  TrainingJob job;
  JobPhase phase = JobPhase::kQueued;

  // Current grant (phase == kRunning only).
  GpuType gpu_type = GpuType::kA100;
  int ngpus = 0;
  int nstages = 0;  // 0 = plan chosen by full adaptive parallelism

  double iter_time = 0.0;    // current plan's iteration latency
  double iters_done = 0.0;   // fractional progress
  double first_start = -1.0;
  double finish_time = -1.0;
  int num_restarts = 0;
  // Progress is blocked (checkpoint/restore/profiling) until this time.
  double blocked_until = 0.0;
  // True if launched opportunistically while a larger job pends (§6.1).
  bool opportunistic = false;

  double remaining_iters() const {
    return static_cast<double>(job.iterations) - iters_done;
  }
};

// Desired placement for one job.
struct Assignment {
  GpuType type = GpuType::kA100;
  int ngpus = 0;
  // Pipeline-stage count of the scheduled Cell; 0 lets the framework pick via
  // full adaptive-parallelism exploration (baselines).
  int nstages = 0;
  // Marks the job as opportunistic (may be preempted for a pending job).
  bool opportunistic = false;
};

// One scheduling round's outcome: job id -> assignment. Jobs absent from the
// map stay (or become) queued. `dropped` lists jobs rejected for good.
struct ScheduleDecision {
  std::map<int64_t, Assignment> assignments;
  std::vector<int64_t> dropped;
};

class Scheduler {
 public:
  explicit Scheduler(PerformanceOracle* oracle) : oracle_(oracle) {}
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Computes the target placement of all `jobs` (queued + running) given the
  // cluster's total capacity. The returned assignments must respect per-type
  // capacity; the simulator validates.
  virtual ScheduleDecision Schedule(double now, const std::vector<const JobState*>& jobs,
                                    const Cluster& cluster) = 0;

  // One-time profiling delay charged when `job` first becomes schedulable
  // (§8.2: Crius profiles Cells on a single GPU, bounded by 30 minutes).
  // Baselines profile during execution; they return 0.
  virtual double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) {
    (void)job;
    (void)cluster;
    return 0.0;
  }

 protected:
  PerformanceOracle* oracle_;
};

// Reference throughput used to normalize a job's contribution to cluster
// throughput: its ground-truth adaptive throughput on the requested GPUs of
// the requested type (falling back to the best type if infeasible there).
double ReferenceThroughput(PerformanceOracle& oracle, const Cluster& cluster,
                           const TrainingJob& job);

}  // namespace crius

#endif  // SRC_SCHED_SCHEDULER_H_
