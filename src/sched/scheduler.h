// Scheduler interface.
//
// The simulator (src/sim) drives a Scheduler with a RoundContext each
// scheduling round (and on job departures, per Algorithm 1): the current set
// of active jobs, the cluster, and the typed RoundEvents that happened since
// the previous round. The scheduler returns a target assignment per job: GPU
// type + count, plus -- for Crius -- the Cell's pipeline-stage count. The
// simulator applies the diff (restarts, allocations) and runs every scheduled
// job with adaptive parallelism (§8.1's fair-comparison setup). The event
// delta lets incremental schedulers re-rank only what changed instead of
// re-solving from scratch every round.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/oracle.h"
#include "src/hw/cluster.h"
#include "src/model/job.h"

namespace crius {

enum class JobPhase : uint8_t {
  kQueued,    // submitted, not running
  kRunning,
  kFinished,
  kDropped,   // deadline-infeasible, rejected at admission (§8.5)
};

// Scheduler-visible job state, owned by the simulator.
struct JobState {
  TrainingJob job;
  JobPhase phase = JobPhase::kQueued;

  // Current grant (phase == kRunning only).
  GpuType gpu_type = GpuType::kA100;
  int ngpus = 0;
  int nstages = 0;  // 0 = plan chosen by full adaptive parallelism

  double iter_time = 0.0;    // current plan's iteration latency
  double iters_done = 0.0;   // fractional progress
  double first_start = -1.0;
  double finish_time = -1.0;
  int num_restarts = 0;
  // Progress is blocked (checkpoint/restore/profiling) until this time.
  double blocked_until = 0.0;
  // True if launched opportunistically while a larger job pends (§6.1).
  bool opportunistic = false;

  double remaining_iters() const {
    return static_cast<double>(job.iterations) - iters_done;
  }
};

// Desired placement for one job.
struct Assignment {
  GpuType type = GpuType::kA100;
  int ngpus = 0;
  // Pipeline-stage count of the scheduled Cell; 0 lets the framework pick via
  // full adaptive-parallelism exploration (baselines).
  int nstages = 0;
  // Marks the job as opportunistic (may be preempted for a pending job).
  bool opportunistic = false;
};

// How a live migration changes a running job's Cell (src/reconfig).
enum class MigrationKind : uint8_t {
  kShrink,   // fewer GPUs, same type
  kGrow,     // more GPUs, same type
  kResplit,  // same type and count, different pipeline-stage split
  kTypeSwap, // different GPU type
};

const char* MigrationKindName(MigrationKind kind);

// A typed live-reconfiguration action for one *running* job: pause it, charge
// `cost_seconds` (checkpoint write + relaunch + Cell warm-up, modeled by
// MigrationCostModel), and resume it in `target`. Proposed by ReconfigPolicy
// (src/reconfig) and applied by SimEngine; `gain_seconds` records the modeled
// remaining-time saving that justified the move (observability only).
struct MigrationAction {
  int64_t job_id = -1;
  MigrationKind kind = MigrationKind::kResplit;
  Assignment target;           // nstages > 0: a concrete Cell
  double cost_seconds = 0.0;
  double gain_seconds = 0.0;
};

// One scheduling round's outcome: job id -> assignment. Jobs absent from the
// map stay (or become) queued. `dropped` lists jobs rejected for good.
// `migrations` re-places running jobs live (each target overrides the job's
// entry in `assignments`); empty unless a ReconfigPolicy is active.
struct ScheduleDecision {
  std::map<int64_t, Assignment> assignments;
  std::vector<int64_t> dropped;
  std::vector<MigrationAction> migrations;
};

// What changed between two scheduling rounds. RoundEvents are the driver's
// account of every state transition since the previous Schedule call; an
// incremental scheduler uses them to bound its re-ranking work to the dirty
// set instead of re-solving from scratch.
enum class RoundEventKind : uint8_t {
  kJobArrival,      // job became schedulable for the first time
  kJobDeparture,    // job finished and left the system
  kJobDrop,         // job was dropped (deadline admission) and left the system
  kJobPhaseChange,  // job was preempted or killed (running -> queued)
  kNodeFail,        // devices on a node were marked failed
  kNodeRecover,     // failed devices on a node returned to service
  kSlowdownChange,  // a node's straggler factor changed
};

struct RoundEvent {
  RoundEventKind kind = RoundEventKind::kJobArrival;
  int64_t job_id = -1;              // job events only
  int node_id = -1;                 // node events only
  GpuType gpu_type = GpuType::kA100;  // node events: the node's GPU type
  double slowdown = 1.0;            // kSlowdownChange: the new factor

  static RoundEvent JobArrival(int64_t id) { return {RoundEventKind::kJobArrival, id}; }
  static RoundEvent JobDeparture(int64_t id) { return {RoundEventKind::kJobDeparture, id}; }
  static RoundEvent JobDrop(int64_t id) { return {RoundEventKind::kJobDrop, id}; }
  static RoundEvent JobPhaseChange(int64_t id) { return {RoundEventKind::kJobPhaseChange, id}; }
  static RoundEvent NodeFail(int node, GpuType type) {
    return {RoundEventKind::kNodeFail, -1, node, type};
  }
  static RoundEvent NodeRecover(int node, GpuType type) {
    return {RoundEventKind::kNodeRecover, -1, node, type};
  }
  static RoundEvent SlowdownChange(int node, GpuType type, double factor) {
    return {RoundEventKind::kSlowdownChange, -1, node, type, factor};
  }

  // True for the cluster-health kinds (the ones that move Cluster::health_epoch).
  bool is_health_event() const {
    return kind == RoundEventKind::kNodeFail || kind == RoundEventKind::kNodeRecover ||
           kind == RoundEventKind::kSlowdownChange;
  }
};

// One scheduling round's input: the time, the schedulable jobs (queued +
// running), the cluster, and the events since the previous round.
//
// Event contract: `events` must be a COMPLETE account of the job and
// cluster-health transitions since this scheduler's previous Schedule call --
// in particular, every mutation that moved Cluster::health_epoch() must be
// covered by a health event. A caller that cannot guarantee completeness
// (tests, ad-hoc drivers) simply passes no events: an incremental scheduler
// that observes an epoch change with an empty-handed delta falls back to a
// full recompute, which is always correct.
class RoundContext {
 public:
  RoundContext(double now, std::vector<const JobState*> jobs, const Cluster& cluster,
               std::vector<RoundEvent> events = {})
      : now_(now), jobs_(std::move(jobs)), cluster_(&cluster), events_(std::move(events)) {}

  double now() const { return now_; }
  const std::vector<const JobState*>& jobs() const { return jobs_; }
  const Cluster& cluster() const { return *cluster_; }
  const std::vector<RoundEvent>& events() const { return events_; }

  // True if any event reports a cluster-health change (fail/recover/slowdown).
  bool has_health_events() const;

 private:
  double now_ = 0.0;
  std::vector<const JobState*> jobs_;
  const Cluster* cluster_ = nullptr;
  std::vector<RoundEvent> events_;
};

class Scheduler {
 public:
  explicit Scheduler(PerformanceOracle* oracle) : oracle_(oracle) {}
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Computes the target placement of all round.jobs() (queued + running)
  // given the cluster's total capacity. The returned assignments must respect
  // per-type capacity, and no job may appear in both `assignments` and
  // `dropped`; the simulator validates.
  virtual ScheduleDecision Schedule(const RoundContext& round) = 0;

  // One-time profiling delay charged when `job` first becomes schedulable
  // (§8.2: Crius profiles Cells on a single GPU, bounded by 30 minutes).
  // Baselines profile during execution; they return 0.
  virtual double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) {
    (void)job;
    (void)cluster;
    return 0.0;
  }

 protected:
  PerformanceOracle* oracle_;
};

// Reference throughput used to normalize a job's contribution to cluster
// throughput: its ground-truth adaptive throughput on the requested GPUs of
// the requested type (falling back to the best type if infeasible there).
double ReferenceThroughput(PerformanceOracle& oracle, const Cluster& cluster,
                           const TrainingJob& job);

}  // namespace crius

#endif  // SRC_SCHED_SCHEDULER_H_
