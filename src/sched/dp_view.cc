#include "src/sched/baselines.h"

#include "src/util/mathutil.h"

namespace crius {

std::optional<double> DpView::Throughput(const ModelSpec& spec, GpuType type, int ngpus) const {
  const std::optional<double> iter = oracle_->DpOnlyIterTime(spec, type, ngpus);
  if (!iter.has_value()) {
    return std::nullopt;
  }
  return static_cast<double>(spec.global_batch) / *iter;
}

std::optional<int> DpView::MinShare(const ModelSpec& spec, GpuType type, int cap) const {
  for (int n = 1; n <= cap; n *= 2) {
    if (oracle_->DpOnlyIterTime(spec, type, n).has_value()) {
      return n;
    }
  }
  return std::nullopt;
}

bool DpView::Launchable(const ModelSpec& spec, GpuType type, int ngpus) const {
  return oracle_->AdaptiveThroughput(spec, type, ngpus) > 0.0;
}

}  // namespace crius
