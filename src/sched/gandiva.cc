#include <algorithm>
#include <array>

#include "src/sched/baselines.h"
#include "src/util/rng.h"

namespace crius {

// Gandiva packs jobs introspectively: placement ignores GPU heterogeneity
// (any type with room will do), and runtime profiling drives trial-and-error
// migration -- if moving a running job to another GPU type measurably
// improves its throughput, Gandiva migrates it. It never scales GPU counts.
ScheduleDecision GandivaScheduler::Schedule(const RoundContext& round) {
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  ScheduleDecision decision;
  std::array<int, kNumGpuTypes> free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }

  std::vector<const JobState*> queued;
  std::vector<const JobState*> running;
  for (const JobState* js : jobs) {
    if (js->phase == JobPhase::kRunning) {
      running.push_back(js);
      free[static_cast<int>(js->gpu_type)] -= js->ngpus;
    } else {
      queued.push_back(js);
    }
  }
  std::stable_sort(queued.begin(), queued.end(), [](const JobState* a, const JobState* b) {
    if (a->job.submit_time != b->job.submit_time) {
      return a->job.submit_time < b->job.submit_time;
    }
    return a->job.id < b->job.id;
  });

  // Introspective migration: the runtime observes each running job's actual
  // throughput (ground truth -- Gandiva profiles during execution) and tries
  // a limited number of type migrations per round.
  int migrations = 0;
  std::map<int64_t, Assignment> placed;
  for (const JobState* js : running) {
    Assignment a;
    a.type = js->gpu_type;
    a.ngpus = js->ngpus;
    if (migrations < kMigrationsPerRound) {
      const double current =
          oracle_->AdaptiveThroughput(js->job.spec, js->gpu_type, js->ngpus);
      GpuType best_type = js->gpu_type;
      double best_thr = current;
      for (GpuType type : AllGpuTypes()) {
        if (type == js->gpu_type || !cluster.HasType(type) ||
            free[static_cast<int>(type)] < js->ngpus) {
          continue;
        }
        const double thr = oracle_->AdaptiveThroughput(js->job.spec, type, js->ngpus);
        if (thr > best_thr * (1.0 + kMigrationGain)) {
          best_thr = thr;
          best_type = type;
        }
      }
      if (best_type != js->gpu_type) {
        free[static_cast<int>(js->gpu_type)] += js->ngpus;
        free[static_cast<int>(best_type)] -= js->ngpus;
        a.type = best_type;
        ++migrations;
      }
    }
    placed[js->job.id] = a;
  }

  // Placement: heterogeneity-blind -- GPU types are fungible to Gandiva, so
  // it takes an arbitrary (deterministically pseudo-random) type that can hold
  // the job; later introspection may migrate it. Mostly FIFO: suspend/resume
  // packing lets a few small jobs slip past a blocked head, but Gandiva does
  // not reorder the queue wholesale.
  int blocked = 0;
  for (const JobState* js : queued) {
    if (blocked > 4) {
      break;
    }
    std::vector<GpuType> fitting;
    for (GpuType type : AllGpuTypes()) {
      if (!cluster.HasType(type) || free[static_cast<int>(type)] < js->job.requested_gpus) {
        continue;
      }
      if (!view_.Launchable(js->job.spec, type, js->job.requested_gpus)) {
        continue;
      }
      fitting.push_back(type);
    }
    if (fitting.empty()) {
      ++blocked;
      continue;
    }
    const uint64_t pick = SplitMix64(static_cast<uint64_t>(js->job.id) * 0x9e3779b9ULL);
    const GpuType type = fitting[pick % fitting.size()];
    Assignment a;
    a.type = type;
    a.ngpus = js->job.requested_gpus;
    placed[js->job.id] = a;
    free[static_cast<int>(type)] -= a.ngpus;
  }

  decision.assignments = std::move(placed);
  return decision;
}

}  // namespace crius
