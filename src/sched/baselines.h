// Baseline schedulers (§8.1).
//
// Per the paper's fair-comparison setup, every baseline's *jobs* run with
// adaptive parallelism once scheduled (the simulator picks the ground-truth
// optimal plan for whatever grant the scheduler makes), but the baselines'
// *scheduling decisions* only see throughput profiled from data parallelism.
// Jobs whose data-parallel-only plan fits on no profiled configuration are
// scheduling blind spots: the baseline falls back to treating them as
// inelastic, unknown-throughput jobs at their requested shape -- the exact
// mis-estimation (e.g. ElasticFlow-LS overestimating large jobs' minimum
// share) the paper analyzes in §8.3.
//
//   FCFS        -- strict arrival order, requested shape, head-of-line blocking.
//   Gandiva     -- heterogeneity-blind placement with introspective
//                  trial-and-error migration between GPU types.
//   Gavel       -- heterogeneity-aware type assignment from a dp-only
//                  throughput matrix; no GPU-count scaling.
//   ElasticFlow -- per-type elastic GPU-count scaling from a dp-only
//                  throughput function, with deadline admission; the -LS
//                  variant loosens deadlines into a throughput-oriented policy.

#ifndef SRC_SCHED_BASELINES_H_
#define SRC_SCHED_BASELINES_H_

#include <optional>

#include "src/sched/scheduler.h"

namespace crius {

// --- Shared data-parallel-only scheduling view ------------------------------
class DpView {
 public:
  explicit DpView(PerformanceOracle* oracle) : oracle_(oracle) {}

  // Throughput (samples/s) of the dp-only plan; nullopt if it does not fit.
  std::optional<double> Throughput(const ModelSpec& spec, GpuType type, int ngpus) const;

  // Smallest power-of-two GPU count (<= cap) whose dp-only plan fits; nullopt
  // if none -- the baseline's (over)estimated minimum share.
  std::optional<int> MinShare(const ModelSpec& spec, GpuType type, int cap) const;

  // True if the job can actually run on the shape (ground truth adaptive
  // feasibility) -- what a baseline discovers by launching the job.
  bool Launchable(const ModelSpec& spec, GpuType type, int ngpus) const;

 private:
  PerformanceOracle* oracle_;
};

// --- FCFS --------------------------------------------------------------------
class FcfsScheduler : public Scheduler {
 public:
  explicit FcfsScheduler(PerformanceOracle* oracle) : Scheduler(oracle), view_(oracle) {}
  std::string name() const override { return "FCFS"; }
  ScheduleDecision Schedule(const RoundContext& round) override;

 private:
  DpView view_;
};

// --- Gandiva ------------------------------------------------------------------
class GandivaScheduler : public Scheduler {
 public:
  explicit GandivaScheduler(PerformanceOracle* oracle) : Scheduler(oracle), view_(oracle) {}
  std::string name() const override { return "Gandiva"; }
  ScheduleDecision Schedule(const RoundContext& round) override;

  // Trial-and-error migration is conservative: Gandiva only migrates on a
  // clear observed win, one job per round (migration costs are opaque to it).
  static constexpr double kMigrationGain = 0.30;
  static constexpr int kMigrationsPerRound = 1;

 private:
  DpView view_;
};

// --- Gavel ---------------------------------------------------------------------
class GavelScheduler : public Scheduler {
 public:
  explicit GavelScheduler(PerformanceOracle* oracle) : Scheduler(oracle), view_(oracle) {}
  std::string name() const override { return "Gavel"; }
  ScheduleDecision Schedule(const RoundContext& round) override;

 private:
  static constexpr double kReassignGain = 0.10;
  DpView view_;
};

// --- Tiresias -------------------------------------------------------------------
// Least-attained-service scheduling (Tiresias's discretized 2D-LAS): jobs are
// prioritized by how little GPU-service they have consumed so far, bucketed
// into queue levels so long-running jobs are not starved pairwise, FIFO within
// a level. Preemptive gang scheduling at the requested shape; no scaling, no
// heterogeneity awareness (jobs stay on their requested type).
class TiresiasScheduler : public Scheduler {
 public:
  explicit TiresiasScheduler(PerformanceOracle* oracle) : Scheduler(oracle), view_(oracle) {}
  std::string name() const override { return "Tiresias"; }
  ScheduleDecision Schedule(const RoundContext& round) override;

  // Attained-service thresholds (GPU-hours) separating the queue levels.
  static constexpr double kLevelThresholdsGpuHours[2] = {1.0, 8.0};

 private:
  DpView view_;
};

// --- ElasticFlow -----------------------------------------------------------------
struct ElasticFlowConfig {
  // Loosened deadlines (ElasticFlow-LS): admission never rejects and the
  // policy degenerates to throughput-oriented elastic sharing.
  bool loose_deadlines = true;
  // Minimum relative dp-view gain to grow/shrink a running job.
  double scale_gain_threshold = 0.02;
};

class ElasticFlowScheduler : public Scheduler {
 public:
  ElasticFlowScheduler(PerformanceOracle* oracle, ElasticFlowConfig config)
      : Scheduler(oracle), view_(oracle), config_(config) {}
  std::string name() const override {
    return config_.loose_deadlines ? "ElasticFlow-LS" : "ElasticFlow";
  }
  ScheduleDecision Schedule(const RoundContext& round) override;

 private:
  DpView view_;
  ElasticFlowConfig config_;
};

}  // namespace crius

#endif  // SRC_SCHED_BASELINES_H_
