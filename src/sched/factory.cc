#include "src/sched/factory.h"

#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/util/check.h"

namespace crius {

const char kSchedulerNamesHelp[] =
    "crius | crius-na | crius-nh | crius-fair | crius-solver | fcfs | gandiva | "
    "gavel | tiresias | elasticflow | elasticflow-strict";

bool IsKnownScheduler(const std::string& name) {
  for (const char* known :
       {"crius", "crius-na", "crius-nh", "crius-fair", "crius-solver", "fcfs", "gandiva",
        "gavel", "tiresias", "elasticflow", "elasticflow-strict"}) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name,
                                              PerformanceOracle* oracle,
                                              const SchedulerOptions& options) {
  if (name == "fcfs") {
    return std::make_unique<FcfsScheduler>(oracle);
  }
  if (name == "tiresias") {
    return std::make_unique<TiresiasScheduler>(oracle);
  }
  if (name == "gandiva") {
    return std::make_unique<GandivaScheduler>(oracle);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>(oracle);
  }
  if (name == "elasticflow") {
    return std::make_unique<ElasticFlowScheduler>(oracle, ElasticFlowConfig{});
  }
  if (name == "elasticflow-strict") {
    return std::make_unique<ElasticFlowScheduler>(oracle,
                                                  ElasticFlowConfig{.loose_deadlines = false});
  }
  if (name == "crius" || name == "crius-na" || name == "crius-nh" || name == "crius-fair" ||
      name == "crius-solver") {
    CriusConfig config;
    config.search_depth = options.search_depth;
    config.deadline_aware = options.deadline_aware;
    config.incremental = options.incremental;
    config.adaptivity_scaling = name != "crius-na";
    config.heterogeneity_scaling = name != "crius-nh";
    if (name == "crius-fair") {
      config.objective = CriusObjective::kMaxMinFairness;
    }
    if (name == "crius-solver") {
      config.placement_order = CriusPlacementOrder::kBestOfAll;
    }
    return std::make_unique<CriusScheduler>(oracle, config);
  }
  CRIUS_UNREACHABLE("unknown scheduler '" + name + "' (want " + kSchedulerNamesHelp + ")");
}

}  // namespace crius
