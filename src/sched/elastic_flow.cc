#include <algorithm>
#include <array>
#include <map>

#include "src/sched/baselines.h"
#include "src/util/mathutil.h"

namespace crius {

namespace {

// Per-pool view of one job during an ElasticFlow round.
struct PoolJob {
  const JobState* state = nullptr;
  int min_share = 0;     // (over)estimated minimum GPUs, from the dp profile
  bool elastic = false;  // false = dp profile unavailable, inelastic fallback
  int alloc = 0;
};

}  // namespace

// ElasticFlow manages each GPU type as an independent homogeneous pool
// (adaptivity-aware but heterogeneity-blind). Jobs receive their dp-profiled
// minimum share in admission order, and leftover GPUs go to the job with the
// highest marginal dp-view gain, doubling allocations. Because the minimum
// share comes from the data-parallel memory footprint, large models that only
// fit with tensor/pipeline parallelism get a badly overestimated minimum --
// the §8.3 analysis of why ElasticFlow-LS keeps large jobs pending.
ScheduleDecision ElasticFlowScheduler::Schedule(const RoundContext& round) {
  const double now = round.now();
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  ScheduleDecision decision;

  for (GpuType type : AllGpuTypes()) {
    if (!cluster.HasType(type)) {
      continue;
    }
    const int capacity = cluster.UsableGpus(type);
    const int cap_pow2 = static_cast<int>(FloorPowerOfTwo(capacity));

    std::vector<PoolJob> pool;
    for (const JobState* js : jobs) {
      if (js->job.requested_type != type ||
          (js->phase != JobPhase::kQueued && js->phase != JobPhase::kRunning)) {
        continue;
      }
      PoolJob pj;
      pj.state = js;
      const std::optional<int> min_share = view_.MinShare(js->job.spec, type, cap_pow2);
      if (min_share.has_value()) {
        pj.min_share = *min_share;
        pj.elastic = true;
      } else {
        // No dp profile fits: treat as an inelastic job at its requested shape
        // (if it can launch at all on this type).
        if (!view_.Launchable(js->job.spec, type, js->job.requested_gpus)) {
          continue;
        }
        pj.min_share = js->job.requested_gpus;
        pj.elastic = false;
      }
      pool.push_back(pj);
    }

    // Admission order: EDF under strict deadlines, FIFO otherwise.
    std::stable_sort(pool.begin(), pool.end(), [&](const PoolJob& a, const PoolJob& b) {
      const TrainingJob& ja = a.state->job;
      const TrainingJob& jb = b.state->job;
      if (!config_.loose_deadlines && ja.deadline.has_value() && jb.deadline.has_value() &&
          *ja.deadline != *jb.deadline) {
        return *ja.deadline < *jb.deadline;
      }
      if (ja.submit_time != jb.submit_time) {
        return ja.submit_time < jb.submit_time;
      }
      return ja.id < jb.id;
    });

    // Estimated time to finish on `n` GPUs through the scheduler's own lens.
    // ElasticFlow's admission control guarantees deadlines from its dp-only
    // throughput function; a job that function cannot model (dp OOM) cannot
    // be certified at all -- exactly the large-model blind spot of §8.5.
    auto completion_seconds = [&](const PoolJob& pj, int n) -> double {
      const double thr =
          pj.elastic ? view_.Throughput(pj.state->job.spec, type, n).value_or(0.0) : 0.0;
      if (thr <= 0.0) {
        return std::numeric_limits<double>::infinity();
      }
      const double iters_per_sec = thr / static_cast<double>(pj.state->job.spec.global_batch);
      return pj.state->remaining_iters() / iters_per_sec;
    };

    // Strict-deadline admission: raise the minimum share until the deadline is
    // met, or drop the job for good.
    if (!config_.loose_deadlines) {
      std::vector<PoolJob> admitted;
      for (PoolJob& pj : pool) {
        if (!pj.state->job.deadline.has_value()) {
          admitted.push_back(pj);
          continue;
        }
        const double slack = *pj.state->job.deadline - now;
        bool ok = false;
        for (int n = pj.min_share; n <= cap_pow2; n *= 2) {
          if (completion_seconds(pj, n) <= slack) {
            pj.min_share = n;
            ok = true;
            break;
          }
          if (!pj.elastic) {
            break;  // inelastic jobs cannot grow
          }
        }
        if (ok) {
          admitted.push_back(pj);
        } else {
          decision.dropped.push_back(pj.state->job.id);
        }
      }
      pool = std::move(admitted);
    }

    // Pass 1: admission shares in order. ElasticFlow scales jobs down from
    // their request when the workload is high, but not below a useful share:
    // the floor is the dp-profiled minimum, raised to a quarter of the
    // user's request (running an 8-GPU job on 1 GPU serves nobody).
    int remaining = capacity;
    for (PoolJob& pj : pool) {
      int share = pj.min_share;
      if (pj.elastic) {
        share = std::max(share, std::max(1, pj.state->job.requested_gpus / 4));
      }
      if (share <= remaining) {
        pj.alloc = share;
        remaining -= share;
      }
    }

    // Pass 2: distribute leftovers to the globally best marginal dp-view
    // gain, doubling allocations (ElasticFlow's diminishing-returns
    // allocation). Under strict deadlines the policy is guarantee-first:
    // admitted jobs keep their deadline-minimal shares and spare GPUs are
    // held for future admissions rather than spent on speedups nobody asked
    // for.
    while (config_.loose_deadlines && remaining > 0) {
      double best_gain = config_.scale_gain_threshold;
      PoolJob* best = nullptr;
      for (PoolJob& pj : pool) {
        if (!pj.elastic || pj.alloc == 0 || pj.alloc > remaining ||
            pj.alloc * 2 > cap_pow2) {
          continue;
        }
        const auto g_cur = view_.Throughput(pj.state->job.spec, type, pj.alloc);
        const auto g_next = view_.Throughput(pj.state->job.spec, type, pj.alloc * 2);
        if (!g_cur.has_value() || !g_next.has_value() || *g_cur <= 0.0) {
          continue;
        }
        const double gain = (*g_next - *g_cur) / *g_cur;
        if (gain > best_gain) {
          best_gain = gain;
          best = &pj;
        }
      }
      if (best == nullptr) {
        break;
      }
      remaining -= best->alloc;
      best->alloc *= 2;
    }

    // Hysteresis, both directions: a restart is only worth paying for a real
    // dp-view gain, and a running job is never shrunk while the freed GPUs
    // would just sit idle.
    for (PoolJob& pj : pool) {
      if (pj.state->phase != JobPhase::kRunning || pj.alloc == 0) {
        continue;
      }
      if (pj.elastic && pj.alloc > pj.state->ngpus) {
        const auto g_cur = view_.Throughput(pj.state->job.spec, type, pj.state->ngpus);
        const auto g_new = view_.Throughput(pj.state->job.spec, type, pj.alloc);
        if (g_cur.has_value() && g_new.has_value() &&
            (*g_new - *g_cur) / *g_cur <= config_.scale_gain_threshold) {
          remaining += pj.alloc - pj.state->ngpus;
          pj.alloc = pj.state->ngpus;
        }
      } else if (pj.alloc < pj.state->ngpus && pj.state->ngpus - pj.alloc <= remaining) {
        remaining -= pj.state->ngpus - pj.alloc;
        pj.alloc = pj.state->ngpus;
      }
    }

    for (const PoolJob& pj : pool) {
      if (pj.alloc == 0) {
        continue;
      }
      Assignment a;
      a.type = type;
      a.ngpus = pj.alloc;
      decision.assignments[pj.state->job.id] = a;
    }
  }
  return decision;
}

}  // namespace crius
