// Crius's Cell-based scheduler (§6, Algorithm 1).
//
// Every scheduling round the scheduler rebuilds a virtual placement of all
// active jobs from Cells: running jobs start from their current Cell, queued
// jobs are placed FIFO into free capacity, and when capacity is short the
// scheduler searches up to `search_depth` resource-scaling moves (downscaling
// running jobs or exchanging their GPU type) that maximize total estimated
// normalized throughput. Released capacity is then fed back to running jobs
// (the Algorithm-1 "extra scheduling"). Placement decisions rank Cells by
// Crius's agile estimates; the tuned plan is only computed for Cells that are
// actually scheduled.
//
// Ablation flags reproduce §8.6's variants: disabling adaptivity scaling pins
// every job to its requested GPU count (Crius-NA); disabling heterogeneity
// scaling pins it to its requested GPU type (Crius-NH). The deadline-aware
// variant (Crius-DDL, §8.5) admission-drops jobs that cannot meet their
// deadline and refuses scaling moves that would break an admitted deadline.

#ifndef SRC_SCHED_CRIUS_SCHED_H_
#define SRC_SCHED_CRIUS_SCHED_H_

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/cell.h"
#include "src/sched/scheduler.h"
#include "src/util/gen_memo.h"

namespace crius {

// Cluster-level objective Crius optimizes when ranking scheduling choices
// (§6: "Crius is easy to adapt to other scheduling objectives").
enum class CriusObjective : uint8_t {
  // Maximize the sum of normalized estimated throughput (the paper's default).
  kMaxThroughput,
  // Max-min fairness: spare capacity goes to the job with the lowest
  // normalized throughput (water-filling), Themis-style.
  kMaxMinFairness,
};

// Order in which queued jobs are offered placement. The paper's Algorithm 1
// is FIFO; §6 notes solver-style enhancements are orthogonal -- kBestOfAll is
// a cheap instance: run every ordering virtually and keep the one with the
// highest total estimated throughput.
enum class CriusPlacementOrder : uint8_t {
  kFifo,           // arrival order (the paper's policy)
  kScoreDensity,   // highest estimated-throughput-per-GPU first
  kSmallestFirst,  // fewest requested GPUs first
  kBestOfAll,      // evaluate all of the above, keep the best-scoring outcome
};

struct CriusConfig {
  // Maximum job-scaling moves explored per scheduling choice (Fig. 21).
  int search_depth = 3;
  // Cluster objective for the upscale phase.
  CriusObjective objective = CriusObjective::kMaxThroughput;
  // Queued-job placement order (deadline-aware mode always uses EDF).
  CriusPlacementOrder placement_order = CriusPlacementOrder::kFifo;
  // GPU-count scaling (§8.6 adaptivity scaling; false = Crius-NA).
  bool adaptivity_scaling = true;
  // GPU-type scaling (§8.6 heterogeneity scaling; false = Crius-NH).
  bool heterogeneity_scaling = true;
  // Deadline-aware policy (§8.5; Crius-DDL).
  bool deadline_aware = false;
  // Launch later queued jobs while a larger one pends (§6.1).
  bool opportunistic = true;
  // Minimum relative estimated-throughput gain before a running job is
  // re-scheduled in the upscale phase; keeps restart counts low (§8.4).
  double move_gain_threshold = 0.05;
  // Pending queued jobs that get the full scaling search per round; the rest
  // only try free capacity (bounds per-round scheduling overhead).
  int max_search_jobs = 8;
  // Upper bound on upscale moves applied per round.
  int max_upscale_moves = 12;
  // Event-driven incremental rounds: keep the generation-stamped per-job Cell
  // ranking memo across rounds and re-estimate only the dirty set named by
  // the RoundContext's event delta. false = literal Algorithm 1, re-ranking
  // every job from scratch each round. Decisions are bit-identical either way
  // (tests/incremental_equivalence_test).
  bool incremental = true;
};

class CriusScheduler : public Scheduler {
 public:
  CriusScheduler(PerformanceOracle* oracle, CriusConfig config);

  std::string name() const override;

  ScheduleDecision Schedule(const RoundContext& round) override;

  // §8.2: Cells are profiled on one GPU per type, in parallel across types,
  // bounded by 30 minutes.
  double ProfilingDelay(const TrainingJob& job, const Cluster& cluster) override;

  const CriusConfig& config() const { return config_; }

 private:
  struct CellChoice {
    Cell cell;
    double score = 0.0;  // estimated normalized throughput
  };
  struct JobCells {
    std::vector<CellChoice> choices;  // sorted by score, descending
    double ref_throughput = 0.0;      // estimate at the requested shape
  };

  // Pure computation of the scored Cell candidates for `job` under the
  // ablation flags. Touches no scheduler state besides the (thread-safe)
  // oracle, so pool workers may run it concurrently during cache warm-up.
  JobCells ComputeCells(const TrainingJob& job, const Cluster& cluster);

  // Cell candidates for `job`, scored and memoized under the cluster's
  // current (identity, health_epoch) stamp. Thread-safe: concurrent placement
  // passes may look up (and, on a miss, populate) the memo.
  const JobCells& CellsFor(const TrainingJob& job, const Cluster& cluster);

  // Round-start memo maintenance. Incremental mode keeps the memo across
  // rounds: when the health epoch moved AND the round's event delta reports
  // the health changes, only entries whose §6.1 candidate-size set actually
  // changed (a per-type capacity cap crossed one of the job's three candidate
  // sizes) are re-ranked; the rest are restamped in place. Falls back to a
  // full re-rank when incremental mode is off, the cluster identity changed,
  // or the epoch moved with an empty-handed event delta. Always evicts
  // entries for jobs no longer in the round and warms missing entries in
  // parallel.
  void SyncCellsCache(const RoundContext& round);

  // One full virtual-scheduling pass with a fixed queued-job order; also
  // returns the decision's total estimated normalized throughput. Pure
  // function of (now, jobs, cluster, order); safe to run concurrently with
  // other passes once the Cell cache is warm.
  std::pair<ScheduleDecision, double> ScheduleOnce(double now,
                                                   const std::vector<const JobState*>& jobs,
                                                   const Cluster& cluster,
                                                   CriusPlacementOrder order);

  CriusConfig config_;
  // Generation-stamped ranking memo: job id -> scored Cells, stamped with the
  // (Cluster identity, health epoch) the entry was computed under. The
  // identity nonce catches a scheduler being handed a different Cluster
  // object whose epoch happens to match (e.g. a fresh cluster also at epoch
  // 0, or one reusing a freed address) so it cannot keep rankings computed
  // against hardware that no longer exists.
  GenStampedMemo<int64_t, JobCells> cells_memo_;
  // Stamp of the previous round's sync, plus the per-type candidate-size caps
  // (FloorPowerOfTwo of usable capacity) observed then -- the inputs the
  // dirty-set predicate diffs against.
  MemoStamp cells_stamp_;
  std::array<int, kNumGpuTypes> cells_caps_{};
  bool cells_stamp_known_ = false;
};

}  // namespace crius

#endif  // SRC_SCHED_CRIUS_SCHED_H_
