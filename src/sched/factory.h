// Scheduler construction by name.
//
// crius_sim, crius_serve, the session replay path, and the benches all accept
// a --scheduler string; this is the one place that maps it to a Scheduler so
// the vocabulary (and the Crius ablation variants) cannot drift between entry
// points.

#ifndef SRC_SCHED_FACTORY_H_
#define SRC_SCHED_FACTORY_H_

#include <memory>
#include <string>

#include "src/sched/scheduler.h"

namespace crius {

// Knobs that thread through from command lines into the Crius variants;
// baselines ignore them.
struct SchedulerOptions {
  int search_depth = 3;
  bool deadline_aware = false;
  bool incremental = true;
};

// The accepted names, for --help strings:
// crius | crius-na | crius-nh | crius-fair | crius-solver | fcfs | gandiva |
// gavel | tiresias | elasticflow | elasticflow-strict.
extern const char kSchedulerNamesHelp[];

// True if `name` is one of the accepted scheduler names.
bool IsKnownScheduler(const std::string& name);

// Builds the named scheduler; aborts on an unknown name (callers that handle
// operator input check IsKnownScheduler first).
std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name,
                                              PerformanceOracle* oracle,
                                              const SchedulerOptions& options = {});

}  // namespace crius

#endif  // SRC_SCHED_FACTORY_H_
