#include "src/sched/scheduler.h"

#include <algorithm>

namespace crius {

bool RoundContext::has_health_events() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const RoundEvent& e) { return e.is_health_event(); });
}

double ReferenceThroughput(PerformanceOracle& oracle, const Cluster& cluster,
                           const TrainingJob& job) {
  double ref = 0.0;
  if (cluster.HasType(job.requested_type)) {
    ref = oracle.AdaptiveThroughput(job.spec, job.requested_type, job.requested_gpus);
  }
  if (ref <= 0.0) {
    for (GpuType type : AllGpuTypes()) {
      if (!cluster.HasType(type)) {
        continue;
      }
      ref = std::max(ref, oracle.AdaptiveThroughput(job.spec, type, job.requested_gpus));
    }
  }
  return ref;
}

}  // namespace crius
