#include "src/sched/scheduler.h"

#include <algorithm>

namespace crius {

const char* MigrationKindName(MigrationKind kind) {
  switch (kind) {
    case MigrationKind::kShrink:
      return "shrink";
    case MigrationKind::kGrow:
      return "grow";
    case MigrationKind::kResplit:
      return "resplit";
    case MigrationKind::kTypeSwap:
      return "type_swap";
  }
  return "?";
}

bool RoundContext::has_health_events() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const RoundEvent& e) { return e.is_health_event(); });
}

double ReferenceThroughput(PerformanceOracle& oracle, const Cluster& cluster,
                           const TrainingJob& job) {
  double ref = 0.0;
  if (cluster.HasType(job.requested_type)) {
    ref = oracle.AdaptiveThroughput(job.spec, job.requested_type, job.requested_gpus);
  }
  if (ref <= 0.0) {
    for (GpuType type : AllGpuTypes()) {
      if (!cluster.HasType(type)) {
        continue;
      }
      ref = std::max(ref, oracle.AdaptiveThroughput(job.spec, type, job.requested_gpus));
    }
  }
  return ref;
}

}  // namespace crius
