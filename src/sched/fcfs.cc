#include <algorithm>
#include <array>

#include "src/sched/baselines.h"

namespace crius {

ScheduleDecision FcfsScheduler::Schedule(const RoundContext& round) {
  const std::vector<const JobState*>& jobs = round.jobs();
  const Cluster& cluster = round.cluster();
  ScheduleDecision decision;
  std::array<int, kNumGpuTypes> free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }

  // Running jobs are never touched.
  std::vector<const JobState*> queued;
  for (const JobState* js : jobs) {
    if (js->phase == JobPhase::kRunning) {
      Assignment a;
      a.type = js->gpu_type;
      a.ngpus = js->ngpus;
      decision.assignments[js->job.id] = a;
      free[static_cast<int>(js->gpu_type)] -= js->ngpus;
    } else {
      queued.push_back(js);
    }
  }
  std::stable_sort(queued.begin(), queued.end(), [](const JobState* a, const JobState* b) {
    if (a->job.submit_time != b->job.submit_time) {
      return a->job.submit_time < b->job.submit_time;
    }
    return a->job.id < b->job.id;
  });

  // Strict arrival order with head-of-line blocking: the first job that does
  // not fit stalls the queue (Kubernetes/Yarn-style FIFO).
  for (const JobState* js : queued) {
    const GpuType type = js->job.requested_type;
    if (free[static_cast<int>(type)] < js->job.requested_gpus ||
        !view_.Launchable(js->job.spec, type, js->job.requested_gpus)) {
      break;
    }
    Assignment a;
    a.type = type;
    a.ngpus = js->job.requested_gpus;
    decision.assignments[js->job.id] = a;
    free[static_cast<int>(type)] -= a.ngpus;
  }
  return decision;
}

}  // namespace crius
