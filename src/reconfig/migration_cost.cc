#include "src/reconfig/migration_cost.h"

#include <algorithm>

#include "src/model/models.h"

namespace crius {

double MigrationCostModel::Cost(const ModelSpec& spec, const Cell& from, const Cell& to) const {
  (void)from;
  double write = std::max(0.0, config_.checkpoint_cost);
  if (config_.checkpoint_bandwidth > 0.0) {
    write = GetOpGraph(spec).TotalParamBytes() / config_.checkpoint_bandwidth;
  }
  const double warmup = std::max(0.0, config_.warmup_base) +
                        std::max(0.0, config_.warmup_per_gpu) * static_cast<double>(to.ngpus);
  // Write at suspend + fixed relaunch + read at resume + destination warm-up.
  return 2.0 * write + std::max(0.0, config_.restart_overhead) + warmup;
}

}  // namespace crius
