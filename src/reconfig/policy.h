// ReconfigPolicy: Rubick-style live elasticity for running jobs.
//
// The Cell abstraction fixes a job's (gpu_type, ngpus, nstages) at placement
// time; this policy revisits that choice while the job runs. On the
// RoundEvent triggers that change what the right Cell is -- an arrival burst,
// a node failure or recovery, a straggler window opening or closing, capacity
// freed by departures -- it re-ranks each running job's GenerateCellsUpTo
// candidates through the existing estimator and proposes a typed
// MigrationAction (shrink / grow / re-split / type-swap) whenever the modeled
// remaining-time gain beats the migration cost plus a hysteresis margin.
//
// Gain model (two motives, one accept rule):
//  * Performance: the estimator ranks a reachable Cell strictly better than
//    the job's current one. The relative estimator speedup is applied to the
//    job's *realized* rate, so the gain is in real seconds:
//      gain = remaining * iter_time * (1 - est_iter(to) / est_iter(cur))
//  * Distress: the realized iteration time exceeds the estimator's view of
//    the current Cell by more than `distress_factor` (a straggler or
//    degraded hardware, which estimates never model). Then moving even to an
//    estimator-equal Cell recovers the excess:
//      gain = remaining * (iter_time - est_iter(to))
//    (optimistic: the new allocation is assumed straggler-free, which the
//    cluster's healthy-node-preferring Allocate makes the common case).
// A proposal is accepted only if gain > cost + hysteresis_margin AND
// gain > min_relative_gain * remaining-time, and each job respects a
// per-job cooldown -- the three dampers that prevent migration churn.
// Estimated iteration times are stretched by the destination Cell's
// checkpoint-overhead factor (src/fault/checkpoint.h) so a grow onto more
// nodes honestly pays its higher failure-domain checkpoint cadence.
//
// Determinism contract: Propose is sequential and pure given (round,
// decision, internal cooldown state); jobs are scanned in ascending id and
// candidates in GenerateCellsUpTo's canonical order, and every estimator
// query is a cached pure function -- so proposals are bit-identical across
// --threads and through serve-session replay.

#ifndef SRC_RECONFIG_POLICY_H_
#define SRC_RECONFIG_POLICY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/oracle.h"
#include "src/fault/checkpoint.h"
#include "src/reconfig/migration_cost.h"
#include "src/sched/scheduler.h"

namespace crius {

struct ReconfigConfig {
  // Master switch; everything below is inert while false (the default), so
  // the off path is bit-identical to a build without the subsystem.
  bool enabled = false;
  // Migration pricing. When driven through SimEngine, restart_overhead and
  // checkpoint_bandwidth are synced from SimConfig so migrations and plain
  // restarts price the shared legs identically.
  MigrationCostConfig cost;
  // Accept a migration only when gain > cost + this margin (seconds).
  double hysteresis_margin = 120.0;
  // ... and gain > this fraction of the job's current remaining time.
  double min_relative_gain = 0.05;
  // Minimum virtual seconds between migrations of the same job.
  double cooldown = 900.0;
  // Cap on accepted migrations per scheduling round (0 = unlimited).
  int max_migrations_per_round = 2;
  // Job arrivals in one round delta that count as an "arrival burst" trigger.
  int arrival_burst = 2;
  // Also trigger on job departures (freed capacity is the main grow source).
  bool react_to_departures = true;
  // Never grow a running job while some queued job is still waiting for GPUs:
  // free capacity then belongs to the queue, and growth would push the
  // head-of-line job's start further out (tail-JCT starvation). Shrinks,
  // re-splits, and same-size type swaps stay allowed.
  bool defer_growth_to_queue = true;
  // Realized / estimated iteration-time ratio above which a job counts as
  // distressed (straggler escape may then target estimator-equal Cells).
  double distress_factor = 1.25;
};

class ReconfigPolicy {
 public:
  // `oracle` must outlive the policy. `checkpoint` + `node_mtbf` mirror the
  // engine's fault model so target-Cell estimates carry the same checkpoint
  // overhead the job would realize there.
  ReconfigPolicy(PerformanceOracle* oracle, const ReconfigConfig& config,
                 const CheckpointConfig& checkpoint = {}, double node_mtbf = 0.0);

  // Proposes migrations for the running jobs that `decision` keeps in place.
  // Jobs the decision restarts, preempts, or drops already pay a placement
  // change this round and are skipped. Returns actions in ascending job-id
  // order; capacity accounting starts from cluster usable capacity minus the
  // decision's assignments, so folding the actions into the decision can
  // never oversubscribe a GPU type.
  std::vector<MigrationAction> Propose(const RoundContext& round,
                                       const ScheduleDecision& decision);

  const ReconfigConfig& config() const { return config_; }

 private:
  bool Triggered(const RoundContext& round) const;
  // Estimated iteration seconds of `spec` in `cell`, stretched by the Cell's
  // checkpoint-overhead factor; +inf when the estimator calls it infeasible.
  double EstimatedIterTime(const ModelSpec& spec, const Cell& cell,
                           const Cluster& cluster);

  PerformanceOracle* oracle_;
  ReconfigConfig config_;
  CheckpointConfig checkpoint_;
  double node_mtbf_ = 0.0;
  MigrationCostModel cost_model_;
  // Virtual time of each job's last accepted migration (cooldown state).
  std::map<int64_t, double> last_migration_;
};

}  // namespace crius

#endif  // SRC_RECONFIG_POLICY_H_
