// MigrationCostModel: what moving a *running* job to a new Cell costs (§ live
// reconfiguration, DESIGN.md §12).
//
// A live migration is a scheduler-initiated restart with extra steps: the job
// writes a synchronous checkpoint, tears down, relaunches in the target Cell,
// restores the checkpoint, and warms the new Cell up (NCCL communicator
// setup, pipeline fill, allocator re-warm) before training at full rate. The
// model prices each leg from the same knobs the engine's fault model already
// uses (src/fault/checkpoint.h), so a migration is never cheaper than the
// plain restart the engine would charge for the same placement change:
//
//   cost = write + restart_overhead + restore + warmup(target)
//   write = restore = param_bytes / checkpoint_bandwidth   (bandwidth known)
//                   = checkpoint_cost                       (fallback)
//   warmup(target)  = warmup_base + warmup_per_gpu * target.ngpus
//
// Pure and deterministic: a cost depends only on (spec, from, to) and the
// config, never on wall-clock state, so ReconfigPolicy decisions are
// bit-identical across thread counts and through serve-session replay.

#ifndef SRC_RECONFIG_MIGRATION_COST_H_
#define SRC_RECONFIG_MIGRATION_COST_H_

#include "src/core/cell.h"
#include "src/model/job.h"

namespace crius {

struct MigrationCostConfig {
  // Fixed teardown + relaunch seconds (the engine syncs this with
  // SimConfig::restart_overhead so migration and restart pricing agree).
  double restart_overhead = 60.0;
  // Checkpoint write/read bandwidth in bytes/s; 0 = size-independent model.
  double checkpoint_bandwidth = 0.0;
  // Seconds per synchronous checkpoint write when no bandwidth is known
  // (mirrors CheckpointConfig::cost, the periodic model's per-write stall).
  double checkpoint_cost = 30.0;
  // Cell warm-up: fixed part plus a per-GPU term (communicator setup and
  // pipeline fill grow with the destination Cell's size).
  double warmup_base = 20.0;
  double warmup_per_gpu = 1.0;
};

class MigrationCostModel {
 public:
  explicit MigrationCostModel(MigrationCostConfig config) : config_(config) {}

  // Modeled seconds the job is paused while moving from `from` to `to`.
  // `from` only disambiguates future asymmetric models; today the cost is a
  // function of the model size and the destination Cell.
  double Cost(const ModelSpec& spec, const Cell& from, const Cell& to) const;

  const MigrationCostConfig& config() const { return config_; }

 private:
  MigrationCostConfig config_;
};

}  // namespace crius

#endif  // SRC_RECONFIG_MIGRATION_COST_H_
