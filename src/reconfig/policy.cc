#include "src/reconfig/policy.h"

#include <algorithm>
#include <array>
#include <limits>

#include "src/util/counters.h"

namespace crius {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

MigrationKind ClassifyMigration(const Cell& from, const Cell& to) {
  if (from.gpu_type != to.gpu_type) {
    return MigrationKind::kTypeSwap;
  }
  if (to.ngpus < from.ngpus) {
    return MigrationKind::kShrink;
  }
  if (to.ngpus > from.ngpus) {
    return MigrationKind::kGrow;
  }
  return MigrationKind::kResplit;
}

}  // namespace

ReconfigPolicy::ReconfigPolicy(PerformanceOracle* oracle, const ReconfigConfig& config,
                               const CheckpointConfig& checkpoint, double node_mtbf)
    : oracle_(oracle),
      config_(config),
      checkpoint_(checkpoint),
      node_mtbf_(node_mtbf),
      cost_model_(config.cost) {}

bool ReconfigPolicy::Triggered(const RoundContext& round) const {
  int arrivals = 0;
  for (const RoundEvent& e : round.events()) {
    if (e.is_health_event()) {
      return true;  // fail / recover / slowdown change: the Cell math moved
    }
    switch (e.kind) {
      case RoundEventKind::kJobArrival:
        ++arrivals;
        break;
      case RoundEventKind::kJobDeparture:
        if (config_.react_to_departures) {
          return true;  // freed capacity: grow opportunities
        }
        break;
      default:
        break;
    }
  }
  return arrivals >= config_.arrival_burst;
}

double ReconfigPolicy::EstimatedIterTime(const ModelSpec& spec, const Cell& cell,
                                         const Cluster& cluster) {
  const double thr = oracle_->EstimatedThroughput(spec, cell);
  if (thr <= 0.0) {
    return kInf;
  }
  double iter = static_cast<double>(spec.global_batch) / thr;
  // The target's realized rate pays the same periodic-checkpoint overhead the
  // engine will charge for its node span (src/fault/checkpoint.h, guarded so
  // degenerate configs resolve to factor 1 instead of aborting).
  const int per_node = cluster.GpusPerNode(cell.gpu_type);
  const int nodes = per_node > 0 ? (cell.ngpus + per_node - 1) / per_node : 1;
  const double interval = EffectiveCheckpointInterval(checkpoint_, node_mtbf_, nodes);
  return iter * CheckpointOverheadFactor(interval, checkpoint_.cost);
}

std::vector<MigrationAction> ReconfigPolicy::Propose(const RoundContext& round,
                                                     const ScheduleDecision& decision) {
  std::vector<MigrationAction> actions;
  if (!config_.enabled || !Triggered(round)) {
    return actions;
  }
  CRIUS_COUNTER_INC("reconfig.rounds_triggered");
  const Cluster& cluster = round.cluster();

  // Capacity left after the scheduler's own decision: usable minus every
  // assignment (kept running jobs and fresh starts alike). A migrating job
  // credits its current grant back before taking the target's.
  std::array<int, kNumGpuTypes> free{};
  for (GpuType type : AllGpuTypes()) {
    free[static_cast<int>(type)] = cluster.UsableGpus(type);
  }
  for (const auto& [id, a] : decision.assignments) {
    (void)id;
    free[static_cast<int>(a.type)] -= a.ngpus;
  }

  // The *oldest* queued job left unassigned this round is waiting for
  // capacity in its requested pool; migrating a running job into that pool
  // (growing there, or swapping in from another type) would push its start
  // further out. Only the oldest waiter's pool is protected: jobs behind it
  // are blocked by queue order, not by the capacity a migration would take.
  std::array<bool, kNumGpuTypes> queue_waiting{};
  if (config_.defer_growth_to_queue) {
    const JobState* oldest = nullptr;
    for (const JobState* js : round.jobs()) {
      if (js->phase != JobPhase::kQueued ||
          decision.assignments.find(js->job.id) != decision.assignments.end()) {
        continue;
      }
      if (oldest == nullptr || js->job.submit_time < oldest->job.submit_time ||
          (js->job.submit_time == oldest->job.submit_time && js->job.id < oldest->job.id)) {
        oldest = js;
      }
    }
    if (oldest != nullptr) {
      queue_waiting[static_cast<int>(oldest->job.requested_type)] = true;
    }
  }

  // Running jobs the decision keeps in place, ascending id (round.jobs() is
  // not ordered by contract; sorting pins the scan order for determinism).
  std::vector<const JobState*> candidates;
  for (const JobState* js : round.jobs()) {
    if (js->phase != JobPhase::kRunning) {
      continue;
    }
    const auto it = decision.assignments.find(js->job.id);
    const bool kept = it != decision.assignments.end() && it->second.type == js->gpu_type &&
                      it->second.ngpus == js->ngpus &&
                      (it->second.nstages == 0 || it->second.nstages == js->nstages);
    if (kept) {
      candidates.push_back(js);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const JobState* a, const JobState* b) { return a->job.id < b->job.id; });

  for (const JobState* js : candidates) {
    if (config_.max_migrations_per_round > 0 &&
        static_cast<int>(actions.size()) >= config_.max_migrations_per_round) {
      break;
    }
    const double remaining = js->remaining_iters();
    if (remaining <= 0.0 || js->iter_time <= 0.0) {
      continue;
    }
    // Mid-restore jobs (still inside a restart's blocked window) and jobs in
    // their cooldown window are left alone: both are churn guards.
    if (js->blocked_until > round.now()) {
      continue;
    }
    const auto last = last_migration_.find(js->job.id);
    if (last != last_migration_.end() && round.now() - last->second < config_.cooldown) {
      continue;
    }
    CRIUS_COUNTER_INC("reconfig.jobs_considered");

    const Cell current{js->gpu_type, js->ngpus, std::max(1, js->nstages)};
    const std::vector<Cell> cells = GenerateCells(js->job, cluster);
    // The estimator's view of the job's current size: best split at
    // (type, ngpus). Realized-vs-estimated excess beyond distress_factor
    // marks slowdown the estimator cannot see (stragglers).
    double est_cur = kInf;
    for (const Cell& cell : cells) {
      if (cell.gpu_type == current.gpu_type && cell.ngpus == current.ngpus) {
        est_cur = std::min(est_cur, EstimatedIterTime(js->job.spec, cell, cluster));
      }
    }
    if (est_cur == kInf) {
      continue;  // current size not rankable (capacity degraded under it)
    }
    const bool distressed = js->iter_time > config_.distress_factor * est_cur;
    const double current_remaining_s = remaining * js->iter_time;

    const MigrationAction* best = nullptr;
    MigrationAction best_action;
    for (const Cell& cell : cells) {
      CRIUS_COUNTER_INC("reconfig.candidates");
      const bool same_size =
          cell.gpu_type == current.gpu_type && cell.ngpus == current.ngpus;
      if (same_size && (js->nstages == 0 || cell.nstages == current.nstages)) {
        // The job's own Cell -- or, for a baseline-scheduled job running its
        // full adaptive plan (nstages 0), any re-split at the same size: the
        // adaptive plan is ground-truth optimal there, an estimator-guided
        // re-split can only look better than it actually is.
        continue;
      }
      const int avail = free[static_cast<int>(cell.gpu_type)] +
                        (cell.gpu_type == current.gpu_type ? current.ngpus : 0);
      if (cell.ngpus > avail) {
        continue;
      }
      if (queue_waiting[static_cast<int>(cell.gpu_type)] &&
          (cell.gpu_type != current.gpu_type || cell.ngpus > current.ngpus)) {
        // A queued job waits for this pool: the free capacity there is its,
        // not ours. Moves that take net GPUs from the pool (grows within it,
        // swaps into it) are off; shrinks and same-type re-splits -- which
        // free or keep capacity -- stay allowed.
        continue;
      }
      const double est_to = EstimatedIterTime(js->job.spec, cell, cluster);
      if (est_to == kInf) {
        continue;
      }
      double gain = 0.0;
      if (est_to < est_cur) {
        // Performance motive: scale the estimator's relative speedup by the
        // realized rate so the gain is in real seconds.
        gain = current_remaining_s * (1.0 - est_to / est_cur);
      } else if (distressed) {
        // Distress motive: escape slowdown the estimator cannot model; the
        // new allocation is assumed healthy (Allocate prefers healthy nodes).
        gain = remaining * (js->iter_time - est_to);
      } else {
        continue;
      }
      const double cost = cost_model_.Cost(js->job.spec, current, cell);
      if (gain <= cost + config_.hysteresis_margin ||
          gain <= config_.min_relative_gain * current_remaining_s) {
        continue;
      }
      if (best != nullptr && gain - cost <= best_action.gain_seconds - best_action.cost_seconds) {
        continue;  // strict improvement only: first candidate wins ties
      }
      best_action.job_id = js->job.id;
      best_action.kind = ClassifyMigration(current, cell);
      best_action.target.type = cell.gpu_type;
      best_action.target.ngpus = cell.ngpus;
      best_action.target.nstages = cell.nstages;
      best_action.target.opportunistic = js->opportunistic;
      best_action.cost_seconds = cost;
      best_action.gain_seconds = gain;
      best = &best_action;
    }
    if (best == nullptr) {
      continue;
    }
    free[static_cast<int>(current.gpu_type)] += current.ngpus;
    free[static_cast<int>(best_action.target.type)] -= best_action.target.ngpus;
    last_migration_[js->job.id] = round.now();
    CounterRegistry::Global()
        .GetCounter("reconfig.proposals",
                    MetricLabels{{"kind", MigrationKindName(best_action.kind)}})
        .Add(1);
    CRIUS_HISTOGRAM_RECORD("reconfig.gain_s", best_action.gain_seconds);
    CRIUS_HISTOGRAM_RECORD("reconfig.cost_s", best_action.cost_seconds);
    actions.push_back(best_action);
  }
  return actions;
}

}  // namespace crius
