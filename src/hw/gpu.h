// GPU types and specifications.
//
// The specs model the four GPU types of the paper's testbeds (Table 1 / §8.1):
// A100 and V100 nodes have NVLink, A40 and A10 nodes connect GPUs over PCIe,
// and nodes are interconnected with Mellanox ConnectX-5 or ConnectX-6
// InfiniBand. Peak throughputs are public fp16 tensor-core numbers; they feed
// the analytical performance model that substitutes for the paper's physical
// cluster (see DESIGN.md §2).

#ifndef SRC_HW_GPU_H_
#define SRC_HW_GPU_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crius {

enum class GpuType : uint8_t {
  kA100 = 0,
  kA40 = 1,
  kA10 = 2,
  kV100 = 3,
};

// Number of distinct GPU types.
inline constexpr int kNumGpuTypes = 4;

// All GPU types, in Table-1 order.
const std::vector<GpuType>& AllGpuTypes();

enum class GpuArch : uint8_t {
  kAmpere,
  kVolta,
};

// Intra-node GPU interconnect class.
enum class IntraLink : uint8_t {
  kNvLink,
  kPcie,
};

// Inter-node NIC class (Table 1).
enum class InterLink : uint8_t {
  kInfinibandCx5,  // 100 Gb/s
  kInfinibandCx6,  // 200 Gb/s
};

struct GpuSpec {
  GpuType type;
  std::string name;
  GpuArch arch;
  // Peak dense fp16 tensor throughput, FLOPs/s.
  double peak_flops;
  // Device memory, bytes.
  double memory_bytes;
  // Intra-node interconnect and its effective per-GPU bus bandwidth, bytes/s.
  IntraLink intra_link;
  double intra_bw;
  // Inter-node NIC and its effective bandwidth, bytes/s (one NIC per node).
  InterLink inter_link;
  double inter_bw;
};

// Returns the immutable spec for a GPU type.
const GpuSpec& GpuSpecOf(GpuType type);

// Short display name, e.g. "A100".
const std::string& GpuName(GpuType type);

// Parses "A100" / "a40" / ... Aborts on unknown names.
GpuType ParseGpuType(const std::string& name);

// True if the GPU's intra-node link is NVLink.
bool HasNvLink(GpuType type);

}  // namespace crius

#endif  // SRC_HW_GPU_H_
