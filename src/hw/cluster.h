// Heterogeneous GPU cluster: nodes, capacity tracking, and allocation.
//
// A cluster is a set of nodes, each holding `gpus_per_node` GPUs of a single
// type (Table 1). Schedulers reason in (GpuType, gpu count) units -- the same
// granularity the paper's Cells use -- and the cluster maps a grant onto
// concrete nodes, preferring fully free nodes so allocations stay contiguous.

#ifndef SRC_HW_CLUSTER_H_
#define SRC_HW_CLUSTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/hw/gpu.h"
#include "src/hw/interconnect.h"

namespace crius {

struct NodeInfo {
  int id = 0;
  GpuType type = GpuType::kA100;
  int total_gpus = 0;
  int free_gpus = 0;
  // Devices currently failed (unallocatable). total = free + allocated + failed.
  int failed_gpus = 0;
  // Straggler factor the node advertises: realized iteration time of any job
  // touching this node is multiplied by the worst factor it spans. 1.0 =
  // healthy.
  double slowdown = 1.0;
};

// A concrete grant of GPUs on specific nodes; all of one GPU type.
struct Allocation {
  GpuType type = GpuType::kA100;
  // (node id, gpus taken on that node).
  std::vector<std::pair<int, int>> node_gpus;

  int total_gpus() const;
  bool empty() const { return node_gpus.empty(); }
  // Number of distinct nodes used.
  int num_nodes() const { return static_cast<int>(node_gpus.size()); }
};

class Cluster {
 public:
  Cluster() = default;

  // Adds `num_nodes` nodes, each with `gpus_per_node` GPUs of `type`. All
  // nodes of one type must share one gpus_per_node (Table-1 topology).
  void AddNodes(GpuType type, int num_nodes, int gpus_per_node);

  int TotalGpus(GpuType type) const;
  int FreeGpus(GpuType type) const;
  int TotalGpus() const;
  int FreeGpus() const;

  // Physical capacity minus currently failed devices: the capacity schedulers
  // may plan against. Equal to TotalGpus when the cluster is healthy.
  int UsableGpus(GpuType type) const;
  int UsableGpus() const;
  int FailedGpus() const;

  // GPUs per node for `type`; 0 if the cluster has no such nodes.
  int GpusPerNode(GpuType type) const;

  // True if the cluster contains at least one node of `type`.
  bool HasType(GpuType type) const;

  // Communication topology for groups of `type` GPUs in this cluster.
  GroupTopology TopologyFor(GpuType type) const;

  // Allocates `n` GPUs of `type`, preferring fully free nodes. Returns
  // std::nullopt (cluster unchanged) if fewer than n GPUs are free.
  std::optional<Allocation> Allocate(GpuType type, int n);

  // Returns a previously granted allocation. Aborts on double release.
  void Release(const Allocation& alloc);

  // --- Health state (src/fault degraded-mode support) ------------------------

  // Marks up to `gpus` currently free devices on `node_id` as failed
  // (`gpus` <= 0 fails every free device). Allocated devices cannot fail
  // directly: the simulator kills the jobs holding them first, which frees
  // them. Returns the number of devices actually failed.
  int MarkFailed(int node_id, int gpus);

  // Returns up to `gpus` failed devices on `node_id` to service (`gpus` <= 0
  // recovers all). Returns the number of devices actually recovered.
  int MarkRecovered(int node_id, int gpus);

  // Sets the node's straggler factor (>= 1.0; 1.0 = healthy).
  void SetNodeSlowdown(int node_id, double factor);
  double NodeSlowdown(int node_id) const;

  // Monotonic counter bumped by every health mutation (MarkFailed,
  // MarkRecovered, SetNodeSlowdown). Schedulers key cached capacity- and
  // health-dependent state (e.g. Cell rankings) off this epoch so it is
  // invalidated the moment the usable cluster changes.
  uint64_t health_epoch() const { return health_epoch_; }

  // Process-unique id of this Cluster object, reassigned on copy: two Cluster
  // objects never share an identity even when one is a copy of the other or
  // reuses the other's freed address. Pairs with health_epoch() so cached
  // scheduler state keyed on (identity, epoch) cannot survive a swap to a
  // different cluster whose epoch coincidentally matches.
  uint64_t identity() const { return identity_.value; }

  // Worst straggler factor across the nodes of `alloc` (synchronous training
  // runs at the slowest node's pace). 1.0 for an empty allocation.
  double MaxSlowdown(const Allocation& alloc) const;

  // Free GPU counts per type, indexed by static_cast<int>(GpuType).
  std::array<int, kNumGpuTypes> FreeByType() const;

  const std::vector<NodeInfo>& nodes() const { return nodes_; }

 private:
  // Fresh-on-construction, fresh-on-copy tag backing identity(). The copy
  // operations deliberately mint a new id instead of copying the source's.
  struct InstanceId {
    InstanceId() : value(next.fetch_add(1, std::memory_order_relaxed)) {}
    InstanceId(const InstanceId&) : InstanceId() {}
    InstanceId& operator=(const InstanceId&) { return *this; }
    uint64_t value;
    static inline std::atomic<uint64_t> next{1};
  };

  std::vector<NodeInfo> nodes_;
  std::array<int, kNumGpuTypes> total_{};
  std::array<int, kNumGpuTypes> free_{};
  std::array<int, kNumGpuTypes> failed_{};
  std::array<int, kNumGpuTypes> gpus_per_node_{};
  uint64_t health_epoch_ = 0;
  InstanceId identity_;
};

// The 64-GPU physical testbed of §8.1/§8.3: 16 nodes x 2 A40 + 16 nodes x 2 A10.
Cluster MakePhysicalTestbed();

// The 1,280-GPU simulated cluster of Table 1:
// 80 x 4 A100, 160 x 2 A40, 160 x 2 A10, 20 x 16 V100.
Cluster MakeSimulatedCluster();

// The small motivation setup of §2.2 (Figs. 1 and 3): one 4-GPU A100 NVLink
// node and one 4-GPU V100 NVLink node.
Cluster MakeMotivationCluster();

// Parses a cluster description of the form "A100:80x4,A40:160x2" (type :
// node-count x gpus-per-node, comma separated). Aborts on malformed specs.
Cluster ParseClusterSpec(const std::string& spec);

// Resolves a --cluster flag value: the named presets ("testbed", "simulated",
// "motivation") or any ParseClusterSpec string. One implementation shared by
// crius_sim, crius_serve, and the session replay path, so every entry point
// accepts the same vocabulary.
Cluster MakeNamedCluster(const std::string& spec);

// Renders a cluster back into the ParseClusterSpec format.
std::string ClusterSpecString(const Cluster& cluster);

}  // namespace crius

#endif  // SRC_HW_CLUSTER_H_
