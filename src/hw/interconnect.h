// Communication cost model.
//
// Crius's estimator decouples computation from communication (§5.1): the
// latency of a communication operator depends only on the interconnect and the
// traffic volume. This module is the ground-truth communication model of the
// simulated hardware. The offline "profiled" interpolation tables that the
// estimator uses at runtime (src/core/comm_profile.h) are sampled from these
// functions, mirroring how the paper profiles NCCL collectives offline.
//
// Collectives use the standard ring/hierarchical cost forms. A group of n GPUs
// on nodes with g GPUs each is modeled as a two-level topology: a ring inside
// each node over the intra-node link (NVLink or PCIe) and a ring across node
// NICs over InfiniBand.

#ifndef SRC_HW_INTERCONNECT_H_
#define SRC_HW_INTERCONNECT_H_

#include "src/hw/gpu.h"

namespace crius {

// Communication-relevant topology of one GPU group.
struct GroupTopology {
  double intra_bw = 0.0;       // bytes/s, per-GPU intra-node bus
  double inter_bw = 0.0;       // bytes/s, per-node NIC
  int gpus_per_node = 1;       // GPUs of this type per node
  double intra_latency = 5e-6;   // seconds per hop
  double inter_latency = 20e-6;  // seconds per hop

  // Topology for `gpus_per_node` GPUs of `type` per node.
  static GroupTopology For(GpuType type, int gpus_per_node);
};

// Kinds of communication operators appearing in training pipelines (Fig. 8).
enum class CollectiveKind : uint8_t {
  kAllReduce = 0,
  kAllGather = 1,
  kReduceScatter = 2,
  kSendRecv = 3,
  kAllToAll = 4,
};

inline constexpr int kNumCollectiveKinds = 5;

const char* CollectiveName(CollectiveKind kind);

// Time for a ring all-reduce of `bytes` per GPU across a group of `n` GPUs.
double AllReduceTime(const GroupTopology& topo, double bytes, int n);

// Time for an all-gather where each GPU ends with `bytes` total.
double AllGatherTime(const GroupTopology& topo, double bytes, int n);

// Time for a reduce-scatter of `bytes` total input per GPU.
double ReduceScatterTime(const GroupTopology& topo, double bytes, int n);

// Point-to-point transfer of `bytes`. `cross_node` selects the NIC path.
double SendRecvTime(const GroupTopology& topo, double bytes, bool cross_node);

// All-to-all of `bytes` per GPU across `n` GPUs (MoE expert dispatch).
double AllToAllTime(const GroupTopology& topo, double bytes, int n);

// Dispatches on `kind`. For kSendRecv, n > gpus_per_node selects the
// cross-node path (the two endpoints live on different nodes).
double CollectiveTime(CollectiveKind kind, const GroupTopology& topo, double bytes, int n);

}  // namespace crius

#endif  // SRC_HW_INTERCONNECT_H_
