#include "src/hw/gpu.h"

#include <array>

#include "src/util/check.h"
#include "src/util/units.h"

namespace crius {

namespace {

// Effective bandwidths are deliberately below marketing peaks: NVLink numbers
// are bus bandwidth achievable by NCCL rings, PCIe is shared-host effective,
// and InfiniBand is line rate (100 / 200 Gb/s) per node NIC.
const std::array<GpuSpec, kNumGpuTypes> kSpecs = {{
    {GpuType::kA100, "A100", GpuArch::kAmpere, 312.0 * kTeraFlops, 40.0 * kGiB,
     IntraLink::kNvLink, 300.0 * kGB, InterLink::kInfinibandCx5, 100.0 * kGbps},
    {GpuType::kA40, "A40", GpuArch::kAmpere, 150.0 * kTeraFlops, 48.0 * kGiB,
     IntraLink::kPcie, 16.0 * kGB, InterLink::kInfinibandCx5, 100.0 * kGbps},
    {GpuType::kA10, "A10", GpuArch::kAmpere, 125.0 * kTeraFlops, 24.0 * kGiB,
     IntraLink::kPcie, 16.0 * kGB, InterLink::kInfinibandCx6, 200.0 * kGbps},
    {GpuType::kV100, "V100", GpuArch::kVolta, 112.0 * kTeraFlops, 32.0 * kGiB,
     IntraLink::kNvLink, 150.0 * kGB, InterLink::kInfinibandCx5, 100.0 * kGbps},
}};

}  // namespace

const std::vector<GpuType>& AllGpuTypes() {
  static const std::vector<GpuType> kAll = {GpuType::kA100, GpuType::kA40, GpuType::kA10,
                                            GpuType::kV100};
  return kAll;
}

const GpuSpec& GpuSpecOf(GpuType type) {
  const auto index = static_cast<size_t>(type);
  CRIUS_CHECK(index < kSpecs.size());
  const GpuSpec& spec = kSpecs[index];
  CRIUS_CHECK(spec.type == type);
  return spec;
}

const std::string& GpuName(GpuType type) {
  return GpuSpecOf(type).name;
}

GpuType ParseGpuType(const std::string& name) {
  for (GpuType t : AllGpuTypes()) {
    const std::string& n = GpuName(t);
    if (n.size() == name.size()) {
      bool match = true;
      for (size_t i = 0; i < n.size(); ++i) {
        const char a = n[i];
        const char b = name[i];
        const char bu = (b >= 'a' && b <= 'z') ? static_cast<char>(b - 'a' + 'A') : b;
        if (a != bu) {
          match = false;
          break;
        }
      }
      if (match) {
        return t;
      }
    }
  }
  CRIUS_UNREACHABLE("unknown GPU type name: " + name);
}

bool HasNvLink(GpuType type) {
  return GpuSpecOf(type).intra_link == IntraLink::kNvLink;
}

}  // namespace crius
