#include "src/hw/interconnect.h"

#include <algorithm>

#include "src/util/check.h"

namespace crius {

namespace {

// Splits a group of n GPUs into (k GPUs per node) x (m nodes).
struct GroupShape {
  int k;  // GPUs per node participating
  int m;  // nodes participating
};

GroupShape ShapeOf(const GroupTopology& topo, int n) {
  CRIUS_CHECK(n >= 1);
  if (n <= topo.gpus_per_node) {
    return {n, 1};
  }
  CRIUS_CHECK_MSG(n % topo.gpus_per_node == 0,
                  "group of " << n << " GPUs does not pack nodes of " << topo.gpus_per_node);
  return {topo.gpus_per_node, n / topo.gpus_per_node};
}

double RingFactor(int n) {
  return static_cast<double>(n - 1) / static_cast<double>(n);
}

}  // namespace

GroupTopology GroupTopology::For(GpuType type, int gpus_per_node) {
  const GpuSpec& spec = GpuSpecOf(type);
  GroupTopology topo;
  topo.intra_bw = spec.intra_bw;
  topo.inter_bw = spec.inter_bw;
  topo.gpus_per_node = gpus_per_node;
  return topo;
}

const char* CollectiveName(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "all_reduce";
    case CollectiveKind::kAllGather:
      return "all_gather";
    case CollectiveKind::kReduceScatter:
      return "reduce_scatter";
    case CollectiveKind::kSendRecv:
      return "send_recv";
    case CollectiveKind::kAllToAll:
      return "all_to_all";
  }
  return "?";
}

double AllReduceTime(const GroupTopology& topo, double bytes, int n) {
  CRIUS_CHECK(bytes >= 0.0);
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const GroupShape s = ShapeOf(topo, n);
  double t = 0.0;
  if (s.k > 1) {
    // Intra-node ring phase (reduce-scatter + all-gather when m == 1; the
    // same volume moves in the hierarchical scheme).
    t += 2.0 * RingFactor(s.k) * bytes / topo.intra_bw;
    t += 2.0 * static_cast<double>(s.k - 1) * topo.intra_latency;
  }
  if (s.m > 1) {
    // Inter-node ring across node leaders; each NIC carries the full payload
    // reduced within its node.
    t += 2.0 * RingFactor(s.m) * bytes / topo.inter_bw;
    t += 2.0 * static_cast<double>(s.m - 1) * topo.inter_latency;
  }
  return t;
}

double AllGatherTime(const GroupTopology& topo, double bytes, int n) {
  CRIUS_CHECK(bytes >= 0.0);
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const GroupShape s = ShapeOf(topo, n);
  double t = 0.0;
  if (s.k > 1) {
    t += RingFactor(s.k) * bytes / topo.intra_bw;
    t += static_cast<double>(s.k - 1) * topo.intra_latency;
  }
  if (s.m > 1) {
    t += RingFactor(s.m) * bytes / topo.inter_bw;
    t += static_cast<double>(s.m - 1) * topo.inter_latency;
  }
  return t;
}

double ReduceScatterTime(const GroupTopology& topo, double bytes, int n) {
  // Symmetric to all-gather in the ring model.
  return AllGatherTime(topo, bytes, n);
}

double SendRecvTime(const GroupTopology& topo, double bytes, bool cross_node) {
  CRIUS_CHECK(bytes >= 0.0);
  if (bytes == 0.0) {
    return 0.0;
  }
  if (cross_node) {
    return bytes / topo.inter_bw + topo.inter_latency;
  }
  return bytes / topo.intra_bw + topo.intra_latency;
}

double AllToAllTime(const GroupTopology& topo, double bytes, int n) {
  CRIUS_CHECK(bytes >= 0.0);
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const GroupShape s = ShapeOf(topo, n);
  // Each GPU sends bytes * (n-1)/n in total; traffic crossing the NIC is the
  // fraction destined for other nodes.
  double t = 0.0;
  if (s.k > 1) {
    const double intra_fraction =
        static_cast<double>(s.k - 1) / static_cast<double>(n);
    t += bytes * intra_fraction / topo.intra_bw + static_cast<double>(s.k - 1) * topo.intra_latency;
  }
  if (s.m > 1) {
    const double inter_fraction =
        static_cast<double>(n - s.k) / static_cast<double>(n);
    // All k GPUs of a node share the NIC for cross-node traffic.
    t += bytes * inter_fraction * static_cast<double>(s.k) / topo.inter_bw +
         static_cast<double>(s.m - 1) * topo.inter_latency;
  }
  return t;
}

double CollectiveTime(CollectiveKind kind, const GroupTopology& topo, double bytes, int n) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return AllReduceTime(topo, bytes, n);
    case CollectiveKind::kAllGather:
      return AllGatherTime(topo, bytes, n);
    case CollectiveKind::kReduceScatter:
      return ReduceScatterTime(topo, bytes, n);
    case CollectiveKind::kSendRecv:
      return SendRecvTime(topo, bytes, /*cross_node=*/n > topo.gpus_per_node);
    case CollectiveKind::kAllToAll:
      return AllToAllTime(topo, bytes, n);
  }
  CRIUS_UNREACHABLE("bad collective kind");
}

}  // namespace crius
