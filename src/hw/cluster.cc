#include "src/hw/cluster.h"

#include <algorithm>

#include "src/util/check.h"

namespace crius {

int Allocation::total_gpus() const {
  int n = 0;
  for (const auto& [node, count] : node_gpus) {
    n += count;
  }
  return n;
}

void Cluster::AddNodes(GpuType type, int num_nodes, int gpus_per_node) {
  CRIUS_CHECK(num_nodes > 0);
  CRIUS_CHECK(gpus_per_node > 0);
  const int ti = static_cast<int>(type);
  CRIUS_CHECK_MSG(gpus_per_node_[ti] == 0 || gpus_per_node_[ti] == gpus_per_node,
                  "all nodes of one GPU type must have the same GPU count");
  gpus_per_node_[ti] = gpus_per_node;
  for (int i = 0; i < num_nodes; ++i) {
    NodeInfo node;
    node.id = static_cast<int>(nodes_.size());
    node.type = type;
    node.total_gpus = gpus_per_node;
    node.free_gpus = gpus_per_node;
    nodes_.push_back(node);
    total_[ti] += gpus_per_node;
    free_[ti] += gpus_per_node;
  }
}

int Cluster::TotalGpus(GpuType type) const {
  return total_[static_cast<int>(type)];
}

int Cluster::FreeGpus(GpuType type) const {
  return free_[static_cast<int>(type)];
}

int Cluster::TotalGpus() const {
  int n = 0;
  for (int t : total_) {
    n += t;
  }
  return n;
}

int Cluster::FreeGpus() const {
  int n = 0;
  for (int f : free_) {
    n += f;
  }
  return n;
}

int Cluster::UsableGpus(GpuType type) const {
  const int ti = static_cast<int>(type);
  return total_[ti] - failed_[ti];
}

int Cluster::UsableGpus() const {
  return TotalGpus() - FailedGpus();
}

int Cluster::FailedGpus() const {
  int n = 0;
  for (int f : failed_) {
    n += f;
  }
  return n;
}

int Cluster::MarkFailed(int node_id, int gpus) {
  CRIUS_CHECK(node_id >= 0 && static_cast<size_t>(node_id) < nodes_.size());
  NodeInfo& node = nodes_[node_id];
  const int want = gpus <= 0 ? node.free_gpus : gpus;
  const int take = std::min(want, node.free_gpus);
  node.free_gpus -= take;
  node.failed_gpus += take;
  const int ti = static_cast<int>(node.type);
  free_[ti] -= take;
  failed_[ti] += take;
  if (take > 0) {
    ++health_epoch_;
  }
  return take;
}

int Cluster::MarkRecovered(int node_id, int gpus) {
  CRIUS_CHECK(node_id >= 0 && static_cast<size_t>(node_id) < nodes_.size());
  NodeInfo& node = nodes_[node_id];
  const int want = gpus <= 0 ? node.failed_gpus : gpus;
  const int give = std::min(want, node.failed_gpus);
  node.failed_gpus -= give;
  node.free_gpus += give;
  const int ti = static_cast<int>(node.type);
  failed_[ti] -= give;
  free_[ti] += give;
  if (give > 0) {
    ++health_epoch_;
  }
  return give;
}

void Cluster::SetNodeSlowdown(int node_id, double factor) {
  CRIUS_CHECK(node_id >= 0 && static_cast<size_t>(node_id) < nodes_.size());
  CRIUS_CHECK_MSG(factor >= 1.0, "slowdown factor below 1.0");
  if (nodes_[node_id].slowdown != factor) {
    ++health_epoch_;
  }
  nodes_[node_id].slowdown = factor;
}

double Cluster::NodeSlowdown(int node_id) const {
  CRIUS_CHECK(node_id >= 0 && static_cast<size_t>(node_id) < nodes_.size());
  return nodes_[node_id].slowdown;
}

double Cluster::MaxSlowdown(const Allocation& alloc) const {
  double worst = 1.0;
  for (const auto& [id, count] : alloc.node_gpus) {
    (void)count;
    CRIUS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    worst = std::max(worst, nodes_[id].slowdown);
  }
  return worst;
}

int Cluster::GpusPerNode(GpuType type) const {
  return gpus_per_node_[static_cast<int>(type)];
}

bool Cluster::HasType(GpuType type) const {
  return total_[static_cast<int>(type)] > 0;
}

GroupTopology Cluster::TopologyFor(GpuType type) const {
  CRIUS_CHECK_MSG(HasType(type), "cluster has no " << GpuName(type) << " nodes");
  return GroupTopology::For(type, GpusPerNode(type));
}

std::optional<Allocation> Cluster::Allocate(GpuType type, int n) {
  CRIUS_CHECK(n > 0);
  const int ti = static_cast<int>(type);
  if (free_[ti] < n) {
    return std::nullopt;
  }

  // Candidate nodes of the type with free GPUs. Prefer fully free nodes (to
  // keep allocations contiguous), then nodes with the fewest free GPUs (to
  // limit fragmentation). Stable on node id for determinism.
  std::vector<int> candidates;
  for (const NodeInfo& node : nodes_) {
    if (node.type == type && node.free_gpus > 0) {
      candidates.push_back(node.id);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const NodeInfo& na = nodes_[a];
    const NodeInfo& nb = nodes_[b];
    // Healthy nodes before stragglers: a grant avoids advertised slowdowns
    // when capacity allows. No-op ordering when every node is at 1.0.
    if (na.slowdown != nb.slowdown) {
      return na.slowdown < nb.slowdown;
    }
    // "Fully free" = no allocations (failed devices don't count against it).
    const bool fa = na.free_gpus == na.total_gpus - na.failed_gpus;
    const bool fb = nb.free_gpus == nb.total_gpus - nb.failed_gpus;
    if (fa != fb) {
      return fa > fb;
    }
    if (na.free_gpus != nb.free_gpus) {
      // Among fully free nodes order does not matter; among partial nodes take
      // the emptiest-fitting (fewest free) first.
      return fa ? na.free_gpus > nb.free_gpus : na.free_gpus < nb.free_gpus;
    }
    return a < b;
  });

  Allocation alloc;
  alloc.type = type;
  int remaining = n;
  for (int id : candidates) {
    if (remaining == 0) {
      break;
    }
    NodeInfo& node = nodes_[id];
    const int take = std::min(node.free_gpus, remaining);
    node.free_gpus -= take;
    alloc.node_gpus.emplace_back(id, take);
    remaining -= take;
  }
  CRIUS_CHECK(remaining == 0);
  free_[ti] -= n;
  return alloc;
}

void Cluster::Release(const Allocation& alloc) {
  const int ti = static_cast<int>(alloc.type);
  for (const auto& [id, count] : alloc.node_gpus) {
    CRIUS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    NodeInfo& node = nodes_[id];
    CRIUS_CHECK(node.type == alloc.type);
    CRIUS_CHECK_MSG(node.free_gpus + count <= node.total_gpus - node.failed_gpus,
                    "double release on node " << id);
    node.free_gpus += count;
    free_[ti] += count;
  }
}

std::array<int, kNumGpuTypes> Cluster::FreeByType() const {
  return free_;
}

Cluster MakePhysicalTestbed() {
  Cluster c;
  c.AddNodes(GpuType::kA40, /*num_nodes=*/16, /*gpus_per_node=*/2);
  c.AddNodes(GpuType::kA10, /*num_nodes=*/16, /*gpus_per_node=*/2);
  return c;
}

Cluster MakeSimulatedCluster() {
  Cluster c;
  c.AddNodes(GpuType::kA100, /*num_nodes=*/80, /*gpus_per_node=*/4);
  c.AddNodes(GpuType::kA40, /*num_nodes=*/160, /*gpus_per_node=*/2);
  c.AddNodes(GpuType::kA10, /*num_nodes=*/160, /*gpus_per_node=*/2);
  c.AddNodes(GpuType::kV100, /*num_nodes=*/20, /*gpus_per_node=*/16);
  return c;
}

Cluster MakeMotivationCluster() {
  Cluster c;
  c.AddNodes(GpuType::kA100, /*num_nodes=*/1, /*gpus_per_node=*/4);
  c.AddNodes(GpuType::kV100, /*num_nodes=*/1, /*gpus_per_node=*/4);
  return c;
}

Cluster ParseClusterSpec(const std::string& spec) {
  Cluster c;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string part = spec.substr(pos, end - pos);
    const size_t colon = part.find(':');
    const size_t x = part.find('x', colon == std::string::npos ? 0 : colon);
    CRIUS_CHECK_MSG(colon != std::string::npos && x != std::string::npos && x > colon + 1,
                    "bad cluster spec part '" << part << "' (want TYPE:NODESxGPUS)");
    const GpuType type = ParseGpuType(part.substr(0, colon));
    const std::string nodes_str = part.substr(colon + 1, x - colon - 1);
    const std::string gpus_str = part.substr(x + 1);
    auto parse_positive = [&part](const std::string& s, const char* what) {
      size_t parsed = 0;
      int v = 0;
      bool ok = true;
      try {
        v = std::stoi(s, &parsed);
      } catch (const std::exception&) {
        ok = false;
      }
      CRIUS_CHECK_MSG(ok && parsed == s.size() && v > 0, "bad " << what << " in '" << part
                                                                << "'");
      return v;
    };
    const int num_nodes = parse_positive(nodes_str, "node count");
    const int gpus_per_node = parse_positive(gpus_str, "GPUs-per-node");
    c.AddNodes(type, num_nodes, gpus_per_node);
    pos = end + 1;
  }
  CRIUS_CHECK_MSG(c.TotalGpus() > 0, "empty cluster spec");
  return c;
}

Cluster MakeNamedCluster(const std::string& spec) {
  if (spec == "testbed") {
    return MakePhysicalTestbed();
  }
  if (spec == "simulated") {
    return MakeSimulatedCluster();
  }
  if (spec == "motivation") {
    return MakeMotivationCluster();
  }
  return ParseClusterSpec(spec);
}

std::string ClusterSpecString(const Cluster& cluster) {
  std::string out;
  for (GpuType type : AllGpuTypes()) {
    if (!cluster.HasType(type)) {
      continue;
    }
    const int per_node = cluster.GpusPerNode(type);
    const int nodes = cluster.TotalGpus(type) / per_node;
    if (!out.empty()) {
      out += ",";
    }
    out += GpuName(type) + ":" + std::to_string(nodes) + "x" + std::to_string(per_node);
  }
  return out;
}

}  // namespace crius
