// Umbrella header: the public surface of the Crius library in one include.
//
// Tools, examples, and external users include this file instead of reaching
// into per-directory headers; the per-directory headers stay the unit of
// ownership inside src/ itself. Exports, by layer:
//
//   util     -- flags, tables, counters/trace observability, stats, threadpool
//   hw       -- GpuType, Cluster (incl. health state), interconnect topology
//   model    -- ModelSpec, TrainingJob, op graphs, the paper's model zoo
//   parallel -- parallelism plans, explorer, performance model, stage partition
//   runtime  -- pipeline engine and Gantt rendering
//   core     -- Cells, estimator/tuner, PerformanceOracle
//   fault    -- failure injection, failure traces, checkpoint model
//   sched    -- Scheduler API (RoundContext/RoundEvent), Crius + baselines
//   sim      -- Simulator, SimConfig, traces, metrics, CSV/Chrome exports
//   serve    -- cluster-controller daemon: event queue, controller, protocol,
//               session log + deterministic replay

#ifndef SRC_CRIUS_H_
#define SRC_CRIUS_H_

// --- util -------------------------------------------------------------------
#include "src/util/chart.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/csv.h"
#include "src/util/flags.h"
#include "src/util/logging.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"
#include "src/util/shutdown.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/threadpool.h"
#include "src/util/trace.h"
#include "src/util/units.h"

// --- hw ---------------------------------------------------------------------
#include "src/hw/cluster.h"
#include "src/hw/gpu.h"
#include "src/hw/interconnect.h"

// --- model ------------------------------------------------------------------
#include "src/model/job.h"
#include "src/model/models.h"
#include "src/model/opgraph.h"

// --- parallel ---------------------------------------------------------------
#include "src/parallel/explorer.h"
#include "src/parallel/perf_model.h"
#include "src/parallel/plan.h"
#include "src/parallel/stage_partition.h"

// --- runtime ----------------------------------------------------------------
#include "src/runtime/gantt.h"
#include "src/runtime/pipeline_engine.h"

// --- core -------------------------------------------------------------------
#include "src/core/cell.h"
#include "src/core/comm_profile.h"
#include "src/core/estimator.h"
#include "src/core/oracle.h"
#include "src/core/tuner.h"

// --- fault ------------------------------------------------------------------
#include "src/fault/checkpoint.h"
#include "src/fault/failure_injector.h"
#include "src/fault/fault_trace_io.h"

// --- sched ------------------------------------------------------------------
#include "src/sched/baselines.h"
#include "src/sched/crius_sched.h"
#include "src/sched/factory.h"
#include "src/sched/scheduler.h"

// --- sim --------------------------------------------------------------------
#include "src/sim/chrome_export.h"
#include "src/sim/engine.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"

// --- serve ------------------------------------------------------------------
#include "src/serve/client.h"
#include "src/serve/controller.h"
#include "src/serve/event_queue.h"
#include "src/serve/protocol.h"
#include "src/serve/replay.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/serve/session_log.h"

#endif  // SRC_CRIUS_H_
