#include "src/core/tuner.h"

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/trace.h"

namespace crius {

CellTuner::CellTuner(const Explorer* explorer) : explorer_(explorer) {
  CRIUS_CHECK(explorer != nullptr);
}

int CellTuner::HalfHybridTpFloor(int gpus) {
  return HalfHybridFloor(gpus);
}

int CellTuner::HalfHybridTpCeil(int gpus) {
  return HalfHybridCeil(gpus);
}

TuneResult CellTuner::Tune(const JobContext& ctx, const Cell& cell,
                           const CellEstimate& estimate) const {
  CRIUS_TRACE_SPAN("tuner.tune");
  CRIUS_COUNTER_INC("tuner.tunes");
  TuneResult out;
  if (!estimate.feasible) {
    return out;
  }
  CRIUS_CHECK(estimate.stage_prefers_tp.size() == estimate.plan.stages.size());

  // Each stage keeps only the tp range the estimate favored (Fig. 11); the
  // assembled winner itself is always kept so tuning can never regress below
  // the estimate's plan.
  const std::vector<std::pair<int, int>>& ranges = estimate.stage_tp_range;
  const std::vector<StagePlan>& stages = estimate.plan.stages;
  CRIUS_CHECK(ranges.size() == stages.size());
  StageOptionFilter filter = [&ranges, &stages](int stage_index, int dp, int tp) {
    (void)dp;
    const auto s = static_cast<size_t>(stage_index);
    return (tp >= ranges[s].first && tp <= ranges[s].second) || tp == stages[s].tp;
  };

  ExploreResult r = explorer_->ExploreWithinStages(ctx, cell.ngpus, cell.nstages, filter);
  out.best = std::move(r.best);
  out.plans_evaluated = r.plans_evaluated;
  out.tune_gpu_seconds = r.profile_gpu_seconds;
  CRIUS_HISTOGRAM_RECORD("tuner.plans_evaluated", static_cast<double>(out.plans_evaluated));
  CRIUS_HISTOGRAM_RECORD("tuner.tune_gpu_s", out.tune_gpu_seconds);
  return out;
}

TuneResult CellTuner::TuneUnpruned(const JobContext& ctx, const Cell& cell) const {
  ExploreResult r = explorer_->ExploreWithinStages(ctx, cell.ngpus, cell.nstages);
  TuneResult out;
  out.best = std::move(r.best);
  out.plans_evaluated = r.plans_evaluated;
  out.tune_gpu_seconds = r.profile_gpu_seconds;
  return out;
}

}  // namespace crius
