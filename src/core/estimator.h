// Agile Cell estimation by parallelism assembly (§5.1, Fig. 9).
//
// With a Cell's stages fixed, Crius profiles every stage exactly twice on a
// single device -- once data-parallel-only, once tensor-parallel-only -- and
// assembles all 2^Ns combinations of those stage profiles into candidate
// plans, injecting offline-profiled communication operators between stages.
// The best assembled plan's latency is the Cell's estimate, and each stage's
// winning side is that stage's "parallelism favor", which later prunes tuning
// (§5.2).
//
// This is grid sampling, not optimum prediction: the true best plan may be a
// hybrid the grid misses, and the profiles carry measurement jitter plus
// interpolation error -- exactly the accuracy/overhead trade the paper
// evaluates in Fig. 12.

#ifndef SRC_CORE_ESTIMATOR_H_
#define SRC_CORE_ESTIMATOR_H_

#include <limits>
#include <vector>

#include "src/core/cell.h"
#include "src/core/comm_profile.h"
#include "src/core/compute_profile.h"
#include "src/parallel/plan.h"

namespace crius {

struct CellEstimate {
  // False iff some stage fits in GPU memory under neither dp-only nor tp-only.
  bool feasible = false;
  // Estimated iteration latency of the best assembled plan.
  double iter_time = std::numeric_limits<double>::infinity();
  // The best assembled plan (every stage dp-only or tp-only).
  ParallelPlan plan;
  // Per-stage parallelism favor: true if tensor parallelism won (§5.2).
  std::vector<bool> stage_prefers_tp;
  // Per-stage tuning range [tp_min, tp_max] derived from the favor (Fig. 11):
  // a dp-favoring stage tunes in [1, half-hybrid], a tp-favoring one in
  // [half-hybrid, N]. When memory kills the dp-only probe, the estimator
  // profiles the half-hybrid point on the single device as well and favors
  // the winning half -- the favor must be a comparison, not a memory artifact.
  std::vector<std::pair<int, int>> stage_tp_range;
  // Single-GPU seconds spent profiling (the Fig. 12b cost).
  double profile_gpu_seconds = 0.0;
  // Number of assembled plans considered (2^Ns modulo OOM-dropped options).
  int plans_assembled = 0;
};

class CellEstimator {
 public:
  // `compute_jitter` overrides the single-device profiler's measurement
  // scatter (noise-ablation experiments sweep it).
  CellEstimator(const PerfModel* model, const CommProfile* comm, uint64_t seed,
                double compute_jitter = SingleDeviceProfiler::kMeasureJitter);

  // Estimates `cell` for the job in `ctx`. ctx.gpu_type must equal
  // cell.gpu_type.
  CellEstimate Estimate(const JobContext& ctx, const Cell& cell) const;

 private:
  const PerfModel* model_;
  const CommProfile* comm_;
  SingleDeviceProfiler profiler_;
};

}  // namespace crius

#endif  // SRC_CORE_ESTIMATOR_H_
