// PerformanceOracle: one-stop, memoized access to every performance quantity
// the schedulers and the simulator need.
//
//   * BestAdaptive   -- ground-truth optimal plan from full adaptive-
//                       parallelism exploration (what a scheduled job actually
//                       runs with; §8.1 enables Alpa-style adaptive parallelism
//                       for every scheduler's jobs).
//   * DpOnlyIterTime -- the data-parallel-only iteration time baselines profile
//                       and schedule by (§8.1: baselines "schedule jobs with
//                       data profiled from data parallelism").
//   * EstimateCell   -- Crius's agile Cell estimate (§5.1).
//   * TuneCell       -- Crius's Cell-guided tuned plan (§5.2).
//
// Trace-scale simulations query the same (model, GPU type, count) points
// millions of times; everything is cached. Caches are sharded-mutex
// thread-safe: every cached quantity is a pure function of its key, so
// concurrent callers (the scheduler's parallel Cell fan-out, parallel bench
// sweeps) read/populate them in any order without changing any value.

#ifndef SRC_CORE_ORACLE_H_
#define SRC_CORE_ORACLE_H_

#include <optional>
#include <tuple>

#include "src/core/cell.h"
#include "src/core/comm_profile.h"
#include "src/core/estimator.h"
#include "src/core/tuner.h"
#include "src/parallel/explorer.h"
#include "src/util/sharded_cache.h"

namespace crius {

// Knobs for the noise-ablation experiments (DESIGN.md §5): how much
// measurement scatter the estimator's inputs carry.
struct OracleConfig {
  double compute_jitter = SingleDeviceProfiler::kMeasureJitter;
  double comm_jitter = CommProfile::kMeasureJitter;
};

class PerformanceOracle {
 public:
  PerformanceOracle(const Cluster& cluster, uint64_t seed, OracleConfig config = {});

  const PerfModel& perf_model() const { return model_; }
  const Explorer& explorer() const { return explorer_; }
  const CommProfile& comm_profile() const { return comm_; }

  // Ground-truth best adaptive-parallelism plan; nullopt if the job cannot fit
  // on `ngpus` GPUs of `type` under any plan.
  const std::optional<PlanChoice>& BestAdaptive(const ModelSpec& spec, GpuType type, int ngpus);

  // Data-parallel-only iteration time (1 stage, dp = ngpus); nullopt on OOM.
  std::optional<double> DpOnlyIterTime(const ModelSpec& spec, GpuType type, int ngpus);

  // Crius Cell estimate (cached per model/cell).
  const CellEstimate& EstimateCell(const ModelSpec& spec, const Cell& cell);

  // Crius tuned plan for a scheduled Cell (cached).
  const TuneResult& TuneCell(const ModelSpec& spec, const Cell& cell);

  // Throughput (samples/s) of the ground-truth best plan; 0 if infeasible.
  double AdaptiveThroughput(const ModelSpec& spec, GpuType type, int ngpus);

  // Throughput (samples/s) of the Crius-estimated best assembled plan for a
  // cell; 0 if infeasible. This is the number Crius's scheduler ranks by.
  double EstimatedThroughput(const ModelSpec& spec, const Cell& cell);

  // Batched what-if estimation: EstimatedThroughput for every Cell of one
  // job in a single call. `out` is resized to cells.size(), out[i] matching
  // cells[i]. The scheduler's per-job ranking fan-out goes through here so
  // per-round estimation has a single entry point to instrument.
  void EstimatedThroughputBatch(const ModelSpec& spec, const std::vector<Cell>& cells,
                                std::vector<double>* out);

 private:
  using ModelPointKey = std::tuple<uint64_t, int, int>;        // (model, type, ngpus)
  using CellPointKey = std::tuple<uint64_t, int, int, int>;    // (model, type, ngpus, nstages)

  JobContext ContextFor(const ModelSpec& spec, GpuType type) const;
  static uint64_t ShardHash(const ModelPointKey& key);
  static uint64_t ShardHash(const CellPointKey& key);

  PerfModel model_;
  CommProfile comm_;
  Explorer explorer_;
  CellEstimator estimator_;
  CellTuner tuner_;

  ShardedCache<ModelPointKey, std::optional<PlanChoice>> adaptive_cache_;
  ShardedCache<ModelPointKey, std::optional<double>> dp_only_cache_;
  ShardedCache<CellPointKey, CellEstimate> estimate_cache_;
  ShardedCache<CellPointKey, TuneResult> tune_cache_;
};

}  // namespace crius

#endif  // SRC_CORE_ORACLE_H_
